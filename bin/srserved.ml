(* srserved: a long-lived batched compile-and-simulate service.

   Reads newline-delimited requests (Serve.Protocol) from stdin — or
   from --trace FILE, or over a Unix-domain socket with --socket PATH —
   and answers one response line per request line, in order.
   Consecutive `run` lines accumulate into a batch of up to --max-batch
   requests; a batch flushes (compiles its distinct kernels once
   through the content-addressed cache, launches across cores, and
   prints responses) when it fills, when a non-run line arrives, on an
   empty line, or at EOF. `stats` reports the cache counters, `quit`
   answers `bye` and exits 0 (over a socket: ends that connection).
   `shutdown` — or SIGTERM in socket mode — drains gracefully:
   in-flight work completes and answers, later admissions bounce with
   `overloaded retry-after=N`, everyone gets `bye`, exit 0. Malformed
   lines get `error` responses (usage code) without disturbing the
   stream; the server never dies on bad input.

   --persist DIR write-through-caches compile artifacts to a crash-safe
   on-disk store: a restarted server answers repeated kernels without
   recompiling, and corrupt/truncated entries silently degrade to
   misses (visible as phits/pcorrupt in `stats`). --deadline FUEL
   bounds every launch (requests may override with deadline=), answered
   with a `deadline` response rather than an error.

   --smoke runs the in-process self-test the @serve-smoke alias gates
   on: the workload registry (twice, so the repeated kernels must hit
   the compile cache) plus a fixed-seed fuzz slice, then a soak pass
   replaying the same trace and requiring semantically identical
   responses (same metrics and memory digests; only the cumulative
   cache counters may differ), then a socket leg (a forked server must
   answer byte-identically to the in-process engine, then drain on
   shutdown) and a persist leg (a restarted server must answer
   byte-identically from the store, surviving corruption). Exit 1 if
   any expectation fails. *)

module P = Serve.Protocol

let usage msg = raise (Core.Cli.Error (Core.Cli.Usage msg))

(* ---- stdio / trace service loop ---- *)

let is_run_line line =
  let line = String.trim line in
  String.length line >= 4 && String.sub line 0 4 = "run "

let serve_channel server ~max_batch ic =
  let quit = ref false in
  let pending = ref [] in
  let respond lines =
    List.iter print_endline (Serve.Server.submit_lines server lines);
    flush stdout
  in
  let flush_pending () =
    if !pending <> [] then begin
      respond (List.rev !pending);
      pending := []
    end
  in
  (try
     while not !quit do
       let line = input_line ic in
       if String.trim line = "" then flush_pending ()
       else if is_run_line line then begin
         pending := line :: !pending;
         if List.length !pending >= max_batch then flush_pending ()
       end
       else begin
         (* stats / quit / shutdown / malformed: sequential markers —
            they observe every launch before them, so the batch goes
            first. shutdown sets the server draining, which over stdio
            means the stream is done. *)
         flush_pending ();
         respond [ line ];
         if P.parse_command line = Ok P.Quit || Serve.Server.draining server then quit := true
       end
     done
   with End_of_file -> flush_pending ())

(* ---- --smoke: the @serve-smoke self-test ---- *)

let smoke_fuzz_seed = 505
let smoke_fuzz_count = 50

let smoke_trace () =
  let registry =
    List.map
      (fun (spec : Workloads.Spec.t) ->
        P.Run
          (P.make_request ~id:0 ~warps:1 ?coarsen:spec.Workloads.Spec.coarsen
             ~args:spec.Workloads.Spec.args ~source:spec.Workloads.Spec.source ()))
      Workloads.Registry.all
  in
  let fuzzed =
    List.init smoke_fuzz_count (fun i ->
        let case = Fuzz.Gen.generate ~seed:smoke_fuzz_seed i in
        P.Run
          (P.make_request ~id:0 ~init:"data"
             ~source:(Front.Pretty.to_string case.Fuzz.Gen.ast)
             ()))
  in
  (* The registry twice: the second pass is the repeated-kernel traffic
     that must hit the compile cache. *)
  List.mapi
    (fun id -> function
      | P.Run r -> P.Run { r with P.id }
      | cmd -> cmd)
    (registry @ registry @ fuzzed)

(* Semantic echo of a response: everything except the cache status and
   cumulative counters, which legitimately change between soak passes
   (first sight is a miss, every replay a hit). *)
let semantic = function
  | P.Ok_run r ->
    P.print_response (P.Ok_run { r with P.cache = P.Miss; hits = 0; misses = 0; evictions = 0 })
  | other -> P.print_response other

(* ---- smoke legs: socket transport and persist round trip ---- *)

let temp_dir prefix =
  let path = Filename.temp_file prefix ".d" in
  Sys.remove path;
  Sys.mkdir path 0o700;
  path

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ()
  end

(* Bounded wait so a wedged child fails the smoke instead of hanging
   it. *)
let wait_child pid =
  let rec go n =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ when n > 0 ->
      Unix.sleepf 0.05;
      go (n - 1)
    | 0, _ ->
      Unix.kill pid Sys.sigkill;
      ignore (Unix.waitpid [] pid);
      None
    | _, status -> Some status
  in
  go 200

let smoke_slice () =
  List.concat_map
    (fun (spec : Workloads.Spec.t) ->
      [
        P.print_command
          (P.Run
             (P.make_request ~id:0 ~warps:1 ?coarsen:spec.Workloads.Spec.coarsen
                ~args:spec.Workloads.Spec.args ~source:spec.Workloads.Spec.source ()));
      ])
    (List.filteri (fun i _ -> i < 6) Workloads.Registry.all)

let smoke_fail fmt =
  Printf.ksprintf (fun msg -> prerr_endline ("serve-smoke: " ^ msg); true) fmt

(* The forked-server leg: a socket server must answer the same lines
   byte-identically to a fresh in-process engine, then drain cleanly on
   shutdown. Returns true on failure. *)
let smoke_socket () =
  let fail fmt = smoke_fail fmt in
  let dir = temp_dir "srserved_smoke" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let socket_path = Filename.concat dir "srserved.sock" in
  let lines = smoke_slice () @ [ P.print_command (P.Stats 99) ] in
  (* Fork before anything touches Domain_pool: OCaml 5 forbids
     Unix.fork in any process that has ever spawned a domain, and the
     in-process reference pass below fans out on a multicore machine. *)
  match Unix.fork () with
  | 0 ->
    (try
       Serve.Transport.serve
         (Serve.Server.create ~cache_capacity:64 ())
         ~socket_path ()
     with _ -> ());
    Unix._exit 0
  | pid ->
    let expect =
      Serve.Server.submit_lines (Serve.Server.create ~cache_capacity:64 ()) lines
    in
    let failed = ref false in
    (try
       let c = Serve.Client.connect socket_path in
       let got = Serve.Client.round_trip c lines in
       if got <> expect then
         failed := fail "socket responses diverged from the in-process engine";
       (* A second connection shares the (now warm) server: its first
          run must be a cache hit. *)
       let c2 = Serve.Client.connect socket_path in
       (match P.parse_response (Serve.Client.rpc c2 (List.hd lines)) with
       | Ok (P.Ok_run r) ->
         if r.P.cache <> P.Hit then
           failed := fail "second socket connection missed the shared cache"
       | _ -> failed := fail "second socket connection got a non-ok response");
       (match Serve.Client.round_trip c2 [ "shutdown" ] with
       | [ "bye" ] -> ()
       | other ->
         failed := fail "shutdown answered %s" (String.concat " | " other));
       Serve.Client.close c;
       Serve.Client.close c2
     with e -> failed := fail "socket leg raised: %s" (Printexc.to_string e));
    (match wait_child pid with
    | Some (Unix.WEXITED 0) -> ()
    | Some _ -> failed := fail "socket server child exited abnormally"
    | None -> failed := fail "socket server child hung after shutdown");
    !failed

(* The persist leg: a restarted server over the same store answers
   byte-identically without recompiling; corruption degrades to misses
   without changing a byte of the run responses. *)
let smoke_persist () =
  let fail fmt = smoke_fail fmt in
  let dir = temp_dir "srserved_persist" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let lines = smoke_slice () in
  let failed = ref false in
  let render () =
    Serve.Server.create ~cache_capacity:64 ~persist_dir:dir ()
  in
  let cold = render () in
  let cold_lines = Serve.Server.submit_lines cold lines in
  let warm = render () in
  let warm_lines = Serve.Server.submit_lines warm lines in
  if warm_lines <> cold_lines then
    failed := fail "restarted server's responses diverged from the cold run";
  if Serve.Server.persist_hits warm = 0 then
    failed := fail "restarted server compiled instead of loading the store";
  (* Truncate every artifact: the next generation must recompile,
     counting the damage, with an identical response stream. *)
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".art" then begin
        let path = Filename.concat dir f in
        let ic = open_in_bin path in
        let half = really_input_string ic (in_channel_length ic / 2) in
        close_in ic;
        let oc = open_out_bin path in
        output_string oc half;
        close_out oc
      end)
    (Sys.readdir dir);
  let hurt = render () in
  let hurt_lines = Serve.Server.submit_lines hurt lines in
  if hurt_lines <> cold_lines then
    failed := fail "post-corruption responses diverged from the cold run";
  if Serve.Server.persist_corrupt hurt = 0 then
    failed := fail "corrupt store entries were not detected";
  if Serve.Server.persist_hits hurt <> 0 then
    failed := fail "corrupt store entries served hits";
  !failed

let smoke () =
  let failed = ref false in
  (* The forked socket leg must come first: once the in-process passes
     below have spawned domains, Unix.fork is off the table for good. *)
  if smoke_socket () then failed := true;
  if smoke_persist () then failed := true;
  let server = Serve.Server.create ~cache_capacity:256 ~max_issues:100_000_000 () in
  let trace = smoke_trace () in
  let first = Serve.Server.submit server trace in
  let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("serve-smoke: " ^ msg); true) fmt in
  let count pred = List.length (List.filter pred first) in
  let bad =
    count (function P.Error { kind = "malformed"; _ } | P.Overloaded _ -> true | _ -> false)
  in
  if bad > 0 then failed := fail "%d malformed/overloaded response(s)" bad;
  let errors = count (function P.Error _ -> true | _ -> false) in
  if errors > 0 then
    failed := fail "%d error response(s) on a trace that must be clean" errors;
  if Serve.Server.cache_hits server < List.length Workloads.Registry.all then
    failed :=
      fail "repeated registry kernels produced only %d cache hit(s)"
        (Serve.Server.cache_hits server);
  (* Soak: the same trace twice more against the warm server. Responses
     must be semantically identical pass over pass. *)
  let reference = List.map semantic first in
  for pass = 2 to 3 do
    let again = List.map semantic (Serve.Server.submit server trace) in
    if again <> reference then
      failed := fail "soak pass %d diverged from the first response stream" pass
  done;
  Printf.printf
    "serve-smoke: %d requests x 3 passes: %d served, cache hits=%d misses=%d evictions=%d \
     entries=%d; socket and persist legs ok=%b\n"
    (List.length trace) (Serve.Server.served server) (Serve.Server.cache_hits server)
    (Serve.Server.cache_misses server)
    (Serve.Server.cache_evictions server)
    (Serve.Server.cache_entries server) (not !failed);
  if !failed then raise (Core.Cli.Error Core.Cli.Findings)

(* ---- CLI ---- *)

let main smoke_flag trace socket persist cache_capacity max_batch max_inflight max_issues
    deadline retry_after read_timeout max_line race_gate =
  if cache_capacity < 0 then usage "--cache-capacity must be >= 0";
  if max_batch < 1 then usage "--max-batch must be >= 1";
  if max_inflight < 1 then usage "--max-inflight must be >= 1";
  if deadline < 0 then usage "--deadline must be >= 0 (0 = unlimited)";
  if retry_after < 0 then usage "--retry-after must be >= 0";
  if read_timeout <= 0.0 then usage "--read-timeout must be positive";
  if max_line < 1 then usage "--max-line must be >= 1";
  if socket <> None && trace <> None then usage "--socket and --trace are mutually exclusive";
  if smoke_flag then smoke ()
  else begin
    let server =
      Serve.Server.create ~cache_capacity ~max_inflight ~max_issues ~fuel:deadline
        ?persist_dir:persist ~retry_after ~race_gate ()
    in
    match socket with
    | Some socket_path ->
      (* SIGTERM drains like a shutdown command: in-flight work answers,
         everyone gets bye, exit 0. *)
      Sys.set_signal Sys.sigterm
        (Sys.Signal_handle (fun _ -> Serve.Server.drain server));
      Serve.Transport.serve ~max_batch ~read_timeout ~max_line server ~socket_path ()
    | None -> (
      match trace with
      | None -> serve_channel server ~max_batch stdin
      | Some path ->
        let ic = open_in path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> serve_channel server ~max_batch ic))
  end

open Cmdliner

let cmd =
  Cmd.v
    (Cmd.info "srserved"
       ~doc:
         "Batched compile-and-simulate service over stdio: newline-delimited kernel-launch \
          requests against a content-addressed compile cache, sharded across cores with \
          deterministic response ordering and explicit overload backpressure")
    Term.(
      const main
      $ Arg.(
          value & flag
          & info [ "smoke" ]
              ~doc:
                "Run the in-process self-test (registry twice + a fixed-seed fuzz slice + a \
                 soak replay) and exit")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "trace" ] ~docv:"FILE" ~doc:"Serve request lines from $(docv) instead of stdin")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "socket" ] ~docv:"PATH"
              ~doc:
                "Serve concurrent connections over a Unix-domain socket at $(docv) instead of \
                 stdio; per-connection batching, timeouts and error isolation")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "persist" ] ~docv:"DIR"
              ~doc:
                "Write-through compile artifacts to a crash-safe store in $(docv); a restarted \
                 server answers repeated kernels without recompiling")
      $ Arg.(
          value & opt int 128
          & info [ "cache-capacity" ] ~doc:"Compile-cache entries (0 disables caching)")
      $ Arg.(
          value & opt int 64
          & info [ "max-batch" ] ~doc:"Run requests accumulated before a batch flushes")
      $ Arg.(
          value & opt int 256
          & info [ "max-inflight" ]
              ~doc:
                "Launches admitted per batch segment; requests beyond the bound receive an \
                 overloaded response instead of queueing")
      $ Arg.(
          value & opt int 1_500_000
          & info [ "max-issues" ] ~doc:"Per-launch issue budget (Runaway cap)")
      $ Arg.(
          value & opt int 0
          & info [ "deadline" ] ~docv:"FUEL"
              ~doc:
                "Default per-launch fuel budget, answered with a deadline response when \
                 exhausted (0 = unlimited; requests override with deadline=)")
      $ Arg.(
          value & opt int 1
          & info [ "retry-after" ] ~docv:"SECONDS"
              ~doc:"Back-off hint attached to overloaded responses while draining")
      $ Arg.(
          value & opt float 30.0
          & info [ "read-timeout" ] ~docv:"SECONDS"
              ~doc:
                "Socket mode: close a connection holding a torn request line longer than \
                 $(docv) (slow-loris guard)")
      $ Arg.(
          value & opt int 1_000_000
          & info [ "max-line" ] ~docv:"BYTES"
              ~doc:"Socket mode: reject request lines longer than $(docv)")
      $ Arg.(
          value & flag
          & info [ "race-gate" ]
              ~doc:
                "Refuse to launch programs with static data-race findings (srcc --race): \
                 such requests are answered with an error response of kind race instead of \
                 executing"))

let () =
  let code = Core.Cli.handle (fun () -> Cmd.eval ~catch:false cmd) in
  exit (if code = Cmd.Exit.cli_error then Core.Cli.exit_code (Core.Cli.Usage "") else code)
