(* srserved: a long-lived batched compile-and-simulate service.

   Reads newline-delimited requests (Serve.Protocol) from stdin — or
   from --trace FILE — and answers one response line per request line,
   in order. Consecutive `run` lines accumulate into a batch of up to
   --max-batch requests; a batch flushes (compiles its distinct kernels
   once through the content-addressed cache, launches across cores, and
   prints responses) when it fills, when a non-run line arrives, on an
   empty line, or at EOF. `stats` reports the cache counters, `quit`
   answers `bye` and exits 0. Malformed lines get `error` responses
   (usage code) without disturbing the stream; the server never dies on
   bad input.

   --smoke runs the in-process self-test the @serve-smoke alias gates
   on: the workload registry (twice, so the repeated kernels must hit
   the compile cache) plus a fixed-seed fuzz slice, then a soak pass
   replaying the same trace and requiring semantically identical
   responses (same metrics and memory digests; only the cumulative
   cache counters may differ). Exit 1 if any expectation fails. *)

module P = Serve.Protocol

let usage msg = raise (Core.Cli.Error (Core.Cli.Usage msg))

(* ---- stdio / trace service loop ---- *)

let is_run_line line =
  let line = String.trim line in
  String.length line >= 4 && String.sub line 0 4 = "run "

let serve_channel server ~max_batch ic =
  let quit = ref false in
  let pending = ref [] in
  let respond lines =
    List.iter print_endline (Serve.Server.submit_lines server lines);
    flush stdout
  in
  let flush_pending () =
    if !pending <> [] then begin
      respond (List.rev !pending);
      pending := []
    end
  in
  (try
     while not !quit do
       let line = input_line ic in
       if String.trim line = "" then flush_pending ()
       else if is_run_line line then begin
         pending := line :: !pending;
         if List.length !pending >= max_batch then flush_pending ()
       end
       else begin
         (* stats / quit / malformed: sequential markers — they observe
            every launch before them, so the batch goes first. *)
         flush_pending ();
         respond [ line ];
         if P.parse_command line = Ok P.Quit then quit := true
       end
     done
   with End_of_file -> flush_pending ())

(* ---- --smoke: the @serve-smoke self-test ---- *)

let smoke_fuzz_seed = 505
let smoke_fuzz_count = 50

let smoke_trace () =
  let registry =
    List.map
      (fun (spec : Workloads.Spec.t) ->
        P.Run
          (P.make_request ~id:0 ~warps:1 ?coarsen:spec.Workloads.Spec.coarsen
             ~args:spec.Workloads.Spec.args ~source:spec.Workloads.Spec.source ()))
      Workloads.Registry.all
  in
  let fuzzed =
    List.init smoke_fuzz_count (fun i ->
        let case = Fuzz.Gen.generate ~seed:smoke_fuzz_seed i in
        P.Run
          (P.make_request ~id:0 ~init:"data"
             ~source:(Front.Pretty.to_string case.Fuzz.Gen.ast)
             ()))
  in
  (* The registry twice: the second pass is the repeated-kernel traffic
     that must hit the compile cache. *)
  List.mapi
    (fun id -> function
      | P.Run r -> P.Run { r with P.id }
      | cmd -> cmd)
    (registry @ registry @ fuzzed)

(* Semantic echo of a response: everything except the cache status and
   cumulative counters, which legitimately change between soak passes
   (first sight is a miss, every replay a hit). *)
let semantic = function
  | P.Ok_run r ->
    P.print_response (P.Ok_run { r with P.cache = P.Miss; hits = 0; misses = 0; evictions = 0 })
  | other -> P.print_response other

let smoke () =
  let server = Serve.Server.create ~cache_capacity:256 ~max_issues:100_000_000 () in
  let trace = smoke_trace () in
  let first = Serve.Server.submit server trace in
  let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("serve-smoke: " ^ msg); true) fmt in
  let failed = ref false in
  let count pred = List.length (List.filter pred first) in
  let bad =
    count (function P.Error { kind = "malformed"; _ } | P.Overloaded _ -> true | _ -> false)
  in
  if bad > 0 then failed := fail "%d malformed/overloaded response(s)" bad;
  let errors = count (function P.Error _ -> true | _ -> false) in
  if errors > 0 then
    failed := fail "%d error response(s) on a trace that must be clean" errors;
  if Serve.Server.cache_hits server < List.length Workloads.Registry.all then
    failed :=
      fail "repeated registry kernels produced only %d cache hit(s)"
        (Serve.Server.cache_hits server);
  (* Soak: the same trace twice more against the warm server. Responses
     must be semantically identical pass over pass. *)
  let reference = List.map semantic first in
  for pass = 2 to 3 do
    let again = List.map semantic (Serve.Server.submit server trace) in
    if again <> reference then
      failed := fail "soak pass %d diverged from the first response stream" pass
  done;
  Printf.printf
    "serve-smoke: %d requests x 3 passes: %d served, cache hits=%d misses=%d evictions=%d \
     entries=%d\n"
    (List.length trace) (Serve.Server.served server) (Serve.Server.cache_hits server)
    (Serve.Server.cache_misses server)
    (Serve.Server.cache_evictions server)
    (Serve.Server.cache_entries server);
  if !failed then raise (Core.Cli.Error Core.Cli.Findings)

(* ---- CLI ---- *)

let main smoke_flag trace cache_capacity max_batch max_inflight max_issues =
  if cache_capacity < 0 then usage "--cache-capacity must be >= 0";
  if max_batch < 1 then usage "--max-batch must be >= 1";
  if max_inflight < 1 then usage "--max-inflight must be >= 1";
  if smoke_flag then smoke ()
  else begin
    let server = Serve.Server.create ~cache_capacity ~max_inflight ~max_issues () in
    match trace with
    | None -> serve_channel server ~max_batch stdin
    | Some path ->
      let ic = open_in path in
      Fun.protect ~finally:(fun () -> close_in ic) (fun () -> serve_channel server ~max_batch ic)
  end

open Cmdliner

let cmd =
  Cmd.v
    (Cmd.info "srserved"
       ~doc:
         "Batched compile-and-simulate service over stdio: newline-delimited kernel-launch \
          requests against a content-addressed compile cache, sharded across cores with \
          deterministic response ordering and explicit overload backpressure")
    Term.(
      const main
      $ Arg.(
          value & flag
          & info [ "smoke" ]
              ~doc:
                "Run the in-process self-test (registry twice + a fixed-seed fuzz slice + a \
                 soak replay) and exit")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "trace" ] ~docv:"FILE" ~doc:"Serve request lines from $(docv) instead of stdin")
      $ Arg.(
          value & opt int 128
          & info [ "cache-capacity" ] ~doc:"Compile-cache entries (0 disables caching)")
      $ Arg.(
          value & opt int 64
          & info [ "max-batch" ] ~doc:"Run requests accumulated before a batch flushes")
      $ Arg.(
          value & opt int 256
          & info [ "max-inflight" ]
              ~doc:
                "Launches admitted per batch segment; requests beyond the bound receive an \
                 overloaded response instead of queueing")
      $ Arg.(
          value & opt int 1_500_000
          & info [ "max-issues" ] ~doc:"Per-launch issue budget (Runaway cap)"))

let () =
  let code = Core.Cli.handle (fun () -> Cmd.eval ~catch:false cmd) in
  exit (if code = Cmd.Exit.cli_error then Core.Cli.exit_code (Core.Cli.Usage "") else code)
