(* srcc: the MiniSIMT compiler driver.

   Parses a .simt file, runs the selected synchronization pipeline, and
   dumps the result (IR, disassembly, applied hints, analyses).

   Failure modes map to distinct exit codes via Core.Cli: 1 lint
   findings, 2 usage, 3 i/o, 4 lex/parse, 5 compile. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

type dump =
  | Dump_ir
  | Dump_asm
  | Dump_decoded
  | Dump_hints
  | Dump_analysis
  | Dump_candidates
  | Dump_source

let mode_of_string = function
  | "baseline" -> Core.Compile.Baseline
  | "none" -> Core.Compile.No_sync
  | "specrecon" -> Core.Compile.Speculative Passes.Deconflict.Dynamic
  | "specrecon-static" -> Core.Compile.Speculative Passes.Deconflict.Static
  | "auto" ->
    Core.Compile.Automatic
      {
        params = Passes.Auto_detect.default_params;
        strategy = Passes.Deconflict.Dynamic;
        profile = None;
      }
  | other -> raise (Core.Cli.Error (Core.Cli.Usage ("unknown mode " ^ other)))

let run path mode coarsen threshold dumps emit_decoded lint_mode no_lint no_deconflict
    race_mode no_race fix fix_dry_run fix_budget =
  let mode = mode_of_string mode in
  let dumps = if emit_decoded then dumps @ [ Dump_decoded ] else dumps in
  (
    let threshold =
      match threshold with
      | None -> Core.Compile.Keep
      | Some k when k < 0 -> Core.Compile.Unset
      | Some k -> Core.Compile.Set k
    in
    let repair =
      if fix || fix_dry_run then
        Core.Compile.Repair { dry_run = fix_dry_run; max_edits = fix_budget }
      else Core.Compile.No_repair
    in
    (* --lint collects findings itself (machine-readable, exit 1);
       --no-lint demotes them to warnings. Either way compilation must
       not abort on findings, so lint=false below. --fix-dry-run also
       compiles with lint off so the proposed plan can be printed; an
       unrepairable dry run re-raises the lint error itself below,
       keeping the exit code identical to --fix. *)
    let options =
      { Core.Compile.mode;
        coarsen;
        threshold;
        cleanup = true;
        lint = not (lint_mode || no_lint || fix_dry_run);
        deconflict = not no_deconflict;
        race = race_mode || not no_race;
        repair }
    in
    let source = read_file path in
    (* --dump source prints the (possibly coarsened) program back as
       MiniSIMT text *)
    List.iter
      (fun d ->
        if d = Dump_source then begin
          let ast = Front.Parser.parse_string source in
          let ast =
            match coarsen with Some f -> Front.Coarsen.apply ast ~factor:f | None -> ast
          in
          print_string (Front.Pretty.to_string ast)
        end)
      dumps;
    match Core.Compile.compile options ~source with
    | compiled when lint_mode ->
      let findings = compiled.Core.Compile.lint_findings in
      List.iter
        (fun f -> Format.printf "%a@." Analysis.Barrier_safety.pp_machine f)
        findings;
      Format.printf "srlint: %d finding(s) in %s@." (List.length findings) path;
      if findings <> [] then raise (Core.Cli.Error Core.Cli.Findings)
    | compiled ->
      (* Race stage reporting mirrors srlint: --race collects the
         findings as machine-readable srrace: lines and exits 1 on any;
         by default they are demoted to stderr warnings (a race can be
         source-level, so an ordinary compile still succeeds). *)
      let race_findings = compiled.Core.Compile.race_findings in
      if race_mode then begin
        List.iter
          (fun f -> Format.printf "%a@." Analysis.Race_safety.pp_machine f)
          race_findings;
        Format.printf "srrace: %d finding(s) in %s@." (List.length race_findings) path;
        if race_findings <> [] then raise (Core.Cli.Error Core.Cli.Findings)
      end
      else
        List.iter
          (fun f -> Format.eprintf "warning: %a@." Analysis.Race_safety.pp_machine f)
          race_findings;
      (match compiled.Core.Compile.repair_report with
      | None -> ()
      | Some r -> (
        match r.Core.Compile.outcome with
        | Analysis.Barrier_repair.Clean ->
          Format.printf "srfix: clean (no barrier-safety findings; nothing to repair)@."
        | Analysis.Barrier_repair.Repaired { edits; cost; explored; _ } ->
          List.iter
            (fun e -> Format.printf "%a@." Analysis.Barrier_repair.pp_edit_machine e)
            edits;
          Format.printf
            "srfix: repaired %d finding(s) with %d edit(s), cost %.0f, explored %d state(s)@."
            (List.length r.Core.Compile.pre_findings)
            (List.length edits) cost explored;
          if not fix_dry_run then
            print_string
              (Support.Udiff.render_strings
                 ~from_label:(path ^ " (before)")
                 ~to_label:(path ^ " (after)")
                 (Format.asprintf "%a" Ir.Linear.pp r.Core.Compile.before)
                 (Format.asprintf "%a" Ir.Linear.pp compiled.Core.Compile.linear))
        | Analysis.Barrier_repair.Unrepairable { blocking; explored } ->
          (* Only reachable under --fix-dry-run (non-dry --fix hard-errors
             inside Compile): print the findings the plan was asked to
             clear, then fail with the same outcome --fix would. *)
          List.iter
            (fun f -> Format.printf "%a@." Analysis.Barrier_safety.pp_machine f)
            r.Core.Compile.pre_findings;
          raise
            (Core.Cli.Error
               (Core.Cli.Compile_error
                  (Format.asprintf
                     "srfix: unrepairable after exploring %d candidate(s); blocked by: %a"
                     explored Analysis.Barrier_safety.pp_machine blocking)))));
      let dump = function
        | Dump_ir -> Format.printf "%a@." Ir.Printer.pp_program compiled.Core.Compile.program
        | Dump_asm -> Format.printf "%a@." Ir.Linear.pp compiled.Core.Compile.linear
        | Dump_decoded -> Format.printf "%a@." Ir.Decoded.pp compiled.Core.Compile.decoded
        | Dump_hints ->
          List.iter
            (fun a -> Format.printf "%a@." Passes.Specrecon.pp_applied a)
            compiled.Core.Compile.applied;
          List.iter
            (fun a -> Format.printf "%a@." Passes.Interproc.pp_applied a)
            compiled.Core.Compile.interproc_applied;
          (match compiled.Core.Compile.deconflict_report with
          | None -> ()
          | Some r ->
            List.iter
              (fun (res : Passes.Deconflict.resolution) ->
                Format.printf "deconflict: kept b%d, demoted b%d (%s)@." res.kept res.demoted
                  (match res.strategy with
                  | Passes.Deconflict.Static -> "static"
                  | Passes.Deconflict.Dynamic -> "dynamic"))
              r.resolutions;
            List.iter
              (fun (f, x, y) -> Format.printf "deconflict: UNRESOLVED %s b%d b%d@." f x y)
              r.unresolved)
        | Dump_analysis ->
          let divergence = Analysis.Divergence.run compiled.Core.Compile.program in
          Format.printf "%a@." Analysis.Divergence.pp divergence
        | Dump_candidates ->
          List.iter
            (fun c -> Format.printf "%a@." Passes.Auto_detect.pp_candidate c)
            compiled.Core.Compile.candidates
        | Dump_source -> () (* handled before compilation *)
      in
      List.iter dump dumps;
      if dumps = [] then
        Format.printf "compiled %s: %d instructions, %d barriers@." path
          (Array.length compiled.Core.Compile.linear.Ir.Linear.code)
          compiled.Core.Compile.linear.Ir.Linear.n_barriers)

open Cmdliner

(* Arg.string, not Arg.file: a missing path should surface as the i/o
   outcome (exit 3), not cmdliner's usage error. *)
let path_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"MiniSIMT source file")

let mode_arg =
  Arg.(
    value
    & opt string "specrecon"
    & info [ "mode" ]
        ~doc:
          "Compilation mode: baseline (PDOM only), specrecon (dynamic deconfliction), \
           specrecon-static, auto (automatic detection), none")

let coarsen_arg =
  Arg.(value & opt (some int) None & info [ "coarsen" ] ~doc:"Thread-coarsening factor")

let threshold_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "threshold" ]
        ~doc:"Override soft-barrier threshold (negative forces hard barriers)")

let dumps_arg =
  let conv_dump =
    Arg.enum
      [
        ("ir", Dump_ir);
        ("asm", Dump_asm);
        ("decoded", Dump_decoded);
        ("hints", Dump_hints);
        ("analysis", Dump_analysis);
        ("candidates", Dump_candidates);
        ("source", Dump_source);
      ]
  in
  Arg.(value & opt_all conv_dump [] & info [ "dump" ] ~doc:"What to print: ir|asm|decoded|hints|analysis|candidates|source")

let emit_decoded_arg =
  Arg.(
    value & flag
    & info [ "emit-decoded" ]
        ~doc:
          "Print the pre-decoded descriptor array the interpreter executes: one line per \
           slot with opcode, decoded operand fields, resolved branch/call targets and \
           latency class (shorthand for --dump decoded)")

let lint_arg =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:
          "Run the static barrier-safety checker (srlint) and print machine-readable \
           diagnostics; exit 1 if any finding")

let no_lint_arg =
  Arg.(
    value & flag
    & info [ "no-lint" ]
        ~doc:"Demote barrier-safety findings from hard errors to warnings on stderr")

let no_deconflict_arg =
  Arg.(
    value & flag
    & info [ "no-deconflict" ]
        ~doc:
          "Skip barrier deconfliction, shipping conflicting placements as-is (for the \
           fault-injection harness; run with srrun --yield)")

let race_arg =
  Arg.(
    value & flag
    & info [ "race" ]
        ~doc:
          "Run the static data-race checker (srrace) over barrier intervals and print \
           machine-readable diagnostics; exit 1 if any finding. Under the speculative \
           modes, findings absent from the PDOM placement of the same source are \
           upgraded to race-introduced")

let no_race_arg =
  Arg.(
    value & flag
    & info [ "no-race" ] ~doc:"Skip the static data-race checker entirely")

let fix_arg =
  Arg.(
    value & flag
    & info [ "fix" ]
        ~doc:
          "Repair barrier-safety findings: synthesize a minimal edit sequence the checker \
           re-proves deadlock-free, apply it, and print the edits plus a unified \
           before/after diff of the linear code. Unrepairable programs keep the lint hard \
           error and exit code")

let fix_dry_run_arg =
  Arg.(
    value & flag
    & info [ "fix-dry-run" ]
        ~doc:
          "Like --fix but only print the proposed edit plan as machine-readable srfix: \
           lines; the program is compiled unrepaired")

let fix_budget_arg =
  Arg.(
    value
    & opt int Analysis.Barrier_repair.default_max_edits
    & info [ "fix-budget" ] ~docv:"N" ~doc:"Maximum number of edits --fix may combine")

let cmd =
  Cmd.v
    (Cmd.info "srcc" ~doc:"MiniSIMT compiler with Speculative Reconvergence")
    Term.(
      const run $ path_arg $ mode_arg $ coarsen_arg $ threshold_arg $ dumps_arg
      $ emit_decoded_arg $ lint_arg $ no_lint_arg $ no_deconflict_arg $ race_arg
      $ no_race_arg $ fix_arg $ fix_dry_run_arg $ fix_budget_arg)

let () =
  let code = Core.Cli.handle (fun () -> Cmd.eval ~catch:false cmd) in
  exit (if code = Cmd.Exit.cli_error then Core.Cli.exit_code (Core.Cli.Usage "") else code)
