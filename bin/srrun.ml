(* srrun: compile a MiniSIMT file and execute it on the SIMT simulator,
   reporting nvprof-style metrics.

   Failure modes map to distinct exit codes via Core.Cli: 2 usage,
   3 i/o, 4 lex/parse, 5 compile, 6 deadlock, 7 runtime/runaway,
   8 baseline mismatch, 9 deadline (--deadline fuel exhausted). *)

let usage msg = raise (Core.Cli.Error (Core.Cli.Usage msg))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_args args =
  List.map
    (fun s ->
      match int_of_string_opt s with
      | Some i -> Ir.Types.I i
      | None -> (
        match float_of_string_opt s with
        | Some f -> Ir.Types.F f
        | None -> usage (Printf.sprintf "bad kernel argument %S (expected int or float)" s)))
    args

let mode_of_string = function
  | "baseline" -> Core.Compile.Baseline
  | "none" -> Core.Compile.No_sync
  | "specrecon" -> Core.Compile.Speculative Passes.Deconflict.Dynamic
  | "specrecon-static" -> Core.Compile.Speculative Passes.Deconflict.Static
  | "auto" ->
    Core.Compile.Automatic
      {
        params = Passes.Auto_detect.default_params;
        strategy = Passes.Deconflict.Dynamic;
        profile = None;
      }
  | other -> usage ("unknown mode " ^ other)

let policy_of_string = function
  | "most-threads" -> Simt.Config.Most_threads
  | "lowest-pc" -> Simt.Config.Lowest_pc
  | "round-robin" -> Simt.Config.Round_robin
  | other -> usage ("unknown policy " ^ other)

let yield_policy_of_string = function
  | "oldest-arrival" -> Simt.Config.Oldest_arrival
  | "most-waiters" -> Simt.Config.Most_waiters
  | "lowest-slot" -> Simt.Config.Lowest_slot
  | other -> usage ("unknown yield policy " ^ other)

let run path mode coarsen threshold warps warp_size policy seed deadline yield yield_policy chaos
    replay fault_trace no_deconflict no_lint fix race_check digest check_baseline entry args =
  if deadline < 0 then usage "--deadline must be >= 0 (0 = unlimited)";
  let mode = mode_of_string mode in
  let threshold =
    match threshold with
    | None -> Core.Compile.Keep
    | Some k when k < 0 -> Core.Compile.Unset
    | Some k -> Core.Compile.Set k
  in
  let config =
    { Simt.Config.default with
      Simt.Config.n_warps = warps;
      warp_size;
      policy = policy_of_string policy;
      seed;
      fuel = deadline;
      yield_on_stall = yield;
      yield_policy = yield_policy_of_string yield_policy }
  in
  let options =
    { Core.Compile.mode;
      coarsen;
      threshold;
      cleanup = true;
      lint = not no_lint;
      deconflict = not no_deconflict;
      race = true;
      repair =
        (if fix then
           Core.Compile.Repair
             { dry_run = false; max_edits = Analysis.Barrier_repair.default_max_edits }
         else Core.Compile.No_repair) }
  in
  let source = read_file path in
  let args = parse_args args in
  let faults =
    match (chaos, replay) with
    | Some _, Some _ -> usage "--chaos and --replay are mutually exclusive"
    | Some fault_seed, None -> Some (Simt.Faults.create ~seed:fault_seed ())
    | None, Some file -> (
      match Simt.Faults.parse_trace (read_file file) with
      | events -> Some (Simt.Faults.replay events)
      | exception Failure msg -> usage (Printf.sprintf "bad fault trace %s: %s" file msg))
    | None, None -> None
  in
  if fault_trace <> None && faults = None then
    usage "--fault-trace requires a fault source (--chaos or --replay)";
  let compiled = Core.Compile.compile options ~source in
  let race =
    if race_check then
      Some
        (Simt.Race_log.create
           ~size:compiled.Core.Compile.program.Ir.Types.mem_size
           ~n_warps:warps ())
    else None
  in
  let outcome = Core.Runner.launch ~config ?faults ?race ?entry compiled ~args in
  Format.printf "%a@." Simt.Metrics.pp outcome.Core.Runner.metrics;
  Format.printf "simt efficiency: %.2f%%@." (100.0 *. Core.Runner.efficiency outcome);
  if digest then
    Format.printf "memory digest: %016x@." (Simt.Memsys.digest outcome.Core.Runner.memory);
  (match (fault_trace, faults) with
  | Some file, Some f ->
    let events = Simt.Faults.events f in
    let oc = open_out file in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (Simt.Faults.trace_to_string events));
    Format.printf "fault trace: %d event(s) written to %s@." (List.length events) file
  | _ -> ());
  if check_baseline then begin
    (* The ground truth: PDOM-only compilation, no faults, no yields.
       The main run — whatever was injected or yielded — must land on
       the same memory image. *)
    let base_options =
      { Core.Compile.mode = Core.Compile.Baseline;
        coarsen;
        threshold;
        cleanup = true;
        lint = false;
        deconflict = true;
        race = false;
        repair = Core.Compile.No_repair }
    in
    let base_config = { config with Simt.Config.yield_on_stall = false } in
    let base = Core.Runner.run_source ~config:base_config ?entry base_options ~source ~args in
    let got = Simt.Memsys.digest outcome.Core.Runner.memory in
    let want = Simt.Memsys.digest base.Core.Runner.memory in
    if got <> want then
      raise
        (Core.Cli.Error
           (Core.Cli.Baseline_mismatch
              (Printf.sprintf "memory digest %016x, unfaulted PDOM baseline %016x" got want)))
    else Format.printf "baseline check: ok (digest %016x)@." got
  end;
  match race with
  | None -> ()
  | Some rl ->
    List.iter (fun ev -> Format.printf "%a@." Simt.Race_log.pp_event ev) (Simt.Race_log.events rl);
    Format.printf "race check: %d race(s) detected@." (Simt.Race_log.total rl);
    if Simt.Race_log.total rl > 0 then raise (Core.Cli.Error Core.Cli.Findings)

open Cmdliner

let cmd =
  (* Arg.string, not Arg.file: a missing path should surface as the
     i/o outcome (exit 3), not cmdliner's usage error. *)
  let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let mode = Arg.(value & opt string "specrecon" & info [ "mode" ]) in
  let coarsen = Arg.(value & opt (some int) None & info [ "coarsen" ]) in
  let threshold = Arg.(value & opt (some int) None & info [ "threshold" ]) in
  let warps = Arg.(value & opt int Simt.Config.default.Simt.Config.n_warps & info [ "warps" ]) in
  let warp_size =
    Arg.(value & opt int Simt.Config.default.Simt.Config.warp_size & info [ "warp-size" ])
  in
  let policy = Arg.(value & opt string "most-threads" & info [ "policy" ]) in
  let seed = Arg.(value & opt int Simt.Config.default.Simt.Config.seed & info [ "seed" ]) in
  let deadline =
    Arg.(
      value & opt int 0
      & info [ "deadline" ] ~docv:"FUEL"
          ~doc:
            "Stop the run deterministically after $(docv) issued instructions (exit 9); 0 \
             disables the deadline")
  in
  let yield =
    Arg.(
      value & flag
      & info [ "yield" ]
          ~doc:
            "Enable yield recovery: when every runnable group of a warp is blocked on \
             convergence barriers, force-release a victim barrier instead of deadlocking")
  in
  let yield_policy =
    Arg.(
      value
      & opt string "oldest-arrival"
      & info [ "yield-policy" ] ~doc:"Victim selection: oldest-arrival|most-waiters|lowest-slot")
  in
  let chaos =
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos" ] ~docv:"SEED" ~doc:"Inject seeded faults during execution")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"TRACE" ~doc:"Replay a recorded fault trace file")
  in
  let fault_trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault-trace" ] ~docv:"FILE" ~doc:"Write the applied fault trace to $(docv)")
  in
  let no_deconflict =
    Arg.(
      value & flag
      & info [ "no-deconflict" ]
          ~doc:"Skip barrier deconfliction (ships conflicting placements; pair with --yield)")
  in
  let no_lint =
    Arg.(
      value & flag
      & info [ "no-lint" ] ~doc:"Demote barrier-safety findings to warnings on stderr")
  in
  let fix =
    Arg.(
      value & flag
      & info [ "fix" ]
          ~doc:
            "Repair barrier-safety findings before running (srcc --fix); unrepairable \
             programs keep the lint hard error")
  in
  let race_check =
    Arg.(
      value & flag
      & info [ "race-check" ]
          ~doc:
            "Attach the shadow-memory race logger: report every pair of same-cell accesses \
             by different threads of one warp in one barrier interval (at least one a \
             write), and exit 1 if any — the dynamic ground truth behind srcc --race")
  in
  let digest =
    Arg.(value & flag & info [ "digest" ] ~doc:"Print the final memory digest")
  in
  let check_baseline =
    Arg.(
      value & flag
      & info [ "check-baseline" ]
          ~doc:
            "Also run the unfaulted PDOM baseline and require bit-identical memory (exit 8 on \
             mismatch)")
  in
  let entry =
    Arg.(
      value
      & opt (some string) None
      & info [ "entry" ] ~docv:"KERNEL" ~doc:"Launch this kernel instead of the program default")
  in
  let kargs = Arg.(value & opt_all string [] & info [ "arg" ] ~doc:"Kernel argument (repeatable)") in
  Cmd.v
    (Cmd.info "srrun" ~doc:"Run a MiniSIMT kernel on the SIMT simulator")
    Term.(
      const run $ path $ mode $ coarsen $ threshold $ warps $ warp_size $ policy $ seed
      $ deadline $ yield $ yield_policy $ chaos $ replay $ fault_trace $ no_deconflict $ no_lint
      $ fix $ race_check $ digest $ check_baseline $ entry $ kargs)

let () =
  let code = Core.Cli.handle (fun () -> Cmd.eval ~catch:false cmd) in
  exit (if code = Cmd.Exit.cli_error then Core.Cli.exit_code (Core.Cli.Usage "") else code)
