(* srrun: compile a MiniSIMT file and execute it on the SIMT simulator,
   reporting nvprof-style metrics. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_args args =
  List.map
    (fun s ->
      if String.contains s '.' then Ir.Types.F (float_of_string s)
      else Ir.Types.I (int_of_string s))
    args

let run path mode coarsen threshold warps warp_size policy seed args =
  let mode =
    match mode with
    | "baseline" -> Core.Compile.Baseline
    | "none" -> Core.Compile.No_sync
    | "specrecon" -> Core.Compile.Speculative Passes.Deconflict.Dynamic
    | "specrecon-static" -> Core.Compile.Speculative Passes.Deconflict.Static
    | "auto" ->
      Core.Compile.Automatic
        {
          params = Passes.Auto_detect.default_params;
          strategy = Passes.Deconflict.Dynamic;
          profile = None;
        }
    | other ->
      prerr_endline ("unknown mode " ^ other);
      exit 2
  in
  let threshold =
    match threshold with
    | None -> Core.Compile.Keep
    | Some k when k < 0 -> Core.Compile.Unset
    | Some k -> Core.Compile.Set k
  in
  let policy =
    match policy with
    | "most-threads" -> Simt.Config.Most_threads
    | "lowest-pc" -> Simt.Config.Lowest_pc
    | "round-robin" -> Simt.Config.Round_robin
    | other ->
      prerr_endline ("unknown policy " ^ other);
      exit 2
  in
  let config =
    { Simt.Config.default with Simt.Config.n_warps = warps; warp_size; policy; seed }
  in
  let options = { Core.Compile.mode; coarsen; threshold; cleanup = true; lint = true } in
  try
    let outcome =
      Core.Runner.run_source ~config options ~source:(read_file path) ~args:(parse_args args)
    in
    Format.printf "%a@." Simt.Metrics.pp outcome.Core.Runner.metrics;
    Format.printf "simt efficiency: %.2f%%@."
      (100.0 *. Core.Runner.efficiency outcome)
  with
  | Front.Parser.Parse_error (pos, msg) ->
    Format.eprintf "%s:%a: parse error: %s@." path Front.Ast.pp_pos pos msg;
    exit 1
  | Front.Lower.Lower_error (pos, msg) ->
    Format.eprintf "%s:%a: error: %s@." path Front.Ast.pp_pos pos msg;
    exit 1
  | Simt.Interp.Deadlock msg ->
    Format.eprintf "DEADLOCK: %s@." msg;
    exit 3
  | Simt.Interp.Runtime_error msg ->
    Format.eprintf "runtime error: %s@." msg;
    exit 4

open Cmdliner

let cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let mode = Arg.(value & opt string "specrecon" & info [ "mode" ]) in
  let coarsen = Arg.(value & opt (some int) None & info [ "coarsen" ]) in
  let threshold = Arg.(value & opt (some int) None & info [ "threshold" ]) in
  let warps = Arg.(value & opt int Simt.Config.default.Simt.Config.n_warps & info [ "warps" ]) in
  let warp_size =
    Arg.(value & opt int Simt.Config.default.Simt.Config.warp_size & info [ "warp-size" ])
  in
  let policy = Arg.(value & opt string "most-threads" & info [ "policy" ]) in
  let seed = Arg.(value & opt int Simt.Config.default.Simt.Config.seed & info [ "seed" ]) in
  let kargs = Arg.(value & opt_all string [] & info [ "arg" ] ~doc:"Kernel argument (repeatable)") in
  Cmd.v
    (Cmd.info "srrun" ~doc:"Run a MiniSIMT kernel on the SIMT simulator")
    Term.(
      const run $ path $ mode $ coarsen $ threshold $ warps $ warp_size $ policy $ seed $ kargs)

let () = exit (Cmd.eval cmd)
