(* srfuzz: seeded differential fuzzing of the MiniSIMT toolchain.

   Generates typed random kernels (biased toward the paper's divergence
   shapes), runs every differential oracle — parse/pretty round trip,
   per-stage IR verification, baseline-vs-specrecon memory equivalence
   across scheduler policies, deadlock/runtime-error classification, and
   (with --chaos N) N seeded fault-injection plans per clean program —
   shrinks any failure, and optionally writes the minimized repro into a
   regression corpus directory. Exit status 1 when violations remain.

   --serve-chaos N runs the service chaos tier instead: N seeded
   transport-fault plans against forked srserved socket servers, plus
   the kill-9/restart persistence oracle (Fuzz.Serve_chaos). *)

let serve_chaos_campaign ~seed ~count ~plans ~max_issues ~chaos_seed =
  let c =
    Fuzz.Serve_chaos.run ~count ~plans ?chaos_seed ~max_issues ~seed ()
  in
  Format.printf
    "serve-chaos campaign seed %d: %d trace replays across %d fault plans (+ persistence \
     generations): %d violation(s)@."
    seed c.Fuzz.Serve_chaos.replays c.Fuzz.Serve_chaos.plans
    (List.length c.Fuzz.Serve_chaos.violations);
  List.iter
    (fun (v : Fuzz.Oracle.violation) ->
      Format.printf "VIOLATION [%s] %s@."
        (Fuzz.Oracle.kind_name v.Fuzz.Oracle.kind)
        v.Fuzz.Oracle.detail)
    c.Fuzz.Serve_chaos.violations;
  if c.Fuzz.Serve_chaos.violations <> [] then raise (Core.Cli.Error Core.Cli.Findings)

let main seed count save max_issues chaos chaos_seed shrink_budget repair serve_chaos
    verbose =
  if serve_chaos > 0 then
    serve_chaos_campaign ~seed ~count ~plans:serve_chaos
      ~max_issues:(min max_issues 200_000) ~chaos_seed
  else begin
  let repair = if repair = 0 then None else Some repair in
  let report =
    Fuzz.Driver.run ~max_issues ~chaos ?chaos_seed ~shrink_budget ?repair ~seed ~count ()
  in
  Format.printf "%a" Fuzz.Driver.pp_report report;
  (match save with
  | None -> ()
  | Some dir ->
    List.iter
      (fun f ->
        let path = Fuzz.Driver.save_corpus ~dir ~seed f in
        Format.printf "wrote %s@." path)
      report.Fuzz.Driver.findings);
  if verbose then
    List.iter
      (fun (f : Fuzz.Driver.finding) ->
        Format.printf "---- shrunk repro [%d] ----@.%s@." f.Fuzz.Driver.id
          (Front.Pretty.to_string f.Fuzz.Driver.shrunk))
      report.Fuzz.Driver.findings;
  if report.Fuzz.Driver.findings <> [] then raise (Core.Cli.Error Core.Cli.Findings)
  end

open Cmdliner

let cmd =
  Cmd.v
    (Cmd.info "srfuzz"
       ~doc:
         "Differential fuzzing of the MiniSIMT compiler and SIMT simulator: every generated \
          kernel must produce byte-identical memory under PDOM-only and speculative-reconvergence \
          compilation, across scheduler policies, with no deadlock and no runtime error — and, \
          under --chaos fault plans, survive injected faults with yield recovery enabled")
    Term.(
      const main
      $ Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Campaign seed")
      $ Arg.(value & opt int 1000 & info [ "count" ] ~doc:"Number of programs to generate")
      $ Arg.(
          value
          & opt (some dir) None
          & info [ "save" ] ~docv:"DIR" ~doc:"Write shrunk repros into $(docv)")
      $ Arg.(
          value & opt int 1_500_000
          & info [ "max-issues" ] ~doc:"Per-run issue budget (Runaway cap)")
      $ Arg.(
          value & opt int 0
          & info [ "chaos" ] ~docv:"N"
              ~doc:"Fault-injection plans per clean program (0 disables the chaos tier)")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "chaos-seed" ] ~doc:"Root seed for the fault plans")
      $ Arg.(value & opt int 300 & info [ "shrink-budget" ] ~doc:"Oracle evaluations per shrink")
      $ Arg.(
          value & opt int 0
          & info [ "repair" ] ~docv:"N"
              ~doc:
                "Run the repair tier instead of the standard matrix: mutate each program's \
                 barrier placement $(docv) times and require srcc --fix to repair every \
                 flagged mutant (or name the blocking finding); 0 disables")
      $ Arg.(
          value & opt int 0
          & info [ "serve-chaos" ] ~docv:"N"
              ~doc:
                "Run the service chaos tier instead of the standard matrix: replay a \
                 generated request trace (--count requests) against forked srserved \
                 socket servers under $(docv) seeded transport-fault plans, plus the \
                 kill-9/restart persistence oracle; 0 disables")
      $ Arg.(value & flag & info [ "verbose" ] ~doc:"Print shrunk repro sources"))

let () =
  let code = Core.Cli.handle (fun () -> Cmd.eval ~catch:false cmd) in
  exit (if code = Cmd.Exit.cli_error then Core.Cli.exit_code (Core.Cli.Usage "") else code)
