bin/srcc.ml: Analysis Arg Array Cmd Cmdliner Core Format Front Fun Ir List Passes Printf Term
