bin/srrun.ml: Arg Cmd Cmdliner Core Format Front Fun Ir List Passes Simt String Term
