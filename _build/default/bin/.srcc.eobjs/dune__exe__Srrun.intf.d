bin/srrun.mli:
