bin/experiments.mli:
