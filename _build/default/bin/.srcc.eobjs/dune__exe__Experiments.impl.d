bin/experiments.ml: Arg Cmd Cmdliner Core Format Lazy Term
