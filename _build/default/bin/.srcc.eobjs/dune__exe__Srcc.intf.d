bin/srcc.mli:
