(* experiments: regenerate every table and figure of the paper's
   evaluation section. With no flags, everything runs. *)

let run_table2 () = Format.printf "%a@." Core.Experiments.pp_table2 (Core.Experiments.table2 ())

let measurements = lazy (Core.Experiments.measure_table2 ())

let run_fig7 () =
  Format.printf "%a@." Core.Experiments.pp_figure7
    (Core.Experiments.figure7 (Lazy.force measurements))

let run_fig8 () =
  Format.printf "%a@." Core.Experiments.pp_figure8
    (Core.Experiments.figure8 (Lazy.force measurements))

let run_fig9 () = Format.printf "%a@." Core.Experiments.pp_figure9 (Core.Experiments.figure9 ())

let run_fig10 () =
  Format.printf "%a@." Core.Experiments.pp_figure10 (Core.Experiments.figure10 ())

let run_funnel count =
  Format.printf "%a@." Core.Experiments.pp_funnel (Core.Experiments.corpus_funnel ~count ())

let run_ablations () =
  Format.printf "%a@." Core.Ablations.pp_deconfliction (Core.Ablations.deconfliction ());
  Format.printf "%a@." Core.Ablations.pp_policies (Core.Ablations.policies ());
  Format.printf "%a@." Core.Ablations.pp_warp_scaling (Core.Ablations.warp_scaling ())

let main table2 fig7 fig8 fig9 fig10 funnel ablations funnel_count =
  let all = not (table2 || fig7 || fig8 || fig9 || fig10 || funnel || ablations) in
  if table2 || all then run_table2 ();
  if fig7 || all then run_fig7 ();
  if fig8 || all then run_fig8 ();
  if fig9 || all then run_fig9 ();
  if fig10 || all then run_fig10 ();
  if funnel || all then run_funnel funnel_count;
  if ablations || all then run_ablations ()

open Cmdliner

let flag name doc = Arg.(value & flag & info [ name ] ~doc)

let cmd =
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Regenerate the paper's evaluation tables and figures (all by default)")
    Term.(
      const main
      $ flag "table2" "Print the benchmark inventory (Table 2)"
      $ flag "fig7" "SIMT efficiency per app (Figure 7)"
      $ flag "fig8" "Efficiency improvement vs speedup (Figure 8)"
      $ flag "fig9" "Soft-barrier threshold sweep (Figure 9)"
      $ flag "fig10" "Automatic speculative reconvergence (Figure 10)"
      $ flag "funnel" "Synthetic-corpus detection funnel (§5.4)"
      $ flag "ablations" "Design-choice ablations (deconfliction, policy, warps)"
      $ Arg.(value & opt int 520 & info [ "funnel-count" ] ~doc:"Corpus size"))

let () = exit (Cmd.eval cmd)
