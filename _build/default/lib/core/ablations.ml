let subjects () =
  List.map Workloads.Registry.find [ "rsbench"; "pathtracer"; "mc-gpu"; "gpu-mcml" ]

(* Every row of every ablation table is an independent bundle of
   simulations; fan them out like the Experiments drivers do.
   [Support.Domain_pool.map] keeps result order, so tables print
   byte-identically to a sequential run. *)
let pmap = Support.Domain_pool.map

(* ---- deconfliction strategy ---- *)

type deconflict_row = {
  app : string;
  baseline_cycles : int;
  dynamic_speedup : float;
  static_speedup : float;
  dynamic_barrier_issues : int;
  static_barrier_issues : int;
}

let barrier_issues (o : Runner.outcome) =
  let m = o.Runner.metrics in
  m.Simt.Metrics.barrier_joins + m.Simt.Metrics.barrier_waits + m.Simt.Metrics.barrier_cancels

let deconfliction ?config () =
  pmap
    (fun (spec : Workloads.Spec.t) ->
      let baseline = Runner.run_spec ?config Compile.baseline spec in
      let dynamic = Runner.run_spec ?config Compile.speculative spec in
      let static =
        Runner.run_spec ?config
          { Compile.speculative with Compile.mode = Compile.Speculative Passes.Deconflict.Static }
          spec
      in
      {
        app = spec.name;
        baseline_cycles = Runner.cycles baseline;
        dynamic_speedup = Runner.speedup ~baseline ~optimized:dynamic;
        static_speedup = Runner.speedup ~baseline ~optimized:static;
        dynamic_barrier_issues = barrier_issues dynamic;
        static_barrier_issues = barrier_issues static;
      })
    (subjects ())

(* ---- scheduler policy ---- *)

type policy_row = {
  app : string;
  most_threads_cycles : int;
  lowest_pc_cycles : int;
  round_robin_cycles : int;
}

let policies ?(config = Simt.Config.default) () =
  pmap
    (fun (spec : Workloads.Spec.t) ->
      let cycles_with policy =
        Runner.cycles
          (Runner.run_spec ~config:{ config with Simt.Config.policy } Compile.speculative spec)
      in
      {
        app = spec.name;
        most_threads_cycles = cycles_with Simt.Config.Most_threads;
        lowest_pc_cycles = cycles_with Simt.Config.Lowest_pc;
        round_robin_cycles = cycles_with Simt.Config.Round_robin;
      })
    (subjects ())

(* ---- resident warps ---- *)

type warps_row = { warps : int; baseline_cycles : int; specrecon_cycles : int; speedup : float }

let warp_scaling ?(warps = [ 1; 2; 4; 8 ]) () =
  let spec = Workloads.Registry.find "rsbench" in
  pmap
    (fun n ->
      let spec =
        {
          spec with
          Workloads.Spec.tweak_config =
            (fun c -> { (spec.Workloads.Spec.tweak_config c) with Simt.Config.n_warps = n });
        }
      in
      let baseline = Runner.run_spec Compile.baseline spec in
      let optimized = Runner.run_spec Compile.speculative spec in
      {
        warps = n;
        baseline_cycles = Runner.cycles baseline;
        specrecon_cycles = Runner.cycles optimized;
        speedup = Runner.speedup ~baseline ~optimized;
      })
    warps

(* ---- printers ---- *)

let pp_deconfliction ppf rows =
  Format.fprintf ppf "Ablation: deconfliction strategy (dynamic vs static, §4.3)@.";
  Format.fprintf ppf "  %-12s %10s %9s %9s %12s %12s@." "app" "base-cyc" "dyn-spd" "stat-spd"
    "dyn-barrier" "stat-barrier";
  List.iter
    (fun (r : deconflict_row) ->
      Format.fprintf ppf "  %-12s %10d %8.2fx %8.2fx %12d %12d@." r.app r.baseline_cycles
        r.dynamic_speedup r.static_speedup r.dynamic_barrier_issues r.static_barrier_issues)
    rows

let pp_policies ppf rows =
  Format.fprintf ppf "Ablation: scheduler policy (cycles under speculative reconvergence)@.";
  Format.fprintf ppf "  %-12s %13s %11s %12s@." "app" "most-threads" "lowest-pc" "round-robin";
  List.iter
    (fun (r : policy_row) ->
      Format.fprintf ppf "  %-12s %13d %11d %12d@." r.app r.most_threads_cycles
        r.lowest_pc_cycles r.round_robin_cycles)
    rows

let pp_warp_scaling ppf rows =
  Format.fprintf ppf "Ablation: resident warps (rsbench; latency hiding vs reconvergence)@.";
  Format.fprintf ppf "  %6s %12s %12s %9s@." "warps" "base-cyc" "spec-cyc" "speedup";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %6d %12d %12d %8.2fx@." r.warps r.baseline_cycles r.specrecon_cycles
        r.speedup)
    rows
