(** Ablation studies over the reproduction's design choices.

    These are not paper exhibits; they quantify the knobs DESIGN.md calls
    out so that a reader can see how much each one matters:

    - {b deconfliction strategy} (§4.3): static deletes the conflicting
      PDOM barrier (fewer barrier instructions), dynamic cancels it at
      run time (retains PDOM sync when the predicted point is not
      reached). The paper chose dynamic for its evaluation.
    - {b scheduler policy}: how the per-warp scheduler picks among
      runnable convergence groups. Reconvergence correctness comes from
      barriers, so policy only moves performance — but it moves it.
    - {b resident warps}: more warps hide more latency, shrinking the
      speedup attributable to reconvergence alone (the paper's V100 runs
      many warps per SM; our default is small and this table shows the
      sensitivity). *)

type deconflict_row = {
  app : string;
  baseline_cycles : int;
  dynamic_speedup : float;
  static_speedup : float;
  dynamic_barrier_issues : int; (* barrier instructions issued at run time *)
  static_barrier_issues : int;
}

val deconfliction : ?config:Simt.Config.t -> unit -> deconflict_row list

type policy_row = {
  app : string;
  most_threads_cycles : int;
  lowest_pc_cycles : int;
  round_robin_cycles : int;
}

(** Cycle counts per scheduling policy under speculative reconvergence. *)
val policies : ?config:Simt.Config.t -> unit -> policy_row list

type warps_row = { warps : int; baseline_cycles : int; specrecon_cycles : int; speedup : float }

(** RSBench speedup as the number of resident warps grows. *)
val warp_scaling : ?warps:int list -> unit -> warps_row list

val pp_deconfliction : Format.formatter -> deconflict_row list -> unit
val pp_policies : Format.formatter -> policy_row list -> unit
val pp_warp_scaling : Format.formatter -> warps_row list -> unit
