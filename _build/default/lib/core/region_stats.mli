(** Per-region SIMT-efficiency breakdown.

    The paper argues Speculative Reconvergence trades convergence in the
    prolog/epilog for convergence in the expensive common code ("we
    improve overall SIMT efficiency, especially in the compute-intensive
    portions of code", §5.2). This module makes that trade measurable: it
    classifies every issued instruction (via the simulator's tracer) as
    inside or outside the predicted regions and reports the efficiency of
    each side separately. *)

type t = {
  region_issues : int;
  region_active : int;
  other_issues : int;
  other_active : int;
  warp_size : int;
}

(** Efficiency inside the predicted regions (0 when nothing issued). *)
val region_efficiency : t -> float

(** Efficiency outside them. *)
val other_efficiency : t -> float

(** [measure ?config options spec] — compile [spec] under [options], run
    it with a tracing interpreter, and split the issues by whether the
    issuing block belongs to a hint's common-code region (the blocks
    dominated by a predicted label, or a predicted callee's body). When
    the compilation has no hints, every issue counts as "other". *)
val measure :
  ?config:Simt.Config.t -> Compile.options -> Workloads.Spec.t -> t

val pp : Format.formatter -> t -> unit
