(** Reproduction of every table and figure in the paper's evaluation
    (§5). Each function regenerates the data behind one exhibit; the
    [pp_*] printers render rows/series shaped like the paper's. *)

(** One Table-2 workload measured under its paper configuration:
    [baseline] is PDOM-only compilation; [optimized] is
    programmer-annotated Speculative Reconvergence when the source carries
    hints, or automatic detection for the unannotated subjects
    (MeiyaMD5, OptiX — the paper validated those through §5.4). *)
type app_measurement = {
  name : string;
  mode : string; (* "annotated" | "automatic" *)
  baseline : Runner.outcome;
  optimized : Runner.outcome;
}

(** Runs every Table-2 workload. The result feeds {!figure7} and
    {!figure8}, so the (expensive) simulations run once. *)
val measure_table2 : ?config:Simt.Config.t -> unit -> app_measurement list

(** Table 2: benchmark inventory (name, description). *)
val table2 : unit -> (string * string) list

(** Figure 7: SIMT efficiency before/after per application. *)
type fig7_row = { app : string; baseline_eff : float; optimized_eff : float; mode : string }

val figure7 : app_measurement list -> fig7_row list

(** Figure 8: relative SIMT-efficiency improvement vs. speedup. *)
type fig8_row = { app : string; eff_improvement : float; speedup : float }

val figure8 : app_measurement list -> fig8_row list

(** Figure 9: soft-barrier threshold sweep (SIMT efficiency, speedup) for
    PathTracer and XSBench. *)
type fig9_point = { threshold : int; efficiency : float; speedup : float }

type fig9_series = { subject : string; points : fig9_point list }

val figure9 : ?config:Simt.Config.t -> ?thresholds:int list -> unit -> fig9_series list

(** Figure 10: upside of automatic Speculative Reconvergence on the
    applications the detector flags, plus the auto-vs-annotated parity
    check on annotated workloads. *)
type fig10_row = {
  app : string;
  baseline_eff : float;
  auto_eff : float;
  auto_speedup : float;
  candidates : int;
  matches_annotated : bool option; (* None when there is no annotated variant *)
}

val figure10 : ?config:Simt.Config.t -> unit -> fig10_row list

(** §5.4 funnel over the synthetic corpus: applications studied → low
    SIMT efficiency → detector hits → significant wins. *)
type funnel = {
  total : int;
  low_efficiency : int;
  detected : int;
  significant : int;
  per_app : (int * string * float * float option) list;
      (** id, shape, baseline efficiency, speedup when detected *)
}

val corpus_funnel : ?seed:int -> ?count:int -> unit -> funnel

val pp_table2 : Format.formatter -> (string * string) list -> unit
val pp_figure7 : Format.formatter -> fig7_row list -> unit
val pp_figure8 : Format.formatter -> fig8_row list -> unit
val pp_figure9 : Format.formatter -> fig9_series list -> unit
val pp_figure10 : Format.formatter -> fig10_row list -> unit
val pp_funnel : Format.formatter -> funnel -> unit
