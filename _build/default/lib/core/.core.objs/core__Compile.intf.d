lib/core/compile.mli: Analysis Front Ir Passes
