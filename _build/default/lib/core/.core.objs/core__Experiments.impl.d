lib/core/experiments.ml: Compile Float Format List Printf Runner String Support Workloads
