lib/core/region_stats.mli: Compile Format Simt Workloads
