lib/core/region_stats.ml: Analysis Compile Format Hashtbl Ir List Passes Simt Workloads
