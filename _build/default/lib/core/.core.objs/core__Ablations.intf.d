lib/core/ablations.mli: Format Simt
