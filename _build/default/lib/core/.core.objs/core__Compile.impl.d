lib/core/compile.ml: Analysis Front Hashtbl Ir List Option Passes
