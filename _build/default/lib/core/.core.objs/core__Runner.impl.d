lib/core/runner.ml: Analysis Compile Simt Workloads
