lib/core/experiments.mli: Format Runner Simt
