lib/core/ablations.ml: Compile Format List Passes Runner Simt Support Workloads
