lib/core/runner.mli: Analysis Compile Ir Simt Workloads
