type app_measurement = {
  name : string;
  mode : string;
  baseline : Runner.outcome;
  optimized : Runner.outcome;
}

let check_or_fail name (o : Runner.outcome) =
  match o.check with
  | Ok () -> o
  | Error msg -> failwith (Printf.sprintf "Experiments: %s output check failed: %s" name msg)

let measure_one ?config (spec : Workloads.Spec.t) =
  let baseline = check_or_fail spec.name (Runner.run_spec ?config Compile.baseline spec) in
  let annotated = Runner.run_spec ?config Compile.speculative spec in
  let has_hints =
    annotated.compiled.applied <> [] || annotated.compiled.interproc_applied <> []
  in
  if has_hints then
    { name = spec.name; mode = "annotated"; baseline; optimized = check_or_fail spec.name annotated }
  else
    let auto = check_or_fail spec.name (Runner.run_spec ?config Compile.automatic spec) in
    { name = spec.name; mode = "automatic"; baseline; optimized = auto }

(* The exhibits below are embarrassingly parallel across workloads /
   sweep points: every simulation owns all of its state, so they fan out
   over a domain pool. [Support.Domain_pool.map] preserves input order
   (and replays exceptions deterministically), which keeps every printed
   table byte-identical to a sequential run — set SPECRECON_DOMAINS=1 to
   force the sequential path and check. *)
let pmap = Support.Domain_pool.map

let measure_table2 ?config () = pmap (measure_one ?config) Workloads.Registry.all

let table2 () =
  List.map (fun (s : Workloads.Spec.t) -> (s.name, s.description)) Workloads.Registry.all

(* ---- Figure 7 ---- *)

type fig7_row = { app : string; baseline_eff : float; optimized_eff : float; mode : string }

let figure7 measurements =
  List.map
    (fun m ->
      {
        app = m.name;
        baseline_eff = Runner.efficiency m.baseline;
        optimized_eff = Runner.efficiency m.optimized;
        mode = m.mode;
      })
    measurements

(* ---- Figure 8 ---- *)

type fig8_row = { app : string; eff_improvement : float; speedup : float }

let figure8 measurements =
  List.map
    (fun m ->
      let b = Runner.efficiency m.baseline in
      let o = Runner.efficiency m.optimized in
      {
        app = m.name;
        eff_improvement = (if b > 0.0 then o /. b else 0.0);
        speedup = Runner.speedup ~baseline:m.baseline ~optimized:m.optimized;
      })
    measurements

(* ---- Figure 9 ---- *)

type fig9_point = { threshold : int; efficiency : float; speedup : float }
type fig9_series = { subject : string; points : fig9_point list }

let default_thresholds = [ 0; 2; 4; 6; 8; 12; 16; 20; 24; 28; 32 ]

let figure9 ?config ?(thresholds = default_thresholds) () =
  let subjects = Workloads.Registry.soft_barrier_subjects in
  (* Flatten subjects × thresholds into one work list so the sweep fills
     the whole pool instead of one domain per subject. *)
  let baselines =
    pmap
      (fun (spec : Workloads.Spec.t) ->
        check_or_fail spec.name (Runner.run_spec ?config Compile.baseline spec))
      subjects
  in
  let sweep =
    List.concat_map
      (fun (spec, baseline) -> List.map (fun t -> (spec, baseline, t)) thresholds)
      (List.combine subjects baselines)
  in
  let points =
    pmap
      (fun ((spec : Workloads.Spec.t), baseline, threshold) ->
        let options = { Compile.speculative with Compile.threshold = Compile.Set threshold } in
        let o = check_or_fail spec.name (Runner.run_spec ?config options spec) in
        {
          threshold;
          efficiency = Runner.efficiency o;
          speedup = Runner.speedup ~baseline ~optimized:o;
        })
      sweep
  in
  let rec chunks = function
    | [] -> []
    | rest ->
      let n = List.length thresholds in
      let head = List.filteri (fun i _ -> i < n) rest in
      let tail = List.filteri (fun i _ -> i >= n) rest in
      head :: chunks tail
  in
  List.map2
    (fun (spec : Workloads.Spec.t) points -> { subject = spec.name; points })
    subjects (chunks points)

(* ---- Figure 10 ---- *)

type fig10_row = {
  app : string;
  baseline_eff : float;
  auto_eff : float;
  auto_speedup : float;
  candidates : int;
  matches_annotated : bool option;
}

let figure10 ?config () =
  pmap
    (fun (spec : Workloads.Spec.t) ->
      let baseline = check_or_fail spec.name (Runner.run_spec ?config Compile.baseline spec) in
      let auto = check_or_fail spec.name (Runner.run_spec ?config Compile.automatic spec) in
      let annotated = Runner.run_spec ?config Compile.speculative spec in
      let matches_annotated =
        if annotated.compiled.applied = [] && annotated.compiled.interproc_applied = [] then None
        else
          (* "Automatic Speculative Reconvergence performs the same as
             programmer-annotated variants" (§5.4): same cycles within
             5%. *)
          let a = float_of_int (Runner.cycles annotated) in
          let b = float_of_int (Runner.cycles auto) in
          Some (a > 0.0 && Float.abs (a -. b) /. a < 0.05)
      in
      {
        app = spec.name;
        baseline_eff = Runner.efficiency baseline;
        auto_eff = Runner.efficiency auto;
        auto_speedup = Runner.speedup ~baseline ~optimized:auto;
        candidates = List.length auto.compiled.candidates;
        matches_annotated;
      })
    (Workloads.Registry.auto_subjects
    @ List.filter
        (fun (s : Workloads.Spec.t) ->
          List.for_all
            (fun (a : Workloads.Spec.t) -> not (String.equal a.name s.name))
            Workloads.Registry.auto_subjects)
        [ Workloads.Registry.find "pathtracer"; Workloads.Registry.find "mc-gpu" ])

(* ---- §5.4 funnel ---- *)

type funnel = {
  total : int;
  low_efficiency : int;
  detected : int;
  significant : int;
  per_app : (int * string * float * float option) list;
}

let corpus_funnel ?(seed = 520) ?(count = 520) () =
  let apps = Workloads.Corpus.generate ~seed ~count in
  let config = Workloads.Corpus.config in
  let per_app =
    pmap
      (fun (app : Workloads.Corpus.app) ->
        let baseline =
          Runner.run_source ~config ~init:Workloads.Corpus.init Compile.baseline
            ~source:app.source ~args:app.args
        in
        let eff = Runner.efficiency baseline in
        let speedup =
          if eff >= 0.8 then None
          else begin
            let auto =
              Runner.run_source ~config ~init:Workloads.Corpus.init Compile.automatic
                ~source:app.source ~args:app.args
            in
            if auto.compiled.candidates = [] then None
            else Some (Runner.speedup ~baseline ~optimized:auto)
          end
        in
        (app.id, Workloads.Corpus.shape_name app.shape, eff, speedup))
      apps
  in
  {
    total = count;
    low_efficiency = List.length (List.filter (fun (_, _, eff, _) -> eff < 0.8) per_app);
    detected = List.length (List.filter (fun (_, _, _, s) -> s <> None) per_app);
    significant =
      List.length
        (List.filter (fun (_, _, _, s) -> match s with Some x -> x >= 1.1 | None -> false) per_app);
    per_app;
  }

(* ---- printers ---- *)

let pp_table2 ppf rows =
  Format.fprintf ppf "Table 2: benchmarks@.";
  List.iter (fun (name, desc) -> Format.fprintf ppf "  %-12s %s@." name desc) rows

let pp_figure7 ppf rows =
  Format.fprintf ppf "Figure 7: SIMT efficiency (baseline -> speculative reconvergence)@.";
  Format.fprintf ppf "  %-12s %10s %10s  %s@." "app" "baseline" "specrecon" "mode";
  List.iter
    (fun (r : fig7_row) ->
      Format.fprintf ppf "  %-12s %9.1f%% %9.1f%%  %s@." r.app (100.0 *. r.baseline_eff)
        (100.0 *. r.optimized_eff) r.mode)
    rows

let pp_figure8 ppf rows =
  Format.fprintf ppf "Figure 8: SIMT efficiency improvement vs speedup@.";
  Format.fprintf ppf "  %-12s %12s %9s@." "app" "eff-improve" "speedup";
  List.iter
    (fun (r : fig8_row) ->
      Format.fprintf ppf "  %-12s %11.2fx %8.2fx@." r.app r.eff_improvement r.speedup)
    rows

let pp_figure9 ppf series =
  Format.fprintf ppf "Figure 9: soft-barrier threshold sweep@.";
  List.iter
    (fun s ->
      Format.fprintf ppf "  %s:@." s.subject;
      Format.fprintf ppf "    %9s %11s %9s@." "threshold" "efficiency" "speedup";
      List.iter
        (fun p ->
          Format.fprintf ppf "    %9d %10.1f%% %8.2fx@." p.threshold (100.0 *. p.efficiency)
            p.speedup)
        s.points)
    series

let pp_figure10 ppf rows =
  Format.fprintf ppf "Figure 10: automatic speculative reconvergence@.";
  Format.fprintf ppf "  %-12s %9s %9s %9s %11s %s@." "app" "base-eff" "auto-eff" "speedup"
    "candidates" "auto==annotated";
  List.iter
    (fun (r : fig10_row) ->
      Format.fprintf ppf "  %-12s %8.1f%% %8.1f%% %8.2fx %11d %s@." r.app
        (100.0 *. r.baseline_eff) (100.0 *. r.auto_eff) r.auto_speedup r.candidates
        (match r.matches_annotated with
        | None -> "(no annotation)"
        | Some true -> "yes"
        | Some false -> "NO"))
    rows

let pp_funnel ppf f =
  Format.fprintf ppf
    "Corpus funnel (cf. §5.4: 520 studied, 75 low-efficiency, 16 detected, 5 significant)@.";
  Format.fprintf ppf "  studied:        %4d@." f.total;
  Format.fprintf ppf "  eff < 80%%:      %4d@." f.low_efficiency;
  Format.fprintf ppf "  detected:       %4d@." f.detected;
  Format.fprintf ppf "  significant:    %4d@." f.significant
