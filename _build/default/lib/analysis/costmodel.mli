(** Static cost estimation for the §4.5 profitability heuristics.

    Instruction costs mirror the simulator's latency classes so that the
    compiler's notion of "expensive" matches what the machine will see.
    Loop nesting multiplies by a static trip-count guess that a profile
    can override. *)

type weights = {
  alu : int;
  float_op : int;
  special : int; (* sqrt/exp/log/sin/cos *)
  memory : int;
  call_overhead : int;
  barrier : int;
  rand : int;
  default_trip : int; (* static trip-count guess per loop level *)
}

val default_weights : weights

(** [inst_cost w inst] — cost of a single instruction, calls counted at
    [call_overhead] (callee bodies are added by [func_cost] callers that
    need interprocedural totals). *)
val inst_cost : weights -> Ir.Types.inst -> int

(** [block_cost w block] — sum of the block's instruction costs plus 1 for
    the terminator. *)
val block_cost : weights -> Ir.Types.block -> int

(** [region_cost w func blocks ~loops ~profile] — total weighted cost of a
    set of blocks: each block's cost times its estimated execution
    frequency ([default_trip] ^ relative nesting depth, or the profile's
    measured frequency when available). *)
val region_cost :
  weights ->
  Ir.Types.func ->
  Sets.Int_set.t ->
  loops:Loops.t ->
  profile:Profile.t option ->
  float

(** [func_body_cost w program name] — cost of a whole function body with
    direct callee bodies added (one level deep; recursion cut off). *)
val func_body_cost : weights -> Ir.Types.program -> string -> int
