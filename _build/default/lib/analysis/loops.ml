open Sets

type loop = {
  header : int;
  body : Int_set.t;
  latches : int list;
  exits : (int * int) list;
  depth : int;
  parent : int option;
}

type t = { all : loop list }

(* Body of the natural loop of back edge [latch -> header]: header plus all
   nodes that reach the latch without passing through the header. *)
let natural_loop_body g header latch =
  let body = ref (Int_set.singleton header) in
  let rec pull id =
    if not (Int_set.mem id !body) then begin
      body := Int_set.add id !body;
      List.iter pull (Cfg.preds g id)
    end
  in
  pull latch;
  !body

let compute g dom_tree =
  (* Collect back edges and merge loops that share a header. *)
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          if Dom.dominates dom_tree dst src then begin
            let latches = Option.value (Hashtbl.find_opt by_header dst) ~default:[] in
            Hashtbl.replace by_header dst (src :: latches)
          end)
        (Cfg.succs g src))
    (Cfg.nodes g);
  let raw =
    Hashtbl.fold
      (fun header latches acc ->
        let body =
          List.fold_left
            (fun acc latch -> Int_set.union acc (natural_loop_body g header latch))
            Int_set.empty latches
        in
        (header, List.sort compare latches, body) :: acc)
      by_header []
  in
  (* Nesting: a loop is nested in another iff its body is contained in the
     other's. Depth = number of enclosing loops + 1; parent = smallest
     enclosing loop. *)
  let all =
    List.map
      (fun (header, latches, body) ->
        let enclosing =
          List.filter (fun (h, _, b) -> h <> header && Int_set.subset body b) raw
        in
        let parent =
          match
            List.sort
              (fun (_, _, a) (_, _, b) -> compare (Int_set.cardinal a) (Int_set.cardinal b))
              enclosing
          with
          | [] -> None
          | (h, _, _) :: _ -> Some h
        in
        let exits =
          Int_set.fold
            (fun src acc ->
              List.fold_left
                (fun acc dst -> if Int_set.mem dst body then acc else (src, dst) :: acc)
                acc (Cfg.succs g src))
            body []
          |> List.sort compare
        in
        { header; body; latches; exits; depth = 1 + List.length enclosing; parent })
      raw
  in
  let all = List.sort (fun a b -> compare (a.depth, a.header) (b.depth, b.header)) all in
  { all }

let loops t = t.all
let loop_of t header = List.find_opt (fun l -> l.header = header) t.all

let innermost_containing t id =
  List.fold_left
    (fun best l ->
      if Int_set.mem id l.body then
        match best with
        | Some b when b.depth >= l.depth -> best
        | Some _ | None -> Some l
      else best)
    None t.all

let depth_of t id = match innermost_containing t id with Some l -> l.depth | None -> 0

let pp ppf t =
  List.iter
    (fun l ->
      Format.fprintf ppf "loop header=bb%d depth=%d parent=%s body=%a latches=[%s]@." l.header
        l.depth
        (match l.parent with None -> "-" | Some h -> Printf.sprintf "bb%d" h)
        pp_int_set l.body
        (String.concat "; " (List.map string_of_int l.latches)))
    t.all
