(** Dynamic block-frequency profiles.

    The simulator can export how many times each basic block issued, keyed
    by (function, block). The automatic detector (§4.5) optionally
    consumes a profile to replace its static trip-count guesses — the
    paper notes that "profile information may help improve the accuracy of
    our profitability tests". *)

type t

val empty : unit -> t

(** [record t ~func ~block ~count] adds [count] executions. *)
val record : t -> func:string -> block:int -> count:int -> unit

(** [count t ~func ~block] — recorded executions (0 if absent). *)
val count : t -> func:string -> block:int -> int

(** [merge a b] — new profile with summed counts. *)
val merge : t -> t -> t

(** [trip_estimate t ~func ~header ~preheader_freq] — average iterations
    per loop entry estimated as header frequency / entry frequency;
    [None] when the profile has no data for the header. *)
val trip_estimate : t -> func:string -> header:int -> entries:int -> float option

val is_empty : t -> bool
val pp : Format.formatter -> t -> unit
