(** Shared set/map instantiations over small integer ids (blocks,
    registers, barriers). *)

module Int_set : Set.S with type elt = int
module Int_map : Map.S with type key = int

(** Renders as [{1, 2, 3}]. *)
val pp_int_set : Format.formatter -> Int_set.t -> unit
