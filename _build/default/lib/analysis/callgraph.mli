(** Call graph over a program's functions. *)

type t

val build : Ir.Types.program -> t

(** Direct callees of a function (each listed once). *)
val callees : t -> string -> string list

(** Direct callers of a function (each listed once). *)
val callers : t -> string -> string list

(** [call_sites t ~caller ~callee] — blocks of [caller] containing at least
    one call to [callee]. *)
val call_sites : t -> caller:string -> callee:string -> int list

(** [is_recursive t name] — does [name] participate in a call cycle
    (including self-recursion)? *)
val is_recursive : t -> string -> bool

(** Functions in bottom-up order: every function appears after all its
    callees, except within cycles (broken arbitrarily). *)
val bottom_up : t -> string list

val pp : Format.formatter -> t -> unit
