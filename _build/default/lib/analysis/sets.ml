(* Shared set/map instantiations over small integer ids (blocks, registers,
   barriers). *)

module Int_set = Set.Make (Int)
module Int_map = Map.Make (Int)

let pp_int_set ppf s =
  Format.fprintf ppf "{%s}"
    (String.concat ", " (List.map string_of_int (Int_set.elements s)))
