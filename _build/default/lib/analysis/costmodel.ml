open Sets

type weights = {
  alu : int;
  float_op : int;
  special : int;
  memory : int;
  call_overhead : int;
  barrier : int;
  rand : int;
  default_trip : int;
}

let default_weights =
  {
    alu = 1;
    float_op = 2;
    special = 8;
    memory = 24;
    call_overhead = 4;
    barrier = 1;
    rand = 4;
    default_trip = 8;
  }

let inst_cost w = function
  | Ir.Types.Bin (op, _, _, _) -> if Ir.Types.is_float_op op then w.float_op else w.alu
  | Ir.Types.Un (op, _, _) -> if Ir.Types.is_special_unop op then w.special else w.alu
  | Ir.Types.Mov _ | Ir.Types.Tid _ | Ir.Types.Lane _ | Ir.Types.Nthreads _ -> w.alu
  | Ir.Types.Load _ | Ir.Types.Store _ -> w.memory
  | Ir.Types.Rand _ | Ir.Types.Randint _ -> w.rand
  | Ir.Types.Call _ -> w.call_overhead
  | Ir.Types.Join _ | Ir.Types.Rejoin _ | Ir.Types.Wait _ | Ir.Types.Wait_threshold _
  | Ir.Types.Cancel _ | Ir.Types.Arrived _ -> w.barrier

let block_cost w (b : Ir.Types.block) =
  1 + List.fold_left (fun acc i -> acc + inst_cost w i) 0 b.insts

let region_cost w (f : Ir.Types.func) blocks ~loops ~profile =
  Int_set.fold
    (fun id acc ->
      let b = Ir.Types.block f id in
      let freq =
        match profile with
        | Some p when Profile.count p ~func:f.fname ~block:id > 0 ->
          float_of_int (Profile.count p ~func:f.fname ~block:id)
        | Some _ | None ->
          float_of_int w.default_trip ** float_of_int (Loops.depth_of loops id)
      in
      acc +. (float_of_int (block_cost w b) *. freq))
    blocks 0.0

let func_body_cost w (p : Ir.Types.program) name =
  match Hashtbl.find_opt p.funcs name with
  | None -> 0
  | Some f ->
    let direct = ref 0 in
    Ir.Types.iter_blocks f (fun b ->
        direct := !direct + block_cost w b;
        List.iter
          (fun i ->
            match i with
            | Ir.Types.Call { callee; _ } when not (String.equal callee name) -> (
              match Hashtbl.find_opt p.funcs callee with
              | Some g ->
                Ir.Types.iter_blocks g (fun gb -> direct := !direct + block_cost w gb)
              | None -> ())
            | Ir.Types.Call _ | Ir.Types.Bin _ | Ir.Types.Un _ | Ir.Types.Mov _
            | Ir.Types.Load _ | Ir.Types.Store _ | Ir.Types.Tid _ | Ir.Types.Lane _
            | Ir.Types.Nthreads _ | Ir.Types.Rand _ | Ir.Types.Randint _ | Ir.Types.Join _
            | Ir.Types.Rejoin _ | Ir.Types.Wait _ | Ir.Types.Wait_threshold _
            | Ir.Types.Cancel _ | Ir.Types.Arrived _ -> ())
          b.insts);
    !direct
