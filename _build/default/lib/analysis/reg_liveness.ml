open Sets

module Set_lattice = struct
  type t = Int_set.t

  let bottom = Int_set.empty
  let equal = Int_set.equal
  let join = Int_set.union
end

module Solver = Dataflow.Make (Set_lattice)

type t = { func : Ir.Types.func; solution : Solver.result }

(* State before an instruction, given the state after it. *)
let step state inst =
  let without_defs = List.fold_left (fun s r -> Int_set.remove r s) state (Ir.Types.defs inst) in
  List.fold_left (fun s r -> Int_set.add r s) without_defs (Ir.Types.uses inst)

let block_transfer (f : Ir.Types.func) id out_state =
  let b = Ir.Types.block f id in
  let after_term =
    List.fold_left (fun s r -> Int_set.add r s) out_state (Ir.Types.term_uses b.term)
  in
  List.fold_left step after_term (List.rev b.insts)

let run (f : Ir.Types.func) =
  let g = Cfg.of_func f in
  let solution =
    Solver.solve g Dataflow.Backward ~boundary:Int_set.empty ~transfer:(block_transfer f)
  in
  { func = f; solution }

let live_in t id = Solver.before t.solution id
let live_out t id = Solver.after t.solution id

let live_after t ~block ~index =
  let b = Ir.Types.block t.func block in
  let after_term =
    List.fold_left
      (fun s r -> Int_set.add r s)
      (live_out t block) (Ir.Types.term_uses b.term)
  in
  let suffix = List.filteri (fun i _ -> i > index) b.insts in
  List.fold_left step after_term (List.rev suffix)

let pp ppf t =
  Ir.Types.iter_blocks t.func (fun b ->
      Format.fprintf ppf "bb%d: live_in=%a live_out=%a@." b.id pp_int_set (live_in t b.id)
        pp_int_set (live_out t b.id))
