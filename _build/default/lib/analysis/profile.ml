type t = { counts : (string * int, int) Hashtbl.t }

let empty () = { counts = Hashtbl.create 64 }

let record t ~func ~block ~count =
  let key = (func, block) in
  let existing = Option.value (Hashtbl.find_opt t.counts key) ~default:0 in
  Hashtbl.replace t.counts key (existing + count)

let count t ~func ~block = Option.value (Hashtbl.find_opt t.counts (func, block)) ~default:0

let merge a b =
  let result = empty () in
  let copy src =
    Hashtbl.iter (fun (func, block) c -> record result ~func ~block ~count:c) src.counts
  in
  copy a;
  copy b;
  result

let trip_estimate t ~func ~header ~entries =
  let header_freq = count t ~func ~block:header in
  if header_freq = 0 || entries <= 0 then None
  else Some (float_of_int header_freq /. float_of_int entries)

let is_empty t = Hashtbl.length t.counts = 0

let pp ppf t =
  let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counts [] in
  List.iter
    (fun ((func, block), c) -> Format.fprintf ppf "%s/bb%d: %d@." func block c)
    (List.sort compare entries)
