(** Thread-divergence analysis.

    Determines which branches are divergent — able to evaluate differently
    across the threads of a warp — so the baseline pass knows where PDOM
    reconvergence is required at all, and the cost heuristics (§4.5) know
    which memory accesses risk becoming divergent.

    Sources of divergence: the thread/lane index, per-thread random draws,
    loads from thread-varying addresses, calls to functions that return
    thread-varying results, and any definition executed under divergent
    control (different threads may or may not execute it), which is
    modelled through control dependence on divergent branches. Kernel
    parameters are uniform (set by the launch); device-function parameters
    are as divergent as the arguments at their call sites, approximated
    conservatively by a whole-function summary. *)

open Sets

type t

(** [run program] analyses every function to a fixpoint across the call
    graph (recursive cycles are treated conservatively as divergent). *)
val run : Ir.Types.program -> t

(** [divergent_regs t ~func] — registers that may hold thread-varying
    values in [func]. *)
val divergent_regs : t -> func:string -> Int_set.t

(** [divergent_branches t ~func] — blocks of [func] whose terminator is a
    conditional branch on a thread-varying value. *)
val divergent_branches : t -> func:string -> Int_set.t

(** [branch_is_divergent t ~func ~block]. *)
val branch_is_divergent : t -> func:string -> block:int -> bool

(** [returns_divergent t ~func] — may the function's return value be
    thread-varying? *)
val returns_divergent : t -> func:string -> bool

(** [divergent_loads t ~func] — count of load/store instructions in [func]
    whose address register is thread-varying (feeds the §4.5 memory
    heuristic). *)
val divergent_loads : t -> func:string -> int

val pp : Format.formatter -> t -> unit
