type t = {
  root : int;
  idom_tbl : (int, int) Hashtbl.t; (* node -> immediate dominator; root maps to itself *)
  rpo_index : (int, int) Hashtbl.t;
}

(* Cooper, Harvey & Kennedy, "A Simple, Fast Dominance Algorithm". *)
let compute g =
  let order = Cfg.rpo g in
  let rpo_index = Hashtbl.create 16 in
  List.iteri (fun i id -> Hashtbl.replace rpo_index id i) order;
  let idom_tbl = Hashtbl.create 16 in
  let root = Cfg.entry g in
  Hashtbl.replace idom_tbl root root;
  let intersect a b =
    let rec walk a b =
      if a = b then a
      else
        let ia = Hashtbl.find rpo_index a and ib = Hashtbl.find rpo_index b in
        if ia > ib then walk (Hashtbl.find idom_tbl a) b else walk a (Hashtbl.find idom_tbl b)
    in
    walk a b
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun id ->
        if id <> root then begin
          let processed_preds =
            List.filter (fun p -> Hashtbl.mem idom_tbl p) (Cfg.preds g id)
          in
          match processed_preds with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            if Hashtbl.find_opt idom_tbl id <> Some new_idom then begin
              Hashtbl.replace idom_tbl id new_idom;
              changed := true
            end
        end)
      order
  done;
  { root; idom_tbl; rpo_index }

let idom t id =
  if id = t.root then None
  else Hashtbl.find_opt t.idom_tbl id

let rec dominates t a b =
  if a = b then true
  else
    match idom t b with
    | None -> false
    | Some parent -> dominates t a parent

let strictly_dominates t a b = a <> b && dominates t a b

let children t id =
  Hashtbl.fold (fun node parent acc -> if parent = id && node <> id then node :: acc else acc)
    t.idom_tbl []
  |> List.sort compare

(* Cooper et al. dominance-frontier computation: a join point with several
   predecessors is in the frontier of every dominator of a predecessor up
   to (but excluding) the join's immediate dominator. *)
let frontier t g id =
  let result = ref [] in
  List.iter
    (fun join ->
      let preds = Cfg.preds g join in
      if List.length preds >= 2 then
        List.iter
          (fun pred ->
            if Hashtbl.mem t.idom_tbl pred then begin
              let stop = Hashtbl.find_opt t.idom_tbl join in
              let rec runner node =
                if Some node <> stop then begin
                  if node = id && not (List.mem join !result) then result := join :: !result;
                  match idom t node with
                  | Some parent when parent <> node -> runner parent
                  | Some _ | None -> ()
                end
              in
              runner pred
            end)
          preds)
    (Cfg.nodes g);
  List.sort compare !result

let common_ancestor t a b =
  if not (Hashtbl.mem t.idom_tbl a) then
    invalid_arg (Printf.sprintf "Dom.common_ancestor: node %d unreachable" a);
  if not (Hashtbl.mem t.idom_tbl b) then
    invalid_arg (Printf.sprintf "Dom.common_ancestor: node %d unreachable" b);
  let rec walk a b =
    if a = b then a
    else
      let ia = Hashtbl.find t.rpo_index a and ib = Hashtbl.find t.rpo_index b in
      if ia > ib then walk (Hashtbl.find t.idom_tbl a) b else walk a (Hashtbl.find t.idom_tbl b)
  in
  walk a b

module Post = struct
  type pt = { tree : t; rgraph : Cfg.t }

  let compute g =
    let rgraph = Cfg.reverse g in
    { tree = compute rgraph; rgraph }

  let ipdom pt id = idom pt.tree id
  let postdominates pt a b = dominates pt.tree a b
  let tree pt = pt.tree
  let graph pt = pt.rgraph
end
