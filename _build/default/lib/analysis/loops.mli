(** Natural-loop detection and the loop nesting forest.

    Loop structure feeds the automatic detector (§4.5): Iteration Delay
    looks for a divergent branch inside a loop, Loop Merge for an inner
    loop with a divergent trip count nested in an outer loop, and the cost
    model weights block costs by loop nesting depth. *)

type loop = {
  header : int;
  body : Sets.Int_set.t; (* includes the header *)
  latches : int list; (* sources of back edges into the header *)
  exits : (int * int) list; (* (from-block-in-loop, to-block-outside) edges *)
  depth : int; (* 1 = outermost *)
  parent : int option; (* header of the enclosing loop *)
}

type t

(** [compute g dom_tree] finds all natural loops of reducible back edges
    (edges [n -> h] where [h] dominates [n]); loops sharing a header are
    merged. *)
val compute : Cfg.t -> Dom.t -> t

(** All loops, outermost first. *)
val loops : t -> loop list

(** [loop_of t header] finds a loop by header. *)
val loop_of : t -> int -> loop option

(** [innermost_containing t id] is the deepest loop whose body contains
    [id], if any. *)
val innermost_containing : t -> int -> loop option

(** [depth_of t id] is the nesting depth of [id] (0 if not in a loop). *)
val depth_of : t -> int -> int

val pp : Format.formatter -> t -> unit
