lib/analysis/loops.mli: Cfg Dom Format Sets
