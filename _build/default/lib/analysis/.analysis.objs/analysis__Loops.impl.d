lib/analysis/loops.ml: Cfg Dom Format Hashtbl Int_set List Option Printf Sets String
