lib/analysis/costmodel.mli: Ir Loops Profile Sets
