lib/analysis/callgraph.mli: Format Ir
