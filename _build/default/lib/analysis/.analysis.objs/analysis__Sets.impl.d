lib/analysis/sets.ml: Format Int List Map Set String
