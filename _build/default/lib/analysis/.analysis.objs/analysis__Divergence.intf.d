lib/analysis/divergence.mli: Format Int_set Ir Sets
