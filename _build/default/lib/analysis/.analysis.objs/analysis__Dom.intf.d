lib/analysis/dom.mli: Cfg
