lib/analysis/callgraph.ml: Format Hashtbl Ir List Option String
