lib/analysis/costmodel.ml: Hashtbl Int_set Ir List Loops Profile Sets String
