lib/analysis/sets.mli: Format Map Set
