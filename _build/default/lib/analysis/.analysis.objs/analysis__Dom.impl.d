lib/analysis/dom.ml: Cfg Hashtbl List Printf
