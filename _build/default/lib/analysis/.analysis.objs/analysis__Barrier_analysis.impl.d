lib/analysis/barrier_analysis.ml: Cfg Dataflow Format Int_set Ir List Set Sets
