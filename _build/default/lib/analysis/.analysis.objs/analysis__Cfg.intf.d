lib/analysis/cfg.mli: Format Ir
