lib/analysis/dataflow.mli: Cfg
