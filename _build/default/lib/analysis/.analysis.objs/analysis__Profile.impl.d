lib/analysis/profile.ml: Format Hashtbl List Option
