lib/analysis/cfg.ml: Format Hashtbl Ir List Option String
