lib/analysis/reg_liveness.ml: Cfg Dataflow Format Int_set Ir List Sets
