lib/analysis/profile.mli: Format
