lib/analysis/barrier_analysis.mli: Format Int_set Ir Sets
