lib/analysis/divergence.ml: Callgraph Cfg Dom Format Hashtbl Int_set Ir List Printf Sets String
