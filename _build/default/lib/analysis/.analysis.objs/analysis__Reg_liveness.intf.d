lib/analysis/reg_liveness.mli: Format Int_set Ir Sets
