lib/analysis/dataflow.ml: Cfg Hashtbl List Option Queue
