(** Classic backward register liveness over the IR.

    Barrier live-range analysis ({!Barrier_analysis}) is the paper's
    specialised variant; this is the standard register form, used by the
    dead-code-elimination cleanup pass and available to future passes. *)

open Sets

type t

(** [run func] solves liveness for every reachable block. Call arguments
    and stored values are uses; [Call] results, like all destination
    registers, are defs. *)
val run : Ir.Types.func -> t

(** Registers live on entry/exit of a block. *)
val live_in : t -> int -> Int_set.t

val live_out : t -> int -> Int_set.t

(** [live_after t ~block ~index] — registers live just after instruction
    [index] of [block] (index [length insts] is just before the
    terminator, whose uses are included). *)
val live_after : t -> block:int -> index:int -> Int_set.t

val pp : Format.formatter -> t -> unit
