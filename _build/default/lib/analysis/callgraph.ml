type t = {
  names : string list;
  callee_tbl : (string, string list) Hashtbl.t;
  caller_tbl : (string, string list) Hashtbl.t;
  sites : (string * string, int list) Hashtbl.t;
}

let build (p : Ir.Types.program) =
  let names = List.sort compare (Hashtbl.fold (fun n _ acc -> n :: acc) p.funcs []) in
  let callee_tbl = Hashtbl.create 8 in
  let caller_tbl = Hashtbl.create 8 in
  let sites = Hashtbl.create 8 in
  let add tbl key v =
    let existing = Option.value (Hashtbl.find_opt tbl key) ~default:[] in
    if not (List.mem v existing) then Hashtbl.replace tbl key (existing @ [ v ])
  in
  List.iter
    (fun caller ->
      let f = Hashtbl.find p.funcs caller in
      Ir.Types.iter_blocks f (fun b ->
          List.iter
            (fun i ->
              match i with
              | Ir.Types.Call { callee; _ } ->
                add callee_tbl caller callee;
                add caller_tbl callee caller;
                let key = (caller, callee) in
                let existing = Option.value (Hashtbl.find_opt sites key) ~default:[] in
                if not (List.mem b.Ir.Types.id existing) then
                  Hashtbl.replace sites key (existing @ [ b.Ir.Types.id ])
              | Ir.Types.Bin _ | Ir.Types.Un _ | Ir.Types.Mov _ | Ir.Types.Load _
              | Ir.Types.Store _ | Ir.Types.Tid _ | Ir.Types.Lane _ | Ir.Types.Nthreads _
              | Ir.Types.Rand _ | Ir.Types.Randint _ | Ir.Types.Join _ | Ir.Types.Rejoin _
              | Ir.Types.Wait _ | Ir.Types.Wait_threshold _ | Ir.Types.Cancel _
              | Ir.Types.Arrived _ -> ())
            b.insts))
    names;
  { names; callee_tbl; caller_tbl; sites }

let callees t name = Option.value (Hashtbl.find_opt t.callee_tbl name) ~default:[]
let callers t name = Option.value (Hashtbl.find_opt t.caller_tbl name) ~default:[]
let call_sites t ~caller ~callee = Option.value (Hashtbl.find_opt t.sites (caller, callee)) ~default:[]

let is_recursive t name =
  (* DFS from each callee of [name]; recursive iff [name] is reachable. *)
  let seen = Hashtbl.create 8 in
  let rec reaches target id =
    if String.equal id target then true
    else if Hashtbl.mem seen id then false
    else begin
      Hashtbl.replace seen id ();
      List.exists (reaches target) (callees t id)
    end
  in
  List.exists (reaches name) (callees t name)

let bottom_up t =
  let seen = Hashtbl.create 8 in
  let order = ref [] in
  let rec visit name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.replace seen name ();
      List.iter visit (callees t name);
      order := name :: !order
    end
  in
  List.iter visit t.names;
  List.rev !order

let pp ppf t =
  List.iter
    (fun n -> Format.fprintf ppf "%s -> [%s]@." n (String.concat "; " (callees t n)))
    t.names
