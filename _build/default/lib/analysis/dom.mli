(** Dominator trees, post-dominator trees, and dominance frontiers.

    Uses the Cooper–Harvey–Kennedy iterative algorithm over reverse post
    order. Post-dominance is dominance on {!Cfg.reverse}; the immediate
    post-dominator of a divergent branch block is where today's compilers
    reconverge (the paper's "original reconvergence point"). *)

type t

(** [compute g] builds the dominator tree of [g] rooted at its entry. *)
val compute : Cfg.t -> t

(** Immediate dominator; [None] for the root and for nodes unreachable
    from the root. *)
val idom : t -> int -> int option

(** [dominates t a b] — does [a] dominate [b]? Reflexive. *)
val dominates : t -> int -> int -> bool

(** [strictly_dominates t a b] — [dominates] and [a <> b]. *)
val strictly_dominates : t -> int -> int -> bool

(** Children in the dominator tree. *)
val children : t -> int -> int list

(** [frontier t g id] is the dominance frontier of [id] in [g] (must be
    the same graph [t] was computed from). *)
val frontier : t -> Cfg.t -> int -> int list

(** [common_ancestor t a b] is the nearest common ancestor of [a] and [b]
    in the dominator tree, e.g. the nearest common dominator.
    @raise Invalid_argument if either node is unreachable. *)
val common_ancestor : t -> int -> int -> int

(** Convenience: post-dominator tree of a function.
    [ipdom] of a block is its immediate post-dominator ({!Cfg.synthetic_exit}
    if the block's only "post-dominator" is program exit; [None] if the
    block cannot reach exit). *)
module Post : sig
  type pt

  val compute : Cfg.t -> pt
  val ipdom : pt -> int -> int option
  val postdominates : pt -> int -> int -> bool

  (** Tree access for control-dependence computations. *)
  val tree : pt -> t

  (** The reversed graph the tree was computed on. *)
  val graph : pt -> Cfg.t
end
