module type LATTICE = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
end

type direction = Forward | Backward

module Make (L : LATTICE) = struct
  type result = { before_tbl : (int, L.t) Hashtbl.t; after_tbl : (int, L.t) Hashtbl.t }

  let get tbl id = Option.value (Hashtbl.find_opt tbl id) ~default:L.bottom

  let solve g dir ~boundary ~transfer =
    let before_tbl = Hashtbl.create 16 in
    let after_tbl = Hashtbl.create 16 in
    let inputs, outputs_of, seed_order =
      match dir with
      | Forward -> (Cfg.preds g, Cfg.succs g, Cfg.rpo g)
      | Backward -> (Cfg.succs g, Cfg.preds g, List.rev (Cfg.rpo g))
    in
    let in_tbl, out_tbl =
      match dir with
      | Forward -> (before_tbl, after_tbl)
      | Backward -> (after_tbl, before_tbl)
    in
    let is_boundary id =
      match dir with
      | Forward -> id = Cfg.entry g
      | Backward -> Cfg.succs g id = []
    in
    let worklist = Queue.create () in
    let queued = Hashtbl.create 16 in
    let push id =
      if not (Hashtbl.mem queued id) then begin
        Hashtbl.replace queued id ();
        Queue.add id worklist
      end
    in
    List.iter push seed_order;
    while not (Queue.is_empty worklist) do
      let id = Queue.pop worklist in
      Hashtbl.remove queued id;
      let incoming =
        let flowing = List.map (get out_tbl) (inputs id) in
        let base = if is_boundary id then boundary else L.bottom in
        List.fold_left L.join base flowing
      in
      Hashtbl.replace in_tbl id incoming;
      let outgoing = transfer id incoming in
      if not (L.equal outgoing (get out_tbl id)) then begin
        Hashtbl.replace out_tbl id outgoing;
        List.iter push (outputs_of id)
      end
    done;
    { before_tbl; after_tbl }

  let before r id = get r.before_tbl id
  let after r id = get r.after_tbl id
end
