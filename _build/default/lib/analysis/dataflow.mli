(** Generic iterative dataflow solver over a CFG.

    The paper's Joined-Barrier analysis (Equation 1) and Barrier
    Live-Range analysis (Equation 2) are both instances of this solver
    with set union as the join. The solver iterates block transfer
    functions to a fixpoint using a worklist seeded in a direction-friendly
    order. *)

module type LATTICE = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
end

type direction = Forward | Backward

module Make (L : LATTICE) : sig
  type result

  (** [solve g dir ~boundary ~transfer] computes the fixpoint.
      [boundary] is the IN value of the entry (Forward) or the OUT value of
      every sink (Backward). [transfer id v] maps a block's IN to its OUT
      (Forward) or OUT to IN (Backward). *)
  val solve :
    Cfg.t -> direction -> boundary:L.t -> transfer:(int -> L.t -> L.t) -> result

  (** Value flowing into the block: IN for forward analyses, the value at
      block entry for backward analyses too (i.e. the "live-in"). *)
  val before : result -> int -> L.t

  (** Value flowing out of the block (OUT / "live-out"). *)
  val after : result -> int -> L.t
end
