module T = Ir.Types

let run (p : T.program) divergence =
  let inserted = ref [] in
  let names = List.sort compare (Hashtbl.fold (fun n _ acc -> n :: acc) p.funcs []) in
  List.iter
    (fun name ->
      let f = Hashtbl.find p.funcs name in
      let g = Analysis.Cfg.of_func f in
      let pdom = Analysis.Dom.Post.compute g in
      let branches = Analysis.Divergence.divergent_branches divergence ~func:name in
      (* Process in reverse post order so that at a shared post-dominator
         the Wait of an inner (later-processed) branch is prepended in
         front of the outer one's; threads then clear inner barriers
         first. *)
      List.iter
        (fun bid ->
          if Analysis.Sets.Int_set.mem bid branches then
            match Analysis.Dom.Post.ipdom pdom bid with
            | Some d when d <> Analysis.Cfg.synthetic_exit ->
              let b = Ir.Builder.fresh_barrier p in
              Ir.Builder.append f bid (T.Join b);
              (* Waits go after any CancelBarrier already at the
                 post-dominator: a thread must withdraw from barriers it
                 is abandoning before it blocks here, or the abandoned
                 barrier can never fire. *)
              Edit.insert_after_leading f d
                ~skip:(fun i -> match i with T.Cancel _ -> true | _ -> false)
                (T.Wait b);
              inserted := (name, bid, b) :: !inserted
            | Some _ | None -> ())
        (Analysis.Cfg.rpo g))
    names;
  List.rev !inserted
