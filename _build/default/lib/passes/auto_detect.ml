module T = Ir.Types
module ISet = Analysis.Sets.Int_set

type kind = Iteration_delay | Loop_merge

type params = {
  min_gain_ratio : float;
  weights : Analysis.Costmodel.weights;
  memory_penalty : float;
}

let default_params =
  { min_gain_ratio = 1.5; weights = Analysis.Costmodel.default_weights; memory_penalty = 0.5 }

type candidate = {
  in_func : string;
  kind : kind;
  target_block : int;
  region_start : int;
  scope : ISet.t;
  score : float;
  common_cost : float;
  serial_cost : float;
}

let kind_name = function Iteration_delay -> "iteration-delay" | Loop_merge -> "loop-merge"

let pp_candidate ppf c =
  Format.fprintf ppf "%s: %s target=bb%d region=bb%d score=%.2f (common=%.0f serial=%.0f)"
    c.in_func (kind_name c.kind) c.target_block c.region_start c.score c.common_cost
    c.serial_cost

(* Predict location for a loop: its immediate dominator outside the loop
   body (the preheader-like block executed once per region entry). *)
let region_start_of_loop dom (loop : Analysis.Loops.loop) =
  let rec hoist node =
    match Analysis.Dom.idom dom node with
    | Some parent when parent <> node ->
      if ISet.mem parent loop.Analysis.Loops.body then hoist parent else Some parent
    | Some _ | None -> None
  in
  hoist loop.Analysis.Loops.header

(* Divergent memory-access penalty (§4.5 "memory access patterns"):
   accesses in the serialized region whose addresses are currently
   uniform would become divergent once threads traverse the region out of
   lock step. *)
let uniform_accesses (f : T.func) divergence blocks =
  let divregs = Analysis.Divergence.divergent_regs divergence ~func:f.fname in
  let uniform_addr = function
    | T.Imm _ -> true
    | T.Reg r -> not (ISet.mem r divregs)
  in
  ISet.fold
    (fun id acc ->
      List.fold_left
        (fun acc i ->
          match i with
          | T.Load (_, a) | T.Store (a, _) -> if uniform_addr a then acc + 1 else acc
          | T.Bin _ | T.Un _ | T.Mov _ | T.Tid _ | T.Lane _ | T.Nthreads _ | T.Rand _
          | T.Randint _ | T.Call _ | T.Join _ | T.Rejoin _ | T.Wait _ | T.Wait_threshold _
          | T.Cancel _ | T.Arrived _ -> acc)
        acc (T.block f id).insts)
    blocks 0

let score_candidate params ~profile ~loops (f : T.func) divergence ~common ~serial =
  let cost blocks = Analysis.Costmodel.region_cost params.weights f blocks ~loops ~profile in
  let common_cost = cost common in
  let mem_pen =
    params.memory_penalty
    *. float_of_int (uniform_accesses f divergence serial)
    *. float_of_int params.weights.Analysis.Costmodel.memory
  in
  let serial_cost = cost serial +. mem_pen in
  let score = if serial_cost <= 0.0 then common_cost else common_cost /. serial_cost in
  (score, common_cost, serial_cost)

(* Blocks of [loop] dominated by [x]. *)
let dominated_within dom (loop : Analysis.Loops.loop) x =
  ISet.filter (fun n -> Analysis.Dom.dominates dom x n) loop.Analysis.Loops.body

(* Scalar-evolution-lite refinement of the divergence analysis's
   conservatism: a branch comparing a constant-stepped induction variable
   against a constant bound has the same outcome for every thread that
   reaches it, even when control-dependence formally marks the registers
   divergent (the classic partial-divergence imprecision the paper's
   "static analysis is ... too conservative" remark refers to). *)
let uniform_trip_branch (f : T.func) block_id =
  let defs_of r =
    let acc = ref [] in
    T.iter_blocks f (fun b ->
        List.iter (fun i -> if List.mem r (T.defs i) then acc := i :: !acc) b.insts);
    !acc
  in
  let is_step_of r i =
    match i with
    | T.Bin ((T.Add | T.Sub), _, T.Reg s, T.Imm _) | T.Bin ((T.Add | T.Sub), _, T.Imm _, T.Reg s)
      -> s = r
    | _ -> false
  in
  (* A counter has exactly one constant initialisation and is otherwise
     only stepped by constants. A flag assigned different constants under
     divergent control (e.g. [alive = 0]) is NOT a counter. *)
  let is_counter r =
    let defs = defs_of r in
    let inits, rest =
      List.partition (fun i -> match i with T.Mov (_, T.Imm _) -> true | _ -> false) defs
    in
    List.length inits = 1 && rest <> []
    && List.for_all
         (fun i ->
           match i with
           (* assignments route through a temp: k = k + 1 is
              t := k + 1; k := t *)
           | T.Mov (_, T.Reg t) -> defs_of t <> [] && List.for_all (is_step_of r) (defs_of t)
           | i -> is_step_of r i)
         rest
  in
  match (T.block f block_id).term with
  | T.Br { cond = T.Reg c; _ } ->
    List.exists
      (fun i ->
        match i with
        | T.Bin ((T.Lt | T.Le | T.Gt | T.Ge | T.Eq | T.Ne), d, T.Reg iv, T.Imm _)
        | T.Bin ((T.Lt | T.Le | T.Gt | T.Ge | T.Eq | T.Ne), d, T.Imm _, T.Reg iv) ->
          d = c && is_counter iv
        | _ -> false)
      (T.block f block_id).insts
  | T.Br _ | T.Jump _ | T.Ret _ | T.Exit -> false

let has_divergent_exit (f : T.func) div_branches (loop : Analysis.Loops.loop) =
  ISet.exists
    (fun id ->
      ISet.mem id div_branches
      && (not (uniform_trip_branch f id))
      && List.exists
           (fun s -> not (ISet.mem s loop.Analysis.Loops.body))
           (T.successors (T.block f id).term))
    loop.Analysis.Loops.body

(* The inner loop's collection point: the header's in-loop branch
   successor (the first body block), or the header itself when the header
   does not branch. *)
let loop_body_entry (f : T.func) (loop : Analysis.Loops.loop) =
  match (T.block f loop.Analysis.Loops.header).term with
  | T.Br { if_true; if_false; _ } ->
    if ISet.mem if_true loop.Analysis.Loops.body then if_true
    else if ISet.mem if_false loop.Analysis.Loops.body then if_false
    else loop.Analysis.Loops.header
  | T.Jump _ | T.Ret _ | T.Exit -> loop.Analysis.Loops.header

(* Blocks control-dependent on a divergent branch within [blocks]: code
   that executes with a partial mask no matter how threads are collected.
   Loop Merge cannot make these convergent, so they do not count toward
   the common-code benefit (§4.5's "divergence properties"). *)
let divergently_executed pdom div_branches blocks =
  let tree = Analysis.Dom.Post.tree pdom in
  let rgraph = Analysis.Dom.Post.graph pdom in
  (* Transitive control dependence: a block nested under a uniform inner
     structure that is itself guarded by a divergent branch still executes
     divergently. *)
  let result = ref ISet.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    ISet.iter
      (fun x ->
        if not (ISet.mem x !result) then
          let depends =
            List.exists
              (fun b ->
                ISet.mem b blocks && (ISet.mem b div_branches || ISet.mem b !result))
              (Analysis.Dom.frontier tree rgraph x)
          in
          if depends then begin
            result := ISet.add x !result;
            changed := true
          end)
      blocks
  done;
  !result

let detect_in_func ?profile params (p : T.program) divergence name =
  let f = Hashtbl.find p.funcs name in
  if f.hints <> [] then []
  else begin
    let g = Analysis.Cfg.of_func f in
    let dom = Analysis.Dom.compute g in
    let pdom = Analysis.Dom.Post.compute g in
    let loops = Analysis.Loops.compute g dom in
    let div_branches = Analysis.Divergence.divergent_branches divergence ~func:name in
    let all = Analysis.Loops.loops loops in
    let score = score_candidate params ~profile ~loops f divergence in
    (* Loop Merge: divergent-trip inner loop inside an outer loop. *)
    let loop_merge =
      List.filter_map
        (fun (li : Analysis.Loops.loop) ->
          match li.parent with
          | Some parent_header when has_divergent_exit f div_branches li -> (
            match Analysis.Loops.loop_of loops parent_header with
            | None -> None
            | Some lo -> (
              match region_start_of_loop dom lo with
              | None -> None
              | Some region_start ->
                let serial = ISet.diff lo.body li.body in
                (* Only divergence that collection cannot fix discounts
                   the body: branches wholly inside the inner loop. Its
                   divergent *exit* branch is the very thing Loop Merge
                   repairs, so it does not count. *)
                let interior_div_branches =
                  ISet.filter
                    (fun b ->
                      (not (uniform_trip_branch f b))
                      && List.for_all
                           (fun s -> ISet.mem s li.body)
                           (T.successors (T.block f b).term))
                    (ISet.inter div_branches li.body)
                in
                let common =
                  ISet.diff li.body (divergently_executed pdom interior_div_branches li.body)
                in
                let s, common_cost, serial_cost = score ~common ~serial in
                Some
                  {
                    in_func = name;
                    kind = Loop_merge;
                    target_block = loop_body_entry f li;
                    region_start;
                    scope = ISet.add region_start lo.body;
                    score = s;
                    common_cost;
                    serial_cost;
                  }))
          | Some _ | None -> None)
        all
    in
    (* Iteration Delay: divergent branch fully inside a loop with an
       expensive taken-region. *)
    let headers = List.map (fun (l : Analysis.Loops.loop) -> l.header) all in
    let iteration_delay =
      List.concat_map
        (fun (l : Analysis.Loops.loop) ->
          ISet.fold
            (fun c acc ->
              let directly_in_l =
                match Analysis.Loops.innermost_containing loops c with
                | Some il -> il.Analysis.Loops.header = l.header
                | None -> false
              in
              if not (ISet.mem c div_branches && directly_in_l) then acc
              else
                match (T.block f c).term with
                | T.Br { if_true; if_false; _ }
                  when ISet.mem if_true l.body && ISet.mem if_false l.body ->
                  let consider x acc =
                    if List.mem x headers then acc (* loop-merge shape instead *)
                    else if x = c then acc
                    else if Analysis.Dom.Post.postdominates pdom x c then
                      (* x is where PDOM sync already reconverges; predicting
                         it adds nothing *)
                      acc
                    else
                      let common = dominated_within dom l x in
                      if ISet.is_empty common then acc
                      else
                        match region_start_of_loop dom l with
                        | None -> acc
                        | Some region_start ->
                          let serial = ISet.diff l.body common in
                          let s, common_cost, serial_cost = score ~common ~serial in
                          {
                            in_func = name;
                            kind = Iteration_delay;
                            target_block = x;
                            region_start;
                            scope = ISet.add region_start l.body;
                            score = s;
                            common_cost;
                            serial_cost;
                          }
                          :: acc
                  in
                  consider if_true (consider if_false acc)
                | T.Br _ | T.Jump _ | T.Ret _ | T.Exit -> acc)
            l.body []
        )
        all
    in
    loop_merge @ iteration_delay
  end

let detect ?profile params (p : T.program) =
  let names = List.sort compare (Hashtbl.fold (fun n _ acc -> n :: acc) p.funcs []) in
  let all = List.concat_map (detect_in_func ?profile params p (Analysis.Divergence.run p)) names in
  List.filter (fun c -> c.score >= params.min_gain_ratio) all
  |> List.sort (fun a b -> compare b.score a.score)

let install (p : T.program) candidates =
  (* Greedy best-first selection of non-overlapping predictions: nested or
     intersecting candidate regions are the "conflicting locations" case
     §4.5 warns about — installing both would create two same-priority
     user barriers that deadlock against each other. [detect] returns
     candidates best first. *)
  let counter = ref 0 in
  let accepted : (string, ISet.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun c ->
      let taken = Option.value (Hashtbl.find_opt accepted c.in_func) ~default:ISet.empty in
      if ISet.disjoint taken c.scope then begin
        Hashtbl.replace accepted c.in_func (ISet.union taken c.scope);
        let f = Hashtbl.find p.funcs c.in_func in
        let label = Printf.sprintf "auto_%d" !counter in
        incr counter;
        Ir.Builder.add_label f label c.target_block;
        Ir.Builder.add_hint f
          { T.target = T.Label_target label; region_start = c.region_start; threshold = None }
      end)
    candidates
