(** The Speculative Reconvergence synchronization pass (§4.2).

    For every label-targeted Predict hint of a function, the pass:

    + allocates a barrier [b0], inserts [JoinBarrier b0] at the region
      start (the Predict directive's location) and [WaitBarrier b0] (or
      [WaitBarrier.th b0 k] for a soft hint, §4.6) at the predicted
      reconvergence label;
    + runs Joined-Barrier analysis (Eq. 1) and Barrier Live-Range analysis
      (Eq. 2) at instruction granularity;
    + inserts [RejoinBarrier b0] right after the wait when the barrier is
      live again past it (threads that cleared the barrier but may wait on
      it again, e.g. across loop iterations);
    + inserts [CancelBarrier b0] at the liveness frontier — entry of every
      block a joined thread can reach from which no wait lies ahead — so
      exiting threads withdraw instead of stalling the rest;
    + encloses the region with an orthogonal barrier [b1] joined at the
      region start and waited at the region's common post-dominator, so
      all threads reconverge at the region exit (Figure 4(d)).

    Function-targeted hints are handled by {!Interproc}; conflicts with
    compiler-inserted PDOM barriers are resolved afterwards by
    {!Deconflict}. *)

type applied = {
  in_func : string;
  hint : Ir.Types.predict_hint;
  user_barrier : Ir.Types.barrier; (* b0 *)
  region_barrier : Ir.Types.barrier option; (* b1, if a region exit exists *)
  target_block : int;
  region_start : int;
  rejoined : bool;
  cancel_blocks : int list;
}

val pp_applied : Format.formatter -> applied -> unit

(** [run program] applies every label-targeted hint of every function.
    @raise Failure for hints whose label is missing (callee hints are
    skipped here) or whose region start cannot reach the target. *)
val run : Ir.Types.program -> applied list
