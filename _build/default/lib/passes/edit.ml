(* Small block-editing helpers shared by the synchronization passes. *)

module T = Ir.Types

(* [insert_at f bid idx inst] inserts [inst] before position [idx] of the
   block's instruction list ([idx] may equal the length to append). *)
let insert_at (f : T.func) bid idx inst =
  let b = T.block f bid in
  let n = List.length b.insts in
  if idx < 0 || idx > n then
    invalid_arg (Printf.sprintf "Edit.insert_at: index %d out of [0, %d]" idx n);
  let before = List.filteri (fun i _ -> i < idx) b.insts in
  let after = List.filteri (fun i _ -> i >= idx) b.insts in
  b.insts <- before @ (inst :: after)

(* [insert_after_leading f bid ~skip inst] inserts [inst] after the longest
   prefix of instructions satisfying [skip]. *)
let insert_after_leading (f : T.func) bid ~skip inst =
  let b = T.block f bid in
  let rec prefix_len i = function
    | x :: rest when skip x -> prefix_len (i + 1) rest
    | _ -> i
  in
  insert_at f bid (prefix_len 0 b.insts) inst

(* [remove_barrier_ops f barrier] deletes every instruction referencing
   [barrier] in [f]; returns how many were removed. *)
let remove_barrier_ops (f : T.func) barrier =
  let removed = ref 0 in
  T.iter_blocks f (fun b ->
      let keep inst =
        match T.barrier_of inst with
        | Some x when x = barrier ->
          incr removed;
          false
        | Some _ | None -> true
      in
      b.insts <- List.filter keep b.insts);
  !removed

(* [index_of_wait f bid barrier] finds the position of the first
   [Wait]/[Wait_threshold] on [barrier] in the block. *)
let index_of_wait (f : T.func) bid barrier =
  let b = T.block f bid in
  let rec find i = function
    | [] -> None
    | (T.Wait x | T.Wait_threshold (x, _)) :: _ when x = barrier -> Some i
    | _ :: rest -> find (i + 1) rest
  in
  find 0 b.insts
