module T = Ir.Types
module BA = Analysis.Barrier_analysis
module ISet = Analysis.Sets.Int_set

type applied = {
  in_func : string;
  hint : T.predict_hint;
  user_barrier : T.barrier;
  region_barrier : T.barrier option;
  target_block : int;
  region_start : int;
  rejoined : bool;
  cancel_blocks : int list;
}

let pp_applied ppf a =
  Format.fprintf ppf
    "%s: b%d join@bb%d wait@bb%d%s%s cancels=[%s]%s" a.in_func a.user_barrier a.region_start
    a.target_block
    (match a.hint.threshold with None -> "" | Some k -> Printf.sprintf " threshold=%d" k)
    (if a.rejoined then " rejoin" else "")
    (String.concat "; " (List.map string_of_int a.cancel_blocks))
    (match a.region_barrier with
    | None -> ""
    | Some b -> Printf.sprintf " region=b%d" b)

(* The region's common post-dominator: nearest common ancestor, in the
   post-dominator tree, of every block where the user barrier is live.
   Walk upward while the candidate still lies inside the region. *)
let region_postdom pdom region_blocks =
  match ISet.elements region_blocks with
  | [] -> None
  | first :: rest ->
    let tree = Analysis.Dom.Post.tree pdom in
    let common =
      List.fold_left (fun acc n -> Analysis.Dom.common_ancestor tree acc n) first rest
    in
    let rec hoist node =
      if node = Analysis.Cfg.synthetic_exit then None
      else if ISet.mem node region_blocks then
        match Analysis.Dom.Post.ipdom pdom node with
        | Some parent when parent <> node -> hoist parent
        | Some _ | None -> None
      else Some node
    in
    hoist common

let apply_hint (p : T.program) (f : T.func) (hint : T.predict_hint) label =
  let target_block =
    match Ir.Builder.label_block f label with
    | Some b -> b
    | None -> failwith (Printf.sprintf "Specrecon: unknown label %s in %s" label f.fname)
  in
  let region_start = hint.region_start in
  let b0 = Ir.Builder.fresh_barrier p in
  Ir.Builder.prepend f region_start (T.Join b0);
  let wait_inst =
    match hint.threshold with None -> T.Wait b0 | Some k -> T.Wait_threshold (b0, k)
  in
  Ir.Builder.prepend f target_block wait_inst;
  (* Rejoin: does some path past the wait reach another wait on b0
     (typically the same one, around a loop)? *)
  let ba = BA.run f in
  let live_after_wait = BA.live_at ba { BA.block = target_block; index = 1 } in
  let rejoined = ISet.mem b0 live_after_wait in
  if rejoined then Edit.insert_at f target_block 1 (T.Rejoin b0);
  (* Cancels at the liveness frontier, from a fresh analysis that includes
     the rejoin. *)
  let ba = BA.run f in
  let g = Analysis.Cfg.of_func f in
  let cancel_blocks =
    List.filter
      (fun x ->
        ISet.mem b0 (BA.joined_in ba x)
        && (not (ISet.mem b0 (BA.live_in ba x)))
        && List.exists (fun pr -> ISet.mem b0 (BA.live_in ba pr)) (Analysis.Cfg.preds g x))
      (Analysis.Cfg.nodes g)
  in
  List.iter (fun x -> Ir.Builder.prepend f x (T.Cancel b0)) cancel_blocks;
  (* Region barrier: reconverge every thread at the region exit. *)
  let region_blocks =
    List.fold_left
      (fun acc x ->
        if ISet.mem b0 (BA.live_in ba x) || ISet.mem b0 (BA.live_out ba x) then ISet.add x acc
        else acc)
      (ISet.singleton region_start)
      (Analysis.Cfg.nodes g)
  in
  let pdom = Analysis.Dom.Post.compute g in
  let region_barrier =
    match region_postdom pdom region_blocks with
    | None -> None
    | Some exit_block ->
      let b1 = Ir.Builder.fresh_barrier p in
      Ir.Builder.prepend f region_start (T.Join b1);
      (* The region wait goes after the frontier cancels already sitting
         at the exit block, mirroring Figure 4(d)'s BB5. *)
      Edit.insert_after_leading f exit_block
        ~skip:(fun i -> match i with T.Cancel _ -> true | _ -> false)
        (T.Wait b1);
      Some b1
  in
  {
    in_func = f.fname;
    hint;
    user_barrier = b0;
    region_barrier;
    target_block;
    region_start;
    rejoined;
    cancel_blocks = List.sort compare cancel_blocks;
  }

let run (p : T.program) =
  let names = List.sort compare (Hashtbl.fold (fun n _ acc -> n :: acc) p.funcs []) in
  List.concat_map
    (fun name ->
      let f = Hashtbl.find p.funcs name in
      List.filter_map
        (fun (hint : T.predict_hint) ->
          match hint.target with
          | T.Label_target label -> Some (apply_hint p f hint label)
          | T.Callee_target _ -> None)
        f.hints)
    names
