module T = Ir.Types

type applied = {
  in_func : string;
  callee : string;
  barrier : T.barrier;
  region_start : int;
  call_blocks : int list;
  rejoin_sites : int list;
  cancel_blocks : int list;
}

let pp_applied ppf a =
  Format.fprintf ppf "%s: b%d join@bb%d wait@entry(%s) calls=[%s] cancels=[%s]" a.in_func
    a.barrier a.region_start a.callee
    (String.concat "; " (List.map string_of_int a.call_blocks))
    (String.concat "; " (List.map string_of_int a.cancel_blocks))

module Bool_lattice = struct
  type t = bool

  let bottom = false
  let equal = Bool.equal
  let join = ( || )
end

module Solver = Analysis.Dataflow.Make (Bool_lattice)

let is_call_to callee = function
  | T.Call { callee = c; _ } -> String.equal c callee
  | T.Bin _ | T.Un _ | T.Mov _ | T.Load _ | T.Store _ | T.Tid _ | T.Lane _ | T.Nthreads _
  | T.Rand _ | T.Randint _ | T.Join _ | T.Rejoin _ | T.Wait _ | T.Wait_threshold _ | T.Cancel _
  | T.Arrived _ -> false

let is_join_of b = function
  | T.Join x | T.Rejoin x -> x = b
  | T.Bin _ | T.Un _ | T.Mov _ | T.Load _ | T.Store _ | T.Tid _ | T.Lane _ | T.Nthreads _
  | T.Rand _ | T.Randint _ | T.Call _ | T.Wait _ | T.Wait_threshold _ | T.Cancel _
  | T.Arrived _ -> false

(* Caller-side analyses with the call instruction acting as the wait:
   liveness (backward: gen = call, kill = join) and membership (forward:
   gen = join, kill = call). *)
let analyses (f : T.func) ~callee ~b =
  let g = Analysis.Cfg.of_func f in
  let live =
    Solver.solve g Analysis.Dataflow.Backward ~boundary:false ~transfer:(fun id out ->
        List.fold_left
          (fun state i ->
            if is_call_to callee i then true else if is_join_of b i then false else state)
          out
          (List.rev (T.block f id).insts))
  in
  let joined =
    Solver.solve g Analysis.Dataflow.Forward ~boundary:false ~transfer:(fun id inv ->
        List.fold_left
          (fun state i ->
            if is_join_of b i then true else if is_call_to callee i then false else state)
          inv (T.block f id).insts)
  in
  (g, live, joined)

let apply_hint (p : T.program) cg (f : T.func) (hint : T.predict_hint) callee =
  if not (Hashtbl.mem p.funcs callee) then
    failwith (Printf.sprintf "Interproc: %s predicts unknown function %s" f.fname callee);
  if Analysis.Callgraph.is_recursive cg callee then
    failwith (Printf.sprintf "Interproc: cannot predict recursive function %s" callee);
  let call_blocks = Analysis.Callgraph.call_sites cg ~caller:f.fname ~callee in
  if call_blocks = [] then
    failwith (Printf.sprintf "Interproc: %s predicts %s but never calls it" f.fname callee);
  let b = Ir.Builder.fresh_barrier p in
  Ir.Builder.prepend f hint.region_start (T.Join b);
  (* Wait at the callee's entry: the propagated reconvergence point. *)
  let callee_func = Hashtbl.find p.funcs callee in
  let wait_inst =
    match hint.threshold with None -> T.Wait b | Some k -> T.Wait_threshold (b, k)
  in
  Ir.Builder.prepend callee_func callee_func.entry wait_inst;
  let g, live, joined = analyses f ~callee ~b in
  (* Rejoin after calls that may be followed by another region visit. *)
  let rejoin_sites = ref [] in
  T.iter_blocks f (fun blk ->
      (* Replay liveness backward through the block to find the state just
         after each instruction. *)
      let after_states =
        List.fold_right
          (fun i acc ->
            let after =
              match acc with
              | (before_next, _) :: _ -> before_next
              | [] -> Solver.after live blk.id
            in
            let before =
              if is_call_to callee i then true else if is_join_of b i then false else after
            in
            (before, after) :: acc)
          blk.insts []
      in
      let insertions = ref [] in
      List.iteri
        (fun idx i ->
          let _, after = List.nth after_states idx in
          if is_call_to callee i && after then insertions := idx :: !insertions)
        blk.insts;
      (* Insert from the back so earlier indices stay valid. *)
      List.iter
        (fun idx ->
          Edit.insert_at f blk.id (idx + 1) (T.Rejoin b);
          if not (List.mem blk.id !rejoin_sites) then rejoin_sites := blk.id :: !rejoin_sites)
        !insertions)
  ;
  (* Cancels at the liveness frontier. *)
  let cancel_blocks =
    List.filter
      (fun x ->
        Solver.before joined x
        && (not (Solver.before live x))
        && List.exists (fun pr -> Solver.before live pr) (Analysis.Cfg.preds g x))
      (Analysis.Cfg.nodes g)
  in
  List.iter (fun x -> Ir.Builder.prepend f x (T.Cancel b)) cancel_blocks;
  {
    in_func = f.fname;
    callee;
    barrier = b;
    region_start = hint.region_start;
    call_blocks;
    rejoin_sites = List.sort compare !rejoin_sites;
    cancel_blocks = List.sort compare cancel_blocks;
  }

let run (p : T.program) =
  let cg = Analysis.Callgraph.build p in
  let names = List.sort compare (Hashtbl.fold (fun n _ acc -> n :: acc) p.funcs []) in
  List.concat_map
    (fun name ->
      let f = Hashtbl.find p.funcs name in
      List.filter_map
        (fun (hint : T.predict_hint) ->
          match hint.target with
          | T.Callee_target callee -> Some (apply_hint p cg f hint callee)
          | T.Label_target _ -> None)
        f.hints)
    names
