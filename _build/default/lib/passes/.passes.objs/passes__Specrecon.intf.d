lib/passes/specrecon.mli: Format Ir
