lib/passes/pdom_sync.ml: Analysis Edit Hashtbl Ir List
