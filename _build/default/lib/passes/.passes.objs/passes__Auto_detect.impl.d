lib/passes/auto_detect.ml: Analysis Format Hashtbl Ir List Option Printf
