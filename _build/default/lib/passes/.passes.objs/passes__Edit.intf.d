lib/passes/edit.mli: Ir
