lib/passes/interproc.mli: Format Ir
