lib/passes/cleanup.ml: Analysis Hashtbl Ir List
