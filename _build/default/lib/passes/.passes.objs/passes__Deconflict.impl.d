lib/passes/deconflict.ml: Analysis Edit Hashtbl Ir List
