lib/passes/cleanup.mli: Ir
