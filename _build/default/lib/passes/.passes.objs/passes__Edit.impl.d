lib/passes/edit.ml: Ir List Printf
