lib/passes/specrecon.ml: Analysis Edit Format Hashtbl Ir List Printf String
