lib/passes/deconflict.mli: Ir
