lib/passes/pdom_sync.mli: Analysis Ir
