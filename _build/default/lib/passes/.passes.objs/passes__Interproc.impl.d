lib/passes/interproc.ml: Analysis Bool Edit Format Hashtbl Ir List Printf String
