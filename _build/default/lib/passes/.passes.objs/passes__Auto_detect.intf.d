lib/passes/auto_detect.mli: Analysis Format Ir
