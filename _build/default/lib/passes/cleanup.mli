(** Cleanup optimizations: dead code elimination and dead-barrier
    removal.

    Neither is part of the paper's contribution, but a real backend runs
    them, and the synchronization passes can leave dead residue behind —
    most visibly static deconfliction, which deletes a barrier's waits
    and leaves its joins semantically inert.

    {b DCE} removes instructions whose results are never used and whose
    execution has no observable effect. [Rand]/[Randint] are NOT dead
    even when unused: they advance the per-thread PRNG stream and so
    change every later draw. Loads are removable (no side effects in
    this memory model); stores, calls and barrier operations are not.

    {b Dead-barrier removal} deletes all operations of a barrier that has
    no [Wait] anywhere in the function (joins/rejoins/cancels of such a
    barrier cannot affect execution), and any [Wait] of a barrier that is
    never joined (threads pass it without blocking). *)

type report = { dce_removed : int; dead_barrier_ops_removed : int }

(** [run program] — cleans every function; iterates DCE to a fixpoint. *)
val run : Ir.Types.program -> report
