(** Automatic detection of Speculative Reconvergence opportunities (§4.5).

    Pattern matchers over the CFG find the two shapes of §3 —

    - {e Iteration Delay}: a divergent branch inside a loop whose taken
      region is expensive relative to the rest of the loop body;
    - {e Loop Merge}: an inner loop with a divergent trip count nested in
      an outer loop, with an expensive body relative to the outer loop's
      prolog/epilog;

    — and score them with the §4.5 cost heuristics: weighted instruction
    cost of the common region versus the newly-serialized prolog/epilog
    (static trip-count guesses, overridable by a dynamic {!Analysis.Profile}),
    plus a penalty for memory accesses that the transformation would make
    divergent. Candidates above the acceptance ratio can then be installed
    as ordinary Predict hints and compiled by {!Specrecon} — automatic and
    programmer-annotated variants share the entire backend, which is why
    the paper finds them performing identically (§5.4). *)

type kind = Iteration_delay | Loop_merge

type params = {
  min_gain_ratio : float; (* accept when common/serial exceeds this *)
  weights : Analysis.Costmodel.weights;
  memory_penalty : float; (* extra serial cost per uniform access made divergent *)
}

val default_params : params

type candidate = {
  in_func : string;
  kind : kind;
  target_block : int; (* predicted reconvergence point *)
  region_start : int; (* where the Predict would go *)
  scope : Analysis.Sets.Int_set.t; (* blocks the prediction region spans *)
  score : float;
  common_cost : float;
  serial_cost : float;
}

val pp_candidate : Format.formatter -> candidate -> unit

(** [detect ?profile params program] — all candidates with
    [score >= min_gain_ratio], best first. Functions that already carry
    user hints are skipped (user hints have priority, §4.1). *)
val detect :
  ?profile:Analysis.Profile.t -> params -> Ir.Types.program -> candidate list

(** [install program candidates] — registers each candidate as a label +
    Predict hint (labels are named ["auto_<n>"]); {!Specrecon.run} then
    compiles them like user hints. Candidates are taken best-first;
    any whose scope overlaps an already-installed one is dropped —
    overlapping predictions are the "conflicting locations" case §4.5
    flags as needing deconfliction or soft barriers, and installing both
    would make the two user barriers deadlock against each other. *)
val install : Ir.Types.program -> candidate list -> unit
