(** Interprocedural Speculative Reconvergence (§4.4).

    Handles Predict hints that name a function: all threads of the region
    should reconverge at the callee's entry before executing its body,
    even though the calls are issued from different blocks (e.g. both
    sides of a divergent branch, Figure 2(c)).

    Mechanism: a barrier is joined at the hint's region start in the
    caller and waited at the callee's entry block. Caller-side dataflow
    treats each call to the target as the wait event — barrier
    information propagated from the callee up to the call sites —
    so the usual Rejoin (call sites revisited around a loop) and Cancel
    (paths that escape without calling) placements carry over. No region
    barrier is needed: reconvergence inside the callee does not disturb
    convergence outside it (§4.4).

    Restrictions: the target must not be recursive and must be a direct
    callee of the hinting function. External/indirect calls require the
    wrapper-function idiom described in the paper (write a local wrapper
    and predict that). *)

type applied = {
  in_func : string; (* the caller holding the hint *)
  callee : string;
  barrier : Ir.Types.barrier;
  region_start : int;
  call_blocks : int list;
  rejoin_sites : int list; (* blocks where a rejoin was placed after a call *)
  cancel_blocks : int list;
}

val pp_applied : Format.formatter -> applied -> unit

(** [run program] applies every function-targeted hint.
    @raise Failure on recursive targets or hints naming a function the
    hinting function never calls. *)
val run : Ir.Types.program -> applied list
