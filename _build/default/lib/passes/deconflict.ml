module T = Ir.Types
module BA = Analysis.Barrier_analysis

type strategy = Static | Dynamic

type resolution = { in_func : string; kept : T.barrier; demoted : T.barrier; strategy : strategy }

type report = {
  resolutions : resolution list;
  unresolved : (string * T.barrier * T.barrier) list;
}

(* Insert [Cancel demoted] immediately before every wait on [kept]. *)
let dynamic_cancel (f : T.func) ~kept ~demoted =
  T.iter_blocks f (fun b ->
      let rec rebuild acc = function
        | [] -> List.rev acc
        | ((T.Wait x | T.Wait_threshold (x, _)) as w) :: rest when x = kept ->
          rebuild (w :: T.Cancel demoted :: acc) rest
        | i :: rest -> rebuild (i :: acc) rest
      in
      b.insts <- rebuild [] b.insts)

let run (p : T.program) ~strategy ~priority =
  let resolutions = ref [] in
  let unresolved = ref [] in
  let names = List.sort compare (Hashtbl.fold (fun n _ acc -> n :: acc) p.funcs []) in
  List.iter
    (fun name ->
      let f = Hashtbl.find p.funcs name in
      (* Resolve one conflict, re-analyse, repeat: each resolution changes
         live ranges, which can dissolve (or expose) other conflicts. *)
      (* Dynamic resolutions do not change live ranges (Cancel is not a
         liveness event), so already-handled pairs must be skipped when
         re-analysing. *)
      let handled = Hashtbl.create 8 in
      let continue_ = ref true in
      while !continue_ do
        let ba = BA.run f in
        let conflicts =
          List.filter (fun pair -> not (Hashtbl.mem handled pair)) (BA.conflicts ba)
        in
        match conflicts with
        | [] -> continue_ := false
        | ((x, y) as pair) :: _ ->
          Hashtbl.replace handled pair ();
          let px = priority name x and py = priority name y in
          if px = py then unresolved := (name, x, y) :: !unresolved
          else begin
            let kept, demoted = if px > py then (x, y) else (y, x) in
            (match strategy with
            | Static -> ignore (Edit.remove_barrier_ops f demoted)
            | Dynamic -> dynamic_cancel f ~kept ~demoted);
            resolutions := { in_func = name; kept; demoted; strategy } :: !resolutions
          end
      done)
    names;
  { resolutions = List.rev !resolutions; unresolved = List.rev !unresolved }
