(** Baseline post-dominator reconvergence insertion.

    This pass reproduces what production GPU compilers do today (§2, §3):
    for every divergent conditional branch, threads join a convergence
    barrier at the branch and wait at the branch's immediate
    post-dominator, so the warp reconverges at the earliest point where
    all threads are guaranteed to arrive. Speculative reconvergence is
    measured against exactly this behaviour.

    Branches whose immediate post-dominator is the function exit get no
    barrier: threads terminate (or return) and withdraw implicitly. *)

(** [run program divergence] inserts the barriers and returns the list of
    [(function, branch block, barrier)] insertions, which deconfliction
    later uses to tell compiler barriers apart from user barriers. *)
val run : Ir.Types.program -> Analysis.Divergence.t -> (string * int * Ir.Types.barrier) list
