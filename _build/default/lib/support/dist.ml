type t =
  | Constant of int
  | Uniform of int * int
  | Geometric of { p : float; cap : int }
  | Weighted of (int * float) list
  | Bimodal of { lo : int * int; hi : int * int; p_hi : float }

let validate = function
  | Constant n -> if n < 0 then invalid_arg "Dist: Constant must be >= 0"
  | Uniform (lo, hi) ->
    if lo < 0 || hi < lo then invalid_arg "Dist: Uniform requires 0 <= lo <= hi"
  | Geometric { p; cap } ->
    if not (p > 0.0 && p <= 1.0) then invalid_arg "Dist: Geometric p must be in (0, 1]";
    if cap < 0 then invalid_arg "Dist: Geometric cap must be >= 0"
  | Weighted [] -> invalid_arg "Dist: Weighted requires a non-empty list"
  | Weighted entries ->
    List.iter
      (fun (v, w) ->
        if v < 0 then invalid_arg "Dist: Weighted values must be >= 0";
        if w < 0.0 then invalid_arg "Dist: Weighted weights must be >= 0")
      entries;
    if List.for_all (fun (_, w) -> w = 0.0) entries then
      invalid_arg "Dist: Weighted requires a positive total weight"
  | Bimodal { lo = llo, lhi; hi = hlo, hhi; p_hi } ->
    if llo < 0 || lhi < llo || hlo < 0 || hhi < hlo then
      invalid_arg "Dist: Bimodal requires valid ranges";
    if not (p_hi >= 0.0 && p_hi <= 1.0) then invalid_arg "Dist: Bimodal p_hi must be in [0, 1]"

let uniform_sample rng lo hi = lo + Splitmix.int rng (hi - lo + 1)

let sample dist rng =
  validate dist;
  match dist with
  | Constant n -> n
  | Uniform (lo, hi) -> uniform_sample rng lo hi
  | Geometric { p; cap } ->
    let rec loop n = if n >= cap then cap else if Splitmix.float rng < p then n else loop (n + 1) in
    loop 0
  | Weighted entries ->
    let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 entries in
    let x = Splitmix.float rng *. total in
    let rec pick acc = function
      | [] -> assert false
      | [ (v, _) ] -> v
      | (v, w) :: rest -> if x < acc +. w then v else pick (acc +. w) rest
    in
    pick 0.0 entries
  | Bimodal { lo = llo, lhi; hi = hlo, hhi; p_hi } ->
    if Splitmix.float rng < p_hi then uniform_sample rng hlo hhi else uniform_sample rng llo lhi

let mean dist =
  validate dist;
  match dist with
  | Constant n -> float_of_int n
  | Uniform (lo, hi) -> float_of_int (lo + hi) /. 2.0
  | Geometric { p; cap } ->
    (* E[min(G, cap)] where G counts failures before first success:
       sum_{k=1..cap} P(G >= k) = sum_{k=1..cap} (1-p)^k. *)
    let q = 1.0 -. p in
    let rec loop k qk acc = if k > cap then acc else loop (k + 1) (qk *. q) (acc +. qk) in
    loop 1 q 0.0
  | Weighted entries ->
    let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 entries in
    List.fold_left (fun acc (v, w) -> acc +. (float_of_int v *. w /. total)) 0.0 entries
  | Bimodal { lo = llo, lhi; hi = hlo, hhi; p_hi } ->
    let mean_range lo hi = float_of_int (lo + hi) /. 2.0 in
    (p_hi *. mean_range hlo hhi) +. ((1.0 -. p_hi) *. mean_range llo lhi)

let pp ppf = function
  | Constant n -> Format.fprintf ppf "const(%d)" n
  | Uniform (lo, hi) -> Format.fprintf ppf "uniform(%d, %d)" lo hi
  | Geometric { p; cap } -> Format.fprintf ppf "geometric(p=%.3f, cap=%d)" p cap
  | Weighted entries ->
    Format.fprintf ppf "weighted(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf (v, w) -> Format.fprintf ppf "%d:%.2f" v w))
      entries
  | Bimodal { lo = llo, lhi; hi = hlo, hhi; p_hi } ->
    Format.fprintf ppf "bimodal([%d,%d] | [%d,%d] @%.2f)" llo lhi hlo hhi p_hi
