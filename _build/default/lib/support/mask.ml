type t = int

let max_width = Sys.int_size - 1

let check_lane lane =
  if lane < 0 || lane >= max_width then
    invalid_arg (Printf.sprintf "Mask: lane %d out of range [0, %d)" lane max_width)

let empty = 0

let full n =
  if n < 0 || n > max_width then
    invalid_arg (Printf.sprintf "Mask.full: width %d out of range [0, %d]" n max_width);
  if n = 0 then 0 else (1 lsl n) - 1

let singleton lane =
  check_lane lane;
  1 lsl lane

let mem lane m = lane >= 0 && lane < max_width && m land (1 lsl lane) <> 0

let add lane m =
  check_lane lane;
  m lor (1 lsl lane)

let remove lane m = if lane < 0 || lane >= max_width then m else m land lnot (1 lsl lane)
let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b

let count m =
  let rec loop m acc = if m = 0 then acc else loop (m lsr 1) (acc + (m land 1)) in
  loop m 0

let is_empty m = m = 0
let equal (a : int) b = a = b
let subset a b = a land lnot b = 0
let disjoint a b = a land b = 0

let iter f m =
  for lane = 0 to max_width - 1 do
    if m land (1 lsl lane) <> 0 then f lane
  done

let fold f m acc =
  let r = ref acc in
  iter (fun lane -> r := f lane !r) m;
  !r

let to_list m = List.rev (fold (fun lane acc -> lane :: acc) m [])

let of_list lanes = List.fold_left (fun m lane -> add lane m) empty lanes

let lowest m =
  if m = 0 then raise Not_found;
  let rec loop lane = if m land (1 lsl lane) <> 0 then lane else loop (lane + 1) in
  loop 0

let pp ~width ppf m =
  Format.pp_print_string ppf "0b";
  for lane = width - 1 downto 0 do
    Format.pp_print_char ppf (if mem lane m then '1' else '0')
  done

let to_hex m = Printf.sprintf "0x%x" m
