(** SplitMix64: a small, fast, splittable pseudo-random number generator.

    Every simulated GPU thread owns an independent stream derived
    deterministically from [(seed, warp, lane)], so kernel results are
    bit-identical across scheduler policies and compilation modes — the
    property the correctness tests rely on.

    Reference: Steele, Lea & Flood, "Fast Splittable Pseudorandom Number
    Generators", OOPSLA 2014. *)

type t

(** [create seed] makes a fresh generator from a 64-bit seed. *)
val create : int64 -> t

(** [of_ints a b c] mixes three integers (e.g. seed, warp id, lane id)
    into an independent stream. *)
val of_ints : int -> int -> int -> t

(** [copy t] duplicates the generator state. *)
val copy : t -> t

(** [split t] advances [t] and returns a statistically independent
    generator. *)
val split : t -> t

(** Next raw 64-bit output. *)
val next_int64 : t -> int64

(** [int t bound] draws uniformly from [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** [float t] draws uniformly from [0, 1). *)
val float : t -> float

(** [bool t] draws a fair coin flip. *)
val bool : t -> bool
