type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed }

let of_ints a b c =
  (* Mix each component through the finalizer so that nearby (seed, warp,
     lane) triples land on unrelated streams. *)
  let s = mix64 (Int64.of_int a) in
  let s = mix64 (Int64.add s (mix64 (Int64.of_int b))) in
  let s = mix64 (Int64.add s (mix64 (Int64.of_int c))) in
  { state = s }

let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = next_int64 t in
  { state = mix64 s }

let int t bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  (* Mask to OCaml's non-negative int range (62 value bits). *)
  let r = Int64.to_int (next_int64 t) land max_int in
  r mod bound

let float t =
  (* 53 significant bits, uniform in [0, 1). *)
  let bits = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bits *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L
