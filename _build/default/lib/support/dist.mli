(** Trip-count and workload-parameter distributions.

    The paper's benchmarks are driven by highly variable, unpredictable
    per-thread work amounts (e.g. RSBench walks between 4 and 321 nuclides
    per material; PathTracer terminates bounces by Russian roulette). These
    distributions generate the same variance structure deterministically. *)

type t =
  | Constant of int  (** always the same value *)
  | Uniform of int * int  (** inclusive bounds [lo, hi] *)
  | Geometric of { p : float; cap : int }
      (** number of failures before first success with parameter [p],
          truncated to [cap]; models Russian-roulette loop lengths *)
  | Weighted of (int * float) list
      (** discrete distribution over values with the given relative
          weights *)
  | Bimodal of { lo : int * int; hi : int * int; p_hi : float }
      (** with probability [p_hi] sample uniformly from [hi], else from
          [lo]; models the few-huge-materials shape of RSBench *)

(** [sample dist rng] draws one value. The result is always >= 0.
    @raise Invalid_argument on malformed parameters (empty [Weighted]
    list, negative bounds, [p] outside (0, 1], inverted ranges). *)
val sample : t -> Splitmix.t -> int

(** Exact mean of the distribution (truncation of [Geometric] included). *)
val mean : t -> float

(** [validate dist] checks the parameters and raises [Invalid_argument]
    with a description of the problem if they are malformed. *)
val validate : t -> unit

val pp : Format.formatter -> t -> unit
