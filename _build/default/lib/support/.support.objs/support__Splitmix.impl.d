lib/support/splitmix.ml: Int64
