lib/support/mask.mli: Format
