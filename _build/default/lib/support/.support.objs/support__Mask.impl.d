lib/support/mask.ml: Format List Printf Sys
