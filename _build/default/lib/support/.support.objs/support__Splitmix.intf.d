lib/support/splitmix.mli:
