lib/support/domain_pool.mli:
