lib/support/domain_pool.ml: Array Atomic Domain List Printf String Sys
