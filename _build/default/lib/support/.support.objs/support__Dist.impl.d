lib/support/dist.ml: Format List Splitmix
