lib/support/dist.mli: Format Splitmix
