open Tokens

exception Parse_error of Ast.pos * string

type state = { toks : (token * Ast.pos) array; mutable cur : int }

let peek st = fst st.toks.(st.cur)
let peek_pos st = snd st.toks.(st.cur)
let peek2 st = if st.cur + 1 < Array.length st.toks then fst st.toks.(st.cur + 1) else EOF

let advance st =
  let t = st.toks.(st.cur) in
  if st.cur + 1 < Array.length st.toks then st.cur <- st.cur + 1;
  t

let error st msg = raise (Parse_error (peek_pos st, msg))

let expect st tok what =
  let got, pos = advance st in
  if got <> tok then
    raise (Parse_error (pos, Printf.sprintf "expected %s, found %s" what (describe got)))

let expect_ident st what =
  match advance st with
  | IDENT s, _ -> s
  | got, pos ->
    raise (Parse_error (pos, Printf.sprintf "expected %s, found %s" what (describe got)))

let expect_int st what =
  match advance st with
  | INT n, _ -> n
  | got, pos ->
    raise (Parse_error (pos, Printf.sprintf "expected %s, found %s" what (describe got)))

let parse_ty st =
  match advance st with
  | TINT, _ -> Ast.Tint
  | TFLOAT, _ -> Ast.Tfloat
  | got, pos -> raise (Parse_error (pos, Printf.sprintf "expected a type, found %s" (describe got)))

(* ---- expressions: precedence climbing ---- *)

let rec parse_expr st = parse_or st

and parse_or st =
  let rec loop left =
    if peek st = OROR then begin
      let pos = peek_pos st in
      ignore (advance st);
      let right = parse_and st in
      loop { Ast.desc = Ast.Binary (Ast.Bor, left, right); pos }
    end
    else left
  in
  loop (parse_and st)

and parse_and st =
  let rec loop left =
    if peek st = ANDAND then begin
      let pos = peek_pos st in
      ignore (advance st);
      let right = parse_cmp st in
      loop { Ast.desc = Ast.Binary (Ast.Band, left, right); pos }
    end
    else left
  in
  loop (parse_cmp st)

and parse_cmp st =
  let left = parse_add st in
  let op =
    match peek st with
    | EQ -> Some Ast.Beq
    | NE -> Some Ast.Bne
    | LT -> Some Ast.Blt
    | LE -> Some Ast.Ble
    | GT -> Some Ast.Bgt
    | GE -> Some Ast.Bge
    | _ -> None
  in
  match op with
  | None -> left
  | Some op ->
    let pos = peek_pos st in
    ignore (advance st);
    let right = parse_add st in
    { Ast.desc = Ast.Binary (op, left, right); pos }

and parse_add st =
  let rec loop left =
    match peek st with
    | PLUS | MINUS ->
      let pos = peek_pos st in
      let tok, _ = advance st in
      let right = parse_mul st in
      let op = if tok = PLUS then Ast.Badd else Ast.Bsub in
      loop { Ast.desc = Ast.Binary (op, left, right); pos }
    | _ -> left
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop left =
    match peek st with
    | STAR | SLASH | PERCENT ->
      let pos = peek_pos st in
      let tok, _ = advance st in
      let right = parse_unary st in
      let op =
        match tok with STAR -> Ast.Bmul | SLASH -> Ast.Bdiv | _ -> Ast.Brem
      in
      loop { Ast.desc = Ast.Binary (op, left, right); pos }
    | _ -> left
  in
  loop (parse_unary st)

and parse_unary st =
  match peek st with
  | MINUS ->
    let pos = peek_pos st in
    ignore (advance st);
    { Ast.desc = Ast.Unary (Ast.Uneg, parse_unary st); pos }
  | BANG ->
    let pos = peek_pos st in
    ignore (advance st);
    { Ast.desc = Ast.Unary (Ast.Unot, parse_unary st); pos }
  | _ -> parse_primary st

and parse_primary st =
  let pos = peek_pos st in
  match advance st with
  | INT n, _ -> { Ast.desc = Ast.Int_lit n; pos }
  | FLOAT x, _ -> { Ast.desc = Ast.Float_lit x; pos }
  | LPAREN, _ ->
    let e = parse_expr st in
    expect st RPAREN "')'";
    e
  | TINT, _ ->
    (* int(e): float-to-int conversion intrinsic *)
    expect st LPAREN "'(' after 'int'";
    let args = parse_args st in
    { Ast.desc = Ast.Call_expr ("int", args); pos }
  | TFLOAT, _ ->
    expect st LPAREN "'(' after 'float'";
    let args = parse_args st in
    { Ast.desc = Ast.Call_expr ("float", args); pos }
  | IDENT name, _ -> (
    match peek st with
    | LPAREN ->
      ignore (advance st);
      let args = parse_args st in
      { Ast.desc = Ast.Call_expr (name, args); pos }
    | LBRACKET ->
      ignore (advance st);
      let idx = parse_expr st in
      expect st RBRACKET "']'";
      { Ast.desc = Ast.Index (name, idx); pos }
    | _ -> { Ast.desc = Ast.Var name; pos })
  | got, pos ->
    raise (Parse_error (pos, Printf.sprintf "expected an expression, found %s" (describe got)))

and parse_args st =
  if peek st = RPAREN then begin
    ignore (advance st);
    []
  end
  else begin
    let rec loop acc =
      let e = parse_expr st in
      match peek st with
      | COMMA ->
        ignore (advance st);
        loop (e :: acc)
      | RPAREN ->
        ignore (advance st);
        List.rev (e :: acc)
      | _ -> error st "expected ',' or ')' in argument list"
    in
    loop []
  end

(* ---- statements ---- *)

let rec parse_block st =
  expect st LBRACE "'{'";
  let rec loop acc =
    if peek st = RBRACE then begin
      ignore (advance st);
      List.rev acc
    end
    else loop (parse_stmt st :: acc)
  in
  loop []

and parse_stmt st =
  let spos = peek_pos st in
  let mk sdesc = { Ast.sdesc; spos } in
  match peek st with
  | VAR | LET ->
    let mutable_ = peek st = VAR in
    ignore (advance st);
    let name = expect_ident st "a variable name" in
    let ty =
      if peek st = COLON then begin
        ignore (advance st);
        Some (parse_ty st)
      end
      else None
    in
    expect st ASSIGN "'='";
    let init = parse_expr st in
    expect st SEMI "';'";
    mk (Ast.Decl { name; ty; init; mutable_ })
  | IF ->
    ignore (advance st);
    expect st LPAREN "'('";
    let cond = parse_expr st in
    expect st RPAREN "')'";
    let then_ = parse_block st in
    let else_ =
      if peek st = ELSE then begin
        ignore (advance st);
        if peek st = IF then [ parse_stmt st ] else parse_block st
      end
      else []
    in
    mk (Ast.If (cond, then_, else_))
  | WHILE ->
    ignore (advance st);
    expect st LPAREN "'('";
    let cond = parse_expr st in
    expect st RPAREN "')'";
    let body = parse_block st in
    mk (Ast.While (cond, body))
  | FOR ->
    ignore (advance st);
    let var = expect_ident st "a loop variable" in
    expect st IN "'in'";
    let from_ = parse_expr st in
    expect st DOTDOT "'..'";
    let to_ = parse_expr st in
    let body = parse_block st in
    mk (Ast.For { var; from_; to_; body })
  | BREAK ->
    ignore (advance st);
    expect st SEMI "';'";
    mk Ast.Break
  | CONTINUE ->
    ignore (advance st);
    expect st SEMI "';'";
    mk Ast.Continue
  | RETURN ->
    ignore (advance st);
    if peek st = SEMI then begin
      ignore (advance st);
      mk (Ast.Return None)
    end
    else begin
      let e = parse_expr st in
      expect st SEMI "';'";
      mk (Ast.Return (Some e))
    end
  | PREDICT ->
    ignore (advance st);
    let target =
      if peek st = FUNC then begin
        ignore (advance st);
        Ast.Tfunc (expect_ident st "a function name")
      end
      else Ast.Tlabel (expect_ident st "a label name")
    in
    let threshold =
      if peek st = THRESHOLD then begin
        ignore (advance st);
        Some (expect_int st "a threshold value")
      end
      else None
    in
    expect st SEMI "';'";
    mk (Ast.Predict { target; threshold })
  | IDENT name when peek2 st = COLON ->
    ignore (advance st);
    ignore (advance st);
    mk (Ast.Label name)
  | IDENT name when peek2 st = ASSIGN ->
    ignore (advance st);
    ignore (advance st);
    let e = parse_expr st in
    expect st SEMI "';'";
    mk (Ast.Assign (name, e))
  | IDENT name when peek2 st = LBRACKET ->
    (* Either an indexed store or an expression statement; decide by
       looking past the bracketed index for '='. *)
    let saved = st.cur in
    ignore (advance st);
    ignore (advance st);
    let idx = parse_expr st in
    expect st RBRACKET "']'";
    if peek st = ASSIGN then begin
      ignore (advance st);
      let value = parse_expr st in
      expect st SEMI "';'";
      mk (Ast.Index_assign (name, idx, value))
    end
    else begin
      st.cur <- saved;
      let e = parse_expr st in
      expect st SEMI "';'";
      mk (Ast.Expr_stmt e)
    end
  | _ ->
    let e = parse_expr st in
    expect st SEMI "';'";
    mk (Ast.Expr_stmt e)

(* ---- top level ---- *)

let parse_params st =
  expect st LPAREN "'('";
  if peek st = RPAREN then begin
    ignore (advance st);
    []
  end
  else begin
    let rec loop acc =
      let name = expect_ident st "a parameter name" in
      expect st COLON "':'";
      let ty = parse_ty st in
      match peek st with
      | COMMA ->
        ignore (advance st);
        loop ((name, ty) :: acc)
      | RPAREN ->
        ignore (advance st);
        List.rev ((name, ty) :: acc)
      | _ -> error st "expected ',' or ')' in parameter list"
    in
    loop []
  end

let parse_decl st =
  let fpos = peek_pos st in
  match advance st with
  | GLOBAL, _ ->
    let gname = expect_ident st "a global name" in
    expect st COLON "':'";
    let gty = parse_ty st in
    let gsize =
      if peek st = LBRACKET then begin
        ignore (advance st);
        let n = expect_int st "an array size" in
        expect st RBRACKET "']'";
        Some n
      end
      else None
    in
    expect st SEMI "';'";
    `Global { Ast.gname; gty; gsize }
  | KERNEL, _ ->
    let name = expect_ident st "a kernel name" in
    let params = parse_params st in
    let body = parse_block st in
    `Func { Ast.name; params; ret = None; body; is_kernel = true; fpos }
  | FUNC, _ ->
    let name = expect_ident st "a function name" in
    let params = parse_params st in
    let ret =
      if peek st = ARROW then begin
        ignore (advance st);
        Some (parse_ty st)
      end
      else None
    in
    let body = parse_block st in
    `Func { Ast.name; params; ret; body; is_kernel = false; fpos }
  | got, pos ->
    raise
      (Parse_error
         (pos, Printf.sprintf "expected 'global', 'kernel' or 'func', found %s" (describe got)))

let tokenize src =
  let lexbuf = Lexing.from_string src in
  let rec loop acc =
    let t = Lexer.token lexbuf in
    let p = Lexing.lexeme_start_p lexbuf in
    let pos = { Ast.line = p.Lexing.pos_lnum; col = p.Lexing.pos_cnum - p.Lexing.pos_bol + 1 } in
    match t with
    | EOF -> List.rev ((EOF, pos) :: acc)
    | t -> loop ((t, pos) :: acc)
  in
  Array.of_list (loop [])

let parse_string src =
  let st = { toks = tokenize src; cur = 0 } in
  let rec loop globals funcs =
    if peek st = EOF then { Ast.globals = List.rev globals; funcs = List.rev funcs }
    else
      match parse_decl st with
      | `Global g -> loop (g :: globals) funcs
      | `Func f -> loop globals (f :: funcs)
  in
  loop [] []
