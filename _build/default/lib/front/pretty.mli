(** Pretty-printing of MiniSIMT ASTs back to concrete syntax.

    [Parser.parse_string (to_string ast)] yields an AST structurally
    equal to [ast] (positions aside) — the round-trip property the test
    suite checks. Useful for inspecting what {!Coarsen} did to a kernel
    and for generating source-to-source output. *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val to_string : Ast.program -> string

(** Structural equality, ignoring source positions. *)
val equal_program : Ast.program -> Ast.program -> bool
