(** Recursive-descent parser for MiniSIMT source text. *)

exception Parse_error of Ast.pos * string

(** [parse_string src] parses a full program.
    @raise Parse_error (or {!Lexer.Lex_error}) with a source position on
    malformed input. *)
val parse_string : string -> Ast.program
