(** Lowering from the MiniSIMT AST to the IR.

    Performs name resolution, a simple int/float type check, structured
    control-flow expansion (including short-circuit [&&]/[||], which
    become real divergent branches), global allocation, and capture of
    labels and [predict] directives as {!Ir.Types.predict_hint}s.

    Semantics notes enforced here:
    - [for x in a..b] evaluates [b] once, before the first iteration;
    - [let] bindings are immutable, [var] and parameters are mutable;
    - a kernel's [return] (valueless) means thread exit; device functions
      falling off the end return a zero of their declared type;
    - statements after a [break]/[continue]/[return] in the same block
      are dead and silently dropped. *)

exception Lower_error of Ast.pos * string

(** [lower ast] produces a verified IR program. Exactly one kernel must
    be declared. @raise Lower_error with a source position otherwise. *)
val lower : Ast.program -> Ir.Types.program

(** [compile_source src] — parse + lower in one step.
    @raise Parser.Parse_error / Lexer.Lex_error / Lower_error. *)
val compile_source : string -> Ir.Types.program
