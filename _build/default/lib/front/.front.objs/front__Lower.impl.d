lib/front/lower.ml: Ast Hashtbl Ir List Option Parser Printf
