lib/front/ast.ml: Format
