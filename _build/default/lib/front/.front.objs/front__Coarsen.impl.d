lib/front/coarsen.ml: Ast List Printf
