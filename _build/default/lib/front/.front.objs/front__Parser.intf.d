lib/front/parser.mli: Ast
