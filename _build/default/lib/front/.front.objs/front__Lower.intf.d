lib/front/lower.mli: Ast Ir
