lib/front/coarsen.mli: Ast
