lib/front/pretty.ml: Ast Float Format List Printf String
