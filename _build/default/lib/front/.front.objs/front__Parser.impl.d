lib/front/parser.ml: Array Ast Lexer Lexing List Printf Tokens
