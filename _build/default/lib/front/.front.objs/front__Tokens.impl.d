lib/front/tokens.ml: Printf
