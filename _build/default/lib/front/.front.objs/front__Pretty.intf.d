lib/front/pretty.mli: Ast Format
