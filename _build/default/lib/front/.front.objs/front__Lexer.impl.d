lib/front/lexer.ml: Ast Lexing List Printf Tokens
