open Ast

(* Every literal this prints must re-lex to the same token. Floats always
   carry a decimal point or exponent so they cannot collapse into
   integers. *)
let float_literal x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else
    let s = Printf.sprintf "%.17g" x in
    if String.contains s '.' || String.contains s 'e' || String.contains s 'E' then s
    else s ^ ".0"

let binop_symbol = function
  | Badd -> "+"
  | Bsub -> "-"
  | Bmul -> "*"
  | Bdiv -> "/"
  | Brem -> "%"
  | Beq -> "=="
  | Bne -> "!="
  | Blt -> "<"
  | Ble -> "<="
  | Bgt -> ">"
  | Bge -> ">="
  | Band -> "&&"
  | Bor -> "||"

(* Nested expressions are fully parenthesised: unambiguous under any
   precedence, which is what makes the parse/print round trip exact. *)
let rec pp_expr ppf (e : expr) =
  match e.desc with
  | Int_lit n -> Format.pp_print_int ppf n
  | Float_lit x -> Format.pp_print_string ppf (float_literal x)
  | Var name -> Format.pp_print_string ppf name
  | Index (name, idx) -> Format.fprintf ppf "%s[%a]" name pp_expr idx
  | Binary (op, a, b) -> Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_symbol op) pp_expr b
  | Unary (Uneg, a) -> Format.fprintf ppf "(-%a)" pp_expr a
  | Unary (Unot, a) -> Format.fprintf ppf "(!%a)" pp_expr a
  | Call_expr (name, args) ->
    Format.fprintf ppf "%s(%a)" name
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp_expr)
      args

let rec pp_stmt_indented indent ppf (s : stmt) =
  let pad = String.make indent ' ' in
  let block body = pp_block_indented (indent + 2) ppf body in
  match s.sdesc with
  | Decl { name; ty; init; mutable_ } ->
    let kw = if mutable_ then "var" else "let" in
    (match ty with
    | Some t -> Format.fprintf ppf "%s%s %s: %s = %a;" pad kw name (ty_name t) pp_expr init
    | None -> Format.fprintf ppf "%s%s %s = %a;" pad kw name pp_expr init)
  | Assign (name, e) -> Format.fprintf ppf "%s%s = %a;" pad name pp_expr e
  | Index_assign (name, idx, e) ->
    Format.fprintf ppf "%s%s[%a] = %a;" pad name pp_expr idx pp_expr e
  | If (cond, then_, else_) ->
    Format.fprintf ppf "%sif (%a) {@." pad pp_expr cond;
    block then_;
    if else_ = [] then Format.fprintf ppf "%s}" pad
    else begin
      Format.fprintf ppf "%s} else {@." pad;
      block else_;
      Format.fprintf ppf "%s}" pad
    end
  | While (cond, body) ->
    Format.fprintf ppf "%swhile (%a) {@." pad pp_expr cond;
    block body;
    Format.fprintf ppf "%s}" pad
  | For { var; from_; to_; body } ->
    Format.fprintf ppf "%sfor %s in %a .. %a {@." pad var pp_expr from_ pp_expr to_;
    block body;
    Format.fprintf ppf "%s}" pad
  | Break -> Format.fprintf ppf "%sbreak;" pad
  | Continue -> Format.fprintf ppf "%scontinue;" pad
  | Return None -> Format.fprintf ppf "%sreturn;" pad
  | Return (Some e) -> Format.fprintf ppf "%sreturn %a;" pad pp_expr e
  | Expr_stmt e -> Format.fprintf ppf "%s%a;" pad pp_expr e
  | Label name -> Format.fprintf ppf "%s%s:" pad name
  | Predict { target; threshold } ->
    let t = match target with Tlabel l -> l | Tfunc f -> "func " ^ f in
    (match threshold with
    | None -> Format.fprintf ppf "%spredict %s;" pad t
    | Some k -> Format.fprintf ppf "%spredict %s threshold %d;" pad t k)

and pp_block_indented indent ppf body =
  List.iter (fun s -> Format.fprintf ppf "%a@." (pp_stmt_indented indent) s) body

let pp_stmt ppf s = pp_stmt_indented 0 ppf s

let pp_func ppf (f : func_decl) =
  let kw = if f.is_kernel then "kernel" else "func" in
  let params =
    String.concat ", " (List.map (fun (n, t) -> Printf.sprintf "%s: %s" n (ty_name t)) f.params)
  in
  let ret = match f.ret with None -> "" | Some t -> " -> " ^ ty_name t in
  Format.fprintf ppf "%s %s(%s)%s {@." kw f.name params ret;
  pp_block_indented 2 ppf f.body;
  Format.fprintf ppf "}@."

let pp_program ppf (p : program) =
  List.iter
    (fun g ->
      match g.gsize with
      | Some n -> Format.fprintf ppf "global %s: %s[%d];@." g.gname (ty_name g.gty) n
      | None -> Format.fprintf ppf "global %s: %s;@." g.gname (ty_name g.gty))
    p.globals;
  List.iter (fun f -> Format.fprintf ppf "@.%a" pp_func f) p.funcs

let to_string p = Format.asprintf "%a" pp_program p

(* ---- structural equality, positions ignored ---- *)

let rec equal_expr (a : expr) (b : expr) =
  match (a.desc, b.desc) with
  | Int_lit x, Int_lit y -> x = y
  | Float_lit x, Float_lit y -> x = y
  | Var x, Var y -> String.equal x y
  | Index (n1, i1), Index (n2, i2) -> String.equal n1 n2 && equal_expr i1 i2
  | Binary (o1, a1, b1), Binary (o2, a2, b2) -> o1 = o2 && equal_expr a1 a2 && equal_expr b1 b2
  | Unary (o1, a1), Unary (o2, a2) -> o1 = o2 && equal_expr a1 a2
  | Call_expr (n1, args1), Call_expr (n2, args2) ->
    String.equal n1 n2
    && List.length args1 = List.length args2
    && List.for_all2 equal_expr args1 args2
  | ( (Int_lit _ | Float_lit _ | Var _ | Index _ | Binary _ | Unary _ | Call_expr _), _ ) ->
    false

let rec equal_stmt (a : stmt) (b : stmt) =
  match (a.sdesc, b.sdesc) with
  | Decl d1, Decl d2 ->
    String.equal d1.name d2.name && d1.ty = d2.ty && d1.mutable_ = d2.mutable_
    && equal_expr d1.init d2.init
  | Assign (n1, e1), Assign (n2, e2) -> String.equal n1 n2 && equal_expr e1 e2
  | Index_assign (n1, i1, e1), Index_assign (n2, i2, e2) ->
    String.equal n1 n2 && equal_expr i1 i2 && equal_expr e1 e2
  | If (c1, t1, e1), If (c2, t2, e2) ->
    equal_expr c1 c2 && equal_block t1 t2 && equal_block e1 e2
  | While (c1, b1), While (c2, b2) -> equal_expr c1 c2 && equal_block b1 b2
  | For f1, For f2 ->
    String.equal f1.var f2.var && equal_expr f1.from_ f2.from_ && equal_expr f1.to_ f2.to_
    && equal_block f1.body f2.body
  | Break, Break | Continue, Continue | Return None, Return None -> true
  | Return (Some e1), Return (Some e2) -> equal_expr e1 e2
  | Expr_stmt e1, Expr_stmt e2 -> equal_expr e1 e2
  | Label l1, Label l2 -> String.equal l1 l2
  | Predict p1, Predict p2 -> p1.target = p2.target && p1.threshold = p2.threshold
  | ( ( Decl _ | Assign _ | Index_assign _ | If _ | While _ | For _ | Break | Continue
      | Return _ | Expr_stmt _ | Label _ | Predict _ ),
      _ ) -> false

and equal_block a b = List.length a = List.length b && List.for_all2 equal_stmt a b

let equal_func (a : func_decl) (b : func_decl) =
  String.equal a.name b.name && a.params = b.params && a.ret = b.ret
  && a.is_kernel = b.is_kernel && equal_block a.body b.body

let equal_program (a : program) (b : program) =
  a.globals = b.globals
  && List.length a.funcs = List.length b.funcs
  && List.for_all2 equal_func a.funcs b.funcs
