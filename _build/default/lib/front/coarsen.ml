open Ast

let coarse_var = "__coarse"

let rec rewrite_expr factor (e : expr) =
  let mk desc = { e with desc } in
  match e.desc with
  | Call_expr ("tid", []) ->
    (* tid() + __coarse * nthreads(); the inserted calls are raw nodes,
       deliberately not re-rewritten. *)
    let raw name = { desc = Call_expr (name, []); pos = e.pos } in
    mk
      (Binary
         ( Badd,
           raw "tid",
           { desc = Binary (Bmul, { desc = Var coarse_var; pos = e.pos }, raw "nthreads");
             pos = e.pos } ))
  | Call_expr ("nthreads", []) ->
    let raw = { desc = Call_expr ("nthreads", []); pos = e.pos } in
    mk (Binary (Bmul, raw, { desc = Int_lit factor; pos = e.pos }))
  | Call_expr (name, args) -> mk (Call_expr (name, List.map (rewrite_expr factor) args))
  | Binary (op, a, b) -> mk (Binary (op, rewrite_expr factor a, rewrite_expr factor b))
  | Unary (op, a) -> mk (Unary (op, rewrite_expr factor a))
  | Index (name, idx) -> mk (Index (name, rewrite_expr factor idx))
  | Int_lit _ | Float_lit _ | Var _ -> e

let rec rewrite_stmt factor (s : stmt) =
  let mk sdesc = { s with sdesc } in
  let re = rewrite_expr factor in
  let rs = List.map (rewrite_stmt factor) in
  match s.sdesc with
  | Decl d -> mk (Decl { d with init = re d.init })
  | Assign (name, e) -> mk (Assign (name, re e))
  | Index_assign (name, idx, e) -> mk (Index_assign (name, re idx, re e))
  | If (c, t, e) -> mk (If (re c, rs t, rs e))
  | While (c, body) -> mk (While (re c, rs body))
  | For f -> mk (For { f with from_ = re f.from_; to_ = re f.to_; body = rs f.body })
  | Return (Some e) -> mk (Return (Some (re e)))
  | Expr_stmt e -> mk (Expr_stmt (re e))
  | Return None | Break | Continue | Label _ | Predict _ -> s

let rec uses_thread_intrinsics_expr (e : expr) =
  match e.desc with
  | Call_expr (("tid" | "nthreads" | "lane"), []) -> true
  | Call_expr (_, args) -> List.exists uses_thread_intrinsics_expr args
  | Binary (_, a, b) -> uses_thread_intrinsics_expr a || uses_thread_intrinsics_expr b
  | Unary (_, a) -> uses_thread_intrinsics_expr a
  | Index (_, idx) -> uses_thread_intrinsics_expr idx
  | Int_lit _ | Float_lit _ | Var _ -> false

let rec uses_thread_intrinsics_stmt (s : stmt) =
  match s.sdesc with
  | Decl { init; _ } -> uses_thread_intrinsics_expr init
  | Assign (_, e) | Expr_stmt e | Return (Some e) -> uses_thread_intrinsics_expr e
  | Index_assign (_, idx, e) ->
    uses_thread_intrinsics_expr idx || uses_thread_intrinsics_expr e
  | If (c, t, e) ->
    uses_thread_intrinsics_expr c
    || List.exists uses_thread_intrinsics_stmt t
    || List.exists uses_thread_intrinsics_stmt e
  | While (c, body) ->
    uses_thread_intrinsics_expr c || List.exists uses_thread_intrinsics_stmt body
  | For { from_; to_; body; _ } ->
    uses_thread_intrinsics_expr from_
    || uses_thread_intrinsics_expr to_
    || List.exists uses_thread_intrinsics_stmt body
  | Return None | Break | Continue | Label _ | Predict _ -> false

let apply (ast : program) ~factor =
  if factor <= 0 then failwith "Coarsen: factor must be positive";
  let kernels = List.filter (fun f -> f.is_kernel) ast.funcs in
  (match kernels with
  | [ _ ] -> ()
  | [] -> failwith "Coarsen: no kernel to coarsen"
  | _ -> failwith "Coarsen: multiple kernels");
  List.iter
    (fun f ->
      if (not f.is_kernel) && List.exists uses_thread_intrinsics_stmt f.body then
        failwith
          (Printf.sprintf
             "Coarsen: device function %s uses thread intrinsics; inline it into the kernel first"
             f.name))
    ast.funcs;
  let funcs =
    List.map
      (fun f ->
        if not f.is_kernel then f
        else
          let pos = f.fpos in
          (* Predict directives written at the top level of the kernel
             apply to the whole region (Listing 1 places Predict *outside*
             the loop): hoist them above the injected task loop, so the
             region spans all of a thread's tasks and refilling threads
             remain reconvergence candidates between tasks. *)
          let is_predict s = match s.sdesc with Predict _ -> true | _ -> false in
          let predicts, rest = List.partition is_predict f.body in
          let body = List.map (rewrite_stmt factor) rest in
          let wrapper =
            {
              sdesc =
                For
                  {
                    var = coarse_var;
                    from_ = { desc = Int_lit 0; pos };
                    to_ = { desc = Int_lit factor; pos };
                    body;
                  };
              spos = pos;
            }
          in
          { f with body = predicts @ [ wrapper ] })
      ast.funcs
  in
  { ast with funcs }
