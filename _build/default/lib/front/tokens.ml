(* Lexical tokens of MiniSIMT. *)

type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  (* keywords *)
  | KERNEL
  | FUNC
  | GLOBAL
  | VAR
  | LET
  | IF
  | ELSE
  | WHILE
  | FOR
  | IN
  | BREAK
  | CONTINUE
  | RETURN
  | PREDICT
  | THRESHOLD
  | TINT
  | TFLOAT
  (* punctuation and operators *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | COLON
  | ARROW
  | DOTDOT
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | ANDAND
  | OROR
  | BANG
  | EOF

let describe = function
  | INT n -> Printf.sprintf "integer %d" n
  | FLOAT x -> Printf.sprintf "float %g" x
  | IDENT s -> Printf.sprintf "identifier '%s'" s
  | KERNEL -> "'kernel'"
  | FUNC -> "'func'"
  | GLOBAL -> "'global'"
  | VAR -> "'var'"
  | LET -> "'let'"
  | IF -> "'if'"
  | ELSE -> "'else'"
  | WHILE -> "'while'"
  | FOR -> "'for'"
  | IN -> "'in'"
  | BREAK -> "'break'"
  | CONTINUE -> "'continue'"
  | RETURN -> "'return'"
  | PREDICT -> "'predict'"
  | THRESHOLD -> "'threshold'"
  | TINT -> "'int'"
  | TFLOAT -> "'float'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | COMMA -> "','"
  | SEMI -> "';'"
  | COLON -> "':'"
  | ARROW -> "'->'"
  | DOTDOT -> "'..'"
  | ASSIGN -> "'='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | EQ -> "'=='"
  | NE -> "'!='"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | ANDAND -> "'&&'"
  | OROR -> "'||'"
  | BANG -> "'!'"
  | EOF -> "end of input"
