(** Thread coarsening (§3).

    Converts a one-task-per-thread kernel into a kernel where each thread
    processes [factor] tasks in a grid-stride loop, producing the
    outer-loop-around-divergent-work shape that Loop Merge needs. This is
    the transformation the paper applies to RSBench ("instead of a single
    variable length task per thread, we assign a large number of tasks
    per thread").

    Rewrites inside the kernel body (task [c] of a launch with [N]
    threads):
    - [tid()] becomes [tid() + c * nthreads()] — the simulated task id;
    - [nthreads()] becomes [nthreads() * factor] — the simulated launch
      width;
    and the whole body is wrapped in [for c in 0 .. factor]. *)

(** [apply ast ~factor].
    @raise Failure if [factor <= 0], if there is no kernel, or if a device
    function uses [tid()]/[nthreads()]/[lane()] (the rewrite would be
    unsound there; inline such helpers first). *)
val apply : Ast.program -> factor:int -> Ast.program
