(* Abstract syntax of the MiniSIMT kernel language.

   The language is deliberately small: scalars of type int/float, global
   arrays, structured control flow, device functions, per-thread intrinsics
   — just enough to express the paper's divergent workloads — plus the
   user-guided reconvergence surface of §4.1: statement labels and
   [predict] directives. *)

type pos = { line : int; col : int }

let pp_pos ppf p = Format.fprintf ppf "%d:%d" p.line p.col

type ty = Tint | Tfloat

let ty_name = function Tint -> "int" | Tfloat -> "float"

type binop =
  | Badd
  | Bsub
  | Bmul
  | Bdiv
  | Brem
  | Beq
  | Bne
  | Blt
  | Ble
  | Bgt
  | Bge
  | Band (* short-circuit *)
  | Bor (* short-circuit *)

type unop = Uneg | Unot

type expr = { desc : expr_desc; pos : pos }

and expr_desc =
  | Int_lit of int
  | Float_lit of float
  | Var of string (* local variable or scalar global *)
  | Index of string * expr (* global array element *)
  | Binary of binop * expr * expr
  | Unary of unop * expr
  | Call_expr of string * expr list (* device function or intrinsic *)

type stmt = { sdesc : stmt_desc; spos : pos }

and stmt_desc =
  | Decl of { name : string; ty : ty option; init : expr; mutable_ : bool }
  | Assign of string * expr
  | Index_assign of string * expr * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of { var : string; from_ : expr; to_ : expr; body : stmt list }
  | Break
  | Continue
  | Return of expr option
  | Expr_stmt of expr
  | Label of string (* reconvergence label, §4.1 *)
  | Predict of { target : target; threshold : int option } (* Predict directive *)

and target = Tlabel of string | Tfunc of string

type global_decl = { gname : string; gty : ty; gsize : int option (* None = scalar *) }

type func_decl = {
  name : string;
  params : (string * ty) list;
  ret : ty option;
  body : stmt list;
  is_kernel : bool;
  fpos : pos;
}

type program = { globals : global_decl list; funcs : func_decl list }
