{
open Tokens

exception Lex_error of Ast.pos * string

let pos_of lexbuf =
  let p = Lexing.lexeme_start_p lexbuf in
  { Ast.line = p.Lexing.pos_lnum; col = p.Lexing.pos_cnum - p.Lexing.pos_bol + 1 }

let keywords =
  [ ("kernel", KERNEL); ("func", FUNC); ("global", GLOBAL); ("var", VAR); ("let", LET);
    ("if", IF); ("else", ELSE); ("while", WHILE); ("for", FOR); ("in", IN);
    ("break", BREAK); ("continue", CONTINUE); ("return", RETURN); ("predict", PREDICT);
    ("threshold", THRESHOLD); ("int", TINT); ("float", TFLOAT) ]
}

let digit = ['0'-'9']
let ident_start = ['a'-'z' 'A'-'Z' '_']
let ident_char = ['a'-'z' 'A'-'Z' '0'-'9' '_']

rule token = parse
  | [' ' '\t' '\r']+        { token lexbuf }
  | '\n'                    { Lexing.new_line lexbuf; token lexbuf }
  | "//" [^ '\n']*          { token lexbuf }
  | "/*"                    { comment (pos_of lexbuf) lexbuf; token lexbuf }
  | digit+ '.' digit* (['e' 'E'] ['+' '-']? digit+)?
                            { FLOAT (float_of_string (Lexing.lexeme lexbuf)) }
  | digit+ ['e' 'E'] ['+' '-']? digit+
                            { FLOAT (float_of_string (Lexing.lexeme lexbuf)) }
  | digit+                  { INT (int_of_string (Lexing.lexeme lexbuf)) }
  | ident_start ident_char* { let s = Lexing.lexeme lexbuf in
                              match List.assoc_opt s keywords with
                              | Some kw -> kw
                              | None -> IDENT s }
  | "->"                    { ARROW }
  | ".."                    { DOTDOT }
  | "=="                    { EQ }
  | "!="                    { NE }
  | "<="                    { LE }
  | ">="                    { GE }
  | "&&"                    { ANDAND }
  | "||"                    { OROR }
  | '('                     { LPAREN }
  | ')'                     { RPAREN }
  | '{'                     { LBRACE }
  | '}'                     { RBRACE }
  | '['                     { LBRACKET }
  | ']'                     { RBRACKET }
  | ','                     { COMMA }
  | ';'                     { SEMI }
  | ':'                     { COLON }
  | '='                     { ASSIGN }
  | '+'                     { PLUS }
  | '-'                     { MINUS }
  | '*'                     { STAR }
  | '/'                     { SLASH }
  | '%'                     { PERCENT }
  | '<'                     { LT }
  | '>'                     { GT }
  | '!'                     { BANG }
  | eof                     { EOF }
  | _                       { raise (Lex_error (pos_of lexbuf,
                                Printf.sprintf "unexpected character '%s'"
                                  (Lexing.lexeme lexbuf))) }

and comment start = parse
  | "*/"                    { () }
  | '\n'                    { Lexing.new_line lexbuf; comment start lexbuf }
  | eof                     { raise (Lex_error (start, "unterminated comment")) }
  | _                       { comment start lexbuf }
