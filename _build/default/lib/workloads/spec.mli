(** Workload descriptor: a MiniSIMT program plus everything needed to
    launch it reproducibly (arguments, memory initialisation, machine
    tweaks, output sanity check). One value per Table-2 benchmark. *)

type t = {
  name : string;
  description : string; (* the Table-2 one-liner *)
  source : string; (* MiniSIMT text, including predict hints *)
  args : Ir.Types.value list; (* kernel arguments *)
  coarsen : int option; (* thread-coarsening factor (§3), if the
                            paper's methodology applies it *)
  init : Ir.Types.program -> Simt.Memsys.t -> unit;
      (* fills global tables; receives the compiled program to resolve
         global base addresses *)
  tweak_config : Simt.Config.t -> Simt.Config.t;
      (* per-workload machine adjustments (e.g. a cache for the
         memory-bound XSBench) *)
  check : Ir.Types.program -> Simt.Memsys.t -> (unit, string) result;
      (* post-run output sanity check *)
}

(** [init_rng spec] — deterministic generator for table initialisation,
    derived from the workload name. *)
val init_rng : t -> Support.Splitmix.t

(** Fill [len] cells starting at the global [name]'s base with values
    produced by [gen]. *)
val fill_global :
  Ir.Types.program ->
  Simt.Memsys.t ->
  name:string ->
  gen:(int -> Ir.Types.value) ->
  unit

(** A check that every cell of global [name] holds a finite float (no
    NaN/infinity escaped the kernel). *)
val check_finite : name:string -> Ir.Types.program -> Simt.Memsys.t -> (unit, string) result

(** A check that at least [n] cells of global [name] are nonzero (the
    kernel actually produced output). *)
val check_nonzero :
  name:string -> n:int -> Ir.Types.program -> Simt.Memsys.t -> (unit, string) result
