(** The Table-2 benchmark registry. *)

(** All workloads, in the paper's Table-2 order (plus the common-call
    microbenchmark at the end). *)
val all : Spec.t list

(** The two workloads of the Figure-9 soft-barrier sweep. *)
val soft_barrier_subjects : Spec.t list

(** Workloads evaluated through automatic detection in Figure 10 (their
    sources carry no annotations). *)
val auto_subjects : Spec.t list

(** [find name]. @raise Not_found for unknown names. *)
val find : string -> Spec.t
