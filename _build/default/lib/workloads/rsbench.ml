(* RSBench: multipole macroscopic cross-section lookup of Monte Carlo
   neutron transport (Tramm et al. [26]; Figure 3 of the paper).

   Each task draws a random material and walks all of its nuclides,
   accumulating windowed-multipole cross-section contributions — a
   compute-heavy inner loop whose trip count is the material's nuclide
   count, "ranging from 4 to 321" (§3). Most materials are small; fuel
   materials carry hundreds of nuclides, so the count distribution is
   strongly bimodal, which is what serializes warps under PDOM sync.

   Methodology as in the paper: the kernel is written one-lookup-per-thread
   and thread coarsening (§3) assigns many tasks per thread, producing the
   Loop Merge shape; the Predict hint collects threads at the inner loop
   body. *)

let n_materials = 12
let max_tasks = 16384

let source =
  Printf.sprintf
    {|
global nuclide_counts: int[%d];
global poles: float[8192];
global results: float[%d];

kernel rsbench(n_materials: int) {
  // one cross-section lookup task per (virtual) thread
  let material = randint(n_materials);
  let n_nuclides = nuclide_counts[material];
  let energy = rand();
  var macro_xs: float = 0.0;
  predict L1;
  var j: int = 0;
  while (j < n_nuclides) {
    L1:
    // windowed multipole evaluation for one nuclide: compute heavy, with
    // a pole-window lookup whose index is iteration-major (coalesced when
    // the inner loop runs convergently)
    let pole = poles[(j * 13 + material) %% 8192];
    let e = energy * float(j + 1);
    let psi = sin(e) * 0.35 + cos(e * 0.5) * 0.15;
    let eta = sin(e * 1.7 + psi) * 0.2 + cos(e * 0.9) * 0.1;
    let sigma = pole * (e * e * 0.01 + psi * psi + eta * eta + 0.5 / (e + 1.0));
    macro_xs = macro_xs + sigma;
    j = j + 1;
  }
  // epilog: post-processing of the accumulated cross section
  results[tid()] = macro_xs * 0.0001 + 1.0;
}
|}
    n_materials max_tasks

let init (p : Ir.Types.program) mem =
  let rng = Support.Splitmix.of_ints 0x5b 0xe4c4 1 in
  (* Bimodal nuclide counts over the paper's 4..321 range: most materials
     are small, a few (fuel) are very large. *)
  let dist =
    Support.Dist.Bimodal { lo = (4, 40); hi = (220, 321); p_hi = 0.2 }
  in
  Spec.fill_global p mem ~name:"nuclide_counts" ~gen:(fun _ ->
      Ir.Types.I (Support.Dist.sample dist rng));
  Spec.fill_global p mem ~name:"poles" ~gen:(fun _ ->
      Ir.Types.F (Support.Splitmix.float rng *. 2.0 -. 1.0))

let spec : Spec.t =
  {
    name = "rsbench";
    description =
      "Nuclear reactor Monte Carlo neutron transport mini-app; divergent-trip inner loop over \
       4-321 nuclides per material, thread-coarsened (Loop Merge)";
    source;
    args = [ Ir.Types.I n_materials ];
    coarsen = Some 6;
    init;
    tweak_config =
      (fun c ->
        (* RSBench is compute bound: its pole windows live in cache, so
           the arithmetic dominates (unlike XSBench). *)
        {
          c with
          Simt.Config.n_warps = 2;
          memory =
            {
              c.Simt.Config.memory with
              Simt.Config.cache = Some { Simt.Config.sets = 128; ways = 8; hit_latency = 4 };
            };
        });
    check =
      (fun p mem ->
        match Spec.check_finite ~name:"results" p mem with
        | Error _ as e -> e
        | Ok () -> Spec.check_nonzero ~name:"results" ~n:64 p mem);
  }
