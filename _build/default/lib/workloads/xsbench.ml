(* XSBench: the memory-bound sibling of RSBench (Tramm et al. [27]).

   Same nested-divergent-loop shape, but the inner loop is dominated by
   scattered table lookups rather than arithmetic, and acquiring a new
   task is expensive: a binary search over the unionized energy grid
   (the "expensive epilog" the paper calls out in Table 2). That refill
   cost is why XSBench peaks at a small soft-barrier threshold in
   Figure 9: refilling a few idle lanes at a time re-runs the binary
   search too often, so it pays to keep executing the inner loop until
   only a handful of threads remain. *)

let n_materials = 12
let grid_size = 4096
let max_tasks = 16384

let source =
  Printf.sprintf
    {|
global nuclide_counts: int[%d];
global energy_grid: float[%d];
global xs_table: float[16384];
global index_grid: int[%d];
global results: float[%d];

kernel xsbench(n_materials: int, grid_size: int) {
  let material = randint(n_materials);
  let n_nuclides = nuclide_counts[material];
  let energy = rand();
  // prolog: binary search of the unionized energy grid (expensive refill)
  var lo: int = 0;
  var hi: int = grid_size;
  while (lo + 1 < hi) {
    let mid = (lo + hi) / 2;
    if (energy_grid[mid] <= energy) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  let grid_idx = index_grid[lo];
  var macro_xs: float = 0.0;
  predict L1 threshold 4;
  var j: int = 0;
  while (j < n_nuclides) {
    L1:
    // memory-bound lookup: gather two cross sections and interpolate
    let row = (grid_idx * 131 + material * 17 + j * 29) %% 16384;
    let xs_low = xs_table[row];
    let xs_high = xs_table[(row + j + 1) %% 16384];
    let xs_abs = xs_table[(row * 3 + 7) %% 16384];
    let f = energy - float(int(energy));
    macro_xs = macro_xs + xs_low + f * (xs_high - xs_low) + xs_abs * 0.1;
    j = j + 1;
  }
  results[tid()] = macro_xs * 0.001 + 1.0;
}
|}
    n_materials grid_size grid_size max_tasks

let init (p : Ir.Types.program) mem =
  let rng = Support.Splitmix.of_ints 0x5c 0x15be 2 in
  let dist = Support.Dist.Bimodal { lo = (24, 120); hi = (200, 321); p_hi = 0.25 } in
  Spec.fill_global p mem ~name:"nuclide_counts" ~gen:(fun _ ->
      Ir.Types.I (Support.Dist.sample dist rng));
  (* Sorted energy grid in [0, 1). *)
  Spec.fill_global p mem ~name:"energy_grid" ~gen:(fun i ->
      Ir.Types.F (float_of_int i /. float_of_int grid_size));
  Spec.fill_global p mem ~name:"xs_table" ~gen:(fun _ ->
      Ir.Types.F (Support.Splitmix.float rng));
  Spec.fill_global p mem ~name:"index_grid" ~gen:(fun _ ->
      Ir.Types.I (Support.Splitmix.int rng 997))

let spec : Spec.t =
  {
    name = "xsbench";
    description =
      "Memory-bound Monte Carlo cross-section lookup: scattered-gather inner loop plus an \
       expensive binary-search refill (Loop Merge + soft barrier)";
    source;
    args = [ Ir.Types.I n_materials; Ir.Types.I grid_size ];
    coarsen = Some 6;
    init;
    tweak_config =
      (fun c ->
        {
          c with
          Simt.Config.n_warps = 2;
          memory =
            {
              c.Simt.Config.memory with
              Simt.Config.cache = Some { Simt.Config.sets = 64; ways = 4; hit_latency = 8 };
            };
        });
    check =
      (fun p mem ->
        match Spec.check_finite ~name:"results" p mem with
        | Error _ as e -> e
        | Ok () -> Spec.check_nonzero ~name:"results" ~n:64 p mem);
  }
