(* Common-function-call microbenchmark (Figure 2(c)).

   Both sides of a divergent branch eventually call the same expensive
   function, but from different program points, so PDOM reconvergence
   never sees the bodies as common code and the warp runs the function
   once per branch side. The paper found no full application with this
   pattern and validated it with microbenchmarks (§5.1); this is that
   microbenchmark. [predict func shade;] triggers the interprocedural
   variant (§4.4): threads reconverge at the callee's entry. *)

let max_threads = 8192

let source =
  Printf.sprintf "\nglobal results: float[%d];\n" max_threads
  ^ {|
func shade(x: float) -> float {
  // expensive body common to both branch sides
  var acc: float = x;
  var i: int = 0;
  while (i < 48) {
    acc = acc + sin(acc * 0.7) * 0.4 + 0.01;
    i = i + 1;
  }
  return acc;
}

kernel common_call(n_rounds: int) {
  var out: float = 0.0;
  predict func shade;
  for round in 0 .. n_rounds {
    let v = rand();
    // alternating halves of the warp take opposite sides
    if ((lane() + round) % 2 == 0) {
      // taken path: a little private work, then the common call
      let a = v * 1.5 + 0.25;
      out = out + shade(a);
    } else {
      // not-taken path: different private work, same callee
      let b = v - 2.0;
      out = out + shade(b) * 0.5 + 0.125;
    }
  }
  results[tid()] = out;
}
|}

let init (_ : Ir.Types.program) (_ : Simt.Memsys.t) = ()

let spec : Spec.t =
  {
    name = "common-call";
    description =
      "Microbenchmark for the common-function-call pattern of Fig. 2(c): both sides of a \
       divergent branch call the same expensive function (interprocedural reconvergence)";
    source;
    args = [ Ir.Types.I 12 ];
    coarsen = None;
    init;
    tweak_config = (fun c -> { c with Simt.Config.n_warps = 2 });
    check =
      (fun p mem ->
        match Spec.check_finite ~name:"results" p mem with
        | Error _ as e -> e
        | Ok () -> Spec.check_nonzero ~name:"results" ~n:64 p mem);
  }
