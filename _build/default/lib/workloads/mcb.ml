(* MCB: LLNL's Monte Carlo Benchmark [16] — a simplified heuristic
   transport equation. Each particle random-walks through segments until
   it is absorbed, escapes, or reaches census; the event loop's trip
   count and the per-event work are both thread-varying. Scatter events
   carry the expensive direction-resampling computation, making the
   scatter path the natural reconvergence point (Iteration Delay inside
   the event loop, plus trip-count divergence across particles). *)

let max_particles = 16384

let source =
  Printf.sprintf
    {|
global sigma_table: float[1024];
global tallies: float[%d];

kernel mcb(n_zones: int, max_segments: int) {
  var weight: float = 1.0;
  var zone: int = randint(n_zones);
  var tally: float = 0.0;
  var segment: int = 0;
  var alive: int = 1;
  predict L1;
  while (alive == 1) {
    L1:
    // sample the distance to the next collision
    let xi = rand();
    let sigma = sigma_table[zone %% 1024];
    let distance = 0.0 - log(xi + 0.000001) / (sigma + 0.1);
    tally = tally + weight * distance;
    let event = randint(10);
    if (event < 6) {
      // scatter: expensive direction and energy resampling
      let mu = rand() * 2.0 - 1.0;
      let phi = rand() * 6.2831853;
      let s0 = sin(phi) * mu;
      let c0 = cos(phi) * sqrt(1.0 - mu * mu + 0.0001);
      weight = weight * (0.85 + 0.1 * s0 * s0 + 0.05 * c0 * c0);
      zone = (zone + int(c0 * 3.0) + n_zones) %% n_zones;
    } else {
      if (event < 8) {
        // absorb
        alive = 0;
      } else {
        // census / escape bookkeeping (cheap)
        zone = (zone + 1) %% n_zones;
        weight = weight * 0.98;
      }
    }
    segment = segment + 1;
    if (segment >= max_segments) {
      alive = 0;
    }
    if (weight < 0.05) {
      alive = 0;
    }
  }
  tallies[tid()] = tally;
}
|}
    max_particles

let init (p : Ir.Types.program) mem =
  let rng = Support.Splitmix.of_ints 0x3c 0xb3b 4 in
  Spec.fill_global p mem ~name:"sigma_table" ~gen:(fun _ ->
      Ir.Types.F (0.5 +. Support.Splitmix.float rng))

let spec : Spec.t =
  {
    name = "mcb";
    description =
      "LLNL Monte Carlo Benchmark: particle event loop with divergent trip count and an \
       expensive scatter path (Iteration Delay)";
    source;
    args = [ Ir.Types.I 16; Ir.Types.I 40 ];
    coarsen = Some 4;
    init;
    tweak_config = (fun c -> { c with Simt.Config.n_warps = 2 });
    check = Spec.check_finite ~name:"tallies";
  }
