(* MeiyaMD5: GPU MD5 hash reversal (Wu et al. [29]). Each thread hashes a
   stream of candidate passwords and compares digests against the target.
   Candidate lengths differ, so the number of MD5 block rounds differs
   per thread: "a load-imbalanced, compute-heavy inner loop making it the
   ideal candidate for Loop Merge" (§5.4). The paper discovers this one
   automatically, so the source carries NO predict hint: the automatic
   detector must find the nested-loop shape by itself. *)

let max_candidates = 16384

let source =
  Printf.sprintf "\nglobal targets: int[64];\nglobal found: int[%d];\n" max_candidates
  ^ {|
kernel meiyamd5(max_len: int) {
  // one candidate password per (virtual) thread; most candidates are
  // short but some are long, so the round count is heavily imbalanced
  var length = 2 + randint(8);
  if (randint(5) == 0) {
    length = max_len / 2 + randint(max_len / 2);
  }
  var a: int = 1732584193;
  var b: int = 271733879;
  var c: int = 1732584194;
  var d: int = 271733878;
  var block: int = 0;
  // one MD5-like round block per 4 characters of the candidate
  while (block < length) {
    // compute-heavy mixing rounds (integer ALU)
    let m = block * 1103515245 + tid() * 12345;
    let f1 = (b % 65536) * (c % 65536) + (d % 65536);
    a = (a + f1 + m) % 2147483647;
    a = (a * 131 + b) % 2147483647;
    a = (a * 31 + (b % 4096) * (c % 4096)) % 2147483647;
    let f2 = (a % 65536) * (d % 65536) + (c % 65536);
    b = (b + f2 + m * 7) % 2147483647;
    b = (b * 131 + c) % 2147483647;
    b = (b * 37 + (c % 4096) * (d % 4096)) % 2147483647;
    let f3 = (a % 65536) + (b % 65536) * (d % 65536);
    c = (c + f3 + m * 13) % 2147483647;
    c = (c * 41 + (a % 4096) * (d % 4096)) % 2147483647;
    d = (d + (a % 65536) * (b % 65536) + m * 29) % 2147483647;
    d = (d * 43 + (a % 4096) * (b % 4096)) % 2147483647;
    block = block + 1;
  }
  let digest = (a + b + c + d) % 2147483647;
  var hit: int = 0;
  if (digest % 64 == targets[digest % 64] % 64) {
    hit = 1;
  }
  found[tid()] = hit;
}
|}

let init (p : Ir.Types.program) mem =
  let rng = Support.Splitmix.of_ints 0x77 0xd5d5 7 in
  Spec.fill_global p mem ~name:"targets" ~gen:(fun _ ->
      Ir.Types.I (Support.Splitmix.int rng 1000000))

let spec : Spec.t =
  {
    name = "meiyamd5";
    description =
      "MD5 hash reversal: load-imbalanced compute-heavy round loop per candidate password \
       (automatic Loop Merge discovery, no annotation)";
    source;
    args = [ Ir.Types.I 48 ];
    coarsen = Some 6;
    init;
    tweak_config = (fun c -> { c with Simt.Config.n_warps = 2 });
    check = Spec.check_finite ~name:"found";
  }
