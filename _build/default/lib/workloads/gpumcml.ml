(* GPU-MCML: Monte Carlo modelling of light transport in multi-layered
   turbid media (Alerstam et al. [2]). Photon packets hop between
   scattering events: each hop samples a step length, deposits part of
   the packet weight, and resamples the direction with the
   Henyey-Greenstein phase function (the sin/cos/log-heavy common code);
   packets die by absorption or Russian roulette after wildly different
   numbers of hops. The paper lists gpu-mcml among the applications with
   "highly variable inner loop trip counts" (§5.2). *)

let max_packets = 16384

let source =
  Printf.sprintf
    {|
global layer_mu: float[64];
global absorption: float[%d];

kernel gpumcml(n_layers: int, max_hops: int) {
  var weight: float = 1.0;
  var z: float = 0.0;
  var cos_theta: float = 1.0;
  var layer: int = 0;
  var deposited: float = 0.0;
  var hops: int = 0;
  var alive: int = 1;
  predict L1;
  while (alive == 1) {
    L1:
    // one scattering hop: step sampling + HG direction resampling
    let mu_t = layer_mu[layer %% 64] + 0.3;
    let step = 0.0 - log(rand() + 0.000001) / mu_t;
    z = z + step * cos_theta;
    let albedo = 0.9;
    deposited = deposited + weight * (1.0 - albedo);
    weight = weight * albedo;
    // Henyey-Greenstein sampling (g = 0.9)
    let g = 0.9;
    let frac = (1.0 - g * g) / (1.0 - g + 2.0 * g * rand());
    let ct = (1.0 + g * g - frac * frac) / (2.0 * g);
    let phi = 6.2831853 * rand();
    cos_theta = ct * cos_theta + sin(phi) * sqrt(fabs(1.0 - ct * ct)) * 0.3;
    if (cos_theta > 1.0) { cos_theta = 1.0; }
    if (cos_theta < 0.0 - 1.0) { cos_theta = 0.0 - 1.0; }
    // layer crossing
    if (z < 0.0) {
      alive = 0;  // escaped at the surface
    } else {
      layer = int(z * 4.0) %% n_layers;
    }
    // Russian roulette below the weight threshold
    if (weight < 0.1) {
      if (rand() < 0.7) {
        alive = 0;
      } else {
        weight = weight * 3.333;
      }
    }
    hops = hops + 1;
    if (hops >= max_hops) {
      alive = 0;
    }
  }
  absorption[tid()] = deposited;
}
|}
    max_packets

let init (p : Ir.Types.program) mem =
  let rng = Support.Splitmix.of_ints 0x11 0x3cf 9 in
  Spec.fill_global p mem ~name:"layer_mu" ~gen:(fun _ ->
      Ir.Types.F (0.5 +. Support.Splitmix.float rng *. 2.5))

let spec : Spec.t =
  {
    name = "gpu-mcml";
    description =
      "Photon transport in layered turbid media: scattering-hop loop with highly variable \
       per-packet trip counts (Loop Merge)";
    source;
    args = [ Ir.Types.I 8; Ir.Types.I 64 ];
    coarsen = Some 4;
    init;
    tweak_config = (fun c -> { c with Simt.Config.n_warps = 2 });
    check = Spec.check_finite ~name:"absorption";
  }
