type shape =
  | Convergent
  | Mild_branch
  | Imbalanced_branch
  | Divergent_loop
  | Memory_streaming
  | Common_call
  | Scatter_memory

type app = { id : int; shape : shape; source : string; args : Ir.Types.value list }

let shape_name = function
  | Convergent -> "convergent"
  | Mild_branch -> "mild-branch"
  | Imbalanced_branch -> "imbalanced-branch"
  | Divergent_loop -> "divergent-loop"
  | Memory_streaming -> "memory-streaming"
  | Common_call -> "common-call"
  | Scatter_memory -> "scatter-memory"

let config =
  {
    Simt.Config.default with
    Simt.Config.n_warps = 1;
    max_issues = 5_000_000;
  }

(* Every generated kernel writes one float per thread into [out] and runs
   a modest number of iterations so a corpus scan stays fast. *)

let convergent_source rng =
  let iters = 8 + Support.Splitmix.int rng 24 in
  let flops = 2 + Support.Splitmix.int rng 6 in
  let body =
    String.concat "\n      "
      (List.init flops (fun i ->
           Printf.sprintf "acc = acc * 0.99 + float(i + %d) * 0.01;" (i + 1)))
  in
  Printf.sprintf
    {|
global out: float[64];
kernel app() {
  var acc: float = float(tid()) * 0.1;
  for i in 0 .. %d {
      %s
  }
  out[tid()] = acc;
}
|}
    iters body

let memory_streaming_source rng =
  let iters = 4 + Support.Splitmix.int rng 12 in
  Printf.sprintf
    {|
global data: float[2048];
global out: float[64];
kernel app() {
  var acc: float = 0.0;
  for i in 0 .. %d {
    acc = acc + data[(tid() + i * nthreads()) %% 2048];
  }
  out[tid()] = acc;
}
|}
    iters

let mild_branch_source rng =
  let iters = 8 + Support.Splitmix.int rng 16 in
  let denom = 2 + Support.Splitmix.int rng 3 in
  let then_ops = 1 + Support.Splitmix.int rng 3 in
  let then_body =
    String.concat "\n        "
      (List.init then_ops (fun i -> Printf.sprintf "acc = acc + 0.0%d;" (i + 1)))
  in
  Printf.sprintf
    {|
global out: float[64];
kernel app() {
  var acc: float = 0.0;
  for i in 0 .. %d {
    acc = acc + 0.5;
    if (randint(%d) == 0) {
        %s
    }
  }
  out[tid()] = acc;
}
|}
    iters denom then_body

let imbalanced_branch_source rng =
  let iters = 8 + Support.Splitmix.int rng 16 in
  let denom = 3 + Support.Splitmix.int rng 9 in
  (* most conditional bodies are cheap; only a minority are heavy enough
     for the transformation to pay *)
  let heavy = Support.Splitmix.float rng < 0.35 in
  let inner =
    if heavy then 20 + Support.Splitmix.int rng 28 else 1 + Support.Splitmix.int rng 5
  in
  let inner_body =
    if heavy then "acc = acc + sin(acc * 0.3) * 0.2 + 0.01;" else "acc = acc + 0.01;"
  in
  let prolog_ops = Support.Splitmix.int rng 7 in
  let prolog =
    String.concat "\n    "
      (List.init prolog_ops (fun i -> Printf.sprintf "acc = acc + 0.00%d;" (i + 1)))
  in
  Printf.sprintf
    {|
global out: float[64];
kernel app() {
  var acc: float = 0.0;
  for i in 0 .. %d {
    %s
    if (randint(%d) == 0) {
      var j: int = 0;
      while (j < %d) {
        %s
        j = j + 1;
      }
    }
  }
  out[tid()] = acc;
}
|}
    iters prolog denom inner inner_body

let divergent_loop_source rng =
  let tasks = 4 + Support.Splitmix.int rng 8 in
  let heavy = Support.Splitmix.float rng < 0.4 in
  let max_trip =
    if heavy then 24 + Support.Splitmix.int rng 40 else 3 + Support.Splitmix.int rng 7
  in
  let body_ops = 1 + Support.Splitmix.int rng 3 in
  let body =
    String.concat "\n      "
      (List.init body_ops (fun i ->
           if heavy then Printf.sprintf "acc = acc + sin(acc * 0.%d1) * 0.1 + 0.01;" (i + 1)
           else Printf.sprintf "acc = acc + 0.0%d;" (i + 1)))
  in
  Printf.sprintf
    {|
global out: float[64];
kernel app() {
  var acc: float = 0.0;
  for t in 0 .. %d {
    acc = acc + 0.1;
    let trip = randint(%d);
    var j: int = 0;
    while (j < trip) {
      %s
      j = j + 1;
    }
  }
  out[tid()] = acc;
}
|}
    tasks max_trip body

let common_call_source rng =
  let iters = 4 + Support.Splitmix.int rng 8 in
  let body = 6 + Support.Splitmix.int rng 16 in
  Printf.sprintf
    {|
global out: float[64];
func work(x: float) -> float {
  var acc: float = x;
  var i: int = 0;
  while (i < %d) { acc = acc + sin(acc) * 0.3; i = i + 1; }
  return acc;
}
kernel app() {
  var acc: float = 0.0;
  for i in 0 .. %d {
    if (randint(2) == 0) {
      acc = acc + work(acc);
    } else {
      acc = acc + work(acc + 1.0) * 0.5;
    }
  }
  out[tid()] = acc;
}
|}
    body iters

let scatter_memory_source rng =
  let iters = 6 + Support.Splitmix.int rng 16 in
  Printf.sprintf
    {|
global data: float[2048];
global out: float[64];
kernel app() {
  var acc: float = 0.0;
  var idx: int = tid() * 37;
  for i in 0 .. %d {
    idx = (idx * 131 + randint(1024)) %% 2048;
    acc = acc + data[idx];
    if (randint(3) == 0) {
      acc = acc + data[(idx + 7) %% 2048];
    }
  }
  out[tid()] = acc;
}
|}
    iters

let pick_shape rng =
  (* Divergent workloads are a small fraction of GPU applications (§5.4,
     [24]); most of the corpus is convergent or streaming. *)
  let x = Support.Splitmix.float rng in
  if x < 0.49 then Convergent
  else if x < 0.74 then Memory_streaming
  else if x < 0.86 then Mild_branch
  else if x < 0.905 then Scatter_memory
  else if x < 0.945 then Common_call
  else if x < 0.97 then Imbalanced_branch
  else Divergent_loop

let generate ~seed ~count =
  List.init count (fun id ->
      let rng = Support.Splitmix.of_ints seed id 0x0c0de in
      let shape = pick_shape rng in
      let source =
        match shape with
        | Convergent -> convergent_source rng
        | Memory_streaming -> memory_streaming_source rng
        | Mild_branch -> mild_branch_source rng
        | Imbalanced_branch -> imbalanced_branch_source rng
        | Divergent_loop -> divergent_loop_source rng
        | Common_call -> common_call_source rng
        | Scatter_memory -> scatter_memory_source rng
      in
      { id; shape; source; args = [] })

let init (p : Ir.Types.program) mem =
  match Hashtbl.find_opt p.globals "data" with
  | None -> ()
  | Some (base, size) ->
    let rng = Support.Splitmix.of_ints 0xda7a 1 2 in
    for i = 0 to size - 1 do
      Simt.Memsys.write mem (base + i) (Ir.Types.F (Support.Splitmix.float rng))
    done
