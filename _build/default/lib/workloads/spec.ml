type t = {
  name : string;
  description : string;
  source : string;
  args : Ir.Types.value list;
  coarsen : int option;
  init : Ir.Types.program -> Simt.Memsys.t -> unit;
  tweak_config : Simt.Config.t -> Simt.Config.t;
  check : Ir.Types.program -> Simt.Memsys.t -> (unit, string) result;
}

let init_rng spec =
  let h = Hashtbl.hash spec.name in
  Support.Splitmix.of_ints h (h * 31) 7

let fill_global (p : Ir.Types.program) mem ~name ~gen =
  match Hashtbl.find_opt p.globals name with
  | None -> invalid_arg (Printf.sprintf "Spec.fill_global: unknown global %s" name)
  | Some (base, size) ->
    for i = 0 to size - 1 do
      Simt.Memsys.write mem (base + i) (gen i)
    done

let region (p : Ir.Types.program) mem ~name =
  match Hashtbl.find_opt p.globals name with
  | None -> Error (Printf.sprintf "unknown global %s" name)
  | Some (base, size) -> Ok (Simt.Memsys.dump mem ~base ~len:size)

let check_finite ~name p mem =
  match region p mem ~name with
  | Error e -> Error e
  | Ok cells ->
    let bad = ref None in
    Array.iteri
      (fun i v ->
        match v with
        | Ir.Types.F x when not (Float.is_finite x) && !bad = None -> bad := Some (i, x)
        | Ir.Types.F _ | Ir.Types.I _ -> ())
      cells;
    (match !bad with
    | Some (i, x) -> Error (Printf.sprintf "%s[%d] is not finite (%g)" name i x)
    | None -> Ok ())

let check_nonzero ~name ~n p mem =
  match region p mem ~name with
  | Error e -> Error e
  | Ok cells ->
    let nonzero =
      Array.fold_left
        (fun acc v ->
          match v with
          | Ir.Types.F x when x <> 0.0 -> acc + 1
          | Ir.Types.I x when x <> 0 -> acc + 1
          | Ir.Types.F _ | Ir.Types.I _ -> acc)
        0 cells
    in
    if nonzero >= n then Ok ()
    else Error (Printf.sprintf "%s has %d nonzero cells, expected >= %d" name nonzero n)
