(** See the header comment in [meiyamd5.ml] for what this workload models and
    which paper behaviours it reproduces. *)

(** The Table-2 registry entry for this benchmark. *)
val spec : Spec.t
