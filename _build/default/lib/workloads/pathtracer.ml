(* PathTracer: CUDA microbenchmark rendering spheres in a Cornell box
   (Table 2). Monte Carlo light transport with Russian-roulette path
   termination: each sample traces one or more bounces up to a maximum,
   so the bounce loop's trip count is geometrically distributed and
   divergent across lanes.

   Refilling an idle lane (generating the next camera ray) is cheap, so —
   unlike XSBench — PathTracer "executes fastest when all threads
   reconverge before executing" (§5.3): the Figure-9 sweep peaks at a full
   barrier (threshold = warp size). *)

let max_pixels = 8192

let source =
  Printf.sprintf
    {|
global spheres: float[256];
global image: float[%d];

kernel pathtracer(n_samples: int, max_bounces: int) {
  var radiance: float = 0.0;
  predict L1;
  for s in 0 .. n_samples {
    // prolog: camera ray generation (cheap refill)
    var dx: float = rand() * 2.0 - 1.0;
    var dy: float = rand() * 2.0 - 1.0;
    var throughput: float = 1.0;
    var alive: int = 1;
    var bounce: int = 0;
    while (alive == 1) {
      L1:
      // intersect the sphere set: the expensive common code
      var best_t: float = 1000000.0;
      var k: int = 0;
      while (k < 6) {
        let cx = spheres[k * 4];
        let cy = spheres[k * 4 + 1];
        let r = spheres[k * 4 + 2];
        let b = dx * cx + dy * cy;
        let c = cx * cx + cy * cy - r * r;
        let disc = b * b - c;
        if (disc > 0.0) {
          let t = 0.0 - b - sqrt(disc);
          if (t > 0.001) {
            best_t = fmin(best_t, t);
          }
        }
        k = k + 1;
      }
      // shade and bounce
      throughput = throughput * 0.75;
      dx = dx * 0.9 + (rand() - 0.5) * 0.2;
      dy = dy * 0.9 + (rand() - 0.5) * 0.2;
      bounce = bounce + 1;
      // Russian roulette path termination
      if (rand() < 0.3) {
        alive = 0;
      }
      if (bounce >= max_bounces) {
        alive = 0;
      }
    }
    radiance = radiance + throughput * (1.0 / float(bounce + 1));
  }
  image[tid()] = radiance / float(n_samples);
}
|}
    max_pixels

let init (p : Ir.Types.program) mem =
  let rng = Support.Splitmix.of_ints 0x97 0x7ace 3 in
  Spec.fill_global p mem ~name:"spheres" ~gen:(fun i ->
      if i mod 4 = 2 then Ir.Types.F (0.2 +. Support.Splitmix.float rng)
      else Ir.Types.F (Support.Splitmix.float rng *. 4.0 -. 2.0))

let spec : Spec.t =
  {
    name = "pathtracer";
    description =
      "Cornell-box sphere path tracer; Russian-roulette bounce loop (loop trip count \
       divergence), cheap per-sample refill";
    source;
    args = [ Ir.Types.I 12; Ir.Types.I 16 ];
    coarsen = None;
    init;
    tweak_config = (fun c -> { c with Simt.Config.n_warps = 2 });
    check =
      (fun p mem ->
        match Spec.check_finite ~name:"image" p mem with
        | Error _ as e -> e
        | Ok () -> Spec.check_nonzero ~name:"image" ~n:64 p mem);
  }
