(* OptiX-style ray traversal (Parker et al. [23]). NVIDIA's ray tracing
   engine traverses a bounding-volume hierarchy per ray: interior steps
   are cheap pointer chasing, leaf hits run the expensive
   ray-primitive intersection, and rays exit the walk at wildly different
   depths. §5.4 reports several OptiX traces among the automatically
   detected Loop Merge / Iteration Delay candidates, so like MeiyaMD5
   this source is unannotated and left to the detector. *)

let max_rays = 16384
let bvh_size = 4096

let source =
  Printf.sprintf
    {|
global bvh_nodes: int[%d];
global bvh_bounds: float[%d];
global hits: float[%d];

kernel optix_trace(max_depth: int) {
  // one ray per (virtual) thread
  var ox: float = rand() * 2.0 - 1.0;
  var dx: float = rand() * 2.0 - 1.0;
  var node: int = 1;
  var depth: int = 0;
  var nearest: float = 1000000.0;
  var walking: int = 1;
  while (walking == 1 && depth < max_depth) {
    let kind = bvh_nodes[node %% %d];
    if (kind == 0) {
      // leaf: intersect the primitive batch (expensive common code)
      var tri: int = 0;
      var best: float = 1000000.0;
      while (tri < 8) {
        let b0 = bvh_bounds[(node * 2 + tri) %% %d];
        let b1 = bvh_bounds[(node * 2 + tri + 1) %% %d];
        let oc = ox - b0;
        let bq = oc * dx;
        let cq = oc * oc - b1 * b1 * 0.25;
        let disc = bq * bq - cq;
        if (disc > 0.0) {
          best = fmin(best, fabs(0.0 - bq - sqrt(disc)));
        }
        tri = tri + 1;
      }
      if (best < 999999.0) {
        nearest = fmin(nearest, best);
        // continue traversal from a restart point
        node = (node * 7 + 3) %% %d;
        if (rand() < 0.4) {
          walking = 0;
        }
      } else {
        node = (node * 5 + 1) %% %d;
      }
    } else {
      // interior: descend to the child picked by the ray direction
      var child: int = node * 2;
      if (dx > 0.0) {
        child = child + 1;
      }
      node = child %% %d;
      if (node < 1) {
        node = 1;
      }
    }
    depth = depth + 1;
  }
  hits[tid()] = nearest;
}
|}
    bvh_size (bvh_size * 2) max_rays bvh_size (bvh_size * 2) (bvh_size * 2) bvh_size bvh_size
    bvh_size

let init (p : Ir.Types.program) mem =
  let rng = Support.Splitmix.of_ints 0x0f 0x0b1 8 in
  (* ~35% leaves. *)
  Spec.fill_global p mem ~name:"bvh_nodes" ~gen:(fun _ ->
      Ir.Types.I (if Support.Splitmix.float rng < 0.35 then 0 else 1));
  Spec.fill_global p mem ~name:"bvh_bounds" ~gen:(fun _ ->
      Ir.Types.F (Support.Splitmix.float rng *. 2.0 -. 1.0))

let spec : Spec.t =
  {
    name = "optix-trace";
    description =
      "OptiX-style BVH ray traversal: irregular walk with divergent depth and expensive leaf \
       intersections (automatically detected)";
    source;
    args = [ Ir.Types.I 64 ];
    coarsen = Some 4;
    init;
    tweak_config = (fun c -> { c with Simt.Config.n_warps = 2 });
    check = Spec.check_finite ~name:"hits";
  }
