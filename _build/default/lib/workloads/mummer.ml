(* MUMmer: parallel sequence alignment for genome sequencing (Schatz et
   al. [25]). Each thread streams a query against a suffix-tree-like
   index: starting from the root it repeatedly fetches the current node,
   compares the next query base, and either descends or terminates at a
   mismatch. Match depths are data-dependent, so warps serialize on the
   long-match stragglers; the node-visit body (pointer-chasing loads) is
   the common code. *)

let n_queries = 16384
let tree_size = 8192

let source =
  Printf.sprintf
    {|
global tree_child: int[%d];
global tree_base: int[%d];
global query_bases: int[%d];
global match_lengths: int[%d];

kernel mummer(query_len: int) {
  let query_off = tid() * 4;
  // queries enter the index at unrelated positions, decorrelating the
  // per-thread walks
  var node: int = 1 + randint(%d);
  var depth: int = 0;
  var matched: int = 1;
  predict L1;
  while (matched == 1 && depth < query_len) {
    L1:
    // visit one tree node: two dependent loads plus branching
    let base_expected = tree_base[node %% %d];
    let q = query_bases[(query_off + depth) %% %d];
    if (q == base_expected) {
      node = tree_child[(node * 4 + q) %% %d];
      depth = depth + 1;
      if (node == 0) {
        matched = 0;
      }
    } else {
      matched = 0;
    }
  }
  match_lengths[tid()] = depth;
}
|}
    tree_size tree_size n_queries n_queries (tree_size - 1) tree_size n_queries tree_size

let init (p : Ir.Types.program) mem =
  let rng = Support.Splitmix.of_ints 0x33 0x9a2 6 in
  (* A tree whose nodes usually continue (deep matches possible) but
     sometimes dead-end, plus skewed query bases: match depths end up
     geometric-ish with a long tail. *)
  Spec.fill_global p mem ~name:"tree_child" ~gen:(fun _ ->
      if Support.Splitmix.float rng < 0.06 then Ir.Types.I 0
      else Ir.Types.I (1 + Support.Splitmix.int rng (tree_size - 1)));
  (* Heavily skewed base distributions: the per-step match probability is
     ~0.9, giving geometric match depths with a long straggler tail. *)
  Spec.fill_global p mem ~name:"tree_base" ~gen:(fun _ ->
      let r = Support.Splitmix.float rng in
      Ir.Types.I (if r < 0.95 then 0 else 1 + Support.Splitmix.int rng 3));
  Spec.fill_global p mem ~name:"query_bases" ~gen:(fun _ ->
      let r = Support.Splitmix.float rng in
      Ir.Types.I (if r < 0.95 then 0 else 1 + Support.Splitmix.int rng 3))

let spec : Spec.t =
  {
    name = "mummer";
    description =
      "Sequence-alignment kernel: suffix-tree walk with data-dependent match depth per query \
       (divergent loop trip counts, memory bound)";
    source;
    args = [ Ir.Types.I 96 ];
    coarsen = Some 6;
    init;
    tweak_config = (fun c -> { c with Simt.Config.n_warps = 2 });
    check = Spec.check_finite ~name:"match_lengths";
  }
