lib/workloads/mcb.mli: Spec
