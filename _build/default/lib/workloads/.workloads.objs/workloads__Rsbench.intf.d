lib/workloads/rsbench.mli: Spec
