lib/workloads/gpumcml.ml: Ir Printf Simt Spec Support
