lib/workloads/mcgpu.ml: Ir Printf Simt Spec Support
