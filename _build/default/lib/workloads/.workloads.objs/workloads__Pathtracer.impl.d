lib/workloads/pathtracer.ml: Ir Printf Simt Spec Support
