lib/workloads/mcgpu.mli: Spec
