lib/workloads/xsbench.ml: Ir Printf Simt Spec Support
