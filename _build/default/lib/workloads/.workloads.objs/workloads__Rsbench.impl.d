lib/workloads/rsbench.ml: Ir Printf Simt Spec Support
