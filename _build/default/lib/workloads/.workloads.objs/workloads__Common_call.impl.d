lib/workloads/common_call.ml: Ir Printf Simt Spec
