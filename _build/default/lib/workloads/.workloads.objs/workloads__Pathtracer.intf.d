lib/workloads/pathtracer.mli: Spec
