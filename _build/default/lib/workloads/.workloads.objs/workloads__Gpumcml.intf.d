lib/workloads/gpumcml.mli: Spec
