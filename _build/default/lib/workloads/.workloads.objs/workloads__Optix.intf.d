lib/workloads/optix.mli: Spec
