lib/workloads/registry.ml: Common_call Gpumcml List Mcb Mcgpu Meiyamd5 Mummer Optix Pathtracer Rsbench Spec String Xsbench
