lib/workloads/optix.ml: Ir Printf Simt Spec Support
