lib/workloads/spec.mli: Ir Simt Support
