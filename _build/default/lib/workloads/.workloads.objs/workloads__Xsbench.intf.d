lib/workloads/xsbench.mli: Spec
