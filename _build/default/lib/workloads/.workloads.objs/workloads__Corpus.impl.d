lib/workloads/corpus.ml: Hashtbl Ir List Printf Simt String Support
