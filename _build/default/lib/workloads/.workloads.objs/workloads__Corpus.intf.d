lib/workloads/corpus.mli: Ir Simt
