lib/workloads/common_call.mli: Spec
