lib/workloads/mcb.ml: Ir Printf Simt Spec Support
