lib/workloads/meiyamd5.mli: Spec
