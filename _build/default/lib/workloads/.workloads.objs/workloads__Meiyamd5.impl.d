lib/workloads/meiyamd5.ml: Ir Printf Simt Spec Support
