lib/workloads/mummer.mli: Spec
