lib/workloads/spec.ml: Array Float Hashtbl Ir Printf Simt Support
