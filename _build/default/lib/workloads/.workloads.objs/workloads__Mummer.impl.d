lib/workloads/mummer.ml: Ir Printf Simt Spec Support
