(** Synthetic application corpus for the §5.4 automatic-detection study.

    The paper scans a database of 520 CUDA applications: 75 had SIMT
    efficiency below ~80 %, the detector found non-trivial opportunity in
    16, and 5 improved significantly. We cannot ship those proprietary
    applications, so this generator produces a corpus of synthetic kernels
    whose divergence characteristics follow the observation (also in
    prior work [24]) that divergent workloads are a small fraction of GPU
    applications: most generated kernels are convergent or mildly
    divergent; a minority exhibit the Loop-Merge / Iteration-Delay shapes
    the detector targets; a few of those have cost ratios that make the
    transformation profitable. *)

type shape =
  | Convergent  (** straight-line / uniform-loop arithmetic *)
  | Mild_branch  (** divergent branch with cheap sides *)
  | Imbalanced_branch  (** divergent branch, expensive taken side, in a loop *)
  | Divergent_loop  (** loop with thread-varying trip count inside a task loop *)
  | Memory_streaming  (** coalesced streaming, uniform control *)
  | Common_call  (** the Fig. 2(c) pattern: both branch sides call one
                     function — divergent, but invisible to the loop
                     detectors (the paper found it only in
                     microbenchmarks) *)
  | Scatter_memory  (** divergent gather/scatter: low efficiency that no
                        reconvergence point can fix *)

type app = { id : int; shape : shape; source : string; args : Ir.Types.value list }

val shape_name : shape -> string

(** [generate ~seed ~count] — deterministic corpus. Shape mix is roughly
    70 % convergent/streaming, 15 % mild, 15 % divergent patterns. *)
val generate : seed:int -> count:int -> app list

(** Launch configuration used for corpus measurements (small, fast). *)
val config : Simt.Config.t

(** Memory initialisation for corpus apps: fills the [data] table (when
    the app has one) with deterministic floats. *)
val init : Ir.Types.program -> Simt.Memsys.t -> unit
