(* MC-GPU: GPU-accelerated Monte Carlo x-ray transport for CT imaging
   (Badal & Badano [3]). Photons Woodcock-track through a voxelized
   anatomy: free flight to a tentative interaction site, a table lookup
   of the local material, then Compton/Rayleigh scattering or
   photoelectric absorption. Track lengths vary wildly between photons
   (dense bone vs. air paths), giving the divergent-trip event loop. *)

let max_photons = 16384

let source =
  Printf.sprintf
    {|
global mu_table: float[2048];
global voxels: int[4096];
global detector: float[%d];

kernel mcgpu(n_voxels: int, max_steps: int) {
  var x: float = rand() * 64.0;
  var dirc: float = rand() * 2.0 - 1.0;
  var energy: float = 0.06 + rand() * 0.06;
  var deposited: float = 0.0;
  var step: int = 0;
  var alive: int = 1;
  predict L1;
  while (alive == 1) {
    L1:
    // Woodcock tracking step + interaction sampling (common code)
    let voxel = voxels[(int(x * 17.0) + n_voxels) %% 4096];
    let mu = mu_table[(voxel * 37 + int(energy * 1000.0)) %% 2048];
    let flight = 0.0 - log(rand() + 0.000001) / (mu + 0.2);
    x = x + flight * dirc;
    let interaction = rand();
    if (interaction < 0.55) {
      // Compton scatter: resample direction and energy
      let mu_s = rand() * 2.0 - 1.0;
      let kn = 1.0 / (1.0 + energy * (1.0 - mu_s) * 1.9569);
      energy = energy * kn;
      dirc = dirc * mu_s + sqrt(1.0 - mu_s * mu_s + 0.0001) * (rand() - 0.5);
      deposited = deposited + energy * (1.0 - kn);
    } else {
      if (interaction < 0.7) {
        // photoelectric absorption: history ends
        deposited = deposited + energy;
        alive = 0;
      }
      // else: virtual interaction (Woodcock), keep flying
    }
    if (x < 0.0 || x > 64.0) {
      alive = 0;
    }
    step = step + 1;
    if (step >= max_steps) {
      alive = 0;
    }
    if (energy < 0.01) {
      alive = 0;
    }
  }
  detector[tid()] = deposited;
}
|}
    max_photons

let init (p : Ir.Types.program) mem =
  let rng = Support.Splitmix.of_ints 0xa1 0x6cf 5 in
  Spec.fill_global p mem ~name:"mu_table" ~gen:(fun _ ->
      Ir.Types.F (0.1 +. Support.Splitmix.float rng *. 2.0));
  Spec.fill_global p mem ~name:"voxels" ~gen:(fun _ ->
      Ir.Types.I (Support.Splitmix.int rng 5))

let spec : Spec.t =
  {
    name = "mc-gpu";
    description =
      "Monte Carlo x-ray transport for CT imaging: Woodcock-tracked photon histories with \
       divergent track lengths";
    source;
    args = [ Ir.Types.I 4096; Ir.Types.I 48 ];
    coarsen = Some 4;
    init;
    tweak_config = (fun c -> { c with Simt.Config.n_warps = 2 });
    check = Spec.check_finite ~name:"detector";
  }
