let all =
  [
    Rsbench.spec;
    Xsbench.spec;
    Mcb.spec;
    Pathtracer.spec;
    Mcgpu.spec;
    Mummer.spec;
    Meiyamd5.spec;
    Optix.spec;
    Gpumcml.spec;
    Common_call.spec;
  ]

let soft_barrier_subjects = [ Pathtracer.spec; Xsbench.spec ]
let auto_subjects = [ Meiyamd5.spec; Optix.spec; Mummer.spec ]

let find name = List.find (fun (s : Spec.t) -> String.equal s.name name) all
