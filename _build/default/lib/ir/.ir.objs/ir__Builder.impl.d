lib/ir/builder.ml: Fun Hashtbl List Printf Types
