lib/ir/verifier.ml: Format Hashtbl List Option Printf String Types
