lib/ir/verifier.mli: Format Types
