lib/ir/types.ml: Hashtbl List Option Printf
