lib/ir/printer.mli: Format Types
