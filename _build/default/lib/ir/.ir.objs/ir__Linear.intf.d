lib/ir/linear.mli: Format Types
