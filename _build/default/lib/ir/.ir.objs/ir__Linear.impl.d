lib/ir/linear.ml: Array Format Hashtbl List Printer String Types Verifier
