lib/ir/printer.ml: Format Hashtbl List Printf String Types
