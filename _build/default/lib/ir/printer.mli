(** Textual rendering of the IR, for dumps, diagnostics, and golden tests. *)

open Types

val pp_value : Format.formatter -> value -> unit
val pp_operand : Format.formatter -> operand -> unit
val binop_name : binop -> string
val unop_name : unop -> string
val pp_inst : Format.formatter -> inst -> unit
val pp_term : Format.formatter -> terminator -> unit

(** Renders a function with blocks in id order, annotating labels and
    Predict hints. *)
val pp_func : Format.formatter -> func -> unit

(** Renders the whole program: globals, then functions (kernel first). *)
val pp_program : Format.formatter -> program -> unit

val func_to_string : func -> string
val program_to_string : program -> string
