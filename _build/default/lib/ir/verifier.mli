(** Structural well-formedness checks for IR programs.

    Run after lowering and after each pass in debug pipelines. Checks are
    purely structural; semantic properties (e.g. barrier deconfliction) are
    the synchronization passes' responsibility and are validated by the
    simulator's deadlock detector and the test suite. *)

open Types

type error = {
  where : string; (* function name, or "program" *)
  message : string;
}

val pp_error : Format.formatter -> error -> unit

(** [check_program p] returns all structural errors found:
    - missing or unknown kernel entry;
    - branch targets that do not exist;
    - registers outside the function's allocated range;
    - calls to unknown functions or with wrong arity;
    - barrier ids outside the program's allocated range;
    - [Ret] in the kernel or [Exit] in a device function;
    - hints whose labels or region blocks do not exist;
    - unreachable blocks (reported, as passes should not create them). *)
val check_program : program -> error list

(** [check_program_exn p] raises [Failure] with a rendered report if any
    error is found. *)
val check_program_exn : program -> unit
