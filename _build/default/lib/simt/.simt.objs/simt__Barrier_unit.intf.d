lib/simt/barrier_unit.mli: Format Support
