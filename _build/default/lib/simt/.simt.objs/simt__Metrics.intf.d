lib/simt/metrics.mli: Format
