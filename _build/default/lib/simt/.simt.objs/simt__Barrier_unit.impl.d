lib/simt/barrier_unit.ml: Array Format List Option Printf Support
