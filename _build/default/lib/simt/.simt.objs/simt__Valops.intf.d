lib/simt/valops.mli: Ir
