lib/simt/valops.ml: Float Format Ir Printf
