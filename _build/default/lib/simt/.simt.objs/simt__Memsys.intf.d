lib/simt/memsys.mli: Config Ir
