lib/simt/metrics.ml: Format
