lib/simt/config.mli:
