lib/simt/memsys.ml: Array Config Ir List Option Printf
