lib/simt/interp.ml: Analysis Array Barrier_unit Buffer Config Format Ir List Memsys Metrics Option Printf Support Valops
