lib/simt/config.ml: Printf Support
