lib/simt/interp.mli: Analysis Config Ir Memsys Metrics
