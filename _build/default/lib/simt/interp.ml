module Mask = Support.Mask
module L = Ir.Linear
module T = Ir.Types

exception Deadlock of string
exception Runtime_error of string
exception Runaway of string

type result = { metrics : Metrics.t; memory : Memsys.t; profile : Analysis.Profile.t }

type issue_event = {
  at_cycle : int;
  warp : int;
  pc : int;
  active : int list;
  where : L.location;
}

type thread_status = Ready | Blocked | Done

type frame = { regs : T.value array; ret_pc : int; ret_reg : T.reg option }

type thread = {
  lane : int;
  tid : int;
  rng : Support.Splitmix.t;
  mutable frames : frame list; (* head = current frame *)
  mutable pc : int;
  mutable status : thread_status;
  mutable ready_at : int;
  (* Convergence-group identity. Threads co-issue only when they share a
     group; groups split whenever members head to different places
     (divergent branch outcomes, barrier blocking) and merge ONLY when a
     convergence barrier fires. This models Volta behaviour faithfully:
     diverged threads do not spontaneously reconverge just because their
     PCs happen to coincide — reconvergence requires a barrier, which is
     exactly why compilers insert them. *)
  mutable group : int;
}

type warp = {
  wid : int;
  threads : thread array;
  barriers : Barrier_unit.t;
  mutable rr_pc : int; (* last pc issued, for the Round_robin policy *)
}

let frame_of th =
  match th.frames with
  | f :: _ -> f
  | [] -> raise (Runtime_error (Printf.sprintf "thread %d has no frame" th.tid))

let eval th = function T.Reg r -> (frame_of th).regs.(r) | T.Imm v -> v

let set_reg th r v = (frame_of th).regs.(r) <- v

let run ?tracer (config : Config.t) (lprog : L.t) ~args ~init_memory =
  Config.validate config;
  if List.length args <> lprog.kernel.arity then
    invalid_arg
      (Printf.sprintf "Interp.run: kernel %s expects %d args, got %d" lprog.kernel.fname
         lprog.kernel.arity (List.length args));
  let lat = config.latencies in
  let memory = Memsys.create config.memory ~size:(max lprog.mem_size 1) in
  List.iter
    (fun (base, size) ->
      for addr = base to base + size - 1 do
        Memsys.write memory addr (T.F 0.0)
      done)
    lprog.float_regions;
  init_memory memory;
  let metrics = Metrics.create ~warp_size:config.warp_size in
  let profile = Analysis.Profile.empty () in
  (* Precompute which pcs start a basic block, for profile recording. *)
  let n_code = Array.length lprog.code in
  let is_block_entry =
    Array.init n_code (fun pc ->
        pc = 0
        || lprog.locs.(pc).L.in_func <> lprog.locs.(pc - 1).L.in_func
        || lprog.locs.(pc).L.in_block <> lprog.locs.(pc - 1).L.in_block)
  in
  let make_thread wid lane =
    let regs = Array.make (max lprog.kernel.n_regs 1) (T.I 0) in
    List.iteri (fun i v -> regs.(i) <- v) args;
    {
      lane;
      tid = (wid * config.warp_size) + lane;
      rng = Support.Splitmix.of_ints config.seed wid lane;
      frames = [ { regs; ret_pc = -1; ret_reg = None } ];
      pc = lprog.kernel.entry_pc;
      status = Ready;
      ready_at = 0;
      group = 0;
    }
  in
  let group_counter = ref 0 in
  let fresh_group () =
    incr group_counter;
    !group_counter
  in
  (* Threads that moved together may have landed in different places;
     re-partition them into fresh groups by destination pc. *)
  let regroup threads =
    let by_pc = Hashtbl.create 4 in
    List.iter
      (fun th ->
        match th.status with
        | Ready | Blocked -> (
          match Hashtbl.find_opt by_pc th.pc with
          | Some gid -> th.group <- gid
          | None ->
            let gid = fresh_group () in
            Hashtbl.replace by_pc th.pc gid;
            th.group <- gid)
        | Done -> ())
      threads
  in
  let warps =
    Array.init config.n_warps (fun wid ->
        {
          wid;
          threads = Array.init config.warp_size (make_thread wid);
          barriers =
            Barrier_unit.create ~n_barriers:lprog.n_barriers ~warp_size:config.warp_size;
          rr_pc = -1;
        })
  in
  let n_threads = config.n_warps * config.warp_size in
  let cycle = ref 0 in
  let last_warp = ref (config.n_warps - 1) in
  let context w th =
    Printf.sprintf "warp %d lane %d tid %d pc %d" w.wid th.lane th.tid th.pc
  in
  (* Release every lane the barrier fire condition allows. *)
  let release_fired w b =
    match Barrier_unit.fired w.barriers b with
    | None -> ()
    | Some released ->
      metrics.barrier_fires <- metrics.barrier_fires + 1;
      let threads = ref [] in
      Mask.iter
        (fun lane ->
          let th = w.threads.(lane) in
          th.status <- Ready;
          th.pc <- th.pc + 1;
          th.ready_at <- !cycle + lat.barrier;
          threads := th :: !threads)
        released;
      (* The fire is the one place where diverged threads reconverge:
         everyone released at the same point joins one fresh group. *)
      regroup !threads
  in
  let finish_thread w th =
    th.status <- Done;
    metrics.threads_finished <- metrics.threads_finished + 1;
    let affected = Barrier_unit.withdraw_lane w.barriers th.lane in
    List.iter (release_fired w) affected
  in
  (* Execute one issued group: all [lanes] of [w] sit at [pc]. *)
  let execute w pc lanes =
    let threads = List.map (fun lane -> w.threads.(lane)) lanes in
    let advance_all latency =
      List.iter
        (fun th ->
          th.pc <- pc + 1;
          th.ready_at <- !cycle + latency)
        threads
    in
    match lprog.code.(pc) with
    | L.Op op -> (
      match op with
      | T.Bin (bop, d, a, b) ->
        List.iter (fun th -> set_reg th d (Valops.binop bop (eval th a) (eval th b))) threads;
        advance_all (if T.is_float_op bop then lat.float_op else lat.alu)
      | T.Un (uop, d, a) ->
        List.iter (fun th -> set_reg th d (Valops.unop uop (eval th a))) threads;
        advance_all (if T.is_special_unop uop then lat.special else lat.alu)
      | T.Mov (d, a) ->
        List.iter (fun th -> set_reg th d (eval th a)) threads;
        advance_all lat.alu
      | T.Load (d, a) ->
        metrics.mem_accesses <- metrics.mem_accesses + 1;
        let addrs = List.map (fun th -> Valops.to_int (eval th a)) threads in
        let cost = Memsys.access_cost memory ~addrs in
        List.iter2 (fun th addr -> set_reg th d (Memsys.read memory addr)) threads addrs;
        advance_all cost
      | T.Store (a, v) ->
        metrics.mem_accesses <- metrics.mem_accesses + 1;
        let addrs = List.map (fun th -> Valops.to_int (eval th a)) threads in
        let cost = Memsys.access_cost memory ~addrs in
        (* Lane order resolves write conflicts: the highest lane wins,
           matching CUDA's unspecified-but-single-winner semantics
           deterministically. *)
        List.iter2 (fun th addr -> Memsys.write memory addr (eval th v)) threads addrs;
        advance_all cost
      | T.Tid d ->
        List.iter (fun th -> set_reg th d (T.I th.tid)) threads;
        advance_all lat.alu
      | T.Lane d ->
        List.iter (fun th -> set_reg th d (T.I th.lane)) threads;
        advance_all lat.alu
      | T.Nthreads d ->
        List.iter (fun th -> set_reg th d (T.I n_threads)) threads;
        advance_all lat.alu
      | T.Rand d ->
        List.iter (fun th -> set_reg th d (T.F (Support.Splitmix.float th.rng))) threads;
        advance_all lat.rand
      | T.Randint (d, n) ->
        List.iter
          (fun th ->
            let bound = Valops.to_int (eval th n) in
            if bound <= 0 then
              raise
                (Runtime_error
                   (Printf.sprintf "randint bound %d not positive (%s)" bound (context w th)));
            set_reg th d (T.I (Support.Splitmix.int th.rng bound)))
          threads;
        advance_all lat.rand
      | T.Join b | T.Rejoin b ->
        metrics.barrier_joins <- metrics.barrier_joins + 1;
        List.iter (fun th -> Barrier_unit.join w.barriers b th.lane) threads;
        advance_all lat.barrier
      | T.Cancel b ->
        metrics.barrier_cancels <- metrics.barrier_cancels + 1;
        List.iter (fun th -> Barrier_unit.cancel w.barriers b th.lane) threads;
        advance_all lat.barrier;
        release_fired w b
      | T.Wait b ->
        metrics.barrier_waits <- metrics.barrier_waits + 1;
        List.iter
          (fun th ->
            if Barrier_unit.is_participant w.barriers b th.lane then begin
              th.status <- Blocked;
              Barrier_unit.block w.barriers b th.lane ~threshold:None
            end
            else begin
              th.pc <- pc + 1;
              th.ready_at <- !cycle + lat.barrier
            end)
          threads;
        (* blockers and pass-through threads part ways *)
        regroup threads;
        release_fired w b
      | T.Wait_threshold (b, k) ->
        metrics.barrier_waits <- metrics.barrier_waits + 1;
        List.iter
          (fun th ->
            if Barrier_unit.is_participant w.barriers b th.lane then begin
              th.status <- Blocked;
              Barrier_unit.block w.barriers b th.lane ~threshold:(Some k)
            end
            else begin
              th.pc <- pc + 1;
              th.ready_at <- !cycle + lat.barrier
            end)
          threads;
        regroup threads;
        release_fired w b
      | T.Arrived (d, b) ->
        List.iter (fun th -> set_reg th d (T.I (Barrier_unit.arrived w.barriers b))) threads;
        advance_all lat.barrier
      | T.Call _ ->
        (* The linearizer turns calls into [Lcall]. *)
        raise (Runtime_error (Printf.sprintf "raw call at pc %d" pc)))
    | L.Lcall { entry; n_regs; args = call_args; ret; callee = _ } ->
      List.iter
        (fun th ->
          let values = List.map (eval th) call_args in
          let regs = Array.make (max n_regs 1) (T.I 0) in
          List.iteri (fun i v -> regs.(i) <- v) values;
          th.frames <- { regs; ret_pc = pc + 1; ret_reg = ret } :: th.frames;
          th.pc <- entry;
          th.ready_at <- !cycle + lat.call)
        threads
    | L.Lret op ->
      List.iter
        (fun th ->
          let value = Option.map (eval th) op in
          match th.frames with
          | { ret_pc; ret_reg; _ } :: (_ :: _ as rest) ->
            th.frames <- rest;
            (match (ret_reg, value) with
            | Some d, Some v -> set_reg th d v
            | Some d, None -> set_reg th d (T.I 0)
            | None, (Some _ | None) -> ());
            th.pc <- ret_pc;
            th.ready_at <- !cycle + lat.call
          | _ -> raise (Runtime_error (Printf.sprintf "ret outside call (%s)" (context w th))))
        threads;
      (* returns to different call sites split the group *)
      regroup threads
    | L.Lbr { cond; target } ->
      List.iter
        (fun th ->
          th.pc <- (if Valops.truthy (eval th cond) then target else pc + 1);
          th.ready_at <- !cycle + lat.branch)
        threads;
      (* a divergent outcome splits the convergence group *)
      regroup threads
    | L.Ljump target ->
      List.iter
        (fun th ->
          th.pc <- target;
          th.ready_at <- !cycle + lat.branch)
        threads
    | L.Lexit -> List.iter (fun th -> finish_thread w th) threads
  in
  (* Pick the next (warp, pc, lanes) to issue, rotating over warps.
     Candidates are convergence groups (threads sharing a group id), not
     mere PC coincidences. *)
  let select_group w =
    let groups = Hashtbl.create 8 in
    let gids = ref [] in
    Array.iter
      (fun th ->
        if th.status = Ready && th.ready_at <= !cycle then begin
          if not (Hashtbl.mem groups th.group) then gids := th.group :: !gids;
          Hashtbl.replace groups th.group
            (th.lane :: Option.value (Hashtbl.find_opt groups th.group) ~default:[])
        end)
      w.threads;
    match !gids with
    | [] -> None
    | _ ->
      let candidates =
        List.map
          (fun gid ->
            let lanes = List.rev (Hashtbl.find groups gid) in
            let pc = w.threads.(List.hd lanes).pc in
            (pc, lanes))
          (List.sort compare !gids)
      in
      let candidates = List.sort compare candidates in
      let chosen =
        match config.policy with
        | Config.Lowest_pc -> List.hd candidates
        | Config.Most_threads ->
          List.fold_left
            (fun (bpc, blanes) (pc, lanes) ->
              if List.length lanes > List.length blanes then (pc, lanes) else (bpc, blanes))
            (List.hd candidates) (List.tl candidates)
        | Config.Round_robin -> (
          match List.find_opt (fun (pc, _) -> pc > w.rr_pc) candidates with
          | Some c -> c
          | None -> List.hd candidates)
      in
      w.rr_pc <- fst chosen;
      Some chosen
  in
  let find_issue () =
    let found = ref None in
    let i = ref 1 in
    while !found = None && !i <= config.n_warps do
      let wid = (!last_warp + !i) mod config.n_warps in
      (match select_group warps.(wid) with
      | Some (pc, lanes) ->
        last_warp := wid;
        found := Some (warps.(wid), pc, lanes)
      | None -> ());
      incr i
    done;
    !found
  in
  let yield_or_deadlock () =
    (* Every live thread is blocked. Either emulate Volta's forward
       progress by forcing the lowest blocked thread out of its barrier,
       or report the deadlock that conflicting barriers cause. *)
    let victim = ref None in
    Array.iter
      (fun w ->
        Array.iter
          (fun th -> if !victim = None && th.status = Blocked then victim := Some (w, th))
          w.threads)
      warps;
    match !victim with
    | None -> raise (Deadlock "no blocked thread found in stalled state")
    | Some (w, th) ->
      if config.yield_on_stall then begin
        match Barrier_unit.blocked_anywhere w.barriers th.lane with
        | Some b ->
          metrics.yields <- metrics.yields + 1;
          Barrier_unit.cancel w.barriers b th.lane;
          th.status <- Ready;
          th.pc <- th.pc + 1;
          th.ready_at <- !cycle + lat.barrier;
          th.group <- fresh_group ();
          release_fired w b
        | None -> raise (Deadlock "blocked thread not waiting on any barrier")
      end
      else begin
        let buf = Buffer.create 256 in
        Array.iter
          (fun w ->
            Buffer.add_string buf (Printf.sprintf "warp %d:\n" w.wid);
            Buffer.add_string buf (Format.asprintf "%a" Barrier_unit.pp w.barriers);
            Array.iter
              (fun th ->
                if th.status = Blocked then
                  Buffer.add_string buf (Printf.sprintf "  lane %d blocked at pc %d\n" th.lane th.pc))
              w.threads)
          warps;
        raise
          (Deadlock
             (Printf.sprintf
                "all live threads blocked on convergence barriers (conflicting barriers?)\n%s"
                (Buffer.contents buf)))
      end
  in
  let running = ref true in
  while !running do
    match find_issue () with
    | Some (w, pc, lanes) ->
      metrics.issues <- metrics.issues + 1;
      if metrics.issues > config.max_issues then
        raise (Runaway (Printf.sprintf "issue budget %d exhausted" config.max_issues));
      metrics.active_sum <- metrics.active_sum + List.length lanes;
      (match tracer with
      | Some observe ->
        observe { at_cycle = !cycle; warp = w.wid; pc; active = lanes; where = lprog.locs.(pc) }
      | None -> ());
      if is_block_entry.(pc) then begin
        let loc = lprog.locs.(pc) in
        Analysis.Profile.record profile ~func:loc.L.in_func ~block:loc.L.in_block
          ~count:(List.length lanes)
      end;
      (try execute w pc lanes with
      | Valops.Type_error msg ->
        raise (Runtime_error (Printf.sprintf "type error at pc %d (warp %d): %s" pc w.wid msg))
      | Division_by_zero ->
        raise (Runtime_error (Printf.sprintf "division by zero at pc %d (warp %d)" pc w.wid))
      | Invalid_argument msg ->
        raise (Runtime_error (Printf.sprintf "fault at pc %d (warp %d): %s" pc w.wid msg)));
      incr cycle
    | None ->
      (* Nothing issuable this cycle: advance time to the next ready
         thread, finish, or handle an all-blocked stall. *)
      let next_ready = ref max_int in
      let any_live = ref false in
      Array.iter
        (fun w ->
          Array.iter
            (fun th ->
              match th.status with
              | Ready ->
                any_live := true;
                if th.ready_at < !next_ready then next_ready := th.ready_at
              | Blocked -> any_live := true
              | Done -> ())
            w.threads)
        warps;
      if not !any_live then running := false
      else if !next_ready < max_int then cycle := max !next_ready (!cycle + 1)
      else yield_or_deadlock ()
  done;
  metrics.cycles <- !cycle;
  { metrics; memory; profile }
