module Mask = Support.Mask
module L = Ir.Linear
module T = Ir.Types

exception Deadlock of string
exception Runtime_error of string
exception Runaway of string

type result = { metrics : Metrics.t; memory : Memsys.t; profile : Analysis.Profile.t }

type issue_event = {
  at_cycle : int;
  warp : int;
  pc : int;
  active : int list;
  where : L.location;
}

type thread_status = Ready | Blocked | Done

type frame = { regs : T.value array; ret_pc : int; ret_reg : T.reg option }

type thread = {
  lane : int;
  tid : int;
  rng : Support.Splitmix.t;
  mutable frames : frame list; (* head = current frame *)
  mutable pc : int;
  mutable status : thread_status;
  mutable ready_at : int;
  (* Convergence-group identity: the index of this thread's group slot in
     its warp's [gmask] table. Threads co-issue only when they share a
     group; groups split whenever members head to different places
     (divergent branch outcomes, barrier blocking) and merge ONLY when a
     convergence barrier fires. This models Volta behaviour faithfully:
     diverged threads do not spontaneously reconverge just because their
     PCs happen to coincide — reconvergence requires a barrier, which is
     exactly why compilers insert them. *)
  mutable group : int;
}

type warp = {
  wid : int;
  threads : thread array;
  barriers : Barrier_unit.t;
  mutable rr_pc : int; (* last pc issued by the Round_robin policy *)
  (* Live convergence groups as a packed table of lane bitmasks: slots
     [0, n_groups) hold disjoint non-empty masks covering every non-Done
     thread. Maintained incrementally on split/merge, so the issue path
     never rebuilds the partition. Invariant: all members of a group
     share the same pc, status and ready_at — they always transition
     together, and any divergent transition (branch, return, barrier
     block) immediately re-partitions the group by destination. *)
  gmask : Mask.t array;
  mutable n_groups : int;
  (* Cached min ready_at over Ready groups (max_int if none), so an idle
     cycle advances time in O(warps) instead of O(warps × lanes).
     [ready_stale] marks the cache dirty after any group mutation. *)
  mutable ready_min : int;
  mutable ready_stale : bool;
}

let frame_of th =
  match th.frames with
  | f :: _ -> f
  | [] -> raise (Runtime_error (Printf.sprintf "thread %d has no frame" th.tid))

let eval th = function T.Reg r -> (frame_of th).regs.(r) | T.Imm v -> v

let set_reg th r v = (frame_of th).regs.(r) <- v

let run ?tracer (config : Config.t) (lprog : L.t) ~args ~init_memory =
  Config.validate config;
  if List.length args <> lprog.kernel.arity then
    invalid_arg
      (Printf.sprintf "Interp.run: kernel %s expects %d args, got %d" lprog.kernel.fname
         lprog.kernel.arity (List.length args));
  let lat = config.latencies in
  let memory = Memsys.create config.memory ~size:(max lprog.mem_size 1) in
  List.iter
    (fun (base, size) ->
      for addr = base to base + size - 1 do
        Memsys.write memory addr (T.F 0.0)
      done)
    lprog.float_regions;
  init_memory memory;
  let metrics = Metrics.create ~warp_size:config.warp_size in
  let profile = Analysis.Profile.empty () in
  (* Precompute which pcs start a basic block, for profile recording. *)
  let n_code = Array.length lprog.code in
  let is_block_entry =
    Array.init n_code (fun pc ->
        pc = 0
        || lprog.locs.(pc).L.in_func <> lprog.locs.(pc - 1).L.in_func
        || lprog.locs.(pc).L.in_block <> lprog.locs.(pc - 1).L.in_block)
  in
  let make_thread wid lane =
    let regs = Array.make (max lprog.kernel.n_regs 1) (T.I 0) in
    List.iteri (fun i v -> regs.(i) <- v) args;
    {
      lane;
      tid = (wid * config.warp_size) + lane;
      rng = Support.Splitmix.of_ints config.seed wid lane;
      frames = [ { regs; ret_pc = -1; ret_reg = None } ];
      pc = lprog.kernel.entry_pc;
      status = Ready;
      ready_at = 0;
      group = 0;
    }
  in
  let warps =
    Array.init config.n_warps (fun wid ->
        let w =
          {
            wid;
            threads = Array.init config.warp_size (make_thread wid);
            barriers =
              Barrier_unit.create ~n_barriers:lprog.n_barriers ~warp_size:config.warp_size;
            rr_pc = -1;
            gmask = Array.make config.warp_size Mask.empty;
            n_groups = 1;
            ready_min = 0;
            ready_stale = true;
          }
        in
        w.gmask.(0) <- Mask.full config.warp_size;
        w)
  in
  let n_threads = config.n_warps * config.warp_size in
  let cycle = ref 0 in
  let last_warp = ref (config.n_warps - 1) in
  (* Per-run scratch: simulation within one [run] is single-threaded, so
     one set of buffers serves every warp without re-allocation. *)
  let addr_buf = Array.make config.warp_size 0 in
  let part_pc = Array.make config.warp_size 0 in
  let part_slot = Array.make config.warp_size 0 in
  let cand_pc = Array.make config.warp_size 0 in
  let cand_mask = Array.make config.warp_size Mask.empty in
  let context w th =
    Printf.sprintf "warp %d lane %d tid %d pc %d" w.wid th.lane th.tid th.pc
  in
  (* ---- incremental group-table maintenance ---- *)
  let detach w th =
    let s = th.group in
    let m = Mask.remove th.lane w.gmask.(s) in
    w.gmask.(s) <- m;
    if Mask.is_empty m then begin
      (* free the slot by moving the last one down *)
      let last = w.n_groups - 1 in
      if s <> last then begin
        w.gmask.(s) <- w.gmask.(last);
        Mask.iter (fun lane -> w.threads.(lane).group <- s) w.gmask.(s)
      end;
      w.n_groups <- last
    end
  in
  (* Threads that moved together may have landed in different places;
     re-partition them into fresh groups by destination pc. *)
  let regroup w moved =
    w.ready_stale <- true;
    Mask.iter
      (fun lane ->
        let th = w.threads.(lane) in
        if th.status <> Done then detach w th)
      moved;
    let k = ref 0 in
    Mask.iter
      (fun lane ->
        let th = w.threads.(lane) in
        if th.status <> Done then begin
          let j = ref 0 in
          while !j < !k && part_pc.(!j) <> th.pc do incr j done;
          if !j = !k then begin
            part_pc.(!k) <- th.pc;
            part_slot.(!k) <- w.n_groups;
            w.gmask.(w.n_groups) <- Mask.empty;
            w.n_groups <- w.n_groups + 1;
            incr k
          end;
          let s = part_slot.(!j) in
          w.gmask.(s) <- Mask.add lane w.gmask.(s);
          th.group <- s
        end)
      moved
  in
  (* Release every lane the barrier fire condition allows. *)
  let release_fired w b =
    match Barrier_unit.fired w.barriers b with
    | None -> ()
    | Some released ->
      metrics.barrier_fires <- metrics.barrier_fires + 1;
      Mask.iter
        (fun lane ->
          let th = w.threads.(lane) in
          th.status <- Ready;
          th.pc <- th.pc + 1;
          th.ready_at <- !cycle + lat.barrier)
        released;
      (* The fire is the one place where diverged threads reconverge:
         everyone released at the same point joins one fresh group. *)
      regroup w released
  in
  let finish_thread w th =
    th.status <- Done;
    w.ready_stale <- true;
    detach w th;
    metrics.threads_finished <- metrics.threads_finished + 1;
    let affected = Barrier_unit.withdraw_lane w.barriers th.lane in
    List.iter (release_fired w) affected
  in
  (* Execute one issued group: all lanes of [active] sit at [pc]. *)
  let execute w pc active =
    w.ready_stale <- true;
    let each f = Mask.iter (fun lane -> f w.threads.(lane)) active in
    let advance_all latency =
      each (fun th ->
          th.pc <- pc + 1;
          th.ready_at <- !cycle + latency)
    in
    match lprog.code.(pc) with
    | L.Op op -> (
      match op with
      | T.Bin (bop, d, a, b) ->
        each (fun th -> set_reg th d (Valops.binop bop (eval th a) (eval th b)));
        advance_all (if T.is_float_op bop then lat.float_op else lat.alu)
      | T.Un (uop, d, a) ->
        each (fun th -> set_reg th d (Valops.unop uop (eval th a)));
        advance_all (if T.is_special_unop uop then lat.special else lat.alu)
      | T.Mov (d, a) ->
        each (fun th -> set_reg th d (eval th a));
        advance_all lat.alu
      | T.Load (d, a) ->
        metrics.mem_accesses <- metrics.mem_accesses + 1;
        let n = ref 0 in
        each (fun th ->
            addr_buf.(!n) <- Valops.to_int (eval th a);
            incr n);
        let cost = Memsys.access_costn memory ~addrs:addr_buf ~n:!n in
        let i = ref 0 in
        each (fun th ->
            set_reg th d (Memsys.read memory addr_buf.(!i));
            incr i);
        advance_all cost
      | T.Store (a, v) ->
        metrics.mem_accesses <- metrics.mem_accesses + 1;
        let n = ref 0 in
        each (fun th ->
            addr_buf.(!n) <- Valops.to_int (eval th a);
            incr n);
        let cost = Memsys.access_costn memory ~addrs:addr_buf ~n:!n in
        (* Lane order resolves write conflicts: the highest lane wins,
           matching CUDA's unspecified-but-single-winner semantics
           deterministically. *)
        let i = ref 0 in
        each (fun th ->
            Memsys.write memory addr_buf.(!i) (eval th v);
            incr i);
        advance_all cost
      | T.Tid d ->
        each (fun th -> set_reg th d (T.I th.tid));
        advance_all lat.alu
      | T.Lane d ->
        each (fun th -> set_reg th d (T.I th.lane));
        advance_all lat.alu
      | T.Nthreads d ->
        each (fun th -> set_reg th d (T.I n_threads));
        advance_all lat.alu
      | T.Rand d ->
        each (fun th -> set_reg th d (T.F (Support.Splitmix.float th.rng)));
        advance_all lat.rand
      | T.Randint (d, n) ->
        each (fun th ->
            let bound = Valops.to_int (eval th n) in
            if bound <= 0 then
              raise
                (Runtime_error
                   (Printf.sprintf "randint bound %d not positive (%s)" bound (context w th)));
            set_reg th d (T.I (Support.Splitmix.int th.rng bound)));
        advance_all lat.rand
      | T.Join b | T.Rejoin b ->
        metrics.barrier_joins <- metrics.barrier_joins + 1;
        each (fun th -> Barrier_unit.join w.barriers b th.lane);
        advance_all lat.barrier
      | T.Cancel b ->
        metrics.barrier_cancels <- metrics.barrier_cancels + 1;
        each (fun th -> Barrier_unit.cancel w.barriers b th.lane);
        advance_all lat.barrier;
        release_fired w b
      | T.Wait b ->
        metrics.barrier_waits <- metrics.barrier_waits + 1;
        each (fun th ->
            if Barrier_unit.is_participant w.barriers b th.lane then begin
              th.status <- Blocked;
              Barrier_unit.block w.barriers b th.lane ~threshold:None
            end
            else begin
              th.pc <- pc + 1;
              th.ready_at <- !cycle + lat.barrier
            end);
        (* blockers and pass-through threads part ways *)
        regroup w active;
        release_fired w b
      | T.Wait_threshold (b, k) ->
        metrics.barrier_waits <- metrics.barrier_waits + 1;
        each (fun th ->
            if Barrier_unit.is_participant w.barriers b th.lane then begin
              th.status <- Blocked;
              Barrier_unit.block w.barriers b th.lane ~threshold:(Some k)
            end
            else begin
              th.pc <- pc + 1;
              th.ready_at <- !cycle + lat.barrier
            end);
        regroup w active;
        release_fired w b
      | T.Arrived (d, b) ->
        each (fun th -> set_reg th d (T.I (Barrier_unit.arrived w.barriers b)));
        advance_all lat.barrier
      | T.Call _ ->
        (* The linearizer turns calls into [Lcall]. *)
        raise (Runtime_error (Printf.sprintf "raw call at pc %d" pc)))
    | L.Lcall { entry; n_regs; args = call_args; ret; callee = _ } ->
      each (fun th ->
          let values = List.map (eval th) call_args in
          let regs = Array.make (max n_regs 1) (T.I 0) in
          List.iteri (fun i v -> regs.(i) <- v) values;
          th.frames <- { regs; ret_pc = pc + 1; ret_reg = ret } :: th.frames;
          th.pc <- entry;
          th.ready_at <- !cycle + lat.call)
    | L.Lret op ->
      each (fun th ->
          let value = Option.map (eval th) op in
          match th.frames with
          | { ret_pc; ret_reg; _ } :: (_ :: _ as rest) ->
            th.frames <- rest;
            (match (ret_reg, value) with
            | Some d, Some v -> set_reg th d v
            | Some d, None -> set_reg th d (T.I 0)
            | None, (Some _ | None) -> ());
            th.pc <- ret_pc;
            th.ready_at <- !cycle + lat.call
          | _ -> raise (Runtime_error (Printf.sprintf "ret outside call (%s)" (context w th))));
      (* returns to different call sites split the group *)
      regroup w active
    | L.Lbr { cond; target } ->
      each (fun th ->
          th.pc <- (if Valops.truthy (eval th cond) then target else pc + 1);
          th.ready_at <- !cycle + lat.branch);
      (* a divergent outcome splits the convergence group *)
      regroup w active
    | L.Ljump target ->
      each (fun th ->
          th.pc <- target;
          th.ready_at <- !cycle + lat.branch)
    | L.Lexit -> each (fun th -> finish_thread w th)
  in
  (* Pick the next (warp, pc, lanes) to issue, rotating over warps.
     Candidates are convergence groups, read straight off the warp's
     incremental group table; a group is issuable when its (uniform)
     status is Ready and its ready_at has passed. Candidates are ordered
     by (pc, lexicographic lane list) — the order the schedule-sensitive
     policies are defined against. *)
  let select_group w =
    let k = ref 0 in
    for s = 0 to w.n_groups - 1 do
      let m = w.gmask.(s) in
      let rep = w.threads.(Mask.lowest m) in
      if rep.status = Ready && rep.ready_at <= !cycle then begin
        cand_pc.(!k) <- rep.pc;
        cand_mask.(!k) <- m;
        incr k
      end
    done;
    let k = !k in
    if k = 0 then None
    else begin
      for i = 1 to k - 1 do
        let pc = cand_pc.(i) and m = cand_mask.(i) in
        let j = ref (i - 1) in
        while
          !j >= 0
          && (cand_pc.(!j) > pc
             || (cand_pc.(!j) = pc && Mask.compare_lex cand_mask.(!j) m > 0))
        do
          cand_pc.(!j + 1) <- cand_pc.(!j);
          cand_mask.(!j + 1) <- cand_mask.(!j);
          decr j
        done;
        cand_pc.(!j + 1) <- pc;
        cand_mask.(!j + 1) <- m
      done;
      let chosen =
        match config.policy with
        | Config.Lowest_pc -> 0
        | Config.Most_threads ->
          let best = ref 0 in
          let best_n = ref (Mask.count cand_mask.(0)) in
          for i = 1 to k - 1 do
            let n = Mask.count cand_mask.(i) in
            if n > !best_n then begin
              best := i;
              best_n := n
            end
          done;
          !best
        | Config.Round_robin ->
          let found = ref 0 in
          (try
             for i = 0 to k - 1 do
               if cand_pc.(i) > w.rr_pc then begin
                 found := i;
                 raise Exit
               end
             done
           with Exit -> ());
          (* rr_pc is Round_robin state only: the other policies must
             not touch it, or a policy change would perturb schedules it
             never influences. *)
          w.rr_pc <- cand_pc.(!found);
          !found
      in
      Some (cand_pc.(chosen), cand_mask.(chosen))
    end
  in
  let find_issue () =
    let found = ref None in
    let i = ref 1 in
    while !found = None && !i <= config.n_warps do
      let wid = (!last_warp + !i) mod config.n_warps in
      (match select_group warps.(wid) with
      | Some (pc, lanes) ->
        last_warp := wid;
        found := Some (warps.(wid), pc, lanes)
      | None -> ());
      incr i
    done;
    !found
  in
  let yield_or_deadlock () =
    (* Every live thread is blocked. Either emulate Volta's forward
       progress by forcing the lowest blocked thread out of its barrier,
       or report the deadlock that conflicting barriers cause. *)
    let victim = ref None in
    Array.iter
      (fun w ->
        Array.iter
          (fun th -> if !victim = None && th.status = Blocked then victim := Some (w, th))
          w.threads)
      warps;
    match !victim with
    | None -> raise (Deadlock "no blocked thread found in stalled state")
    | Some (w, th) ->
      if config.yield_on_stall then begin
        match Barrier_unit.blocked_anywhere w.barriers th.lane with
        | Some b ->
          metrics.yields <- metrics.yields + 1;
          Barrier_unit.cancel w.barriers b th.lane;
          th.status <- Ready;
          th.pc <- th.pc + 1;
          th.ready_at <- !cycle + lat.barrier;
          w.ready_stale <- true;
          detach w th;
          let s = w.n_groups in
          w.gmask.(s) <- Mask.singleton th.lane;
          w.n_groups <- s + 1;
          th.group <- s;
          release_fired w b
        | None -> raise (Deadlock "blocked thread not waiting on any barrier")
      end
      else begin
        let buf = Buffer.create 256 in
        Array.iter
          (fun w ->
            Buffer.add_string buf (Printf.sprintf "warp %d:\n" w.wid);
            Buffer.add_string buf (Format.asprintf "%a" Barrier_unit.pp w.barriers);
            Array.iter
              (fun th ->
                if th.status = Blocked then
                  Buffer.add_string buf (Printf.sprintf "  lane %d blocked at pc %d\n" th.lane th.pc))
              w.threads)
          warps;
        raise
          (Deadlock
             (Printf.sprintf
                "all live threads blocked on convergence barriers (conflicting barriers?)\n%s"
                (Buffer.contents buf)))
      end
  in
  let running = ref true in
  while !running do
    match find_issue () with
    | Some (w, pc, active) ->
      metrics.issues <- metrics.issues + 1;
      if metrics.issues > config.max_issues then
        raise (Runaway (Printf.sprintf "issue budget %d exhausted" config.max_issues));
      metrics.active_sum <- metrics.active_sum + Mask.count active;
      (match tracer with
      | Some observe ->
        observe
          { at_cycle = !cycle; warp = w.wid; pc; active = Mask.to_list active;
            where = lprog.locs.(pc) }
      | None -> ());
      if is_block_entry.(pc) then begin
        let loc = lprog.locs.(pc) in
        Analysis.Profile.record profile ~func:loc.L.in_func ~block:loc.L.in_block
          ~count:(Mask.count active)
      end;
      (try execute w pc active with
      | Valops.Type_error msg ->
        raise (Runtime_error (Printf.sprintf "type error at pc %d (warp %d): %s" pc w.wid msg))
      | Division_by_zero ->
        raise (Runtime_error (Printf.sprintf "division by zero at pc %d (warp %d)" pc w.wid))
      | Invalid_argument msg ->
        raise (Runtime_error (Printf.sprintf "fault at pc %d (warp %d): %s" pc w.wid msg)));
      incr cycle
    | None ->
      (* Nothing issuable this cycle: advance time to the next ready
         group, finish, or handle an all-blocked stall. Group uniformity
         makes the per-warp minimum a min over groups, not lanes, and the
         cache makes the common all-warps-stalled step O(warps). *)
      if metrics.threads_finished >= n_threads then running := false
      else begin
        let next = ref max_int in
        Array.iter
          (fun w ->
            if w.ready_stale then begin
              let m = ref max_int in
              for s = 0 to w.n_groups - 1 do
                let rep = w.threads.(Mask.lowest w.gmask.(s)) in
                if rep.status = Ready && rep.ready_at < !m then m := rep.ready_at
              done;
              w.ready_min <- !m;
              w.ready_stale <- false
            end;
            if w.ready_min < !next then next := w.ready_min)
          warps;
        if !next < max_int then cycle := max !next (!cycle + 1) else yield_or_deadlock ()
      end
  done;
  metrics.cycles <- !cycle;
  { metrics; memory; profile }
