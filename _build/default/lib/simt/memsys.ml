type stats = { reads : int; writes : int; transactions : int; hits : int; misses : int }

type cache_state = {
  csets : int;
  cways : int;
  hit_latency : int;
  (* tags.(set) is a list of line tags, most recently used first. *)
  tags : int list array;
}

type t = {
  config : Config.memory;
  data : Ir.Types.value array;
  cache : cache_state option;
  mutable reads : int;
  mutable writes : int;
  mutable transactions : int;
  mutable hits : int;
  mutable misses : int;
}

let create (config : Config.memory) ~size =
  if size < 0 then invalid_arg "Memsys.create: negative size";
  let cache =
    Option.map
      (fun (c : Config.cache) ->
        { csets = c.sets; cways = c.ways; hit_latency = c.hit_latency; tags = Array.make c.sets [] })
      config.cache
  in
  {
    config;
    data = Array.make size (Ir.Types.I 0);
    cache;
    reads = 0;
    writes = 0;
    transactions = 0;
    hits = 0;
    misses = 0;
  }

let check t addr what =
  if addr < 0 || addr >= Array.length t.data then
    invalid_arg (Printf.sprintf "Memsys.%s: address %d out of bounds [0, %d)" what addr
                   (Array.length t.data))

let read t addr =
  check t addr "read";
  t.reads <- t.reads + 1;
  t.data.(addr)

let write t addr v =
  check t addr "write";
  t.writes <- t.writes + 1;
  t.data.(addr) <- v

let size t = Array.length t.data

(* Probe the cache for a line; true on hit. Updates LRU order and fills on
   miss. *)
let probe cache line =
  let set = line mod cache.csets in
  let resident = cache.tags.(set) in
  if List.mem line resident then begin
    cache.tags.(set) <- line :: List.filter (fun l -> l <> line) resident;
    true
  end
  else begin
    let kept =
      if List.length resident >= cache.cways then
        List.filteri (fun i _ -> i < cache.cways - 1) resident
      else resident
    in
    cache.tags.(set) <- line :: kept;
    false
  end

let access_cost t ~addrs =
  match addrs with
  | [] -> 0
  | _ ->
    let lines = List.sort_uniq compare (List.map (fun a -> a / t.config.line_words) addrs) in
    t.transactions <- t.transactions + List.length lines;
    (match t.cache with
    | None ->
      t.config.base_latency + ((List.length lines - 1) * t.config.per_transaction)
    | Some cache ->
      let hits, misses = List.partition (probe cache) lines in
      t.hits <- t.hits + List.length hits;
      t.misses <- t.misses + List.length misses;
      let miss_cost =
        match misses with
        | [] -> 0
        | _ -> t.config.base_latency + ((List.length misses - 1) * t.config.per_transaction)
      in
      let hit_cost = if hits = [] then 0 else cache.hit_latency in
      max hit_cost miss_cost)

let stats t =
  { reads = t.reads; writes = t.writes; transactions = t.transactions; hits = t.hits;
    misses = t.misses }

let dump t ~base ~len =
  if base < 0 || len < 0 || base + len > Array.length t.data then
    invalid_arg "Memsys.dump: region out of bounds";
  Array.sub t.data base len
