(** The SIMT execution engine.

    Executes a linearized program over [n_warps] warps of [warp_size]
    threads with Volta-style independent thread scheduling: every thread
    has its own program counter, register frames and call stack; a
    per-warp scheduler issues one same-PC group per cycle through a single
    shared issue port; convergence barriers ({!Barrier_unit}) block and
    release groups of threads.

    Timing model: issuing costs one cycle on the shared port; an issued
    instruction makes its lanes unavailable for its latency (memory
    latency depends on coalescing, see {!Memsys}). Latency is hidden
    naturally by other PC-groups of the same warp — Volta's independent
    thread scheduling — and by other warps.

    Determinism: per-thread PRNG streams are seeded from
    [(config.seed, warp, lane)], so kernel results are identical across
    scheduler policies and compilation modes — the key property the
    correctness tests check. *)

exception Deadlock of string
(** Raised (unless [yield_on_stall]) when every live thread is blocked on
    a convergence barrier that can never fire — the concrete failure mode
    of conflicting barriers that §4.3's deconfliction exists to prevent. *)

exception Runtime_error of string
(** Type errors, out-of-bounds accesses, division by zero — annotated
    with warp, lane and pc. *)

exception Runaway of string
(** The configured [max_issues] budget was exhausted. *)

type result = {
  metrics : Metrics.t;
  memory : Memsys.t;
  profile : Analysis.Profile.t; (* lane-executions per basic block *)
}

(** One issued warp instruction, as seen by a tracer: which warp issued,
    at which cycle, which lanes were active, and where the instruction
    came from. The stream of these events is the raw material of the
    paper's Figure 1/3 execution diagrams. *)
type issue_event = {
  at_cycle : int;
  warp : int;
  pc : int;
  active : int list; (* lanes, ascending *)
  where : Ir.Linear.location;
}

(** [run config lprog ~args ~init_memory] launches
    [config.n_warps * config.warp_size] threads of the kernel.

    [args] are the kernel parameters (uniform across threads);
    [init_memory] fills global tables before the launch;
    [tracer], when given, observes every issued warp instruction.

    @raise Invalid_argument if [args] does not match the kernel arity.
    @raise Deadlock / Runtime_error / Runaway as documented above. *)
val run :
  ?tracer:(issue_event -> unit) ->
  Config.t ->
  Ir.Linear.t ->
  args:Ir.Types.value list ->
  init_memory:(Memsys.t -> unit) ->
  result
