(** Execution counters and derived metrics.

    {!simt_efficiency} follows the nvprof definition the paper uses: the
    average fraction of active threads per issued warp instruction. *)

type t = {
  warp_size : int;
  mutable issues : int; (* warp instructions issued *)
  mutable active_sum : int; (* total active lanes over all issues *)
  mutable cycles : int; (* final simulated cycle *)
  mutable mem_accesses : int; (* warp-level loads + stores issued *)
  mutable barrier_joins : int;
  mutable barrier_waits : int;
  mutable barrier_fires : int;
  mutable barrier_cancels : int;
  mutable yields : int; (* forced releases under [yield_on_stall] *)
  mutable threads_finished : int;
}

val create : warp_size:int -> t

(** Average active lanes per issue divided by the warp size, in [0, 1].
    0 when nothing was issued. *)
val simt_efficiency : t -> float

(** Issued warp instructions per cycle. *)
val ipc : t -> float

(** Average active lanes per issue. *)
val avg_active : t -> float

val pp : Format.formatter -> t -> unit
