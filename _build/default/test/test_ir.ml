(* Tests for the IR: builder invariants, verifier error classes, the
   printer, and the linearizer. *)

module T = Ir.Types
module B = Ir.Builder
module V = Ir.Verifier
module L = Ir.Linear

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* A minimal valid kernel: entry computes tid and stores it. *)
let minimal_kernel () =
  let p = B.create_program () in
  let base = B.alloc_global p "out" 64 in
  let f = B.create_func p "k" ~params:0 in
  B.set_kernel p "k";
  let t = B.fresh_reg f in
  let addr = B.fresh_reg f in
  B.append f f.entry (T.Tid t);
  B.append f f.entry (T.Bin (T.Add, addr, T.Imm (T.I base), T.Reg t));
  B.append f f.entry (T.Store (T.Reg addr, T.Reg t));
  B.set_term f f.entry T.Exit;
  (p, f)

(* ---- Builder ---- *)

let test_builder_basics () =
  let p, f = minimal_kernel () in
  check_int "globals allocated" 64 p.T.mem_size;
  check_int "param count" 0 (List.length f.T.params);
  check_int "global base" 0 (B.global_base p "out");
  let g = B.create_func p "helper" ~params:2 in
  check (Alcotest.list Alcotest.int) "params are first regs" [ 0; 1 ] g.T.params;
  let b2 = B.add_block g in
  check_bool "block ids distinct" true (b2 <> g.T.entry);
  let r = B.fresh_reg g in
  check_int "fresh reg after params" 2 r

let test_builder_errors () =
  let p, _ = minimal_kernel () in
  let invalid f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  invalid (fun () -> B.create_func p "k" ~params:0);
  invalid (fun () -> B.alloc_global p "out" 8);
  invalid (fun () -> B.alloc_global p "zero" 0);
  invalid (fun () -> B.set_kernel p "nope");
  invalid (fun () -> B.global_base p "nope")

let test_builder_labels_hints () =
  let p, f = minimal_kernel () in
  ignore p;
  let b = B.add_block f in
  B.add_label f "L1" b;
  check (Alcotest.option Alcotest.int) "label lookup" (Some b) (B.label_block f "L1");
  check (Alcotest.option Alcotest.int) "missing label" None (B.label_block f "L2");
  (match B.add_label f "L1" b with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate label accepted");
  B.add_hint f { T.target = T.Label_target "L1"; region_start = f.T.entry; threshold = Some 4 };
  check_int "hint recorded" 1 (List.length f.T.hints)

(* ---- Verifier ---- *)

let errors_of p = List.length (V.check_program p)

let test_verifier_accepts_valid () =
  let p, _ = minimal_kernel () in
  check_int "no errors" 0 (errors_of p)

let test_verifier_missing_kernel () =
  let p = B.create_program () in
  check_bool "missing kernel flagged" true (errors_of p > 0)

let test_verifier_bad_branch_target () =
  let p, f = minimal_kernel () in
  B.set_term f f.T.entry (T.Jump 999);
  check_bool "bad target flagged" true (errors_of p > 0)

let test_verifier_bad_register () =
  let p, f = minimal_kernel () in
  B.append f f.T.entry (T.Mov (999, T.Imm (T.I 0)));
  check_bool "bad register flagged" true (errors_of p > 0)

let test_verifier_bad_call () =
  let p, f = minimal_kernel () in
  B.append f f.T.entry (T.Call { callee = "ghost"; args = []; ret = None });
  check_bool "unknown callee flagged" true (errors_of p > 0);
  let p2, f2 = minimal_kernel () in
  let g = B.create_func p2 "two_args" ~params:2 in
  B.set_term g g.T.entry (T.Ret None);
  B.append f2 f2.T.entry (T.Call { callee = "two_args"; args = [ T.Imm (T.I 1) ]; ret = None });
  check_bool "arity mismatch flagged" true (errors_of p2 > 0)

let test_verifier_ret_exit_confusion () =
  let p, f = minimal_kernel () in
  B.set_term f f.T.entry (T.Ret None);
  check_bool "ret in kernel flagged" true (errors_of p > 0);
  let p2, _ = minimal_kernel () in
  let g = B.create_func p2 "dev" ~params:0 in
  B.set_term g g.T.entry T.Exit;
  check_bool "exit in device function flagged" true (errors_of p2 > 0)

let test_verifier_unreachable_block () =
  let p, f = minimal_kernel () in
  let orphan = B.add_block f in
  B.set_term f orphan T.Exit;
  check_bool "unreachable flagged" true (errors_of p > 0)

let test_verifier_bad_barrier () =
  let p, f = minimal_kernel () in
  B.prepend f f.T.entry (T.Join 5);
  (* no barrier was ever allocated *)
  check_bool "unallocated barrier flagged" true (errors_of p > 0)

let test_verifier_bad_hint () =
  let p, f = minimal_kernel () in
  B.add_hint f { T.target = T.Label_target "missing"; region_start = f.T.entry; threshold = None };
  check_bool "unknown hint label flagged" true (errors_of p > 0);
  let p2, f2 = minimal_kernel () in
  B.add_hint f2 { T.target = T.Callee_target "ghost"; region_start = f2.T.entry; threshold = None };
  check_bool "unknown hint callee flagged" true (errors_of p2 > 0)

(* ---- helpers on types ---- *)

let test_defs_uses () =
  let open T in
  check (Alcotest.list Alcotest.int) "bin defs" [ 3 ] (defs (Bin (Add, 3, Reg 1, Reg 2)));
  check (Alcotest.list Alcotest.int) "bin uses" [ 1; 2 ] (uses (Bin (Add, 3, Reg 1, Reg 2)));
  check (Alcotest.list Alcotest.int) "imm uses" [] (uses (Mov (0, Imm (I 5))));
  check (Alcotest.list Alcotest.int) "store uses" [ 1; 2 ] (uses (Store (Reg 1, Reg 2)));
  check (Alcotest.list Alcotest.int) "store defs" [] (defs (Store (Reg 1, Reg 2)));
  check (Alcotest.list Alcotest.int) "call ret def" [ 7 ]
    (defs (Call { callee = "f"; args = [ Reg 1 ]; ret = Some 7 }));
  check (Alcotest.option Alcotest.int) "barrier of wait" (Some 2) (barrier_of (Wait 2));
  check (Alcotest.option Alcotest.int) "barrier of mov" None (barrier_of (Mov (0, Imm (I 0))));
  check (Alcotest.list Alcotest.int) "term uses" [ 4 ]
    (term_uses (Br { cond = Reg 4; if_true = 0; if_false = 1 }))

let test_successors () =
  let open T in
  check (Alcotest.list Alcotest.int) "jump" [ 3 ] (successors (Jump 3));
  check (Alcotest.list Alcotest.int) "br" [ 1; 2 ]
    (successors (Br { cond = Reg 0; if_true = 1; if_false = 2 }));
  check (Alcotest.list Alcotest.int) "br same target" [ 1 ]
    (successors (Br { cond = Reg 0; if_true = 1; if_false = 1 }));
  check (Alcotest.list Alcotest.int) "exit" [] (successors Exit);
  check (Alcotest.list Alcotest.int) "ret" [] (successors (Ret None))

(* ---- Printer ---- *)

let test_printer () =
  let p, _ = minimal_kernel () in
  let s = Ir.Printer.program_to_string p in
  let has sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check_bool "has kernel marker" true (has "; kernel");
  check_bool "has func" true (has "func k(");
  check_bool "has tid" true (has "= tid");
  check_bool "has store" true (has "store [");
  check_bool "has exit" true (has "exit");
  check_bool "has global" true (has "global out")

(* ---- Linearizer ---- *)

let diamond_kernel () =
  (* entry: br c, then, else; both jump to join; join exits. *)
  let p = B.create_program () in
  let f = B.create_func p "k" ~params:0 in
  B.set_kernel p "k";
  let c = B.fresh_reg f in
  let then_b = B.add_block f and else_b = B.add_block f and join = B.add_block f in
  B.append f f.T.entry (T.Tid c);
  B.set_term f f.T.entry (T.Br { cond = T.Reg c; if_true = then_b; if_false = else_b });
  B.append f then_b (T.Mov (c, T.Imm (T.I 1)));
  B.set_term f then_b (T.Jump join);
  B.append f else_b (T.Mov (c, T.Imm (T.I 2)));
  B.set_term f else_b (T.Jump join);
  B.set_term f join T.Exit;
  (p, f, then_b, else_b, join)

let test_linearize_fallthrough () =
  let p, f, _, _, _ = diamond_kernel () in
  ignore f;
  let l = L.linearize p in
  (* tid, br, then-mov, jump(join) or fallthrough, else-mov, exit:
     RPO layout is entry, then, else, join; the "then" block needs an
     explicit jump over "else", while "else" falls through to "join". *)
  check_int "instruction count" 6 (Array.length l.L.code);
  check_int "kernel entry at 0" 0 l.L.kernel.L.entry_pc

let test_linearize_block_entry_pc () =
  let p, f, then_b, else_b, join = diamond_kernel () in
  ignore f;
  let l = L.linearize p in
  let pc_then = L.block_entry_pc l ~func:"k" ~block:then_b in
  let pc_else = L.block_entry_pc l ~func:"k" ~block:else_b in
  let pc_join = L.block_entry_pc l ~func:"k" ~block:join in
  (* DFS postorder visits [then] deepest-last, so RPO lays out the else
     side first and the join last *)
  check_bool "else before then (RPO)" true (pc_else < pc_then);
  check_bool "then before join" true (pc_then < pc_join);
  (match l.L.code.(pc_join) with
  | L.Lexit -> ()
  | _ -> Alcotest.fail "join should hold the exit");
  Alcotest.check_raises "missing block" Not_found (fun () ->
      ignore (L.block_entry_pc l ~func:"k" ~block:999))

let test_linearize_calls () =
  let p, f = minimal_kernel () in
  let g = B.create_func p "twice" ~params:1 in
  let r = B.fresh_reg g in
  B.append g g.T.entry (T.Bin (T.Add, r, T.Reg 0, T.Reg 0));
  B.set_term g g.T.entry (T.Ret (Some (T.Reg r)));
  let d = B.fresh_reg f in
  B.append f f.T.entry (T.Call { callee = "twice"; args = [ T.Imm (T.I 21) ]; ret = Some d });
  let l = L.linearize p in
  let found = ref false in
  Array.iter
    (fun i ->
      match i with
      | L.Lcall { callee; entry; n_regs; _ } ->
        found := true;
        check Alcotest.string "callee name" "twice" callee;
        check_int "resolved entry" (L.block_entry_pc l ~func:"twice" ~block:g.T.entry) entry;
        check_int "frame size" g.T.next_reg n_regs
      | _ -> ())
    l.L.code;
  check_bool "call emitted" true !found

let test_linearize_rejects_invalid () =
  let p, f = minimal_kernel () in
  B.set_term f f.T.entry (T.Jump 42);
  (match L.linearize p with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected linearize to reject invalid program")

let tests =
  [
    ( "ir.builder",
      [
        Alcotest.test_case "basics" `Quick test_builder_basics;
        Alcotest.test_case "errors" `Quick test_builder_errors;
        Alcotest.test_case "labels and hints" `Quick test_builder_labels_hints;
      ] );
    ( "ir.verifier",
      [
        Alcotest.test_case "accepts valid" `Quick test_verifier_accepts_valid;
        Alcotest.test_case "missing kernel" `Quick test_verifier_missing_kernel;
        Alcotest.test_case "bad branch target" `Quick test_verifier_bad_branch_target;
        Alcotest.test_case "bad register" `Quick test_verifier_bad_register;
        Alcotest.test_case "bad call" `Quick test_verifier_bad_call;
        Alcotest.test_case "ret/exit confusion" `Quick test_verifier_ret_exit_confusion;
        Alcotest.test_case "unreachable block" `Quick test_verifier_unreachable_block;
        Alcotest.test_case "bad barrier" `Quick test_verifier_bad_barrier;
        Alcotest.test_case "bad hint" `Quick test_verifier_bad_hint;
      ] );
    ( "ir.types",
      [
        Alcotest.test_case "defs/uses" `Quick test_defs_uses;
        Alcotest.test_case "successors" `Quick test_successors;
      ] );
    ("ir.printer", [ Alcotest.test_case "renders program" `Quick test_printer ]);
    ( "ir.linear",
      [
        Alcotest.test_case "fallthrough elision" `Quick test_linearize_fallthrough;
        Alcotest.test_case "block entry pcs" `Quick test_linearize_block_entry_pc;
        Alcotest.test_case "call resolution" `Quick test_linearize_calls;
        Alcotest.test_case "rejects invalid" `Quick test_linearize_rejects_invalid;
      ] );
  ]
