(* Tests for the analysis library: CFG utilities, dominators and
   post-dominators, the dataflow solver, natural loops, divergence
   analysis, the paper's barrier analyses (checked against Figures 4 and
   5), call graphs, the cost model and profiles. *)

module T = Ir.Types
module B = Ir.Builder
module ISet = Analysis.Sets.Int_set

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let iset_of = ISet.of_list
let check_iset msg expected actual =
  check (Alcotest.list Alcotest.int) msg expected (ISet.elements actual)

(* Diamond: entry(0) -> then(1)/else(2) -> join(3) -> exit. *)
let diamond () =
  let p = B.create_program () in
  let f = B.create_func p "k" ~params:0 in
  B.set_kernel p "k";
  let c = B.fresh_reg f in
  let then_b = B.add_block f and else_b = B.add_block f and join = B.add_block f in
  B.append f f.T.entry (T.Tid c);
  B.set_term f f.T.entry (T.Br { cond = T.Reg c; if_true = then_b; if_false = else_b });
  B.set_term f then_b (T.Jump join);
  B.set_term f else_b (T.Jump join);
  B.set_term f join T.Exit;
  (p, f, then_b, else_b, join)

(* The Listing-1 / Figure-4 CFG:
   bb0: Join b0 (region start) -> bb1 (loop header / prolog)
   bb1 -> bb2 (condition)
   bb2: divergent branch -> bb3 (then: Wait b0) | bb4 (epilog)
   bb3 -> bb4
   bb4: loop branch -> bb1 | bb5 (exit)  *)
let figure4 ?(with_rejoin = false) ?(with_pdom_barrier = false) () =
  let p = B.create_program () in
  let f = B.create_func p "k" ~params:0 in
  B.set_kernel p "k";
  let b0 = B.fresh_barrier p in
  let bb1 = B.add_block f and bb2 = B.add_block f and bb3 = B.add_block f in
  let bb4 = B.add_block f and bb5 = B.add_block f in
  let c = B.fresh_reg f and l = B.fresh_reg f in
  B.append f f.T.entry (T.Join b0);
  B.set_term f f.T.entry (T.Jump bb1);
  B.append f bb1 (T.Rand c);
  B.set_term f bb1 (T.Jump bb2);
  B.append f bb2 (T.Un (T.Ftoi, l, T.Reg c));
  B.set_term f bb2 (T.Br { cond = T.Reg l; if_true = bb3; if_false = bb4 });
  B.append f bb3 (T.Wait b0);
  if with_rejoin then B.append f bb3 (T.Rejoin b0);
  B.set_term f bb3 (T.Jump bb4);
  B.set_term f bb4 (T.Br { cond = T.Reg l; if_true = bb1; if_false = bb5 });
  B.set_term f bb5 T.Exit;
  let b1 =
    if with_pdom_barrier then begin
      (* the compiler's PDOM barrier for the divergent branch in bb2:
         joined at the branch, waited at its post-dominator bb4 *)
      let b1 = B.fresh_barrier p in
      B.append f bb2 (T.Join b1);
      B.prepend f bb4 (T.Wait b1);
      Some b1
    end
    else None
  in
  (p, f, b0, b1, (bb1, bb2, bb3, bb4, bb5))

(* ---- Cfg ---- *)

let test_cfg_basics () =
  let _, f, then_b, else_b, join = diamond () in
  let g = Analysis.Cfg.of_func f in
  check_int "entry" f.T.entry (Analysis.Cfg.entry g);
  check_int "size" 4 (Analysis.Cfg.size g);
  check (Alcotest.list Alcotest.int) "succs of entry" [ then_b; else_b ]
    (Analysis.Cfg.succs g f.T.entry);
  check (Alcotest.list Alcotest.int) "preds of join" [ then_b; else_b ]
    (List.sort compare (Analysis.Cfg.preds g join));
  check_bool "rpo starts at entry" true (List.hd (Analysis.Cfg.rpo g) = f.T.entry)

let test_cfg_reverse () =
  let _, f, _, _, join = diamond () in
  let g = Analysis.Cfg.of_func f in
  let r = Analysis.Cfg.reverse g in
  check_int "reverse entry is synthetic" Analysis.Cfg.synthetic_exit (Analysis.Cfg.entry r);
  check (Alcotest.list Alcotest.int) "exit points to sinks" [ join ]
    (Analysis.Cfg.succs r Analysis.Cfg.synthetic_exit);
  check (Alcotest.list Alcotest.int) "entry is a reverse sink" []
    (Analysis.Cfg.succs r f.T.entry)

let test_cfg_unreachable_excluded () =
  let p = B.create_program () in
  let f = B.create_func p "k" ~params:0 in
  B.set_kernel p "k";
  let orphan = B.add_block f in
  B.set_term f orphan T.Exit;
  B.set_term f f.T.entry T.Exit;
  let g = Analysis.Cfg.of_func f in
  check_bool "orphan excluded" false (Analysis.Cfg.mem g orphan)

(* ---- Dom ---- *)

let test_dom_diamond () =
  let _, f, then_b, else_b, join = diamond () in
  let g = Analysis.Cfg.of_func f in
  let dom = Analysis.Dom.compute g in
  check (Alcotest.option Alcotest.int) "idom then" (Some f.T.entry)
    (Analysis.Dom.idom dom then_b);
  check (Alcotest.option Alcotest.int) "idom join" (Some f.T.entry) (Analysis.Dom.idom dom join);
  check (Alcotest.option Alcotest.int) "idom entry" None (Analysis.Dom.idom dom f.T.entry);
  check_bool "entry dominates all" true
    (List.for_all (Analysis.Dom.dominates dom f.T.entry) [ then_b; else_b; join ]);
  check_bool "then does not dominate join" false (Analysis.Dom.dominates dom then_b join);
  check_bool "strict" false (Analysis.Dom.strictly_dominates dom join join);
  check_int "common ancestor of branches" f.T.entry
    (Analysis.Dom.common_ancestor dom then_b else_b);
  check (Alcotest.list Alcotest.int) "frontier of then" [ join ]
    (Analysis.Dom.frontier dom g then_b)

let test_postdom_diamond () =
  let _, f, then_b, _, join = diamond () in
  let g = Analysis.Cfg.of_func f in
  let pd = Analysis.Dom.Post.compute g in
  check (Alcotest.option Alcotest.int) "ipdom of entry" (Some join)
    (Analysis.Dom.Post.ipdom pd f.T.entry);
  check (Alcotest.option Alcotest.int) "ipdom of then" (Some join)
    (Analysis.Dom.Post.ipdom pd then_b);
  check (Alcotest.option Alcotest.int) "ipdom of join is synthetic exit"
    (Some Analysis.Cfg.synthetic_exit)
    (Analysis.Dom.Post.ipdom pd join);
  check_bool "join postdominates then" true (Analysis.Dom.Post.postdominates pd join then_b)

let test_dom_loop () =
  let _, f, _, _, (bb1, bb2, bb3, bb4, bb5) = figure4 () in
  let g = Analysis.Cfg.of_func f in
  let dom = Analysis.Dom.compute g in
  check (Alcotest.option Alcotest.int) "idom header" (Some f.T.entry)
    (Analysis.Dom.idom dom bb1);
  check (Alcotest.option Alcotest.int) "idom then" (Some bb2) (Analysis.Dom.idom dom bb3);
  check (Alcotest.option Alcotest.int) "idom epilog" (Some bb2) (Analysis.Dom.idom dom bb4);
  check (Alcotest.option Alcotest.int) "idom exit" (Some bb4) (Analysis.Dom.idom dom bb5);
  let pd = Analysis.Dom.Post.compute g in
  check (Alcotest.option Alcotest.int) "ipdom of divergent branch" (Some bb4)
    (Analysis.Dom.Post.ipdom pd bb2)

(* QCheck: dominator sanity over random CFGs. *)
let random_cfg_gen =
  (* Blocks 0..n-1; block i terminates with a branch/jump to higher or
     random blocks or an exit; entry is 0. *)
  QCheck2.Gen.(
    let* n = int_range 2 12 in
    let* choices = list_size (return n) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))) in
    return (n, choices))

let build_random_cfg (n, choices) =
  let p = B.create_program () in
  let f = B.create_func p "k" ~params:0 in
  B.set_kernel p "k";
  let blocks = Array.init n (fun i -> if i = 0 then f.T.entry else B.add_block f) in
  let c = B.fresh_reg f in
  B.append f f.T.entry (T.Tid c);
  List.iteri
    (fun i (a, b) ->
      if i < n then
        let term =
          if i = n - 1 then T.Exit
          else if a = b then T.Jump blocks.(a)
          else T.Br { cond = T.Reg c; if_true = blocks.(a); if_false = blocks.(b) }
        in
        B.set_term f blocks.(i) term)
    choices;
  (* make sure at least one exit is reachable: last block exits *)
  B.set_term f blocks.(n - 1) T.Exit;
  f

let prop_dom_sanity =
  QCheck2.Test.make ~name:"dom: idom dominates its node; entry dominates all" ~count:100
    random_cfg_gen (fun input ->
      let f = build_random_cfg input in
      let g = Analysis.Cfg.of_func f in
      let dom = Analysis.Dom.compute g in
      List.for_all
        (fun node ->
          Analysis.Dom.dominates dom (Analysis.Cfg.entry g) node
          &&
          match Analysis.Dom.idom dom node with
          | None -> node = Analysis.Cfg.entry g
          | Some parent -> Analysis.Dom.dominates dom parent node && parent <> node)
        (Analysis.Cfg.nodes g))

(* ---- Dataflow ---- *)

module Bool_lattice = struct
  type t = bool

  let bottom = false
  let equal = Bool.equal
  let join = ( || )
end

module Bool_flow = Analysis.Dataflow.Make (Bool_lattice)

let test_dataflow_forward_reachability () =
  let _, f, _, _, (bb1, _, bb3, _, bb5) = figure4 () in
  let g = Analysis.Cfg.of_func f in
  (* "has passed bb3" as a forward may-analysis *)
  let r =
    Bool_flow.solve g Analysis.Dataflow.Forward ~boundary:false ~transfer:(fun id v ->
        v || id = bb3)
  in
  check_bool "bb5 may come after bb3" true (Bool_flow.before r bb5);
  check_bool "bb1 may come after bb3 (loop)" true (Bool_flow.before r bb1);
  check_bool "entry not after bb3" false (Bool_flow.before r f.T.entry)

let test_dataflow_backward_liveness_like () =
  let _, f, _, _, (_, _, bb3, _, bb5) = figure4 () in
  let g = Analysis.Cfg.of_func f in
  (* "may still reach bb3" as a backward analysis *)
  let r =
    Bool_flow.solve g Analysis.Dataflow.Backward ~boundary:false ~transfer:(fun id v ->
        v || id = bb3)
  in
  check_bool "entry can reach bb3" true (Bool_flow.before r f.T.entry);
  check_bool "exit cannot" false (Bool_flow.after r bb5)

(* ---- Loops ---- *)

let compile src = Front.Lower.compile_source src

let test_loops_nested () =
  let p =
    compile
      {|
kernel k(n: int) {
  var acc: int = 0;
  for i in 0 .. n {
    var j: int = 0;
    while (j < i) {
      acc = acc + 1;
      j = j + 1;
    }
  }
}
|}
  in
  let f = Hashtbl.find p.T.funcs "k" in
  let g = Analysis.Cfg.of_func f in
  let dom = Analysis.Dom.compute g in
  let loops = Analysis.Loops.compute g dom in
  let all = Analysis.Loops.loops loops in
  check_int "two loops" 2 (List.length all);
  let depths = List.sort compare (List.map (fun (l : Analysis.Loops.loop) -> l.depth) all) in
  check (Alcotest.list Alcotest.int) "nesting depths" [ 1; 2 ] depths;
  let inner = List.find (fun (l : Analysis.Loops.loop) -> l.depth = 2) all in
  let outer = List.find (fun (l : Analysis.Loops.loop) -> l.depth = 1) all in
  check (Alcotest.option Alcotest.int) "inner parent" (Some outer.header) inner.parent;
  check_bool "inner body within outer" true (ISet.subset inner.body outer.body);
  check_bool "outer has exits" true (outer.exits <> []);
  check_int "depth_of inner header" 2 (Analysis.Loops.depth_of loops inner.header);
  (match Analysis.Loops.innermost_containing loops inner.header with
  | Some l -> check_int "innermost of inner header" inner.header l.header
  | None -> Alcotest.fail "no innermost loop");
  check_bool "loop_of finds header" true (Analysis.Loops.loop_of loops outer.header <> None)

let test_loops_none () =
  let _, f, _, _, _ = diamond () in
  let g = Analysis.Cfg.of_func f in
  let loops = Analysis.Loops.compute g (Analysis.Dom.compute g) in
  check_int "no loops in a diamond" 0 (List.length (Analysis.Loops.loops loops))

(* ---- Divergence ---- *)

let test_divergence_sources () =
  let p =
    compile
      {|
global table: int[64];
func helper() -> int { return tid(); }
kernel k(n: int) {
  if (n > 0) { let a = 1; }           // uniform branch
  if (tid() > 0) { let b = 1; }       // divergent: tid
  if (rand() < 0.5) { let c = 1; }    // divergent: rand
  let t = table[0];                   // uniform load (uniform address)
  if (t > 0) { let d = 1; }           // uniform
  let h = helper();                   // divergent via callee
  if (h > 0) { let e = 1; }
}
|}
  in
  let d = Analysis.Divergence.run p in
  let branches = Analysis.Divergence.divergent_branches d ~func:"k" in
  (* exactly three divergent branches: tid, rand, helper *)
  check_int "three divergent branches" 3 (ISet.cardinal branches);
  check_bool "helper returns divergent" true (Analysis.Divergence.returns_divergent d ~func:"helper")

let test_divergence_control_dependence () =
  let p =
    compile
      {|
kernel k() {
  var x: int = 0;
  if (tid() > 0) { x = 1; }   // x assigned under divergent control
  if (x > 0) { let y = 1; }   // so this branch is divergent too
}
|}
  in
  let d = Analysis.Divergence.run p in
  check_int "both branches divergent" 2
    (ISet.cardinal (Analysis.Divergence.divergent_branches d ~func:"k"))

let test_divergence_memory () =
  let p =
    compile
      {|
global table: float[64];
kernel k() {
  let v = table[tid()];       // divergent address
  let u = table[3];           // uniform address
  table[tid()] = v + u;
}
|}
  in
  let d = Analysis.Divergence.run p in
  check_int "two divergent accesses (load + store)" 2
    (Analysis.Divergence.divergent_loads d ~func:"k")

(* ---- Barrier analyses: Figure 4 ---- *)

let test_joined_analysis_figure4 () =
  let _, f, b0, _, (bb1, bb2, bb3, bb4, bb5) = figure4 () in
  let ba = Analysis.Barrier_analysis.run f in
  (* Figure 4(b): joined everywhere except cleared at BB3's wait. *)
  check_iset "joined out of region start" [ b0 ]
    (Analysis.Barrier_analysis.joined_out ba f.T.entry);
  check_iset "joined out of header" [ b0 ] (Analysis.Barrier_analysis.joined_out ba bb1);
  check_iset "joined out of branch" [ b0 ] (Analysis.Barrier_analysis.joined_out ba bb2);
  check_iset "cleared after wait" [] (Analysis.Barrier_analysis.joined_out ba bb3);
  check_iset "joined out of epilog (merge)" [ b0 ] (Analysis.Barrier_analysis.joined_out ba bb4);
  check_iset "joined at exit" [ b0 ] (Analysis.Barrier_analysis.joined_in ba bb5)

let test_liveness_analysis_figure4 () =
  let _, f, b0, _, (bb1, bb2, bb3, bb4, bb5) = figure4 () in
  let ba = Analysis.Barrier_analysis.run f in
  (* Figure 4(c): live everywhere inside the loop; dead at exit. *)
  check_iset "live out of region start" [ b0 ] (Analysis.Barrier_analysis.live_out ba f.T.entry);
  check_iset "live out of header" [ b0 ] (Analysis.Barrier_analysis.live_out ba bb1);
  check_iset "live out of then (via loop)" [ b0 ] (Analysis.Barrier_analysis.live_out ba bb3);
  check_iset "live out of epilog" [ b0 ] (Analysis.Barrier_analysis.live_out ba bb4);
  check_iset "dead at exit" [] (Analysis.Barrier_analysis.live_in ba bb5);
  ignore bb2;
  (* instruction granularity: before the wait b0 is live, just after the
     wait (no rejoin in this variant) it is still live via the backedge *)
  check_bool "live before wait" true
    (ISet.mem b0
       (Analysis.Barrier_analysis.live_at ba { Analysis.Barrier_analysis.block = bb3; index = 0 }))

let test_conflicts_figure5 () =
  (* With the compiler's PDOM barrier added, the user barrier (wait at
     bb3, rejoin) and the PDOM barrier (join at bb2, wait at bb4) overlap
     non-inclusively: the paper's Figure-5 conflict. *)
  let _, f, b0, b1, _ = figure4 ~with_rejoin:true ~with_pdom_barrier:true () in
  let ba = Analysis.Barrier_analysis.run f in
  let b1 = Option.get b1 in
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)) "conflict detected"
    [ (min b0 b1, max b0 b1) ]
    (Analysis.Barrier_analysis.conflicts ba)

let test_no_conflict_when_nested () =
  (* Without the rejoin, the user barrier's joined range is a strict
     subset question... use instead: a region barrier enclosing b0:
     joined at entry, waited at exit. Inclusive ranges must NOT report a
     conflict. *)
  let p, f, b0, _, (_, _, _, _, bb5) = figure4 () in
  let b2 = B.fresh_barrier p in
  (* the enclosing barrier joins first, exactly as Figure 4(d)'s BB0
     orders them; joining after b0 would open a one-point window where
     b0 is joined and b2 is not *)
  B.prepend f f.T.entry (T.Join b2);
  B.prepend f bb5 (T.Cancel b0);
  B.append f bb5 (T.Wait b2);
  (* keep block shape legal: move Wait before the Exit terminator *)
  let ba = Analysis.Barrier_analysis.run f in
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)) "no conflict for nested"
    []
    (Analysis.Barrier_analysis.conflicts ba)

(* ---- Callgraph ---- *)

let test_callgraph () =
  let p =
    compile
      {|
func leaf(x: int) -> int { return x + 1; }
func mid(x: int) -> int { return leaf(x) + leaf(x + 1); }
func looper(x: int) -> int {
  if (x <= 0) { return 0; }
  return looper(x - 1);
}
kernel k() { let a = mid(1) + looper(3); }
|}
  in
  let cg = Analysis.Callgraph.build p in
  check (Alcotest.list Alcotest.string) "callees of k" [ "mid"; "looper" ]
    (Analysis.Callgraph.callees cg "k");
  check (Alcotest.list Alcotest.string) "callers of leaf" [ "mid" ]
    (Analysis.Callgraph.callers cg "leaf");
  check_bool "looper recursive" true (Analysis.Callgraph.is_recursive cg "looper");
  check_bool "leaf not recursive" false (Analysis.Callgraph.is_recursive cg "leaf");
  check_int "one call block of mid->leaf" 1
    (List.length (Analysis.Callgraph.call_sites cg ~caller:"mid" ~callee:"leaf"));
  let order = Analysis.Callgraph.bottom_up cg in
  let pos name = Option.get (List.find_index (String.equal name) order) in
  check_bool "leaf before mid" true (pos "leaf" < pos "mid");
  check_bool "mid before k" true (pos "mid" < pos "k")

(* ---- Costmodel & Profile ---- *)

let test_costmodel () =
  let w = Analysis.Costmodel.default_weights in
  check_int "alu" w.Analysis.Costmodel.alu
    (Analysis.Costmodel.inst_cost w (T.Bin (T.Add, 0, T.Imm (T.I 1), T.Imm (T.I 2))));
  check_int "special" w.Analysis.Costmodel.special
    (Analysis.Costmodel.inst_cost w (T.Un (T.Sqrt, 0, T.Imm (T.F 2.0))));
  check_int "memory" w.Analysis.Costmodel.memory
    (Analysis.Costmodel.inst_cost w (T.Load (0, T.Imm (T.I 0))));
  check_int "barrier" w.Analysis.Costmodel.barrier (Analysis.Costmodel.inst_cost w (T.Join 0));
  let p =
    compile
      {|
kernel k(n: int) {
  var acc: int = 0;
  for i in 0 .. n {
    acc = acc + 1;
  }
}
|}
  in
  let f = Hashtbl.find p.T.funcs "k" in
  let g = Analysis.Cfg.of_func f in
  let loops = Analysis.Loops.compute g (Analysis.Dom.compute g) in
  let all_blocks = iset_of (Analysis.Cfg.nodes g) in
  let static = Analysis.Costmodel.region_cost w f all_blocks ~loops ~profile:None in
  check_bool "loop blocks amplified" true (static > 0.0);
  (* deeper nesting costs more than flat code of the same size *)
  let loop_body =
    iset_of
      (List.filter (fun b -> Analysis.Loops.depth_of loops b > 0) (Analysis.Cfg.nodes g))
  in
  let flat = ISet.diff all_blocks loop_body in
  let body_cost = Analysis.Costmodel.region_cost w f loop_body ~loops ~profile:None in
  let flat_cost = Analysis.Costmodel.region_cost w f flat ~loops ~profile:None in
  check_bool "loop body dominates" true (body_cost > flat_cost)

let test_profile () =
  let pr = Analysis.Profile.empty () in
  check_bool "empty" true (Analysis.Profile.is_empty pr);
  Analysis.Profile.record pr ~func:"k" ~block:1 ~count:10;
  Analysis.Profile.record pr ~func:"k" ~block:1 ~count:5;
  check_int "accumulates" 15 (Analysis.Profile.count pr ~func:"k" ~block:1);
  check_int "absent is zero" 0 (Analysis.Profile.count pr ~func:"k" ~block:9);
  let pr2 = Analysis.Profile.empty () in
  Analysis.Profile.record pr2 ~func:"k" ~block:1 ~count:1;
  Analysis.Profile.record pr2 ~func:"k" ~block:2 ~count:2;
  let m = Analysis.Profile.merge pr pr2 in
  check_int "merge sums" 16 (Analysis.Profile.count m ~func:"k" ~block:1);
  check_int "merge keeps" 2 (Analysis.Profile.count m ~func:"k" ~block:2);
  check (Alcotest.option (Alcotest.float 1e-9)) "trip estimate" (Some 8.0)
    (Analysis.Profile.trip_estimate m ~func:"k" ~header:1 ~entries:2);
  check (Alcotest.option (Alcotest.float 1e-9)) "trip estimate missing" None
    (Analysis.Profile.trip_estimate m ~func:"k" ~header:9 ~entries:2)

let qtest = QCheck_alcotest.to_alcotest

let tests =
  [
    ( "analysis.cfg",
      [
        Alcotest.test_case "basics" `Quick test_cfg_basics;
        Alcotest.test_case "reverse" `Quick test_cfg_reverse;
        Alcotest.test_case "unreachable excluded" `Quick test_cfg_unreachable_excluded;
      ] );
    ( "analysis.dom",
      [
        Alcotest.test_case "diamond" `Quick test_dom_diamond;
        Alcotest.test_case "postdom diamond" `Quick test_postdom_diamond;
        Alcotest.test_case "loop" `Quick test_dom_loop;
        qtest prop_dom_sanity;
      ] );
    ( "analysis.dataflow",
      [
        Alcotest.test_case "forward" `Quick test_dataflow_forward_reachability;
        Alcotest.test_case "backward" `Quick test_dataflow_backward_liveness_like;
      ] );
    ( "analysis.loops",
      [
        Alcotest.test_case "nested" `Quick test_loops_nested;
        Alcotest.test_case "none" `Quick test_loops_none;
      ] );
    ( "analysis.divergence",
      [
        Alcotest.test_case "sources" `Quick test_divergence_sources;
        Alcotest.test_case "control dependence" `Quick test_divergence_control_dependence;
        Alcotest.test_case "memory" `Quick test_divergence_memory;
      ] );
    ( "analysis.barriers",
      [
        Alcotest.test_case "joined analysis (Fig 4b)" `Quick test_joined_analysis_figure4;
        Alcotest.test_case "live analysis (Fig 4c)" `Quick test_liveness_analysis_figure4;
        Alcotest.test_case "conflict (Fig 5)" `Quick test_conflicts_figure5;
        Alcotest.test_case "no conflict when nested" `Quick test_no_conflict_when_nested;
      ] );
    ("analysis.callgraph", [ Alcotest.test_case "basics" `Quick test_callgraph ]);
    ( "analysis.costmodel",
      [
        Alcotest.test_case "costs" `Quick test_costmodel;
        Alcotest.test_case "profile" `Quick test_profile;
      ] );
  ]
