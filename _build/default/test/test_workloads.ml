(* Tests over the Table-2 workloads and the synthetic corpus.

   The central correctness property: for every workload, the baseline,
   speculative, and automatic compilations produce bit-identical kernel
   outputs — the synchronization passes reorder execution in time but
   never change any thread's dataflow. *)

module T = Ir.Types

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* Shrink a workload (fewer tasks per thread) so the three-way comparison
   stays fast; the launch width stays at the paper configuration because
   the output checks expect it. *)
let shrink (spec : Workloads.Spec.t) =
  { spec with Workloads.Spec.coarsen = Option.map (fun f -> min f 2) spec.Workloads.Spec.coarsen }

let memory_image (o : Core.Runner.outcome) =
  Simt.Memsys.dump o.Core.Runner.memory ~base:0
    ~len:(Simt.Memsys.size o.Core.Runner.memory)

let three_way_test (spec : Workloads.Spec.t) () =
  let spec = shrink spec in
  let baseline = Core.Runner.run_spec Core.Compile.baseline spec in
  let speculative = Core.Runner.run_spec Core.Compile.speculative spec in
  let automatic = Core.Runner.run_spec Core.Compile.automatic spec in
  (match baseline.Core.Runner.check with
  | Ok () -> ()
  | Error e -> Alcotest.failf "baseline check: %s" e);
  (match speculative.Core.Runner.check with
  | Ok () -> ()
  | Error e -> Alcotest.failf "speculative check: %s" e);
  (match automatic.Core.Runner.check with
  | Ok () -> ()
  | Error e -> Alcotest.failf "automatic check: %s" e);
  check_bool "baseline = speculative outputs" true
    (memory_image baseline = memory_image speculative);
  check_bool "baseline = automatic outputs" true (memory_image baseline = memory_image automatic);
  (* every thread terminated in all three *)
  let finished (o : Core.Runner.outcome) = o.Core.Runner.metrics.Simt.Metrics.threads_finished in
  check_int "speculative finished" (finished baseline) (finished speculative);
  check_int "automatic finished" (finished baseline) (finished automatic)

let improvement_test name () =
  (* At paper configuration, the headline workloads must show real SIMT
     efficiency gains under speculative reconvergence. *)
  let spec = Workloads.Registry.find name in
  let baseline = Core.Runner.run_spec Core.Compile.baseline spec in
  let optimized = Core.Runner.run_spec Core.Compile.speculative spec in
  let be = Core.Runner.efficiency baseline and oe = Core.Runner.efficiency optimized in
  if oe <= be then Alcotest.failf "%s: efficiency %.3f -> %.3f (expected a gain)" name be oe

let auto_improvement_test name () =
  let spec = Workloads.Registry.find name in
  let baseline = Core.Runner.run_spec Core.Compile.baseline spec in
  let optimized = Core.Runner.run_spec Core.Compile.automatic spec in
  let be = Core.Runner.efficiency baseline and oe = Core.Runner.efficiency optimized in
  if oe <= be then Alcotest.failf "%s: auto efficiency %.3f -> %.3f (expected a gain)" name be oe

let test_registry () =
  check_int "ten workloads" 10 (List.length Workloads.Registry.all);
  check_int "two fig-9 subjects" 2 (List.length Workloads.Registry.soft_barrier_subjects);
  check_bool "find works" true
    (String.equal (Workloads.Registry.find "rsbench").Workloads.Spec.name "rsbench");
  (match Workloads.Registry.find "nope" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found");
  (* names unique *)
  let names = List.map (fun (s : Workloads.Spec.t) -> s.Workloads.Spec.name) Workloads.Registry.all in
  check_int "names unique" (List.length names) (List.length (List.sort_uniq compare names))

let test_descriptions_nonempty () =
  List.iter
    (fun (s : Workloads.Spec.t) ->
      check_bool (s.Workloads.Spec.name ^ " described") true
        (String.length s.Workloads.Spec.description > 20))
    Workloads.Registry.all

(* ---- corpus ---- *)

let test_corpus_deterministic () =
  let a = Workloads.Corpus.generate ~seed:1 ~count:24 in
  let b = Workloads.Corpus.generate ~seed:1 ~count:24 in
  let c = Workloads.Corpus.generate ~seed:2 ~count:24 in
  check_bool "same seed same corpus" true
    (List.for_all2
       (fun (x : Workloads.Corpus.app) (y : Workloads.Corpus.app) ->
         String.equal x.Workloads.Corpus.source y.Workloads.Corpus.source)
       a b);
  check_bool "different seed differs somewhere" true
    (List.exists2
       (fun (x : Workloads.Corpus.app) (y : Workloads.Corpus.app) ->
         not (String.equal x.Workloads.Corpus.source y.Workloads.Corpus.source))
       a c)

let test_corpus_all_run () =
  let apps = Workloads.Corpus.generate ~seed:99 ~count:40 in
  List.iter
    (fun (app : Workloads.Corpus.app) ->
      let outcome =
        Core.Runner.run_source ~config:Workloads.Corpus.config ~init:Workloads.Corpus.init
          Core.Compile.baseline ~source:app.Workloads.Corpus.source
          ~args:app.Workloads.Corpus.args
      in
      check_int
        (Printf.sprintf "app %d finished" app.Workloads.Corpus.id)
        32 outcome.Core.Runner.metrics.Simt.Metrics.threads_finished)
    apps

let test_corpus_shape_mix () =
  let apps = Workloads.Corpus.generate ~seed:520 ~count:520 in
  let count shape =
    List.length (List.filter (fun (a : Workloads.Corpus.app) -> a.Workloads.Corpus.shape = shape) apps)
  in
  let convergentish =
    count Workloads.Corpus.Convergent + count Workloads.Corpus.Memory_streaming
  in
  check_bool "mostly convergent (divergent workloads are a small fraction)" true
    (convergentish > 300);
  check_bool "some divergent-loop apps" true (count Workloads.Corpus.Divergent_loop > 5);
  check_bool "some imbalanced-branch apps" true (count Workloads.Corpus.Imbalanced_branch > 5)

let tests =
  [
    ( "workloads.correctness",
      List.map
        (fun (spec : Workloads.Spec.t) ->
          Alcotest.test_case
            (spec.Workloads.Spec.name ^ ": identical outputs across modes")
            `Slow (three_way_test spec))
        Workloads.Registry.all );
    ( "workloads.improvements",
      List.map
        (fun name -> Alcotest.test_case (name ^ ": efficiency gain") `Slow (improvement_test name))
        [ "rsbench"; "pathtracer"; "mc-gpu"; "gpu-mcml"; "common-call"; "mcb" ]
      @ List.map
          (fun name ->
            Alcotest.test_case (name ^ ": automatic gain") `Slow (auto_improvement_test name))
          [ "meiyamd5"; "optix-trace" ] );
    ( "workloads.registry",
      [
        Alcotest.test_case "registry" `Quick test_registry;
        Alcotest.test_case "descriptions" `Quick test_descriptions_nonempty;
      ] );
    ( "workloads.corpus",
      [
        Alcotest.test_case "deterministic" `Quick test_corpus_deterministic;
        Alcotest.test_case "all apps run" `Slow test_corpus_all_run;
        Alcotest.test_case "shape mix" `Quick test_corpus_shape_mix;
      ] );
  ]
