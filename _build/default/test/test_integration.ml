(* End-to-end integration tests: randomized structured kernels compiled
   under every mode must agree bit-for-bit and never deadlock; the
   experiment plumbing must produce paper-shaped data. *)

module T = Ir.Types
module G = QCheck2.Gen

let check = Alcotest.check
let check_bool = check Alcotest.bool

(* ---- random structured program generator ----

   Generates kernels from the divergence grammar the paper targets:
   nested loops and conditionals over divergent values (rand, randint,
   tid), accumulating into a float and storing per-thread output. The
   property: all three compilation modes agree and terminate. *)

let indent depth = String.make (depth * 2) ' '

(* Loop variables need unique names per generated site (the language
   rejects same-scope redeclaration); a monotonic counter salts them. *)
let fresh_var =
  let n = ref 0 in
  fun prefix ->
    incr n;
    Printf.sprintf "%s%d" prefix !n

let rec gen_stmts ~depth ~fuel : string list G.t =
  if fuel <= 0 then G.return []
  else
    G.(
      let* n = int_range 1 3 in
      let* stmts = list_repeat n (gen_stmt ~depth ~fuel:(fuel - 1)) in
      return (List.concat stmts))

and gen_stmt ~depth ~fuel : string list G.t =
  let pad = indent depth in
  let leaf =
    G.oneofl
      [
        [ pad ^ "acc = acc + 0.25;" ];
        [ pad ^ "acc = acc * 0.9 + 0.1;" ];
        [ pad ^ "acc = acc + sin(acc) * 0.125;" ];
        [ pad ^ "acc = acc + float(randint(4));" ];
        [ pad ^ "acc = fmin(acc, 100.0);" ];
      ]
  in
  if fuel <= 0 || depth >= 4 then leaf
  else
    G.(
      let* choice = int_range 0 9 in
      match choice with
      | 0 | 1 ->
        (* divergent conditional *)
        let* body = gen_stmts ~depth:(depth + 1) ~fuel:(fuel - 1) in
        let* has_else = bool in
        let* else_body = gen_stmts ~depth:(depth + 1) ~fuel:(fuel - 1) in
        let* denom = int_range 2 4 in
        let then_part =
          (pad ^ Printf.sprintf "if (randint(%d) == 0) {" denom) :: body
        in
        if has_else then
          return (then_part @ [ pad ^ "} else {" ] @ else_body @ [ pad ^ "}" ])
        else return (then_part @ [ pad ^ "}" ])
      | 2 | 3 ->
        (* divergent-trip while loop with a structural bound *)
        let* body = gen_stmts ~depth:(depth + 1) ~fuel:(fuel - 1) in
        let* cap = int_range 3 10 in
        let v = fresh_var "w" in
        return
          ([
             pad ^ Printf.sprintf "var %s: int = 0;" v;
             pad ^ Printf.sprintf "while (%s < randint(%d) + 1) {" v cap;
           ]
          @ body
          @ [ pad ^ Printf.sprintf "  %s = %s + 1;" v v; pad ^ "}" ])
      | 4 | 5 ->
        (* uniform for loop *)
        let* body = gen_stmts ~depth:(depth + 1) ~fuel:(fuel - 1) in
        let* trip = int_range 2 6 in
        let v = fresh_var "i" in
        return
          ((pad ^ Printf.sprintf "for %s in 0 .. %d {" v trip) :: body @ [ pad ^ "}" ])
      | _ -> leaf)

(* Optionally turn the first generated while-loop into a predicted
   reconvergence region: label its body and add the Predict up front, so
   the speculative pipeline exercises real user hints on random
   programs. *)
let add_prediction body =
  let rec annotate = function
    | [] -> None
    | line :: rest when String.length (String.trim line) > 6
                        && String.sub (String.trim line) 0 6 = "while " ->
      Some ((line ^ "\n" ^ "      Lp:") :: rest)
    | line :: rest -> Option.map (fun r -> line :: r) (annotate rest)
  in
  match annotate body with
  | Some annotated -> ("  predict Lp;" :: annotated, true)
  | None -> (body, false)

let gen_kernel : string G.t =
  G.(
    let* body = gen_stmts ~depth:1 ~fuel:4 in
    let* want_hint = bool in
    let body, _ = if want_hint then add_prediction body else (body, false) in
    return
      (String.concat "\n"
         ([ "global out: float[64];"; "kernel k() {"; "  var acc: float = float(lane());" ]
         @ body
         @ [ "  out[tid()] = acc;"; "}" ])))

let config = { Simt.Config.default with Simt.Config.n_warps = 1; max_issues = 2_000_000 }

let image (o : Core.Runner.outcome) =
  Simt.Memsys.dump o.Core.Runner.memory ~base:0 ~len:(Simt.Memsys.size o.Core.Runner.memory)

let prop_modes_agree =
  QCheck2.Test.make ~name:"random kernels: all modes agree, none deadlock" ~count:60
    ~print:(fun src -> src) gen_kernel (fun src ->
      let run options = Core.Runner.run_source ~config options ~source:src ~args:[] in
      let baseline = run Core.Compile.baseline in
      let speculative = run Core.Compile.speculative in
      let automatic = run Core.Compile.automatic in
      let none = run { Core.Compile.baseline with Core.Compile.mode = Core.Compile.No_sync } in
      image baseline = image speculative
      && image baseline = image automatic
      && image baseline = image none
      && baseline.Core.Runner.metrics.Simt.Metrics.threads_finished = 32)

let prop_static_deconfliction_agrees =
  QCheck2.Test.make ~name:"random kernels: static deconfliction agrees too" ~count:30
    ~print:(fun src -> src) gen_kernel (fun src ->
      let run options = Core.Runner.run_source ~config options ~source:src ~args:[] in
      let dynamic = run Core.Compile.speculative in
      let static =
        run
          {
            Core.Compile.speculative with
            Core.Compile.mode = Core.Compile.Speculative Passes.Deconflict.Static;
          }
      in
      image dynamic = image static)

(* ---- experiment plumbing ---- *)

let test_measure_one_improves () =
  let spec = Workloads.Registry.find "pathtracer" in
  let ms = Core.Experiments.measure_table2 () in
  ignore spec;
  let row =
    List.find (fun (m : Core.Experiments.app_measurement) -> m.name = "pathtracer") ms
  in
  check_bool "pathtracer improves" true
    (Core.Runner.efficiency row.Core.Experiments.optimized
    > Core.Runner.efficiency row.Core.Experiments.baseline)

let test_fig9_shapes () =
  (* Small sweep: PathTracer prefers the full barrier; XSBench peaks at a
     small threshold (§5.3). *)
  let series = Core.Experiments.figure9 ~thresholds:[ 2; 32 ] () in
  let find name =
    List.find (fun (s : Core.Experiments.fig9_series) -> s.subject = name) series
  in
  let speedup_at (s : Core.Experiments.fig9_series) k =
    (List.find (fun (p : Core.Experiments.fig9_point) -> p.threshold = k) s.points)
      .Core.Experiments.speedup
  in
  let pt = find "pathtracer" and xs = find "xsbench" in
  check_bool "pathtracer best at full barrier" true (speedup_at pt 32 > speedup_at pt 2);
  check_bool "xsbench best at small threshold" true (speedup_at xs 2 > speedup_at xs 32);
  (* efficiency rises with the threshold for both *)
  let eff_at (s : Core.Experiments.fig9_series) k =
    (List.find (fun (p : Core.Experiments.fig9_point) -> p.threshold = k) s.points)
      .Core.Experiments.efficiency
  in
  check_bool "xsbench efficiency rises with threshold" true (eff_at xs 32 > eff_at xs 2)

let test_fig10_parity () =
  let rows = Core.Experiments.figure10 () in
  List.iter
    (fun (r : Core.Experiments.fig10_row) ->
      match r.Core.Experiments.matches_annotated with
      | Some ok ->
        check_bool (r.Core.Experiments.app ^ ": automatic matches annotated") true ok
      | None -> ())
    rows

let test_profile_guided_auto () =
  (* §4.5: profile guidance replaces the static trip-count guesses; on
     meiyamd5 it must find the same loop-merge opportunity and win. *)
  let spec = Workloads.Registry.find "meiyamd5" in
  let baseline = Core.Runner.run_spec Core.Compile.baseline spec in
  let options =
    {
      Core.Compile.automatic with
      Core.Compile.mode =
        Core.Compile.Automatic
          {
            params = Passes.Auto_detect.default_params;
            strategy = Passes.Deconflict.Dynamic;
            profile = Some baseline.Core.Runner.profile;
          };
    }
  in
  let guided = Core.Runner.run_spec options spec in
  check_bool "profile-guided detection found candidates" true
    (guided.compiled.Core.Compile.candidates <> []);
  check_bool "profile-guided compilation wins" true
    (Core.Runner.speedup ~baseline ~optimized:guided > 1.05)

let test_funnel_shape () =
  let f = Core.Experiments.corpus_funnel ~seed:520 ~count:130 () in
  check_bool "funnel narrows" true
    (f.Core.Experiments.total > f.Core.Experiments.low_efficiency
    && f.Core.Experiments.low_efficiency >= f.Core.Experiments.detected
    && f.Core.Experiments.detected >= f.Core.Experiments.significant);
  check_bool "some detected" true (f.Core.Experiments.detected > 0)

let qtest = QCheck_alcotest.to_alcotest

let tests =
  [
    ( "integration.random-programs",
      [ qtest ~long:false prop_modes_agree; qtest ~long:false prop_static_deconfliction_agrees ]
    );
    ( "integration.experiments",
      [
        Alcotest.test_case "pathtracer improves" `Slow test_measure_one_improves;
        Alcotest.test_case "figure 9 shapes" `Slow test_fig9_shapes;
        Alcotest.test_case "figure 10 parity" `Slow test_fig10_parity;
        Alcotest.test_case "profile-guided detection" `Slow test_profile_guided_auto;
        Alcotest.test_case "funnel narrows" `Slow test_funnel_shape;
      ] );
  ]
