(* Differential test: an independent OCaml reference implementation of the
   MeiyaMD5 workload, computed straight from its per-thread sequential
   semantics, must match the full pipeline (MiniSIMT source → coarsening →
   lowering → synchronization passes → linearizer → SIMT simulator)
   bit-for-bit, in every compilation mode.

   MeiyaMD5 is the right subject: it is pure integer arithmetic (no
   floating-point rounding-order concerns) and draws from the per-thread
   PRNG, so the test also pins down the exact RNG stream contract
   (streams keyed by (seed, warp, lane); a coarsened thread consumes all
   of its tasks from one stream, in task order). *)

let check = Alcotest.check
let check_bool = check Alcotest.bool

let imax = 2147483647

(* One simulated task of the kernel in lib/workloads/meiyamd5.ml, executed
   for virtual thread id [vtid] with draws taken from [rng]. Must mirror
   the MiniSIMT source exactly, including the order of randint draws. *)
let reference_task rng ~vtid ~max_len ~targets =
  let length =
    let short = 2 + Support.Splitmix.int rng 8 in
    if Support.Splitmix.int rng 5 = 0 then (max_len / 2) + Support.Splitmix.int rng (max_len / 2)
    else short
  in
  let a = ref 1732584193
  and b = ref 271733879
  and c = ref 1732584194
  and d = ref 271733878 in
  for block = 0 to length - 1 do
    let m = (block * 1103515245) + (vtid * 12345) in
    let f1 = (!b mod 65536 * (!c mod 65536)) + (!d mod 65536) in
    a := (!a + f1 + m) mod imax;
    a := ((!a * 131) + !b) mod imax;
    a := ((!a * 31) + (!b mod 4096 * (!c mod 4096))) mod imax;
    let f2 = (!a mod 65536 * (!d mod 65536)) + (!c mod 65536) in
    b := (!b + f2 + (m * 7)) mod imax;
    b := ((!b * 131) + !c) mod imax;
    b := ((!b * 37) + (!c mod 4096 * (!d mod 4096))) mod imax;
    let f3 = (!a mod 65536) + (!b mod 65536 * (!d mod 65536)) in
    c := (!c + f3 + (m * 13)) mod imax;
    c := ((!c * 41) + (!a mod 4096 * (!d mod 4096))) mod imax;
    d := (!d + (!a mod 65536 * (!b mod 65536)) + (m * 29)) mod imax;
    d := ((!d * 43) + (!a mod 4096 * (!b mod 4096))) mod imax
  done;
  let digest = (!a + !b + !c + !d) mod imax in
  if digest mod 64 = targets.(digest mod 64) mod 64 then 1 else 0

(* The targets table, regenerated exactly as the workload's [init] fills
   it. *)
let reference_targets () =
  let rng = Support.Splitmix.of_ints 0x77 0xd5d5 7 in
  Array.init 64 (fun _ -> Support.Splitmix.int rng 1000000)

let reference_outputs (config : Simt.Config.t) ~coarsen ~max_len =
  let targets = reference_targets () in
  let n_threads = config.n_warps * config.warp_size in
  let found = Hashtbl.create 64 in
  for wid = 0 to config.n_warps - 1 do
    for lane = 0 to config.warp_size - 1 do
      let tid = (wid * config.warp_size) + lane in
      let rng = Support.Splitmix.of_ints config.seed wid lane in
      (* a coarsened thread runs its tasks in order on one stream; task c
         simulates virtual thread tid + c * n_threads *)
      for c = 0 to coarsen - 1 do
        let vtid = tid + (c * n_threads) in
        Hashtbl.replace found vtid (reference_task rng ~vtid ~max_len ~targets)
      done
    done
  done;
  found

let run_mode options =
  let spec = Workloads.Registry.find "meiyamd5" in
  let outcome = Core.Runner.run_spec options spec in
  let base, size =
    Hashtbl.find outcome.Core.Runner.compiled.Core.Compile.program.Ir.Types.globals "found"
  in
  (outcome, Simt.Memsys.dump outcome.Core.Runner.memory ~base ~len:size)

let test_against_reference options_name options () =
  let spec = Workloads.Registry.find "meiyamd5" in
  let config = spec.Workloads.Spec.tweak_config Simt.Config.default in
  let coarsen = Option.get spec.Workloads.Spec.coarsen in
  let max_len =
    match spec.Workloads.Spec.args with
    | [ Ir.Types.I n ] -> n
    | _ -> Alcotest.fail "unexpected meiyamd5 arguments"
  in
  let expected = reference_outputs config ~coarsen ~max_len in
  let _, cells = run_mode options in
  let checked = ref 0 in
  Hashtbl.iter
    (fun vtid hit ->
      incr checked;
      match cells.(vtid) with
      | Ir.Types.I simulated ->
        if simulated <> hit then
          Alcotest.failf "%s: found[%d] = %d, reference says %d" options_name vtid simulated hit
      | Ir.Types.F _ -> Alcotest.failf "%s: found[%d] holds a float" options_name vtid)
    expected;
  check_bool "checked every virtual thread" true
    (!checked = config.Simt.Config.n_warps * config.Simt.Config.warp_size * coarsen)

(* ---- mummer: an independent reference for the suffix-walk workload ---- *)

let mummer_tables () =
  (* regenerated exactly as lib/workloads/mummer.ml's [init] fills them,
     in the same draw order *)
  let rng = Support.Splitmix.of_ints 0x33 0x9a2 6 in
  let tree_child =
    Array.init 8192 (fun _ ->
        if Support.Splitmix.float rng < 0.06 then 0 else 1 + Support.Splitmix.int rng 8191)
  in
  let skewed () =
    if Support.Splitmix.float rng < 0.95 then 0 else 1 + Support.Splitmix.int rng 3
  in
  let tree_base = Array.init 8192 (fun _ -> skewed ()) in
  let query_bases = Array.init 16384 (fun _ -> skewed ()) in
  (tree_child, tree_base, query_bases)

let mummer_reference_task rng ~vtid ~query_len (tree_child, tree_base, query_bases) =
  let query_off = vtid * 4 in
  let node = ref (1 + Support.Splitmix.int rng 8191) in
  let depth = ref 0 in
  let matched = ref true in
  while !matched && !depth < query_len do
    let base_expected = tree_base.(!node mod 8192) in
    let q = query_bases.((query_off + !depth) mod 16384) in
    if q = base_expected then begin
      node := tree_child.(((!node * 4) + q) mod 8192);
      incr depth;
      if !node = 0 then matched := false
    end
    else matched := false
  done;
  !depth

let test_mummer_against_reference options_name options () =
  let spec = Workloads.Registry.find "mummer" in
  let config = spec.Workloads.Spec.tweak_config Simt.Config.default in
  let coarsen = Option.get spec.Workloads.Spec.coarsen in
  let query_len =
    match spec.Workloads.Spec.args with
    | [ Ir.Types.I n ] -> n
    | _ -> Alcotest.fail "unexpected mummer arguments"
  in
  let tables = mummer_tables () in
  let n_threads = config.Simt.Config.n_warps * config.Simt.Config.warp_size in
  let outcome = Core.Runner.run_spec options spec in
  let base, size =
    Hashtbl.find outcome.Core.Runner.compiled.Core.Compile.program.Ir.Types.globals
      "match_lengths"
  in
  let cells = Simt.Memsys.dump outcome.Core.Runner.memory ~base ~len:size in
  for wid = 0 to config.Simt.Config.n_warps - 1 do
    for lane = 0 to config.Simt.Config.warp_size - 1 do
      let tid = (wid * config.Simt.Config.warp_size) + lane in
      let rng = Support.Splitmix.of_ints config.Simt.Config.seed wid lane in
      for c = 0 to coarsen - 1 do
        let vtid = tid + (c * n_threads) in
        let expected = mummer_reference_task rng ~vtid ~query_len tables in
        match cells.(vtid) with
        | Ir.Types.I simulated ->
          if simulated <> expected then
            Alcotest.failf "%s: match_lengths[%d] = %d, reference says %d" options_name vtid
              simulated expected
        | Ir.Types.F _ -> Alcotest.failf "%s: match_lengths[%d] holds a float" options_name vtid
      done
    done
  done

let tests =
  [
    ( "differential.mummer",
      [
        Alcotest.test_case "baseline matches OCaml reference" `Slow
          (test_mummer_against_reference "baseline" Core.Compile.baseline);
        Alcotest.test_case "specrecon matches OCaml reference" `Slow
          (test_mummer_against_reference "specrecon" Core.Compile.speculative);
      ] );
    ( "differential.meiyamd5",
      [
        Alcotest.test_case "baseline matches OCaml reference" `Slow
          (test_against_reference "baseline" Core.Compile.baseline);
        Alcotest.test_case "specrecon matches OCaml reference" `Slow
          (test_against_reference "specrecon" Core.Compile.speculative);
        Alcotest.test_case "automatic matches OCaml reference" `Slow
          (test_against_reference "automatic" Core.Compile.automatic);
      ] );
  ]
