(* Tests for the optimization utilities: register liveness, dead code
   elimination, dead-barrier cleanup, and the AST pretty-printer's
   parse/print round trip. *)

module T = Ir.Types
module B = Ir.Builder
module ISet = Analysis.Sets.Int_set

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* ---- register liveness ---- *)

let test_reg_liveness_straightline () =
  let p = B.create_program () in
  let base = B.alloc_global p "out" 8 in
  let f = B.create_func p "k" ~params:0 in
  B.set_kernel p "k";
  let a = B.fresh_reg f and b = B.fresh_reg f and dead = B.fresh_reg f in
  B.append f f.T.entry (T.Tid a);
  B.append f f.T.entry (T.Bin (T.Add, b, T.Reg a, T.Imm (T.I 1)));
  B.append f f.T.entry (T.Bin (T.Mul, dead, T.Reg a, T.Imm (T.I 2)));
  B.append f f.T.entry (T.Store (T.Imm (T.I base), T.Reg b));
  B.set_term f f.T.entry T.Exit;
  let lv = Analysis.Reg_liveness.run f in
  check_bool "nothing live in" true (ISet.is_empty (Analysis.Reg_liveness.live_in lv f.T.entry));
  (* after the Tid, [a] is live (used by both Bins) *)
  check_bool "a live after def" true
    (ISet.mem a (Analysis.Reg_liveness.live_after lv ~block:f.T.entry ~index:0));
  (* after the Mul, only [b] is live (feeds the store) *)
  let after_mul = Analysis.Reg_liveness.live_after lv ~block:f.T.entry ~index:2 in
  check_bool "b live before store" true (ISet.mem b after_mul);
  check_bool "dead reg not live" false (ISet.mem dead after_mul)

let test_reg_liveness_branch () =
  let p = B.create_program () in
  let f = B.create_func p "k" ~params:0 in
  B.set_kernel p "k";
  let c = B.fresh_reg f and x = B.fresh_reg f in
  let then_b = B.add_block f and join = B.add_block f in
  B.append f f.T.entry (T.Tid c);
  B.append f f.T.entry (T.Mov (x, T.Imm (T.I 1)));
  B.set_term f f.T.entry (T.Br { cond = T.Reg c; if_true = then_b; if_false = join });
  B.append f then_b (T.Bin (T.Add, x, T.Reg x, T.Imm (T.I 1)));
  B.set_term f then_b (T.Jump join);
  B.append f join (T.Store (T.Imm (T.I 0), T.Reg x));
  B.set_term f join T.Exit;
  ignore (B.alloc_global p "g" 4);
  let lv = Analysis.Reg_liveness.run f in
  check_bool "x live into then" true (ISet.mem x (Analysis.Reg_liveness.live_in lv then_b));
  check_bool "x live into join" true (ISet.mem x (Analysis.Reg_liveness.live_in lv join));
  check_bool "c dead after branch" false (ISet.mem c (Analysis.Reg_liveness.live_in lv join))

(* ---- cleanup: DCE ---- *)

let count_insts (p : T.program) =
  Hashtbl.fold
    (fun _ (f : T.func) acc ->
      let n = ref 0 in
      T.iter_blocks f (fun b -> n := !n + List.length b.T.insts);
      acc + !n)
    p.funcs 0

let test_dce_removes_dead_chain () =
  let src =
    {|
global out: int[64];
kernel k() {
  let used = tid() * 2;
  let dead1 = used + 5;
  let dead2 = dead1 * dead1;
  out[tid()] = used;
}
|}
  in
  let p = Front.Lower.compile_source src in
  let before = count_insts p in
  let report = Passes.Cleanup.run p in
  check_bool "removed the dead chain" true (report.Passes.Cleanup.dce_removed >= 2);
  check_bool "program shrank" true (count_insts p < before);
  Ir.Verifier.check_program_exn p

let test_dce_keeps_rng_draws () =
  (* An unused rand() still advances the stream: removing it would change
     later draws. DCE must keep it. *)
  let src =
    {|
global out: float[64];
kernel k() {
  let unused = rand();
  out[tid()] = rand();
}
|}
  in
  let with_cleanup =
    Core.Runner.run_source
      ~config:{ Simt.Config.default with Simt.Config.n_warps = 1 }
      Core.Compile.baseline ~source:src ~args:[]
  in
  let without_cleanup =
    Core.Runner.run_source
      ~config:{ Simt.Config.default with Simt.Config.n_warps = 1 }
      { Core.Compile.baseline with Core.Compile.cleanup = false }
      ~source:src ~args:[]
  in
  let dump (o : Core.Runner.outcome) = Simt.Memsys.dump o.Core.Runner.memory ~base:0 ~len:32 in
  check_bool "cleanup preserves PRNG stream" true (dump with_cleanup = dump without_cleanup)

let test_dce_semantics_preserved () =
  (* Dead-looking code interleaved with live code: outputs must agree
     with cleanup on and off. *)
  let src =
    {|
global out: float[64];
kernel k() {
  var acc: float = 0.0;
  for i in 0 .. 6 {
    let dead = float(i) * 3.0;
    let alive = float(i) + 1.0;
    if (randint(2) == 0) { acc = acc + alive; }
  }
  out[tid()] = acc;
}
|}
  in
  let config = { Simt.Config.default with Simt.Config.n_warps = 1 } in
  let on = Core.Runner.run_source ~config Core.Compile.speculative ~source:src ~args:[] in
  let off =
    Core.Runner.run_source ~config
      { Core.Compile.speculative with Core.Compile.cleanup = false }
      ~source:src ~args:[]
  in
  let dump (o : Core.Runner.outcome) = Simt.Memsys.dump o.Core.Runner.memory ~base:0 ~len:64 in
  check_bool "same outputs" true (dump on = dump off);
  check_bool "cleanup never adds issues" true
    (on.Core.Runner.metrics.Simt.Metrics.issues <= off.Core.Runner.metrics.Simt.Metrics.issues)

(* ---- cleanup: dead barriers ---- *)

let test_dead_barrier_removal () =
  let p = Front.Lower.compile_source "global out: int[64];\nkernel k() { out[tid()] = 1; }" in
  let f = Hashtbl.find p.T.funcs "k" in
  (* a joined-but-never-waited barrier, and a waited-but-never-joined one *)
  let b_no_wait = B.fresh_barrier p in
  let b_no_join = B.fresh_barrier p in
  B.prepend f f.T.entry (T.Join b_no_wait);
  B.prepend f f.T.entry (T.Cancel b_no_wait);
  B.prepend f f.T.entry (T.Wait b_no_join);
  let report = Passes.Cleanup.run p in
  check_int "three dead barrier ops removed" 3 report.Passes.Cleanup.dead_barrier_ops_removed;
  check_bool "no barrier instruction left" true
    (let found = ref false in
     T.iter_blocks f (fun b -> List.iter (fun i -> if T.is_barrier_inst i then found := true) b.T.insts);
     not !found)

let test_static_deconfliction_residue_cleaned () =
  (* Static deconfliction deletes the PDOM barrier's ops wholesale; any
     one-sided leftovers elsewhere are dead-barrier residue that cleanup
     sweeps. Compile a real workload statically and verify no
     never-waited joins survive. *)
  let options =
    {
      Core.Compile.speculative with
      Core.Compile.mode = Core.Compile.Speculative Passes.Deconflict.Static;
    }
  in
  let compiled =
    Core.Compile.compile options ~source:(Workloads.Registry.find "pathtracer").Workloads.Spec.source
  in
  let joined = ref ISet.empty and waited = ref ISet.empty in
  Hashtbl.iter
    (fun _ (f : T.func) ->
      T.iter_blocks f (fun b ->
          List.iter
            (fun i ->
              match i with
              | T.Join x | T.Rejoin x -> joined := ISet.add x !joined
              | T.Wait x | T.Wait_threshold (x, _) -> waited := ISet.add x !waited
              | _ -> ())
            b.T.insts))
    compiled.Core.Compile.program.T.funcs;
  check_bool "every joined barrier has a wait" true (ISet.subset !joined !waited);
  check_bool "every waited barrier has a join" true (ISet.subset !waited !joined)

(* ---- pretty-printer round trip ---- *)

let roundtrip src =
  let ast = Front.Parser.parse_string src in
  let printed = Front.Pretty.to_string ast in
  let reparsed =
    try Front.Parser.parse_string printed
    with Front.Parser.Parse_error (pos, msg) ->
      Alcotest.failf "reparse failed at %d:%d: %s\n--- printed ---\n%s" pos.Front.Ast.line
        pos.Front.Ast.col msg printed
  in
  if not (Front.Pretty.equal_program ast reparsed) then
    Alcotest.failf "round trip changed the program:\n--- printed ---\n%s" printed

let test_roundtrip_workloads () =
  List.iter
    (fun (spec : Workloads.Spec.t) -> roundtrip spec.Workloads.Spec.source)
    Workloads.Registry.all

let test_roundtrip_corpus () =
  List.iter
    (fun (app : Workloads.Corpus.app) -> roundtrip app.Workloads.Corpus.source)
    (Workloads.Corpus.generate ~seed:3 ~count:30)

let test_roundtrip_edge_cases () =
  roundtrip
    {|
global s: int;
global a: float[8];
func f(x: int, y: float) -> float { return y; }
kernel k(n: int) {
  var q: float = 1.5e3;
  let w = ((1 + 2) * 3) % 4;
  if (w < n && !(w == 2) || n > 0) { q = -q; } else { q = f(w, q); }
  L9:
  predict L9 threshold 7;
  predict func f;
  while (w < n) { break; }
  for z in 0 .. 4 { continue; }
  a[w] = q;
  s = w;
  return;
}
|}

let test_coarsened_roundtrip () =
  (* Coarsened ASTs are synthetic; they should still print and reparse. *)
  let ast = Front.Parser.parse_string (Workloads.Registry.find "rsbench").Workloads.Spec.source in
  let coarsened = Front.Coarsen.apply ast ~factor:4 in
  let printed = Front.Pretty.to_string coarsened in
  let reparsed = Front.Parser.parse_string printed in
  check_bool "coarsened round trip" true (Front.Pretty.equal_program coarsened reparsed);
  (* and the reparsed version lowers to a verifiable program *)
  Ir.Verifier.check_program_exn (Front.Lower.lower reparsed)

let tests =
  [
    ( "analysis.reg_liveness",
      [
        Alcotest.test_case "straight line" `Quick test_reg_liveness_straightline;
        Alcotest.test_case "branch" `Quick test_reg_liveness_branch;
      ] );
    ( "passes.cleanup",
      [
        Alcotest.test_case "dce removes dead chain" `Quick test_dce_removes_dead_chain;
        Alcotest.test_case "dce keeps rng draws" `Quick test_dce_keeps_rng_draws;
        Alcotest.test_case "dce preserves semantics" `Quick test_dce_semantics_preserved;
        Alcotest.test_case "dead barriers removed" `Quick test_dead_barrier_removal;
        Alcotest.test_case "static residue cleaned" `Quick
          test_static_deconfliction_residue_cleaned;
      ] );
    ( "front.pretty",
      [
        Alcotest.test_case "workload round trips" `Quick test_roundtrip_workloads;
        Alcotest.test_case "corpus round trips" `Quick test_roundtrip_corpus;
        Alcotest.test_case "edge cases" `Quick test_roundtrip_edge_cases;
        Alcotest.test_case "coarsened round trip" `Quick test_coarsened_roundtrip;
      ] );
  ]
