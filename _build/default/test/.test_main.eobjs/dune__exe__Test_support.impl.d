test/test_support.ml: Alcotest Float Format Int64 List QCheck2 QCheck_alcotest Support
