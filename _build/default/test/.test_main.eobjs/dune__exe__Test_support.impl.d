test/test_support.ml: Alcotest Domain Float Format Fun Int64 List Printf QCheck2 QCheck_alcotest Support Sys Unix
