test/test_integration.ml: Alcotest Core Ir List Option Passes Printf QCheck2 QCheck_alcotest Simt String Workloads
