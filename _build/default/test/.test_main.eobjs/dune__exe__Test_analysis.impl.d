test/test_analysis.ml: Alcotest Analysis Array Bool Front Hashtbl Ir List Option QCheck2 QCheck_alcotest String
