test/test_differential.ml: Alcotest Array Core Hashtbl Ir Option Simt Support Workloads
