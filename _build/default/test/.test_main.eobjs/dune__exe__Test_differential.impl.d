test/test_differential.ml: Alcotest Array Core Hashtbl Int64 Ir List Option Printf Simt Support Workloads
