test/test_workloads.ml: Alcotest Core Ir List Option Printf Simt String Workloads
