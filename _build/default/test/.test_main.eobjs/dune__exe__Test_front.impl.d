test/test_front.ml: Alcotest Array Core Front Ir List Simt String
