test/test_opt.ml: Alcotest Analysis Core Front Hashtbl Ir List Passes Simt Workloads
