test/test_passes.ml: Alcotest Analysis Core Front Hashtbl Ir List Passes Simt String Workloads
