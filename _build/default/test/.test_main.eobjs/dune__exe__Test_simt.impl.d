test/test_simt.ml: Alcotest Analysis Array Core Front Ir List Passes Printf QCheck2 QCheck_alcotest Simt Support
