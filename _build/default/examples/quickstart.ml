(* Quickstart: the Listing-1 pattern end to end.

   A kernel whose loop occasionally runs an expensive block (a divergent
   condition inside a loop, Figure 2(a)). We compile it three ways —
   no reconvergence at all, today's PDOM reconvergence, and Speculative
   Reconvergence driven by the [predict]/label annotations — run each on
   the SIMT simulator, and compare SIMT efficiency, runtime, and results.

   Run with: dune exec examples/quickstart.exe *)

let source =
  {|
global out: float[4096];

kernel quickstart(n: int) {
  var acc: float = 0.0;
  // The Predict directive marks the start of the prediction region; the
  // L1 label marks where threads should reconverge (Listing 1 of the
  // paper).
  predict L1;
  for i in 0 .. n {
    // prolog: cheap per-iteration work
    let r = randint(8);
    if (r == 0) {
      L1:
      // expensive common code: only ~1/8 of threads arrive here each
      // iteration, but all threads arrive eventually
      var j: int = 0;
      var x: float = acc + 1.0;
      while (j < 20) {
        x = x + sin(x) * 0.25;
        j = j + 1;
      }
      acc = x;
    }
    // epilog: cheap
    acc = acc + 0.001;
  }
  out[tid()] = acc;
}
|}

let () =
  let args = [ Ir.Types.I 64 ] in
  let run label options =
    let o = Core.Runner.run_source options ~source ~args in
    Printf.printf "%-22s SIMT efficiency %5.1f%%   cycles %8d   issues %8d\n" label
      (100.0 *. Core.Runner.efficiency o)
      o.Core.Runner.metrics.Simt.Metrics.cycles o.Core.Runner.metrics.Simt.Metrics.issues;
    o
  in
  print_endline "Compiling the Listing-1 kernel three ways:\n";
  let none = run "no reconvergence" { Core.Compile.baseline with Core.Compile.mode = Core.Compile.No_sync } in
  let base = run "PDOM (baseline)" Core.Compile.baseline in
  let spec = run "speculative reconv." Core.Compile.speculative in
  Printf.printf "\nspeedup over PDOM baseline: %.2fx\n"
    (Core.Runner.speedup ~baseline:base ~optimized:spec);
  (* The transformation must not change results: compare the output
     arrays cell by cell. *)
  let dump (o : Core.Runner.outcome) =
    let base_addr, size = Hashtbl.find o.compiled.Core.Compile.program.Ir.Types.globals "out" in
    Simt.Memsys.dump o.memory ~base:base_addr ~len:size
  in
  let equal = dump base = dump spec && dump none = dump base in
  Printf.printf "results identical across all three compilations: %b\n" equal;
  (match spec.compiled.Core.Compile.applied with
  | [ a ] ->
    Format.printf "\nsynchronization the compiler inserted: %a@." Passes.Specrecon.pp_applied a
  | _ -> ());
  if not equal then exit 1
