(* Loop Merge on RSBench (Figure 3 of the paper).

   Walks through the full methodology: the one-task-per-thread kernel is
   thread-coarsened into a tasks-loop, the user's Predict hint (hoisted
   outside the task loop) turns the divergent-trip inner loop into the
   reconvergence point, and the compiler's synchronization — including
   dynamic deconfliction against the PDOM barrier — produces the
   "repacked" execution of Figure 3(b).

   Run with: dune exec examples/loop_merge_rsbench.exe *)

let () =
  let spec = Workloads.Registry.find "rsbench" in
  Printf.printf "RSBench: %s\n\n" spec.Workloads.Spec.description;
  let baseline = Core.Runner.run_spec Core.Compile.baseline spec in
  let merged = Core.Runner.run_spec Core.Compile.speculative spec in
  let show label (o : Core.Runner.outcome) =
    Printf.printf "%-24s eff %5.1f%%  cycles %9d  issues %9d  barrier fires %6d\n" label
      (100.0 *. Core.Runner.efficiency o)
      o.Core.Runner.metrics.Simt.Metrics.cycles o.Core.Runner.metrics.Simt.Metrics.issues
      o.Core.Runner.metrics.Simt.Metrics.barrier_fires
  in
  show "PDOM baseline" baseline;
  show "Loop Merge (specrecon)" merged;
  Printf.printf "\nspeedup: %.2fx\n\n" (Core.Runner.speedup ~baseline ~optimized:merged);
  print_endline "Synchronization inserted by the compiler:";
  List.iter
    (fun a -> Format.printf "  %a@." Passes.Specrecon.pp_applied a)
    merged.compiled.Core.Compile.applied;
  (match merged.compiled.Core.Compile.deconflict_report with
  | Some r ->
    List.iter
      (fun (res : Passes.Deconflict.resolution) ->
        Printf.printf
          "  dynamic deconfliction: user barrier b%d kept, PDOM barrier b%d cancelled at the \
           reconvergence point\n"
          res.kept res.demoted)
      r.resolutions
  | None -> ());
  (* Show the inner-loop block profile: with Loop Merge the inner body
     runs in far fewer, far fuller issues. *)
  let total_lane_execs (o : Core.Runner.outcome) =
    (* lane-executions recorded per block; the kernel function holds them *)
    let p = o.Core.Runner.profile in
    let acc = ref 0 in
    Hashtbl.iter
      (fun _ (f : Ir.Types.func) ->
        Ir.Types.iter_blocks f (fun b ->
            acc := !acc + Analysis.Profile.count p ~func:f.Ir.Types.fname ~block:b.Ir.Types.id))
      o.compiled.Core.Compile.program.Ir.Types.funcs;
    !acc
  in
  Printf.printf "\nper-block lane executions (baseline %d, merged %d) — identical work,\n"
    (total_lane_execs baseline) (total_lane_execs merged);
  print_endline "repacked into fewer, fuller warp issues.\n";
  (* Where did the efficiency go? Split it by region (§5.2: gains land in
     the compute-intensive common code; the prolog/epilog pays). *)
  let stats = Core.Region_stats.measure Core.Compile.speculative spec in
  Format.printf "with Loop Merge:  %a@." Core.Region_stats.pp stats
