(* Soft-barrier tuning (§4.6 / Figure 9).

   Sweeps the soft-barrier threshold on the two Figure-9 subjects.
   PathTracer's refill (camera-ray generation) is cheap, so it runs
   fastest at full convergence (threshold = warp size); XSBench's refill
   (a binary search of the energy grid) is expensive, so it peaks when
   the inner loop keeps running until only a few threads remain.

   Run with: dune exec examples/pathtracer_tuning.exe *)

let () =
  let thresholds = [ 0; 2; 4; 8; 16; 24; 32 ] in
  List.iter
    (fun (spec : Workloads.Spec.t) ->
      Printf.printf "=== %s ===\n" spec.name;
      let baseline = Core.Runner.run_spec Core.Compile.baseline spec in
      Printf.printf "  baseline: eff %5.1f%%\n" (100.0 *. Core.Runner.efficiency baseline);
      let best = ref (0, 0.0) in
      List.iter
        (fun threshold ->
          let options =
            { Core.Compile.speculative with Core.Compile.threshold = Core.Compile.Set threshold }
          in
          let o = Core.Runner.run_spec options spec in
          let speedup = Core.Runner.speedup ~baseline ~optimized:o in
          if speedup > snd !best then best := (threshold, speedup);
          let bar = String.make (int_of_float (speedup *. 20.0)) '#' in
          Printf.printf "  threshold %2d: eff %5.1f%%  speedup %.2fx  %s\n" threshold
            (100.0 *. Core.Runner.efficiency o)
            speedup bar)
        thresholds;
      Printf.printf "  -> best threshold for %s: %d (%.2fx)\n\n" spec.name (fst !best)
        (snd !best))
    Workloads.Registry.soft_barrier_subjects
