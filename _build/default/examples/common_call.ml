(* Interprocedural reconvergence (Figure 2(c), §4.4).

   Both sides of a divergent branch call the same expensive function from
   different program points. PDOM reconvergence never sees the call
   bodies as common code, so the warp runs the function once per side;
   [predict func shade;] makes all threads wait at the callee's entry and
   run its body once, fully converged.

   Run with: dune exec examples/common_call.exe *)

let () =
  let spec = Workloads.Registry.find "common-call" in
  let baseline = Core.Runner.run_spec Core.Compile.baseline spec in
  let interproc = Core.Runner.run_spec Core.Compile.speculative spec in
  Printf.printf "PDOM baseline:              eff %5.1f%%  issues %7d\n"
    (100.0 *. Core.Runner.efficiency baseline)
    baseline.Core.Runner.metrics.Simt.Metrics.issues;
  Printf.printf "interprocedural specrecon:  eff %5.1f%%  issues %7d\n"
    (100.0 *. Core.Runner.efficiency interproc)
    interproc.Core.Runner.metrics.Simt.Metrics.issues;
  Printf.printf "speedup: %.2fx\n\n" (Core.Runner.speedup ~baseline ~optimized:interproc);
  print_endline "Interprocedural synchronization:";
  List.iter
    (fun a -> Format.printf "  %a@." Passes.Interproc.pp_applied a)
    interproc.compiled.Core.Compile.interproc_applied;
  (* The function body executes about half as many warp instructions once
     the two call paths converge at its entry. *)
  let issues (o : Core.Runner.outcome) = o.Core.Runner.metrics.Simt.Metrics.issues in
  if issues interproc >= issues baseline then begin
    print_endline "expected the interprocedural variant to issue fewer instructions!";
    exit 1
  end
