(* Automatic Speculative Reconvergence (§4.5 / Figure 10).

   Runs the detector over the unannotated workloads, shows the candidates
   it finds (pattern kind, predicted reconvergence point, cost-model
   score) and measures the upside of compiling them automatically —
   including a profile-guided second pass, where block frequencies from a
   baseline run replace the cost model's static trip-count guesses.

   Run with: dune exec examples/auto_detect.exe *)

let () =
  List.iter
    (fun (spec : Workloads.Spec.t) ->
      Printf.printf "=== %s ===\n" spec.name;
      let baseline = Core.Runner.run_spec Core.Compile.baseline spec in
      let auto = Core.Runner.run_spec Core.Compile.automatic spec in
      print_endline "  detector candidates:";
      List.iter
        (fun c -> Format.printf "    %a@." Passes.Auto_detect.pp_candidate c)
        auto.compiled.Core.Compile.candidates;
      Printf.printf "  baseline eff %5.1f%% -> automatic eff %5.1f%%, speedup %.2fx\n"
        (100.0 *. Core.Runner.efficiency baseline)
        (100.0 *. Core.Runner.efficiency auto)
        (Core.Runner.speedup ~baseline ~optimized:auto);
      (* Profile-guided variant: feed the baseline run's block profile
         back into the detector ("profile information may help improve
         the accuracy of our profitability tests", §4.5). *)
      let profiled_options =
        {
          Core.Compile.automatic with
          Core.Compile.mode =
            Core.Compile.Automatic
              {
                params = Passes.Auto_detect.default_params;
                strategy = Passes.Deconflict.Dynamic;
                profile = Some baseline.Core.Runner.profile;
              };
        }
      in
      let profiled = Core.Runner.run_spec profiled_options spec in
      Printf.printf "  with profile guidance:              eff %5.1f%%, speedup %.2fx\n\n"
        (100.0 *. Core.Runner.efficiency profiled)
        (Core.Runner.speedup ~baseline ~optimized:profiled))
    Workloads.Registry.auto_subjects
