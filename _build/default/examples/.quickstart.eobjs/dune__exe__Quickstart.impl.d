examples/quickstart.ml: Core Format Hashtbl Ir Passes Printf Simt
