examples/common_call.ml: Core Format List Passes Printf Simt Workloads
