examples/auto_detect.ml: Core Format List Passes Printf Workloads
