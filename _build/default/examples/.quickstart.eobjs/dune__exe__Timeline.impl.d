examples/timeline.ml: Analysis Core Hashtbl Ir List Printf Simt String
