examples/timeline.mli:
