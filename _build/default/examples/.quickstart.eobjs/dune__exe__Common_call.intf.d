examples/common_call.mli:
