examples/pathtracer_tuning.mli:
