examples/auto_detect.mli:
