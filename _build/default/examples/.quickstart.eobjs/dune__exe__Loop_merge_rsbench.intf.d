examples/loop_merge_rsbench.mli:
