examples/pathtracer_tuning.ml: Core List Printf String Workloads
