examples/loop_merge_rsbench.ml: Analysis Core Format Hashtbl Ir List Passes Printf Simt Workloads
