examples/quickstart.mli:
