(* Benchmark harness.

   Two jobs:

   1. Regenerate the data behind every table and figure of the paper's
      evaluation (the rows/series are printed exactly as
      [bin/experiments.exe] prints them) — this is the reproduction
      artifact.

   2. Bechamel wall-clock benchmarks, one group per figure, timing the
      compile+simulate pipeline that produces each exhibit on reduced
      configurations — this tracks the cost of the reproduction itself
      and catches performance regressions in the simulator/compiler. *)

open Bechamel
open Toolkit

(* ---- Part 1: figure regeneration ---- *)

let regenerate () =
  Format.printf "==================================================================@.";
  Format.printf "Reproduction of the paper's evaluation (CGO 2020, Section 5)@.";
  Format.printf "==================================================================@.@.";
  Format.printf "%a@." Core.Experiments.pp_table2 (Core.Experiments.table2 ());
  let measurements = Core.Experiments.measure_table2 () in
  Format.printf "%a@." Core.Experiments.pp_figure7 (Core.Experiments.figure7 measurements);
  Format.printf "%a@." Core.Experiments.pp_figure8 (Core.Experiments.figure8 measurements);
  Format.printf "%a@." Core.Experiments.pp_figure9 (Core.Experiments.figure9 ());
  Format.printf "%a@." Core.Experiments.pp_figure10 (Core.Experiments.figure10 ());
  Format.printf "%a@." Core.Experiments.pp_funnel (Core.Experiments.corpus_funnel ());
  Format.printf "@.%a@." Core.Ablations.pp_deconfliction (Core.Ablations.deconfliction ());
  Format.printf "%a@." Core.Ablations.pp_policies (Core.Ablations.policies ());
  Format.printf "%a@." Core.Ablations.pp_warp_scaling (Core.Ablations.warp_scaling ())

(* ---- Part 2: Bechamel micro-benchmarks ---- *)

(* A small machine so a single simulated launch stays in the millisecond
   range. *)
let bench_config = { Simt.Config.default with Simt.Config.n_warps = 1 }

let run_spec_bench options (spec : Workloads.Spec.t) () =
  ignore (Core.Runner.run_spec ~config:bench_config options spec)

let compile_bench options (spec : Workloads.Spec.t) () =
  let options =
    match options.Core.Compile.coarsen with
    | Some _ -> options
    | None -> { options with Core.Compile.coarsen = spec.Workloads.Spec.coarsen }
  in
  ignore (Core.Compile.compile options ~source:spec.Workloads.Spec.source)

let spec_of = Workloads.Registry.find

let fig7_group =
  (* Figure 7/8 cost: simulating a workload under both compilation modes. *)
  Test.make_grouped ~name:"fig7"
    [
      Test.make ~name:"rsbench-baseline"
        (Staged.stage (run_spec_bench Core.Compile.baseline (spec_of "rsbench")));
      Test.make ~name:"rsbench-specrecon"
        (Staged.stage (run_spec_bench Core.Compile.speculative (spec_of "rsbench")));
      Test.make ~name:"pathtracer-baseline"
        (Staged.stage (run_spec_bench Core.Compile.baseline (spec_of "pathtracer")));
      Test.make ~name:"pathtracer-specrecon"
        (Staged.stage (run_spec_bench Core.Compile.speculative (spec_of "pathtracer")));
    ]

let fig8_group =
  (* Figure 8 reuses the Figure-7 simulations; the compile stage is what
     differs per bar, so time it alone. *)
  Test.make_grouped ~name:"fig8"
    [
      Test.make ~name:"compile-baseline"
        (Staged.stage (compile_bench Core.Compile.baseline (spec_of "rsbench")));
      Test.make ~name:"compile-specrecon"
        (Staged.stage (compile_bench Core.Compile.speculative (spec_of "rsbench")));
      Test.make ~name:"compile-interproc"
        (Staged.stage (compile_bench Core.Compile.speculative (spec_of "common-call")));
    ]

let fig9_group =
  let sweep_point threshold (spec : Workloads.Spec.t) () =
    let options =
      { Core.Compile.speculative with Core.Compile.threshold = Core.Compile.Set threshold }
    in
    ignore (Core.Runner.run_spec ~config:bench_config options spec)
  in
  Test.make_grouped ~name:"fig9"
    [
      Test.make ~name:"xsbench-threshold-4" (Staged.stage (sweep_point 4 (spec_of "xsbench")));
      Test.make ~name:"xsbench-threshold-32" (Staged.stage (sweep_point 32 (spec_of "xsbench")));
      Test.make ~name:"pathtracer-threshold-32"
        (Staged.stage (sweep_point 32 (spec_of "pathtracer")));
    ]

let fig10_group =
  Test.make_grouped ~name:"fig10"
    [
      Test.make ~name:"meiyamd5-auto"
        (Staged.stage (run_spec_bench Core.Compile.automatic (spec_of "meiyamd5")));
      Test.make ~name:"optix-auto"
        (Staged.stage (run_spec_bench Core.Compile.automatic (spec_of "optix-trace")));
      Test.make ~name:"detector-only"
        (Staged.stage (compile_bench Core.Compile.automatic (spec_of "optix-trace")));
    ]

let funnel_group =
  Test.make_grouped ~name:"funnel"
    [
      Test.make ~name:"corpus-16-apps"
        (Staged.stage (fun () -> ignore (Core.Experiments.corpus_funnel ~seed:520 ~count:16 ())));
    ]

let all_groups =
  Test.make_grouped ~name:"specrecon"
    [ fig7_group; fig8_group; fig9_group; fig10_group; funnel_group ]

(* Run Bechamel over [groups] and return sorted (name, ms/run) pairs;
   tests without an OLS estimate report [nan]. *)
let benchmark ~quota ~limit groups =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit ~quota ~kde:(Some 10) () in
  let raw = Benchmark.all cfg instances groups in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold (fun name result acc -> (name, result) :: acc) results []
  |> List.sort compare
  |> List.map (fun (name, result) ->
         match Analyze.OLS.estimates result with
         | Some [ ns ] -> (name, ns /. 1e6)
         | Some _ | None -> (name, Float.nan))

let print_estimates estimates =
  Format.printf "==================================================================@.";
  Format.printf "Bechamel wall-clock benchmarks (per-run time)@.";
  Format.printf "==================================================================@.";
  List.iter
    (fun (name, ms) ->
      if Float.is_nan ms then Format.printf "  %-45s (no estimate)@." name
      else Format.printf "  %-45s %12.3f ms/run@." name ms)
    estimates

(* Machine-readable perf trajectory: name -> ms/run. Future sessions
   diff this file against their own run to spot interpreter
   regressions without parsing the human-readable table. *)
let json_path = "BENCH_interp.json"

let write_json estimates =
  let oc = open_out json_path in
  output_string oc "{\n";
  List.iteri
    (fun i (name, ms) ->
      Printf.fprintf oc "  %S: %s%s\n" name
        (if Float.is_nan ms then "null" else Printf.sprintf "%.6f" ms)
        (if i < List.length estimates - 1 then "," else ""))
    estimates;
  output_string oc "}\n";
  close_out oc;
  Format.printf "@.wrote %s (%d entries)@." json_path (List.length estimates)

(* ---- [--guard PATH]: perf-regression gate ----

   Benchmarks a short slice (one fig7 workload + the corpus funnel — the
   two groups the interpreter rewrite is accountable for) and compares
   against the committed BENCH_interp.json. Exits nonzero if any slice
   regresses more than SPECRECON_PERF_GUARD_PCT percent (default 25; a
   value <= 0 disables the gate). Deliberately NOT part of runtest: wall
   clock on a shared box is too noisy for a correctness suite, so it
   lives behind `dune build @perf-guard` for humans and CI perf jobs. *)

let guard_group =
  Test.make_grouped ~name:"specrecon"
    [
      Test.make_grouped ~name:"fig7"
        [
          Test.make ~name:"rsbench-baseline"
            (Staged.stage (run_spec_bench Core.Compile.baseline (spec_of "rsbench")));
        ];
      Test.make_grouped ~name:"funnel"
        [
          Test.make ~name:"corpus-16-apps"
            (Staged.stage (fun () ->
                 ignore (Core.Experiments.corpus_funnel ~seed:520 ~count:16 ())));
        ];
    ]

(* The committed file is the writer's own output, so a line-oriented scan
   is enough: every entry line is [  "name": ms,] — anything else
   (braces, nulls) is skipped. *)
let read_committed path =
  let ic = open_in path in
  let tbl = Hashtbl.create 16 in
  (try
     while true do
       let line = input_line ic in
       try Scanf.sscanf line " %S : %f" (fun name ms -> Hashtbl.replace tbl name ms)
       with Scanf.Scan_failure _ | Failure _ | End_of_file -> ()
     done
   with End_of_file -> ());
  close_in ic;
  tbl

let guard path =
  let threshold =
    match Sys.getenv_opt "SPECRECON_PERF_GUARD_PCT" with
    | Some s -> (
      match float_of_string_opt s with
      | Some t -> t
      | None ->
        Format.printf "perf-guard: bad SPECRECON_PERF_GUARD_PCT %S, using default 25@." s;
        25.0)
    | None -> 25.0
  in
  if threshold <= 0.0 then
    Format.printf "perf-guard: disabled (SPECRECON_PERF_GUARD_PCT = %g)@." threshold
  else begin
    let committed = read_committed path in
    (* Same quota as the full run: the guard compares against numbers the
       full run produced, so a cheaper/noisier estimate would dominate
       the 25% budget with measurement error alone. *)
    let estimates = benchmark ~quota:(Time.second 0.5) ~limit:100 guard_group in
    let failed = ref false in
    List.iter
      (fun (name, ms) ->
        match Hashtbl.find_opt committed name with
        | None ->
          Format.printf "perf-guard: %-45s %10.3f ms/run  (no committed baseline, skipped)@."
            name ms
        | Some base ->
          let pct = (ms -. base) /. base *. 100.0 in
          let bad = (not (Float.is_nan ms)) && pct > threshold in
          if bad then failed := true;
          Format.printf "perf-guard: %-45s %10.3f ms/run  committed %10.3f  (%+.1f%%)%s@." name
            ms base pct
            (if bad then "  REGRESSION" else ""))
      estimates;
    if !failed then begin
      Format.printf
        "perf-guard: FAILED — regression beyond %.0f%% (set SPECRECON_PERF_GUARD_PCT to relax \
         or disable)@."
        threshold;
      exit 1
    end
    else Format.printf "perf-guard: ok (threshold %.0f%%)@." threshold
  end

(* [--smoke]: one tiny quota over a fast singleton group plus the JSON
   emission — enough for `dune build @bench-smoke` to catch bench-harness
   rot without paying for the full run. *)
let smoke_group =
  Test.make_grouped ~name:"smoke"
    [
      Test.make ~name:"compile-baseline"
        (Staged.stage (compile_bench Core.Compile.baseline (spec_of "rsbench")));
    ]

(* [--guard PATH] takes the committed JSON as its argument so the dune
   alias can declare it as a dependency. *)
let guard_path () =
  let path = ref None in
  Array.iteri
    (fun i arg ->
      if String.equal arg "--guard" && i + 1 < Array.length Sys.argv then
        path := Some Sys.argv.(i + 1))
    Sys.argv;
  !path

let () =
  match guard_path () with
  | Some path -> guard path
  | None ->
  if Array.exists (String.equal "--smoke") Sys.argv then
    write_json (benchmark ~quota:(Time.second 0.01) ~limit:20 smoke_group)
  else begin
    regenerate ();
    let estimates = benchmark ~quota:(Time.second 0.5) ~limit:200 all_groups in
    print_estimates estimates;
    write_json estimates
  end
