(* Service benchmark: replays traffic traces through an in-process
   srserved engine (Serve.Server) and reports launches/sec plus cache
   behaviour, next to BENCH_interp.json's per-exhibit numbers.

   Three traces:

   - repeated  — a small set of compile-heavy straight-line kernels,
     each launched many times: the "millions of clients, one kernel"
     shape the compile cache exists for. Cold numbers run with the
     cache disabled (capacity 0: every launch pays parse→lint→decode),
     warm numbers against a warmed cache (every launch after the first
     is a hit). The committed BENCH_service.json must show warm ≥ 2x
     cold here — that ratio is the service's reason to exist.
   - registry  — every Table-2 workload (warps=1), repeated: realistic
     kernels where simulation, not compilation, dominates.
   - fuzz      — a fixed-seed generated slice, each program twice:
     small-kernel traffic with a 50% hit rate.

   Wall-clock methodology matches PERF.md's caveats: single process,
   monotonic timestamps around whole trace replays, and the JSON is a
   trajectory for humans + the serve bench docs, not a runtest gate. *)

module P = Serve.Protocol

let gettime = Unix.gettimeofday

(* ---- trace construction ---- *)

(* A compile-heavy kernel: [n] dependent updates on a cold path no
   thread takes at runtime (the guard compares a tid-derived value
   against a sentinel it can never reach). The compile pipeline — parse,
   lower, passes, the srlint abstract interpretation, linearize, decode
   — pays for all [n] statements on every cache miss, while a launch
   issues only the guard and epilogue; this is the kernel shape where
   the compile cache is the whole cost, i.e. what a service amortizing
   one kernel over many launches looks like. Distinct [salt]s give
   distinct sources, so the trace exercises real cache traffic rather
   than one hot entry. *)
let cold_path ~salt ~n =
  let buf = Buffer.create (n * 64) in
  Buffer.add_string buf "global out: int[64];\n\nkernel k() {\n  var x: int = tid();\n";
  for i = 0 to n - 1 do
    (* Guards compare a tid-derived non-negative value against distinct
       negative sentinels: never taken, so each body costs compile time
       (and a PDOM barrier) but no simulated work. *)
    Buffer.add_string buf
      (Printf.sprintf "  if (x == -%d) {\n    x = x * %d + %d;\n  }\n" (i + 1)
         (1 + ((salt + i) mod 3))
         ((salt * 7) + i))
  done;
  Buffer.add_string buf "  out[tid()] = x;\n}\n";
  Buffer.contents buf

let repeated_trace =
  let kernels = List.init 4 (fun salt -> cold_path ~salt ~n:160) in
  let reps = 32 in
  List.concat_map
    (fun source ->
      List.init reps (fun id -> P.Run (P.make_request ~id ~warps:1 ~source ())))
    kernels

let registry_trace =
  let reps = 4 in
  List.concat_map
    (fun (spec : Workloads.Spec.t) ->
      List.init reps (fun id ->
          P.Run
            (P.make_request ~id ~warps:1 ?coarsen:spec.Workloads.Spec.coarsen
               ~args:spec.Workloads.Spec.args ~source:spec.Workloads.Spec.source ())))
    Workloads.Registry.all

let fuzz_trace =
  let count = 100 in
  List.concat_map
    (fun i ->
      let case = Fuzz.Gen.generate ~seed:909 i in
      let source = Front.Pretty.to_string case.Fuzz.Gen.ast in
      [
        P.Run (P.make_request ~id:i ~init:"data" ~source ());
        P.Run (P.make_request ~id:(i + count) ~init:"data" ~source ());
      ])
    (List.init count Fun.id)

(* ---- measurement ---- *)

type sample = {
  launches_per_sec : float;
  hit_rate : float; (* of the timed passes *)
  errors : int;
}

let replay server trace =
  List.length
    (List.filter
       (function P.Error _ -> true | _ -> false)
       (Serve.Server.submit server trace))

(* Time [passes] full replays of [trace] against a fresh server with
   [capacity] cache entries, after [warmup] untimed replays. *)
let measure ~capacity ~warmup ~passes trace =
  let server = Serve.Server.create ~cache_capacity:capacity ~max_issues:100_000_000 () in
  for _ = 1 to warmup do
    ignore (replay server trace)
  done;
  let h0 = Serve.Server.cache_hits server and m0 = Serve.Server.cache_misses server in
  let errors = ref 0 in
  let t0 = gettime () in
  for _ = 1 to passes do
    errors := !errors + replay server trace
  done;
  let dt = gettime () -. t0 in
  let lookups =
    Serve.Server.cache_hits server + Serve.Server.cache_misses server - h0 - m0
  in
  {
    launches_per_sec = (if dt <= 0.0 then 0.0 else float_of_int (passes * List.length trace) /. dt);
    hit_rate =
      (if lookups = 0 then 0.0
       else float_of_int (Serve.Server.cache_hits server - h0) /. float_of_int lookups);
    errors = !errors;
  }

(* Persisted-restart shape: every timed pass is a brand-new server —
   the kill -9 / restart lifecycle the crash-safe store exists for. A
   cold restart recompiles every kernel from source; a restart over a
   populated --persist store deserializes the decoded artifacts
   instead. The committed BENCH_service.json must show restart-warm ≥
   2x restart-cold on the compile-heavy trace — that ratio is the
   store's reason to exist. *)
let measure_restart ?persist_dir ~passes trace =
  let fresh () =
    Serve.Server.create ~cache_capacity:256 ~max_issues:100_000_000 ?persist_dir ()
  in
  ignore (replay (fresh ()) trace) (* warmup: populates the store when given one *);
  let errors = ref 0 in
  let t0 = gettime () in
  for _ = 1 to passes do
    errors := !errors + replay (fresh ()) trace
  done;
  let dt = gettime () -. t0 in
  {
    launches_per_sec =
      (if dt <= 0.0 then 0.0 else float_of_int (passes * List.length trace) /. dt);
    hit_rate = 0.0;
    errors = !errors;
  }

let restart_trace =
  List.concat_map
    (fun salt -> List.init 4 (fun id -> P.Run (P.make_request ~id ~warps:1 ~source:(cold_path ~salt ~n:160) ())))
    (List.init 4 Fun.id)

let measure_persisted_restart ~passes =
  let dir = Filename.temp_file "srserved_bench" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
  @@ fun () ->
  let cold = measure_restart ~passes restart_trace in
  let warm = measure_restart ~persist_dir:dir ~passes restart_trace in
  (cold, warm)

let json_path = "BENCH_service.json"

let () =
  let traces =
    [ ("repeated", repeated_trace, 3); ("registry", registry_trace, 3); ("fuzz", fuzz_trace, 2) ]
  in
  let rows =
    List.concat_map
      (fun (name, trace, passes) ->
        let cold = measure ~capacity:0 ~warmup:1 ~passes trace in
        let warm = measure ~capacity:256 ~warmup:1 ~passes trace in
        Printf.printf
          "serve/%-9s %5d launches/pass: cold %8.1f/s, warm %8.1f/s (%.2fx), warm hit rate \
           %.3f, errors %d\n%!"
          name (List.length trace) cold.launches_per_sec warm.launches_per_sec
          (warm.launches_per_sec /. cold.launches_per_sec)
          warm.hit_rate (cold.errors + warm.errors);
        [
          (Printf.sprintf "serve/%s/cold_launches_per_sec" name, cold.launches_per_sec);
          (Printf.sprintf "serve/%s/warm_launches_per_sec" name, warm.launches_per_sec);
          (Printf.sprintf "serve/%s/warm_over_cold" name,
           warm.launches_per_sec /. cold.launches_per_sec);
          (Printf.sprintf "serve/%s/warm_hit_rate" name, warm.hit_rate);
        ])
      traces
  in
  let rows =
    let cold, warm = measure_persisted_restart ~passes:3 in
    Printf.printf
      "serve/persisted %5d launches/restart: cold restart %8.1f/s, persisted restart \
       %8.1f/s (%.2fx), errors %d\n%!"
      (List.length restart_trace) cold.launches_per_sec warm.launches_per_sec
      (warm.launches_per_sec /. cold.launches_per_sec)
      (cold.errors + warm.errors);
    rows
    @ [
        ("serve/persisted/cold_restart_launches_per_sec", cold.launches_per_sec);
        ("serve/persisted/warm_restart_launches_per_sec", warm.launches_per_sec);
        ( "serve/persisted/restart_warm_over_cold",
          warm.launches_per_sec /. cold.launches_per_sec );
      ]
  in
  let oc = open_out json_path in
  output_string oc "{\n";
  List.iteri
    (fun i (name, v) ->
      Printf.fprintf oc "  %S: %.6f%s\n" name v (if i < List.length rows - 1 then "," else ""))
    rows;
  output_string oc "}\n";
  close_out oc;
  Printf.printf "wrote %s (%d entries)\n" json_path (List.length rows)
