open Types

type error = { where : string; message : string }

let pp_error ppf e = Format.fprintf ppf "%s: %s" e.where e.message

let reachable_blocks f =
  let seen = Hashtbl.create 16 in
  let rec visit id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      match Hashtbl.find_opt f.blocks id with
      | Some b -> List.iter visit (successors b.term)
      | None -> ()
    end
  in
  visit f.entry;
  seen

let check_func program ~is_kernel f =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := { where = f.fname; message = m } :: !errors) fmt in
  let check_block_ref ctx id =
    if not (Hashtbl.mem f.blocks id) then err "%s references missing block bb%d" ctx id
  in
  let check_reg ctx r =
    if r < 0 || r >= f.next_reg then err "%s uses out-of-range register r%d" ctx r
  in
  let check_barrier ctx b =
    if b < 0 || b >= program.next_barrier then err "%s uses unallocated barrier b%d" ctx b
  in
  if not (Hashtbl.mem f.blocks f.entry) then err "entry block bb%d does not exist" f.entry;
  iter_blocks f (fun b ->
      let ctx = Printf.sprintf "bb%d" b.id in
      List.iter
        (fun i ->
          List.iter (check_reg ctx) (defs i);
          List.iter (check_reg ctx) (uses i);
          Option.iter (check_barrier ctx) (barrier_of i);
          match i with
          | Call { callee; args; ret = _ } -> (
            match Hashtbl.find_opt program.funcs callee with
            | None -> err "%s calls unknown function %s" ctx callee
            | Some g ->
              if List.length args <> List.length g.params then
                err "%s calls %s with %d args (expected %d)" ctx callee (List.length args)
                  (List.length g.params))
          | Bin _ | Un _ | Mov _ | Load _ | Store _ | Tid _ | Lane _ | Nthreads _ | Rand _
          | Randint _ | Join _ | Rejoin _ | Wait _ | Wait_threshold _ | Cancel _ | Arrived _ ->
            ())
        b.insts;
      List.iter (check_reg ctx) (term_uses b.term);
      (match b.term with
      | Jump t -> check_block_ref ctx t
      | Br { if_true; if_false; _ } ->
        check_block_ref ctx if_true;
        check_block_ref ctx if_false
      | Ret _ -> if is_kernel then err "%s: ret in kernel (kernels must exit)" ctx
      | Exit -> if not is_kernel then err "%s: exit in device function (must ret)" ctx));
  List.iter
    (fun (name, id) ->
      if not (Hashtbl.mem f.blocks id) then err "label %s points at missing block bb%d" name id)
    f.labels;
  List.iter
    (fun h ->
      if not (Hashtbl.mem f.blocks h.region_start) then
        err "hint region start bb%d does not exist" h.region_start;
      (match h.threshold with
      | Some k when k < 0 -> err "hint threshold %d is negative" k
      | Some _ | None -> ());
      match h.target with
      | Label_target l ->
        if not (List.mem_assoc l f.labels) then err "hint targets unknown label %s" l
      | Callee_target callee ->
        if not (Hashtbl.mem program.funcs callee) then err "hint targets unknown function %s" callee)
    f.hints;
  let reach = reachable_blocks f in
  iter_blocks f (fun b ->
      if not (Hashtbl.mem reach b.id) then err "block bb%d is unreachable" b.id);
  !errors

let check_program p =
  let errors = ref [] in
  (if String.equal p.kernel "" then
     errors := { where = "program"; message = "no kernel entry designated" } :: !errors
   else if not (Hashtbl.mem p.funcs p.kernel) then
     errors :=
       { where = "program"; message = Printf.sprintf "kernel %s is not defined" p.kernel }
       :: !errors);
  (if (not (String.equal p.kernel "")) && not (List.mem p.kernel p.kernels) then
     errors :=
       { where = "program";
         message = Printf.sprintf "entry kernel %s missing from kernel list" p.kernel }
       :: !errors);
  List.iter
    (fun k ->
      if not (Hashtbl.mem p.funcs k) then
        errors :=
          { where = "program"; message = Printf.sprintf "kernel %s is not defined" k }
          :: !errors)
    p.kernels;
  let names = List.sort compare (Hashtbl.fold (fun n _ acc -> n :: acc) p.funcs []) in
  List.iter
    (fun name ->
      let f = Hashtbl.find p.funcs name in
      let is_kernel = List.mem name p.kernels || String.equal name p.kernel in
      errors := check_func p ~is_kernel f @ !errors)
    names;
  List.rev !errors

let check_program_exn p =
  match check_program p with
  | [] -> ()
  | errors ->
    let report =
      String.concat "\n" (List.map (fun e -> Format.asprintf "%a" pp_error e) errors)
    in
    failwith (Printf.sprintf "IR verification failed:\n%s" report)
