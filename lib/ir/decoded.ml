module L = Linear
module T = Types

(* Opcodes: dense from 0 so the interpreter's integer match compiles to a
   flat jump table. The interpreter matches on the literal values — any
   renumbering here must be mirrored in Simt.Interp's dispatch (the
   fuzz oracles and the differential goldens pin this down). *)
let op_bin = 0
let op_un = 1
let op_mov = 2
let op_load = 3
let op_store = 4
let op_tid = 5
let op_lane = 6
let op_nthreads = 7
let op_rand = 8
let op_randint = 9
let op_join = 10
let op_rejoin = 11
let op_wait = 12
let op_wait_threshold = 13
let op_cancel = 14
let op_arrived = 15
let op_call = 16
let op_ret = 17
let op_br = 18
let op_jump = 19
let op_exit = 20
let n_opcodes = 21

let opcode_name op =
  match op with
  | 0 -> "bin"
  | 1 -> "un"
  | 2 -> "mov"
  | 3 -> "load"
  | 4 -> "store"
  | 5 -> "tid"
  | 6 -> "lane"
  | 7 -> "nthreads"
  | 8 -> "rand"
  | 9 -> "randint"
  | 10 -> "join"
  | 11 -> "rejoin"
  | 12 -> "wait"
  | 13 -> "wait.th"
  | 14 -> "cancel"
  | 15 -> "arrived"
  | 16 -> "call"
  | 17 -> "ret"
  | 18 -> "br"
  | 19 -> "jump"
  | 20 -> "exit"
  | _ -> invalid_arg (Printf.sprintf "Decoded.opcode_name: bad opcode %d" op)

(* Latency classes: which Config.latencies field the slot's static issue
   latency comes from. *)
let lc_alu = 0
let lc_float = 1
let lc_special = 2
let lc_branch = 3
let lc_barrier = 4
let lc_call = 5
let lc_rand = 6
let lc_mem = 7

type call = {
  centry : int;
  cn_regs : int;
  cargs : int array;
  cret : int;
  ccallee : string;
}

type t = {
  linear : L.t;
  op : int array;
  a : int array;
  b : int array;
  c : int array;
  lclass : int array;
  bop : T.binop array;
  uop : T.unop array;
  vals : T.value array;
  calls : call array;
  bslot : int array;
  bfunc : string array;
  bblock : int array;
}

let enc_is_imm e = e land 1 <> 0
let enc_index e = e lsr 1

let decode (linear : L.t) =
  let n = Array.length linear.L.code in
  let op = Array.make n op_exit in
  let a = Array.make n 0 in
  let b = Array.make n 0 in
  let c = Array.make n 0 in
  let lclass = Array.make n lc_alu in
  let bop = Array.make n T.Add in
  let uop = Array.make n T.Neg in
  (* Immediates and calls are appended in pc order, so decoding is a pure
     function of the linear program: same input, same tables. *)
  let vals = ref [] and n_vals = ref 0 in
  let calls = ref [] and n_calls = ref 0 in
  let enc = function
    | T.Reg r -> r lsl 1
    | T.Imm v ->
      let i = !n_vals in
      vals := v :: !vals;
      incr n_vals;
      (i lsl 1) lor 1
  in
  let add_call ci =
    let i = !n_calls in
    calls := ci :: !calls;
    incr n_calls;
    i
  in
  for pc = 0 to n - 1 do
    match linear.L.code.(pc) with
    | L.Op i -> (
      match i with
      | T.Bin (o, d, x, y) ->
        op.(pc) <- op_bin;
        a.(pc) <- d;
        b.(pc) <- enc x;
        c.(pc) <- enc y;
        bop.(pc) <- o;
        lclass.(pc) <- (if T.is_float_op o then lc_float else lc_alu)
      | T.Un (o, d, x) ->
        op.(pc) <- op_un;
        a.(pc) <- d;
        b.(pc) <- enc x;
        uop.(pc) <- o;
        lclass.(pc) <- (if T.is_special_unop o then lc_special else lc_alu)
      | T.Mov (d, x) ->
        op.(pc) <- op_mov;
        a.(pc) <- d;
        b.(pc) <- enc x
      | T.Load (d, x) ->
        op.(pc) <- op_load;
        a.(pc) <- d;
        b.(pc) <- enc x;
        lclass.(pc) <- lc_mem
      | T.Store (x, v) ->
        op.(pc) <- op_store;
        a.(pc) <- enc x;
        b.(pc) <- enc v;
        lclass.(pc) <- lc_mem
      | T.Tid d ->
        op.(pc) <- op_tid;
        a.(pc) <- d
      | T.Lane d ->
        op.(pc) <- op_lane;
        a.(pc) <- d
      | T.Nthreads d ->
        op.(pc) <- op_nthreads;
        a.(pc) <- d
      | T.Rand d ->
        op.(pc) <- op_rand;
        a.(pc) <- d;
        lclass.(pc) <- lc_rand
      | T.Randint (d, x) ->
        op.(pc) <- op_randint;
        a.(pc) <- d;
        b.(pc) <- enc x;
        lclass.(pc) <- lc_rand
      | T.Join s ->
        op.(pc) <- op_join;
        a.(pc) <- s;
        lclass.(pc) <- lc_barrier
      | T.Rejoin s ->
        op.(pc) <- op_rejoin;
        a.(pc) <- s;
        lclass.(pc) <- lc_barrier
      | T.Wait s ->
        op.(pc) <- op_wait;
        a.(pc) <- s;
        lclass.(pc) <- lc_barrier
      | T.Wait_threshold (s, k) ->
        op.(pc) <- op_wait_threshold;
        a.(pc) <- s;
        b.(pc) <- k;
        lclass.(pc) <- lc_barrier
      | T.Cancel s ->
        op.(pc) <- op_cancel;
        a.(pc) <- s;
        lclass.(pc) <- lc_barrier
      | T.Arrived (d, s) ->
        op.(pc) <- op_arrived;
        a.(pc) <- d;
        b.(pc) <- s;
        lclass.(pc) <- lc_barrier
      | T.Call _ ->
        (* The linearizer turns every Call into Lcall. *)
        invalid_arg (Printf.sprintf "Decoded.decode: raw call at pc %d" pc))
    | L.Lcall { entry; n_regs; args; ret; callee } ->
      op.(pc) <- op_call;
      a.(pc) <-
        add_call
          {
            centry = entry;
            cn_regs = max n_regs 1;
            cargs = Array.of_list (List.map enc args);
            cret = (match ret with Some r -> r | None -> -1);
            ccallee = callee;
          };
      lclass.(pc) <- lc_call
    | L.Lret x ->
      op.(pc) <- op_ret;
      a.(pc) <- (match x with Some o -> enc o | None -> -1);
      lclass.(pc) <- lc_call
    | L.Lbr { cond; target } ->
      op.(pc) <- op_br;
      a.(pc) <- enc cond;
      b.(pc) <- target;
      lclass.(pc) <- lc_branch
    | L.Ljump target ->
      op.(pc) <- op_jump;
      a.(pc) <- target;
      lclass.(pc) <- lc_branch
    | L.Lexit ->
      op.(pc) <- op_exit;
      lclass.(pc) <- lc_branch
  done;
  (* Block-entry slots: the profiler counts lane-executions per basic
     block, so resolve each block-entry pc to a dense slot id here and
     let the interpreter bump a flat int array instead of hashing a
     (string, int) key per issue. *)
  let bslot = Array.make n (-1) in
  let bfunc = ref [] and bblock = ref [] and n_slots = ref 0 in
  for pc = 0 to n - 1 do
    let loc = linear.L.locs.(pc) in
    if
      pc = 0
      || loc.L.in_func <> linear.L.locs.(pc - 1).L.in_func
      || loc.L.in_block <> linear.L.locs.(pc - 1).L.in_block
    then begin
      bslot.(pc) <- !n_slots;
      bfunc := loc.L.in_func :: !bfunc;
      bblock := loc.L.in_block :: !bblock;
      incr n_slots
    end
  done;
  {
    linear;
    op;
    a;
    b;
    c;
    lclass;
    bop;
    uop;
    vals = Array.of_list (List.rev !vals);
    calls = Array.of_list (List.rev !calls);
    bslot;
    bfunc = Array.of_list (List.rev !bfunc);
    bblock = Array.of_list (List.rev !bblock);
  }

(* ---- dump ---- *)

let pp_enc t ppf e =
  if e < 0 then Format.pp_print_string ppf "-"
  else if enc_is_imm e then
    Format.fprintf ppf "imm[%d]=%a" (enc_index e) Printer.pp_value t.vals.(enc_index e)
  else Format.fprintf ppf "r%d" (enc_index e)

let lclass_name = function
  | 0 -> "alu"
  | 1 -> "float"
  | 2 -> "special"
  | 3 -> "branch"
  | 4 -> "barrier"
  | 5 -> "call"
  | 6 -> "rand"
  | 7 -> "mem"
  | _ -> "?"

let pp ppf t =
  Format.fprintf ppf "decoded: %d slots, %d imms, %d calls@." (Array.length t.op)
    (Array.length t.vals) (Array.length t.calls);
  Array.iteri
    (fun pc opc ->
      List.iter
        (fun (fi : L.finfo) ->
          if fi.L.entry_pc = pc then Format.fprintf ppf "; --- %s ---@." fi.L.fname)
        t.linear.L.funcs;
      let loc = t.linear.L.locs.(pc) in
      Format.fprintf ppf "%4d [bb%d] %-8s" pc loc.L.in_block (opcode_name opc);
      let enc1 e = Format.fprintf ppf " %a" (pp_enc t) e in
      (match opc with
      | 0 (* bin *) ->
        Format.fprintf ppf ".%s r%d <-" (Printer.binop_name t.bop.(pc)) t.a.(pc);
        enc1 t.b.(pc);
        enc1 t.c.(pc)
      | 1 (* un *) ->
        Format.fprintf ppf ".%s r%d <-" (Printer.unop_name t.uop.(pc)) t.a.(pc);
        enc1 t.b.(pc)
      | 2 (* mov *) | 3 (* load *) | 9 (* randint *) ->
        Format.fprintf ppf " r%d <-" t.a.(pc);
        enc1 t.b.(pc)
      | 4 (* store *) ->
        enc1 t.a.(pc);
        enc1 t.b.(pc)
      | 5 | 6 | 7 | 8 (* tid/lane/nthreads/rand *) -> Format.fprintf ppf " r%d" t.a.(pc)
      | 10 | 11 | 12 | 14 (* join/rejoin/wait/cancel *) -> Format.fprintf ppf " b%d" t.a.(pc)
      | 13 (* wait.th *) -> Format.fprintf ppf " b%d k=%d" t.a.(pc) t.b.(pc)
      | 15 (* arrived *) -> Format.fprintf ppf " r%d <- b%d" t.a.(pc) t.b.(pc)
      | 16 (* call *) ->
        let ci = t.calls.(t.a.(pc)) in
        Format.fprintf ppf " %s ->%d regs=%d ret=%s args=(" ci.ccallee ci.centry ci.cn_regs
          (if ci.cret >= 0 then Printf.sprintf "r%d" ci.cret else "-");
        Array.iteri
          (fun i e ->
            if i > 0 then Format.pp_print_string ppf ", ";
            pp_enc t ppf e)
          ci.cargs;
        Format.pp_print_string ppf ")"
      | 17 (* ret *) -> enc1 t.a.(pc)
      | 18 (* br *) ->
        enc1 t.a.(pc);
        Format.fprintf ppf " ->%d" t.b.(pc)
      | 19 (* jump *) -> Format.fprintf ppf " ->%d" t.a.(pc)
      | 20 (* exit *) -> ()
      | _ -> Format.fprintf ppf " ?%d ?%d ?%d" t.a.(pc) t.b.(pc) t.c.(pc));
      Format.fprintf ppf "  ; %s@." (lclass_name t.lclass.(pc)))
    t.op
