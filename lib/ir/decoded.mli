(** Pre-decoded threaded code: the interpreter's execution unit.

    {!Linear.t} is still a tree of boxed ADTs — every issue of the
    interpreter's hot loop used to pattern-match [Linear.linst] and then
    [Types.inst], and match each [Types.operand] per lane. [decode]
    lowers a linearized program {e once}, at compile time, into a flat
    struct-of-arrays form:

    - one small {e opcode int} per slot ({!op_bin} .. {!op_exit}), so the
      issue loop dispatches through a single dense jump table;
    - up to three {e integer fields} per slot ([a]/[b]/[c]): destination
      registers, encoded operands, barrier slots, thresholds and branch
      targets — all resolved to absolute indices at decode time;
    - a {e latency class} per slot, so static issue latencies become one
      table lookup instead of an [is_float_op]/[is_special_unop] walk;
    - side tables for the rare big payloads: the immediate-value pool
      [vals], the per-slot binop/unop sub-opcodes, and the call
      descriptors (callee entry pc, frame size, flattened argument
      operands, return register).

    The result is immutable after [decode] and references its source
    {!Linear.t} only for metadata (locations, function table, memory
    layout) — never on the per-issue path. It is also the natural
    cacheable compile artifact: a content-addressed compile cache
    (ROADMAP's [srserved]) can key on the source digest and hand every
    subsequent launch the same decoded program.

    {2 Operand encoding}

    An encoded operand is a non-negative int: bit 0 tags the kind, the
    remaining bits are an index. [(r lsl 1)] reads virtual register [r]
    of the current frame; [((i lsl 1) lor 1)] reads slot [i] of the
    [vals] immediate pool. Fields that hold an {e optional} operand
    (a [ret] value) use [-1] for "none". *)

(** {2 Opcodes}

    Dense, starting at 0, so an integer [match] in the interpreter
    compiles to a flat jump table. [Join] and [Rejoin] keep distinct
    opcodes (their provenance matters to dumps and tests) but share
    semantics. *)

val op_bin : int (* 0   a=dst  b=src1  c=src2  (+ bop table) *)

val op_un : int (* 1   a=dst  b=src            (+ uop table) *)

val op_mov : int (* 2   a=dst  b=src *)

val op_load : int (* 3   a=dst  b=addr *)

val op_store : int (* 4   a=addr b=value *)

val op_tid : int (* 5   a=dst *)

val op_lane : int (* 6   a=dst *)

val op_nthreads : int (* 7   a=dst *)

val op_rand : int (* 8   a=dst *)

val op_randint : int (* 9   a=dst  b=bound *)

val op_join : int (* 10  a=slot *)

val op_rejoin : int (* 11  a=slot *)

val op_wait : int (* 12  a=slot *)

val op_wait_threshold : int (* 13  a=slot  b=threshold *)

val op_cancel : int (* 14  a=slot *)

val op_arrived : int (* 15  a=dst  b=slot *)

val op_call : int (* 16  a=index into [calls] *)

val op_ret : int (* 17  a=encoded operand or -1 *)

val op_br : int (* 18  a=cond  b=absolute target pc *)

val op_jump : int (* 19  a=absolute target pc *)

val op_exit : int (* 20 *)

val n_opcodes : int

val opcode_name : int -> string

(** {2 Latency classes}

    Which {!Simt.Config.latencies} field a slot's static issue latency
    comes from. Memory ops carry {!lc_mem}: their cost is dynamic
    (coalescing), the class is informational. *)

val lc_alu : int

val lc_float : int

val lc_special : int

val lc_branch : int

val lc_barrier : int

val lc_call : int

val lc_rand : int

val lc_mem : int

(** One [Lcall] site, fully resolved: [centry] is the callee's absolute
    entry pc, [cn_regs] the callee frame size (already [max 1]),
    [cargs] the encoded argument operands in order, [cret] the caller
    register receiving the return value ([-1] for none). [ccallee] is
    kept for dumps only. *)
type call = {
  centry : int;
  cn_regs : int;
  cargs : int array;
  cret : int;
  ccallee : string;
}

type t = {
  linear : Linear.t;  (** provenance: locations, functions, memory layout *)
  op : int array;  (** opcode per slot *)
  a : int array;  (** field 1 (see opcode table) *)
  b : int array;  (** field 2 *)
  c : int array;  (** field 3 *)
  lclass : int array;  (** latency class per slot *)
  bop : Types.binop array;  (** sub-opcode for {!op_bin} slots *)
  uop : Types.unop array;  (** sub-opcode for {!op_un} slots *)
  vals : Types.value array;  (** immediate pool *)
  calls : call array;  (** call descriptors, indexed by field [a] *)
  bslot : int array;
      (** per-pc profile slot: [-1] unless the pc starts a basic block,
          else an index into [bfunc]/[bblock] — the interpreter
          accumulates per-block lane counts in a flat array keyed by
          these slots *)
  bfunc : string array;  (** slot -> enclosing function name *)
  bblock : int array;  (** slot -> basic-block id *)
}

(** Encoded-operand accessors (tests, dumps). *)

val enc_is_imm : int -> bool

val enc_index : int -> int

(** [decode linear] lowers a linearized program. Total for every program
    {!Linear.linearize} can produce.
    @raise Invalid_argument on a raw [Call] instruction (the linearizer
    never emits one). *)
val decode : Linear.t -> t

(** Human-readable listing of the descriptor array — opcode, decoded
    fields, resolved targets, immediate-pool contents — so decode bugs
    are diagnosable without running the interpreter ([srcc
    --emit-decoded]). *)
val pp : Format.formatter -> t -> unit
