(** Flattening of CFG functions into a linear instruction stream.

    The simulator executes this "SASS-like" form: one flat code array for
    the whole program, per-function entry points, branch targets resolved
    to absolute program counters. Blocks are laid out in reverse post
    order, so a lower PC within a function corresponds to an earlier
    position in the natural code layout — which the scheduler's
    lowest-PC-first policy relies on. *)

open Types

type linst =
  | Op of inst
      (** any straight-line instruction; [Call] never appears here *)
  | Lcall of { entry : int; n_regs : int; args : operand list; ret : reg option; callee : string }
  | Lbr of { cond : operand; target : int }  (** jump to [target] if [cond] <> 0 *)
  | Ljump of int
  | Lret of operand option
  | Lexit

type finfo = { fname : string; entry_pc : int; arity : int; n_regs : int }

type location = { in_func : string; in_block : block_id }

type t = {
  code : linst array;
  locs : location array;  (** source block of each pc, for profiles *)
  funcs : finfo list;
  kernel : finfo;  (** the default (entry) kernel *)
  kernels : finfo list;
      (** every launchable kernel, declaration order, entry included *)
  n_barriers : int;
  mem_size : int;
  float_regions : (int * int) list;  (** float-typed globals: launch as [F 0.0] *)
}

(** [linearize program] flattens a verified program.
    @raise Failure if the program fails {!Verifier.check_program}. *)
val linearize : program -> t

(** [block_entry_pc t ~func ~block] is the pc of the first instruction laid
    out for the given block, used by tests and profile mapping.
    @raise Not_found if the block emitted no code or does not exist. *)
val block_entry_pc : t -> func:string -> block:block_id -> int

val pp_linst : Format.formatter -> linst -> unit

(** Disassembly listing with pcs, function boundaries and block notes. *)
val pp : Format.formatter -> t -> unit
