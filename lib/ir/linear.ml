open Types

type linst =
  | Op of inst
  | Lcall of { entry : int; n_regs : int; args : operand list; ret : reg option; callee : string }
  | Lbr of { cond : operand; target : int }
  | Ljump of int
  | Lret of operand option
  | Lexit

type finfo = { fname : string; entry_pc : int; arity : int; n_regs : int }
type location = { in_func : string; in_block : block_id }

type t = {
  code : linst array;
  locs : location array;
  funcs : finfo list;
  kernel : finfo;
  kernels : finfo list;
  n_barriers : int;
  mem_size : int;
  float_regions : (int * int) list;
}

(* Reverse post order over reachable blocks, entry first. *)
let rpo f =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let rec visit id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      (match Hashtbl.find_opt f.blocks id with
      | Some b -> List.iter visit (successors b.term)
      | None -> ());
      order := id :: !order
    end
  in
  visit f.entry;
  !order

(* Size in slots of a block's body and terminator given the block laid out
   immediately after it (fall-through target), if any. *)
let term_size term ~next =
  match term with
  | Jump t -> if Some t = next then 0 else 1
  | Br { if_false; _ } -> if Some if_false = next then 1 else 2
  | Ret _ | Exit -> 1

let block_size b ~next = List.length b.insts + term_size b.term ~next

let function_order (p : program) =
  let names = List.sort compare (Hashtbl.fold (fun n _ acc -> n :: acc) p.funcs []) in
  p.kernel :: List.filter (fun n -> not (String.equal n p.kernel)) names

let linearize (p : program) =
  Verifier.check_program_exn p;
  (* Phase 1: lay out blocks within each function and functions within the
     program, so every branch and call target is known before emission. *)
  let layouts = Hashtbl.create 8 in
  (* fname -> (order, block offsets table, total size) *)
  let func_entries = Hashtbl.create 8 in
  let total = ref 0 in
  List.iter
    (fun name ->
      let f = Hashtbl.find p.funcs name in
      let order = rpo f in
      let offsets = Hashtbl.create 16 in
      let rec assign offset = function
        | [] -> offset
        | id :: rest ->
          Hashtbl.replace offsets id offset;
          let next = match rest with [] -> None | n :: _ -> Some n in
          assign (offset + block_size (block f id) ~next) rest
      in
      let size = assign 0 order in
      Hashtbl.replace layouts name (order, offsets);
      Hashtbl.replace func_entries name !total;
      total := !total + size)
    (function_order p);
  let finfo_of name =
    let f = Hashtbl.find p.funcs name in
    {
      fname = name;
      entry_pc = Hashtbl.find func_entries name;
      arity = List.length f.params;
      n_regs = f.next_reg;
    }
  in
  (* Phase 2: emit. *)
  let code = Array.make !total Lexit in
  let locs = Array.make !total { in_func = ""; in_block = -1 } in
  List.iter
    (fun name ->
      let f = Hashtbl.find p.funcs name in
      let order, offsets = Hashtbl.find layouts name in
      let base = Hashtbl.find func_entries name in
      let pc_of_block id = base + Hashtbl.find offsets id in
      let rec emit_blocks = function
        | [] -> ()
        | id :: rest ->
          let b = block f id in
          let next = match rest with [] -> None | n :: _ -> Some n in
          let pc = ref (pc_of_block id) in
          let put linst =
            code.(!pc) <- linst;
            locs.(!pc) <- { in_func = name; in_block = id };
            incr pc
          in
          List.iter
            (fun i ->
              match i with
              | Call { callee; args; ret } ->
                let callee_func = Hashtbl.find p.funcs callee in
                put
                  (Lcall
                     {
                       entry = Hashtbl.find func_entries callee;
                       n_regs = callee_func.next_reg;
                       args;
                       ret;
                       callee;
                     })
              | Bin _ | Un _ | Mov _ | Load _ | Store _ | Tid _ | Lane _ | Nthreads _ | Rand _
              | Randint _ | Join _ | Rejoin _ | Wait _ | Wait_threshold _ | Cancel _
              | Arrived _ -> put (Op i))
            b.insts;
          (match b.term with
          | Jump t -> if Some t <> next then put (Ljump (pc_of_block t))
          | Br { cond; if_true; if_false } ->
            put (Lbr { cond; target = pc_of_block if_true });
            if Some if_false <> next then put (Ljump (pc_of_block if_false))
          | Ret op -> put (Lret op)
          | Exit -> put Lexit);
          emit_blocks rest
      in
      emit_blocks order)
    (function_order p);
  let funcs = List.map finfo_of (function_order p) in
  {
    code;
    locs;
    funcs;
    kernel = finfo_of p.kernel;
    kernels =
      List.map finfo_of
        (if List.mem p.kernel p.kernels then p.kernels else p.kernel :: p.kernels);
    n_barriers = p.next_barrier;
    mem_size = p.mem_size;
    float_regions = p.float_regions;
  }

let block_entry_pc t ~func ~block =
  (* locs is in layout order per function, so the first pc tagged with the
     block is its entry; blocks that emitted no code raise Not_found. *)
  let found = ref None in
  Array.iteri
    (fun pc loc ->
      if !found = None && String.equal loc.in_func func && loc.in_block = block then
        found := Some pc)
    t.locs;
  match !found with Some pc -> pc | None -> raise Not_found

let pp_linst ppf = function
  | Op i -> Printer.pp_inst ppf i
  | Lcall { callee; args; ret; entry; _ } ->
    let pp_args =
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
        Printer.pp_operand
    in
    (match ret with
    | Some d -> Format.fprintf ppf "r%d = call %s@%d(%a)" d callee entry pp_args args
    | None -> Format.fprintf ppf "call %s@%d(%a)" callee entry pp_args args)
  | Lbr { cond; target } -> Format.fprintf ppf "br %a, @%d" Printer.pp_operand cond target
  | Ljump target -> Format.fprintf ppf "jump @%d" target
  | Lret (Some op) -> Format.fprintf ppf "ret %a" Printer.pp_operand op
  | Lret None -> Format.fprintf ppf "ret"
  | Lexit -> Format.fprintf ppf "exit"

let pp ppf t =
  Array.iteri
    (fun pc linst ->
      List.iter
        (fun fi -> if fi.entry_pc = pc then Format.fprintf ppf "; --- %s ---@." fi.fname)
        t.funcs;
      let loc = t.locs.(pc) in
      Format.fprintf ppf "%4d [bb%d]  %a@." pc loc.in_block pp_linst linst)
    t.code
