open Types

let pp_value ppf = function
  | I n -> Format.fprintf ppf "%d" n
  | F x -> Format.fprintf ppf "%h" x

let pp_operand ppf = function
  | Reg r -> Format.fprintf ppf "r%d" r
  | Imm v -> pp_value ppf v

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | Min -> "min"
  | Max -> "max"
  | Land -> "and"
  | Lor -> "or"
  | Lxor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Fadd -> "fadd"
  | Fsub -> "fsub"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"
  | Fmin -> "fmin"
  | Fmax -> "fmax"
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"
  | Feq -> "feq"
  | Fne -> "fne"
  | Flt -> "flt"
  | Fle -> "fle"
  | Fgt -> "fgt"
  | Fge -> "fge"

let unop_name = function
  | Neg -> "neg"
  | Not -> "not"
  | Bnot -> "bnot"
  | Fneg -> "fneg"
  | Itof -> "itof"
  | Ftoi -> "ftoi"
  | Sqrt -> "sqrt"
  | Exp -> "exp"
  | Log -> "log"
  | Sin -> "sin"
  | Cos -> "cos"
  | Fabs -> "fabs"

let pp_inst ppf = function
  | Bin (op, d, a, b) ->
    Format.fprintf ppf "r%d = %s %a, %a" d (binop_name op) pp_operand a pp_operand b
  | Un (op, d, a) -> Format.fprintf ppf "r%d = %s %a" d (unop_name op) pp_operand a
  | Mov (d, a) -> Format.fprintf ppf "r%d = mov %a" d pp_operand a
  | Load (d, a) -> Format.fprintf ppf "r%d = load [%a]" d pp_operand a
  | Store (a, v) -> Format.fprintf ppf "store [%a], %a" pp_operand a pp_operand v
  | Tid d -> Format.fprintf ppf "r%d = tid" d
  | Lane d -> Format.fprintf ppf "r%d = lane" d
  | Nthreads d -> Format.fprintf ppf "r%d = nthreads" d
  | Rand d -> Format.fprintf ppf "r%d = rand" d
  | Randint (d, n) -> Format.fprintf ppf "r%d = randint %a" d pp_operand n
  | Call { callee; args; ret } ->
    let pp_args =
      Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp_operand
    in
    (match ret with
    | Some d -> Format.fprintf ppf "r%d = call %s(%a)" d callee pp_args args
    | None -> Format.fprintf ppf "call %s(%a)" callee pp_args args)
  | Join b -> Format.fprintf ppf "join.barrier b%d" b
  | Rejoin b -> Format.fprintf ppf "rejoin.barrier b%d" b
  | Wait b -> Format.fprintf ppf "wait.barrier b%d" b
  | Wait_threshold (b, k) -> Format.fprintf ppf "wait.barrier.th b%d, %d" b k
  | Cancel b -> Format.fprintf ppf "cancel.barrier b%d" b
  | Arrived (d, b) -> Format.fprintf ppf "r%d = arrived b%d" d b

let pp_term ppf = function
  | Jump t -> Format.fprintf ppf "jump bb%d" t
  | Br { cond; if_true; if_false } ->
    Format.fprintf ppf "br %a, bb%d, bb%d" pp_operand cond if_true if_false
  | Ret (Some op) -> Format.fprintf ppf "ret %a" pp_operand op
  | Ret None -> Format.fprintf ppf "ret"
  | Exit -> Format.fprintf ppf "exit"

let pp_hint ppf hint =
  let target =
    match hint.target with
    | Label_target l -> Printf.sprintf "label %s" l
    | Callee_target f -> Printf.sprintf "func %s" f
  in
  let threshold =
    match hint.threshold with None -> "" | Some k -> Printf.sprintf " threshold %d" k
  in
  Format.fprintf ppf "; predict %s from bb%d%s" target hint.region_start threshold

let pp_func ppf f =
  Format.fprintf ppf "func %s(%s) {@." f.fname
    (String.concat ", " (List.map (Printf.sprintf "r%d") f.params));
  List.iter (fun h -> Format.fprintf ppf "  %a@." pp_hint h) f.hints;
  iter_blocks f (fun b ->
      let labels = List.filter_map (fun (n, id) -> if id = b.id then Some n else None) f.labels in
      let label_note =
        match labels with [] -> "" | ls -> Printf.sprintf "  ; label %s" (String.concat ", " ls)
      in
      let entry_note = if b.id = f.entry then "  ; entry" else "" in
      Format.fprintf ppf "bb%d:%s%s@." b.id entry_note label_note;
      List.iter (fun i -> Format.fprintf ppf "  %a@." pp_inst i) b.insts;
      Format.fprintf ppf "  %a@." pp_term b.term);
  Format.fprintf ppf "}@."

let pp_program ppf p =
  Hashtbl.iter (fun name (base, size) -> Format.fprintf ppf "global %s @%d[%d]@." name base size)
    p.globals;
  let names = Hashtbl.fold (fun n _ acc -> n :: acc) p.funcs [] in
  let names = List.sort compare names in
  let kernel_first = List.filter (String.equal p.kernel) names in
  let rest = List.filter (fun n -> not (String.equal p.kernel n)) names in
  List.iter
    (fun n ->
      if String.equal n p.kernel then Format.fprintf ppf "; kernel@."
      else if List.mem n p.kernels then Format.fprintf ppf "; kernel (secondary)@.";
      pp_func ppf (Hashtbl.find p.funcs n))
    (kernel_first @ rest)

let func_to_string f = Format.asprintf "%a" pp_func f
let program_to_string p = Format.asprintf "%a" pp_program p
