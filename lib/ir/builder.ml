open Types

let create_program () =
  {
    funcs = Hashtbl.create 8;
    kernel = "";
    kernels = [];
    next_barrier = 0;
    globals = Hashtbl.create 8;
    mem_size = 0;
    float_regions = [];
  }

let create_func program name ~params =
  if Hashtbl.mem program.funcs name then
    invalid_arg (Printf.sprintf "Builder.create_func: duplicate function %s" name);
  if params < 0 then invalid_arg "Builder.create_func: negative parameter count";
  let entry_block = { id = 0; insts = []; term = Exit; src_line = None } in
  let blocks = Hashtbl.create 16 in
  Hashtbl.replace blocks 0 entry_block;
  let f =
    {
      fname = name;
      params = List.init params Fun.id;
      blocks;
      entry = 0;
      next_reg = params;
      next_block = 1;
      hints = [];
      labels = [];
    }
  in
  Hashtbl.replace program.funcs name f;
  f

let add_kernel program name =
  if not (Hashtbl.mem program.funcs name) then
    invalid_arg (Printf.sprintf "Builder.add_kernel: unknown function %s" name);
  if not (List.mem name program.kernels) then program.kernels <- program.kernels @ [ name ];
  if String.equal program.kernel "" then program.kernel <- name

let set_kernel program name =
  if not (Hashtbl.mem program.funcs name) then
    invalid_arg (Printf.sprintf "Builder.set_kernel: unknown function %s" name);
  program.kernel <- name;
  if not (List.mem name program.kernels) then program.kernels <- program.kernels @ [ name ]

let alloc_global ?(float = false) program name size =
  if size <= 0 then invalid_arg "Builder.alloc_global: size must be positive";
  if Hashtbl.mem program.globals name then
    invalid_arg (Printf.sprintf "Builder.alloc_global: duplicate global %s" name);
  let base = program.mem_size in
  Hashtbl.replace program.globals name (base, size);
  program.mem_size <- base + size;
  if float then program.float_regions <- (base, size) :: program.float_regions;
  base

let global_base program name =
  match Hashtbl.find_opt program.globals name with
  | Some (base, _) -> base
  | None -> invalid_arg (Printf.sprintf "Builder.global_base: unknown global %s" name)

let fresh_reg f =
  let r = f.next_reg in
  f.next_reg <- r + 1;
  r

let fresh_barrier program =
  let b = program.next_barrier in
  program.next_barrier <- b + 1;
  b

let add_block f =
  let id = f.next_block in
  f.next_block <- id + 1;
  Hashtbl.replace f.blocks id { id; insts = []; term = Exit; src_line = None };
  id

let append f bid inst =
  let b = block f bid in
  b.insts <- b.insts @ [ inst ]

let prepend f bid inst =
  let b = block f bid in
  b.insts <- inst :: b.insts

let set_term f bid term =
  let b = block f bid in
  b.term <- term

let add_label f name bid =
  if List.mem_assoc name f.labels then
    invalid_arg (Printf.sprintf "Builder.add_label: duplicate label %s in %s" name f.fname);
  f.labels <- (name, bid) :: f.labels

let add_hint f hint = f.hints <- f.hints @ [ hint ]
let label_block f name = List.assoc_opt name f.labels

(* Deep copy: blocks are the only mutable leaves below a function, and
   instructions/terminators are immutable values, so copying each block
   record (and the containing tables/lists) is a full structural copy. *)
let copy_program (p : program) =
  let funcs = Hashtbl.create (Hashtbl.length p.funcs) in
  Hashtbl.iter
    (fun name (f : func) ->
      let blocks = Hashtbl.create (Hashtbl.length f.blocks) in
      Hashtbl.iter
        (fun id (b : block) ->
          Hashtbl.replace blocks id
            { id = b.id; insts = b.insts; term = b.term; src_line = b.src_line })
        f.blocks;
      Hashtbl.replace funcs name
        {
          fname = f.fname;
          params = f.params;
          blocks;
          entry = f.entry;
          next_reg = f.next_reg;
          next_block = f.next_block;
          hints = f.hints;
          labels = f.labels;
        })
    p.funcs;
  {
    funcs;
    kernel = p.kernel;
    kernels = p.kernels;
    next_barrier = p.next_barrier;
    globals = Hashtbl.copy p.globals;
    mem_size = p.mem_size;
    float_regions = p.float_regions;
  }
