(* Core intermediate representation for MiniSIMT kernels.

   The IR is a conventional register machine over a control-flow graph:
   unlimited per-thread virtual registers, basic blocks ending in a single
   terminator, and functions collected into a program with one designated
   kernel entry. Convergence-barrier primitives (the paper's JoinBarrier /
   WaitBarrier / CancelBarrier / RejoinBarrier, Table 1) are ordinary
   instructions so that the synchronization passes can place them with
   instruction granularity. *)

(* Virtual per-thread register, dense within a function. *)
type reg = int

(* Convergence-barrier register id, allocated program-wide. *)
type barrier = int

type block_id = int

(* Runtime values are dynamically typed: integers double as booleans
   (0 = false). *)
type value = I of int | F of float

type binop =
  (* integer arithmetic *)
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Min
  | Max
  (* bitwise *)
  | Land
  | Lor
  | Lxor
  | Shl
  | Shr
  (* float arithmetic *)
  | Fadd
  | Fsub
  | Fmul
  | Fdiv
  | Fmin
  | Fmax
  (* integer comparisons, producing I 0 / I 1 *)
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  (* float comparisons, producing I 0 / I 1 *)
  | Feq
  | Fne
  | Flt
  | Fle
  | Fgt
  | Fge

type unop =
  | Neg
  | Not (* logical: nonzero -> 0, zero -> 1 *)
  | Bnot (* bitwise complement *)
  | Fneg
  | Itof
  | Ftoi
  | Sqrt
  | Exp
  | Log
  | Sin
  | Cos
  | Fabs

type operand = Reg of reg | Imm of value

type inst =
  | Bin of binop * reg * operand * operand
  | Un of unop * reg * operand
  | Mov of reg * operand
  | Load of reg * operand (* dst <- mem[addr] *)
  | Store of operand * operand (* mem[addr] <- value *)
  | Tid of reg (* global thread index *)
  | Lane of reg (* lane index within the warp *)
  | Nthreads of reg (* total launched threads *)
  | Rand of reg (* per-thread uniform float in [0, 1) *)
  | Randint of reg * operand (* per-thread uniform int in [0, n) *)
  | Call of { callee : string; args : operand list; ret : reg option }
  (* Convergence-barrier primitives (Table 1 of the paper). [Rejoin] is
     semantically a join; keeping it distinct preserves the provenance the
     paper's Figure 4(d) shows and aids testing. *)
  | Join of barrier
  | Rejoin of barrier
  | Wait of barrier
  | Wait_threshold of barrier * int
      (* Soft barrier (§4.6): release the blocked participants once at
         least [threshold] of them have arrived, or all remaining
         participants have arrived or withdrawn. *)
  | Cancel of barrier
  | Arrived of reg * barrier
      (* dst <- number of participants currently blocked on the barrier;
         building block for the literal Figure-6 soft-barrier encoding. *)

type terminator =
  | Jump of block_id
  | Br of { cond : operand; if_true : block_id; if_false : block_id }
  | Ret of operand option (* return from a device function *)
  | Exit (* thread finishes the kernel *)

type block = {
  id : block_id;
  mutable insts : inst list;
  mutable term : terminator;
  mutable src_line : int option;
      (* source line of the statement that opened this block, for
         diagnostics; [None] for synthesized blocks *)
}

(* A user (or auto-detector) reconvergence hint, §4.1: the predicted
   reconvergence location plus the region where the prediction applies. *)
type hint_target = Label_target of string | Callee_target of string

type predict_hint = {
  target : hint_target;
  region_start : block_id; (* block where the Predict directive lands *)
  threshold : int option; (* soft-barrier threshold, if any *)
}

type func = {
  fname : string;
  params : reg list;
  blocks : (block_id, block) Hashtbl.t;
  mutable entry : block_id;
  mutable next_reg : int;
  mutable next_block : int;
  mutable hints : predict_hint list;
  mutable labels : (string * block_id) list; (* reconvergence labels *)
}

type program = {
  funcs : (string, func) Hashtbl.t;
  mutable kernel : string; (* name of the default (entry) kernel *)
  mutable kernels : string list;
      (* every launchable kernel, in declaration order; contains [kernel].
         Hosts may launch any of them ([Interp.run ?entry]). *)
  mutable next_barrier : int;
  globals : (string, int * int) Hashtbl.t; (* name -> (base, size) *)
  mutable mem_size : int;
  mutable float_regions : (int * int) list;
      (* (base, size) of float-typed globals; their cells launch as
         [F 0.0] instead of [I 0] *)
}

(* ------------------------------------------------------------------ *)
(* Structural helpers                                                  *)
(* ------------------------------------------------------------------ *)

let block f id =
  match Hashtbl.find_opt f.blocks id with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Ir.Types.block: no block %d in %s" id f.fname)

let successors term =
  match term with
  | Jump target -> [ target ]
  | Br { if_true; if_false; _ } ->
    if if_true = if_false then [ if_true ] else [ if_true; if_false ]
  | Ret _ | Exit -> []

let block_ids f =
  let ids = Hashtbl.fold (fun id _ acc -> id :: acc) f.blocks [] in
  List.sort compare ids

let iter_blocks f g = List.iter (fun id -> g (block f id)) (block_ids f)

let predecessors f =
  let preds = Hashtbl.create 16 in
  iter_blocks f (fun b ->
      List.iter
        (fun s ->
          let existing = Option.value (Hashtbl.find_opt preds s) ~default:[] in
          Hashtbl.replace preds s (b.id :: existing))
        (successors b.term));
  fun id -> Option.value (Hashtbl.find_opt preds id) ~default:[]

let operand_uses = function Reg r -> [ r ] | Imm _ -> []

(* Registers defined by an instruction. *)
let defs = function
  | Bin (_, d, _, _)
  | Un (_, d, _)
  | Mov (d, _)
  | Load (d, _)
  | Tid d
  | Lane d
  | Nthreads d
  | Rand d
  | Randint (d, _)
  | Arrived (d, _) -> [ d ]
  | Call { ret = Some d; _ } -> [ d ]
  | Call { ret = None; _ } -> []
  | Store _ | Join _ | Rejoin _ | Wait _ | Wait_threshold _ | Cancel _ -> []

(* Registers read by an instruction. *)
let uses = function
  | Bin (_, _, a, b) -> operand_uses a @ operand_uses b
  | Un (_, _, a) | Mov (_, a) | Load (_, a) | Randint (_, a) -> operand_uses a
  | Store (a, v) -> operand_uses a @ operand_uses v
  | Call { args; _ } -> List.concat_map operand_uses args
  | Tid _ | Lane _ | Nthreads _ | Rand _ -> []
  | Join _ | Rejoin _ | Wait _ | Wait_threshold _ | Cancel _ | Arrived _ -> []

let term_uses = function
  | Br { cond; _ } -> operand_uses cond
  | Ret (Some op) -> operand_uses op
  | Ret None | Jump _ | Exit -> []

(* Barrier referenced by an instruction, if any. *)
let barrier_of = function
  | Join b | Rejoin b | Wait b | Wait_threshold (b, _) | Cancel b | Arrived (_, b) -> Some b
  | Bin _ | Un _ | Mov _ | Load _ | Store _ | Tid _ | Lane _ | Nthreads _ | Rand _ | Randint _
  | Call _ -> None

let is_barrier_inst i = Option.is_some (barrier_of i)

(* Integer comparisons on binop classes used by the cost model and the
   divergence analysis. *)
let is_float_op = function
  | Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax | Feq | Fne | Flt | Fle | Fgt | Fge -> true
  | Add | Sub | Mul | Div | Rem | Min | Max | Land | Lor | Lxor | Shl | Shr | Eq | Ne | Lt | Le
  | Gt | Ge -> false

let is_special_unop = function
  | Sqrt | Exp | Log | Sin | Cos -> true
  | Neg | Not | Bnot | Fneg | Itof | Ftoi | Fabs -> false
