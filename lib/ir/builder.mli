(** Imperative construction API for IR programs.

    Workload kernels and tests build IR either through the MiniSIMT front
    end or directly through this module. All mutation goes through here so
    invariants (dense ids, existing targets) hold by construction; the
    {!Verifier} re-checks them after passes run. *)

open Types

(** [create_program ()] makes an empty program with no kernel set. *)
val create_program : unit -> program

(** [create_func program name ~params:n] registers a new function with [n]
    parameters (bound to registers [0 .. n-1]) and a fresh empty entry
    block.
    @raise Invalid_argument if a function with this name already exists. *)
val create_func : program -> string -> params:int -> func

(** [set_kernel program name] designates the default (entry) kernel and
    marks it launchable.
    @raise Invalid_argument if [name] is not a registered function. *)
val set_kernel : program -> string -> unit

(** [add_kernel program name] marks a function launchable without making
    it the default entry (multi-kernel programs); the first kernel added
    to a program with no entry becomes the entry.
    @raise Invalid_argument if [name] is not a registered function. *)
val add_kernel : program -> string -> unit

(** [alloc_global ?float program name size] reserves [size] consecutive
    memory cells and returns the base address. [~float:true] marks the
    region float-typed: its cells are initialised to [F 0.0] at launch
    instead of [I 0].
    @raise Invalid_argument on duplicate names or non-positive sizes. *)
val alloc_global : ?float:bool -> program -> string -> int -> int

(** [global_base program name] looks up a global's base address. *)
val global_base : program -> string -> int

(** [fresh_reg func] allocates a new virtual register. *)
val fresh_reg : func -> reg

(** [fresh_barrier program] allocates a new barrier id. *)
val fresh_barrier : program -> barrier

(** [add_block func] creates a new empty block (terminator [Exit]) and
    returns its id. *)
val add_block : func -> block_id

(** [append func bid inst] appends an instruction to a block. *)
val append : func -> block_id -> inst -> unit

(** [prepend func bid inst] inserts an instruction at the block start. *)
val prepend : func -> block_id -> inst -> unit

(** [set_term func bid term] sets a block's terminator. *)
val set_term : func -> block_id -> terminator -> unit

(** [add_label func name bid] records a reconvergence label at [bid].
    @raise Invalid_argument on duplicate label names. *)
val add_label : func -> string -> block_id -> unit

(** [add_hint func hint] records a Predict hint. *)
val add_hint : func -> predict_hint -> unit

(** [label_block func name] resolves a label to its block. *)
val label_block : func -> string -> block_id option

(** [copy_program p] is a deep structural copy: mutating the copy's
    blocks, hints or allocation counters never affects [p]. Used by
    passes that explore candidate edits before committing them. *)
val copy_program : program -> program
