module Sm = Support.Splitmix

type event =
  | Pick of { step : int; warp : int; index : int }
  | Mem_spike of { step : int; warp : int; extra : int }
  | Release of { step : int; warp : int; slot : int }
  | Stall of { step : int; warp : int; cycles : int }
  | Io_delay of { step : int; warp : int; extra : int }

type disturbance = D_release of int | D_stall of int

type rates = {
  pick_rate : float;
  mem_rate : float;
  mem_spike_max : int;
  release_rate : float;
  stall_rate : float;
  stall_max : int;
  io_rate : float;
  io_max : int;
}

let default_rates =
  {
    pick_rate = 0.05;
    mem_rate = 0.02;
    mem_spike_max = 200;
    release_rate = 0.004;
    stall_rate = 0.004;
    stall_max = 64;
    io_rate = 0.03;
    io_max = 48;
  }

(* Replay lookup is keyed by (channel, per-channel consultation index):
   the simulator is deterministic between consultations, so applying the
   recorded event at the same index reproduces the faulted run exactly. *)
type channel = Pick_ch | Mem_ch | Disturb_ch | Io_ch

type mode = Generate of Sm.t * rates | Replay of (channel * int, event) Hashtbl.t

type t = {
  mode : mode;
  mutable pick_step : int;
  mutable mem_step : int;
  mutable disturb_step : int;
  mutable io_step : int;
  mutable applied_rev : event list;
}

let create ?(rates = default_rates) ~seed () =
  {
    mode = Generate (Sm.of_ints seed 0xfa17 0x1417, rates);
    pick_step = 0;
    mem_step = 0;
    disturb_step = 0;
    io_step = 0;
    applied_rev = [];
  }

let channel_of = function
  | Pick _ -> Pick_ch
  | Mem_spike _ -> Mem_ch
  | Release _ | Stall _ -> Disturb_ch
  | Io_delay _ -> Io_ch

let step_of = function
  | Pick { step; _ } | Mem_spike { step; _ } | Release { step; _ } | Stall { step; _ }
  | Io_delay { step; _ } ->
    step

let replay events =
  let tbl = Hashtbl.create 64 in
  List.iter (fun ev -> Hashtbl.replace tbl (channel_of ev, step_of ev) ev) events;
  { mode = Replay tbl; pick_step = 0; mem_step = 0; disturb_step = 0; io_step = 0;
    applied_rev = [] }

let events t = List.rev t.applied_rev

let record t ev = t.applied_rev <- ev :: t.applied_rev

let pick t ~warp ~k ~chosen =
  let step = t.pick_step in
  t.pick_step <- step + 1;
  match t.mode with
  | Generate (rng, r) ->
    if k >= 2 && Sm.float rng < r.pick_rate then begin
      let index = Sm.int rng k in
      if index <> chosen then record t (Pick { step; warp; index });
      index
    end
    else chosen
  | Replay tbl -> (
    match Hashtbl.find_opt tbl (Pick_ch, step) with
    | Some (Pick { index; _ }) when index < k ->
      record t (Pick { step; warp; index });
      index
    | _ -> chosen)

let mem_spike t ~warp =
  let step = t.mem_step in
  t.mem_step <- step + 1;
  match t.mode with
  | Generate (rng, r) ->
    if Sm.float rng < r.mem_rate then begin
      let extra = 1 + Sm.int rng r.mem_spike_max in
      record t (Mem_spike { step; warp; extra });
      extra
    end
    else 0
  | Replay tbl -> (
    match Hashtbl.find_opt tbl (Mem_ch, step) with
    | Some (Mem_spike { extra; _ }) ->
      record t (Mem_spike { step; warp; extra });
      extra
    | _ -> 0)

(* io-delay: seeded per-warp memory-response jitter. A separate channel
   (own counter, own rate) from mem_spike: a spike models one slow
   transaction, jitter models interconnect noise on every response — and
   keeping the streams apart lets a replay reproduce either without the
   other. *)
let io_delay t ~warp =
  let step = t.io_step in
  t.io_step <- step + 1;
  match t.mode with
  | Generate (rng, r) ->
    if Sm.float rng < r.io_rate then begin
      let extra = 1 + Sm.int rng r.io_max in
      record t (Io_delay { step; warp; extra });
      extra
    end
    else 0
  | Replay tbl -> (
    match Hashtbl.find_opt tbl (Io_ch, step) with
    | Some (Io_delay { extra; _ }) ->
      record t (Io_delay { step; warp; extra });
      extra
    | _ -> 0)

let disturb t ~warp ~waiting_slots =
  let step = t.disturb_step in
  t.disturb_step <- step + 1;
  match t.mode with
  | Generate (rng, r) ->
    let x = Sm.float rng in
    if x < r.release_rate then (
      match waiting_slots with
      | [] -> None
      | slots ->
        let slot = List.nth slots (Sm.int rng (List.length slots)) in
        record t (Release { step; warp; slot });
        Some (D_release slot))
    else if x < r.release_rate +. r.stall_rate then begin
      let cycles = 1 + Sm.int rng r.stall_max in
      record t (Stall { step; warp; cycles });
      Some (D_stall cycles)
    end
    else None
  | Replay tbl -> (
    match Hashtbl.find_opt tbl (Disturb_ch, step) with
    | Some (Release { slot; _ }) when List.mem slot waiting_slots ->
      record t (Release { step; warp; slot });
      Some (D_release slot)
    | Some (Stall { cycles; _ }) ->
      record t (Stall { step; warp; cycles });
      Some (D_stall cycles)
    | _ -> None)

(* ---- trace printing and parsing (deterministic replay format) ---- *)

let pp_event ppf = function
  | Pick { step; warp; index } -> Format.fprintf ppf "fault pick step=%d warp=%d index=%d" step warp index
  | Mem_spike { step; warp; extra } ->
    Format.fprintf ppf "fault mem step=%d warp=%d extra=%d" step warp extra
  | Release { step; warp; slot } ->
    Format.fprintf ppf "fault release step=%d warp=%d slot=%d" step warp slot
  | Stall { step; warp; cycles } ->
    Format.fprintf ppf "fault stall step=%d warp=%d cycles=%d" step warp cycles
  | Io_delay { step; warp; extra } ->
    Format.fprintf ppf "fault io step=%d warp=%d extra=%d" step warp extra

let pp_trace ppf events =
  List.iter (fun ev -> Format.fprintf ppf "%a@." pp_event ev) events

let trace_to_string events = Format.asprintf "%a" pp_trace events

let parse_event line =
  let fail () = failwith (Printf.sprintf "Faults.parse_trace: malformed line %S" line) in
  match String.split_on_char ' ' (String.trim line) with
  | [ "fault"; kind; s; w; x ] -> (
    let field name kv =
      match String.split_on_char '=' kv with
      | [ k; v ] when String.equal k name -> (
        match int_of_string_opt v with Some n -> n | None -> fail ())
      | _ -> fail ()
    in
    let step = field "step" s and warp = field "warp" w in
    match kind with
    | "pick" -> Pick { step; warp; index = field "index" x }
    | "mem" -> Mem_spike { step; warp; extra = field "extra" x }
    | "release" -> Release { step; warp; slot = field "slot" x }
    | "stall" -> Stall { step; warp; cycles = field "cycles" x }
    | "io" -> Io_delay { step; warp; extra = field "extra" x }
    | _ -> fail ())
  | _ -> fail ()

let parse_trace text =
  String.split_on_char '\n' text
  |> List.filter (fun l ->
         let l = String.trim l in
         String.length l > 0 && not (String.length l >= 1 && l.[0] = '#'))
  |> List.map parse_event
