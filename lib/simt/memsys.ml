type stats = { reads : int; writes : int; transactions : int; hits : int; misses : int }

type cache_state = {
  csets : int;
  cways : int;
  hit_latency : int;
  (* tags.(set) is a list of line tags, most recently used first. *)
  tags : int list array;
}

type t = {
  config : Config.memory;
  data : Ir.Types.value array;
  cache : cache_state option;
  (* Scratch for coalescing: distinct line ids of the access in flight.
     Grown on demand; reused across accesses so the hot path stays
     allocation-free. *)
  mutable lines : int array;
  mutable reads : int;
  mutable writes : int;
  mutable transactions : int;
  mutable hits : int;
  mutable misses : int;
}

let create (config : Config.memory) ~size =
  if size < 0 then invalid_arg "Memsys.create: negative size";
  let cache =
    Option.map
      (fun (c : Config.cache) ->
        { csets = c.sets; cways = c.ways; hit_latency = c.hit_latency; tags = Array.make c.sets [] })
      config.cache
  in
  {
    config;
    data = Array.make size (Ir.Types.I 0);
    cache;
    lines = Array.make 32 0;
    reads = 0;
    writes = 0;
    transactions = 0;
    hits = 0;
    misses = 0;
  }

let check t addr what =
  if addr < 0 || addr >= Array.length t.data then
    invalid_arg (Printf.sprintf "Memsys.%s: address %d out of bounds [0, %d)" what addr
                   (Array.length t.data))

let read t addr =
  check t addr "read";
  t.reads <- t.reads + 1;
  t.data.(addr)

let write t addr v =
  check t addr "write";
  t.writes <- t.writes + 1;
  t.data.(addr) <- v

let size t = Array.length t.data

(* Probe the cache for a line; true on hit. Updates LRU order and fills on
   miss. *)
let probe cache line =
  let set = line mod cache.csets in
  let resident = cache.tags.(set) in
  if List.mem line resident then begin
    cache.tags.(set) <- line :: List.filter (fun l -> l <> line) resident;
    true
  end
  else begin
    let kept =
      if List.length resident >= cache.cways then
        List.filteri (fun i _ -> i < cache.cways - 1) resident
      else resident
    in
    cache.tags.(set) <- line :: kept;
    false
  end

(* [access_costn t ~addrs ~n] prices the warp access touching
   [addrs.(0 .. n-1)]. The distinct lines are collected into the reused
   [t.lines] scratch and probed in ascending order (the order the old
   list-based path established, which the cache LRU state depends on). *)
let access_costn t ~addrs ~n =
  if n = 0 then 0
  else begin
    if Array.length t.lines < n then t.lines <- Array.make n 0;
    let lines = t.lines in
    let k = ref 0 in
    for i = 0 to n - 1 do
      let line = addrs.(i) / t.config.line_words in
      let j = ref 0 in
      while !j < !k && lines.(!j) <> line do incr j done;
      if !j = !k then begin
        lines.(!k) <- line;
        incr k
      end
    done;
    let k = !k in
    (* insertion sort: k is at most the warp width and usually tiny *)
    for i = 1 to k - 1 do
      let line = lines.(i) in
      let j = ref (i - 1) in
      while !j >= 0 && lines.(!j) > line do
        lines.(!j + 1) <- lines.(!j);
        decr j
      done;
      lines.(!j + 1) <- line
    done;
    t.transactions <- t.transactions + k;
    match t.cache with
    | None -> t.config.base_latency + ((k - 1) * t.config.per_transaction)
    | Some cache ->
      let hits = ref 0 in
      for i = 0 to k - 1 do
        if probe cache lines.(i) then incr hits
      done;
      let hits = !hits in
      let misses = k - hits in
      t.hits <- t.hits + hits;
      t.misses <- t.misses + misses;
      let miss_cost =
        if misses = 0 then 0
        else t.config.base_latency + ((misses - 1) * t.config.per_transaction)
      in
      let hit_cost = if hits = 0 then 0 else cache.hit_latency in
      max hit_cost miss_cost
  end

let access_cost t ~addrs =
  let addrs = Array.of_list addrs in
  access_costn t ~addrs ~n:(Array.length addrs)

let stats t =
  { reads = t.reads; writes = t.writes; transactions = t.transactions; hits = t.hits;
    misses = t.misses }

let dump t ~base ~len =
  if base < 0 || len < 0 || base + len > Array.length t.data then
    invalid_arg "Memsys.dump: region out of bounds";
  Array.sub t.data base len

let digest t =
  (* FNV-1a over the type-tagged bit patterns of every word, so two
     memories are digest-equal iff they are value-for-value identical
     (including int/float tags and float payload bits). *)
  let h = ref 0x1465_0fb0_739d_0383 in
  let mix x =
    h := !h lxor x;
    h := !h * 0x100000001b3
  in
  Array.iter
    (fun v ->
      match v with
      | Ir.Types.I n ->
        mix 1;
        mix n
      | Ir.Types.F f ->
        mix 2;
        mix (Int64.to_int (Int64.bits_of_float f)))
    t.data;
  !h land max_int
