(** Global-memory model: backing store, coalescing, optional cache.

    A warp memory access touching [n] distinct lines costs
    [base_latency + (n - 1) * per_transaction] cycles (fully coalesced
    accesses pay the base only). With a cache configured, lines that hit
    pay [hit_latency] instead and the cost is
    [max(hit part, miss part)] approximated additively per line class. *)

type t

type stats = {
  reads : int;
  writes : int;
  transactions : int;
  hits : int;
  misses : int;
}

(** [create config ~size] allocates [size] words initialised to [I 0]. *)
val create : Config.memory -> size:int -> t

(** [read t addr]. @raise Invalid_argument out of bounds. *)
val read : t -> int -> Ir.Types.value

(** [write t addr v]. @raise Invalid_argument out of bounds. *)
val write : t -> int -> Ir.Types.value -> unit

val size : t -> int

(** [access_cost t ~addrs] — latency in cycles of one warp-level access
    touching the given per-lane addresses (duplicates allowed), updating
    cache state and statistics. *)
val access_cost : t -> addrs:int list -> int

(** [access_costn t ~addrs ~n] — same as {!access_cost} for the addresses
    in [addrs.(0 .. n-1)]. This is the interpreter's hot-path entry: the
    caller reuses one scratch array across issues, so no per-access list
    is built. *)
val access_costn : t -> addrs:int array -> n:int -> int

val stats : t -> stats

(** [dump t ~base ~len] — snapshot of a memory region. *)
val dump : t -> base:int -> len:int -> Ir.Types.value array

(** [digest t] — a non-negative FNV-style hash of the entire store over
    type-tagged bit patterns: equal iff the memories are value-for-value
    identical (int/float tags and exact float bits included). Used by the
    baseline-equivalence oracle and [srrun --digest]. *)
val digest : t -> int
