module Mask = Support.Mask

type t = {
  warp_size : int;
  participants : Mask.t array;
  waiting : Mask.t array;
  (* threshold.(b).(lane) and arrival.(b).(lane) are meaningful while
     lane is in waiting.(b); -1 encodes "no threshold" (a hard wait). *)
  threshold : int array array;
  arrival : int array array;
}

let create ~n_barriers ~warp_size =
  if n_barriers < 0 then invalid_arg "Barrier_unit.create: negative barrier count";
  {
    warp_size;
    participants = Array.make (max n_barriers 1) Mask.empty;
    waiting = Array.make (max n_barriers 1) Mask.empty;
    threshold = Array.init (max n_barriers 1) (fun _ -> Array.make warp_size (-1));
    arrival = Array.init (max n_barriers 1) (fun _ -> Array.make warp_size 0);
  }

let check t b lane =
  if b < 0 || b >= Array.length t.participants then
    invalid_arg (Printf.sprintf "Barrier_unit: barrier b%d out of range" b);
  if lane < 0 || lane >= t.warp_size then
    invalid_arg (Printf.sprintf "Barrier_unit: lane %d out of range" lane)

let join t b lane =
  check t b lane;
  t.participants.(b) <- Mask.add lane t.participants.(b)

let cancel t b lane =
  check t b lane;
  t.participants.(b) <- Mask.remove lane t.participants.(b);
  t.waiting.(b) <- Mask.remove lane t.waiting.(b)

let block ?(now = 0) t b lane ~threshold =
  check t b lane;
  if not (Mask.mem lane t.participants.(b)) then
    invalid_arg (Printf.sprintf "Barrier_unit.block: lane %d not participating in b%d" lane b);
  t.waiting.(b) <- Mask.add lane t.waiting.(b);
  t.threshold.(b).(lane) <- Option.value threshold ~default:(-1);
  t.arrival.(b).(lane) <- now

let withdraw_lane t lane =
  let affected = ref [] in
  Array.iteri
    (fun b p ->
      if Mask.mem lane p then begin
        t.participants.(b) <- Mask.remove lane p;
        t.waiting.(b) <- Mask.remove lane t.waiting.(b);
        affected := b :: !affected
      end)
    t.participants;
  List.rev !affected

let is_participant t b lane =
  check t b lane;
  Mask.mem lane t.participants.(b)

let arrived t b = Mask.count t.waiting.(b)
let participants t b = t.participants.(b)
let waiting t b = t.waiting.(b)

let fire_condition t b =
  let w = t.waiting.(b) and p = t.participants.(b) in
  if Mask.is_empty w then false
  else if Mask.equal w p then true
  else
    (* Soft-barrier rule: fire when at least one waiter's threshold is
       met by the number of blocked participants. The waiter count is
       loop-invariant, so take the popcount once. *)
    let arrived = Mask.count w in
    Mask.fold
      (fun lane acc ->
        let k = t.threshold.(b).(lane) in
        acc || (k >= 0 && arrived >= k))
      w false

let release t b =
  let released = t.waiting.(b) in
  t.participants.(b) <- Mask.diff t.participants.(b) released;
  t.waiting.(b) <- Mask.empty;
  Mask.iter (fun lane -> t.threshold.(b).(lane) <- -1) released;
  released

let fired t b = if fire_condition t b then Some (release t b) else None

let force_release t b =
  if Mask.is_empty t.waiting.(b) then None else Some (release t b)

let oldest_arrival t b =
  let w = t.waiting.(b) in
  if Mask.is_empty w then None
  else
    Some
      (Mask.fold
         (fun lane acc -> min acc t.arrival.(b).(lane))
         w max_int)

let blocked_anywhere t lane =
  let result = ref None in
  Array.iteri (fun b w -> if !result = None && Mask.mem lane w then result := Some b) t.waiting;
  !result

let pp ppf t =
  Array.iteri
    (fun b p ->
      if not (Mask.is_empty p) || not (Mask.is_empty t.waiting.(b)) then
        Format.fprintf ppf "b%d: participants=%a waiting=%a@." b
          (Mask.pp ~width:t.warp_size) p
          (Mask.pp ~width:t.warp_size) t.waiting.(b))
    t.participants
