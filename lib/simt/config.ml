type policy = Most_threads | Lowest_pc | Round_robin

type yield_policy = Oldest_arrival | Most_waiters | Lowest_slot

type latencies = {
  alu : int;
  float_op : int;
  special : int;
  branch : int;
  barrier : int;
  call : int;
  rand : int;
}

type cache = { sets : int; ways : int; hit_latency : int }

type memory = {
  line_words : int;
  base_latency : int;
  per_transaction : int;
  cache : cache option;
}

type t = {
  warp_size : int;
  n_warps : int;
  policy : policy;
  latencies : latencies;
  memory : memory;
  yield_on_stall : bool;
  yield_policy : yield_policy;
  seed : int;
  max_issues : int;
  fuel : int;
}

let default =
  {
    warp_size = 32;
    n_warps = 4;
    policy = Most_threads;
    (* Arithmetic is modelled as fully pipelined (latency ~ issue cost);
       only memory, transcendentals and sync carry real stall latency.
       This matches SIMT hardware, where back-to-back independent issues
       hide ALU latency within a warp. *)
    latencies =
      { alu = 1; float_op = 2; special = 6; branch = 1; barrier = 1; call = 2; rand = 3 };
    memory = { line_words = 16; base_latency = 36; per_transaction = 6; cache = None };
    yield_on_stall = false;
    yield_policy = Oldest_arrival;
    seed = 42;
    max_issues = 200_000_000;
    fuel = 0;
  }

let validate t =
  if t.warp_size <= 0 || t.warp_size > Support.Mask.max_width then
    invalid_arg
      (Printf.sprintf "Config: warp_size %d out of range [1, %d]" t.warp_size
         Support.Mask.max_width);
  if t.n_warps <= 0 then invalid_arg "Config: n_warps must be positive";
  if t.max_issues <= 0 then invalid_arg "Config: max_issues must be positive";
  if t.fuel < 0 then invalid_arg "Config: fuel must be non-negative (0 = unlimited)";
  let l = t.latencies in
  if l.alu <= 0 || l.float_op <= 0 || l.special <= 0 || l.branch <= 0 || l.barrier <= 0
     || l.call <= 0 || l.rand <= 0
  then invalid_arg "Config: all latencies must be positive";
  let m = t.memory in
  if m.line_words <= 0 then invalid_arg "Config: line_words must be positive";
  if m.base_latency <= 0 || m.per_transaction < 0 then
    invalid_arg "Config: memory latencies must be non-negative (base positive)";
  match m.cache with
  | Some c ->
    if c.sets <= 0 || c.ways <= 0 || c.hit_latency <= 0 then
      invalid_arg "Config: cache parameters must be positive"
  | None -> ()
