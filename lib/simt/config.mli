(** Machine configuration for the SIMT simulator.

    Defaults model a Volta-class streaming multiprocessor at warp
    granularity: 32-lane warps with independent thread scheduling,
    convergence barriers, one shared issue port, and a latency-based
    memory model with 128-byte (16-word) coalescing. *)

(** How the per-warp scheduler picks among runnable same-PC groups. *)
type policy =
  | Most_threads  (** largest group first; ties to the lowest pc — models a
                      convergence-optimizer-style greedy scheduler *)
  | Lowest_pc  (** lowest pc first — lets lagging threads catch up *)
  | Round_robin  (** rotate over groups — fairness baseline *)

(** How yield recovery picks the victim barrier when every live group of
    a warp is blocked on convergence barriers (the forward-progress
    watchdog). All three are deterministic; ties break toward the lowest
    slot id. *)
type yield_policy =
  | Oldest_arrival  (** the barrier whose longest-blocked lane arrived
                        first — Volta-faithful: the wait that has starved
                        longest is released first *)
  | Most_waiters  (** the barrier releasing the most blocked lanes *)
  | Lowest_slot  (** the lowest slot id with blocked lanes *)

type latencies = {
  alu : int;
  float_op : int;
  special : int; (* sqrt/exp/log/sin/cos *)
  branch : int;
  barrier : int;
  call : int;
  rand : int;
}

type cache = {
  sets : int;
  ways : int;
  hit_latency : int;
}

type memory = {
  line_words : int; (* words per coalescing segment / cache line *)
  base_latency : int; (* first transaction *)
  per_transaction : int; (* each extra non-coalesced transaction *)
  cache : cache option;
}

type t = {
  warp_size : int;
  n_warps : int;
  policy : policy;
  latencies : latencies;
  memory : memory;
  yield_on_stall : bool;
      (** Volta-style forward progress: when a warp's every live group is
          blocked on convergence barriers, forcibly release a victim
          barrier (chosen by [yield_policy]) instead of reporting
          deadlock. The run completes with correct memory but degraded
          SIMT efficiency; {!Metrics.t} attributes the loss. Off by
          default so that missing deconfliction is a detectable compiler
          bug. *)
  yield_policy : yield_policy;
  seed : int;
  max_issues : int; (** safety net against runaway programs *)
  fuel : int;
      (** request deadline: the run stops deterministically with
          {!Interp.Deadline_exceeded} once this many instructions have
          issued ([0] = unlimited). Unlike [max_issues] — a tool-bug
          safety net mapped to the runtime failure code — fuel
          exhaustion is an expected, budgeted outcome with its own exit
          code, so a service can bound a hostile request without
          conflating it with a broken simulator. *)
}

val default : t

(** [validate t] raises [Invalid_argument] on nonsensical parameters
    (warp size out of range, non-positive counts/latencies). *)
val validate : t -> unit
