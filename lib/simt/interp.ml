module Mask = Support.Mask
module L = Ir.Linear
module D = Ir.Decoded
module T = Ir.Types

exception Deadlock of string
exception Runtime_error of string
exception Runaway of string
exception Deadline_exceeded of string

type yield_event = {
  at_cycle : int;
  warp : int;
  slot : int;
  released : int list;
  abandoned : int list;
}

type result = {
  metrics : Metrics.t;
  memory : Memsys.t;
  profile : Analysis.Profile.t;
  yield_log : yield_event list;
}

type issue_event = {
  at_cycle : int;
  warp : int;
  pc : int;
  active : int list;
  where : L.location;
}

type thread_status = Ready | Blocked | Done

(* [ret_reg] is the caller register receiving the return value, -1 for
   none — decoded form, no option box. *)
type frame = { regs : T.value array; ret_pc : int; ret_reg : int }

type thread = {
  lane : int;
  tid : int;
  rng : Support.Splitmix.t;
  mutable frames : frame list; (* head = current frame *)
  (* Cache of the head frame's register file, so the issue path reads
     registers with one array load instead of a list match per operand.
     Invariant: [cur_regs == (List.hd frames).regs]; updated on call and
     return, the only places the frame stack changes. *)
  mutable cur_regs : T.value array;
  mutable pc : int;
  mutable status : thread_status;
  mutable ready_at : int;
  (* Convergence-group identity: the index of this thread's group slot in
     its warp's [gmask] table. Threads co-issue only when they share a
     group; groups split whenever members head to different places
     (divergent branch outcomes, barrier blocking) and merge ONLY when a
     convergence barrier fires. This models Volta behaviour faithfully:
     diverged threads do not spontaneously reconverge just because their
     PCs happen to coincide — reconvergence requires a barrier, which is
     exactly why compilers insert them. *)
  mutable group : int;
}

type warp = {
  wid : int;
  threads : thread array;
  barriers : Barrier_unit.t;
  mutable rr_pc : int; (* last pc issued by the Round_robin policy *)
  (* Live convergence groups as a packed table of lane bitmasks: slots
     [0, n_groups) hold disjoint non-empty masks covering every non-Done
     thread. Maintained incrementally on split/merge, so the issue path
     never rebuilds the partition. Invariant: all members of a group
     share the same pc, status and ready_at — they always transition
     together, and any divergent transition (branch, return, barrier
     block) immediately re-partitions the group by destination. *)
  gmask : Mask.t array;
  mutable n_groups : int;
  (* Cached min ready_at over Ready groups (max_int if none), so an idle
     cycle advances time in O(warps) instead of O(warps × lanes).
     [ready_stale] marks the cache dirty after any group mutation. *)
  mutable ready_min : int;
  mutable ready_stale : bool;
}

let run ?tracer ?faults ?race ?entry (config : Config.t) (dprog : D.t) ~args ~init_memory =
  Config.validate config;
  let lprog = dprog.D.linear in
  let entry_info =
    match entry with
    | None -> lprog.kernel
    | Some name -> (
      match List.find_opt (fun (f : L.finfo) -> String.equal f.fname name) lprog.funcs with
      | Some f -> f
      | None -> invalid_arg (Printf.sprintf "Interp.run: no function named %s" name))
  in
  if List.length args <> entry_info.arity then
    invalid_arg
      (Printf.sprintf "Interp.run: kernel %s expects %d args, got %d" entry_info.fname
         entry_info.arity (List.length args));
  let lat = config.latencies in
  let memory = Memsys.create config.memory ~size:(max lprog.mem_size 1) in
  List.iter
    (fun (base, size) ->
      for addr = base to base + size - 1 do
        Memsys.write memory addr (T.F 0.0)
      done)
    lprog.float_regions;
  init_memory memory;
  let metrics = Metrics.create ~warp_size:config.warp_size in
  let profile = Analysis.Profile.empty () in
  let yield_log = ref [] in
  (* The decoded descriptor columns, hoisted so each issue pays array
     loads, never record-field walks. *)
  let dcode = dprog.D.op in
  let da = dprog.D.a and db = dprog.D.b and dc = dprog.D.c in
  let bops = dprog.D.bop and uops = dprog.D.uop in
  let vals = dprog.D.vals and calls = dprog.D.calls in
  let n_code = Array.length dcode in
  (* Static issue latencies, resolved per slot from the decode-time
     latency class — the hot path never re-classifies an opcode. Memory
     slots keep a placeholder; their cost is dynamic (coalescing). *)
  let lat_tbl =
    Array.map
      (fun cls ->
        if cls = D.lc_alu then lat.alu
        else if cls = D.lc_float then lat.float_op
        else if cls = D.lc_special then lat.special
        else if cls = D.lc_branch then lat.branch
        else if cls = D.lc_barrier then lat.barrier
        else if cls = D.lc_call then lat.call
        else if cls = D.lc_rand then lat.rand
        else 0)
      dprog.D.lclass
  in
  ignore n_code;
  (* Per-block lane counts, keyed by the decode-time block slots; folded
     into [profile] once at the end of the run so the hot loop pays one
     int-array bump instead of a hashtable update per block entry. *)
  let bslot = dprog.D.bslot in
  let prof_counts = Array.make (max (Array.length dprog.D.bfunc) 1) 0 in
  let make_thread wid lane =
    let regs = Array.make (max entry_info.n_regs 1) (T.I 0) in
    List.iteri (fun i v -> regs.(i) <- v) args;
    {
      lane;
      tid = (wid * config.warp_size) + lane;
      rng = Support.Splitmix.of_ints config.seed wid lane;
      frames = [ { regs; ret_pc = -1; ret_reg = -1 } ];
      cur_regs = regs;
      pc = entry_info.entry_pc;
      status = Ready;
      ready_at = 0;
      group = 0;
    }
  in
  let warps =
    Array.init config.n_warps (fun wid ->
        let w =
          {
            wid;
            threads = Array.init config.warp_size (make_thread wid);
            barriers =
              Barrier_unit.create ~n_barriers:lprog.n_barriers ~warp_size:config.warp_size;
            rr_pc = -1;
            gmask = Array.make config.warp_size Mask.empty;
            n_groups = 1;
            ready_min = 0;
            ready_stale = true;
          }
        in
        w.gmask.(0) <- Mask.full config.warp_size;
        w)
  in
  let n_threads = config.n_warps * config.warp_size in
  let cycle = ref 0 in
  let last_warp = ref (config.n_warps - 1) in
  (* Per-run scratch: simulation within one [run] is single-threaded, so
     one set of buffers serves every warp without re-allocation. *)
  let addr_buf = Array.make config.warp_size 0 in
  let part_pc = Array.make config.warp_size 0 in
  let part_slot = Array.make config.warp_size 0 in
  let cand_pc = Array.make config.warp_size 0 in
  let cand_mask = Array.make config.warp_size Mask.empty in
  let context w th =
    Printf.sprintf "warp %d lane %d tid %d pc %d" w.wid th.lane th.tid th.pc
  in
  (* Encoded-operand read: bit 0 picks register file vs immediate pool,
     the rest is the index — no ADT, no frame-list walk. *)
  let eval_enc th e = if e land 1 = 0 then th.cur_regs.(e lsr 1) else vals.(e lsr 1) in
  let mem_cost w cost =
    match faults with
    | Some f ->
      (* Channel order is part of the replay contract: the spike stream
         draws before the io-delay stream on every access. *)
      let spike = Faults.mem_spike f ~warp:w.wid in
      let jitter = Faults.io_delay f ~warp:w.wid in
      cost + spike + jitter
    | None -> cost
  in
  (* ---- incremental group-table maintenance ---- *)
  let detach w th =
    let s = th.group in
    let m = Mask.remove th.lane w.gmask.(s) in
    w.gmask.(s) <- m;
    if Mask.is_empty m then begin
      (* free the slot by moving the last one down *)
      let last = w.n_groups - 1 in
      if s <> last then begin
        w.gmask.(s) <- w.gmask.(last);
        Mask.iter (fun lane -> w.threads.(lane).group <- s) w.gmask.(s)
      end;
      w.n_groups <- last
    end
  in
  (* Threads that moved together may have landed in different places;
     re-partition them into fresh groups by destination pc. *)
  let regroup w moved =
    w.ready_stale <- true;
    Mask.iter
      (fun lane ->
        let th = w.threads.(lane) in
        if th.status <> Done then detach w th)
      moved;
    let k = ref 0 in
    Mask.iter
      (fun lane ->
        let th = w.threads.(lane) in
        if th.status <> Done then begin
          let j = ref 0 in
          while !j < !k && part_pc.(!j) <> th.pc do incr j done;
          if !j = !k then begin
            part_pc.(!k) <- th.pc;
            part_slot.(!k) <- w.n_groups;
            w.gmask.(w.n_groups) <- Mask.empty;
            w.n_groups <- w.n_groups + 1;
            incr k
          end;
          let s = part_slot.(!j) in
          w.gmask.(s) <- Mask.add lane w.gmask.(s);
          th.group <- s
        end)
      moved
  in
  (* Wake a set of lanes released from a barrier: the shared tail of an
     organic fire, a yield-recovery release and a fault-injected spurious
     release. Only organic fires count as [barrier_fires]. *)
  let apply_release w released =
    Mask.iter
      (fun lane ->
        let th = w.threads.(lane) in
        th.status <- Ready;
        th.pc <- th.pc + 1;
        th.ready_at <- !cycle + lat.barrier)
      released;
    (* The release is the one place where diverged threads reconverge:
       everyone released at the same point joins one fresh group. *)
    regroup w released
  in
  (* Release every lane the barrier fire condition allows. Organic fires
     (and only they) advance the warp's race-logger interval: a forced
     release is lost synchronization, so it must not separate accesses
     in the race model. *)
  let release_fired w b =
    match Barrier_unit.fired w.barriers b with
    | None -> ()
    | Some released ->
      metrics.barrier_fires <- metrics.barrier_fires + 1;
      (match race with Some rl -> Race_log.bump rl ~warp:w.wid | None -> ());
      apply_release w released
  in
  let finish_thread w th =
    th.status <- Done;
    w.ready_stale <- true;
    detach w th;
    metrics.threads_finished <- metrics.threads_finished + 1;
    let affected = Barrier_unit.withdraw_lane w.barriers th.lane in
    List.iter (release_fired w) affected
  in
  (* ---- stall handling: yield recovery or deadlock diagnosis ---- *)
  let waiting_slots w =
    let acc = ref [] in
    for b = lprog.n_barriers - 1 downto 0 do
      if not (Mask.is_empty (Barrier_unit.waiting w.barriers b)) then acc := b :: !acc
    done;
    !acc
  in
  (* A warp whose every live group is Blocked can never progress again:
     barrier state is warp-local, so no other warp can release it. *)
  let warp_stalled w =
    w.n_groups > 0
    &&
    let ok = ref true in
    for s = 0 to w.n_groups - 1 do
      if w.threads.(Mask.lowest w.gmask.(s)).status <> Blocked then ok := false
    done;
    !ok
  in
  (* The dynamic waits-for relation among this warp's barriers: barrier
     [c] waits for [b] when a lane [c] still expects (a participant not
     yet arrived) is itself blocked on [b]. A cycle in this relation is
     the concrete deadlock witness — the runtime counterpart of the
     static cycle srlint reports. *)
  let waits_for_cycle w =
    let succ c =
      let expected =
        Mask.diff (Barrier_unit.participants w.barriers c) (Barrier_unit.waiting w.barriers c)
      in
      Mask.fold
        (fun lane acc ->
          match Barrier_unit.blocked_anywhere w.barriers lane with
          | Some b -> ( match acc with Some b' when b' <= b -> acc | _ -> Some b)
          | None -> acc)
        expected None
    in
    let rec drop_until c = function
      | [] -> []
      | x :: rest -> if x = c then x :: rest else drop_until c rest
    in
    let rec walk seen c =
      if List.mem c seen then Some (drop_until c (List.rev seen))
      else match succ c with None -> None | Some b -> walk (c :: seen) b
    in
    List.find_map (fun s -> walk [] s) (waiting_slots w)
  in
  let lanes_str m = "{" ^ String.concat "," (List.map string_of_int (Mask.to_list m)) ^ "}" in
  let sites_str w m =
    let sites =
      Mask.fold
        (fun lane acc ->
          let loc = lprog.locs.(w.threads.(lane).pc) in
          let s = Printf.sprintf "%s/bb%d" loc.L.in_func loc.L.in_block in
          if List.mem s acc then acc else acc @ [ s ])
        m []
    in
    String.concat "," sites
  in
  let deadlock_report w =
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (Printf.sprintf
         "all live threads of warp %d blocked on convergence barriers (conflicting \
          barriers?)\n"
         w.wid);
    (match waits_for_cycle w with
    | Some cycle_slots ->
      let names = List.map (fun b -> Printf.sprintf "b%d" b) cycle_slots in
      Buffer.add_string buf
        (Printf.sprintf "waits-for cycle: %s -> %s\n"
           (String.concat " -> " names)
           (List.hd names));
      List.iter
        (fun b ->
          let waiting = Barrier_unit.waiting w.barriers b in
          let expected = Mask.diff (Barrier_unit.participants w.barriers b) waiting in
          Buffer.add_string buf
            (Printf.sprintf "  b%d: lanes %s blocked at %s; still expects lanes %s (%s)\n" b
               (lanes_str waiting) (sites_str w waiting) (lanes_str expected)
               (sites_str w expected)))
        cycle_slots
    | None -> ());
    Buffer.add_string buf (Format.asprintf "%a" Barrier_unit.pp w.barriers);
    Buffer.add_string buf
      "hint: deconfliction (the compiler default) prevents this; yield recovery (srrun \
       --yield) trades lost convergence for forward progress\n";
    Buffer.contents buf
  in
  (* Every live group of [w] is blocked: release a victim barrier chosen
     by the configured policy (Volta-style forward progress) or report
     the deadlock with its waits-for cycle. *)
  let recover_or_deadlock w =
    let slots = waiting_slots w in
    if slots = [] then
      raise
        (Deadlock
           (Printf.sprintf "warp %d: all groups blocked but no barrier has waiters" w.wid));
    if not config.yield_on_stall then raise (Deadlock (deadlock_report w));
    let victim =
      match config.yield_policy with
      | Config.Lowest_slot -> List.hd slots
      | Config.Oldest_arrival ->
        (* [slots] ascends, so keeping the incumbent on ties breaks
           toward the lowest slot id. *)
        List.fold_left
          (fun best b ->
            let a =
              match Barrier_unit.oldest_arrival w.barriers b with
              | Some a -> a
              | None -> max_int
            in
            match best with Some (ba, _) when ba <= a -> best | _ -> Some (a, b))
          None slots
        |> Option.get |> snd
      | Config.Most_waiters ->
        List.fold_left
          (fun best b ->
            let n = Mask.count (Barrier_unit.waiting w.barriers b) in
            let a =
              match Barrier_unit.oldest_arrival w.barriers b with
              | Some a -> a
              | None -> max_int
            in
            match best with
            | Some (bn, ba, _) when bn > n || (bn = n && ba <= a) -> best
            | _ -> Some (n, a, b))
          None slots
        |> Option.get
        |> fun (_, _, b) -> b
    in
    match Barrier_unit.force_release w.barriers victim with
    | None -> assert false (* victim came from waiting_slots *)
    | Some released ->
      let abandoned = Barrier_unit.participants w.barriers victim in
      metrics.yields <- metrics.yields + 1;
      metrics.yield_released <- metrics.yield_released + Mask.count released;
      metrics.yield_abandoned <- metrics.yield_abandoned + Mask.count abandoned;
      yield_log :=
        {
          at_cycle = !cycle;
          warp = w.wid;
          slot = victim;
          released = Mask.to_list released;
          abandoned = Mask.to_list abandoned;
        }
        :: !yield_log;
      apply_release w released
  in
  (* Blocking and thread exit are the only transitions that can leave a
     warp with every live group blocked — the barrier and exit arms of
     [execute] check right here, so a doomed warp is caught at the
     faulting instruction while other warps keep running. *)
  let watchdog w = if warp_stalled w then recover_or_deadlock w in
  (* Execute one issued group: all lanes of [active] sit at [pc].

     This is the threaded-code dispatch the decode stage exists for: one
     dense integer match over the opcode column (a flat jump table — the
     literal values mirror Ir.Decoded's op_* table), operands read
     through the encoded-int scheme, and every lane walk an open-coded
     peel over the mask bits — no ADT match, no closure per issue, no
     name resolution. Compute and advance fuse into a single pass where
     lanes are independent; loads/stores keep the two-pass gather/commit
     shape because the coalescing cost must be known before lanes can be
     advanced. *)
  let execute w pc active =
    w.ready_stale <- true;
    let threads = w.threads in
    match dcode.(pc) with
    | 0 (* bin *) ->
      let d = da.(pc) and x = db.(pc) and y = dc.(pc) in
      let o = bops.(pc) in
      let pc1 = pc + 1 and ready = !cycle + lat_tbl.(pc) in
      (* Superop specialization: the sub-opcode is uniform across the
         group, so match it once per issue and run the hottest ops with
         the arithmetic inlined in the lane loop. Every specialized arm
         falls back to {!Valops.binop} on an operand-kind mismatch, so
         Valops stays the single source of semantics — type errors,
         division by zero, and the shared boolean values included. *)
      (match o with
      | T.Add ->
        let bits = ref (Mask.bits active) in
        while !bits <> 0 do
          let th = threads.(Mask.lowest (Mask.of_bits !bits)) in
          (th.cur_regs.(d) <-
            (match (eval_enc th x, eval_enc th y) with
            | T.I a, T.I b -> T.I (a + b)
            | xv, yv -> Valops.binop o xv yv));
          th.pc <- pc1;
          th.ready_at <- ready;
          bits := !bits land (!bits - 1)
        done
      | T.Sub ->
        let bits = ref (Mask.bits active) in
        while !bits <> 0 do
          let th = threads.(Mask.lowest (Mask.of_bits !bits)) in
          (th.cur_regs.(d) <-
            (match (eval_enc th x, eval_enc th y) with
            | T.I a, T.I b -> T.I (a - b)
            | xv, yv -> Valops.binop o xv yv));
          th.pc <- pc1;
          th.ready_at <- ready;
          bits := !bits land (!bits - 1)
        done
      | T.Mul ->
        let bits = ref (Mask.bits active) in
        while !bits <> 0 do
          let th = threads.(Mask.lowest (Mask.of_bits !bits)) in
          (th.cur_regs.(d) <-
            (match (eval_enc th x, eval_enc th y) with
            | T.I a, T.I b -> T.I (a * b)
            | xv, yv -> Valops.binop o xv yv));
          th.pc <- pc1;
          th.ready_at <- ready;
          bits := !bits land (!bits - 1)
        done
      | T.Lt ->
        let bits = ref (Mask.bits active) in
        while !bits <> 0 do
          let th = threads.(Mask.lowest (Mask.of_bits !bits)) in
          (th.cur_regs.(d) <-
            (match (eval_enc th x, eval_enc th y) with
            | T.I a, T.I b -> if a < b then Valops.v_true else Valops.v_false
            | xv, yv -> Valops.binop o xv yv));
          th.pc <- pc1;
          th.ready_at <- ready;
          bits := !bits land (!bits - 1)
        done
      | T.Le ->
        let bits = ref (Mask.bits active) in
        while !bits <> 0 do
          let th = threads.(Mask.lowest (Mask.of_bits !bits)) in
          (th.cur_regs.(d) <-
            (match (eval_enc th x, eval_enc th y) with
            | T.I a, T.I b -> if a <= b then Valops.v_true else Valops.v_false
            | xv, yv -> Valops.binop o xv yv));
          th.pc <- pc1;
          th.ready_at <- ready;
          bits := !bits land (!bits - 1)
        done
      | T.Eq ->
        let bits = ref (Mask.bits active) in
        while !bits <> 0 do
          let th = threads.(Mask.lowest (Mask.of_bits !bits)) in
          (th.cur_regs.(d) <-
            (match (eval_enc th x, eval_enc th y) with
            | T.I a, T.I b -> if a = b then Valops.v_true else Valops.v_false
            | xv, yv -> Valops.binop o xv yv));
          th.pc <- pc1;
          th.ready_at <- ready;
          bits := !bits land (!bits - 1)
        done
      | T.Fadd ->
        let bits = ref (Mask.bits active) in
        while !bits <> 0 do
          let th = threads.(Mask.lowest (Mask.of_bits !bits)) in
          (th.cur_regs.(d) <-
            (match (eval_enc th x, eval_enc th y) with
            | T.F a, T.F b -> T.F (a +. b)
            | xv, yv -> Valops.binop o xv yv));
          th.pc <- pc1;
          th.ready_at <- ready;
          bits := !bits land (!bits - 1)
        done
      | T.Fmul ->
        let bits = ref (Mask.bits active) in
        while !bits <> 0 do
          let th = threads.(Mask.lowest (Mask.of_bits !bits)) in
          (th.cur_regs.(d) <-
            (match (eval_enc th x, eval_enc th y) with
            | T.F a, T.F b -> T.F (a *. b)
            | xv, yv -> Valops.binop o xv yv));
          th.pc <- pc1;
          th.ready_at <- ready;
          bits := !bits land (!bits - 1)
        done
      | _ ->
        let bits = ref (Mask.bits active) in
        while !bits <> 0 do
          let th = threads.(Mask.lowest (Mask.of_bits !bits)) in
          th.cur_regs.(d) <- Valops.binop o (eval_enc th x) (eval_enc th y);
          th.pc <- pc1;
          th.ready_at <- ready;
          bits := !bits land (!bits - 1)
        done)
    | 1 (* un *) ->
      let d = da.(pc) and x = db.(pc) in
      let o = uops.(pc) in
      let pc1 = pc + 1 and ready = !cycle + lat_tbl.(pc) in
      let bits = ref (Mask.bits active) in
      while !bits <> 0 do
        let th = threads.(Mask.lowest (Mask.of_bits !bits)) in
        th.cur_regs.(d) <- Valops.unop o (eval_enc th x);
        th.pc <- pc1;
        th.ready_at <- ready;
        bits := !bits land (!bits - 1)
      done
    | 2 (* mov *) ->
      let d = da.(pc) and x = db.(pc) in
      let pc1 = pc + 1 and ready = !cycle + lat_tbl.(pc) in
      let bits = ref (Mask.bits active) in
      while !bits <> 0 do
        let th = threads.(Mask.lowest (Mask.of_bits !bits)) in
        th.cur_regs.(d) <- eval_enc th x;
        th.pc <- pc1;
        th.ready_at <- ready;
        bits := !bits land (!bits - 1)
      done
    | 3 (* load *) ->
      metrics.mem_accesses <- metrics.mem_accesses + 1;
      let d = da.(pc) and x = db.(pc) in
      let n = ref 0 in
      let bits = ref (Mask.bits active) in
      while !bits <> 0 do
        let th = threads.(Mask.lowest (Mask.of_bits !bits)) in
        addr_buf.(!n) <- Valops.to_int (eval_enc th x);
        incr n;
        bits := !bits land (!bits - 1)
      done;
      let cost = mem_cost w (Memsys.access_costn memory ~addrs:addr_buf ~n:!n) in
      let pc1 = pc + 1 and ready = !cycle + cost in
      let i = ref 0 in
      let bits = ref (Mask.bits active) in
      while !bits <> 0 do
        let th = threads.(Mask.lowest (Mask.of_bits !bits)) in
        th.cur_regs.(d) <- Memsys.read memory addr_buf.(!i);
        incr i;
        th.pc <- pc1;
        th.ready_at <- ready;
        bits := !bits land (!bits - 1)
      done;
      (match race with
      | None -> ()
      | Some rl ->
        let i = ref 0 in
        let bits = ref (Mask.bits active) in
        while !bits <> 0 do
          let th = threads.(Mask.lowest (Mask.of_bits !bits)) in
          Race_log.on_read rl ~warp:w.wid ~tid:th.tid ~pc ~addr:addr_buf.(!i);
          incr i;
          bits := !bits land (!bits - 1)
        done)
    | 4 (* store *) ->
      metrics.mem_accesses <- metrics.mem_accesses + 1;
      let x = da.(pc) and v = db.(pc) in
      let n = ref 0 in
      let bits = ref (Mask.bits active) in
      while !bits <> 0 do
        let th = threads.(Mask.lowest (Mask.of_bits !bits)) in
        addr_buf.(!n) <- Valops.to_int (eval_enc th x);
        incr n;
        bits := !bits land (!bits - 1)
      done;
      let cost = mem_cost w (Memsys.access_costn memory ~addrs:addr_buf ~n:!n) in
      let pc1 = pc + 1 and ready = !cycle + cost in
      (* Lane order resolves write conflicts: the highest lane wins,
         matching CUDA's unspecified-but-single-winner semantics
         deterministically. *)
      let i = ref 0 in
      let bits = ref (Mask.bits active) in
      while !bits <> 0 do
        let th = threads.(Mask.lowest (Mask.of_bits !bits)) in
        Memsys.write memory addr_buf.(!i) (eval_enc th v);
        incr i;
        th.pc <- pc1;
        th.ready_at <- ready;
        bits := !bits land (!bits - 1)
      done;
      (match race with
      | None -> ()
      | Some rl ->
        let i = ref 0 in
        let bits = ref (Mask.bits active) in
        while !bits <> 0 do
          let th = threads.(Mask.lowest (Mask.of_bits !bits)) in
          Race_log.on_write rl ~warp:w.wid ~tid:th.tid ~pc ~addr:addr_buf.(!i);
          incr i;
          bits := !bits land (!bits - 1)
        done)
    | 5 (* tid *) ->
      let d = da.(pc) in
      let pc1 = pc + 1 and ready = !cycle + lat_tbl.(pc) in
      let bits = ref (Mask.bits active) in
      while !bits <> 0 do
        let th = threads.(Mask.lowest (Mask.of_bits !bits)) in
        th.cur_regs.(d) <- T.I th.tid;
        th.pc <- pc1;
        th.ready_at <- ready;
        bits := !bits land (!bits - 1)
      done
    | 6 (* lane *) ->
      let d = da.(pc) in
      let pc1 = pc + 1 and ready = !cycle + lat_tbl.(pc) in
      let bits = ref (Mask.bits active) in
      while !bits <> 0 do
        let th = threads.(Mask.lowest (Mask.of_bits !bits)) in
        th.cur_regs.(d) <- T.I th.lane;
        th.pc <- pc1;
        th.ready_at <- ready;
        bits := !bits land (!bits - 1)
      done
    | 7 (* nthreads *) ->
      let d = da.(pc) in
      let v = T.I n_threads in
      let pc1 = pc + 1 and ready = !cycle + lat_tbl.(pc) in
      let bits = ref (Mask.bits active) in
      while !bits <> 0 do
        let th = threads.(Mask.lowest (Mask.of_bits !bits)) in
        th.cur_regs.(d) <- v;
        th.pc <- pc1;
        th.ready_at <- ready;
        bits := !bits land (!bits - 1)
      done
    | 8 (* rand *) ->
      let d = da.(pc) in
      let pc1 = pc + 1 and ready = !cycle + lat_tbl.(pc) in
      let bits = ref (Mask.bits active) in
      while !bits <> 0 do
        let th = threads.(Mask.lowest (Mask.of_bits !bits)) in
        th.cur_regs.(d) <- T.F (Support.Splitmix.float th.rng);
        th.pc <- pc1;
        th.ready_at <- ready;
        bits := !bits land (!bits - 1)
      done
    | 9 (* randint *) ->
      let d = da.(pc) and x = db.(pc) in
      let pc1 = pc + 1 and ready = !cycle + lat_tbl.(pc) in
      let bits = ref (Mask.bits active) in
      while !bits <> 0 do
        let th = threads.(Mask.lowest (Mask.of_bits !bits)) in
        let bound = Valops.to_int (eval_enc th x) in
        if bound <= 0 then
          raise
            (Runtime_error
               (Printf.sprintf "randint bound %d not positive (%s)" bound (context w th)));
        th.cur_regs.(d) <- T.I (Support.Splitmix.int th.rng bound);
        th.pc <- pc1;
        th.ready_at <- ready;
        bits := !bits land (!bits - 1)
      done
    | 10 | 11 (* join / rejoin *) ->
      metrics.barrier_joins <- metrics.barrier_joins + 1;
      let b = da.(pc) in
      let pc1 = pc + 1 and ready = !cycle + lat_tbl.(pc) in
      let bits = ref (Mask.bits active) in
      while !bits <> 0 do
        let th = threads.(Mask.lowest (Mask.of_bits !bits)) in
        Barrier_unit.join w.barriers b th.lane;
        th.pc <- pc1;
        th.ready_at <- ready;
        bits := !bits land (!bits - 1)
      done
    | 12 (* wait *) ->
      metrics.barrier_waits <- metrics.barrier_waits + 1;
      let b = da.(pc) in
      let pc1 = pc + 1 and ready = !cycle + lat_tbl.(pc) in
      let bits = ref (Mask.bits active) in
      while !bits <> 0 do
        let th = threads.(Mask.lowest (Mask.of_bits !bits)) in
        if Barrier_unit.is_participant w.barriers b th.lane then begin
          th.status <- Blocked;
          Barrier_unit.block ~now:!cycle w.barriers b th.lane ~threshold:None
        end
        else begin
          th.pc <- pc1;
          th.ready_at <- ready
        end;
        bits := !bits land (!bits - 1)
      done;
      (* blockers and pass-through threads part ways *)
      regroup w active;
      release_fired w b;
      watchdog w
    | 13 (* wait.th *) ->
      metrics.barrier_waits <- metrics.barrier_waits + 1;
      let b = da.(pc) in
      let threshold = Some db.(pc) in
      let pc1 = pc + 1 and ready = !cycle + lat_tbl.(pc) in
      let bits = ref (Mask.bits active) in
      while !bits <> 0 do
        let th = threads.(Mask.lowest (Mask.of_bits !bits)) in
        if Barrier_unit.is_participant w.barriers b th.lane then begin
          th.status <- Blocked;
          Barrier_unit.block ~now:!cycle w.barriers b th.lane ~threshold
        end
        else begin
          th.pc <- pc1;
          th.ready_at <- ready
        end;
        bits := !bits land (!bits - 1)
      done;
      regroup w active;
      release_fired w b;
      watchdog w
    | 14 (* cancel *) ->
      metrics.barrier_cancels <- metrics.barrier_cancels + 1;
      let b = da.(pc) in
      let pc1 = pc + 1 and ready = !cycle + lat_tbl.(pc) in
      let bits = ref (Mask.bits active) in
      while !bits <> 0 do
        let th = threads.(Mask.lowest (Mask.of_bits !bits)) in
        Barrier_unit.cancel w.barriers b th.lane;
        th.pc <- pc1;
        th.ready_at <- ready;
        bits := !bits land (!bits - 1)
      done;
      release_fired w b
    | 15 (* arrived *) ->
      let d = da.(pc) and b = db.(pc) in
      (* No lane mutates barrier state here, so the count is uniform
         across the group — materialize it once. *)
      let v = T.I (Barrier_unit.arrived w.barriers b) in
      let pc1 = pc + 1 and ready = !cycle + lat_tbl.(pc) in
      let bits = ref (Mask.bits active) in
      while !bits <> 0 do
        let th = threads.(Mask.lowest (Mask.of_bits !bits)) in
        th.cur_regs.(d) <- v;
        th.pc <- pc1;
        th.ready_at <- ready;
        bits := !bits land (!bits - 1)
      done
    | 16 (* call *) ->
      let ci = calls.(da.(pc)) in
      let cargs = ci.D.cargs in
      let n_args = Array.length cargs in
      let pc1 = pc + 1 and ready = !cycle + lat_tbl.(pc) in
      let bits = ref (Mask.bits active) in
      while !bits <> 0 do
        let th = threads.(Mask.lowest (Mask.of_bits !bits)) in
        let regs = Array.make ci.D.cn_regs (T.I 0) in
        (* Arguments read the caller frame: fill the callee registers
           before swinging cur_regs over. *)
        for i = 0 to n_args - 1 do
          regs.(i) <- eval_enc th cargs.(i)
        done;
        th.frames <- { regs; ret_pc = pc1; ret_reg = ci.D.cret } :: th.frames;
        th.cur_regs <- regs;
        th.pc <- ci.D.centry;
        th.ready_at <- ready;
        bits := !bits land (!bits - 1)
      done
    | 17 (* ret *) ->
      let x = da.(pc) in
      let ready = !cycle + lat_tbl.(pc) in
      let bits = ref (Mask.bits active) in
      while !bits <> 0 do
        let th = threads.(Mask.lowest (Mask.of_bits !bits)) in
        (match th.frames with
        | { ret_pc; ret_reg; _ } :: (top :: _ as rest) ->
          (* The return operand reads the callee frame; evaluate before
             the pop. A ret with no operand writes I 0 into a declared
             return register (the seed semantics). *)
          let v = if x >= 0 then eval_enc th x else T.I 0 in
          th.frames <- rest;
          th.cur_regs <- top.regs;
          if ret_reg >= 0 then th.cur_regs.(ret_reg) <- v;
          th.pc <- ret_pc;
          th.ready_at <- ready
        | _ -> raise (Runtime_error (Printf.sprintf "ret outside call (%s)" (context w th))));
        bits := !bits land (!bits - 1)
      done;
      (* returns to different call sites split the group *)
      regroup w active
    | 18 (* br *) ->
      let x = da.(pc) and target = db.(pc) in
      let pc1 = pc + 1 and ready = !cycle + lat_tbl.(pc) in
      let bits = ref (Mask.bits active) in
      while !bits <> 0 do
        let th = threads.(Mask.lowest (Mask.of_bits !bits)) in
        th.pc <- (if Valops.truthy (eval_enc th x) then target else pc1);
        th.ready_at <- ready;
        bits := !bits land (!bits - 1)
      done;
      (* a divergent outcome splits the convergence group *)
      regroup w active
    | 19 (* jump *) ->
      let target = da.(pc) in
      let ready = !cycle + lat_tbl.(pc) in
      let bits = ref (Mask.bits active) in
      while !bits <> 0 do
        let th = threads.(Mask.lowest (Mask.of_bits !bits)) in
        th.pc <- target;
        th.ready_at <- ready;
        bits := !bits land (!bits - 1)
      done
    | 20 (* exit *) ->
      let bits = ref (Mask.bits active) in
      while !bits <> 0 do
        finish_thread w threads.(Mask.lowest (Mask.of_bits !bits));
        bits := !bits land (!bits - 1)
      done;
      if metrics.threads_finished < n_threads then watchdog w
    | _ -> assert false
  in
  (* Pick the next (warp, pc, lanes) to issue, rotating over warps.
     Candidates are convergence groups, read straight off the warp's
     incremental group table; a group is issuable when its (uniform)
     status is Ready and its ready_at has passed. Candidates are ordered
     by (pc, lexicographic lane list) — the order the schedule-sensitive
     policies are defined against. *)
  let sel_pc = ref 0 and sel_mask = ref Mask.empty and sel_warp = ref 0 in
  let select_group w =
    let k = ref 0 in
    for s = 0 to w.n_groups - 1 do
      let m = w.gmask.(s) in
      let rep = w.threads.(Mask.lowest m) in
      if rep.status = Ready && rep.ready_at <= !cycle then begin
        cand_pc.(!k) <- rep.pc;
        cand_mask.(!k) <- m;
        incr k
      end
    done;
    let k = !k in
    if k = 0 then false
    else begin
      for i = 1 to k - 1 do
        let pc = cand_pc.(i) and m = cand_mask.(i) in
        let j = ref (i - 1) in
        while
          !j >= 0
          && (cand_pc.(!j) > pc
             || (cand_pc.(!j) = pc && Mask.compare_lex cand_mask.(!j) m > 0))
        do
          cand_pc.(!j + 1) <- cand_pc.(!j);
          cand_mask.(!j + 1) <- cand_mask.(!j);
          decr j
        done;
        cand_pc.(!j + 1) <- pc;
        cand_mask.(!j + 1) <- m
      done;
      let chosen =
        match config.policy with
        | Config.Lowest_pc -> 0
        | Config.Most_threads ->
          let best = ref 0 in
          let best_n = ref (Mask.count cand_mask.(0)) in
          for i = 1 to k - 1 do
            let n = Mask.count cand_mask.(i) in
            if n > !best_n then begin
              best := i;
              best_n := n
            end
          done;
          !best
        | Config.Round_robin ->
          let found = ref 0 in
          (try
             for i = 0 to k - 1 do
               if cand_pc.(i) > w.rr_pc then begin
                 found := i;
                 raise Exit
               end
             done
           with Exit -> ());
          (* rr_pc is Round_robin state only: the other policies must
             not touch it, or a policy change would perturb schedules it
             never influences. *)
          w.rr_pc <- cand_pc.(!found);
          !found
      in
      (* Chaos scheduler: the injector may override a multi-candidate
         pick with any other legal candidate. *)
      let chosen =
        match faults with
        | Some f when k >= 2 -> Faults.pick f ~warp:w.wid ~k ~chosen
        | _ -> chosen
      in
      sel_pc := cand_pc.(chosen);
      sel_mask := cand_mask.(chosen);
      true
    end
  in
  (* Allocation-free issue pick: [select_group]/[find_issue] report their
     choice through these cells instead of boxing an option per issue. *)
  let find_issue () =
    let found = ref false in
    let i = ref 1 in
    while (not !found) && !i <= config.n_warps do
      let wid = (!last_warp + !i) mod config.n_warps in
      if select_group warps.(wid) then begin
        last_warp := wid;
        sel_warp := wid;
        found := true
      end;
      incr i
    done;
    !found
  in
  (* Once per issue the injector may disturb the issuing warp: fire a
     spurious release (a barrier with waiters releases early, with
     threshold-fire semantics) or push every ready lane's wake-up back. *)
  let disturb w =
    match faults with
    | None -> ()
    | Some f -> (
      match Faults.disturb f ~warp:w.wid ~waiting_slots:(waiting_slots w) with
      | None -> ()
      | Some (Faults.D_release b) -> (
        match Barrier_unit.force_release w.barriers b with
        | Some released -> apply_release w released
        | None -> ())
      | Some (Faults.D_stall n) ->
        Array.iter
          (fun th -> if th.status = Ready then th.ready_at <- max th.ready_at !cycle + n)
          w.threads;
        w.ready_stale <- true)
  in
  let running = ref true in
  while !running do
    if find_issue () then begin
      let w = warps.(!sel_warp) in
      let pc = !sel_pc and active = !sel_mask in
      metrics.issues <- metrics.issues + 1;
      if metrics.issues > config.max_issues then
        raise (Runaway (Printf.sprintf "issue budget %d exhausted" config.max_issues));
      if config.fuel > 0 && metrics.issues > config.fuel then
        raise (Deadline_exceeded (Printf.sprintf "fuel %d exhausted" config.fuel));
      metrics.active_sum <- metrics.active_sum + Mask.count active;
      (match tracer with
      | Some observe ->
        observe
          { at_cycle = !cycle; warp = w.wid; pc; active = Mask.to_list active;
            where = lprog.locs.(pc) }
      | None -> ());
      let s = bslot.(pc) in
      if s >= 0 then prof_counts.(s) <- prof_counts.(s) + Mask.count active;
      (try execute w pc active with
      | Valops.Type_error msg ->
        raise (Runtime_error (Printf.sprintf "type error at pc %d (warp %d): %s" pc w.wid msg))
      | Division_by_zero ->
        raise (Runtime_error (Printf.sprintf "division by zero at pc %d (warp %d)" pc w.wid))
      | Invalid_argument msg ->
        raise (Runtime_error (Printf.sprintf "fault at pc %d (warp %d): %s" pc w.wid msg)));
      disturb w;
      incr cycle
    end
    else
      (* Nothing issuable this cycle: advance time to the next ready
         group, finish, or handle an all-blocked stall. Group uniformity
         makes the per-warp minimum a min over groups, not lanes, and the
         cache makes the common all-warps-stalled step O(warps). *)
      if metrics.threads_finished >= n_threads then running := false
      else begin
        let next = ref max_int in
        for wi = 0 to config.n_warps - 1 do
          let w = warps.(wi) in
          if w.ready_stale then begin
            let m = ref max_int in
            for s = 0 to w.n_groups - 1 do
              let rep = w.threads.(Mask.lowest w.gmask.(s)) in
              if rep.status = Ready && rep.ready_at < !m then m := rep.ready_at
            done;
            w.ready_min <- !m;
            w.ready_stale <- false
          end;
          if w.ready_min < !next then next := w.ready_min
        done;
        if !next < max_int then cycle := max !next (!cycle + 1)
        else begin
          (* Backstop only: the in-execute watchdog catches a doomed warp
             at its blocking instruction, so reaching here means every
             warp with live threads stalled some other way. *)
          let stalled = ref None in
          Array.iter (fun w -> if !stalled = None && warp_stalled w then stalled := Some w) warps;
          match !stalled with
          | Some w -> recover_or_deadlock w
          | None -> raise (Deadlock "machine idle with no runnable or blocked group")
        end
      end
  done;
  metrics.cycles <- !cycle;
  Array.iteri
    (fun s c ->
      if c > 0 then
        Analysis.Profile.record profile ~func:dprog.D.bfunc.(s) ~block:dprog.D.bblock.(s)
          ~count:c)
    prof_counts;
  (match faults with
  | Some f -> metrics.faults_injected <- List.length (Faults.events f)
  | None -> ());
  { metrics; memory; profile; yield_log = List.rev !yield_log }
