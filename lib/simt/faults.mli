(** Seeded fault injection for the SIMT simulator (the chaos harness).

    An injector is consulted by the interpreter at three kinds of
    decision points, each with its own consultation counter:

    - {e pick}: a scheduler decision among [k >= 2] runnable convergence
      groups of a warp may be overridden with a different candidate
      index (the "chaos scheduler" perturbation);
    - {e mem}: a warp-level memory access may be charged extra latency
      (a memory spike);
    - {e io}: the same access may additionally be charged seeded
      per-warp response jitter (io-delay) — a separate channel with its
      own counter and rate, so spike and jitter replay independently;
    - {e disturb}: once per issued instruction the warp may suffer a
      spurious release (a convergence barrier with blocked lanes fires
      early, exactly like a threshold fire) or a forced stall (every
      ready lane's wake-up time is pushed back).

    Faults are drawn from a SplitMix-seeded plan, so a run is
    reproducible from its seed alone. Every {e applied} fault is
    recorded as an {!event} carrying its consultation index; the
    resulting trace can be printed, parsed back, and replayed with
    {!replay}, which re-applies exactly the recorded faults at the same
    decision points (the simulator is deterministic in between). *)

type event =
  | Pick of { step : int; warp : int; index : int }
  | Mem_spike of { step : int; warp : int; extra : int }
  | Release of { step : int; warp : int; slot : int }
  | Stall of { step : int; warp : int; cycles : int }
  | Io_delay of { step : int; warp : int; extra : int }

(** What {!disturb} asks the interpreter to do. *)
type disturbance = D_release of int  (** force-release this barrier slot *)
                 | D_stall of int  (** push ready lanes back this many cycles *)

type rates = {
  pick_rate : float;  (** P(override) per multi-candidate pick *)
  mem_rate : float;  (** P(spike) per warp memory access *)
  mem_spike_max : int;  (** spike size drawn from [1, max] *)
  release_rate : float;  (** P(spurious release) per issue *)
  stall_rate : float;  (** P(forced stall) per issue *)
  stall_max : int;  (** stall length drawn from [1, max] *)
  io_rate : float;  (** P(io-delay jitter) per warp memory access *)
  io_max : int;  (** jitter size drawn from [1, max] *)
}

val default_rates : rates

type t

(** [create ?rates ~seed ()] — a generative injector; same seed, same
    fault plan. *)
val create : ?rates:rates -> seed:int -> unit -> t

(** [replay events] — an injector that re-applies exactly [events]. *)
val replay : event list -> t

(** Faults applied so far, in application order. *)
val events : t -> event list

(** [pick t ~warp ~k ~chosen] — final candidate index (defaults to
    [chosen]). *)
val pick : t -> warp:int -> k:int -> chosen:int -> int

(** [mem_spike t ~warp] — extra latency cycles for this access (0 when
    the access is left alone). *)
val mem_spike : t -> warp:int -> int

(** [io_delay t ~warp] — seeded memory-response jitter for this access
    (0 when undisturbed). Consulted once per warp memory access, after
    {!mem_spike}; a distinct channel, so a trace replays either stream
    without the other. *)
val io_delay : t -> warp:int -> int

(** [disturb t ~warp ~waiting_slots] — per-issue disturbance;
    [waiting_slots] lists the warp's barrier slots that currently have
    blocked lanes (candidates for a spurious release). *)
val disturb : t -> warp:int -> waiting_slots:int list -> disturbance option

val pp_event : Format.formatter -> event -> unit
val pp_trace : Format.formatter -> event list -> unit
val trace_to_string : event list -> string

(** Inverse of {!pp_trace}; blank lines and [#] comments are skipped.
    @raise Failure on a malformed line. *)
val parse_trace : string -> event list
