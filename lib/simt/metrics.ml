type t = {
  warp_size : int;
  mutable issues : int;
  mutable active_sum : int;
  mutable cycles : int;
  mutable mem_accesses : int;
  mutable barrier_joins : int;
  mutable barrier_waits : int;
  mutable barrier_fires : int;
  mutable barrier_cancels : int;
  mutable yields : int;
  mutable yield_released : int;
  mutable yield_abandoned : int;
  mutable faults_injected : int;
  mutable threads_finished : int;
}

let create ~warp_size =
  {
    warp_size;
    issues = 0;
    active_sum = 0;
    cycles = 0;
    mem_accesses = 0;
    barrier_joins = 0;
    barrier_waits = 0;
    barrier_fires = 0;
    barrier_cancels = 0;
    yields = 0;
    yield_released = 0;
    yield_abandoned = 0;
    faults_injected = 0;
    threads_finished = 0;
  }

let simt_efficiency t =
  if t.issues = 0 then 0.0
  else float_of_int t.active_sum /. float_of_int (t.issues * t.warp_size)

let ipc t = if t.cycles = 0 then 0.0 else float_of_int t.issues /. float_of_int t.cycles

let avg_active t =
  if t.issues = 0 then 0.0 else float_of_int t.active_sum /. float_of_int t.issues

let pp ppf t =
  Format.fprintf ppf
    "issues=%d cycles=%d simt_eff=%.1f%% avg_active=%.2f ipc=%.3f mem=%d joins=%d waits=%d \
     fires=%d cancels=%d yields=%d finished=%d"
    t.issues t.cycles
    (100.0 *. simt_efficiency t)
    (avg_active t) (ipc t) t.mem_accesses t.barrier_joins t.barrier_waits t.barrier_fires
    t.barrier_cancels t.yields t.threads_finished;
  if t.yields > 0 then
    Format.fprintf ppf " yield_released=%d yield_abandoned=%d" t.yield_released t.yield_abandoned;
  if t.faults_injected > 0 then Format.fprintf ppf " faults=%d" t.faults_injected
