(** Legacy ADT-walking interpreter, kept one release as the reference
    half of the fuzz pipeline's [decode-mismatch] oracle.

    This is the pre-decode issue loop: it executes {!Ir.Linear.t}
    directly, pattern-matching the boxed instruction ADTs per issue. It
    must stay bit-exact with {!Interp} — same metrics, memory, profile,
    yield log, same exception messages — which is precisely what the
    oracle checks on every fuzzed program. Scheduled for deletion once
    the decoded path has survived a release of fuzzing. *)

(** [run config lprog ~args ~init_memory] — same contract as
    {!Interp.run}, but over the un-decoded linear program. *)
val run :
  ?tracer:(Interp.issue_event -> unit) ->
  ?faults:Faults.t ->
  ?entry:string ->
  Config.t ->
  Ir.Linear.t ->
  args:Ir.Types.value list ->
  init_memory:(Memsys.t -> unit) ->
  Interp.result
