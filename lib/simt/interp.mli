(** The SIMT execution engine.

    Executes a pre-decoded program ({!Ir.Decoded}) over [n_warps] warps of [warp_size]
    threads with Volta-style independent thread scheduling: every thread
    has its own program counter, register frames and call stack; a
    per-warp scheduler issues one same-PC group per cycle through a single
    shared issue port; convergence barriers ({!Barrier_unit}) block and
    release groups of threads.

    Timing model: issuing costs one cycle on the shared port; an issued
    instruction makes its lanes unavailable for its latency (memory
    latency depends on coalescing, see {!Memsys}). Latency is hidden
    naturally by other PC-groups of the same warp — Volta's independent
    thread scheduling — and by other warps.

    Determinism: per-thread PRNG streams are seeded from
    [(config.seed, warp, lane)], so kernel results are identical across
    scheduler policies and compilation modes — the key property the
    correctness tests check.

    Forward progress: barrier state is warp-local, so a warp whose every
    live group is blocked on convergence barriers can never run again. A
    per-warp watchdog detects this at the blocking instruction; with
    [config.yield_on_stall] it releases a victim barrier (chosen by
    [config.yield_policy]) and the run completes with correct memory but
    lost convergence, otherwise it raises {!Deadlock} with the dynamic
    waits-for cycle. *)

exception Deadlock of string
(** Raised (unless [yield_on_stall]) when every live group of some warp
    is blocked on convergence barriers that can never fire — the concrete
    failure mode of conflicting barriers that §4.3's deconfliction exists
    to prevent. The message includes the waits-for cycle among the warp's
    barriers, each barrier's blocked lanes with their func/block sites,
    and the lanes it still expects. *)

exception Runtime_error of string
(** Type errors, out-of-bounds accesses, division by zero — annotated
    with warp, lane and pc. *)

exception Runaway of string
(** The configured [max_issues] budget was exhausted. *)

exception Deadline_exceeded of string
(** The configured [fuel] deadline was reached: exactly [config.fuel]
    instructions issued, then the run stopped. Deterministic — the issue
    loop counts issues, not wall clock — so the same request exhausts
    its deadline at the same instruction on every replay. *)

(** One yield-recovery release, for determinism tests and lost-convergence
    attribution: [released] lanes were forced past the wait at [slot];
    [abandoned] lanes remain participants whose reconvergence with the
    released group is forfeited. *)
type yield_event = {
  at_cycle : int;
  warp : int;
  slot : int;
  released : int list;
  abandoned : int list;
}

type result = {
  metrics : Metrics.t;
  memory : Memsys.t;
  profile : Analysis.Profile.t; (* lane-executions per basic block *)
  yield_log : yield_event list; (* chronological; [] unless yields fired *)
}

(** One issued warp instruction, as seen by a tracer: which warp issued,
    at which cycle, which lanes were active, and where the instruction
    came from. The stream of these events is the raw material of the
    paper's Figure 1/3 execution diagrams. *)
type issue_event = {
  at_cycle : int;
  warp : int;
  pc : int;
  active : int list; (* lanes, ascending *)
  where : Ir.Linear.location;
}

(** [run config dprog ~args ~init_memory] launches
    [config.n_warps * config.warp_size] threads of the kernel. The issue
    loop dispatches over the decoded opcode array through a flat jump
    table — decode once with {!Ir.Decoded.decode}, run many times.

    [args] are the kernel parameters (uniform across threads);
    [init_memory] fills global tables before the launch;
    [tracer], when given, observes every issued warp instruction;
    [faults], when given, injects scheduler, memory-latency and barrier
    faults at the injector's decision points ({!Faults});
    [race], when given, records every load/store into the shadow-memory
    race logger ({!Race_log}) and advances its per-warp barrier-interval
    id on every organic barrier fire — the dynamic side of
    [srrun --race-check]; when absent the issue loop pays nothing;
    [entry] launches the named function instead of the program's default
    kernel (multi-kernel programs; the function must be launchable).

    @raise Invalid_argument if [args] does not match the entry arity or
    [entry] names no function.
    @raise Deadlock / Runtime_error / Runaway as documented above. *)
val run :
  ?tracer:(issue_event -> unit) ->
  ?faults:Faults.t ->
  ?race:Race_log.t ->
  ?entry:string ->
  Config.t ->
  Ir.Decoded.t ->
  args:Ir.Types.value list ->
  init_memory:(Memsys.t -> unit) ->
  result
