(* Shadow-memory race logger. See the .mli for the detection model; the
   implementation is a flat last-writer / two-reader shadow table so the
   interpreter pays O(1) per logged access and nothing at all when no
   log is attached. *)

type kind = Write_write | Read_write

let kind_name = function Write_write -> "write-write" | Read_write -> "read-write"

type event = {
  addr : int;
  kind : kind;
  warp : int;
  epoch : int;
  first_tid : int;
  first_pc : int;
  second_tid : int;
  second_pc : int;
}

type t = {
  epochs : int array; (* per-warp barrier-interval id *)
  (* last writer per cell *)
  w_warp : int array;
  w_epoch : int array;
  w_tid : int array;
  w_pc : int array;
  (* two reader slots per cell: two distinct-thread readers of the same
     interval are enough to witness any read-write conflict the writer
     side could ever pair with *)
  r1_warp : int array;
  r1_epoch : int array;
  r1_tid : int array;
  r1_pc : int array;
  r2_warp : int array;
  r2_epoch : int array;
  r2_tid : int array;
  r2_pc : int array;
  cap : int;
  mutable events : event list; (* newest first, capped at [cap] *)
  mutable n_events : int;
  mutable total : int;
}

let create ?(cap = 64) ~size ~n_warps () =
  let size = max size 1 in
  let neg () = Array.make size (-1) in
  {
    epochs = Array.make (max n_warps 1) 0;
    w_warp = neg ();
    w_epoch = neg ();
    w_tid = neg ();
    w_pc = neg ();
    r1_warp = neg ();
    r1_epoch = neg ();
    r1_tid = neg ();
    r1_pc = neg ();
    r2_warp = neg ();
    r2_epoch = neg ();
    r2_tid = neg ();
    r2_pc = neg ();
    cap;
    events = [];
    n_events = 0;
    total = 0;
  }

let bump t ~warp = t.epochs.(warp) <- t.epochs.(warp) + 1
let epoch t ~warp = t.epochs.(warp)

let record t ev =
  t.total <- t.total + 1;
  if t.n_events < t.cap then begin
    t.events <- ev :: t.events;
    t.n_events <- t.n_events + 1
  end

let on_write t ~warp ~tid ~pc ~addr =
  let e = t.epochs.(warp) in
  if t.w_epoch.(addr) = e && t.w_warp.(addr) = warp && t.w_tid.(addr) <> tid then
    record t
      {
        addr;
        kind = Write_write;
        warp;
        epoch = e;
        first_tid = t.w_tid.(addr);
        first_pc = t.w_pc.(addr);
        second_tid = tid;
        second_pc = pc;
      };
  if t.r1_epoch.(addr) = e && t.r1_warp.(addr) = warp && t.r1_tid.(addr) <> tid then
    record t
      {
        addr;
        kind = Read_write;
        warp;
        epoch = e;
        first_tid = t.r1_tid.(addr);
        first_pc = t.r1_pc.(addr);
        second_tid = tid;
        second_pc = pc;
      };
  if t.r2_epoch.(addr) = e && t.r2_warp.(addr) = warp && t.r2_tid.(addr) <> tid then
    record t
      {
        addr;
        kind = Read_write;
        warp;
        epoch = e;
        first_tid = t.r2_tid.(addr);
        first_pc = t.r2_pc.(addr);
        second_tid = tid;
        second_pc = pc;
      };
  t.w_warp.(addr) <- warp;
  t.w_epoch.(addr) <- e;
  t.w_tid.(addr) <- tid;
  t.w_pc.(addr) <- pc

let on_read t ~warp ~tid ~pc ~addr =
  let e = t.epochs.(warp) in
  if t.w_epoch.(addr) = e && t.w_warp.(addr) = warp && t.w_tid.(addr) <> tid then
    record t
      {
        addr;
        kind = Read_write;
        warp;
        epoch = e;
        first_tid = t.w_tid.(addr);
        first_pc = t.w_pc.(addr);
        second_tid = tid;
        second_pc = pc;
      };
  let r1_live = t.r1_epoch.(addr) = e && t.r1_warp.(addr) = warp in
  if r1_live then begin
    if t.r1_tid.(addr) <> tid then begin
      let r2_live = t.r2_epoch.(addr) = e && t.r2_warp.(addr) = warp in
      if not r2_live then begin
        t.r2_warp.(addr) <- warp;
        t.r2_epoch.(addr) <- e;
        t.r2_tid.(addr) <- tid;
        t.r2_pc.(addr) <- pc
      end
      (* two distinct same-interval readers already recorded: any writer
         that conflicts with this read also conflicts with one of them *)
    end
  end
  else begin
    t.r1_warp.(addr) <- warp;
    t.r1_epoch.(addr) <- e;
    t.r1_tid.(addr) <- tid;
    t.r1_pc.(addr) <- pc
  end

let total t = t.total
let events t = List.rev t.events

let pp_event ppf ev =
  Format.fprintf ppf
    "race [%s] addr=%d warp=%d interval=%d: tid %d (pc %d) vs tid %d (pc %d)" (kind_name ev.kind)
    ev.addr ev.warp ev.epoch ev.first_tid ev.first_pc ev.second_tid ev.second_pc
