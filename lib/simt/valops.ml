open Ir.Types

exception Type_error of string

let type_error op a b =
  let pp v = Format.asprintf "%a" Ir.Printer.pp_value v in
  raise
    (Type_error (Printf.sprintf "%s applied to %s, %s" (Ir.Printer.binop_name op) (pp a) (pp b)))

(* Shared: comparisons run once per lane per loop iteration, so boxing a
   fresh [I 0]/[I 1] each time is measurable allocation pressure. Results
   are only ever compared structurally, never physically. *)
let v_false = I 0

let v_true = I 1

let bool_val b = if b then v_true else v_false

let binop op a b =
  match (op, a, b) with
  | Add, I x, I y -> I (x + y)
  | Sub, I x, I y -> I (x - y)
  | Mul, I x, I y -> I (x * y)
  | Div, I x, I y -> if y = 0 then raise Division_by_zero else I (x / y)
  | Rem, I x, I y -> if y = 0 then raise Division_by_zero else I (x mod y)
  | Min, I x, I y -> I (min x y)
  | Max, I x, I y -> I (max x y)
  | Land, I x, I y -> I (x land y)
  | Lor, I x, I y -> I (x lor y)
  | Lxor, I x, I y -> I (x lxor y)
  | Shl, I x, I y -> I (x lsl y)
  | Shr, I x, I y -> I (x asr y)
  | Fadd, F x, F y -> F (x +. y)
  | Fsub, F x, F y -> F (x -. y)
  | Fmul, F x, F y -> F (x *. y)
  | Fdiv, F x, F y -> F (x /. y)
  | Fmin, F x, F y -> F (Float.min x y)
  | Fmax, F x, F y -> F (Float.max x y)
  | Eq, I x, I y -> bool_val (x = y)
  | Ne, I x, I y -> bool_val (x <> y)
  | Lt, I x, I y -> bool_val (x < y)
  | Le, I x, I y -> bool_val (x <= y)
  | Gt, I x, I y -> bool_val (x > y)
  | Ge, I x, I y -> bool_val (x >= y)
  | Feq, F x, F y -> bool_val (x = y)
  | Fne, F x, F y -> bool_val (x <> y)
  | Flt, F x, F y -> bool_val (x < y)
  | Fle, F x, F y -> bool_val (x <= y)
  | Fgt, F x, F y -> bool_val (x > y)
  | Fge, F x, F y -> bool_val (x >= y)
  | ( ( Add | Sub | Mul | Div | Rem | Min | Max | Land | Lor | Lxor | Shl | Shr | Fadd | Fsub
      | Fmul | Fdiv | Fmin | Fmax | Eq | Ne | Lt | Le | Gt | Ge | Feq | Fne | Flt | Fle | Fgt
      | Fge ),
      _,
      _ ) -> type_error op a b

let unop op a =
  let err () =
    let pp v = Format.asprintf "%a" Ir.Printer.pp_value v in
    raise (Type_error (Printf.sprintf "%s applied to %s" (Ir.Printer.unop_name op) (pp a)))
  in
  match (op, a) with
  | Neg, I x -> I (-x)
  | Not, I x -> bool_val (x = 0)
  | Bnot, I x -> I (lnot x)
  | Fneg, F x -> F (-.x)
  | Itof, I x -> F (float_of_int x)
  | Ftoi, F x -> I (int_of_float x)
  | Sqrt, F x -> F (sqrt x)
  | Exp, F x -> F (exp x)
  | Log, F x -> F (log x)
  | Sin, F x -> F (sin x)
  | Cos, F x -> F (cos x)
  | Fabs, F x -> F (Float.abs x)
  | (Neg | Not | Bnot | Itof), F _ -> err ()
  | (Fneg | Ftoi | Sqrt | Exp | Log | Sin | Cos | Fabs), I _ -> err ()

let truthy = function I 0 -> false | I _ -> true | F x -> x <> 0.0

let to_int = function
  | I x -> x
  | F _ as v ->
    raise (Type_error (Format.asprintf "expected int, got %a" Ir.Printer.pp_value v))

let to_float = function
  | F x -> x
  | I _ as v ->
    raise (Type_error (Format.asprintf "expected float, got %a" Ir.Printer.pp_value v))
