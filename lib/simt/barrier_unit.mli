(** Per-warp convergence-barrier state machine.

    Implements the semantics of the paper's synchronization primitives
    (Table 1) over Volta-style barrier registers:

    - a barrier [b] has a participation mask [P(b)] of lanes that executed
      [JoinBarrier]/[RejoinBarrier] since the last release;
    - a lane reaching [WaitBarrier b] while in [P(b)] blocks; lanes not in
      [P(b)] pass through;
    - the barrier {e fires} when every lane of [P(b)] is blocked on it,
      releasing all of them and clearing [P(b)];
    - a soft barrier ([WaitBarrier.th b k], §4.6) additionally fires when
      at least [k] participants are blocked, releasing exactly the blocked
      lanes and leaving the rest participating;
    - [CancelBarrier b] removes the executing lane from [P(b)], which can
      complete the fire condition for the remaining lanes;
    - a lane that exits the kernel is withdrawn from every barrier. *)

type t

(** [create ~n_barriers ~warp_size]. *)
val create : n_barriers:int -> warp_size:int -> t

(** [join t b lane] — add to the participation mask (idempotent). *)
val join : t -> int -> int -> unit

(** [cancel t b lane] — withdraw a lane (no-op if absent). Check
    {!fired} afterwards. *)
val cancel : t -> int -> int -> unit

(** [block ?now t b lane ~threshold] — record the lane blocked at a wait
    on [b], stamping its arrival cycle [now] (for the oldest-arrival
    yield-victim policy). Callers must only block participant lanes.
    Check {!fired} afterwards. *)
val block : ?now:int -> t -> int -> int -> threshold:int option -> unit

(** [withdraw_lane t lane] — remove a lane from every barrier (kernel
    exit); returns the barriers it participated in. Check {!fired}. *)
val withdraw_lane : t -> int -> int list

(** [is_participant t b lane]. *)
val is_participant : t -> int -> int -> bool

(** [arrived t b] — number of lanes currently blocked on [b]. *)
val arrived : t -> int -> int

val participants : t -> int -> Support.Mask.t
val waiting : t -> int -> Support.Mask.t

(** [fired t b] — if the fire condition holds, release and return the
    blocked lanes (updating all state); [None] otherwise. *)
val fired : t -> int -> Support.Mask.t option

(** [force_release t b] — release the blocked lanes of [b] regardless of
    the fire condition (yield recovery and spurious-release fault
    injection), with the same state updates as a threshold fire: the
    released lanes leave the participation mask, the rest stay. [None]
    when nothing is waiting. *)
val force_release : t -> int -> Support.Mask.t option

(** [oldest_arrival t b] — the earliest arrival stamp among the lanes
    currently blocked on [b] ([None] when nothing is waiting). *)
val oldest_arrival : t -> int -> int option

(** [blocked_anywhere t lane] — the barrier this lane is blocked on, if
    any. *)
val blocked_anywhere : t -> int -> int option

val pp : Format.formatter -> t -> unit
