(** Arithmetic on runtime values.

    Operations are strictly typed at runtime: integer ops require [I],
    float ops require [F]. The front end's type checker guarantees this
    for lowered programs; hand-built IR that violates it fails fast here. *)

exception Type_error of string

(** The shared boolean results every comparison returns ([I 1] / [I 0]).
    Exposed so the interpreter's specialized comparison arms reuse the
    same physical values instead of boxing fresh ones per lane. *)
val v_true : Ir.Types.value

val v_false : Ir.Types.value

(** [binop op a b].
    @raise Type_error on operand kind mismatch.
    @raise Division_by_zero for integer [Div]/[Rem] by zero. *)
val binop : Ir.Types.binop -> Ir.Types.value -> Ir.Types.value -> Ir.Types.value

(** [unop op a]. @raise Type_error on operand kind mismatch. *)
val unop : Ir.Types.unop -> Ir.Types.value -> Ir.Types.value

(** [truthy v] — branch interpretation: [I 0] is false, any other value
    (including floats) is true iff nonzero. *)
val truthy : Ir.Types.value -> bool

(** [to_int v] / [to_float v] — strict projections.
    @raise Type_error on mismatch. *)
val to_int : Ir.Types.value -> int

val to_float : Ir.Types.value -> float
