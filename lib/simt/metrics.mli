(** Execution counters and derived metrics.

    {!simt_efficiency} follows the nvprof definition the paper uses: the
    average fraction of active threads per issued warp instruction. *)

type t = {
  warp_size : int;
  mutable issues : int; (* warp instructions issued *)
  mutable active_sum : int; (* total active lanes over all issues *)
  mutable cycles : int; (* final simulated cycle *)
  mutable mem_accesses : int; (* warp-level loads + stores issued *)
  mutable barrier_joins : int;
  mutable barrier_waits : int;
  mutable barrier_fires : int;
  mutable barrier_cancels : int;
  mutable yields : int; (* forced victim releases under [yield_on_stall] *)
  mutable yield_released : int;
      (* lanes released early by yields: each proceeded without the
         convergence the barrier promised *)
  mutable yield_abandoned : int;
      (* participant lanes left behind at yields: each lost its chance
         to converge with the released group (the paper's benefit,
         forfeited to preserve forward progress) *)
  mutable faults_injected : int; (* faults an injector applied to this run *)
  mutable threads_finished : int;
}

val create : warp_size:int -> t

(** Average active lanes per issue divided by the warp size, in [0, 1].
    0 when nothing was issued. *)
val simt_efficiency : t -> float

(** Issued warp instructions per cycle. *)
val ipc : t -> float

(** Average active lanes per issue. *)
val avg_active : t -> float

val pp : Format.formatter -> t -> unit
