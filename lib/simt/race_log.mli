(** Shadow-memory data-race logger — the dynamic ground truth behind
    {!Analysis.Race_safety} (surfaced as [srrun --race-check] and the
    fuzz pipeline's race oracles).

    Detection model: each warp carries a {e barrier-interval id}, bumped
    every time one of its convergence barriers organically fires
    (yield-recovery and fault-injected releases do {e not} advance it —
    a forced release is lost synchronization, so accesses on either side
    of it really are unordered). Every logged access is stamped with its
    warp's current interval. Two accesses to the same cell race when
    they come from {e different threads of the same warp in the same
    interval} and at least one is a write — exactly the phase model the
    static analysis proves over: a full barrier separates the intervals
    of every thread that crosses it.

    Cross-warp pairs are deliberately not compared: barrier state is
    warp-local, so interval ids of different warps advance independently
    and any cross-warp verdict would depend on the scheduler — the
    logger must be deterministic across all policies for the
    [race-spurious] oracle to be meaningful. A cross-warp collision on
    generated programs always has an intra-warp witness (whole warps
    execute each access), so no oracle teeth are lost.

    The shadow state is last-writer plus two distinct-thread reader
    slots per cell; two readers suffice because a read-write conflict
    only needs {e some} same-interval reader of another thread to pair
    with the writer. The interpreter pays O(1) per logged access, and
    zero when no log is attached ([?race] defaults to absent). *)

type kind = Write_write | Read_write

val kind_name : kind -> string

(** One detected race: the stored shadow access ([first_*]) against the
    access that collided with it ([second_*]). [epoch] is the warp's
    barrier-interval id at the collision. *)
type event = {
  addr : int;
  kind : kind;
  warp : int;
  epoch : int;
  first_tid : int;
  first_pc : int;
  second_tid : int;
  second_pc : int;
}

type t

(** [create ~size ~n_warps ()] — shadow state for a memory of [size]
    cells; at most [cap] (default 64) events are retained (the {!total}
    count keeps counting past the cap). *)
val create : ?cap:int -> size:int -> n_warps:int -> unit -> t

(** Advance a warp's barrier-interval id (called by the interpreter on
    every organic barrier fire of that warp). *)
val bump : t -> warp:int -> unit

(** The warp's current barrier-interval id. *)
val epoch : t -> warp:int -> int

val on_write : t -> warp:int -> tid:int -> pc:int -> addr:int -> unit
val on_read : t -> warp:int -> tid:int -> pc:int -> addr:int -> unit

(** Total races detected (including any past the retention cap). *)
val total : t -> int

(** Retained events, in detection order. *)
val events : t -> event list

val pp_event : Format.formatter -> event -> unit
