(* The legacy ADT-dispatch interpreter: pattern-matches boxed
   [Ir.Linear.linst] / [Ir.Types.instr] on every issue, exactly as the
   engine did before the pre-decoded threaded-code rewrite. Kept
   bit-exact with {!Interp} as the reference half of the fuzz pipeline's
   decode-mismatch oracle for one release, then deleted — do not grow
   features here; port them to {!Interp} and let the oracle check the
   equivalence. *)

module Mask = Support.Mask
module L = Ir.Linear
module T = Ir.Types

type thread_status = Ready | Blocked | Done

type frame = { regs : T.value array; ret_pc : int; ret_reg : T.reg option }

type thread = {
  lane : int;
  tid : int;
  rng : Support.Splitmix.t;
  mutable frames : frame list; (* head = current frame *)
  mutable pc : int;
  mutable status : thread_status;
  mutable ready_at : int;
  (* Convergence-group identity: the index of this thread's group slot in
     its warp's [gmask] table. Threads co-issue only when they share a
     group; groups split whenever members head to different places
     (divergent branch outcomes, barrier blocking) and merge ONLY when a
     convergence barrier fires. This models Volta behaviour faithfully:
     diverged threads do not spontaneously reconverge just because their
     PCs happen to coincide — reconvergence requires a barrier, which is
     exactly why compilers insert them. *)
  mutable group : int;
}

type warp = {
  wid : int;
  threads : thread array;
  barriers : Barrier_unit.t;
  mutable rr_pc : int; (* last pc issued by the Round_robin policy *)
  (* Live convergence groups as a packed table of lane bitmasks: slots
     [0, n_groups) hold disjoint non-empty masks covering every non-Done
     thread. Maintained incrementally on split/merge, so the issue path
     never rebuilds the partition. Invariant: all members of a group
     share the same pc, status and ready_at — they always transition
     together, and any divergent transition (branch, return, barrier
     block) immediately re-partitions the group by destination. *)
  gmask : Mask.t array;
  mutable n_groups : int;
  (* Cached min ready_at over Ready groups (max_int if none), so an idle
     cycle advances time in O(warps) instead of O(warps × lanes).
     [ready_stale] marks the cache dirty after any group mutation. *)
  mutable ready_min : int;
  mutable ready_stale : bool;
}

let frame_of th =
  match th.frames with
  | f :: _ -> f
  | [] -> raise (Interp.Runtime_error (Printf.sprintf "thread %d has no frame" th.tid))

let eval th = function T.Reg r -> (frame_of th).regs.(r) | T.Imm v -> v

let set_reg th r v = (frame_of th).regs.(r) <- v

let run ?tracer ?faults ?entry (config : Config.t) (lprog : L.t) ~args ~init_memory =
  Config.validate config;
  let entry_info =
    match entry with
    | None -> lprog.kernel
    | Some name -> (
      match List.find_opt (fun (f : L.finfo) -> String.equal f.fname name) lprog.funcs with
      | Some f -> f
      | None -> invalid_arg (Printf.sprintf "Interp.run: no function named %s" name))
  in
  if List.length args <> entry_info.arity then
    invalid_arg
      (Printf.sprintf "Interp.run: kernel %s expects %d args, got %d" entry_info.fname
         entry_info.arity (List.length args));
  let lat = config.latencies in
  let memory = Memsys.create config.memory ~size:(max lprog.mem_size 1) in
  List.iter
    (fun (base, size) ->
      for addr = base to base + size - 1 do
        Memsys.write memory addr (T.F 0.0)
      done)
    lprog.float_regions;
  init_memory memory;
  let metrics = Metrics.create ~warp_size:config.warp_size in
  let profile = Analysis.Profile.empty () in
  let yield_log = ref [] in
  (* Precompute which pcs start a basic block, for profile recording. *)
  let n_code = Array.length lprog.code in
  let is_block_entry =
    Array.init n_code (fun pc ->
        pc = 0
        || lprog.locs.(pc).L.in_func <> lprog.locs.(pc - 1).L.in_func
        || lprog.locs.(pc).L.in_block <> lprog.locs.(pc - 1).L.in_block)
  in
  let make_thread wid lane =
    let regs = Array.make (max entry_info.n_regs 1) (T.I 0) in
    List.iteri (fun i v -> regs.(i) <- v) args;
    {
      lane;
      tid = (wid * config.warp_size) + lane;
      rng = Support.Splitmix.of_ints config.seed wid lane;
      frames = [ { regs; ret_pc = -1; ret_reg = None } ];
      pc = entry_info.entry_pc;
      status = Ready;
      ready_at = 0;
      group = 0;
    }
  in
  let warps =
    Array.init config.n_warps (fun wid ->
        let w =
          {
            wid;
            threads = Array.init config.warp_size (make_thread wid);
            barriers =
              Barrier_unit.create ~n_barriers:lprog.n_barriers ~warp_size:config.warp_size;
            rr_pc = -1;
            gmask = Array.make config.warp_size Mask.empty;
            n_groups = 1;
            ready_min = 0;
            ready_stale = true;
          }
        in
        w.gmask.(0) <- Mask.full config.warp_size;
        w)
  in
  let n_threads = config.n_warps * config.warp_size in
  let cycle = ref 0 in
  let last_warp = ref (config.n_warps - 1) in
  (* Per-run scratch: simulation within one [run] is single-threaded, so
     one set of buffers serves every warp without re-allocation. *)
  let addr_buf = Array.make config.warp_size 0 in
  let part_pc = Array.make config.warp_size 0 in
  let part_slot = Array.make config.warp_size 0 in
  let cand_pc = Array.make config.warp_size 0 in
  let cand_mask = Array.make config.warp_size Mask.empty in
  let context w th =
    Printf.sprintf "warp %d lane %d tid %d pc %d" w.wid th.lane th.tid th.pc
  in
  (* ---- incremental group-table maintenance ---- *)
  let detach w th =
    let s = th.group in
    let m = Mask.remove th.lane w.gmask.(s) in
    w.gmask.(s) <- m;
    if Mask.is_empty m then begin
      (* free the slot by moving the last one down *)
      let last = w.n_groups - 1 in
      if s <> last then begin
        w.gmask.(s) <- w.gmask.(last);
        Mask.iter (fun lane -> w.threads.(lane).group <- s) w.gmask.(s)
      end;
      w.n_groups <- last
    end
  in
  (* Threads that moved together may have landed in different places;
     re-partition them into fresh groups by destination pc. *)
  let regroup w moved =
    w.ready_stale <- true;
    Mask.iter
      (fun lane ->
        let th = w.threads.(lane) in
        if th.status <> Done then detach w th)
      moved;
    let k = ref 0 in
    Mask.iter
      (fun lane ->
        let th = w.threads.(lane) in
        if th.status <> Done then begin
          let j = ref 0 in
          while !j < !k && part_pc.(!j) <> th.pc do incr j done;
          if !j = !k then begin
            part_pc.(!k) <- th.pc;
            part_slot.(!k) <- w.n_groups;
            w.gmask.(w.n_groups) <- Mask.empty;
            w.n_groups <- w.n_groups + 1;
            incr k
          end;
          let s = part_slot.(!j) in
          w.gmask.(s) <- Mask.add lane w.gmask.(s);
          th.group <- s
        end)
      moved
  in
  (* Wake a set of lanes released from a barrier: the shared tail of an
     organic fire, a yield-recovery release and a fault-injected spurious
     release. Only organic fires count as [barrier_fires]. *)
  let apply_release w released =
    Mask.iter
      (fun lane ->
        let th = w.threads.(lane) in
        th.status <- Ready;
        th.pc <- th.pc + 1;
        th.ready_at <- !cycle + lat.barrier)
      released;
    (* The release is the one place where diverged threads reconverge:
       everyone released at the same point joins one fresh group. *)
    regroup w released
  in
  (* Release every lane the barrier fire condition allows. *)
  let release_fired w b =
    match Barrier_unit.fired w.barriers b with
    | None -> ()
    | Some released ->
      metrics.barrier_fires <- metrics.barrier_fires + 1;
      apply_release w released
  in
  let finish_thread w th =
    th.status <- Done;
    w.ready_stale <- true;
    detach w th;
    metrics.threads_finished <- metrics.threads_finished + 1;
    let affected = Barrier_unit.withdraw_lane w.barriers th.lane in
    List.iter (release_fired w) affected
  in
  (* ---- stall handling: yield recovery or deadlock diagnosis ---- *)
  let waiting_slots w =
    let acc = ref [] in
    for b = lprog.n_barriers - 1 downto 0 do
      if not (Mask.is_empty (Barrier_unit.waiting w.barriers b)) then acc := b :: !acc
    done;
    !acc
  in
  (* A warp whose every live group is Blocked can never progress again:
     barrier state is warp-local, so no other warp can release it. *)
  let warp_stalled w =
    w.n_groups > 0
    &&
    let ok = ref true in
    for s = 0 to w.n_groups - 1 do
      if w.threads.(Mask.lowest w.gmask.(s)).status <> Blocked then ok := false
    done;
    !ok
  in
  (* The dynamic waits-for relation among this warp's barriers: barrier
     [c] waits for [b] when a lane [c] still expects (a participant not
     yet arrived) is itself blocked on [b]. A cycle in this relation is
     the concrete deadlock witness — the runtime counterpart of the
     static cycle srlint reports. *)
  let waits_for_cycle w =
    let succ c =
      let expected =
        Mask.diff (Barrier_unit.participants w.barriers c) (Barrier_unit.waiting w.barriers c)
      in
      Mask.fold
        (fun lane acc ->
          match Barrier_unit.blocked_anywhere w.barriers lane with
          | Some b -> ( match acc with Some b' when b' <= b -> acc | _ -> Some b)
          | None -> acc)
        expected None
    in
    let rec drop_until c = function
      | [] -> []
      | x :: rest -> if x = c then x :: rest else drop_until c rest
    in
    let rec walk seen c =
      if List.mem c seen then Some (drop_until c (List.rev seen))
      else match succ c with None -> None | Some b -> walk (c :: seen) b
    in
    List.find_map (fun s -> walk [] s) (waiting_slots w)
  in
  let lanes_str m = "{" ^ String.concat "," (List.map string_of_int (Mask.to_list m)) ^ "}" in
  let sites_str w m =
    let sites =
      Mask.fold
        (fun lane acc ->
          let loc = lprog.locs.(w.threads.(lane).pc) in
          let s = Printf.sprintf "%s/bb%d" loc.L.in_func loc.L.in_block in
          if List.mem s acc then acc else acc @ [ s ])
        m []
    in
    String.concat "," sites
  in
  let deadlock_report w =
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (Printf.sprintf
         "all live threads of warp %d blocked on convergence barriers (conflicting \
          barriers?)\n"
         w.wid);
    (match waits_for_cycle w with
    | Some cycle_slots ->
      let names = List.map (fun b -> Printf.sprintf "b%d" b) cycle_slots in
      Buffer.add_string buf
        (Printf.sprintf "waits-for cycle: %s -> %s\n"
           (String.concat " -> " names)
           (List.hd names));
      List.iter
        (fun b ->
          let waiting = Barrier_unit.waiting w.barriers b in
          let expected = Mask.diff (Barrier_unit.participants w.barriers b) waiting in
          Buffer.add_string buf
            (Printf.sprintf "  b%d: lanes %s blocked at %s; still expects lanes %s (%s)\n" b
               (lanes_str waiting) (sites_str w waiting) (lanes_str expected)
               (sites_str w expected)))
        cycle_slots
    | None -> ());
    Buffer.add_string buf (Format.asprintf "%a" Barrier_unit.pp w.barriers);
    Buffer.add_string buf
      "hint: deconfliction (the compiler default) prevents this; yield recovery (srrun \
       --yield) trades lost convergence for forward progress\n";
    Buffer.contents buf
  in
  (* Every live group of [w] is blocked: release a victim barrier chosen
     by the configured policy (Volta-style forward progress) or report
     the deadlock with its waits-for cycle. *)
  let recover_or_deadlock w =
    let slots = waiting_slots w in
    if slots = [] then
      raise
        (Interp.Deadlock
           (Printf.sprintf "warp %d: all groups blocked but no barrier has waiters" w.wid));
    if not config.yield_on_stall then raise (Interp.Deadlock (deadlock_report w));
    let victim =
      match config.yield_policy with
      | Config.Lowest_slot -> List.hd slots
      | Config.Oldest_arrival ->
        (* [slots] ascends, so keeping the incumbent on ties breaks
           toward the lowest slot id. *)
        List.fold_left
          (fun best b ->
            let a =
              match Barrier_unit.oldest_arrival w.barriers b with
              | Some a -> a
              | None -> max_int
            in
            match best with Some (ba, _) when ba <= a -> best | _ -> Some (a, b))
          None slots
        |> Option.get |> snd
      | Config.Most_waiters ->
        List.fold_left
          (fun best b ->
            let n = Mask.count (Barrier_unit.waiting w.barriers b) in
            let a =
              match Barrier_unit.oldest_arrival w.barriers b with
              | Some a -> a
              | None -> max_int
            in
            match best with
            | Some (bn, ba, _) when bn > n || (bn = n && ba <= a) -> best
            | _ -> Some (n, a, b))
          None slots
        |> Option.get
        |> fun (_, _, b) -> b
    in
    match Barrier_unit.force_release w.barriers victim with
    | None -> assert false (* victim came from waiting_slots *)
    | Some released ->
      let abandoned = Barrier_unit.participants w.barriers victim in
      metrics.yields <- metrics.yields + 1;
      metrics.yield_released <- metrics.yield_released + Mask.count released;
      metrics.yield_abandoned <- metrics.yield_abandoned + Mask.count abandoned;
      yield_log :=
        {
          Interp.at_cycle = !cycle;
          warp = w.wid;
          slot = victim;
          released = Mask.to_list released;
          abandoned = Mask.to_list abandoned;
        }
        :: !yield_log;
      apply_release w released
  in
  (* Execute one issued group: all lanes of [active] sit at [pc]. *)
  let execute w pc active =
    w.ready_stale <- true;
    let each f = Mask.iter (fun lane -> f w.threads.(lane)) active in
    let advance_all latency =
      each (fun th ->
          th.pc <- pc + 1;
          th.ready_at <- !cycle + latency)
    in
    let mem_cost cost =
      match faults with
      | Some f ->
        (* Same channel order as the decoded interpreter: spike first,
           then io-delay — replay indices must line up between them. *)
        let spike = Faults.mem_spike f ~warp:w.wid in
        let jitter = Faults.io_delay f ~warp:w.wid in
        cost + spike + jitter
      | None -> cost
    in
    (* Blocking and thread exit are the only transitions that can leave a
       warp with every live group blocked — check right here, so a doomed
       warp is caught at the faulting instruction while other warps keep
       running. *)
    let watchdog () = if warp_stalled w then recover_or_deadlock w in
    match lprog.code.(pc) with
    | L.Op op -> (
      match op with
      | T.Bin (bop, d, a, b) ->
        each (fun th -> set_reg th d (Valops.binop bop (eval th a) (eval th b)));
        advance_all (if T.is_float_op bop then lat.float_op else lat.alu)
      | T.Un (uop, d, a) ->
        each (fun th -> set_reg th d (Valops.unop uop (eval th a)));
        advance_all (if T.is_special_unop uop then lat.special else lat.alu)
      | T.Mov (d, a) ->
        each (fun th -> set_reg th d (eval th a));
        advance_all lat.alu
      | T.Load (d, a) ->
        metrics.mem_accesses <- metrics.mem_accesses + 1;
        let n = ref 0 in
        each (fun th ->
            addr_buf.(!n) <- Valops.to_int (eval th a);
            incr n);
        let cost = mem_cost (Memsys.access_costn memory ~addrs:addr_buf ~n:!n) in
        let i = ref 0 in
        each (fun th ->
            set_reg th d (Memsys.read memory addr_buf.(!i));
            incr i);
        advance_all cost
      | T.Store (a, v) ->
        metrics.mem_accesses <- metrics.mem_accesses + 1;
        let n = ref 0 in
        each (fun th ->
            addr_buf.(!n) <- Valops.to_int (eval th a);
            incr n);
        let cost = mem_cost (Memsys.access_costn memory ~addrs:addr_buf ~n:!n) in
        (* Lane order resolves write conflicts: the highest lane wins,
           matching CUDA's unspecified-but-single-winner semantics
           deterministically. *)
        let i = ref 0 in
        each (fun th ->
            Memsys.write memory addr_buf.(!i) (eval th v);
            incr i);
        advance_all cost
      | T.Tid d ->
        each (fun th -> set_reg th d (T.I th.tid));
        advance_all lat.alu
      | T.Lane d ->
        each (fun th -> set_reg th d (T.I th.lane));
        advance_all lat.alu
      | T.Nthreads d ->
        each (fun th -> set_reg th d (T.I n_threads));
        advance_all lat.alu
      | T.Rand d ->
        each (fun th -> set_reg th d (T.F (Support.Splitmix.float th.rng)));
        advance_all lat.rand
      | T.Randint (d, n) ->
        each (fun th ->
            let bound = Valops.to_int (eval th n) in
            if bound <= 0 then
              raise
                (Interp.Runtime_error
                   (Printf.sprintf "randint bound %d not positive (%s)" bound (context w th)));
            set_reg th d (T.I (Support.Splitmix.int th.rng bound)));
        advance_all lat.rand
      | T.Join b | T.Rejoin b ->
        metrics.barrier_joins <- metrics.barrier_joins + 1;
        each (fun th -> Barrier_unit.join w.barriers b th.lane);
        advance_all lat.barrier
      | T.Cancel b ->
        metrics.barrier_cancels <- metrics.barrier_cancels + 1;
        each (fun th -> Barrier_unit.cancel w.barriers b th.lane);
        advance_all lat.barrier;
        release_fired w b
      | T.Wait b ->
        metrics.barrier_waits <- metrics.barrier_waits + 1;
        each (fun th ->
            if Barrier_unit.is_participant w.barriers b th.lane then begin
              th.status <- Blocked;
              Barrier_unit.block ~now:!cycle w.barriers b th.lane ~threshold:None
            end
            else begin
              th.pc <- pc + 1;
              th.ready_at <- !cycle + lat.barrier
            end);
        (* blockers and pass-through threads part ways *)
        regroup w active;
        release_fired w b;
        watchdog ()
      | T.Wait_threshold (b, k) ->
        metrics.barrier_waits <- metrics.barrier_waits + 1;
        each (fun th ->
            if Barrier_unit.is_participant w.barriers b th.lane then begin
              th.status <- Blocked;
              Barrier_unit.block ~now:!cycle w.barriers b th.lane ~threshold:(Some k)
            end
            else begin
              th.pc <- pc + 1;
              th.ready_at <- !cycle + lat.barrier
            end);
        regroup w active;
        release_fired w b;
        watchdog ()
      | T.Arrived (d, b) ->
        each (fun th -> set_reg th d (T.I (Barrier_unit.arrived w.barriers b)));
        advance_all lat.barrier
      | T.Call _ ->
        (* The linearizer turns calls into [Lcall]. *)
        raise (Interp.Runtime_error (Printf.sprintf "raw call at pc %d" pc)))
    | L.Lcall { entry; n_regs; args = call_args; ret; callee = _ } ->
      each (fun th ->
          let values = List.map (eval th) call_args in
          let regs = Array.make (max n_regs 1) (T.I 0) in
          List.iteri (fun i v -> regs.(i) <- v) values;
          th.frames <- { regs; ret_pc = pc + 1; ret_reg = ret } :: th.frames;
          th.pc <- entry;
          th.ready_at <- !cycle + lat.call)
    | L.Lret op ->
      each (fun th ->
          let value = Option.map (eval th) op in
          match th.frames with
          | { ret_pc; ret_reg; _ } :: (_ :: _ as rest) ->
            th.frames <- rest;
            (match (ret_reg, value) with
            | Some d, Some v -> set_reg th d v
            | Some d, None -> set_reg th d (T.I 0)
            | None, (Some _ | None) -> ());
            th.pc <- ret_pc;
            th.ready_at <- !cycle + lat.call
          | _ -> raise (Interp.Runtime_error (Printf.sprintf "ret outside call (%s)" (context w th))));
      (* returns to different call sites split the group *)
      regroup w active
    | L.Lbr { cond; target } ->
      each (fun th ->
          th.pc <- (if Valops.truthy (eval th cond) then target else pc + 1);
          th.ready_at <- !cycle + lat.branch);
      (* a divergent outcome splits the convergence group *)
      regroup w active
    | L.Ljump target ->
      each (fun th ->
          th.pc <- target;
          th.ready_at <- !cycle + lat.branch)
    | L.Lexit ->
      each (fun th -> finish_thread w th);
      if metrics.threads_finished < n_threads then watchdog ()
  in
  (* Pick the next (warp, pc, lanes) to issue, rotating over warps.
     Candidates are convergence groups, read straight off the warp's
     incremental group table; a group is issuable when its (uniform)
     status is Ready and its ready_at has passed. Candidates are ordered
     by (pc, lexicographic lane list) — the order the schedule-sensitive
     policies are defined against. *)
  let select_group w =
    let k = ref 0 in
    for s = 0 to w.n_groups - 1 do
      let m = w.gmask.(s) in
      let rep = w.threads.(Mask.lowest m) in
      if rep.status = Ready && rep.ready_at <= !cycle then begin
        cand_pc.(!k) <- rep.pc;
        cand_mask.(!k) <- m;
        incr k
      end
    done;
    let k = !k in
    if k = 0 then None
    else begin
      for i = 1 to k - 1 do
        let pc = cand_pc.(i) and m = cand_mask.(i) in
        let j = ref (i - 1) in
        while
          !j >= 0
          && (cand_pc.(!j) > pc
             || (cand_pc.(!j) = pc && Mask.compare_lex cand_mask.(!j) m > 0))
        do
          cand_pc.(!j + 1) <- cand_pc.(!j);
          cand_mask.(!j + 1) <- cand_mask.(!j);
          decr j
        done;
        cand_pc.(!j + 1) <- pc;
        cand_mask.(!j + 1) <- m
      done;
      let chosen =
        match config.policy with
        | Config.Lowest_pc -> 0
        | Config.Most_threads ->
          let best = ref 0 in
          let best_n = ref (Mask.count cand_mask.(0)) in
          for i = 1 to k - 1 do
            let n = Mask.count cand_mask.(i) in
            if n > !best_n then begin
              best := i;
              best_n := n
            end
          done;
          !best
        | Config.Round_robin ->
          let found = ref 0 in
          (try
             for i = 0 to k - 1 do
               if cand_pc.(i) > w.rr_pc then begin
                 found := i;
                 raise Exit
               end
             done
           with Exit -> ());
          (* rr_pc is Round_robin state only: the other policies must
             not touch it, or a policy change would perturb schedules it
             never influences. *)
          w.rr_pc <- cand_pc.(!found);
          !found
      in
      (* Chaos scheduler: the injector may override a multi-candidate
         pick with any other legal candidate. *)
      let chosen =
        match faults with
        | Some f when k >= 2 -> Faults.pick f ~warp:w.wid ~k ~chosen
        | _ -> chosen
      in
      Some (cand_pc.(chosen), cand_mask.(chosen))
    end
  in
  let find_issue () =
    let found = ref None in
    let i = ref 1 in
    while !found = None && !i <= config.n_warps do
      let wid = (!last_warp + !i) mod config.n_warps in
      (match select_group warps.(wid) with
      | Some (pc, lanes) ->
        last_warp := wid;
        found := Some (warps.(wid), pc, lanes)
      | None -> ());
      incr i
    done;
    !found
  in
  (* Once per issue the injector may disturb the issuing warp: fire a
     spurious release (a barrier with waiters releases early, with
     threshold-fire semantics) or push every ready lane's wake-up back. *)
  let disturb w =
    match faults with
    | None -> ()
    | Some f -> (
      match Faults.disturb f ~warp:w.wid ~waiting_slots:(waiting_slots w) with
      | None -> ()
      | Some (Faults.D_release b) -> (
        match Barrier_unit.force_release w.barriers b with
        | Some released -> apply_release w released
        | None -> ())
      | Some (Faults.D_stall n) ->
        Array.iter
          (fun th -> if th.status = Ready then th.ready_at <- max th.ready_at !cycle + n)
          w.threads;
        w.ready_stale <- true)
  in
  let running = ref true in
  while !running do
    match find_issue () with
    | Some (w, pc, active) ->
      metrics.issues <- metrics.issues + 1;
      if metrics.issues > config.max_issues then
        raise (Interp.Runaway (Printf.sprintf "issue budget %d exhausted" config.max_issues));
      if config.fuel > 0 && metrics.issues > config.fuel then
        raise (Interp.Deadline_exceeded (Printf.sprintf "fuel %d exhausted" config.fuel));
      metrics.active_sum <- metrics.active_sum + Mask.count active;
      (match tracer with
      | Some observe ->
        observe
          { Interp.at_cycle = !cycle; warp = w.wid; pc; active = Mask.to_list active;
            where = lprog.locs.(pc) }
      | None -> ());
      if is_block_entry.(pc) then begin
        let loc = lprog.locs.(pc) in
        Analysis.Profile.record profile ~func:loc.L.in_func ~block:loc.L.in_block
          ~count:(Mask.count active)
      end;
      (try execute w pc active with
      | Valops.Type_error msg ->
        raise (Interp.Runtime_error (Printf.sprintf "type error at pc %d (warp %d): %s" pc w.wid msg))
      | Division_by_zero ->
        raise (Interp.Runtime_error (Printf.sprintf "division by zero at pc %d (warp %d)" pc w.wid))
      | Invalid_argument msg ->
        raise (Interp.Runtime_error (Printf.sprintf "fault at pc %d (warp %d): %s" pc w.wid msg)));
      disturb w;
      incr cycle
    | None ->
      (* Nothing issuable this cycle: advance time to the next ready
         group, finish, or handle an all-blocked stall. Group uniformity
         makes the per-warp minimum a min over groups, not lanes, and the
         cache makes the common all-warps-stalled step O(warps). *)
      if metrics.threads_finished >= n_threads then running := false
      else begin
        let next = ref max_int in
        Array.iter
          (fun w ->
            if w.ready_stale then begin
              let m = ref max_int in
              for s = 0 to w.n_groups - 1 do
                let rep = w.threads.(Mask.lowest w.gmask.(s)) in
                if rep.status = Ready && rep.ready_at < !m then m := rep.ready_at
              done;
              w.ready_min <- !m;
              w.ready_stale <- false
            end;
            if w.ready_min < !next then next := w.ready_min)
          warps;
        if !next < max_int then cycle := max !next (!cycle + 1)
        else begin
          (* Backstop only: the in-execute watchdog catches a doomed warp
             at its blocking instruction, so reaching here means every
             warp with live threads stalled some other way. *)
          let stalled = ref None in
          Array.iter (fun w -> if !stalled = None && warp_stalled w then stalled := Some w) warps;
          match !stalled with
          | Some w -> recover_or_deadlock w
          | None -> raise (Interp.Deadlock "machine idle with no runnable or blocked group")
        end
      end
  done;
  metrics.cycles <- !cycle;
  (match faults with
  | Some f -> metrics.faults_injected <- List.length (Faults.events f)
  | None -> ());
  { Interp.metrics; memory; profile; yield_log = List.rev !yield_log }
