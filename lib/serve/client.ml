(* Minimal srserved socket client: connect with bounded retry/backoff
   (the server may still be binding when we race it up), line-oriented
   round trips, and an rpc helper that retries transient overload.

   Shared by the service benchmark, the socket tests, and the
   serve-chaos harness — which also wants the raw fd to write torn
   bytes through, so it is exposed. *)

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect ?(attempts = 40) ?(backoff_s = 0.025) path =
  let rec go n delay =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) when n > 1 ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Unix.sleepf delay;
      go (n - 1) (Float.min 0.5 (delay *. 2.0))
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  in
  go (max 1 attempts) backoff_s

let close t =
  (try flush t.oc with Sys_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()

let fd t = t.fd

let send t lines =
  List.iter
    (fun line ->
      output_string t.oc line;
      output_char t.oc '\n')
    lines;
  (* Blank line: the flush marker, so the batch answers now rather than
     at max_batch. It earns no response of its own. *)
  output_char t.oc '\n';
  flush t.oc

let recv t n = List.init n (fun _ -> input_line t.ic)

let round_trip t lines =
  send t lines;
  recv t (List.length lines)

let rpc ?(retries = 5) ?(backoff_s = 0.02) t line =
  let rec go n delay =
    match round_trip t [ line ] with
    | [ resp ] -> (
      match Protocol.parse_response resp with
      | Ok (Protocol.Overloaded { retry_after = None; _ }) when n > 0 ->
        (* Transient backpressure: safe to retry after a pause. *)
        Unix.sleepf delay;
        go (n - 1) (Float.min 0.5 (delay *. 2.0))
      | _ ->
        (* Anything else — including a draining server's retry-after
           hint — is the answer; retrying a drain is futile. *)
        resp)
    | other -> failwith (Printf.sprintf "client: %d responses to one request" (List.length other))
  in
  go (max 0 retries) backoff_s
