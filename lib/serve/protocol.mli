(** The srserved wire protocol: newline-delimited, machine-parsable
    request/response lines.

    Every request and every response is exactly one line of printable
    ASCII: a head word ([run] / [stats] / [quit] / [shutdown], [ok] /
    [error] / [overloaded] / [deadline] / [bye]) followed by
    space-separated [key=value] fields.
    Values are percent-encoded ({!encode}) so sources with spaces and
    newlines survive the line discipline; fields may arrive in any order
    and unknown keys are a parse error (a typo'd field silently ignored
    would be a debugging trap, not a convenience).

    Error responses reuse {!Core.Cli}'s stable 0–8 exit-code contract:
    the [code] field of an [error] line is exactly the code the one-shot
    tool ([srcc]/[srrun]) would have exited with for the same input, so
    clients can share triage logic across the batch and one-shot paths.
    [overloaded] is not an error code but its own response head: the
    request was never admitted, and retrying it later is expected to
    succeed — conflating that with a 0–8 failure would poison retry
    logic. A draining server attaches [retry-after=SECONDS] so clients
    back off instead of hammering a server on its way down. [deadline]
    likewise stands apart from [error]: the request's fuel budget ran
    out, which is an {e expected} outcome of a budgeted run, not a tool
    failure (it maps to exit code 9 on the one-shot path). *)

(** {2 Percent encoding} *)

(** [encode s] makes [s] safe for a [key=value] field: ['%'], space, TAB,
    CR and LF become [%XX] escapes; everything else is verbatim. *)
val encode : string -> string

(** [decode s] inverts {!encode}.
    @raise Failure on a truncated or non-hex escape. *)
val decode : string -> string

(** {2 Requests} *)

(** One kernel-launch request. Compile-relevant fields ([mode],
    [coarsen], [threshold], [source]) form the cache key; the rest only
    parameterize the launch. *)
type request = {
  id : int;  (** echoed verbatim in the response *)
  mode : string;  (** baseline|none|specrecon|specrecon-static|auto *)
  policy : string;  (** most-threads|lowest-pc|round-robin *)
  warps : int;
  warp_size : int;
  seed : int;
  coarsen : int option;
  threshold : int option;  (** negative = strip thresholds, like the CLI *)
  entry : string option;  (** kernel to launch (default: program default) *)
  args : Ir.Types.value list;  (** kernel arguments *)
  init : string;  (** none|data — pre-launch memory fill (see {!Server.data_init}) *)
  deadline : int option;
      (** per-request fuel budget override; [None] inherits the server's
          default, [Some 0] means unlimited *)
  source : string;  (** MiniSIMT text *)
}

(** [make_request ~id ~source ()] with every other field at its
    default (specrecon, most-threads, 2 warps of 32, seed 11, no init,
    no deadline override). *)
val make_request :
  id:int ->
  ?mode:string ->
  ?policy:string ->
  ?warps:int ->
  ?warp_size:int ->
  ?seed:int ->
  ?coarsen:int ->
  ?threshold:int ->
  ?entry:string ->
  ?args:Ir.Types.value list ->
  ?init:string ->
  ?deadline:int ->
  source:string ->
  unit ->
  request

type command =
  | Run of request
  | Stats of int  (** report cache/served counters; the int is the echoed id *)
  | Quit
  | Shutdown
      (** graceful drain: finish in-flight work, answer pendings, then
          stop the whole server (not just this connection) *)

(** [parse_command line] — strict: unknown heads, unknown keys, bad
    escapes, bad integers, unknown mode/policy/init names and a missing
    [source] are all [Error msg]. *)
val parse_command : string -> (command, string) result

val print_command : command -> string

(** {2 Responses} *)

type cache_status = Hit | Miss

(** Metrics echo of one completed launch plus the cache counters at the
    moment the response was formed. [digest] is {!Simt.Memsys.digest} of
    the final memory image. *)
type reply = {
  rid : int;
  cache : cache_status;
  hits : int;
  misses : int;
  evictions : int;
  cycles : int;
  issues : int;
  active : int;  (** total active lanes over all issues *)
  finished : int;  (** threads that ran to completion *)
  digest : int;
}

type response =
  | Ok_run of reply
  | Error of { rid : int; code : int; kind : string; msg : string }
      (** [code] per {!Core.Cli.exit_code}; [kind] its symbolic name *)
  | Overloaded of { rid : int; retry_after : int option }
      (** bounced by backpressure before admission; safe to retry.
          [retry_after] (seconds) is set by a draining server as a
          back-off hint *)
  | Deadline of { rid : int; fuel : int }
      (** the launch ran out of its fuel budget (exit code 9 on the
          one-shot path); [fuel] is the budget that was exhausted *)
  | Stats_reply of {
      rid : int;
      hits : int;
      misses : int;
      evictions : int;
      entries : int;
      served : int;
      phits : int;  (** compiles satisfied from the persistent cache *)
      pcorrupt : int;  (** corrupt persisted entries degraded to misses *)
    }
  | Bye

val parse_response : string -> (response, string) result

val print_response : response -> string
