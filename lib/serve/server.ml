(* The srserved engine.

   A batch segment flows through three phases:

     1. admission  — sequential; everything beyond [max_inflight] gets
                     an Overloaded response and touches nothing;
     2. compile    — the segment's distinct uncached keys compile in
                     parallel (Support.Domain_pool), then every admitted
                     request resolves through the cache sequentially in
                     request order, fixing the hit/miss/eviction
                     counters each response will echo;
     3. launch     — compiled requests execute in parallel; the pool
                     reassembles results by index, so the response
                     stream is byte-identical whatever the domain count.

   The cache is only ever touched from the coordinating domain (phases
   1–2); workers receive resolved artifacts and build their own Memsys.
   That split is the whole determinism argument — there is no locked
   shared state for domains to race on, matching the repo's
   Domain_pool contract everywhere else. *)

module P = Protocol
module T = Ir.Types
module Sm = Support.Splitmix

type t = {
  cache : Core.Compile.compiled Cache.t;
  persist : Persist.t option;
  max_inflight : int;
  max_issues : int;
  fuel : int; (* default per-launch fuel budget; 0 = unlimited *)
  retry_after : int; (* back-off hint attached while draining *)
  race_gate : bool; (* refuse to launch programs with static race findings *)
  mutable draining : bool;
  mutable served : int;
}

let create ?(cache_capacity = 128) ?(max_inflight = 256) ?(max_issues = 1_500_000) ?(fuel = 0)
    ?persist_dir ?(retry_after = 1) ?(race_gate = false) () =
  if max_inflight < 1 then invalid_arg "Server.create: max_inflight must be >= 1";
  if fuel < 0 then invalid_arg "Server.create: fuel must be >= 0";
  if retry_after < 0 then invalid_arg "Server.create: retry_after must be >= 0";
  {
    cache = Cache.create ~capacity:cache_capacity;
    persist = Option.map (fun dir -> Persist.create ~dir) persist_dir;
    max_inflight;
    max_issues;
    fuel;
    retry_after;
    race_gate;
    draining = false;
    served = 0;
  }

(* The fuzz oracles' input pattern (moved here from lib/fuzz so the wire
   protocol's [init=data] and the one-shot comparison path share it):
   keyed by global name and base address only, both fixed at lowering,
   so it is identical across compilation modes. *)
let data_init (program : T.program) mem =
  Hashtbl.iter
    (fun name (base, size) ->
      match name with
      | "datai" ->
        let rng = Sm.of_ints 0xda7a base 1 in
        for i = 0 to size - 1 do
          Simt.Memsys.write mem (base + i) (T.I (Sm.int rng 1024 - 256))
        done
      | "dataf" ->
        let rng = Sm.of_ints 0xda7a base 2 in
        for i = 0 to size - 1 do
          Simt.Memsys.write mem (base + i) (T.F (Sm.float rng *. 4.0 -. 1.0))
        done
      | _ -> ())
    program.T.globals

let served t = t.served
let cache_hits t = Cache.hits t.cache
let cache_misses t = Cache.misses t.cache
let cache_evictions t = Cache.evictions t.cache
let cache_entries t = Cache.length t.cache
let persist_hits t = match t.persist with Some p -> Persist.hits p | None -> 0
let persist_corrupt t = match t.persist with Some p -> Persist.corrupt p | None -> 0
let draining t = t.draining
let drain t = t.draining <- true

(* ---- request -> compile options / launch config ---- *)

let mode_of_string = function
  | "baseline" -> Core.Compile.Baseline
  | "none" -> Core.Compile.No_sync
  | "specrecon" -> Core.Compile.Speculative Passes.Deconflict.Dynamic
  | "specrecon-static" -> Core.Compile.Speculative Passes.Deconflict.Static
  | "auto" ->
    Core.Compile.Automatic
      {
        params = Passes.Auto_detect.default_params;
        strategy = Passes.Deconflict.Dynamic;
        profile = None;
      }
  | other -> invalid_arg ("unknown mode " ^ other) (* unreachable: protocol validates *)

let policy_of_string = function
  | "lowest-pc" -> Simt.Config.Lowest_pc
  | "round-robin" -> Simt.Config.Round_robin
  | _ -> Simt.Config.Most_threads

let options_of_request (r : P.request) =
  {
    Core.Compile.mode = mode_of_string r.P.mode;
    coarsen = r.P.coarsen;
    threshold =
      (match r.P.threshold with
      | None -> Core.Compile.Keep
      | Some k when k < 0 -> Core.Compile.Unset
      | Some k -> Core.Compile.Set k);
    cleanup = true;
    deconflict = true;
    lint = true;
    (* Findings travel in the artifact either way; the per-server
       race gate decides at launch time, so gated and ungated servers
       share cache/persist entries for one key. *)
    race = true;
    repair = Core.Compile.No_repair;
  }

(* Effective fuel: the request's deadline override, else the server
   default. 0 means unlimited either way. *)
let fuel_of_request t (r : P.request) = Option.value r.P.deadline ~default:t.fuel

let config_of_request t (r : P.request) =
  let config =
    { Simt.Config.default with
      Simt.Config.n_warps = r.P.warps;
      warp_size = r.P.warp_size;
      policy = policy_of_string r.P.policy;
      seed = r.P.seed;
      max_issues = t.max_issues;
      fuel = fuel_of_request t r }
  in
  Simt.Config.validate config;
  config

(* The cache key is every compile-relevant request field plus the full
   source; launch-only fields (warps, policy, seed, entry, args, init)
   deliberately stay out so a million differently-configured launches of
   one kernel share one artifact. *)
let cache_key (r : P.request) =
  Printf.sprintf "mode=%s coarsen=%s threshold=%s\n%s" r.P.mode
    (match r.P.coarsen with None -> "-" | Some k -> string_of_int k)
    (match r.P.threshold with None -> "-" | Some k -> string_of_int k)
    r.P.source

(* ---- failure mapping ---- *)

let outcome_kind_and_message = function
  | Core.Cli.Ok_exit -> ("ok", "")
  | Core.Cli.Findings -> ("findings", "")
  | Core.Cli.Usage m -> ("usage", m)
  | Core.Cli.Io_error m -> ("io", m)
  | Core.Cli.Syntax_error m -> ("syntax", m)
  | Core.Cli.Compile_error m -> ("compile", m)
  | Core.Cli.Deadlock m -> ("deadlock", m)
  | Core.Cli.Runtime_failure m -> ("runtime", m)
  | Core.Cli.Baseline_mismatch m -> ("baseline-mismatch", m)
  | Core.Cli.Deadline_exceeded m -> ("deadline", m)

let error_response rid exn =
  match Core.Cli.classify exn with
  | Some outcome ->
    let kind, msg = outcome_kind_and_message outcome in
    P.Error { rid; code = Core.Cli.exit_code outcome; kind; msg }
  | None -> raise exn (* a server bug, not a request failure: crash loudly *)

(* ---- submit ---- *)

(* Per-request state as a segment moves through the phases. *)
type slot =
  | Done of P.response (* overloaded, or failed in an earlier phase *)
  | Compiled of P.request * Core.Compile.compiled * P.cache_status * int * int * int
    (* artifact + the cache status/counters this response will echo *)

let init_of_request (r : P.request) =
  if String.equal r.P.init "data" then data_init else fun _ _ -> ()

let launch_slot t = function
  | Done r -> r
  | Compiled (req, compiled, _, _, _, _)
    when t.race_gate && compiled.Core.Compile.race_findings <> [] ->
    let fs = compiled.Core.Compile.race_findings in
    P.Error
      {
        rid = req.P.id;
        code = Core.Cli.exit_code Core.Cli.Findings;
        kind = "race";
        msg =
          Printf.sprintf "%d static race finding(s); first: %s" (List.length fs)
            (Format.asprintf "%a" Analysis.Race_safety.pp_machine (List.hd fs));
      }
  | Compiled (req, compiled, cache, hits, misses, evictions) -> (
    try
      let config = config_of_request t req in
      let outcome =
        Core.Runner.launch ~config ~init:(init_of_request req) ?entry:req.P.entry compiled
          ~args:req.P.args
      in
      let m = outcome.Core.Runner.metrics in
      P.Ok_run
        {
          P.rid = req.P.id;
          cache;
          hits;
          misses;
          evictions;
          cycles = m.Simt.Metrics.cycles;
          issues = m.Simt.Metrics.issues;
          active = m.Simt.Metrics.active_sum;
          finished = m.Simt.Metrics.threads_finished;
          digest = Simt.Memsys.digest outcome.Core.Runner.memory;
        }
    with
    | Simt.Interp.Deadline_exceeded _ ->
      (* An expected outcome of a budgeted run, not a failure: its own
         response head, mirroring exit code 9 on the one-shot path. *)
      P.Deadline { rid = req.P.id; fuel = fuel_of_request t req }
    | exn -> error_response req.P.id exn)

let run_segment t (requests : P.request list) =
  (* Phase 1: admission. A draining server admits nothing and attaches
     its back-off hint; a live one bounces only the overflow. *)
  let slots =
    List.mapi
      (fun i r ->
        if t.draining then
          Either.Right (P.Overloaded { rid = r.P.id; retry_after = Some t.retry_after })
        else if i < t.max_inflight then Either.Left r
        else Either.Right (P.Overloaded { rid = r.P.id; retry_after = None }))
      requests
  in
  (* Phase 2a: resolve what can be had without compiling. Persist loads
     happen here, sequentially in request order on the coordinating
     domain, so the phits/pcorrupt counters are deterministic; a
     persisted artifact skips the parallel compile but still commits to
     the in-memory cache as a Miss in phase 2b — the response stream is
     byte-identical whether the artifact was compiled or exhumed. *)
  let persisted = Hashtbl.create 8 in
  let missing = Hashtbl.create 8 in
  List.iter
    (function
      | Either.Right _ -> ()
      | Either.Left r ->
        let key = cache_key r in
        if
          (not (Cache.mem t.cache ~key))
          && (not (Hashtbl.mem persisted key))
          && not (Hashtbl.mem missing key)
        then begin
          match Option.bind t.persist (fun p -> Persist.load p ~key) with
          | Some compiled -> Hashtbl.replace persisted key (compiled : Core.Compile.compiled)
          | None -> Hashtbl.replace missing key (options_of_request r, r.P.source)
        end)
    slots;
  let missing_keys = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) missing []) in
  let precompiled = Hashtbl.create 8 in
  List.iter2
    (fun key result -> Hashtbl.replace precompiled key result)
    missing_keys
    (Support.Domain_pool.map
       (fun key ->
         let options, source = Hashtbl.find missing key in
         match Core.Compile.compile options ~source with
         | compiled -> Ok compiled
         | exception exn -> Error exn)
       missing_keys);
  (* Phase 2b: resolve every request through the cache sequentially in
     request order — counters become deterministic here. *)
  let resolved =
    List.map
      (function
        | Either.Right resp -> Done resp
        | Either.Left r -> (
          let key = cache_key r in
          let build () =
            match Hashtbl.find_opt persisted key with
            | Some compiled -> compiled
            | None -> (
              let compiled =
                match Hashtbl.find_opt precompiled key with
                | Some (Ok compiled) -> compiled
                | Some (Error exn) -> raise exn
                | None -> Core.Compile.compile (options_of_request r) ~source:r.P.source
              in
              (* Freshly compiled (not exhumed): write it through so a
                 restarted server can answer this key warm. *)
              Option.iter (fun p -> Persist.store p ~key compiled) t.persist;
              compiled)
          in
          match Cache.find_or_add t.cache ~key build with
          | cache, compiled ->
            Compiled
              ( r,
                compiled,
                cache,
                Cache.hits t.cache,
                Cache.misses t.cache,
                Cache.evictions t.cache )
          | exception exn -> Done (error_response r.P.id exn)))
      slots
  in
  (* Phase 3: launch in parallel; the pool's index-ordered reassembly is
     what keeps the response stream deterministic. *)
  let responses = Support.Domain_pool.map (launch_slot t) resolved in
  t.served <-
    t.served
    + List.length
        (List.filter (function P.Overloaded _ -> false | _ -> true) responses);
  responses

let submit t commands =
  (* Split into maximal Run segments; Stats/Quit/Shutdown are sequential
     markers whose responses observe every launch submitted before
     them. *)
  let flush pending acc =
    if pending = [] then acc else List.rev_append (run_segment t (List.rev pending)) acc
  in
  let rec go pending acc = function
    | [] -> List.rev (flush pending acc)
    | P.Run r :: rest -> go (r :: pending) acc rest
    | P.Stats id :: rest ->
      let acc = flush pending acc in
      let reply =
        P.Stats_reply
          {
            rid = id;
            hits = cache_hits t;
            misses = cache_misses t;
            evictions = cache_evictions t;
            entries = cache_entries t;
            served = t.served;
            phits = persist_hits t;
            pcorrupt = persist_corrupt t;
          }
      in
      go [] (reply :: acc) rest
    | P.Quit :: rest ->
      let acc = flush pending acc in
      go [] (P.Bye :: acc) rest
    | P.Shutdown :: rest ->
      (* Everything submitted before the shutdown completes and is
         answered; everything after it (this batch included) sees a
         draining server. *)
      let acc = flush pending acc in
      drain t;
      go [] (P.Bye :: acc) rest
  in
  go [] [] commands

let submit_lines t lines =
  (* Malformed lines become error responses inline (usage code, id -1:
     the id, if any, was part of what failed to parse) — the server
     never dies on bad input. *)
  let parsed =
    List.map
      (fun line ->
        match P.parse_command line with
        | Ok cmd -> Ok cmd
        | Error msg ->
          Error
            (P.Error
               { rid = -1;
                 code = Core.Cli.exit_code (Core.Cli.Usage msg);
                 kind = "malformed";
                 msg }))
      lines
  in
  let responses = submit t (List.filter_map Result.to_option parsed) in
  (* Reinterleave: parse failures answered in place, everything else in
     submission order. *)
  let rec weave parsed responses acc =
    match (parsed, responses) with
    | [], [] -> List.rev acc
    | Error resp :: rest, _ -> weave rest responses (resp :: acc)
    | Ok _ :: rest, resp :: more -> weave rest more (resp :: acc)
    | Ok _ :: _, [] | [], _ :: _ -> assert false
  in
  List.map P.print_response (weave parsed responses [])
