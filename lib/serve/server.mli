(** The srserved engine: batched compile-and-simulate behind a
    content-addressed compile cache.

    A server owns one {!Cache.t} mapping (source, compile options) to
    the {!Core.Compile.compiled} artifact — in particular its immutable
    {!Ir.Decoded.t}, so a kernel submitted by any number of clients
    decodes once. {!submit} takes a batch of protocol commands and
    returns exactly one response per command, in command order:

    - compilation of the batch's distinct uncached kernels fans out
      across cores through {!Support.Domain_pool}, then artifacts are
      committed to the cache {e sequentially in request order}, so the
      hit/miss/eviction counters echoed in each response are
      deterministic whatever [SPECRECON_DOMAINS] says;
    - launches then fan out through the pool too, reassembled by
      request index — the response stream is byte-identical across
      domain counts;
    - backpressure is explicit: a batch segment admits at most
      [max_inflight] launches, and every request beyond that bound gets
      an [overloaded] response instead of queueing unboundedly (it was
      never admitted; the client retries).

    Failures never tear the server down: per-request errors map through
    {!Core.Cli.classify} to the 0–9 code contract and come back as
    [error] responses (fuel exhaustion gets its own [deadline] head).

    With [persist_dir] set, freshly compiled artifacts are written
    through to a crash-safe on-disk store ({!Persist}) and future
    misses try the disk before compiling — a restarted server answers a
    replayed trace warm, byte-identically to its pre-crash run stream
    (persist loads commit to the in-memory cache as ordinary misses and
    are only visible in [stats] replies, as [phits]/[pcorrupt]).

    A {e draining} server ({!drain}, or a [shutdown] command) still
    answers everything already submitted, but admits nothing new:
    subsequent runs get [overloaded] with a [retry-after] back-off
    hint. *)

type t

(** [create ()] — [cache_capacity] entries ([0] disables caching),
    [max_inflight] admitted launches per batch segment, [max_issues]
    the per-launch runaway budget, [fuel] the default per-launch
    deadline budget ([0] = unlimited; requests override it with
    [deadline=]), [persist_dir] the on-disk artifact store to write
    through to, [retry_after] the back-off hint (seconds) attached to
    [overloaded] responses while draining, [race_gate] refuses to
    launch programs with static {!Analysis.Race_safety} findings
    (answered as [error] responses of kind [race]; the gate applies at
    launch time, so gated and ungated servers share artifacts for one
    key). *)
val create :
  ?cache_capacity:int ->
  ?max_inflight:int ->
  ?max_issues:int ->
  ?fuel:int ->
  ?persist_dir:string ->
  ?retry_after:int ->
  ?race_gate:bool ->
  unit ->
  t

(** The deterministic input-array fill the fuzz oracles launch under:
    [datai]/[dataf] get SplitMix streams keyed by global base address,
    all other globals stay zeroed. Exposed here so the serve-mismatch
    oracle and the one-shot path it compares against share one
    definition ([init=data] on the wire). *)
val data_init : Ir.Types.program -> Simt.Memsys.t -> unit

(** The wire rendering of a classified failure: the [kind] token and
    message an [error] response carries for that {!Core.Cli.outcome}.
    Exposed so the serve-mismatch oracle renders one-shot failures
    exactly as the server does. *)
val outcome_kind_and_message : Core.Cli.outcome -> string * string

(** One response per command, in order. *)
val submit : t -> Protocol.command list -> Protocol.response list

(** [submit_lines t lines] — parse, submit, and print: the stdio loop's
    core, one response line per request line (malformed lines get
    [error] responses with the usage code). *)
val submit_lines : t -> string list -> string list

(** Cumulative launches completed (ok or error; overloaded and stats
    excluded). *)
val served : t -> int

val cache_hits : t -> int

val cache_misses : t -> int

val cache_evictions : t -> int

val cache_entries : t -> int

(** Compiles satisfied from the persistent store (0 without
    [persist_dir]). *)
val persist_hits : t -> int

(** Persisted entries rejected by verification and degraded to misses
    (0 without [persist_dir]). *)
val persist_corrupt : t -> int

(** [drain t] — stop admitting new launches: every subsequent run
    request is answered [overloaded retry-after=N]. Stats/quit still
    answer; already-submitted work completes. Idempotent. *)
val drain : t -> unit

val draining : t -> bool
