(** The srserved engine: batched compile-and-simulate behind a
    content-addressed compile cache.

    A server owns one {!Cache.t} mapping (source, compile options) to
    the {!Core.Compile.compiled} artifact — in particular its immutable
    {!Ir.Decoded.t}, so a kernel submitted by any number of clients
    decodes once. {!submit} takes a batch of protocol commands and
    returns exactly one response per command, in command order:

    - compilation of the batch's distinct uncached kernels fans out
      across cores through {!Support.Domain_pool}, then artifacts are
      committed to the cache {e sequentially in request order}, so the
      hit/miss/eviction counters echoed in each response are
      deterministic whatever [SPECRECON_DOMAINS] says;
    - launches then fan out through the pool too, reassembled by
      request index — the response stream is byte-identical across
      domain counts;
    - backpressure is explicit: a batch segment admits at most
      [max_inflight] launches, and every request beyond that bound gets
      an [overloaded] response instead of queueing unboundedly (it was
      never admitted; the client retries).

    Failures never tear the server down: per-request errors map through
    {!Core.Cli.classify} to the 0–8 code contract and come back as
    [error] responses. *)

type t

(** [create ()] — [cache_capacity] entries ([0] disables caching),
    [max_inflight] admitted launches per batch segment, [max_issues]
    the per-launch runaway budget. *)
val create : ?cache_capacity:int -> ?max_inflight:int -> ?max_issues:int -> unit -> t

(** The deterministic input-array fill the fuzz oracles launch under:
    [datai]/[dataf] get SplitMix streams keyed by global base address,
    all other globals stay zeroed. Exposed here so the serve-mismatch
    oracle and the one-shot path it compares against share one
    definition ([init=data] on the wire). *)
val data_init : Ir.Types.program -> Simt.Memsys.t -> unit

(** The wire rendering of a classified failure: the [kind] token and
    message an [error] response carries for that {!Core.Cli.outcome}.
    Exposed so the serve-mismatch oracle renders one-shot failures
    exactly as the server does. *)
val outcome_kind_and_message : Core.Cli.outcome -> string * string

(** One response per command, in order. *)
val submit : t -> Protocol.command list -> Protocol.response list

(** [submit_lines t lines] — parse, submit, and print: the stdio loop's
    core, one response line per request line (malformed lines get
    [error] responses with the usage code). *)
val submit_lines : t -> string list -> string list

(** Cumulative launches completed (ok or error; overloaded and stats
    excluded). *)
val served : t -> int

val cache_hits : t -> int

val cache_misses : t -> int

val cache_evictions : t -> int

val cache_entries : t -> int
