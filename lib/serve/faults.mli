(** Seeded fault injection for the service layer — the serve-side
    mirror of {!Simt.Faults}.

    Two channels, each with its own consultation counter:

    - {e req}: once per request a chaos client is about to send, the
      plan may order it torn mid-line, dribbled out slow-loris style,
      given an injected tight [deadline=] fuel budget, or sent by a
      client that vanishes without reading its response;
    - {e file}: once per corruption opportunity between server
      generations, the plan may order persisted cache files mangled.

    Same contract as the simulator harness: faults draw from a
    SplitMix-seeded plan, every applied fault is recorded with its
    consultation index, and the printed trace parses back and replays
    exactly. *)

type event =
  | Truncate of { step : int; keep : int }
  | Slow of { step : int; chunk : int }
  | Fuel of { step : int; fuel : int }
  | Abort of { step : int }
  | Corrupt of { step : int }

(** What {!request_fault} asks the chaos client to do with one
    request. *)
type disposition =
  | Clean
  | Truncated of int  (** send only this many bytes of the line, then close *)
  | Slowed of int  (** send the line in chunks of this many bytes *)
  | Fueled of int  (** inject [deadline=fuel] into the request *)
  | Aborted  (** send fully, read no response, close *)

type rates = {
  trunc_rate : float;  (** P(torn line) per request *)
  slow_rate : float;  (** P(slow-loris send) per request *)
  fuel_rate : float;  (** P(injected fuel budget) per request *)
  abort_rate : float;  (** P(client vanishes unread) per request *)
  corrupt_rate : float;  (** P(mangle) per file opportunity *)
  fuel_max : int;  (** injected budget drawn from [1, max] *)
  chunk_max : int;  (** slow-loris chunk drawn from [1, max] *)
}

val default_rates : rates

type t

(** [create ?rates ~seed ()] — a generative plan; same seed, same
    faults. *)
val create : ?rates:rates -> seed:int -> unit -> t

(** [replay events] — a plan that re-applies exactly [events]. *)
val replay : event list -> t

(** Faults applied so far, in application order. *)
val events : t -> event list

(** [request_fault t ~len] — the disposition for the next request,
    where [len] is the request line's byte length (truncation points
    are drawn, and replayed ones clamped, inside it). *)
val request_fault : t -> len:int -> disposition

(** [file_fault t] — whether to corrupt at this file opportunity. *)
val file_fault : t -> bool

val pp_event : Format.formatter -> event -> unit
val pp_trace : Format.formatter -> event list -> unit
val trace_to_string : event list -> string

(** Inverse of {!pp_trace}; blank lines and [#] comments are skipped.
    @raise Failure on a malformed line. *)
val parse_trace : string -> event list
