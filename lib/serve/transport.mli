(** Unix-domain-socket front end for srserved ([--socket PATH]).

    A single-threaded select loop serving any number of concurrent
    client connections over one shared {!Server.t}. Each connection
    gets its own input buffer and batch under the stdio batching rules
    (blank-line flush, [max_batch] segment cap, non-run lines flush
    then answer in place), so its response stream is byte-identical to
    what the same lines would produce over stdio — regardless of how
    other connections interleave.

    Hostile peers are contained per connection: a torn line older than
    [read_timeout] seconds earns a [timeout] error and a close; a line
    over [max_line] bytes earns an [overflow] error and a close; a
    failed write closes only that connection. None of it disturbs any
    other connection's stream.

    [quit] ends one connection. [shutdown] — or {!Server.drain} called
    from a signal handler — drains the whole service: buffered work is
    answered by the draining server ([overloaded retry-after=N]), every
    connection gets [bye], the socket file is unlinked, and [serve]
    returns (the caller then exits 0). SIGPIPE is set to ignore. *)

(** [serve server ~socket_path ()] binds, listens, and serves until the
    server drains. Replaces any stale socket file at [socket_path].
    Defaults: [max_batch] 64, [read_timeout] 30s, [max_line] 1MB. *)
val serve :
  ?max_batch:int ->
  ?read_timeout:float ->
  ?max_line:int ->
  Server.t ->
  socket_path:string ->
  unit ->
  unit
