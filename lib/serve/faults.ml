(* Seeded fault injection for the service layer — the serve-side mirror
   of Simt.Faults. Where the simulator harness perturbs scheduler picks
   and memory latencies, this one perturbs the transport and the store:
   what a hostile network, a dying client, or a flaky disk does to
   srserved.

   Two channels, each with its own consultation counter:

   - req: once per request a chaos client is about to send, the plan
     may order it torn (truncate the line mid-byte and close), slowed
     (dribble it out in tiny chunks — slow-loris), fueled (inject a
     tight deadline= override so the launch exhausts its budget), or
     aborted (send fully, read nothing, vanish);
   - file: once per corruption opportunity between server generations,
     the plan may order the persisted cache files mangled.

   Faults draw from a SplitMix-seeded plan; every applied fault is
   recorded with its consultation index and the trace replays exactly,
   same contract as Simt.Faults. *)

module Sm = Support.Splitmix

type event =
  | Truncate of { step : int; keep : int }
  | Slow of { step : int; chunk : int }
  | Fuel of { step : int; fuel : int }
  | Abort of { step : int }
  | Corrupt of { step : int }

type disposition =
  | Clean
  | Truncated of int  (* send only this many bytes, then close *)
  | Slowed of int  (* send in chunks of this many bytes *)
  | Fueled of int  (* inject deadline=fuel into the request *)
  | Aborted  (* send, read nothing, close *)

type rates = {
  trunc_rate : float;
  slow_rate : float;
  fuel_rate : float;
  abort_rate : float;
  corrupt_rate : float;
  fuel_max : int;
  chunk_max : int;
}

let default_rates =
  {
    trunc_rate = 0.10;
    slow_rate = 0.10;
    fuel_rate = 0.10;
    abort_rate = 0.05;
    corrupt_rate = 0.5;
    fuel_max = 200;
    chunk_max = 7;
  }

type channel = Req_ch | File_ch

type mode = Generate of Sm.t * rates | Replay of (channel * int, event) Hashtbl.t

type t = {
  mode : mode;
  mutable req_step : int;
  mutable file_step : int;
  mutable applied_rev : event list;
}

let create ?(rates = default_rates) ~seed () =
  { mode = Generate (Sm.of_ints seed 0x5e17e 0xfa17, rates); req_step = 0; file_step = 0;
    applied_rev = [] }

let channel_of = function
  | Truncate _ | Slow _ | Fuel _ | Abort _ -> Req_ch
  | Corrupt _ -> File_ch

let step_of = function
  | Truncate { step; _ } | Slow { step; _ } | Fuel { step; _ } | Abort { step }
  | Corrupt { step } ->
    step

let replay events =
  let tbl = Hashtbl.create 64 in
  List.iter (fun ev -> Hashtbl.replace tbl (channel_of ev, step_of ev) ev) events;
  { mode = Replay tbl; req_step = 0; file_step = 0; applied_rev = [] }

let events t = List.rev t.applied_rev

let record t ev = t.applied_rev <- ev :: t.applied_rev

(* [len] is the request line's byte length, so a truncation point can be
   drawn inside it; replayed truncations clamp to it. *)
let request_fault t ~len =
  let step = t.req_step in
  t.req_step <- step + 1;
  match t.mode with
  | Generate (rng, r) ->
    let x = Sm.float rng in
    if x < r.trunc_rate then begin
      let keep = Sm.int rng (max 1 len) in
      record t (Truncate { step; keep });
      Truncated keep
    end
    else if x < r.trunc_rate +. r.slow_rate then begin
      let chunk = 1 + Sm.int rng r.chunk_max in
      record t (Slow { step; chunk });
      Slowed chunk
    end
    else if x < r.trunc_rate +. r.slow_rate +. r.fuel_rate then begin
      let fuel = 1 + Sm.int rng r.fuel_max in
      record t (Fuel { step; fuel });
      Fueled fuel
    end
    else if x < r.trunc_rate +. r.slow_rate +. r.fuel_rate +. r.abort_rate then begin
      record t (Abort { step });
      Aborted
    end
    else Clean
  | Replay tbl -> (
    match Hashtbl.find_opt tbl (Req_ch, step) with
    | Some (Truncate { keep; _ }) ->
      let keep = min keep (max 0 (len - 1)) in
      record t (Truncate { step; keep });
      Truncated keep
    | Some (Slow { chunk; _ }) ->
      record t (Slow { step; chunk });
      Slowed chunk
    | Some (Fuel { fuel; _ }) ->
      record t (Fuel { step; fuel });
      Fueled fuel
    | Some (Abort _) ->
      record t (Abort { step });
      Aborted
    | _ -> Clean)

let file_fault t =
  let step = t.file_step in
  t.file_step <- step + 1;
  match t.mode with
  | Generate (rng, r) ->
    if Sm.float rng < r.corrupt_rate then begin
      record t (Corrupt { step });
      true
    end
    else false
  | Replay tbl -> (
    match Hashtbl.find_opt tbl (File_ch, step) with
    | Some (Corrupt _) ->
      record t (Corrupt { step });
      true
    | _ -> false)

(* ---- trace printing and parsing ---- *)

let pp_event ppf = function
  | Truncate { step; keep } -> Format.fprintf ppf "fault trunc step=%d keep=%d" step keep
  | Slow { step; chunk } -> Format.fprintf ppf "fault slow step=%d chunk=%d" step chunk
  | Fuel { step; fuel } -> Format.fprintf ppf "fault fuel step=%d fuel=%d" step fuel
  | Abort { step } -> Format.fprintf ppf "fault abort step=%d" step
  | Corrupt { step } -> Format.fprintf ppf "fault corrupt step=%d" step

let pp_trace ppf events =
  List.iter (fun ev -> Format.fprintf ppf "%a@." pp_event ev) events

let trace_to_string events = Format.asprintf "%a" pp_trace events

let parse_event line =
  let fail () = failwith (Printf.sprintf "Serve.Faults.parse_trace: malformed line %S" line) in
  let field name kv =
    match String.split_on_char '=' kv with
    | [ k; v ] when String.equal k name -> (
      match int_of_string_opt v with Some n -> n | None -> fail ())
    | _ -> fail ()
  in
  match String.split_on_char ' ' (String.trim line) with
  | [ "fault"; kind; s ] -> (
    let step = field "step" s in
    match kind with
    | "abort" -> Abort { step }
    | "corrupt" -> Corrupt { step }
    | _ -> fail ())
  | [ "fault"; kind; s; x ] -> (
    let step = field "step" s in
    match kind with
    | "trunc" -> Truncate { step; keep = field "keep" x }
    | "slow" -> Slow { step; chunk = field "chunk" x }
    | "fuel" -> Fuel { step; fuel = field "fuel" x }
    | _ -> fail ())
  | _ -> fail ()

let parse_trace text =
  String.split_on_char '\n' text
  |> List.filter (fun l ->
         let l = String.trim l in
         String.length l > 0 && not (String.length l >= 1 && l.[0] = '#'))
  |> List.map parse_event
