(** Minimal srserved socket client with bounded retry/backoff.

    Used by the service benchmark, the socket determinism tests and the
    serve-chaos harness. Line-oriented: {!round_trip} writes the given
    request lines plus the blank-line flush marker and reads exactly
    one response line per request line. *)

type t

(** [connect path] — retries [ECONNREFUSED]/[ENOENT] with exponential
    backoff (default 40 attempts from 25ms, capped at 500ms per wait),
    for racing a just-forked server to its [bind]. Other errors raise. *)
val connect : ?attempts:int -> ?backoff_s:float -> string -> t

val close : t -> unit

(** The raw descriptor — for harnesses that want to write torn bytes or
    go quiet mid-line on purpose. *)
val fd : t -> Unix.file_descr

(** [send t lines] — write the lines and the blank flush marker. *)
val send : t -> string list -> unit

(** [recv t n] — read exactly [n] response lines.
    @raise End_of_file if the server closes first. *)
val recv : t -> int -> string list

val round_trip : t -> string list -> string list

(** [rpc t line] — one request with bounded retry: a plain [overloaded]
    (no [retry-after]) is retried with exponential backoff up to
    [retries] times; an [overloaded] carrying [retry-after] (a draining
    server) or any other response is returned as-is. *)
val rpc : ?retries:int -> ?backoff_s:float -> t -> string -> string
