(** Content-addressed compile cache with LRU eviction.

    Keys are full request-relevant strings (source text plus the
    compile-affecting options); entries are addressed by the FNV-1a
    digest of the key but verified against the stored key on every hit,
    so a digest collision degrades to a miss instead of serving the
    wrong artifact.

    The cache is deliberately sequential: the server resolves every
    request's artifact through it on the coordinating domain (worker
    domains only ever receive already-resolved artifacts), which is what
    makes the hit/miss/eviction counters — exposed in every response —
    deterministic regardless of [SPECRECON_DOMAINS]. *)

type 'a t

(** [create ~capacity] — [capacity = 0] disables storage entirely (every
    lookup is a miss and nothing is retained): the cold-cache
    configuration the service benchmark compares against. *)
val create : capacity:int -> 'a t

(** 64-bit FNV-1a of a key string, as a non-negative OCaml int. *)
val digest : string -> int

(** [find_or_add t ~key build] returns the cached artifact for [key], or
    calls [build ()], stores the result (evicting the least recently
    used entry when full) and returns it. If [build] raises, nothing is
    stored and the miss still counts — failures are recomputed, never
    cached. *)
val find_or_add : 'a t -> key:string -> (unit -> 'a) -> Protocol.cache_status * 'a

(** [mem t ~key] — residency probe with no counter or recency effect
    (the server uses it to decide which keys to precompile in
    parallel). *)
val mem : 'a t -> key:string -> bool

val hits : 'a t -> int

val misses : 'a t -> int

val evictions : 'a t -> int

(** Entries currently resident. *)
val length : 'a t -> int
