(* Content-addressed LRU cache keyed by FNV-1a digests of full key
   strings. Capacities are small (hundreds), so eviction does an O(n)
   scan for the stalest entry instead of maintaining a heap — simpler,
   and never on the hit path. *)

type 'a entry = { key : string; value : 'a; mutable last_use : int }

type 'a t = {
  capacity : int;
  table : (int, 'a entry) Hashtbl.t;
  mutable clock : int; (* bumps on every hit/insert; orders recency *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Cache.create: negative capacity";
  { capacity; table = Hashtbl.create (max capacity 1); clock = 0; hits = 0; misses = 0;
    evictions = 0 }

(* FNV-1a, 64-bit constants, folded into OCaml's 63-bit int. The sign
   bit is cleared so digests print/compare as non-negative ints, same
   convention as Simt.Memsys.digest. *)
let digest s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  Int64.to_int !h land max_int

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let evict_stalest t =
  let stalest =
    Hashtbl.fold
      (fun h e acc ->
        match acc with
        | Some (_, stale) when stale.last_use <= e.last_use -> acc
        | _ -> Some (h, e))
      t.table None
  in
  match stalest with
  | None -> ()
  | Some (h, _) ->
    Hashtbl.remove t.table h;
    t.evictions <- t.evictions + 1

let find_or_add t ~key build =
  let h = digest key in
  match Hashtbl.find_opt t.table h with
  | Some e when String.equal e.key key ->
    t.hits <- t.hits + 1;
    e.last_use <- tick t;
    (Protocol.Hit, e.value)
  | Some _ | None ->
    (* A digest collision lands here too: the colliding entry stays put
       and this key recomputes every time — correct, just slower. *)
    t.misses <- t.misses + 1;
    let value = build () in
    if t.capacity > 0 then begin
      if Hashtbl.length t.table >= t.capacity && not (Hashtbl.mem t.table h) then
        evict_stalest t;
      Hashtbl.replace t.table h { key; value; last_use = tick t }
    end;
    (Protocol.Miss, value)

let mem t ~key =
  match Hashtbl.find_opt t.table (digest key) with
  | Some e -> String.equal e.key key
  | None -> false

let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let length t = Hashtbl.length t.table
