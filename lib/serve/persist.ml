(* Crash-safe persistent artifact store.

   One entry per file, content-addressed by the FNV-1a digest of the
   key ([<16-hex-digest>.art]). The layout is a self-verifying
   envelope:

     srpersist1 <payload-digest-hex> <key-length>\n
     <key bytes><marshalled payload>

   Writes go to a [.tmp] sibling first and land with [Sys.rename], so a
   crash (or kill -9) mid-store leaves either the old entry or no entry
   — never a half-written one under the live name. Loads re-verify
   everything the envelope claims: magic, key (a digest collision or a
   swapped file degrades to a miss, exactly like {!Cache}), and the
   payload digest (a truncated or bit-flipped artifact is detected
   before [Marshal] ever sees it). Any failure on an {e existing} file
   counts as [corrupt]; a missing file is a plain miss and counts
   nothing. The store never throws for storage reasons: a read-only or
   full disk silently degrades the server to compile-every-time. *)

type t = {
  dir : string;
  mutable hits : int;
  mutable corrupt : int;
}

let magic = "srpersist1"

let create ~dir =
  (try if not (Sys.file_exists dir) then Sys.mkdir dir 0o755 with Sys_error _ -> ());
  { dir; hits = 0; corrupt = 0 }

let path_of_key t key = Filename.concat t.dir (Printf.sprintf "%016x.art" (Cache.digest key))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Parse "srpersist1 <digest> <keylen>\n<key><payload>"; any structural
   problem raises Exit, which the caller counts as corruption. *)
let decode_envelope raw =
  let nl = match String.index_opt raw '\n' with Some i -> i | None -> raise Exit in
  let header = String.sub raw 0 nl in
  match String.split_on_char ' ' header with
  | [ m; digest_hex; keylen_s ] when String.equal m magic ->
    let digest =
      match int_of_string_opt ("0x" ^ digest_hex) with Some d -> d | None -> raise Exit
    in
    let keylen = match int_of_string_opt keylen_s with Some k -> k | None -> raise Exit in
    let body_start = nl + 1 in
    if keylen < 0 || body_start + keylen > String.length raw then raise Exit;
    let key = String.sub raw body_start keylen in
    let payload =
      String.sub raw (body_start + keylen) (String.length raw - body_start - keylen)
    in
    (digest, key, payload)
  | _ -> raise Exit

let load t ~key =
  let path = path_of_key t key in
  if not (Sys.file_exists path) then None
  else
    match
      let raw = read_file path in
      let digest, stored_key, payload = decode_envelope raw in
      if not (String.equal stored_key key) then raise Exit;
      if Cache.digest payload <> digest then raise Exit;
      (Marshal.from_string payload 0 : 'a)
    with
    | value ->
      t.hits <- t.hits + 1;
      Some value
    | exception _ ->
      (* Existing but unreadable/corrupt/foreign: degrade to a miss. *)
      t.corrupt <- t.corrupt + 1;
      None

let store t ~key value =
  match
    let payload = Marshal.to_string value [] in
    let path = path_of_key t key in
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc
          (Printf.sprintf "%s %016x %d\n" magic (Cache.digest payload) (String.length key));
        output_string oc key;
        output_string oc payload);
    Sys.rename tmp path
  with
  | () -> ()
  | exception _ -> () (* storage trouble degrades to compile-every-time *)

let hits t = t.hits
let corrupt t = t.corrupt
let dir t = t.dir
