(* Wire protocol for srserved. One line per request/response; fields are
   percent-encoded key=value pairs. Printing is canonical (fixed field
   order, optional fields omitted when absent) so a response stream is
   byte-identical whenever the payloads are — the property the serve
   determinism tests and the serve-mismatch oracle compare on. *)

(* ---- percent encoding ---- *)

let must_escape c = c = '%' || c = ' ' || c = '\t' || c = '\r' || c = '\n'

let encode s =
  if String.for_all (fun c -> not (must_escape c)) s then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        if must_escape c then Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
        else Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end

let decode s =
  match String.index_opt s '%' with
  | None -> s
  | Some _ ->
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      (if s.[!i] <> '%' then Buffer.add_char buf s.[!i]
       else begin
         if !i + 2 >= n then failwith "truncated %-escape";
         let hex = String.sub s (!i + 1) 2 in
         match int_of_string_opt ("0x" ^ hex) with
         | Some code -> Buffer.add_char buf (Char.chr code); i := !i + 2
         | None -> failwith (Printf.sprintf "bad %%-escape %%%s" hex)
       end);
      incr i
    done;
    Buffer.contents buf

(* ---- requests ---- *)

type request = {
  id : int;
  mode : string;
  policy : string;
  warps : int;
  warp_size : int;
  seed : int;
  coarsen : int option;
  threshold : int option;
  entry : string option;
  args : Ir.Types.value list;
  init : string;
  deadline : int option;
  source : string;
}

let modes = [ "baseline"; "none"; "specrecon"; "specrecon-static"; "auto" ]
let policies = [ "most-threads"; "lowest-pc"; "round-robin" ]
let inits = [ "none"; "data" ]

let make_request ~id ?(mode = "specrecon") ?(policy = "most-threads") ?(warps = 2)
    ?(warp_size = 32) ?(seed = 11) ?coarsen ?threshold ?entry ?(args = []) ?(init = "none")
    ?deadline ~source () =
  { id; mode; policy; warps; warp_size; seed; coarsen; threshold; entry; args; init; deadline;
    source }

type command = Run of request | Stats of int | Quit | Shutdown

(* Kernel arguments print tagged so the reader never guesses: ints as
   decimal, floats as C99 hex floats (%h), which are bit-exact and —
   always carrying a 'p' exponent — can never parse back as an int. *)
let print_value = function
  | Ir.Types.I i -> string_of_int i
  | Ir.Types.F f -> Printf.sprintf "%h" f

let parse_value s =
  match int_of_string_opt s with
  | Some i -> Ok (Ir.Types.I i)
  | None -> (
    match float_of_string_opt s with
    | Some f -> Ok (Ir.Types.F f)
    | None -> Error (Printf.sprintf "bad kernel argument %S (expected int or float)" s))

let print_args args = String.concat "," (List.map print_value args)

let parse_args s =
  if s = "" then Ok []
  else
    List.fold_right
      (fun part acc ->
        match (acc, parse_value part) with
        | Error _, _ -> acc
        | _, Error e -> Error e
        | Ok vs, Ok v -> Ok (v :: vs))
      (String.split_on_char ',' s)
      (Ok [])

let print_command = function
  | Quit -> "quit"
  | Shutdown -> "shutdown"
  | Stats id -> Printf.sprintf "stats id=%d" id
  | Run r ->
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (Printf.sprintf "run id=%d mode=%s policy=%s warps=%d warp-size=%d seed=%d" r.id r.mode
         r.policy r.warps r.warp_size r.seed);
    Option.iter (fun k -> Buffer.add_string buf (Printf.sprintf " coarsen=%d" k)) r.coarsen;
    Option.iter (fun k -> Buffer.add_string buf (Printf.sprintf " threshold=%d" k)) r.threshold;
    Option.iter (fun e -> Buffer.add_string buf (" entry=" ^ encode e)) r.entry;
    if r.args <> [] then Buffer.add_string buf (" args=" ^ print_args r.args);
    Buffer.add_string buf (" init=" ^ r.init);
    Option.iter (fun d -> Buffer.add_string buf (Printf.sprintf " deadline=%d" d)) r.deadline;
    Buffer.add_string buf (" source=" ^ encode r.source);
    Buffer.contents buf

(* ---- field scaffolding shared by command and response parsing ---- *)

exception Bad of string

let fields_of_words words =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun w ->
      if w <> "" then
        match String.index_opt w '=' with
        | None -> raise (Bad (Printf.sprintf "field %S is not key=value" w))
        | Some eq ->
          let key = String.sub w 0 eq in
          let value = String.sub w (eq + 1) (String.length w - eq - 1) in
          if Hashtbl.mem tbl key then raise (Bad (Printf.sprintf "duplicate field %S" key));
          Hashtbl.replace tbl key value)
    words;
  tbl

let take tbl key =
  match Hashtbl.find_opt tbl key with
  | Some v -> Hashtbl.remove tbl key; Some v
  | None -> None

let require tbl key =
  match take tbl key with
  | Some v -> v
  | None -> raise (Bad (Printf.sprintf "missing required field %S" key))

let int_field key v =
  match int_of_string_opt v with
  | Some i -> i
  | None -> raise (Bad (Printf.sprintf "field %s=%S is not an integer" key v))

let enum_field key allowed v =
  if List.mem v allowed then v
  else
    raise
      (Bad (Printf.sprintf "field %s=%S (expected one of %s)" key v (String.concat "|" allowed)))

let decode_field key v =
  try decode v with Failure msg -> raise (Bad (Printf.sprintf "field %s: %s" key msg))

let no_leftovers tbl =
  Hashtbl.iter (fun key _ -> raise (Bad (Printf.sprintf "unknown field %S" key))) tbl

let with_bad f = match f () with v -> Ok v | exception Bad msg -> Error msg

(* ---- command parsing ---- *)

let parse_run words =
  let tbl = fields_of_words words in
  let id = int_field "id" (require tbl "id") in
  let mode =
    match take tbl "mode" with Some v -> enum_field "mode" modes v | None -> "specrecon"
  in
  let policy =
    match take tbl "policy" with
    | Some v -> enum_field "policy" policies v
    | None -> "most-threads"
  in
  let warps = match take tbl "warps" with Some v -> int_field "warps" v | None -> 2 in
  let warp_size =
    match take tbl "warp-size" with Some v -> int_field "warp-size" v | None -> 32
  in
  let seed = match take tbl "seed" with Some v -> int_field "seed" v | None -> 11 in
  let coarsen = Option.map (int_field "coarsen") (take tbl "coarsen") in
  let threshold = Option.map (int_field "threshold") (take tbl "threshold") in
  let entry = Option.map (decode_field "entry") (take tbl "entry") in
  let args =
    match take tbl "args" with
    | None -> []
    | Some v -> (
      match parse_args (decode_field "args" v) with Ok vs -> vs | Error msg -> raise (Bad msg))
  in
  let init = match take tbl "init" with Some v -> enum_field "init" inits v | None -> "none" in
  let deadline =
    match Option.map (int_field "deadline") (take tbl "deadline") with
    | Some d when d < 0 -> raise (Bad (Printf.sprintf "field deadline=%d must be >= 0" d))
    | d -> d
  in
  let source = decode_field "source" (require tbl "source") in
  no_leftovers tbl;
  Run
    { id; mode; policy; warps; warp_size; seed; coarsen; threshold; entry; args; init; deadline;
      source }

let parse_command line =
  with_bad (fun () ->
      match String.split_on_char ' ' (String.trim line) with
      | [] | [ "" ] -> raise (Bad "empty request")
      | "quit" :: rest ->
        no_leftovers (fields_of_words rest);
        Quit
      | "shutdown" :: rest ->
        no_leftovers (fields_of_words rest);
        Shutdown
      | "stats" :: rest ->
        let tbl = fields_of_words rest in
        let id = match take tbl "id" with Some v -> int_field "id" v | None -> 0 in
        no_leftovers tbl;
        Stats id
      | "run" :: rest -> parse_run rest
      | head :: _ -> raise (Bad (Printf.sprintf "unknown request head %S" head)))

(* ---- responses ---- *)

type cache_status = Hit | Miss

type reply = {
  rid : int;
  cache : cache_status;
  hits : int;
  misses : int;
  evictions : int;
  cycles : int;
  issues : int;
  active : int;
  finished : int;
  digest : int;
}

type response =
  | Ok_run of reply
  | Error of { rid : int; code : int; kind : string; msg : string }
  | Overloaded of { rid : int; retry_after : int option }
  | Deadline of { rid : int; fuel : int }
  | Stats_reply of {
      rid : int;
      hits : int;
      misses : int;
      evictions : int;
      entries : int;
      served : int;
      phits : int;
      pcorrupt : int;
    }
  | Bye

let print_response = function
  | Ok_run r ->
    Printf.sprintf
      "ok id=%d cache=%s hits=%d misses=%d evictions=%d cycles=%d issues=%d active=%d \
       finished=%d digest=%016x"
      r.rid
      (match r.cache with Hit -> "hit" | Miss -> "miss")
      r.hits r.misses r.evictions r.cycles r.issues r.active r.finished r.digest
  | Error { rid; code; kind; msg } ->
    Printf.sprintf "error id=%d code=%d kind=%s msg=%s" rid code kind (encode msg)
  | Overloaded { rid; retry_after = None } -> Printf.sprintf "overloaded id=%d" rid
  | Overloaded { rid; retry_after = Some s } ->
    Printf.sprintf "overloaded id=%d retry-after=%d" rid s
  | Deadline { rid; fuel } -> Printf.sprintf "deadline id=%d fuel=%d" rid fuel
  | Stats_reply { rid; hits; misses; evictions; entries; served; phits; pcorrupt } ->
    Printf.sprintf
      "stats id=%d hits=%d misses=%d evictions=%d entries=%d served=%d phits=%d pcorrupt=%d"
      rid hits misses evictions entries served phits pcorrupt
  | Bye -> "bye"

let parse_response line =
  with_bad (fun () ->
      match String.split_on_char ' ' (String.trim line) with
      | [] | [ "" ] -> raise (Bad "empty response")
      | "bye" :: rest ->
        no_leftovers (fields_of_words rest);
        Bye
      | "overloaded" :: rest ->
        let tbl = fields_of_words rest in
        let rid = int_field "id" (require tbl "id") in
        let retry_after = Option.map (int_field "retry-after") (take tbl "retry-after") in
        no_leftovers tbl;
        Overloaded { rid; retry_after }
      | "deadline" :: rest ->
        let tbl = fields_of_words rest in
        let rid = int_field "id" (require tbl "id") in
        let fuel = int_field "fuel" (require tbl "fuel") in
        no_leftovers tbl;
        Deadline { rid; fuel }
      | "error" :: rest ->
        let tbl = fields_of_words rest in
        let rid = int_field "id" (require tbl "id") in
        let code = int_field "code" (require tbl "code") in
        let kind = require tbl "kind" in
        let msg = decode_field "msg" (require tbl "msg") in
        no_leftovers tbl;
        Error { rid; code; kind; msg }
      | "stats" :: rest ->
        let tbl = fields_of_words rest in
        let rid = int_field "id" (require tbl "id") in
        let hits = int_field "hits" (require tbl "hits") in
        let misses = int_field "misses" (require tbl "misses") in
        let evictions = int_field "evictions" (require tbl "evictions") in
        let entries = int_field "entries" (require tbl "entries") in
        let served = int_field "served" (require tbl "served") in
        let phits = int_field "phits" (require tbl "phits") in
        let pcorrupt = int_field "pcorrupt" (require tbl "pcorrupt") in
        no_leftovers tbl;
        Stats_reply { rid; hits; misses; evictions; entries; served; phits; pcorrupt }
      | "ok" :: rest ->
        let tbl = fields_of_words rest in
        let rid = int_field "id" (require tbl "id") in
        let cache =
          match require tbl "cache" with
          | "hit" -> Hit
          | "miss" -> Miss
          | other -> raise (Bad (Printf.sprintf "field cache=%S (expected hit|miss)" other))
        in
        let hits = int_field "hits" (require tbl "hits") in
        let misses = int_field "misses" (require tbl "misses") in
        let evictions = int_field "evictions" (require tbl "evictions") in
        let cycles = int_field "cycles" (require tbl "cycles") in
        let issues = int_field "issues" (require tbl "issues") in
        let active = int_field "active" (require tbl "active") in
        let finished = int_field "finished" (require tbl "finished") in
        let digest =
          let v = require tbl "digest" in
          match int_of_string_opt ("0x" ^ v) with
          | Some d -> d
          | None -> raise (Bad (Printf.sprintf "field digest=%S is not hex" v))
        in
        no_leftovers tbl;
        Ok_run { rid; cache; hits; misses; evictions; cycles; issues; active; finished; digest }
      | head :: _ -> raise (Bad (Printf.sprintf "unknown response head %S" head)))
