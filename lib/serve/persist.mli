(** Crash-safe persistent artifact store ([srserved --persist DIR]).

    A write-through, content-addressed side store for compile artifacts:
    one file per entry named by the FNV-1a digest of the key, written
    via temp-file-plus-atomic-rename so a crash mid-store can never
    leave a torn entry under the live name. Every load re-verifies the
    envelope — magic, stored key, payload digest — before unmarshalling,
    so corruption (truncation, bit flips, a foreign file dropped in the
    directory) silently degrades to a cache miss rather than poisoning a
    response. [hits]/[corrupt] counters surface in [stats] replies only,
    never in [ok] run responses: a restarted server replaying the same
    trace must stay byte-identical on the run stream, warm or cold.

    Values must be marshal-safe (plain data, no closures) —
    {!Core.Compile.compiled} qualifies. *)

type t

(** [create ~dir] — makes [dir] if missing; an unusable directory
    degrades every load to a miss and every store to a no-op. *)
val create : dir:string -> t

(** [load t ~key] — the stored artifact, or [None]. A missing entry is a
    plain miss; an existing-but-invalid entry additionally bumps
    {!corrupt}. *)
val load : t -> key:string -> 'a option

(** [store t ~key value] — atomically persist [value] under [key]
    (last write wins). Storage failures are swallowed. *)
val store : t -> key:string -> 'a -> unit

(** Loads satisfied from disk. *)
val hits : t -> int

(** Existing entries rejected by verification (each degraded to a
    miss). *)
val corrupt : t -> int

val dir : t -> string
