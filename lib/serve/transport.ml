(* Unix-domain-socket front end for the srserved engine.

   One single-threaded select loop multiplexes any number of client
   connections over one shared {!Server.t}: per-connection input
   buffers accumulate request lines under exactly the stdio batching
   rules (blank line flushes, [max_batch] caps a segment, a non-run
   line flushes then answers in place), and each batch runs to
   completion on the coordinating thread before the next connection's
   bytes are looked at — so every connection sees the same
   byte-identical response stream it would have gotten over stdio,
   whatever the interleaving.

   Hostility is contained per connection:
   - a peer that goes quiet mid-line holds only its own buffer; after
     [read_timeout] seconds without the newline it gets a [timeout]
     error response and is closed;
   - a line longer than [max_line] gets an [overflow] error and a
     close, before the bytes can grow unboundedly;
   - a write failure (peer died, SIGPIPE suppressed) closes that
     connection only; nobody else's stream is disturbed.

   [quit] ends one connection; [shutdown] (or {!Server.drain}, e.g.
   from a SIGTERM handler) drains the whole service: in-flight batches
   complete and answer, every other connection's pending work is
   answered by the draining server ([overloaded retry-after=N]),
   everyone gets [bye], the socket file is unlinked, and [serve]
   returns so the caller can exit 0. *)

module P = Protocol

type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  mutable pending : string list; (* reversed run lines awaiting a flush *)
  mutable partial_since : float option; (* unterminated line age, for timeouts *)
  mutable alive : bool;
}

let write_all fd s =
  let n = String.length s in
  let sent = ref 0 in
  while !sent < n do
    match Unix.write_substring fd s !sent (n - !sent) with
    | written -> sent := !sent + written
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* All responses for one batch go out in a single write; a failure marks
   the connection dead without touching anyone else. *)
let respond server conn lines =
  let out = Server.submit_lines server lines in
  try write_all conn.fd (String.concat "" (List.map (fun l -> l ^ "\n") out))
  with Unix.Unix_error _ -> conn.alive <- false

let send_raw conn line =
  try write_all conn.fd (line ^ "\n") with Unix.Unix_error _ -> conn.alive <- false

let flush_pending server conn =
  if conn.pending <> [] then begin
    let lines = List.rev conn.pending in
    conn.pending <- [];
    respond server conn lines
  end

let is_run_line line =
  let line = String.trim line in
  String.length line >= 4 && String.sub line 0 4 = "run "

let handle_line server ~max_batch conn line =
  if String.trim line = "" then flush_pending server conn
  else if is_run_line line then begin
    conn.pending <- line :: conn.pending;
    if List.length conn.pending >= max_batch then flush_pending server conn
  end
  else begin
    (* stats / quit / shutdown / malformed: sequential markers — the
       batch before them answers first. *)
    flush_pending server conn;
    respond server conn [ line ];
    match P.parse_command line with
    | Ok P.Quit | Ok P.Shutdown ->
      (* Either way this connection's stream ends with its [bye]; for
         shutdown the server is now draining and the loop winds down. *)
      conn.alive <- false
    | _ -> ()
  end

(* Split complete lines out of the buffer; whatever remains is a partial
   whose age starts the read-timeout clock. *)
let consume server ~max_batch conn =
  let continue = ref true in
  while !continue && conn.alive do
    let data = Buffer.contents conn.buf in
    match String.index_opt data '\n' with
    | None ->
      if String.length data = 0 then conn.partial_since <- None
      else if conn.partial_since = None then conn.partial_since <- Some (Unix.gettimeofday ());
      continue := false
    | Some i ->
      let line = String.sub data 0 i in
      Buffer.clear conn.buf;
      Buffer.add_substring conn.buf data (i + 1) (String.length data - i - 1);
      conn.partial_since <- None;
      handle_line server ~max_batch conn line
  done

let reject conn kind msg =
  send_raw conn
    (P.print_response
       (P.Error { rid = -1; code = Core.Cli.exit_code (Core.Cli.Usage msg); kind; msg }));
  conn.alive <- false

let serve ?(max_batch = 64) ?(read_timeout = 30.0) ?(max_line = 1_000_000) server ~socket_path
    () =
  if max_batch < 1 then invalid_arg "Transport.serve: max_batch must be >= 1";
  if read_timeout <= 0.0 then invalid_arg "Transport.serve: read_timeout must be positive";
  if max_line < 1 then invalid_arg "Transport.serve: max_line must be >= 1";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket_path);
  Unix.listen listen_fd 16;
  let conns = ref [] in
  let chunk = Bytes.create 65536 in
  let finish () =
    (* Drain: answer everything already buffered (the draining server
       bounces it with the back-off hint), say goodbye, tear down. *)
    List.iter
      (fun c ->
        if c.alive then begin
          flush_pending server c;
          if c.alive then send_raw c (P.print_response P.Bye)
        end;
        try Unix.close c.fd with Unix.Unix_error _ -> ())
      !conns;
    conns := [];
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    try Unix.unlink socket_path with Unix.Unix_error _ -> ()
  in
  let read_conn c =
    match Unix.read c.fd chunk 0 (Bytes.length chunk) with
    | 0 ->
      (* EOF flushes like the stdio loop's: buffered work still answers. *)
      consume server ~max_batch c;
      flush_pending server c;
      c.alive <- false
    | n ->
      Buffer.add_subbytes c.buf chunk 0 n;
      consume server ~max_batch c;
      if c.alive && Buffer.length c.buf > max_line then
        reject c "overflow" (Printf.sprintf "request line exceeds %d bytes" max_line)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> c.alive <- false
  in
  let rec loop () =
    if Server.draining server then finish ()
    else begin
      let live = List.filter (fun c -> c.alive) !conns in
      (* Wake in time for the earliest partial-line deadline; otherwise
         tick coarsely so a signal-driven drain is noticed promptly. *)
      let now = Unix.gettimeofday () in
      let timeout =
        List.fold_left
          (fun acc c ->
            match c.partial_since with
            | Some t0 -> Float.min acc (Float.max 0.0 (t0 +. read_timeout -. now))
            | None -> acc)
          0.5 live
      in
      (match Unix.select (listen_fd :: List.map (fun c -> c.fd) live) [] [] timeout with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | ready, _, _ ->
        if List.memq listen_fd ready then begin
          match Unix.accept listen_fd with
          | fd, _ ->
            conns :=
              { fd; buf = Buffer.create 256; pending = []; partial_since = None; alive = true }
              :: !conns
          | exception Unix.Unix_error _ -> ()
        end;
        List.iter (fun c -> if c.alive && List.memq c.fd ready then read_conn c) live);
      (* Enforce read timeouts on connections still holding a torn line. *)
      let now = Unix.gettimeofday () in
      List.iter
        (fun c ->
          match c.partial_since with
          | Some t0 when c.alive && now -. t0 >= read_timeout ->
            reject c "timeout"
              (Printf.sprintf "no newline within %.3gs of a partial line" read_timeout)
          | _ -> ())
        !conns;
      conns :=
        List.filter
          (fun c ->
            if c.alive then true
            else begin
              (try Unix.close c.fd with Unix.Unix_error _ -> ());
              false
            end)
          !conns;
      loop ()
    end
  in
  loop ()
