type outcome =
  | Ok_exit
  | Findings
  | Usage of string
  | Io_error of string
  | Syntax_error of string
  | Compile_error of string
  | Deadlock of string
  | Runtime_failure of string
  | Baseline_mismatch of string
  | Deadline_exceeded of string

exception Error of outcome

let exit_code = function
  | Ok_exit -> 0
  | Findings -> 1
  | Usage _ -> 2
  | Io_error _ -> 3
  | Syntax_error _ -> 4
  | Compile_error _ -> 5
  | Deadlock _ -> 6
  | Runtime_failure _ -> 7
  | Baseline_mismatch _ -> 8
  | Deadline_exceeded _ -> 9

(* One line, except deadlock: its waits-for-cycle report is the whole
   point of the diagnostic, so it keeps its lines. *)
let describe = function
  | Ok_exit -> "ok"
  | Findings -> "findings reported"
  | Usage msg -> "usage error: " ^ msg
  | Io_error msg -> "i/o error: " ^ msg
  | Syntax_error msg -> "syntax error: " ^ msg
  | Compile_error msg -> "compile error: " ^ msg
  | Deadlock msg -> "deadlock: " ^ msg
  | Runtime_failure msg -> "runtime error: " ^ msg
  | Baseline_mismatch msg -> "baseline mismatch: " ^ msg
  | Deadline_exceeded msg -> "deadline exceeded: " ^ msg

let one_line msg =
  match String.index_opt msg '\n' with
  | None -> msg
  | Some i -> String.sub msg 0 i ^ " [...]"

let classify = function
  | Error o -> Some o
  | Sys_error msg -> Some (Io_error msg)
  | Front.Lexer.Lex_error (pos, msg) ->
    Some (Syntax_error (Format.asprintf "%a: %s" Front.Ast.pp_pos pos msg))
  | Front.Parser.Parse_error (pos, msg) ->
    Some (Syntax_error (Format.asprintf "%a: %s" Front.Ast.pp_pos pos msg))
  | Front.Lower.Lower_error (pos, msg) ->
    Some (Compile_error (Format.asprintf "%a: %s" Front.Ast.pp_pos pos msg))
  | Failure msg -> Some (Compile_error (one_line msg))
  | Invalid_argument msg -> Some (Usage msg)
  | Simt.Interp.Deadlock msg -> Some (Deadlock msg)
  | Simt.Interp.Runtime_error msg -> Some (Runtime_failure msg)
  | Simt.Interp.Runaway msg -> Some (Runtime_failure ("runaway: " ^ msg))
  | Simt.Interp.Deadline_exceeded msg -> Some (Deadline_exceeded msg)
  | _ -> None

let handle f =
  try f () with
  | e -> (
    match classify e with
    | Some o ->
      prerr_endline (describe o);
      exit_code o
    | None -> raise e)
