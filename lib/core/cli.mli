(** Structured failure handling for the command-line tools.

    Every tool failure mode has a distinct outcome with a stable exit
    code and a one-line diagnostic, so scripts (and the chaos-smoke
    gates) can tell a syntax error from a deadlock from an I/O problem
    without scraping messages:

    {v
    0  success
    1  findings / violations reported (srcc --lint, srfuzz)
    2  usage error (bad flags, bad kernel arguments)
    3  i/o error (unreadable input, unwritable trace file)
    4  lex / parse error
    5  compile error (lowering, srlint hard failure)
    6  simulator deadlock (conflicting barriers, no --yield)
    7  simulator runtime error or runaway
    8  faulted/yield run disagrees with the unfaulted PDOM baseline
    9  request deadline exceeded (the configured fuel ran out)
    v} *)

type outcome =
  | Ok_exit
  | Findings
  | Usage of string
  | Io_error of string
  | Syntax_error of string
  | Compile_error of string
  | Deadlock of string
  | Runtime_failure of string
  | Baseline_mismatch of string
  | Deadline_exceeded of string

exception Error of outcome
(** Tools raise this for outcomes no exception carries naturally (e.g. a
    baseline digest mismatch); {!handle} maps it like any other. *)

val exit_code : outcome -> int

(** Human-readable diagnostic. One line for everything except
    {!Deadlock}, whose waits-for-cycle report keeps its lines. *)
val describe : outcome -> string

(** Map a raised exception to its outcome; [None] for unrecognized
    exceptions (which should crash loudly, they are tool bugs). *)
val classify : exn -> outcome option

(** [handle f] runs [f] (typically [Cmdliner.Cmd.eval ~catch:false]);
    on a recognized exception prints the diagnostic to stderr and
    returns the exit code, otherwise re-raises. *)
val handle : (unit -> int) -> int
