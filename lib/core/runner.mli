(** The execute stage behind every driver.

    {!launch} is the pure run stage: it takes an already-compiled
    artifact and a launch configuration and produces an outcome, with no
    I/O, no global state and no dependence on where the artifact came
    from — a fresh {!Compile.compile} and a compile-cache hit are
    indistinguishable here, which is the property the srserved
    differential tier leans on. {!run_spec} and {!run_source} are the
    one-shot conveniences composing compile + launch. *)

type outcome = {
  compiled : Compile.compiled;
  metrics : Simt.Metrics.t;
  profile : Analysis.Profile.t;
  memory : Simt.Memsys.t;
  check : (unit, string) result; (* the workload's output sanity check *)
}

(** SIMT efficiency of the run, in [0, 1]. *)
val efficiency : outcome -> float

(** Simulated cycles of the run. *)
val cycles : outcome -> int

(** [launch ?config ?init ?faults ?entry compiled ~args] executes a
    compiled program: [init] fills global memory before the launch
    (default: leave it zeroed), [entry] selects the kernel, [faults]
    injects chaos, [race] attaches the shadow-memory race logger
    (srrun [--race-check], the fuzz race oracles). [check] in the
    outcome is [Ok ()] — output checks belong to workload specs, not
    the run stage. *)
val launch :
  ?config:Simt.Config.t ->
  ?init:(Ir.Types.program -> Simt.Memsys.t -> unit) ->
  ?faults:Simt.Faults.t ->
  ?race:Simt.Race_log.t ->
  ?entry:string ->
  Compile.compiled ->
  args:Ir.Types.value list ->
  outcome

(** [run_spec ?config options spec] compiles [spec.source] under
    [options] (with [spec.coarsen] applied unless [options] already
    requests coarsening) and executes it on [config] adjusted by
    [spec.tweak_config]. *)
val run_spec :
  ?config:Simt.Config.t -> ?faults:Simt.Faults.t -> Compile.options -> Workloads.Spec.t -> outcome

(** [run_source ?config ?init options ~source ~args] for ad-hoc programs
    (no output check). [init] fills global memory before launch; by
    default memory is zero-initialised with integer zeros. [faults]
    injects chaos faults during execution; [entry] launches the named
    kernel instead of the program default. *)
val run_source :
  ?config:Simt.Config.t ->
  ?init:(Ir.Types.program -> Simt.Memsys.t -> unit) ->
  ?faults:Simt.Faults.t ->
  ?entry:string ->
  Compile.options ->
  source:string ->
  args:Ir.Types.value list ->
  outcome

(** [speedup ~baseline ~optimized] — baseline cycles / optimized cycles. *)
val speedup : baseline:outcome -> optimized:outcome -> float
