type outcome = {
  compiled : Compile.compiled;
  metrics : Simt.Metrics.t;
  profile : Analysis.Profile.t;
  memory : Simt.Memsys.t;
  check : (unit, string) result;
}

let efficiency o = Simt.Metrics.simt_efficiency o.metrics
let cycles o = o.metrics.Simt.Metrics.cycles

let run_spec ?(config = Simt.Config.default) ?faults options (spec : Workloads.Spec.t) =
  let config = spec.tweak_config config in
  let options =
    match options.Compile.coarsen with
    | Some _ -> options
    | None -> { options with Compile.coarsen = spec.coarsen }
  in
  let compiled = Compile.compile options ~source:spec.source in
  let result =
    Simt.Interp.run ?faults config compiled.decoded ~args:spec.args
      ~init_memory:(fun mem -> spec.init compiled.program mem)
  in
  {
    compiled;
    metrics = result.Simt.Interp.metrics;
    profile = result.Simt.Interp.profile;
    memory = result.Simt.Interp.memory;
    check = spec.check compiled.program result.Simt.Interp.memory;
  }

let run_source ?(config = Simt.Config.default) ?(init = fun _ _ -> ()) ?faults ?entry options
    ~source ~args =
  let compiled = Compile.compile options ~source in
  let result =
    Simt.Interp.run ?faults ?entry config compiled.decoded ~args
      ~init_memory:(fun mem -> init compiled.program mem)
  in
  {
    compiled;
    metrics = result.Simt.Interp.metrics;
    profile = result.Simt.Interp.profile;
    memory = result.Simt.Interp.memory;
    check = Ok ();
  }

let speedup ~baseline ~optimized =
  let b = float_of_int baseline.metrics.Simt.Metrics.cycles in
  let o = float_of_int optimized.metrics.Simt.Metrics.cycles in
  if o = 0.0 then 0.0 else b /. o
