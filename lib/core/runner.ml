type outcome = {
  compiled : Compile.compiled;
  metrics : Simt.Metrics.t;
  profile : Analysis.Profile.t;
  memory : Simt.Memsys.t;
  check : (unit, string) result;
}

let efficiency o = Simt.Metrics.simt_efficiency o.metrics
let cycles o = o.metrics.Simt.Metrics.cycles

(* The pure run stage: artifact in, outcome out. Everything the launch
   depends on is an argument, so a cached artifact and a fresh compile
   behave identically here (the srserved contract). *)
let launch ?(config = Simt.Config.default) ?(init = fun _ _ -> ()) ?faults ?race ?entry
    (compiled : Compile.compiled) ~args =
  let result =
    Simt.Interp.run ?faults ?race ?entry config compiled.Compile.decoded ~args
      ~init_memory:(fun mem -> init compiled.Compile.program mem)
  in
  {
    compiled;
    metrics = result.Simt.Interp.metrics;
    profile = result.Simt.Interp.profile;
    memory = result.Simt.Interp.memory;
    check = Ok ();
  }

let run_spec ?(config = Simt.Config.default) ?faults options (spec : Workloads.Spec.t) =
  let config = spec.tweak_config config in
  let options =
    match options.Compile.coarsen with
    | Some _ -> options
    | None -> { options with Compile.coarsen = spec.coarsen }
  in
  let compiled = Compile.compile options ~source:spec.source in
  let outcome = launch ~config ?faults ~init:spec.init compiled ~args:spec.args in
  { outcome with check = spec.check compiled.Compile.program outcome.memory }

let run_source ?config ?init ?faults ?entry options ~source ~args =
  launch ?config ?init ?faults ?entry (Compile.compile options ~source) ~args

let speedup ~baseline ~optimized =
  let b = float_of_int baseline.metrics.Simt.Metrics.cycles in
  let o = float_of_int optimized.metrics.Simt.Metrics.cycles in
  if o = 0.0 then 0.0 else b /. o
