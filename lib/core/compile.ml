module T = Ir.Types

type mode =
  | No_sync
  | Baseline
  | Speculative of Passes.Deconflict.strategy
  | Automatic of {
      params : Passes.Auto_detect.params;
      strategy : Passes.Deconflict.strategy;
      profile : Analysis.Profile.t option;
    }

type threshold_override = Keep | Set of int | Unset

type repair_mode = No_repair | Repair of { dry_run : bool; max_edits : int }

type options = {
  mode : mode;
  coarsen : int option;
  threshold : threshold_override;
  cleanup : bool;
  deconflict : bool;
  lint : bool;
  race : bool;
  repair : repair_mode;
}

let baseline =
  { mode = Baseline; coarsen = None; threshold = Keep; cleanup = true; deconflict = true;
    lint = true; race = true; repair = No_repair }

let speculative =
  {
    mode = Speculative Passes.Deconflict.Dynamic;
    coarsen = None;
    threshold = Keep;
    cleanup = true;
    deconflict = true;
    lint = true;
    race = true;
    repair = No_repair;
  }

let automatic =
  {
    mode =
      Automatic
        {
          params = Passes.Auto_detect.default_params;
          strategy = Passes.Deconflict.Dynamic;
          profile = None;
        };
    coarsen = None;
    threshold = Keep;
    cleanup = true;
    deconflict = true;
    lint = true;
    race = true;
    repair = No_repair;
  }

type repair_report = {
  pre_findings : Analysis.Barrier_safety.finding list;
  outcome : Analysis.Barrier_repair.outcome;
  before : Ir.Linear.t;
}

type compiled = {
  options : options;
  program : T.program;
  linear : Ir.Linear.t;
  decoded : Ir.Decoded.t;
  pdom_barriers : (string * int * T.barrier) list;
  applied : Passes.Specrecon.applied list;
  interproc_applied : Passes.Interproc.applied list;
  deconflict_report : Passes.Deconflict.report option;
  candidates : Passes.Auto_detect.candidate list;
  lint_findings : Analysis.Barrier_safety.finding list;
  race_findings : Analysis.Race_safety.finding list;
  repair_report : repair_report option;
}

(* Provenance for srlint's dominance rule: every speculative barrier the
   passes placed, with the block holding its join (BSSY). *)
let speculative_meta ~applied ~interproc =
  List.map
    (fun (a : Passes.Specrecon.applied) ->
      {
        Analysis.Barrier_safety.sfunc = a.in_func;
        slot = a.user_barrier;
        join_block = a.region_start;
      })
    applied
  @ List.map
      (fun (a : Passes.Interproc.applied) ->
        { Analysis.Barrier_safety.sfunc = a.in_func; slot = a.barrier; join_block = a.region_start })
      interproc

let override_thresholds threshold (p : T.program) =
  match threshold with
  | Keep -> ()
  | Set _ | Unset ->
    Hashtbl.iter
      (fun _ (f : T.func) ->
        f.hints <-
          List.map
            (fun (h : T.predict_hint) ->
              match threshold with
              | Set k -> { h with threshold = Some k }
              | Unset -> { h with threshold = None }
              | Keep -> h)
            f.hints)
      p.funcs

let strip_hints (p : T.program) =
  Hashtbl.iter (fun _ (f : T.func) -> f.hints <- []) p.funcs

(* Barrier priority for deconfliction: user hints beat region barriers
   beat compiler PDOM barriers (§4.1). *)
let make_priority ~applied ~interproc ~pdom =
  let rank = Hashtbl.create 16 in
  List.iter
    (fun (a : Passes.Specrecon.applied) ->
      Hashtbl.replace rank (a.in_func, a.user_barrier) 3;
      match a.region_barrier with
      | Some b -> Hashtbl.replace rank (a.in_func, b) 2
      | None -> ())
    applied;
  List.iter
    (fun (a : Passes.Interproc.applied) -> Hashtbl.replace rank (a.in_func, a.barrier) 3)
    interproc;
  List.iter (fun (fname, _, b) -> Hashtbl.replace rank (fname, b) 1) pdom;
  fun fname b -> Option.value (Hashtbl.find_opt rank (fname, b)) ~default:1

(* The race differential needs the PDOM placement of the same source:
   re-lower the (already coarsened) AST through the baseline pipeline
   rather than recursing into [compile_ast], which would re-run the lint
   gate and spray its warnings a second time. *)
let pdom_race_findings ast =
  let p = Front.Lower.lower ast in
  strip_hints p;
  let divergence = Analysis.Divergence.run p in
  ignore (Passes.Pdom_sync.run p divergence);
  ignore (Passes.Cleanup.run p);
  Analysis.Race_safety.check p

let compile_ast options ast =
  let ast =
    match options.coarsen with
    | Some factor -> Front.Coarsen.apply ast ~factor
    | None -> ast
  in
  let program = Front.Lower.lower ast in
  override_thresholds options.threshold program;
  let pdom_barriers, applied, interproc_applied, deconflict_report, candidates =
    match options.mode with
    | No_sync ->
      strip_hints program;
      ([], [], [], None, [])
    | Baseline ->
      strip_hints program;
      let divergence = Analysis.Divergence.run program in
      (Passes.Pdom_sync.run program divergence, [], [], None, [])
    | Speculative strategy ->
      let applied = Passes.Specrecon.run program in
      let interproc = Passes.Interproc.run program in
      let divergence = Analysis.Divergence.run program in
      let pdom = Passes.Pdom_sync.run program divergence in
      let report =
        if options.deconflict then begin
          let priority = make_priority ~applied ~interproc ~pdom in
          Some (Passes.Deconflict.run program ~strategy ~priority)
        end
        else None
      in
      (pdom, applied, interproc, report, [])
    | Automatic { params; strategy; profile } ->
      strip_hints program;
      let candidates = Passes.Auto_detect.detect ?profile params program in
      Passes.Auto_detect.install program candidates;
      let applied = Passes.Specrecon.run program in
      let interproc = Passes.Interproc.run program in
      let divergence = Analysis.Divergence.run program in
      let pdom = Passes.Pdom_sync.run program divergence in
      let report =
        if options.deconflict then begin
          let priority = make_priority ~applied ~interproc ~pdom in
          Some (Passes.Deconflict.run program ~strategy ~priority)
        end
        else None
      in
      (pdom, applied, interproc, report, candidates)
  in
  if options.cleanup then ignore (Passes.Cleanup.run program);
  Ir.Verifier.check_program_exn program;
  (* Mandatory barrier-safety stage: a finding is a compiler bug (a
     placement the deconfliction rules should have ruled out), so it is a
     hard error unless the caller opted into warnings with lint=false
     (srcc --no-lint). *)
  let spec_meta = speculative_meta ~applied ~interproc:interproc_applied in
  let lint_findings = Analysis.Barrier_safety.check ~speculative:spec_meta program in
  (* Opt-in repair stage ([srcc --fix]): synthesize a minimal edit
     sequence whose re-check comes back empty. An accepted repair
     replaces the program and clears the findings, so the lint gate
     below sees a clean compile; a dry run or an unrepairable program
     leaves both untouched and the gate fires as today. *)
  let repair_report =
    match options.repair with
    | No_repair -> None
    | Repair { max_edits; _ } ->
      let before = Ir.Linear.linearize program in
      let outcome =
        match lint_findings with
        | [] -> Analysis.Barrier_repair.Clean
        | _ -> Analysis.Barrier_repair.repair ~speculative:spec_meta ~max_edits program
      in
      Some { pre_findings = lint_findings; outcome; before }
  in
  let program, lint_findings =
    match (options.repair, repair_report) with
    | ( Repair { dry_run = false; _ },
        Some { outcome = Analysis.Barrier_repair.Repaired { program = p; _ }; _ } ) -> (p, [])
    | _ -> (program, lint_findings)
  in
  (match lint_findings with
  | [] -> ()
  | fs when options.lint ->
    let unrepairable =
      match repair_report with
      | Some { outcome = Analysis.Barrier_repair.Unrepairable { blocking; explored }; _ } ->
        Printf.sprintf "\nsrfix: unrepairable after exploring %d candidate(s); blocked by: %s"
          explored
          (Format.asprintf "%a" Analysis.Barrier_safety.pp_machine blocking)
      | _ -> ""
    in
    failwith
      (Printf.sprintf "srlint: %d barrier-safety finding(s):\n%s%s" (List.length fs)
         (Analysis.Barrier_safety.render fs) unrepairable)
  | fs ->
    List.iter (fun f -> Format.eprintf "warning: %a@." Analysis.Barrier_safety.pp_machine f) fs);
  (* Race stage ([srcc --race]): unlike lint, findings are reported, not
     gated — a data race can be source-level (present under every
     placement), so the caller decides severity. Under a speculative
     placement, findings absent from the PDOM placement of the same
     source are upgraded to [race-introduced]: the transform broke an
     ordering PDOM had. The PDOM baseline is built lazily — only when
     there is something to diff. *)
  let race_findings =
    if not options.race then []
    else
      let findings = Analysis.Race_safety.check program in
      match (options.mode, findings) with
      | (No_sync | Baseline), _ | _, [] -> findings
      | (Speculative _ | Automatic _), _ ->
        Analysis.Race_safety.diff ~baseline:(pdom_race_findings ast) findings
  in
  let linear = Ir.Linear.linearize program in
  let decoded = Ir.Decoded.decode linear in
  {
    options;
    program;
    linear;
    decoded;
    pdom_barriers;
    applied;
    interproc_applied;
    deconflict_report;
    candidates;
    lint_findings;
    race_findings;
    repair_report;
  }

let compile options ~source = compile_ast options (Front.Parser.parse_string source)
