(** The compilation pipeline: MiniSIMT source to executable linear code,
    under one of the paper's compilation modes.

    - {!Baseline} — what production compilers do today: PDOM
      reconvergence at every divergent branch; Predict hints ignored.
    - {!Speculative} — the paper's contribution (§4): user hints compiled
      by {!Passes.Specrecon} / {!Passes.Interproc}, PDOM sync inserted as
      usual, conflicts resolved by the chosen deconfliction strategy
      (the paper's evaluation uses dynamic deconfliction, §5).
    - {!Automatic} — §4.5: hints discovered by {!Passes.Auto_detect}
      instead of the programmer, then compiled identically.
    - {!No_sync} — no reconvergence at all; a lower-bound reference used
      by tests.

    The soft-barrier threshold (§4.6) can be overridden per compile, which
    is how the Figure-9 sweep drives one source through thresholds 0..32. *)

type mode =
  | No_sync
  | Baseline
  | Speculative of Passes.Deconflict.strategy
  | Automatic of {
      params : Passes.Auto_detect.params;
      strategy : Passes.Deconflict.strategy;
      profile : Analysis.Profile.t option; (* optional profile guidance *)
    }

type threshold_override =
  | Keep  (** use the thresholds written in the source *)
  | Set of int  (** force every label hint to a soft barrier with this threshold *)
  | Unset  (** force hard (full) barriers everywhere *)

(** Opt-in repair stage (srcc [--fix] / [--fix-dry-run]): when barrier
    safety findings survive deconfliction, run {!Analysis.Barrier_repair}
    over them before the lint gate. *)
type repair_mode =
  | No_repair
  | Repair of {
      dry_run : bool;
          (** synthesize and report the edit plan but keep the original
              program — findings still reach the lint gate *)
      max_edits : int;  (** search budget, {!Analysis.Barrier_repair.default_max_edits} *)
    }

type options = {
  mode : mode;
  coarsen : int option;
  threshold : threshold_override;
  cleanup : bool;
      (** run {!Passes.Cleanup} (DCE + dead-barrier removal) after the
          synchronization passes; on by default *)
  deconflict : bool;
      (** run {!Passes.Deconflict} in the speculative/automatic modes; on
          by default. Turning it off (srcc/srrun [--no-deconflict])
          deliberately ships conflicting barrier placements — the
          fault-injection and yield-recovery harness uses this to
          exercise the simulator's degraded-mode behaviour. *)
  lint : bool;
      (** treat {!Analysis.Barrier_safety} findings as a hard error
          ([Failure]); when false they are demoted to stderr warnings
          (srcc's [--no-lint]). The checker always runs; findings are
          reported in {!compiled.lint_findings} either way. *)
  race : bool;
      (** run {!Analysis.Race_safety} after the lint gate; on by
          default, off under srcc's [--no-race]. Unlike lint, findings
          never raise — they are reported in {!compiled.race_findings}
          and the caller decides severity (a race can be source-level,
          present under every placement). In the speculative/automatic
          modes, findings absent under the PDOM placement of the same
          source are upgraded to [race-introduced]. *)
  repair : repair_mode;
      (** attempt {!Analysis.Barrier_repair} on findings before the lint
          gate; [No_repair] by default. An accepted (non-dry-run) repair
          replaces the program and compiles clean; dry runs and
          unrepairable programs fall through to the gate unchanged, the
          latter with the blocking finding appended to the error. *)
}

val baseline : options
val speculative : options (* dynamic deconfliction, source thresholds *)
val automatic : options

(** What the repair stage did, when {!options.repair} enabled it. *)
type repair_report = {
  pre_findings : Analysis.Barrier_safety.finding list;
      (** findings before repair (what [--fix] was asked to clear) *)
  outcome : Analysis.Barrier_repair.outcome;
  before : Ir.Linear.t;
      (** linearized pre-repair program, for the before/after diff *)
}

type compiled = {
  options : options;
  program : Ir.Types.program;
  linear : Ir.Linear.t;
  decoded : Ir.Decoded.t;  (** what {!Simt.Interp.run} executes *)
  pdom_barriers : (string * int * Ir.Types.barrier) list;
  applied : Passes.Specrecon.applied list;
  interproc_applied : Passes.Interproc.applied list;
  deconflict_report : Passes.Deconflict.report option;
  candidates : Passes.Auto_detect.candidate list; (* automatic mode only *)
  lint_findings : Analysis.Barrier_safety.finding list;
      (* barrier-safety findings ([] unless lint=false let them through,
         or a repair cleared them) *)
  race_findings : Analysis.Race_safety.finding list;
      (* static data-race findings over all kernels, PDOM-diffed in the
         speculative modes; [] when options.race = false *)
  repair_report : repair_report option; (* present iff options.repair <> No_repair *)
}

(** [compile options ~source] runs parse → (coarsen) → lower → threshold
    override → synchronization passes → deconfliction → verify →
    linearize.
    @raise Front.Parser.Parse_error / Front.Lower.Lower_error / Failure. *)
val compile : options -> source:string -> compiled

(** Same from an already-parsed AST. *)
val compile_ast : options -> Front.Ast.program -> compiled
