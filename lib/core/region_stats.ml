type t = {
  region_issues : int;
  region_active : int;
  other_issues : int;
  other_active : int;
  warp_size : int;
}

let region_efficiency t =
  if t.region_issues = 0 then 0.0
  else float_of_int t.region_active /. float_of_int (t.region_issues * t.warp_size)

let other_efficiency t =
  if t.other_issues = 0 then 0.0
  else float_of_int t.other_active /. float_of_int (t.other_issues * t.warp_size)

(* The common-code region of a label hint: blocks dominated by the target
   block; of a callee hint: the whole callee body. *)
let region_blocks (compiled : Compile.compiled) =
  let table = Hashtbl.create 16 in
  List.iter
    (fun (a : Passes.Specrecon.applied) ->
      let f = Hashtbl.find compiled.program.Ir.Types.funcs a.in_func in
      let g = Analysis.Cfg.of_func f in
      let dom = Analysis.Dom.compute g in
      List.iter
        (fun b ->
          if Analysis.Dom.dominates dom a.target_block b then
            Hashtbl.replace table (a.in_func, b) ())
        (Analysis.Cfg.nodes g))
    compiled.applied;
  List.iter
    (fun (a : Passes.Interproc.applied) ->
      let callee = Hashtbl.find compiled.program.Ir.Types.funcs a.callee in
      Ir.Types.iter_blocks callee (fun b ->
          Hashtbl.replace table (a.callee, b.Ir.Types.id) ()))
    compiled.interproc_applied;
  table

let measure ?(config = Simt.Config.default) options (spec : Workloads.Spec.t) =
  let config = spec.tweak_config config in
  let options =
    match options.Compile.coarsen with
    | Some _ -> options
    | None -> { options with Compile.coarsen = spec.coarsen }
  in
  let compiled = Compile.compile options ~source:spec.source in
  let regions = region_blocks compiled in
  let region_issues = ref 0 and region_active = ref 0 in
  let other_issues = ref 0 and other_active = ref 0 in
  let tracer (e : Simt.Interp.issue_event) =
    let loc = e.where in
    let n = List.length e.active in
    if Hashtbl.mem regions (loc.Ir.Linear.in_func, loc.Ir.Linear.in_block) then begin
      incr region_issues;
      region_active := !region_active + n
    end
    else begin
      incr other_issues;
      other_active := !other_active + n
    end
  in
  ignore
    (Simt.Interp.run ~tracer config compiled.decoded ~args:spec.args
       ~init_memory:(fun mem -> spec.init compiled.program mem));
  {
    region_issues = !region_issues;
    region_active = !region_active;
    other_issues = !other_issues;
    other_active = !other_active;
    warp_size = config.Simt.Config.warp_size;
  }

let pp ppf t =
  Format.fprintf ppf
    "common-code region: %5.1f%% efficiency over %d issues; elsewhere: %5.1f%% over %d issues"
    (100.0 *. region_efficiency t)
    t.region_issues
    (100.0 *. other_efficiency t)
    t.other_issues
