module T = Ir.Types

type mode = Baseline | Specrecon

let mode_name = function Baseline -> "baseline" | Specrecon -> "specrecon"

exception Stage_error of string * string

type staged = {
  program : T.program;
  linear : Ir.Linear.t;
  decoded : Ir.Decoded.t;
  resolutions : int;
  lint : Analysis.Barrier_safety.finding list;
  race : Analysis.Race_safety.finding list;
  speculative : Analysis.Barrier_safety.speculative list;
}

let stage name f =
  match f () with
  | v -> v
  | exception Failure msg -> raise (Stage_error (name, msg))
  | exception Front.Lower.Lower_error (p, msg) ->
    raise (Stage_error (name, Format.asprintf "%a: %s" Front.Ast.pp_pos p msg))

let verify name program =
  match Ir.Verifier.check_program program with
  | [] -> ()
  | errors ->
    let rendered =
      String.concat "; " (List.map (Format.asprintf "%a" Ir.Verifier.pp_error) errors)
    in
    raise (Stage_error ("verify:" ^ name, rendered))

let strip_hints (p : T.program) = Hashtbl.iter (fun _ (f : T.func) -> f.hints <- []) p.funcs

(* Barrier priority for deconfliction, as Core.Compile ranks it: user
   hints beat region barriers beat compiler PDOM barriers (§4.1). *)
let make_priority ~applied ~interproc ~pdom =
  let rank = Hashtbl.create 16 in
  List.iter
    (fun (a : Passes.Specrecon.applied) ->
      Hashtbl.replace rank (a.in_func, a.user_barrier) 3;
      match a.region_barrier with
      | Some b -> Hashtbl.replace rank (a.in_func, b) 2
      | None -> ())
    applied;
  List.iter
    (fun (a : Passes.Interproc.applied) -> Hashtbl.replace rank (a.in_func, a.barrier) 3)
    interproc;
  List.iter (fun (fname, _, b) -> Hashtbl.replace rank (fname, b) 1) pdom;
  fun fname b -> Option.value (Hashtbl.find_opt rank (fname, b)) ~default:1

(* Speculative-barrier provenance for srlint's dominance rule, as
   Core.Compile collects it. *)
let speculative_meta ~applied ~interproc =
  List.map
    (fun (a : Passes.Specrecon.applied) ->
      {
        Analysis.Barrier_safety.sfunc = a.in_func;
        slot = a.user_barrier;
        join_block = a.region_start;
      })
    applied
  @ List.map
      (fun (a : Passes.Interproc.applied) ->
        { Analysis.Barrier_safety.sfunc = a.in_func; slot = a.barrier; join_block = a.region_start })
      interproc

let compile ?(deconflict = true) ?(deconflict_call_waits = true) ~mode ast =
  let program = stage "lower" (fun () -> Front.Lower.lower ast) in
  verify "lower" program;
  let resolutions, speculative =
    match mode with
    | Baseline ->
      strip_hints program;
      let divergence = Analysis.Divergence.run program in
      ignore (stage "pdom_sync" (fun () -> Passes.Pdom_sync.run program divergence));
      verify "pdom_sync" program;
      (0, [])
    | Specrecon ->
      let applied = stage "specrecon" (fun () -> Passes.Specrecon.run program) in
      verify "specrecon" program;
      let interproc = stage "interproc" (fun () -> Passes.Interproc.run program) in
      verify "interproc" program;
      let divergence = Analysis.Divergence.run program in
      let pdom = stage "pdom_sync" (fun () -> Passes.Pdom_sync.run program divergence) in
      verify "pdom_sync" program;
      let speculative = speculative_meta ~applied ~interproc in
      if deconflict then begin
        let priority = make_priority ~applied ~interproc ~pdom in
        let report =
          stage "deconflict" (fun () ->
              Passes.Deconflict.run ~model_call_waits:deconflict_call_waits program
                ~strategy:Passes.Deconflict.Dynamic ~priority)
        in
        verify "deconflict" program;
        (List.length report.Passes.Deconflict.resolutions, speculative)
      end
      else (0, speculative)
  in
  ignore (stage "cleanup" (fun () -> Passes.Cleanup.run program));
  verify "cleanup" program;
  (* srlint runs as its own stage but never raises: the oracles need the
     findings as data, to compare against what the simulator does. *)
  let lint = stage "srlint" (fun () -> Analysis.Barrier_safety.check ~speculative program) in
  (* srrace likewise: findings are oracle data, never an error. The
     race oracles compare per mode, so no PDOM diffing here — a finding
     present only under Specrecon is visible as exactly that. *)
  let race = stage "srrace" (fun () -> Analysis.Race_safety.check program) in
  let linear = stage "linearize" (fun () -> Ir.Linear.linearize program) in
  let decoded = stage "decode" (fun () -> Ir.Decoded.decode linear) in
  { program; linear; decoded; resolutions; lint; race; speculative }
