(** Barrier-misplacement mutator for the repair oracles.

    Perturbs a compiled program's barrier placement — swapped wait
    slots, duplicated joins, dropped cancels, stray slot ids, relocated
    waits — to manufacture the misplacement shapes {!Analysis.Barrier_safety}
    checks for, so {!Oracle.check_repair} can exercise
    {!Analysis.Barrier_repair} on programs srlint actually flags. *)

type mutation = Swap_waits | Dup_join | Drop_cancel | Stray_slot | Relocate_wait

val mutation_name : mutation -> string
(** Stable kebab-case name, used in violation details. *)

val mutate : Support.Splitmix.t -> Ir.Types.program -> (string * Ir.Types.program) option
(** [mutate rng p] draws mutations until one applies and passes the
    structural verifier, returning (mutation name, mutated copy) —
    [p] itself is never modified. [None] when nothing applies (after a
    bounded number of draws). The mutant may still be checker-clean;
    callers decide whether a clean mutant is interesting. *)
