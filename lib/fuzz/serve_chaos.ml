(* Service-level chaos: the serve-side mirror of the simulator chaos
   tier. Where Oracle.chaos_matrix perturbs the machine under one
   process, this harness perturbs the *transport and the lifecycle* of a
   real forked srserved socket server — torn lines, slow-loris sends,
   injected fuel budgets, clients that vanish unread, kill -9 between
   generations, corrupted persisted artifacts — and holds the service to
   two contracts:

   - every response a faulted run does deliver is byte-identical to the
     clean server's stream (or, for an injected fuel budget, a
     well-formed [deadline] naming that budget);
   - a kill-9'd server restarted over the same persistent store answers
     the same trace byte-identically, warm from the store, and injected
     store corruption degrades to counted misses, never to wrong
     answers.

   Servers are forked children running Serve.Transport.serve; Unix.fork
   is safe here because Support.Domain_pool spawns and joins its domains
   per call, so no domain is alive between batches. The faulted pass is
   driven by a Serve.Faults plan whose recorded trace replays exactly —
   on a violation the trace is shrunk (Shrink.shrink_trace) by
   re-forking a server per candidate, so the reported repro is minimal. *)

module P = Serve.Protocol
module SF = Serve.Faults

exception Fail of string

let failf fmt = Printf.ksprintf (fun m -> raise (Fail m)) fmt

(* -------------------------------------------------------------------- *)
(* Scratch directories and forked server lifecycle.                     *)

let temp_dir prefix =
  let base = Filename.temp_file prefix "" in
  Sys.remove base;
  Unix.mkdir base 0o700;
  base

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Unix.Unix_error _ -> ()

type proc = { pid : int; socket_path : string }

let start ?persist_dir ~max_issues ~dir name =
  let socket_path = Filename.concat dir (name ^ ".sock") in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    (try
       let server =
         Serve.Server.create ~cache_capacity:64 ~max_issues ?persist_dir ()
       in
       Serve.Transport.serve ~read_timeout:10.0 server ~socket_path ()
     with _ -> ());
    Unix._exit 0
  | pid -> { pid; socket_path }

(* Bounded wait for the child; SIGKILL if it never exits. *)
let reap p =
  let rec go n =
    if n >= 200 then begin
      (try Unix.kill p.pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] p.pid);
      None
    end
    else
      match Unix.waitpid [ Unix.WNOHANG ] p.pid with
      | 0, _ ->
        Unix.sleepf 0.02;
        go (n + 1)
      | _, status -> Some status
  in
  try go 0 with Unix.Unix_error _ -> None

(* Graceful drain: shutdown must answer [bye] and the child must exit 0
   — part of the contract under test, not just cleanup. *)
let shutdown_ok p =
  let bye =
    try
      let c = Serve.Client.connect p.socket_path in
      let r = Serve.Client.round_trip c [ P.print_command P.Shutdown ] in
      Serve.Client.close c;
      r = [ P.print_response P.Bye ]
    with _ -> false
  in
  match reap p with Some (Unix.WEXITED 0) -> bye | _ -> false

(* The crash under test: no drain, no flush, straight SIGKILL. *)
let kill9 p =
  (try Unix.kill p.pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (try Unix.waitpid [] p.pid with Unix.Unix_error _ -> (0, Unix.WEXITED 0))

(* -------------------------------------------------------------------- *)
(* The request trace: one run line per generated program, same generator
   stream as the main fuzz campaign, request defaults (2 warps of 32,
   seed 11, data init). Any response — ok, error, deadline — is fine;
   the oracle only demands the faulted stream match the clean one. *)

let make_lines ~seed ~count =
  List.init count (fun i ->
      let case = Gen.generate ~seed i in
      let source = Front.Pretty.to_string case.Gen.ast in
      P.print_command (P.Run (P.make_request ~id:i ~init:"data" ~source ())))

let write_raw fd s off len =
  let rec go off len =
    if len > 0 then begin
      let n = try Unix.write_substring fd s off len with
        | Unix.Unix_error (Unix.EINTR, _, _) -> 0
      in
      go (off + n) (len - n)
    end
  in
  go off len

(* -------------------------------------------------------------------- *)
(* Clean pass: fork a server, send the trace one request at a time,
   record the response stream, drain. The first clean pass is the
   reference; the last one proves the whole campaign replays
   byte-identically. *)

let clean_pass ~max_issues ~dir name lines =
  let p = start ~max_issues ~dir name in
  let responses =
    try
      let c = Serve.Client.connect p.socket_path in
      let rs = List.map (fun l -> Serve.Client.rpc c l) lines in
      Serve.Client.close c;
      Ok rs
    with exn -> Error (Printexc.to_string exn)
  in
  let drained = shutdown_ok p in
  match responses with
  | Error m -> Error m
  | Ok _ when not drained -> Error "clean server did not drain to exit 0"
  | Ok rs -> Ok rs

(* -------------------------------------------------------------------- *)
(* Faulted pass. One main connection carries the conversation; side
   connections model the hostile clients (torn sends, vanishing
   readers). Per request the plan picks a disposition:

   - Clean: send on the main connection; response must be byte-identical
     to the reference.
   - Truncated keep: a side connection sends [keep] bytes of the line,
     no newline, and closes. The transport must discard the partial at
     EOF without touching any counter, so the clean resend on the main
     connection must still be byte-identical.
   - Slowed chunk: the line dribbles onto the main connection in
     [chunk]-byte pieces (well inside the read timeout); byte-identical
     required.
   - Fueled fuel: the request is resent with [deadline=fuel]. The fuel
     field is not part of the cache key and cache counters resolve
     before launch, so the response is either byte-identical to the
     reference (budget not reached) or a [deadline] naming exactly this
     rid and fuel — and either way every later response stays aligned.
   - Aborted: a side connection sends the request fully and closes
     without reading. The server must process it exactly once (counters
     advance as in the reference) and survive the dead-peer write. The
     main connection then polls [stats] until [served] catches up —
     responses echo cumulative counters, so the next main-connection
     request may not race the side connection's processing. *)

let faulted_pass ~max_issues ~dir ~name plan lines reference =
  let p = start ~max_issues ~dir name in
  let outcome =
    try
      let c = Serve.Client.connect p.socket_path in
      let stats_line = P.print_command (P.Stats 0) in
      let wait_served want =
        let rec go n =
          if n > 500 then
            failf "aborted request never processed (want served=%d)" want
          else
            match P.parse_response (Serve.Client.rpc c stats_line) with
            | Ok (P.Stats_reply { served; _ }) when served >= want -> ()
            | _ ->
              Unix.sleepf 0.01;
              go (n + 1)
        in
        go 0
      in
      let mismatch i what got want =
        failf "request %d (%s): faulted stream diverged\n  faulted: %s\n  clean:   %s" i
          what got want
      in
      List.iteri
        (fun i (line, want) ->
          let len = String.length line in
          match SF.request_fault plan ~len with
          | SF.Clean ->
            let got = Serve.Client.rpc c line in
            if not (String.equal got want) then mismatch i "clean" got want
          | SF.Truncated keep ->
            let side = Serve.Client.connect p.socket_path in
            write_raw (Serve.Client.fd side) line 0 (min keep len);
            Serve.Client.close side;
            let got = Serve.Client.rpc c line in
            if not (String.equal got want) then
              mismatch i (Printf.sprintf "torn at %d bytes, clean resend" keep) got want
          | SF.Slowed chunk ->
            let fd = Serve.Client.fd c in
            let rec dribble off =
              if off < len then begin
                let n = min chunk (len - off) in
                write_raw fd line off n;
                Unix.sleepf 0.002;
                dribble (off + n)
              end
            in
            dribble 0;
            write_raw fd "\n\n" 0 2;
            let got =
              match Serve.Client.recv c 1 with [ g ] -> g | _ -> assert false
            in
            if not (String.equal got want) then
              mismatch i (Printf.sprintf "slow-loris, %d-byte chunks" chunk) got want
          | SF.Fueled fuel ->
            let fueled_line =
              match P.parse_command line with
              | Ok (P.Run r) ->
                P.print_command (P.Run { r with P.deadline = Some fuel })
              | _ -> line
            in
            let got = Serve.Client.rpc c fueled_line in
            let ok =
              String.equal got want
              ||
              match P.parse_response got with
              | Ok (P.Deadline { rid; fuel = f }) -> rid = i && f = fuel
              | _ -> false
            in
            if not ok then
              failf
                "request %d (injected deadline=%d): expected the clean response or a \
                 matching deadline\n  faulted: %s\n  clean:   %s"
                i fuel got want
          | SF.Aborted ->
            let side = Serve.Client.connect p.socket_path in
            Serve.Client.send side [ line ];
            Serve.Client.close side;
            wait_served (i + 1))
        (List.combine lines reference);
      Serve.Client.close c;
      Ok ()
    with
    | Fail m -> Error m
    | exn -> Error (Printexc.to_string exn)
  in
  let drained = shutdown_ok p in
  match outcome with
  | Ok () when not drained -> Error "faulted server did not drain to exit 0"
  | r -> r

(* -------------------------------------------------------------------- *)
(* Oracle A: transport chaos. Clean reference, [plans] seeded fault
   plans, then a clean rerun that must reproduce the reference
   byte-for-byte. On a violation the recorded fault trace is shrunk by
   replaying candidate sub-traces against fresh servers. *)

let check_transport ?(count = 30) ?(plans = 2) ?(max_issues = 200_000) ~seed ~chaos_seed
    () =
  let lines = make_lines ~seed ~count in
  let dir = temp_dir "srchaos" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let replays = ref 0 in
  let viol detail = Oracle.Violation { Oracle.kind = Oracle.Serve_chaos; detail } in
  match clean_pass ~max_issues ~dir "clean" lines with
  | Error m -> (!replays, viol ("clean reference pass failed: " ^ m))
  | Ok reference ->
    replays := count;
    let violation = ref None in
    for k = 0 to plans - 1 do
      if !violation = None then begin
        let plan_seed = chaos_seed + (7919 * k) in
        let plan = SF.create ~seed:plan_seed () in
        replays := !replays + count;
        match
          faulted_pass ~max_issues ~dir ~name:(Printf.sprintf "plan%d" k) plan lines
            reference
        with
        | Ok () -> ()
        | Error msg ->
          let events = SF.events plan in
          let minimal =
            Shrink.shrink_trace ~budget:8 events ~still_failing:(fun evs ->
                replays := !replays + count;
                match
                  faulted_pass ~max_issues ~dir ~name:"shrink" (SF.replay evs) lines
                    reference
                with
                | Error _ -> true
                | Ok () -> false)
          in
          violation :=
            Some
              (viol
                 (Printf.sprintf
                    "plan %d (fault seed %d): %s\n  minimal trace (%d of %d events):\n%s"
                    k plan_seed msg (List.length minimal) (List.length events)
                    (SF.trace_to_string minimal)))
      end
    done;
    (match !violation with
    | Some v -> (!replays, v)
    | None -> (
      replays := !replays + count;
      match clean_pass ~max_issues ~dir "rerun" lines with
      | Error m -> (!replays, viol ("clean rerun failed: " ^ m))
      | Ok again when again <> reference ->
        let i =
          let rec first n = function
            | a :: at, b :: bt -> if String.equal a b then first (n + 1) (at, bt) else n
            | _ -> n
          in
          first 0 (again, reference)
        in
        (!replays, viol (Printf.sprintf "clean rerun diverged at request %d" i))
      | Ok _ -> (!replays, Oracle.Ok_run)))

(* -------------------------------------------------------------------- *)
(* Oracle B: crash-safe persistence. Generation 1 serves the trace twice
   (cold then warm) over a fresh store and is killed -9 — artifacts are
   written through at compile time, so nothing is lost. Generation 2
   over the same store must answer the identical trace byte-for-byte,
   warm from disk (stats phits = one per program, pcorrupt 0).
   The store is then mangled per the plan's file channel; generation 3
   must still be byte-identical, counting exactly the corrupted entries
   as pcorrupt and re-serving the rest from disk. *)

let truncate_half path =
  let n = (Unix.stat path).Unix.st_size in
  Unix.truncate path (n / 2)

let check_persist ?(count = 12) ?(max_issues = 200_000) ~seed ~chaos_seed () =
  let lines = make_lines ~seed ~count in
  let trace = lines @ lines in
  let dir = temp_dir "srpersist" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let store = Filename.concat dir "store" in
  let replays = ref 0 in
  let viol detail = Oracle.Violation { Oracle.kind = Oracle.Serve_persist; detail } in
  let run_gen name ~crash =
    let p = start ~persist_dir:store ~max_issues ~dir name in
    let result =
      try
        let c = Serve.Client.connect p.socket_path in
        let rs = List.map (fun l -> Serve.Client.rpc c l) trace in
        let stats = Serve.Client.rpc c (P.print_command (P.Stats 0)) in
        Serve.Client.close c;
        Ok (rs, stats)
      with exn -> Error (Printexc.to_string exn)
    in
    replays := !replays + List.length trace;
    if crash then begin
      kill9 p;
      result
    end
    else
      match result with
      | Ok _ when not (shutdown_ok p) ->
        Error (name ^ ": server did not drain to exit 0")
      | r ->
        if Result.is_error r then ignore (reap p);
        r
  in
  let counters stats =
    match P.parse_response stats with
    | Ok (P.Stats_reply { phits; pcorrupt; _ }) -> Some (phits, pcorrupt)
    | _ -> None
  in
  match run_gen "gen1" ~crash:true with
  | Error m -> (!replays, viol ("generation 1 (pre-crash) failed: " ^ m))
  | Ok (r1, s1) -> (
    match counters s1 with
    | Some (phits, _) when phits > 0 ->
      (!replays, viol "generation 1 reported persist hits on a fresh store")
    | _ -> (
      match run_gen "gen2" ~crash:false with
      | Error m -> (!replays, viol ("generation 2 (post-kill-9 restart) failed: " ^ m))
      | Ok (r2, s2) ->
        if r2 <> r1 then
          (!replays, viol "restarted server's responses differ from the pre-crash run")
        else (
          match counters s2 with
          | Some (phits, pcorrupt) when phits <> count || pcorrupt <> 0 ->
            ( !replays,
              viol
                (Printf.sprintf
                   "restart should serve every program from the store: phits=%d \
                    (want %d) pcorrupt=%d (want 0)"
                   phits count pcorrupt) )
          | None -> (!replays, viol ("generation 2 stats unparsable: " ^ s2))
          | Some _ -> (
            (* Mangle the store per the plan's file channel. *)
            let plan = SF.create ~seed:(chaos_seed lxor 0x9e37) () in
            let arts =
              Sys.readdir store |> Array.to_list
              |> List.filter (fun f -> Filename.check_suffix f ".art")
              |> List.sort String.compare
            in
            let corrupted =
              List.length
                (List.filter
                   (fun f ->
                     let hit = SF.file_fault plan in
                     if hit then truncate_half (Filename.concat store f);
                     hit)
                   arts)
            in
            match run_gen "gen3" ~crash:false with
            | Error m -> (!replays, viol ("generation 3 (corrupted store) failed: " ^ m))
            | Ok (r3, s3) ->
              if r3 <> r1 then
                ( !replays,
                  viol "corrupted-store responses differ from the pre-crash run" )
              else (
                match counters s3 with
                | Some (phits, pcorrupt)
                  when corrupted > 0
                       && (pcorrupt <> corrupted || phits <> count - corrupted) ->
                  ( !replays,
                    viol
                      (Printf.sprintf
                         "corruption mis-counted: phits=%d pcorrupt=%d, but the plan \
                          corrupted %d of %d entries"
                         phits pcorrupt corrupted count) )
                | None -> (!replays, viol ("generation 3 stats unparsable: " ^ s3))
                | Some _ -> (!replays, Oracle.Ok_run))))))

(* -------------------------------------------------------------------- *)
(* The campaign srfuzz --serve-chaos runs: both oracles at one seed. *)

type campaign = {
  replays : int;  (** trace-request replays forked servers answered *)
  plans : int;  (** transport fault plans exercised *)
  violations : Oracle.violation list;
}

let run ?(count = 30) ?(plans = 2) ?(persist_count = 12) ?(max_issues = 200_000)
    ?(chaos_seed = 0xc4a05) ~seed () =
  let tr, tv = check_transport ~count ~plans ~max_issues ~seed ~chaos_seed () in
  let pr, pv = check_persist ~count:persist_count ~max_issues ~seed ~chaos_seed () in
  let violations =
    List.filter_map
      (function Oracle.Violation v -> Some v | Oracle.Ok_run | Oracle.Limit _ -> None)
      [ tv; pv ]
  in
  { replays = tr + pr; plans; violations }
