(** Seeded random generation of well-formed MiniSIMT programs.

    The generator is typed and scope-aware: every program it produces
    parses, lowers, and executes without runtime errors by construction —
    divisors are forced positive, array indices are wrapped into range,
    loops are trip-count bounded, and [predict] directives are only placed
    where their target label (or callee) is statically reachable.

    Schedule independence, the property the differential oracles rely on,
    is also enforced structurally: the shape bodies write only to
    per-thread cells ([outi[tid()]] / [outf[tid()]]) and read only from
    read-only input arrays ([datai] / [dataf]). A kernel may additionally
    end with a {e share stanza} — aliasing or overlapping accesses to the
    [sharei]/[sharef] scratch arrays, some deliberately racy, feeding the
    srrace differential oracles. Racy stores are value-canonical (every
    thread writing cell [c] writes the same function of [c]) and collide
    within one warp, so the final image is still deterministic — only the
    access ordering races, which the shadow logger must observe and the
    static checker must predict.

    Generation is biased toward the divergence shapes of the paper's §3 —
    divergent-if-in-loop (Figure 2(a) / Listing 1), divergent trip counts
    (Figure 2(b)), and the common-function-call pattern (Figure 2(c)) —
    plus soft-barrier thresholds (§4.6) and hint-free programs that
    exercise the PDOM-only path. *)

(** Number of threads the oracle launches; [outi]/[outf] are sized to it. *)
val n_threads : int

(** Size of the read-only [datai]/[dataf] input arrays. *)
val data_size : int

type shape =
  | If_in_loop  (** divergent condition inside a loop, label in the branch *)
  | Trip_loop  (** divergent trip-count while loop, label at the loop head *)
  | Common_call  (** both sides of a branch call the same device function *)
  | Mixed  (** free-form statements, optional post-branch label *)

val shape_name : shape -> string

type params = {
  stmt_budget : int;  (** fuel for statement generation *)
  max_depth : int;  (** control-flow nesting limit *)
}

val default_params : params

type case = { id : int; shape : shape; ast : Front.Ast.program }

(** [generate ~seed id] deterministically produces program [id] of the
    campaign keyed by [seed]: same pair, same program, forever. *)
val generate : ?params:params -> seed:int -> int -> case
