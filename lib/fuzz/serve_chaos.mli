(** Service-level chaos oracles over a real forked srserved socket
    server — the serve-side counterpart of the simulator chaos tier.

    Two contracts, both differential against a clean server answering
    the same generated request trace:

    - {b transport} ({!check_transport}): under a seeded
      {!Serve.Faults} plan — torn lines, slow-loris sends, injected
      [deadline=] fuel budgets, clients that vanish without reading —
      every response the faulted conversation does deliver must be
      byte-identical to the clean stream (a fuel-faulted request may
      instead answer a well-formed [deadline] naming its rid and
      budget), the server must drain to exit 0 afterwards, and a final
      clean pass must reproduce the reference byte-for-byte. On a
      violation the fault trace is shrunk ({!Shrink.shrink_trace}) by
      replaying sub-traces against fresh servers, so the reported repro
      is minimal.

    - {b persistence} ({!check_persist}): a server over a fresh
      [--persist] store serves the trace cold-then-warm and is killed
      [-9]; a restart over the same store must answer identically, warm
      from disk ([phits] = one per program); after the plan's file
      channel mangles store entries, a third generation must stay
      byte-identical while counting exactly the mangled entries as
      [pcorrupt] — corruption degrades to misses, never to wrong
      answers.

    Servers are forked children ([Unix.fork] + {!Serve.Transport.serve});
    safe because {!Support.Domain_pool} holds no domains between calls.
    Everything is keyed by [(seed, chaos_seed)], so a campaign replays
    exactly. *)

(** [check_transport ~seed ~chaos_seed ()] returns (trace-request
    replays performed, verdict). Defaults: [count] 30 requests,
    [plans] 2 fault plans, [max_issues] 200_000. *)
val check_transport :
  ?count:int ->
  ?plans:int ->
  ?max_issues:int ->
  seed:int ->
  chaos_seed:int ->
  unit ->
  int * Oracle.verdict

(** [check_persist ~seed ~chaos_seed ()] returns (trace-request replays
    performed, verdict). Defaults: [count] 12 programs (each served
    cold+warm per generation), [max_issues] 200_000. *)
val check_persist :
  ?count:int -> ?max_issues:int -> seed:int -> chaos_seed:int -> unit -> int * Oracle.verdict

type campaign = {
  replays : int;  (** trace-request replays forked servers answered *)
  plans : int;  (** transport fault plans exercised *)
  violations : Oracle.violation list;
}

(** [run ~seed ()] — the [srfuzz --serve-chaos] campaign: both oracles
    at one seed. [chaos_seed] defaults to [0xc4a05], matching the
    simulator chaos tier's root. *)
val run :
  ?count:int ->
  ?plans:int ->
  ?persist_count:int ->
  ?max_issues:int ->
  ?chaos_seed:int ->
  seed:int ->
  unit ->
  campaign
