(** Greedy minimization of failing MiniSIMT programs.

    Candidate reductions, tried in order against the caller's predicate:
    drop a device function, delete one statement (pre-order over every
    function body), unwrap a control-flow statement into one of its
    blocks, and zero out a declaration's initializer. The first candidate
    that still fails becomes the new current program; the scan restarts
    until a full pass yields nothing or the evaluation budget runs out.

    Candidates that no longer parse-check (a deleted declaration leaves a
    dangling use, an unwrapped loop strands a [break]) are rejected by the
    predicate itself — the oracle classifies them differently — so the
    shrinker needs no legality analysis of its own. *)

(** [shrink ~budget ast ~still_failing] returns a (weakly) minimal
    program for which [still_failing] holds. [budget] caps predicate
    evaluations (default 300). [still_failing ast] must be true on entry. *)
val shrink :
  ?budget:int -> Front.Ast.program -> still_failing:(Front.Ast.program -> bool) -> Front.Ast.program

(** [shrink_trace events ~still_failing] greedily drops events from a
    recorded fault trace while the predicate keeps holding — replay is
    keyed by (channel, consultation index), so any sublist is a
    well-formed trace. Returns [events] unchanged if the full trace no
    longer reproduces. [budget] caps predicate evaluations (default
    200); each evaluation typically replays a full simulation, so
    callers pass something far smaller. Works for any event type
    ({!Simt.Faults.event}, {!Serve.Faults.event}). *)
val shrink_trace : ?budget:int -> 'a list -> still_failing:('a list -> bool) -> 'a list
