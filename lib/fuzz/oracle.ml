module T = Ir.Types
module Sm = Support.Splitmix
module Sp = Serve.Protocol

type kind =
  | Round_trip
  | Stage_failure
  | Deadlock
  | Runtime_error
  | Result_divergence
  | Lint_unsound
  | Lint_spurious
  | Chaos_divergence
  | Spurious_yield
  | Race_unsound
  | Race_spurious
  | Serve_mismatch
  | Serve_chaos
  | Serve_persist
  | Repair_unsound
  | Repair_incomplete

let kind_name = function
  | Round_trip -> "round-trip"
  | Stage_failure -> "stage-failure"
  | Deadlock -> "deadlock"
  | Runtime_error -> "runtime-error"
  | Result_divergence -> "result-divergence"
  | Lint_unsound -> "lint-unsound"
  | Lint_spurious -> "lint-spurious"
  | Chaos_divergence -> "chaos-divergence"
  | Spurious_yield -> "spurious-yield"
  | Race_unsound -> "race-unsound"
  | Race_spurious -> "race-spurious"
  | Serve_mismatch -> "serve-mismatch"
  | Serve_chaos -> "serve-chaos"
  | Serve_persist -> "serve-persist"
  | Repair_unsound -> "repair-unsound"
  | Repair_incomplete -> "repair-incomplete"

type violation = { kind : kind; detail : string }

type verdict = Ok_run | Limit of string | Violation of violation

let pp_verdict ppf = function
  | Ok_run -> Format.pp_print_string ppf "ok"
  | Limit msg -> Format.fprintf ppf "limit (%s)" msg
  | Violation { kind; detail } -> Format.fprintf ppf "VIOLATION %s: %s" (kind_name kind) detail

let policies = [ Simt.Config.Most_threads; Simt.Config.Lowest_pc; Simt.Config.Round_robin ]

let policy_name = function
  | Simt.Config.Most_threads -> "most-threads"
  | Simt.Config.Lowest_pc -> "lowest-pc"
  | Simt.Config.Round_robin -> "round-robin"

let base_config =
  { Simt.Config.default with Simt.Config.n_warps = Gen.n_threads / 32; seed = 11 }

(* The input arrays are filled by global name, so the pattern depends
   only on the source program (the layout is fixed at lowering, before
   any mode-specific pass runs). The definition lives with the server so
   the wire protocol's [init=data] and this oracle share it exactly. *)
let init_memory = Serve.Server.data_init

(* Bit-exact memory snapshot: float cells compare by IEEE bit pattern
   (works for NaN payloads too), tagged so an int and a float holding the
   same bits cannot alias. *)
let snapshot mem =
  let n = Simt.Memsys.size mem in
  Array.map
    (function
      | T.I i -> (false, i)
      | T.F f -> (true, Int64.to_int (Int64.bits_of_float f)))
    (Simt.Memsys.dump mem ~base:0 ~len:n)

let first_diff a b =
  let rec go i =
    if i >= Array.length a || i >= Array.length b then None
    else if a.(i) <> b.(i) then Some i
    else go (i + 1)
  in
  if Array.length a <> Array.length b then Some (min (Array.length a) (Array.length b)) else go 0

let round_trip ast =
  let src = Front.Pretty.to_string ast in
  match Front.Parser.parse_string src with
  | reparsed ->
    if Front.Pretty.equal_program ast reparsed then None
    else Some { kind = Round_trip; detail = "re-parsed program differs structurally" }
  | exception Front.Parser.Parse_error (p, msg) ->
    Some
      { kind = Round_trip;
        detail = Format.asprintf "pretty output does not parse: %a: %s" Front.Ast.pp_pos p msg }
  | exception Front.Lexer.Lex_error (p, msg) ->
    Some
      { kind = Round_trip;
        detail = Format.asprintf "pretty output does not lex: %a: %s" Front.Ast.pp_pos p msg }

exception Stop of verdict

(* Only parameterless kernels can run under the matrix (there is nothing
   to pass for the others); the generator emits exactly those. *)
let runnable_kernels (linear : Ir.Linear.t) =
  List.filter (fun (kf : Ir.Linear.finfo) -> kf.Ir.Linear.arity = 0) linear.Ir.Linear.kernels

(* Serve tier: the same program goes through the srserved engine — a
   cold pass (empty cache, every kernel's first sight is a miss) then a
   warm pass (the artifact is cached, every launch must hit) — and every
   response line must be byte-identical to one rebuilt from the one-shot
   Core.Compile + Core.Runner stages: same metrics, same memory digest,
   and cache counters proving the warm pass really served from cache.
   This catches anything the service layer could add on top of the
   pipeline it wraps: key collisions handing back the wrong artifact,
   artifacts mutated by a previous launch, counter nondeterminism,
   response misordering. *)
let serve_options =
  {
    Core.Compile.mode = Core.Compile.Speculative Passes.Deconflict.Dynamic;
    coarsen = None;
    threshold = Core.Compile.Keep;
    cleanup = true;
    deconflict = true;
    lint = true;
    race = true;
    repair = Core.Compile.No_repair;
  }

let serve_matrix ~max_issues ast (linear : Ir.Linear.t) =
  match runnable_kernels linear with
  | [] -> ()
  | kernels ->
    let source = Front.Pretty.to_string ast in
    let server = Serve.Server.create ~cache_capacity:8 ~max_issues () in
    let compiled =
      try Ok (Core.Compile.compile serve_options ~source) with exn -> Error exn
    in
    let config = { base_config with Simt.Config.max_issues } in
    (* Mirror of the server's counter discipline: the artifact is keyed
       by source + compile fields only, so the program's first request is
       the one miss and every later request (any kernel, either pass) a
       hit. Counters advance at cache-resolution time, before the launch
       — a launch failure still consumed its hit or miss. *)
    let hits = ref 0 and misses = ref 0 in
    let expected rid (kf : Ir.Linear.finfo) =
      let oneshot () =
        match compiled with
        | Error exn -> raise exn
        | Ok artifact ->
          let cache =
            if !misses = 0 then begin misses := 1; Sp.Miss end
            else begin incr hits; Sp.Hit end
          in
          let outcome =
            Core.Runner.launch ~config ~init:Serve.Server.data_init
              ~entry:kf.Ir.Linear.fname artifact ~args:[]
          in
          let m = outcome.Core.Runner.metrics in
          Sp.Ok_run
            {
              Sp.rid;
              cache;
              hits = !hits;
              misses = !misses;
              evictions = 0;
              cycles = m.Simt.Metrics.cycles;
              issues = m.Simt.Metrics.issues;
              active = m.Simt.Metrics.active_sum;
              finished = m.Simt.Metrics.threads_finished;
              digest = Simt.Memsys.digest outcome.Core.Runner.memory;
            }
      in
      match oneshot () with
      | resp -> resp
      | exception exn -> (
        match Core.Cli.classify exn with
        | Some outcome ->
          let kind, msg = Serve.Server.outcome_kind_and_message outcome in
          Sp.Error { rid; code = Core.Cli.exit_code outcome; kind; msg }
        | None -> raise exn)
    in
    let n = List.length kernels in
    List.iter
      (fun pass ->
        let reqs =
          List.mapi (fun i kf -> ((pass * n) + i, kf)) kernels
        in
        let actual =
          Serve.Server.submit server
            (List.map
               (fun (rid, (kf : Ir.Linear.finfo)) ->
                 Sp.Run
                   (Sp.make_request ~id:rid ~warps:base_config.Simt.Config.n_warps
                      ~seed:base_config.Simt.Config.seed ~entry:kf.Ir.Linear.fname
                      ~init:"data" ~source ()))
               reqs)
        in
        List.iter2
          (fun (rid, (kf : Ir.Linear.finfo)) got ->
            let got = Sp.print_response got and want = Sp.print_response (expected rid kf) in
            if not (String.equal got want) then
              raise
                (Stop
                   (Violation
                      {
                        kind = Serve_mismatch;
                        detail =
                          Printf.sprintf
                            "%s pass, kernel %s: served response differs from the one-shot \
                             pipeline\n  served:   %s\n  one-shot: %s"
                            (if pass = 0 then "cold" else "warm")
                            kf.Ir.Linear.fname got want;
                      })))
          reqs actual)
      [ 0; 1 ]

(* Chaos tier: a lint-clean program already proven mode- and
   schedule-independent by the main matrix must ALSO survive fault
   injection — scheduler perturbations, memory-latency spikes, spurious
   releases, forced stalls — with yield recovery on, and still produce
   memory bit-identical to the unfaulted PDOM baseline. Generated
   programs are schedule-independent by construction and spurious
   releases only shrink participation, so any divergence is a simulator
   bug; and a checker-clean program can never truly stall, so any yield
   the watchdog fires is a false stall detection ({!Spurious_yield}) —
   the runtime-side cross-validation of srlint. *)
let chaos_matrix ~max_issues ~chaos ~chaos_seed (staged : (Pipeline.mode * Pipeline.staged) list)
    =
  let _, specrecon = List.find (fun (m, _) -> m = Pipeline.Specrecon) staged in
  let _, baseline = List.find (fun (m, _) -> m = Pipeline.Baseline) staged in
  List.iteri
    (fun ki (kf : Ir.Linear.finfo) ->
      let run_baseline () =
        let config = { base_config with Simt.Config.max_issues } in
        Simt.Interp.run config baseline.Pipeline.decoded ~entry:kf.Ir.Linear.fname ~args:[]
          ~init_memory:(init_memory baseline.Pipeline.program)
      in
      let reference =
        try
          let r = run_baseline () in
          (snapshot r.Simt.Interp.memory, r.Simt.Interp.metrics.Simt.Metrics.threads_finished)
        with Simt.Interp.Runaway msg ->
          raise (Stop (Limit (Printf.sprintf "chaos baseline/%s: %s" kf.Ir.Linear.fname msg)))
      in
      for plan = 0 to chaos - 1 do
        let policy = List.nth policies (plan mod List.length policies) in
        let where =
          Printf.sprintf "chaos plan %d (%s) kernel %s" plan (policy_name policy)
            kf.Ir.Linear.fname
        in
        let fault_seed =
          let rng = Sm.of_ints chaos_seed plan ki in
          Sm.int rng 0x3fffffff
        in
        let faults = Simt.Faults.create ~seed:fault_seed () in
        let config =
          { base_config with
            Simt.Config.policy;
            max_issues;
            yield_on_stall = true;
            yield_policy = Simt.Config.Oldest_arrival }
        in
        (* Re-execute under a replayed (sub)trace — the trace shrinker's
           predicate runner. *)
        let replay_run events =
          let f = Simt.Faults.replay events in
          match
            Simt.Interp.run ~faults:f config specrecon.Pipeline.decoded
              ~entry:kf.Ir.Linear.fname ~args:[]
              ~init_memory:(init_memory specrecon.Pipeline.program)
          with
          | r -> Some r
          | exception (Simt.Interp.Deadlock _ | Simt.Interp.Runtime_error _ | Simt.Interp.Runaway _)
            ->
            None
        in
        (* The minimal sub-trace still provoking [pred]: what the
           violation detail prints, so a repro starts from the fewest
           faults that matter (each candidate costs a simulation, hence
           the small budget). *)
        let minimal_trace faults pred =
          Shrink.shrink_trace ~budget:48 (Simt.Faults.events faults)
            ~still_failing:(fun evs ->
              match replay_run evs with Some r -> pred r | None -> false)
        in
        let result =
          try
            Simt.Interp.run ~faults config specrecon.Pipeline.decoded
              ~entry:kf.Ir.Linear.fname ~args:[]
              ~init_memory:(init_memory specrecon.Pipeline.program)
          with
          | Simt.Interp.Deadlock msg ->
            raise
              (Stop
                 (Violation
                    { kind = Chaos_divergence;
                      detail =
                        Printf.sprintf "%s: deadlock despite yield recovery: %s" where msg }))
          | Simt.Interp.Runtime_error msg ->
            raise
              (Stop
                 (Violation
                    { kind = Chaos_divergence;
                      detail = Printf.sprintf "%s: runtime error under faults: %s" where msg }))
          | Simt.Interp.Runaway msg -> raise (Stop (Limit (Printf.sprintf "%s: %s" where msg)))
        in
        let yields = result.Simt.Interp.metrics.Simt.Metrics.yields in
        if yields > 0 then
          raise
            (Stop
               (Violation
                  { kind = Spurious_yield;
                    detail =
                      Printf.sprintf
                        "%s: %d yield(s) on a checker-clean program (fault seed %d, minimal \
                         trace:\n\
                         %s)"
                        where yields fault_seed
                        (Simt.Faults.trace_to_string
                           (minimal_trace faults (fun r ->
                                r.Simt.Interp.metrics.Simt.Metrics.yields > 0))) }));
        let ref_snap, ref_finished = reference in
        let finished = result.Simt.Interp.metrics.Simt.Metrics.threads_finished in
        if finished <> ref_finished then
          raise
            (Stop
               (Violation
                  { kind = Chaos_divergence;
                    detail =
                      Printf.sprintf
                        "%s: finished %d threads, unfaulted baseline finished %d (fault seed \
                         %d)"
                        where finished ref_finished fault_seed }));
        match first_diff ref_snap (snapshot result.Simt.Interp.memory) with
        | None -> ()
        | Some addr ->
          raise
            (Stop
               (Violation
                  { kind = Chaos_divergence;
                    detail =
                      Printf.sprintf
                        "%s: memory differs from unfaulted baseline at address %d (fault seed \
                         %d, minimal trace:\n%s)"
                        where addr fault_seed
                        (Simt.Faults.trace_to_string
                           (minimal_trace faults (fun r ->
                                first_diff ref_snap (snapshot r.Simt.Interp.memory) <> None))) }))
      done)
    (runnable_kernels specrecon.Pipeline.linear)

let check ?(max_issues = 1_500_000) ?(chaos = 0) ?(chaos_seed = 0xc4a05) ast =
  match round_trip ast with
  | Some v -> Violation v
  | None -> (
    let compiled =
      try
        Ok
          (List.map
             (fun mode -> (mode, Pipeline.compile ~mode ast))
             [ Pipeline.Baseline; Pipeline.Specrecon ])
      with Pipeline.Stage_error (stage, msg) ->
        Error { kind = Stage_failure; detail = Printf.sprintf "%s: %s" stage msg }
    in
    match compiled with
    | Error v -> Violation v
    | Ok staged -> (
      (* Per-kernel reference row: every (mode, policy) cell must match
         the first run of the same kernel. *)
      let reference = Hashtbl.create 4 in
      (* The race differential: every matrix cell runs under the
         shadow-memory logger. A dynamic race on a mode whose static
         pass came back empty is a soundness hole (race-unsound, caught
         at the cell); a static finding on a program no cell of the
         whole matrix — both modes, all three schedulers — dynamically
         realizes is a false alarm (race-spurious, checked after the
         matrix). *)
      let dynamic_race = ref false in
      try
        List.iter
          (fun (mode, (s : Pipeline.staged)) ->
            List.iter
              (fun policy ->
                List.iter
                  (fun (kf : Ir.Linear.finfo) ->
                    let kname = kf.Ir.Linear.fname in
                    let where =
                      Printf.sprintf "%s/%s/%s" (Pipeline.mode_name mode) (policy_name policy)
                        kname
                    in
                    let config = { base_config with Simt.Config.policy; max_issues } in
                    let race_log =
                      Simt.Race_log.create ~size:s.Pipeline.program.T.mem_size
                        ~n_warps:config.Simt.Config.n_warps ()
                    in
                    let result =
                      try
                        Simt.Interp.run ~race:race_log config s.decoded ~entry:kname ~args:[]
                          ~init_memory:(init_memory s.program)
                      with
                      | Simt.Interp.Deadlock msg ->
                        (* Any deadlock is a violation; one srlint failed
                           to predict is also a soundness hole in the
                           checker. *)
                        let kind, msg =
                          if s.Pipeline.lint = [] then
                            ( Lint_unsound,
                              Printf.sprintf "simulator deadlocked but srlint was clean: %s" msg
                            )
                          else (Deadlock, msg)
                        in
                        raise
                          (Stop
                             (Violation { kind; detail = Printf.sprintf "%s: %s" where msg }))
                      | Simt.Interp.Runtime_error msg ->
                        raise
                          (Stop
                             (Violation
                                { kind = Runtime_error;
                                  detail = Printf.sprintf "%s: %s" where msg }))
                      | Simt.Interp.Runaway msg ->
                        raise (Stop (Limit (Printf.sprintf "%s: %s" where msg)))
                    in
                    let snap = snapshot result.Simt.Interp.memory in
                    let finished =
                      result.Simt.Interp.metrics.Simt.Metrics.threads_finished
                    in
                    if Simt.Race_log.total race_log > 0 then begin
                      dynamic_race := true;
                      if s.Pipeline.race = [] then
                        raise
                          (Stop
                             (Violation
                                { kind = Race_unsound;
                                  detail =
                                    Printf.sprintf
                                      "%s: shadow logger observed %d race(s) but srrace was \
                                       clean; first: %s"
                                      where
                                      (Simt.Race_log.total race_log)
                                      (match Simt.Race_log.events race_log with
                                      | ev :: _ ->
                                        Format.asprintf "%a" Simt.Race_log.pp_event ev
                                      | [] -> "(no retained events)") }))
                    end;
                    match Hashtbl.find_opt reference kname with
                    | None -> Hashtbl.replace reference kname (where, snap, finished)
                    | Some (ref_where, ref_snap, ref_finished) ->
                      if finished <> ref_finished then
                        raise
                          (Stop
                             (Violation
                                { kind = Result_divergence;
                                  detail =
                                    Printf.sprintf "%s finished %d threads, %s finished %d"
                                      ref_where ref_finished where finished }));
                      (match first_diff ref_snap snap with
                      | None -> ()
                      | Some addr ->
                        raise
                          (Stop
                             (Violation
                                { kind = Result_divergence;
                                  detail =
                                    Printf.sprintf
                                      "memory differs between %s and %s at address %d" ref_where
                                      where addr }))))
                  (runnable_kernels s.linear))
              policies)
          staged;
        (* Precision side of the soundness oracle: the whole matrix
           completed without deadlock under every scheduler, so any
           remaining finding is a false alarm. *)
        match
          List.find_opt (fun (_, (s : Pipeline.staged)) -> s.Pipeline.lint <> []) staged
        with
        | Some (mode, s) ->
          let f = List.hd s.Pipeline.lint in
          Violation
            {
              kind = Lint_spurious;
              detail =
                Printf.sprintf "%s ran deadlock-free everywhere, yet: %s"
                  (Pipeline.mode_name mode)
                  (Format.asprintf "%a" Analysis.Barrier_safety.pp_machine f);
            }
        | None -> (
          (* Race precision: the whole matrix ran with the shadow
             logger armed — both modes, all three schedulers — and no
             cell realized a race, so a surviving static race finding
             is a false alarm. *)
          match
            (if !dynamic_race then None
             else
               List.find_opt
                 (fun (_, (s : Pipeline.staged)) -> s.Pipeline.race <> [])
                 staged)
          with
          | Some (mode, s) ->
            let f = List.hd s.Pipeline.race in
            Violation
              {
                kind = Race_spurious;
                detail =
                  Printf.sprintf "no cell of the matrix realized a race, yet %s: %s"
                    (Pipeline.mode_name mode)
                    (Format.asprintf "%a" Analysis.Race_safety.pp_machine f);
              }
          | None ->
          (* Serve tier: clean programs must come back from the batched
             service byte-identical to the one-shot pipeline, cold and
             warm. *)
          let _, specrecon = List.find (fun (m, _) -> m = Pipeline.Specrecon) staged in
          serve_matrix ~max_issues ast specrecon.Pipeline.linear;
          (* Only lint-clean programs reach the chaos tier, so the
             zero-yields contract applies unconditionally. *)
          if chaos > 0 then chaos_matrix ~max_issues ~chaos ~chaos_seed staged;
          Ok_run)
      with Stop v -> v))

(* ------------------------------------------------------------------ *)
(* Repair tier                                                         *)
(* ------------------------------------------------------------------ *)

(* The repair oracles: manufacture misplaced variants of a clean
   speculative compilation with {!Misplace}, then hold
   Analysis.Barrier_repair to its contract on each flagged variant.

   - repair-incomplete: every finding set must produce an outcome — a
     repair or an explicit Unrepairable naming the blocking finding; a
     "repaired" program srlint still flags is the repair pass lying
     about its own acceptance condition.
   - repair-unsound: an accepted repair must also hold dynamically —
     verifier-clean, deadlock-free without yield under all three
     schedulers, and memory bit-identical to the unfaulted PDOM
     baseline. Generated programs are schedule-independent by
     construction, so any divergence is introduced by the edits. *)
let default_mut_seed = 0xf1c5

let check_repair ?(max_issues = 1_500_000) ?(variants = 3) ?(mut_seed = default_mut_seed)
    ?(id = 0) ast =
  let compiled =
    try
      Ok
        ( Pipeline.compile ~mode:Pipeline.Baseline ast,
          Pipeline.compile ~mode:Pipeline.Specrecon ast )
    with Pipeline.Stage_error (stage, msg) ->
      Error { kind = Stage_failure; detail = Printf.sprintf "%s: %s" stage msg }
  in
  match compiled with
  | Error v -> Violation v
  | Ok (baseline, specrecon) when baseline.Pipeline.lint = [] && specrecon.Pipeline.lint = []
    -> (
    let speculative = specrecon.Pipeline.speculative in
    (* Per-kernel PDOM reference images (first policy; the standard
       matrix already proves baseline schedule-independence). *)
    let reference =
      List.map
        (fun (kf : Ir.Linear.finfo) ->
          let config = { base_config with Simt.Config.max_issues } in
          let r =
            Simt.Interp.run config baseline.Pipeline.decoded ~entry:kf.Ir.Linear.fname
              ~args:[]
              ~init_memory:(init_memory baseline.Pipeline.program)
          in
          (kf.Ir.Linear.fname, snapshot r.Simt.Interp.memory))
        (runnable_kernels baseline.Pipeline.linear)
    in
    try
      for v = 0 to variants - 1 do
        let rng = Sm.of_ints mut_seed id v in
        match Misplace.mutate rng specrecon.Pipeline.program with
        | None -> ()
        | Some (mname, mutant) -> (
          match Analysis.Barrier_safety.check ~speculative mutant with
          | [] -> () (* benign misplacement; nothing for the repair pass to do *)
          | pre_findings -> (
            let where = Printf.sprintf "variant %d (%s)" v mname in
            match Analysis.Barrier_repair.repair ~speculative mutant with
            | Analysis.Barrier_repair.Clean ->
              raise
                (Stop
                   (Violation
                      {
                        kind = Repair_incomplete;
                        detail =
                          Printf.sprintf
                            "%s: repair claims the program is already clean, but srlint \
                             reports %d finding(s): %s"
                            where
                            (List.length pre_findings)
                            (Format.asprintf "%a" Analysis.Barrier_safety.pp_machine
                               (List.hd pre_findings));
                      }))
            | Analysis.Barrier_repair.Unrepairable { blocking = _; explored = _ } ->
              (* Acceptable outcome: the contract only requires the
                 blocking finding to be named, which the constructor
                 carries by type. *)
              ()
            | Analysis.Barrier_repair.Repaired { program = repaired; edits; _ } -> (
              let plan = Analysis.Barrier_repair.render_edits edits in
              (match Analysis.Barrier_safety.check ~speculative repaired with
              | [] -> ()
              | f :: _ ->
                raise
                  (Stop
                     (Violation
                        {
                          kind = Repair_unsound;
                          detail =
                            Printf.sprintf
                              "%s: repaired program is still flagged: %s\nplan:\n%s" where
                              (Format.asprintf "%a" Analysis.Barrier_safety.pp_machine f)
                              plan;
                        })));
              match Ir.Verifier.check_program repaired with
              | _ :: _ as errors ->
                raise
                  (Stop
                     (Violation
                        {
                          kind = Repair_unsound;
                          detail =
                            Printf.sprintf "%s: repaired program fails the verifier: %s" where
                              (String.concat "; "
                                 (List.map
                                    (Format.asprintf "%a" Ir.Verifier.pp_error)
                                    errors));
                        }))
              | [] ->
                let linear = Ir.Linear.linearize repaired in
                let decoded = Ir.Decoded.decode linear in
                List.iter
                  (fun policy ->
                    List.iter
                      (fun (kf : Ir.Linear.finfo) ->
                        let kname = kf.Ir.Linear.fname in
                        let cell =
                          Printf.sprintf "%s, %s/%s" where (policy_name policy) kname
                        in
                        let config =
                          { base_config with Simt.Config.policy; max_issues }
                        in
                        let result =
                          try
                            Simt.Interp.run config decoded ~entry:kname ~args:[]
                              ~init_memory:(init_memory repaired)
                          with
                          | Simt.Interp.Deadlock msg ->
                            raise
                              (Stop
                                 (Violation
                                    {
                                      kind = Repair_unsound;
                                      detail =
                                        Printf.sprintf
                                          "%s: accepted repair deadlocked: %s\nplan:\n%s"
                                          cell msg plan;
                                    }))
                          | Simt.Interp.Runtime_error msg ->
                            raise
                              (Stop
                                 (Violation
                                    {
                                      kind = Repair_unsound;
                                      detail =
                                        Printf.sprintf
                                          "%s: accepted repair raised a runtime error: \
                                           %s\nplan:\n%s"
                                          cell msg plan;
                                    }))
                          | Simt.Interp.Runaway msg ->
                            raise (Stop (Limit (Printf.sprintf "%s: %s" cell msg)))
                        in
                        match List.assoc_opt kname reference with
                        | None -> ()
                        | Some ref_snap -> (
                          match
                            first_diff ref_snap (snapshot result.Simt.Interp.memory)
                          with
                          | None -> ()
                          | Some addr ->
                            raise
                              (Stop
                                 (Violation
                                    {
                                      kind = Repair_unsound;
                                      detail =
                                        Printf.sprintf
                                          "%s: repaired memory differs from the PDOM \
                                           baseline at address %d\nplan:\n%s"
                                          cell addr plan;
                                    }))))
                      (runnable_kernels linear))
                  policies)))
      done;
      Ok_run
    with Stop v -> v)
  | Ok ((_, specrecon) as _staged) ->
    (* The unmutated program is itself flagged — the standard tier owns
       that contract (lint-spurious); skip it here. *)
    Limit
      (Printf.sprintf "repair tier skipped: unmutated program has %d finding(s)"
         (List.length specrecon.Pipeline.lint))
