module T = Ir.Types
module Sm = Support.Splitmix

type kind =
  | Round_trip
  | Stage_failure
  | Deadlock
  | Runtime_error
  | Result_divergence
  | Lint_unsound
  | Lint_spurious

let kind_name = function
  | Round_trip -> "round-trip"
  | Stage_failure -> "stage-failure"
  | Deadlock -> "deadlock"
  | Runtime_error -> "runtime-error"
  | Result_divergence -> "result-divergence"
  | Lint_unsound -> "lint-unsound"
  | Lint_spurious -> "lint-spurious"

type violation = { kind : kind; detail : string }

type verdict = Ok_run | Limit of string | Violation of violation

let pp_verdict ppf = function
  | Ok_run -> Format.pp_print_string ppf "ok"
  | Limit msg -> Format.fprintf ppf "limit (%s)" msg
  | Violation { kind; detail } -> Format.fprintf ppf "VIOLATION %s: %s" (kind_name kind) detail

let policies = [ Simt.Config.Most_threads; Simt.Config.Lowest_pc; Simt.Config.Round_robin ]

let policy_name = function
  | Simt.Config.Most_threads -> "most-threads"
  | Simt.Config.Lowest_pc -> "lowest-pc"
  | Simt.Config.Round_robin -> "round-robin"

let base_config =
  { Simt.Config.default with Simt.Config.n_warps = Gen.n_threads / 32; seed = 11 }

(* The input arrays are filled by global name, so the pattern depends
   only on the source program (the layout is fixed at lowering, before
   any mode-specific pass runs). *)
let init_memory (program : T.program) mem =
  Hashtbl.iter
    (fun name (base, size) ->
      match name with
      | "datai" ->
        let rng = Sm.of_ints 0xda7a base 1 in
        for i = 0 to size - 1 do
          Simt.Memsys.write mem (base + i) (T.I (Sm.int rng 1024 - 256))
        done
      | "dataf" ->
        let rng = Sm.of_ints 0xda7a base 2 in
        for i = 0 to size - 1 do
          Simt.Memsys.write mem (base + i) (T.F (Sm.float rng *. 4.0 -. 1.0))
        done
      | _ -> ())
    program.T.globals

(* Bit-exact memory snapshot: float cells compare by IEEE bit pattern
   (works for NaN payloads too), tagged so an int and a float holding the
   same bits cannot alias. *)
let snapshot mem =
  let n = Simt.Memsys.size mem in
  Array.map
    (function
      | T.I i -> (false, i)
      | T.F f -> (true, Int64.to_int (Int64.bits_of_float f)))
    (Simt.Memsys.dump mem ~base:0 ~len:n)

let first_diff a b =
  let rec go i =
    if i >= Array.length a || i >= Array.length b then None
    else if a.(i) <> b.(i) then Some i
    else go (i + 1)
  in
  if Array.length a <> Array.length b then Some (min (Array.length a) (Array.length b)) else go 0

let round_trip ast =
  let src = Front.Pretty.to_string ast in
  match Front.Parser.parse_string src with
  | reparsed ->
    if Front.Pretty.equal_program ast reparsed then None
    else Some { kind = Round_trip; detail = "re-parsed program differs structurally" }
  | exception Front.Parser.Parse_error (p, msg) ->
    Some
      { kind = Round_trip;
        detail = Format.asprintf "pretty output does not parse: %a: %s" Front.Ast.pp_pos p msg }
  | exception Front.Lexer.Lex_error (p, msg) ->
    Some
      { kind = Round_trip;
        detail = Format.asprintf "pretty output does not lex: %a: %s" Front.Ast.pp_pos p msg }

exception Stop of verdict

let check ?(max_issues = 1_500_000) ast =
  match round_trip ast with
  | Some v -> Violation v
  | None -> (
    let compiled =
      try
        Ok
          (List.map
             (fun mode -> (mode, Pipeline.compile ~mode ast))
             [ Pipeline.Baseline; Pipeline.Specrecon ])
      with Pipeline.Stage_error (stage, msg) ->
        Error { kind = Stage_failure; detail = Printf.sprintf "%s: %s" stage msg }
    in
    match compiled with
    | Error v -> Violation v
    | Ok staged -> (
      let reference = ref None in
      try
        List.iter
          (fun (mode, (s : Pipeline.staged)) ->
            List.iter
              (fun policy ->
                let where =
                  Printf.sprintf "%s/%s" (Pipeline.mode_name mode) (policy_name policy)
                in
                let config = { base_config with Simt.Config.policy; max_issues } in
                let result =
                  try
                    Simt.Interp.run config s.linear ~args:[]
                      ~init_memory:(init_memory s.program)
                  with
                  | Simt.Interp.Deadlock msg ->
                    (* Any deadlock is a violation; one srlint failed to
                       predict is also a soundness hole in the checker. *)
                    let kind, msg =
                      if s.Pipeline.lint = [] then
                        ( Lint_unsound,
                          Printf.sprintf "simulator deadlocked but srlint was clean: %s" msg )
                      else (Deadlock, msg)
                    in
                    raise
                      (Stop
                         (Violation { kind; detail = Printf.sprintf "%s: %s" where msg }))
                  | Simt.Interp.Runtime_error msg ->
                    raise
                      (Stop
                         (Violation
                            { kind = Runtime_error; detail = Printf.sprintf "%s: %s" where msg }))
                  | Simt.Interp.Runaway msg ->
                    raise (Stop (Limit (Printf.sprintf "%s: %s" where msg)))
                in
                let snap = snapshot result.Simt.Interp.memory in
                let finished = result.Simt.Interp.metrics.Simt.Metrics.threads_finished in
                match !reference with
                | None -> reference := Some (where, snap, finished)
                | Some (ref_where, ref_snap, ref_finished) ->
                  if finished <> ref_finished then
                    raise
                      (Stop
                         (Violation
                            { kind = Result_divergence;
                              detail =
                                Printf.sprintf "%s finished %d threads, %s finished %d" ref_where
                                  ref_finished where finished }));
                  (match first_diff ref_snap snap with
                  | None -> ()
                  | Some addr ->
                    raise
                      (Stop
                         (Violation
                            { kind = Result_divergence;
                              detail =
                                Printf.sprintf "memory differs between %s and %s at address %d"
                                  ref_where where addr }))))
              policies)
          staged;
        (* Precision side of the soundness oracle: the whole matrix
           completed without deadlock under every scheduler, so any
           remaining finding is a false alarm. *)
        (match
           List.find_opt (fun (_, (s : Pipeline.staged)) -> s.Pipeline.lint <> []) staged
         with
        | Some (mode, s) ->
          let f = List.hd s.Pipeline.lint in
          Violation
            {
              kind = Lint_spurious;
              detail =
                Printf.sprintf "%s ran deadlock-free everywhere, yet: %s"
                  (Pipeline.mode_name mode)
                  (Format.asprintf "%a" Analysis.Barrier_safety.pp_machine f);
            }
        | None -> Ok_run)
      with Stop v -> v))
