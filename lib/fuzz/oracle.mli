(** Differential oracles over one MiniSIMT program.

    [check] runs the full pipeline of correctness contracts this
    repository claims:

    + {b Round trip} — [Front.Parser.parse_string (Front.Pretty.to_string
      ast)] must be structurally equal to [ast] ({!Front.Pretty}'s
      documented contract).
    + {b Stage health} — lowering and every synchronization pass must
      leave the IR {!Ir.Verifier}-clean, in both compilation modes
      ({!Pipeline}).
    + {b Mode/schedule independence} — the final memory image and the
      per-thread PRNG-stream consumption must be byte-identical between
      the PDOM-only baseline and the speculative-reconvergence
      compilation, under every scheduler policy (the {!Simt.Interp}
      determinism contract, §4.2–4.3 of the paper).
    + {b No deadlock, no runtime error} — a deconflicted program must
      never raise {!Simt.Interp.Deadlock}, and a generated program never
      {!Simt.Interp.Runtime_error}.
    + {b srlint soundness} — {!Analysis.Barrier_safety} must agree with
      the simulator: a deadlock on a checker-clean program is
      {!Lint_unsound} (a hole in the static abstraction); a finding on a
      program that completes under both modes and all three schedulers
      is {!Lint_spurious} (a false alarm that would break clean builds,
      since the checker is a mandatory {!Core.Compile} stage).
    + {b srrace differential} — every matrix cell runs under the
      shadow-memory race logger ({!Simt.Race_log}). A dynamic race on a
      mode whose static {!Analysis.Race_safety} pass came back clean is
      {!Race_unsound} (a hole in the access abstraction, raised at the
      offending cell); a static race finding on a program no cell of the
      whole matrix — both modes, all three schedulers — dynamically
      realizes is {!Race_spurious} (a false alarm that would break clean
      builds, since [srcc --race] gates on findings).
    + {b Serve fidelity} — every clean program is additionally submitted
      through an in-process srserved engine ({!Serve.Server}), cold
      (empty compile cache) then warm (artifact cached): each response
      line must be byte-identical to one rebuilt from the one-shot
      {!Core.Compile} + {!Core.Runner} stages, including the echoed
      cache counters — the warm pass must prove it really served the
      cached {!Ir.Decoded} artifact ({!Serve_mismatch} otherwise).

    With [~chaos:n > 0], a program that passes everything above also
    enters the {b chaos tier}: [n] seeded fault-injection plans
    ({!Simt.Faults} — scheduler perturbations, memory-latency spikes,
    spurious barrier releases, forced stalls) run against the
    speculative build with yield recovery enabled. Each faulted run must
    produce memory bit-identical to the unfaulted PDOM baseline
    ({!Chaos_divergence} otherwise), and — because only lint-clean
    programs reach this tier — must complete with {e zero} yields: a
    checker-clean program can never truly stall, so a yield is the
    watchdog misfiring ({!Spurious_yield}).

    Every parameterless kernel of a multi-kernel program goes through
    the full matrix (and chaos tier) independently, as its own entry
    point (kernels with parameters are skipped — the oracle has no
    arguments to pass them).

    {!Simt.Interp.Runaway} (the [max_issues] budget) is {e not} a
    violation: it is the fuzzer's liveness cap, reported as {!Limit} so a
    campaign can account for skipped programs honestly. *)

type kind =
  | Round_trip  (** pretty-printed source re-parses differently (or not at all) *)
  | Stage_failure  (** a pass raised, or left the IR verifier-unclean *)
  | Deadlock  (** conflicting barriers stalled the machine (srlint saw it too) *)
  | Runtime_error  (** type error, out-of-bounds access, division by zero *)
  | Result_divergence  (** memory images differ across modes/policies *)
  | Lint_unsound  (** simulator deadlocked on a program srlint passed as clean *)
  | Lint_spurious  (** srlint flagged a program that runs deadlock-free everywhere *)
  | Chaos_divergence
      (** a faulted yield-enabled run deadlocked, errored, or produced
          memory differing from the unfaulted PDOM baseline *)
  | Spurious_yield
      (** yield recovery fired on a checker-clean program under faults *)
  | Race_unsound
      (** the shadow-memory logger observed a data race in a matrix cell
          whose mode the static race checker passed as clean *)
  | Race_spurious
      (** srrace flagged a program that no cell of the whole run matrix
          dynamically races on, under any mode or scheduler *)
  | Serve_mismatch
      (** the srserved engine answered a request differently from the
          one-shot [Core.Compile] + [Core.Runner] pipeline — wrong
          metrics, wrong memory digest, or cache counters that do not
          match the cold-then-warm submission order *)
  | Serve_chaos
      (** a socket server under a seeded transport-fault plan
          ({!Serve.Faults}: torn lines, slow-loris sends, injected fuel
          budgets, vanishing clients) answered an undisturbed request
          differently from the clean server's byte-identical stream, or
          a fuel-faulted request with something other than the clean
          response or a well-formed [deadline] (see
          {!Serve_chaos.check_transport}) *)
  | Serve_persist
      (** a kill-9'd-then-restarted server over the same persistent
          store answered a replayed trace differently from its pre-kill
          run, failed to serve warm from the store, or mis-counted
          injected store corruption (see {!Serve_chaos.check_persist}) *)
  | Repair_unsound
      (** an accepted [--fix] repair failed its own contract: the
          repaired program is still flagged by srlint, fails the
          verifier, deadlocks or errors without yield under some
          scheduler, or produces memory differing from the unfaulted
          PDOM baseline *)
  | Repair_incomplete
      (** the repair pass produced no outcome for a flagged variant —
          it claimed the program was already clean while srlint
          disagreed (an unrepairable verdict naming the blocking finding
          is an acceptable outcome, not a violation) *)

val kind_name : kind -> string

type violation = { kind : kind; detail : string }

type verdict =
  | Ok_run  (** every oracle passed *)
  | Limit of string  (** a run exhausted the issue budget; program skipped *)
  | Violation of violation

val pp_verdict : Format.formatter -> verdict -> unit

(** The interpreter configurations the differential matrix uses: 2 warps
    of 32 threads ([Gen.n_threads] total) under each scheduler policy. *)
val policies : Simt.Config.policy list

val policy_name : Simt.Config.policy -> string

val base_config : Simt.Config.t

(** Deterministic fill for the read-only [datai]/[dataf] input arrays —
    identical across modes because the global layout is fixed at lowering. *)
val init_memory : Ir.Types.program -> Simt.Memsys.t -> unit

(** Bit-exact memory image: float cells by IEEE bit pattern, tagged so an
    int and a float holding the same bits cannot alias. *)
val snapshot : Simt.Memsys.t -> (bool * int) array

(** Index of the first differing cell (or the shorter length on a size
    mismatch); [None] when the images are identical. *)
val first_diff : (bool * int) array -> (bool * int) array -> int option

(** The parameterless kernels — the entry points the run matrix can
    launch (there is nothing to pass the others). *)
val runnable_kernels : Ir.Linear.t -> Ir.Linear.finfo list

(** [check ast] runs every oracle and returns the first violation found
    (round trip, then staging, then the run matrix, then — for clean
    programs when [chaos > 0] — the fault-injection tier). [chaos_seed]
    (default [0xc4a05]) roots the per-plan fault seeds, so a campaign is
    replayed exactly by its [(seed, chaos, chaos_seed)] coordinates. *)
val check : ?max_issues:int -> ?chaos:int -> ?chaos_seed:int -> Front.Ast.program -> verdict

(** Root seed for the misplacement mutator (0xf1c5); a repair campaign
    is replayed exactly by its [(seed, variants, mut_seed)] coordinates. *)
val default_mut_seed : int

(** [check_repair ~id ast] runs the repair tier on one generated
    program: compile both modes; skip (as {!Limit}) if the unmutated
    program is already flagged; then for each of [variants] (default 3)
    seeded {!Misplace} mutants of the speculative build whose
    misplacement srlint flags, require {!Analysis.Barrier_repair} to
    either repair it — re-check clean, verifier-clean, deadlock-free
    without yield under all three schedulers, memory bit-identical to
    the unfaulted PDOM baseline ({!Repair_unsound} otherwise) — or
    report it unrepairable with the blocking finding named
    ({!Repair_incomplete} when it does neither). [id] distinguishes
    programs of one campaign in the mutation stream. *)
val check_repair :
  ?max_issues:int -> ?variants:int -> ?mut_seed:int -> ?id:int -> Front.Ast.program -> verdict
