open Front.Ast
module Sm = Support.Splitmix

let n_threads = 64
let data_size = 256

type shape = If_in_loop | Trip_loop | Common_call | Mixed

let shape_name = function
  | If_in_loop -> "if-in-loop"
  | Trip_loop -> "trip-loop"
  | Common_call -> "common-call"
  | Mixed -> "mixed"

type params = { stmt_budget : int; max_depth : int }

let default_params = { stmt_budget = 14; max_depth = 3 }

type case = { id : int; shape : shape; ast : program }

(* ---- AST construction helpers (positions are synthetic) ---- *)

let pos = { line = 0; col = 0 }
let e desc = { desc; pos }
let stmt sdesc = { sdesc; spos = pos }
let ilit n = e (Int_lit n)
let flit x = e (Float_lit x)
let evar n = e (Var n)
let call f args = e (Call_expr (f, args))
let bin op a b = e (Binary (op, a, b))
let tid () = call "tid" []
let lane () = call "lane" []

(* ---- generator state and scope tracking ---- *)

type var_info = { vname : string; vty : ty; vmut : bool }

type env = {
  vars : var_info list;  (* bindings in scope, innermost first *)
  dfuncs : (string * ty) list;  (* device functions, [ty -> ty] *)
  in_loop : bool;  (* [break] is legal *)
  in_for : bool;  (* [continue] is legal (never inside the while
                     skeleton, whose manual increment it would skip) *)
  depth : int;
}

let top_env = { vars = []; dfuncs = []; in_loop = false; in_for = false; depth = 0 }

type st = { rng : Sm.t; mutable fresh : int; params : params }

let fresh st prefix =
  let n = st.fresh in
  st.fresh <- n + 1;
  Printf.sprintf "%s%d" prefix n

let pick st xs = List.nth xs (Sm.int st.rng (List.length xs))
let chance st p = Sm.float st.rng < p
let vars_of ty env = List.filter (fun v -> v.vty = ty) env.vars
let muts_of ty env = List.filter (fun v -> v.vty = ty && v.vmut) env.vars

(* Exactly representable, non-negative literals: dyadic values survive
   the parse/print round trip bit-for-bit, and the parser never produces
   a negative literal node (a leading [-] parses as [Uneg]), so only
   non-negative literals keep the generated AST parser-canonical. *)
let float_literal st = flit (float_of_int (Sm.int st.rng 49) *. 0.0625)

(* ---- expressions ----

   Every expression is safe by construction: integer divisors have the
   shape [(e % k) + (k + 1)], which lands in [2, 2k]; array reads wrap
   the index into range with [((e % n) + n) % n]. *)

let cmp_ops = [ Beq; Bne; Blt; Ble; Bgt; Bge ]

let rec int_expr st env fuel =
  let leaf () =
    let ivars = vars_of Tint env in
    let choices =
      [ (fun () -> ilit (Sm.int st.rng 10));
        (fun () -> tid ());
        (fun () -> lane ());
        (fun () -> call "nthreads" []);
        (fun () -> call "randint" [ ilit (2 + Sm.int st.rng 8) ]) ]
      @ (if ivars = [] then [] else [ (fun () -> evar (pick st ivars).vname) ])
    in
    (pick st choices) ()
  in
  if fuel <= 0 then leaf ()
  else
    match Sm.int st.rng 12 with
    | 0 | 1 ->
      bin (pick st [ Badd; Bsub; Bmul ]) (int_expr st env (fuel - 1)) (int_expr st env (fuel - 1))
    | 2 ->
      let k = 2 + Sm.int st.rng 6 in
      let divisor =
        bin Badd (bin Brem (int_expr st env (fuel - 1)) (ilit k)) (ilit (k + 1))
      in
      bin (if chance st 0.5 then Bdiv else Brem) (int_expr st env (fuel - 1)) divisor
    | 3 -> bin (pick st cmp_ops) (int_expr st env (fuel - 1)) (int_expr st env (fuel - 1))
    | 4 -> bin (pick st cmp_ops) (float_expr st env (fuel - 1)) (float_expr st env (fuel - 1))
    | 5 -> call (if chance st 0.5 then "min" else "max")
             [ int_expr st env (fuel - 1); int_expr st env (fuel - 1) ]
    | 6 ->
      bin (if chance st 0.5 then Band else Bor)
        (int_expr st env (fuel - 1)) (int_expr st env (fuel - 1))
    | 7 -> e (Unary ((if chance st 0.5 then Uneg else Unot), int_expr st env (fuel - 1)))
    | 8 -> e (Index ("datai", safe_index st env (fuel - 1)))
    | 9 -> call "int" [ float_expr st env (fuel - 1) ]
    | 10 when List.exists (fun (_, ty) -> ty = Tint) env.dfuncs ->
      let name, _ = pick st (List.filter (fun (_, ty) -> ty = Tint) env.dfuncs) in
      call name [ int_expr st env (fuel - 2) ]
    | _ -> leaf ()

and float_expr st env fuel =
  let leaf () =
    let fvars = vars_of Tfloat env in
    let choices =
      [ (fun () -> float_literal st); (fun () -> call "rand" []) ]
      @ (if fvars = [] then [] else [ (fun () -> evar (pick st fvars).vname) ])
    in
    (pick st choices) ()
  in
  if fuel <= 0 then leaf ()
  else
    match Sm.int st.rng 10 with
    | 0 | 1 ->
      bin (pick st [ Badd; Bsub; Bmul ]) (float_expr st env (fuel - 1))
        (float_expr st env (fuel - 1))
    | 2 -> bin Bdiv (float_expr st env (fuel - 1)) (float_expr st env (fuel - 1))
    | 3 -> call (pick st [ "sin"; "cos"; "fabs" ]) [ float_expr st env (fuel - 1) ]
    | 4 -> call "sqrt" [ call "fabs" [ float_expr st env (fuel - 1) ] ]
    | 5 -> call (if chance st 0.5 then "fmin" else "fmax")
             [ float_expr st env (fuel - 1); float_expr st env (fuel - 1) ]
    | 6 -> call "float" [ int_expr st env (fuel - 1) ]
    | 7 -> e (Index ("dataf", safe_index st env (fuel - 1)))
    | 8 when List.exists (fun (_, ty) -> ty = Tfloat) env.dfuncs ->
      let name, _ = pick st (List.filter (fun (_, ty) -> ty = Tfloat) env.dfuncs) in
      call name [ float_expr st env (fuel - 2) ]
    | _ -> leaf ()

and safe_index st env fuel =
  let n = ilit data_size in
  bin Brem (bin Badd (bin Brem (int_expr st env fuel) n) n) n

(* Branch and loop conditions, biased toward the divergence sources the
   paper studies (per-thread PRNG draws, lane/thread identity). *)
let rec cond st env fuel =
  match Sm.int st.rng 8 with
  | 0 | 1 -> bin Beq (call "randint" [ ilit (2 + Sm.int st.rng 6) ]) (ilit 0)
  | 2 -> bin Beq (bin Brem (lane ()) (ilit (2 + Sm.int st.rng 4))) (ilit (Sm.int st.rng 2))
  | 3 -> bin Blt (call "rand" []) (flit (0.125 *. float_of_int (1 + Sm.int st.rng 7)))
  | 4 -> bin Blt (tid ()) (int_expr st env 1)
  | 5 when fuel > 0 ->
    bin (if chance st 0.5 then Band else Bor) (cond st env (fuel - 1)) (cond st env (fuel - 1))
  | _ -> bin (pick st cmp_ops) (int_expr st env 1) (int_expr st env 1)

(* Loop bounds must keep every loop finite: literals, PRNG draws with a
   literal bound, or lane arithmetic — all bounded by construction. *)
let trip_expr st =
  match Sm.int st.rng 3 with
  | 0 -> ilit (1 + Sm.int st.rng 8)
  | 1 -> bin Badd (ilit 1) (call "randint" [ ilit (2 + Sm.int st.rng 9) ])
  | _ -> bin Badd (bin Brem (lane ()) (ilit (2 + Sm.int st.rng 5))) (ilit (Sm.int st.rng 3))

(* ---- statements ---- *)

let decl st env =
  let ty = if chance st 0.5 then Tint else Tfloat in
  let mutable_ = chance st 0.65 in
  let name = fresh st "v" in
  let init = if ty = Tint then int_expr st env 2 else float_expr st env 2 in
  let annot = if chance st 0.5 then Some ty else None in
  ( [ stmt (Decl { name; ty = annot; init; mutable_ }) ],
    { env with vars = { vname = name; vty = ty; vmut = mutable_ } :: env.vars } )

let store st env =
  if chance st 0.5 then stmt (Index_assign ("outi", tid (), int_expr st env 2))
  else stmt (Index_assign ("outf", tid (), float_expr st env 2))

(* The bounded while skeleton: a fresh counter, a bounded trip count
   evaluated once, and an unconditional increment as the last statement.
   The counter is kept out of [env], so no generated statement can touch
   it; [continue] is disabled inside (it would skip the increment). *)
let rec while_skeleton st env fuel =
  let j = fresh st "j" in
  let t = fresh st "t" in
  let benv =
    { env with
      vars = { vname = t; vty = Tint; vmut = false } :: env.vars;
      in_loop = true;
      in_for = false;
      depth = env.depth + 1 }
  in
  let body = gen_block st benv (fuel - 2) in
  [ stmt (Decl { name = j; ty = Some Tint; init = ilit 0; mutable_ = true });
    stmt (Decl { name = t; ty = None; init = trip_expr st; mutable_ = false });
    stmt
      (While
         ( bin Blt (evar j) (evar t),
           body @ [ stmt (Assign (j, bin Badd (evar j) (ilit 1))) ] )) ]

and for_skeleton st env fuel =
  let i = fresh st "i" in
  let benv =
    { env with
      vars = { vname = i; vty = Tint; vmut = false } :: env.vars;
      in_loop = true;
      in_for = true;
      depth = env.depth + 1 }
  in
  [ stmt (For { var = i; from_ = ilit 0; to_ = trip_expr st; body = gen_block st benv (fuel - 1) }) ]

and if_stmt st env fuel =
  let benv = { env with depth = env.depth + 1 } in
  let then_ = gen_block st benv (fuel / 2) in
  let else_ = if chance st 0.45 then gen_block st benv (fuel / 3) else [] in
  [ stmt (If (cond st env 1, then_, else_)) ]

and gen_stmt st env fuel =
  let deep = env.depth < st.params.max_depth in
  let int_muts = muts_of Tint env and float_muts = muts_of Tfloat env in
  let choices =
    [ (3, fun () -> let s, env' = decl st env in (s, env', 1));
      (1, fun () -> ([ store st env ], env, 1)) ]
    @ (if int_muts = [] then []
       else [ (2, fun () -> ([ stmt (Assign ((pick st int_muts).vname, int_expr st env 3)) ], env, 1)) ])
    @ (if float_muts = [] then []
       else
         [ (2, fun () -> ([ stmt (Assign ((pick st float_muts).vname, float_expr st env 3)) ], env, 1)) ])
    @ (if not deep then []
       else
         [ (2, fun () -> (if_stmt st env fuel, env, 2 + (fuel / 2)));
           (1, fun () -> (for_skeleton st env fuel, env, fuel));
           (1, fun () -> (while_skeleton st env fuel, env, fuel)) ])
    @ (if env.dfuncs = [] then []
       else
         [ (1, fun () ->
               let name, ty = pick st env.dfuncs in
               let arg = if ty = Tint then int_expr st env 2 else float_expr st env 2 in
               ([ stmt (Expr_stmt (call name [ arg ])) ], env, 1)) ])
    @ (if not env.in_loop then []
       else [ (1, fun () -> ([ stmt (If (cond st env 0, [ stmt Break ], [])) ], env, 1)) ])
    @ (if not env.in_for then []
       else [ (1, fun () -> ([ stmt (If (cond st env 0, [ stmt Continue ], [])) ], env, 1)) ])
  in
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 choices in
  let roll = Sm.int st.rng total in
  let rec select acc = function
    | [] -> assert false
    | (w, f) :: rest -> if roll < acc + w then f () else select (acc + w) rest
  in
  select 0 choices

and gen_block st env fuel =
  if fuel <= 0 then []
  else
    let stmts, env', used = gen_stmt st env fuel in
    stmts @ gen_block st env' (fuel - max 1 used)

(* ---- device functions ---- *)

let gen_dfunc st idx ty =
  let name = Printf.sprintf "fn%d" idx in
  let p = fresh st "p" in
  let a = fresh st "a" and i = fresh st "i" in
  let iters = 2 + Sm.int st.rng 12 in
  let body_update =
    if ty = Tfloat then
      stmt
        (Assign
           ( a,
             bin Badd (evar a)
               (bin Bmul (call "sin" [ bin Bmul (evar a) (float_literal st) ]) (float_literal st))
           ))
    else
      stmt
        (Assign
           ( a,
             bin Brem
               (bin Badd (bin Bmul (evar a) (ilit (3 + Sm.int st.rng 128))) (ilit (Sm.int st.rng 97)))
               (ilit 65537) ))
  in
  {
    name;
    params = [ (p, ty) ];
    ret = Some ty;
    body =
      [ stmt (Decl { name = a; ty = Some ty; init = evar p; mutable_ = true });
        stmt (Decl { name = i; ty = Some Tint; init = ilit 0; mutable_ = true });
        stmt
          (While
             ( bin Blt (evar i) (ilit iters),
               [ body_update; stmt (Assign (i, bin Badd (evar i) (ilit 1))) ] ));
        stmt (Return (Some (evar a))) ];
    is_kernel = false;
    fpos = pos;
  }

(* ---- shapes ---- *)

let maybe_threshold st = if chance st 0.3 then Some (2 + Sm.int st.rng 30) else None

let acc_decls st =
  let accf = fresh st "accf" and acci = fresh st "acci" in
  ( [ stmt (Decl { name = accf; ty = Some Tfloat; init = float_literal st; mutable_ = true });
      stmt (Decl { name = acci; ty = Some Tint; init = ilit (Sm.int st.rng 5); mutable_ = true }) ],
    accf,
    acci )

let finish accf acci =
  [ stmt (Index_assign ("outf", tid (), evar accf));
    stmt (Index_assign ("outi", tid (), evar acci)) ]

let with_accs env accf acci =
  { env with
    vars =
      { vname = accf; vty = Tfloat; vmut = true }
      :: { vname = acci; vty = Tint; vmut = true } :: env.vars }

(* Figure 2(a) / Listing 1: divergent condition in a loop, predicted
   reconvergence at the start of the (expensive) branch body. *)
let if_in_loop_body st env =
  let fuel = st.params.stmt_budget in
  let decls, accf, acci = acc_decls st in
  let env = with_accs env accf acci in
  let label = fresh st "L" in
  let hinted = chance st 0.7 in
  let i = fresh st "i" in
  let lenv =
    { env with
      vars = { vname = i; vty = Tint; vmut = false } :: env.vars;
      in_loop = true;
      in_for = true;
      depth = env.depth + 1 }
  in
  let benv = { lenv with depth = lenv.depth + 1 } in
  let prolog = gen_block st lenv (fuel / 4) in
  let heavy =
    gen_block st benv (fuel / 2)
    @ [ stmt (Assign (accf, bin Badd (evar accf) (float_expr st benv 2))) ]
  in
  let then_ = if hinted then stmt (Label label) :: heavy else heavy in
  let else_ = if chance st 0.4 then gen_block st benv (fuel / 4) else [] in
  let epilog = [ stmt (Assign (acci, bin Badd (evar acci) (ilit 1))) ] in
  let loop =
    stmt
      (For
         { var = i;
           from_ = ilit 0;
           to_ = trip_expr st;
           body = prolog @ [ stmt (If (cond st lenv 1, then_, else_)) ] @ epilog })
  in
  decls
  @ (if hinted then [ stmt (Predict { target = Tlabel label; threshold = maybe_threshold st }) ]
     else [])
  @ [ loop ] @ finish accf acci

(* Figure 2(b): divergent trip count, predicted reconvergence at the loop
   head so lagging threads collect across iterations. *)
let trip_loop_body st env =
  let fuel = st.params.stmt_budget in
  let decls, accf, acci = acc_decls st in
  let env = with_accs env accf acci in
  let label = fresh st "L" in
  let hinted = chance st 0.75 in
  let j = fresh st "j" and t = fresh st "t" in
  let benv =
    { env with
      vars = { vname = t; vty = Tint; vmut = false } :: env.vars;
      in_loop = true;
      in_for = false;
      depth = env.depth + 1 }
  in
  let body =
    gen_block st benv (fuel / 2)
    @ [ stmt (Assign (accf, bin Badd (evar accf) (float_expr st benv 2))) ]
  in
  let body = if hinted then stmt (Label label) :: body else body in
  decls
  @ [ stmt (Decl { name = t; ty = None; init = trip_expr st; mutable_ = false }) ]
  @ (if hinted then [ stmt (Predict { target = Tlabel label; threshold = maybe_threshold st }) ]
     else [])
  @ [ stmt (Decl { name = j; ty = Some Tint; init = ilit 0; mutable_ = true });
      stmt
        (While
           ( bin Blt (evar j) (evar t),
             body @ [ stmt (Assign (j, bin Badd (evar j) (ilit 1))) ] )) ]
  @ gen_block st env (fuel / 4)
  @ finish accf acci

(* Figure 2(c): both sides of a divergent branch call the same device
   function from different program points. *)
let common_call_body st env callee =
  let fuel = st.params.stmt_budget in
  let decls, accf, acci = acc_decls st in
  let env = with_accs env accf acci in
  let hinted = chance st 0.8 in
  let i = fresh st "i" in
  let lenv =
    { env with
      vars = { vname = i; vty = Tint; vmut = false } :: env.vars;
      in_loop = true;
      in_for = true;
      depth = env.depth + 1 }
  in
  let call_side scale =
    let arg = float_expr st lenv 2 in
    let c = call callee [ arg ] in
    stmt (Assign (accf, bin Badd (evar accf) (if scale then bin Bmul c (float_literal st) else c)))
  in
  decls
  (* func hints carry thresholds too (§4.6 soft barriers at a callee
     entry), so the checker and Deconflict see threshold-gated
     interprocedural waits *)
  @ (if hinted then [ stmt (Predict { target = Tfunc callee; threshold = maybe_threshold st }) ]
     else [])
  @ [ stmt
        (For
           { var = i;
             from_ = ilit 0;
             to_ = trip_expr st;
             body =
               gen_block st lenv (fuel / 4)
               @ [ stmt (If (cond st lenv 1, [ call_side false ], [ call_side true ])) ] }) ]
  @ finish accf acci

(* Free-form statements; sometimes a predicted label right after a
   divergent branch (the spot where the speculative barrier collides with
   the compiler's PDOM barrier and Deconflict must arbitrate). *)
let mixed_body st env =
  let fuel = st.params.stmt_budget in
  let decls, accf, acci = acc_decls st in
  let env = with_accs env accf acci in
  let mid =
    if chance st 0.4 then begin
      let label = fresh st "L" in
      let benv = { env with depth = env.depth + 1 } in
      [ stmt (Predict { target = Tlabel label; threshold = maybe_threshold st });
        stmt
          (If
             ( cond st env 1,
               gen_block st benv (fuel / 3),
               gen_block st benv (fuel / 4) ));
        stmt (Label label) ]
    end
    else []
  in
  decls @ gen_block st env (fuel / 2) @ mid @ gen_block st env (fuel / 3) @ finish accf acci

(* ---- shared-array access stanzas (the srrace differential corpus) ----

   Appended after the shape body with some probability: aliasing and
   overlapping accesses to the [sharei]/[sharef] scratch arrays, some
   deliberately racy. Racy stores are value-canonical — every thread
   that writes cell [c] writes the same function of [c] — so the final
   image stays mode- and schedule-deterministic and the rest of the
   oracle matrix (result-divergence, serve, chaos) still applies; only
   the access *ordering* races, which is exactly what the shadow
   logger observes and srrace must predict. Collisions are kept within
   a warp's 32 lanes so the intra-warp logger realizes every racy
   shape dynamically (a static finding no run realizes would be
   reported race-spurious). *)

let share_stanza st env =
  match Sm.int st.rng 6 with
  | 0 ->
    (* clean: injective per-thread store, optional same-cell read-back *)
    let v = fresh st "s" in
    [ stmt (Index_assign ("sharei", tid (), int_expr st env 2)) ]
    @ (if chance st 0.5 then
         [ stmt
             (Decl
                { name = v; ty = Some Tint; init = e (Index ("sharei", tid ())); mutable_ = false });
           stmt (Index_assign ("outi", tid (), evar v)) ]
       else [])
  | 1 ->
    (* clean: overlapping cross-thread reads (RR never races) *)
    let v = fresh st "s" in
    let off = 1 + Sm.int st.rng 31 in
    [ stmt
        (Decl
           { name = v;
             ty = Some Tint;
             init =
               bin Badd
                 (e (Index ("datai", tid ())))
                 (e (Index ("datai", bin Brem (bin Badd (tid ()) (ilit off)) (ilit data_size))));
             mutable_ = false });
      stmt (Index_assign ("outi", tid (), evar v)) ]
  | 2 ->
    (* racy WW: every thread stores one constant to one cell *)
    let k = Sm.int st.rng n_threads in
    if chance st 0.5 then [ stmt (Index_assign ("sharei", ilit k, ilit (1 + Sm.int st.rng 9))) ]
    else [ stmt (Index_assign ("sharef", ilit k, float_literal st)) ]
  | 3 ->
    (* racy WW: modular collision, value canonical in the cell index *)
    let m = pick st [ 2; 4; 8 ] in
    let cell () = bin Brem (tid ()) (ilit m) in
    [ stmt (Index_assign ("sharei", cell (), bin Badd (bin Bmul (cell ()) (ilit 3)) (ilit 1))) ]
  | 4 ->
    (* racy WW: shifted pair — threads t and t-1 both write cell t *)
    let shifted () = bin Brem (bin Badd (tid ()) (ilit 1)) (ilit n_threads) in
    [ stmt (Index_assign ("sharei", tid (), tid ()));
      stmt (Index_assign ("sharei", shifted (), shifted ())) ]
  | _ ->
    (* racy WW across divergent arms: both sides hit the same cells *)
    let cell () = bin Brem (tid ()) (ilit 8) in
    let store () = stmt (Index_assign ("sharei", cell (), bin Badd (cell ()) (ilit 5))) in
    [ stmt (If (cond st env 1, [ store () ], [ store () ])) ]

(* ---- program assembly ---- *)

let globals =
  [ { gname = "outi"; gty = Tint; gsize = Some n_threads };
    { gname = "outf"; gty = Tfloat; gsize = Some n_threads };
    { gname = "datai"; gty = Tint; gsize = Some data_size };
    { gname = "dataf"; gty = Tfloat; gsize = Some data_size };
    { gname = "sharei"; gty = Tint; gsize = Some n_threads };
    { gname = "sharef"; gty = Tfloat; gsize = Some n_threads } ]

let pick_shape st =
  let x = Sm.float st.rng in
  if x < 0.30 then If_in_loop
  else if x < 0.58 then Trip_loop
  else if x < 0.73 then Common_call
  else Mixed

let generate ?(params = default_params) ~seed id =
  let st = { rng = Sm.of_ints seed id 0xf022; fresh = 0; params } in
  let shape = pick_shape st in
  let dfuncs =
    match shape with
    | Common_call -> [ gen_dfunc st 0 Tfloat ]
    | Mixed | If_in_loop | Trip_loop ->
      let n = if chance st 0.3 then 1 + Sm.int st.rng 2 else 0 in
      List.init n (fun i -> gen_dfunc st i (if chance st 0.5 then Tfloat else Tint))
  in
  let env =
    { top_env with dfuncs = List.map (fun f -> (f.name, Option.get f.ret)) dfuncs }
  in
  let body =
    match shape with
    | If_in_loop -> if_in_loop_body st env
    | Trip_loop -> trip_loop_body st env
    | Common_call -> common_call_body st env (List.hd dfuncs).name
    | Mixed -> mixed_body st env
  in
  let kernel = { name = "k"; params = []; ret = None; body; is_kernel = true; fpos = pos } in
  (* Sometimes a second, smaller kernel sharing the device functions:
     exercises multi-kernel lowering and the per-kernel oracle matrix
     (cross-kernel interprocedural barrier state included). *)
  let extra =
    if chance st 0.2 then begin
      (* common_call_body feeds the callee float arguments and folds the
         result into a float accumulator, so it needs a float-typed
         device function — the primary shape guarantees one, a second
         kernel rolling Common_call over inherited dfuncs does not. *)
      let float_callee =
        List.find_opt (fun f -> f.ret = Some Tfloat) dfuncs
      in
      let shape2 =
        match pick_shape st with
        | Common_call when float_callee = None -> Mixed
        | s2 -> s2
      in
      let st2 =
        { st with params = { st.params with stmt_budget = max 4 (st.params.stmt_budget / 2) } }
      in
      let body2 =
        match shape2 with
        | If_in_loop -> if_in_loop_body st2 env
        | Trip_loop -> trip_loop_body st2 env
        | Common_call -> common_call_body st2 env (Option.get float_callee).name
        | Mixed -> mixed_body st2 env
      in
      [ { name = "k2"; params = []; ret = None; body = body2; is_kernel = true; fpos = pos } ]
    end
    else []
  in
  (* Share-array stanza last in the draw order, so campaigns re-rolled
     from pre-srrace seeds keep their base programs prefix-stable. *)
  let kernel =
    if chance st 0.35 then { kernel with body = kernel.body @ share_stanza st env } else kernel
  in
  { id; shape; ast = { globals; funcs = dfuncs @ [ kernel ] @ extra } }
