open Front.Ast

(* Pre-order edit of the [n]-th statement across every function body.
   [f] returns the replacement statement list; all other statements are
   kept, with the edit recursing into nested blocks. *)
let rec edit_stmt ctr n f s =
  let here = !ctr in
  incr ctr;
  if here = n then f s
  else
    let sdesc =
      match s.sdesc with
      | If (c, t, e) -> If (c, edit_block ctr n f t, edit_block ctr n f e)
      | While (c, b) -> While (c, edit_block ctr n f b)
      | For r -> For { r with body = edit_block ctr n f r.body }
      | d -> d
    in
    [ { s with sdesc } ]

and edit_block ctr n f stmts = List.concat_map (edit_stmt ctr n f) stmts

let edit_program prog n f =
  let ctr = ref 0 in
  let funcs = List.map (fun fn -> { fn with body = edit_block ctr n f fn.body }) prog.funcs in
  { prog with funcs }

let count_stmts prog =
  let ctr = ref 0 in
  List.iter (fun fn -> ignore (edit_block ctr (-1) (fun s -> [ s ]) fn.body)) prog.funcs;
  !ctr

let nth_stmt prog n =
  let found = ref None in
  ignore
    (edit_program prog n (fun s ->
         found := Some s;
         [ s ]));
  !found

let zero_of = function Tint -> { desc = Int_lit 0; pos = { line = 0; col = 0 } }
  | Tfloat -> { desc = Float_lit 0.0; pos = { line = 0; col = 0 } }

(* All single-step reductions of [prog], coarsest first. *)
let candidates prog =
  let drop_funcs =
    (* any device function; a kernel only while another kernel remains *)
    let n_kernels = List.length (List.filter (fun f -> f.is_kernel) prog.funcs) in
    List.filter_map
      (fun fn ->
        if fn.is_kernel && n_kernels <= 1 then None
        else Some (fun () -> { prog with funcs = List.filter (fun f -> f.name <> fn.name) prog.funcs }))
      prog.funcs
  in
  let drop_globals =
    List.map
      (fun g -> fun () -> { prog with globals = List.filter (fun g' -> g'.gname <> g.gname) prog.globals })
      prog.globals
  in
  let n = count_stmts prog in
  let deletes = List.init n (fun i -> fun () -> edit_program prog i (fun _ -> [])) in
  let unwraps =
    List.concat
      (List.init n (fun i ->
           match nth_stmt prog i with
           | Some { sdesc = If (_, t, e); _ } ->
             (fun () -> edit_program prog i (fun _ -> t))
             :: (if e = [] then [] else [ (fun () -> edit_program prog i (fun _ -> e)) ])
           | Some { sdesc = While (_, b); _ } -> [ (fun () -> edit_program prog i (fun _ -> b)) ]
           | Some { sdesc = For { body; _ }; _ } ->
             [ (fun () -> edit_program prog i (fun _ -> body)) ]
           | _ -> []))
  in
  let simplify_inits =
    List.concat
      (List.init n (fun i ->
           match nth_stmt prog i with
           | Some ({ sdesc = Decl ({ ty = Some ty; init; _ } as d); _ } as s)
             when init.desc <> (zero_of ty).desc ->
             [ (fun () ->
                   edit_program prog i (fun _ ->
                       [ { s with sdesc = Decl { d with init = zero_of ty } } ])) ]
           | _ -> []))
  in
  drop_funcs @ drop_globals @ deletes @ unwraps @ simplify_inits

let shrink ?(budget = 300) ast ~still_failing =
  let evals = ref 0 in
  let rec pass current =
    if !evals >= budget then current
    else
      let next =
        List.find_map
          (fun make ->
            if !evals >= budget then None
            else begin
              incr evals;
              let candidate = make () in
              if still_failing candidate then Some candidate else None
            end)
          (candidates current)
      in
      match next with Some smaller -> pass smaller | None -> current
  in
  pass ast

(* Fault-trace minimization: same greedy discipline as [shrink], but the
   candidates are drop-one-event sublists. Replay is keyed by
   (channel, consultation index), so removing one event leaves every
   other event applying at exactly its recorded point — sublists are
   always well-formed traces. Lenient on entry: if the full trace no
   longer reproduces (a nondeterministic repro), it is returned
   unchanged rather than shrunk to a lie. *)
let shrink_trace ?(budget = 200) events ~still_failing =
  let evals = ref 0 in
  let check evs =
    incr evals;
    still_failing evs
  in
  if not (check events) then events
  else begin
    let drop_nth evs n = List.filteri (fun i _ -> i <> n) evs in
    let rec pass current =
      let n = List.length current in
      let rec try_drop i =
        if i >= n || !evals >= budget then None
        else
          let candidate = drop_nth current i in
          if check candidate then Some candidate else try_drop (i + 1)
      in
      match try_drop 0 with Some smaller -> pass smaller | None -> current
    in
    pass events
  end
