(** The compilation pipeline, staged for oracle checking.

    Mirrors {!Core.Compile.compile_ast} for the two modes the paper
    differentiates — PDOM-only baseline (§2) and speculative reconvergence
    with dynamic deconfliction (§4) — but runs {!Ir.Verifier} after every
    pass and tags failures with the stage that caused them, so a fuzzing
    campaign can report {e which} layer broke instead of a bare [Failure].

    [~deconflict:false] skips §4.3's deconfliction on the speculative
    pipeline. That is exactly the configuration the paper calls unsafe
    (conflicting barriers deadlock), and the test suite uses it to prove
    the deadlock is real and that Deconflict removes it. *)

type mode = Baseline | Specrecon

val mode_name : mode -> string

exception Stage_error of string * string
(** [(stage, message)]: the pass raised, or the verifier found structural
    errors after it. Stages: ["lower"], ["specrecon"], ["interproc"],
    ["pdom_sync"], ["deconflict"], ["cleanup"], ["srlint"],
    ["srrace"], ["linearize"], ["decode"]. *)

type staged = {
  program : Ir.Types.program;
  linear : Ir.Linear.t;
  decoded : Ir.Decoded.t;  (** what the interpreter executes *)
  resolutions : int;  (** deconfliction resolutions applied (0 for baseline) *)
  lint : Analysis.Barrier_safety.finding list;
      (** static barrier-safety findings on the final program; reported
          as data (never raised) so the oracles can check them against
          the simulator's verdict *)
  race : Analysis.Race_safety.finding list;
      (** static data-race findings on the final program (this mode's
          placement, no PDOM diffing) — what the race oracles hold
          against the shadow-memory logger *)
  speculative : Analysis.Barrier_safety.speculative list;
      (** speculative-barrier provenance the lint stage checked under;
          the repair oracles pass it to {!Analysis.Barrier_repair} *)
}

(** [compile ~mode ast] lowers and runs the mode's synchronization passes,
    verifying after each stage. [~deconflict:false] skips deconfliction
    entirely; [~deconflict_call_waits:false] keeps the pass but ablates
    its call-as-wait modeling (the PR 2 blindness).
    @raise Stage_error as documented. *)
val compile :
  ?deconflict:bool -> ?deconflict_call_waits:bool -> mode:mode -> Front.Ast.program -> staged
