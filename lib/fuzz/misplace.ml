(* Barrier-misplacement mutator: perturb a compiled program's barrier
   placement to manufacture exactly the shapes srlint checks for —
   reordered waits (cycles), duplicated joins (double arrive), deleted
   cancels (bypass/overlap), stray slot ids (unallocated), relocated
   waits (undominated). The repair oracles feed the mutants to
   Analysis.Barrier_repair: every finding must either repair to a
   checker-clean program with the PDOM memory digest, or be reported
   unrepairable with the blocking finding named.

   Mutations act on a Builder.copy_program copy; the input is never
   touched. A mutant that fails the structural verifier is discarded
   (the mutator must only manufacture *placement* bugs, not broken IR). *)

module T = Ir.Types
module Sm = Support.Splitmix

type mutation = Swap_waits | Dup_join | Drop_cancel | Stray_slot | Relocate_wait

let mutation_name = function
  | Swap_waits -> "swap-waits"
  | Dup_join -> "dup-join"
  | Drop_cancel -> "drop-cancel"
  | Stray_slot -> "stray-slot"
  | Relocate_wait -> "relocate-wait"

let all = [ Swap_waits; Dup_join; Drop_cancel; Stray_slot; Relocate_wait ]

(* All (func, block, index, inst) sites matching [keep], in deterministic
   (func, block, index) order. *)
let sites (p : T.program) keep =
  let fnames = Hashtbl.fold (fun n _ acc -> n :: acc) p.T.funcs [] |> List.sort compare in
  List.concat_map
    (fun n ->
      let f = Hashtbl.find p.T.funcs n in
      List.concat_map
        (fun bid ->
          (T.block f bid).T.insts
          |> List.mapi (fun i inst -> (n, bid, i, inst))
          |> List.filter (fun (_, _, _, inst) -> keep inst))
        (T.block_ids f))
    fnames

let pick rng xs =
  match xs with [] -> None | _ -> Some (List.nth xs (Sm.int rng (List.length xs)))

let is_wait = function T.Wait _ | T.Wait_threshold _ -> true | _ -> false
let is_join = function T.Join _ | T.Rejoin _ -> true | _ -> false
let is_cancel = function T.Cancel _ -> true | _ -> false

let func (p : T.program) n = Hashtbl.find p.T.funcs n

(* Apply one mutation kind; None when the program has no applicable
   site (e.g. no cancel to drop). *)
let try_mutation rng (p : T.program) = function
  | Swap_waits -> (
    let waits = sites p is_wait in
    match pick rng waits with
    | None -> None
    | Some (fn, b1, i1, w1) -> (
      let others =
        List.filter
          (fun (fn', _, _, w') -> fn' = fn && T.barrier_of w' <> T.barrier_of w1)
          waits
      in
      match pick rng others with
      | None -> None
      | Some (_, b2, i2, w2) ->
        let f = func p fn in
        let s1 = Option.get (T.barrier_of w1) and s2 = Option.get (T.barrier_of w2) in
        Passes.Edit.rewrite_slot_at f b1 i1 s2;
        Passes.Edit.rewrite_slot_at f b2 i2 s1;
        Some ()))
  | Dup_join -> (
    match pick rng (sites p is_join) with
    | None -> None
    | Some (fn, b, i, j) ->
      Passes.Edit.insert_at (func p fn) b (i + 1) j;
      Some ())
  | Drop_cancel -> (
    match pick rng (sites p is_cancel) with
    | None -> None
    | Some (fn, b, i, _) ->
      ignore (Passes.Edit.remove_at (func p fn) b i);
      Some ())
  | Stray_slot -> (
    match pick rng (sites p (fun i -> T.barrier_of i <> None)) with
    | None -> None
    | Some (fn, b, i, _) ->
      Passes.Edit.rewrite_slot_at (func p fn) b i (p.T.next_barrier + 3);
      Some ())
  | Relocate_wait -> (
    match pick rng (sites p is_wait) with
    | None -> None
    | Some (fn, b, i, _) -> (
      let f = func p fn in
      match pick rng (List.filter (fun b' -> b' <> b) (T.block_ids f)) with
      | None -> None
      | Some b' ->
        Passes.Edit.move_inst f ~from_block:b ~from_index:i ~to_block:b';
        Some ()))

(* [mutate rng p] returns a structurally-valid mutant and the mutation
   that produced it, or None when no mutation applies. Tries a few
   random (mutation, site) draws before giving up. *)
let mutate rng (p : T.program) =
  let rec go attempts =
    if attempts = 0 then None
    else
      let m = List.nth all (Sm.int rng (List.length all)) in
      let q = Ir.Builder.copy_program p in
      match try_mutation rng q m with
      | None -> go (attempts - 1)
      | Some () ->
        if Ir.Verifier.check_program q = [] then Some (mutation_name m, q)
        else go (attempts - 1)
  in
  go 8
