(** Fuzzing campaigns: generate → oracle → shrink → serialize.

    A campaign is fully determined by [(seed, count, params)]: program
    [i] is [Gen.generate ~seed i], so any finding names the exact pair
    that reproduces it. Violations are minimized with {!Shrink} (the
    predicate being "same violation kind") and carry a ready-to-commit
    [.simt] rendering for [test/corpus/]. *)

type finding = {
  id : int;
  shape : Gen.shape;
  violation : Oracle.violation;  (** classification of the original failure *)
  shrunk : Front.Ast.program;  (** minimized program still failing the same way *)
}

type report = {
  seed : int;
  count : int;
  passed : int;
  limited : int;  (** programs skipped on the issue budget, not failures *)
  findings : finding list;
}

(** [chaos]/[chaos_seed] are passed through to {!Oracle.check}: each
    clean program additionally survives that many seeded fault plans.
    [repair] switches the campaign to the repair tier instead: each
    program runs {!Oracle.check_repair} with that many misplaced
    variants (chaos is ignored there; the standard contracts have their
    own campaigns). *)
val run :
  ?params:Gen.params -> ?max_issues:int -> ?chaos:int -> ?chaos_seed:int ->
  ?shrink_budget:int -> ?repair:int -> seed:int -> count:int -> unit ->
  report

(** The corpus serialization: a header comment naming the campaign
    coordinates and classification, then the minimized source. The file
    is a plain [.simt] program — [test/corpus/] replays it through
    {!Oracle.check}. *)
val render_finding : seed:int -> finding -> string

(** [save_corpus ~dir ~seed finding] writes the rendering to
    [dir/srfuzz_<seed>_<id>_<kind>.simt] and returns the path. *)
val save_corpus : dir:string -> seed:int -> finding -> string

val pp_report : Format.formatter -> report -> unit
