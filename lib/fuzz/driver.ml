type finding = {
  id : int;
  shape : Gen.shape;
  violation : Oracle.violation;
  shrunk : Front.Ast.program;
}

type report = {
  seed : int;
  count : int;
  passed : int;
  limited : int;
  findings : finding list;
}

let run ?(params = Gen.default_params) ?max_issues ?chaos ?chaos_seed ?shrink_budget ?repair
    ~seed ~count () =
  (* [?repair] switches the campaign to the repair tier: each program
     goes through {!Oracle.check_repair} with that many misplaced
     variants instead of the standard matrix (the standard contracts
     have their own campaigns; mixing the tiers would double the cost of
     both). *)
  let check ~id ast =
    match repair with
    | None -> Oracle.check ?max_issues ?chaos ?chaos_seed ast
    | Some variants -> Oracle.check_repair ?max_issues ~variants ~id ast
  in
  let passed = ref 0 and limited = ref 0 and findings = ref [] in
  for id = 0 to count - 1 do
    let case = Gen.generate ~params ~seed id in
    match check ~id case.Gen.ast with
    | Oracle.Ok_run -> incr passed
    | Oracle.Limit _ -> incr limited
    | Oracle.Violation violation ->
      let same_kind ast =
        match check ~id ast with
        | Oracle.Violation v -> v.Oracle.kind = violation.Oracle.kind
        | Oracle.Ok_run | Oracle.Limit _ -> false
      in
      let shrunk = Shrink.shrink ?budget:shrink_budget case.Gen.ast ~still_failing:same_kind in
      findings := { id; shape = case.Gen.shape; violation; shrunk } :: !findings
  done;
  { seed; count; passed = !passed; limited = !limited; findings = List.rev !findings }

let render_finding ~seed finding =
  (* Violation details can span many lines (barrier-state dumps); every
     line must carry the comment marker for the repro to stay parseable. *)
  let commented =
    String.concat "\n"
      (List.map (fun l -> "// " ^ l) (String.split_on_char '\n' finding.violation.Oracle.detail))
  in
  Printf.sprintf
    "// srfuzz repro: seed=%d id=%d shape=%s kind=%s\n%s\n// Replayed by test/corpus: every oracle must pass once the bug is fixed.\n%s"
    seed finding.id (Gen.shape_name finding.shape)
    (Oracle.kind_name finding.violation.Oracle.kind)
    commented
    (Front.Pretty.to_string finding.shrunk)

let save_corpus ~dir ~seed finding =
  let path =
    Filename.concat dir
      (Printf.sprintf "srfuzz_%d_%d_%s.simt" seed finding.id
         (Oracle.kind_name finding.violation.Oracle.kind))
  in
  let oc = open_out path in
  output_string oc (render_finding ~seed finding);
  close_out oc;
  path

let pp_report ppf r =
  Format.fprintf ppf "srfuzz: seed %d, %d programs: %d ok, %d budget-limited, %d violations@."
    r.seed r.count r.passed r.limited (List.length r.findings);
  List.iter
    (fun f ->
      Format.fprintf ppf "  [%d] %s %s: %s@." f.id (Gen.shape_name f.shape)
        (Oracle.kind_name f.violation.Oracle.kind)
        f.violation.Oracle.detail)
    r.findings
