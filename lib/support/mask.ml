type t = int

let max_width = Sys.int_size - 1

let check_lane lane =
  if lane < 0 || lane >= max_width then
    invalid_arg (Printf.sprintf "Mask: lane %d out of range [0, %d)" lane max_width)

let empty = 0

let full n =
  if n < 0 || n > max_width then
    invalid_arg (Printf.sprintf "Mask.full: width %d out of range [0, %d]" n max_width);
  if n = 0 then 0 else (1 lsl n) - 1

let singleton lane =
  check_lane lane;
  1 lsl lane

let mem lane m = lane >= 0 && lane < max_width && m land (1 lsl lane) <> 0

let add lane m =
  check_lane lane;
  m lor (1 lsl lane)

let remove lane m = if lane < 0 || lane >= max_width then m else m land lnot (1 lsl lane)
let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b

(* SWAR popcount. Masks occupy bits [0, max_width) of a 63-bit native
   int, so every constant below fits comfortably; the first mask only
   needs even bit positions of [m lsr 1], which spans bits [0, 61). *)
let count m =
  let m = m - ((m lsr 1) land 0x1555555555555555) in
  let m = (m land 0x3333333333333333) + ((m lsr 2) land 0x3333333333333333) in
  let m = (m + (m lsr 4)) land 0x0F0F0F0F0F0F0F0F in
  let m = m + (m lsr 8) in
  let m = m + (m lsr 16) in
  let m = m + (m lsr 32) in
  m land 0x7F

let is_empty m = m = 0
let equal (a : int) b = a = b
let subset a b = a land lnot b = 0
let disjoint a b = a land b = 0

(* Visit only the set bits: peel the lowest one each round, so sparse
   masks (the common case on a diverged warp) cost O(popcount), not
   O(max_width). *)
let iter f m =
  let m = ref m in
  while !m <> 0 do
    let bit = !m land - !m in
    f (count (bit - 1));
    m := !m land (!m - 1)
  done

let fold f m acc =
  let r = ref acc in
  iter (fun lane -> r := f lane !r) m;
  !r

let to_list m = List.rev (fold (fun lane acc -> lane :: acc) m [])

let of_list lanes = List.fold_left (fun m lane -> add lane m) empty lanes

let lowest m =
  if m = 0 then raise Not_found;
  (* Isolate the lowest set bit; the popcount of (bit - 1) is its index. *)
  count ((m land -m) - 1)

(* Ascending-lane-list lexicographic order, computed on the bits. The
   first differing lane is the lowest bit of [a lxor b]; whichever mask
   owns it lists a smaller element there — unless the other mask has no
   lane at or above that point, in which case it is a strict prefix and
   sorts first. Matches [compare (to_list a) (to_list b)]. *)
let compare_lex a b =
  if a = b then 0
  else begin
    let l = (a lxor b) land -(a lxor b) in
    let owner_is_a = a land l <> 0 in
    let other = if owner_is_a then b else a in
    let other_exhausted = other land lnot (l - 1) = 0 in
    if owner_is_a then if other_exhausted then 1 else -1
    else if other_exhausted then -1
    else 1
  end

let bits m = m
let of_bits b = b

let pp ~width ppf m =
  Format.pp_print_string ppf "0b";
  for lane = width - 1 downto 0 do
    Format.pp_print_char ppf (if mem lane m then '1' else '0')
  done

let to_hex m = Printf.sprintf "0x%x" m
