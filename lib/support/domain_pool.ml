(* A minimal fork/join pool over stdlib domains (OCaml 5; no Domainslib).

   [map f xs] farms the elements out to [domains ()] workers pulling from
   a shared atomic cursor, then reassembles results by index — so the
   output order (and therefore anything printed from it) is identical to
   [List.map f xs], whatever the scheduling. Exceptions are also
   replayed deterministically: the one raised for the earliest list
   element wins, no matter which domain hit it first. *)

let env_var = "SPECRECON_DOMAINS"

let domains () =
  match Sys.getenv_opt env_var with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None ->
      invalid_arg (Printf.sprintf "Domain_pool: %s=%S is not a positive integer" env_var s))
  | None -> Domain.recommended_domain_count ()

type 'b slot = Pending | Value of 'b | Raised of exn

let map f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let workers = min (domains ()) n in
  if workers <= 1 then List.map f xs
  else begin
    let results = Array.make n Pending in
    let cursor = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add cursor 1 in
        if i >= n then continue := false
        else results.(i) <- (match f items.(i) with v -> Value v | exception e -> Raised e)
      done
    in
    let spawned = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    List.init n (fun i ->
        match results.(i) with
        | Value v -> v
        | Raised e -> raise e
        | Pending -> assert false)
  end
