(** Thread masks for a single warp.

    A mask is an immutable set of lane indices in [0, width). The
    representation is a native [int] bitset, which restricts warp widths to
    at most {!max_width} lanes — ample for the 32-lane warps the paper (and
    every shipping GPU) uses. Lane 0 is the least significant bit. *)

type t

(** Maximum supported warp width (number of representable lanes). *)
val max_width : int

(** The empty mask. *)
val empty : t

(** [full n] is the mask containing lanes [0 .. n-1].
    @raise Invalid_argument if [n < 0] or [n > max_width]. *)
val full : int -> t

(** [singleton lane] is the mask containing exactly [lane].
    @raise Invalid_argument if [lane] is outside [0, max_width). *)
val singleton : int -> t

(** [mem lane m] tests lane membership. Lanes outside the representable
    range are never members. *)
val mem : int -> t -> bool

(** [add lane m] adds a lane.
    @raise Invalid_argument if [lane] is outside [0, max_width). *)
val add : int -> t -> t

(** [remove lane m] removes a lane (no-op if absent). *)
val remove : int -> t -> t

val union : t -> t -> t
val inter : t -> t -> t

(** [diff a b] is the set of lanes in [a] but not in [b]. *)
val diff : t -> t -> t

(** Number of lanes in the mask (population count). *)
val count : t -> int

val is_empty : t -> bool
val equal : t -> t -> bool

(** [subset a b] is true when every lane of [a] is also in [b]. *)
val subset : t -> t -> bool

(** [disjoint a b] is true when [a] and [b] share no lane. *)
val disjoint : t -> t -> bool

(** [iter f m] applies [f] to each member lane in increasing order. *)
val iter : (int -> unit) -> t -> unit

(** [fold f m acc] folds over member lanes in increasing order. *)
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** Member lanes in increasing order. *)
val to_list : t -> int list

(** [of_list lanes] builds a mask from a lane list.
    @raise Invalid_argument on out-of-range lanes. *)
val of_list : int list -> t

(** Lowest member lane. @raise Not_found on the empty mask. *)
val lowest : t -> int

(** [compare_lex a b] orders masks as their ascending lane lists compare
    lexicographically: [compare_lex a b] has the sign of
    [compare (to_list a) (to_list b)]. The interpreter's scheduler uses
    this to break ties between groups parked at the same pc without
    materialising the lists. *)
val compare_lex : t -> t -> int

(** The raw bitset (lane 0 = bit 0). Escape hatch for the interpreter's
    issue path, which peels lanes in open-coded loops instead of paying a
    closure per {!iter}; treat as opaque everywhere else. *)
val bits : t -> int

(** Inverse of {!bits}. The caller promises the bits came from a mask (or
    bitwise ops on masks) — no range check is performed. *)
val of_bits : int -> t

(** Formats as a binary lane string, lane [width-1] first, e.g. [0b0101]
    for lanes {0, 2} at width 4. *)
val pp : width:int -> Format.formatter -> t -> unit

(** Hex rendering of the underlying bits, e.g. ["0x5"]. *)
val to_hex : t -> string
