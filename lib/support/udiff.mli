(** Minimal unified diff over line sequences (LCS-based), used by
    [srcc --fix] to show the before/after disassembly of a repaired
    program. Quadratic in the input length — intended for listings of at
    most a few hundred lines, not whole files. *)

(** [render a b] is a unified diff of the two line arrays: [---]/[+++]
    header, [@@] hunk markers with 1-based line ranges, [context]
    (default 3) unchanged lines around each change. Empty string when
    the inputs are equal. *)
val render :
  ?context:int -> ?from_label:string -> ?to_label:string -> string array -> string array -> string

(** [render_strings a b] splits on newlines and diffs. *)
val render_strings :
  ?context:int -> ?from_label:string -> ?to_label:string -> string -> string -> string
