(** Deterministic parallel [map] over stdlib domains.

    The experiment drivers use this to spread independent simulations
    across cores. Results come back in input order and exceptions are
    replayed for the earliest failing element, so a parallel run is
    observationally identical to the sequential one — the property that
    keeps every printed table byte-for-byte stable. *)

(** Environment variable ["SPECRECON_DOMAINS"] overriding the worker
    count. [SPECRECON_DOMAINS=1] forces the sequential path (useful to
    cross-check parallel output); unset means
    [Domain.recommended_domain_count ()]. *)
val env_var : string

(** Worker count that {!map} will use: the {!env_var} override when set,
    otherwise [Domain.recommended_domain_count ()].
    @raise Invalid_argument when the override is not a positive integer. *)
val domains : unit -> int

(** [map f xs] is [List.map f xs], computed on up to [domains ()]
    domains. [f] must be safe to run concurrently with itself on
    distinct elements (the simulator is: every run owns its state). *)
val map : ('a -> 'b) -> 'a list -> 'b list
