(* Minimal unified diff over line sequences (LCS-based). Small inputs
   only — the consumers diff disassembly listings of at most a few
   hundred lines, so the quadratic LCS table is fine. *)

type op = Keep of string | Del of string | Add of string

let ops a b =
  let n = Array.length a and m = Array.length b in
  (* lcs.(i).(j) = LCS length of a[i..] and b[j..] *)
  let lcs = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      lcs.(i).(j) <-
        (if String.equal a.(i) b.(j) then 1 + lcs.(i + 1).(j + 1)
         else max lcs.(i + 1).(j) lcs.(i).(j + 1))
    done
  done;
  let rec walk i j acc =
    if i < n && j < m && String.equal a.(i) b.(j) then walk (i + 1) (j + 1) (Keep a.(i) :: acc)
    else if i < n && (j = m || lcs.(i + 1).(j) >= lcs.(i).(j + 1)) then
      walk (i + 1) j (Del a.(i) :: acc)
    else if j < m then walk i (j + 1) (Add b.(j) :: acc)
    else List.rev acc
  in
  walk 0 0 []

let render ?(context = 3) ?(from_label = "before") ?(to_label = "after") a b =
  let ops = Array.of_list (ops a b) in
  let n = Array.length ops in
  let is_change = function Keep _ -> false | Del _ | Add _ -> true in
  (* An op index is emitted when within [context] of any change. *)
  let emit = Array.make n false in
  Array.iteri
    (fun i op ->
      if is_change op then
        for j = max 0 (i - context) to min (n - 1) (i + context) do
          emit.(j) <- true
        done)
    ops;
  if not (Array.exists Fun.id emit) then ""
  else begin
    let buf = Buffer.create 1024 in
    Buffer.add_string buf (Printf.sprintf "--- %s\n+++ %s\n" from_label to_label);
    (* Walk emitted runs, tracking 1-based line cursors into both sides. *)
    let a_line = ref 1 and b_line = ref 1 in
    let i = ref 0 in
    while !i < n do
      if not emit.(!i) then begin
        (match ops.(!i) with
        | Keep _ ->
          incr a_line;
          incr b_line
        | Del _ -> incr a_line
        | Add _ -> incr b_line);
        incr i
      end
      else begin
        let start = !i in
        let stop = ref start in
        while !stop < n && emit.(!stop) do
          incr stop
        done;
        let a_start = !a_line and b_start = !b_line in
        let a_count = ref 0 and b_count = ref 0 in
        let body = Buffer.create 256 in
        for j = start to !stop - 1 do
          match ops.(j) with
          | Keep l ->
            Buffer.add_string body (" " ^ l ^ "\n");
            incr a_count;
            incr b_count
          | Del l ->
            Buffer.add_string body ("-" ^ l ^ "\n");
            incr a_count
          | Add l ->
            Buffer.add_string body ("+" ^ l ^ "\n");
            incr b_count
        done;
        a_line := a_start + !a_count;
        b_line := b_start + !b_count;
        Buffer.add_string buf
          (Printf.sprintf "@@ -%d,%d +%d,%d @@\n" a_start !a_count b_start !b_count);
        Buffer.add_buffer buf body;
        i := !stop
      end
    done;
    Buffer.contents buf
  end

let render_strings ?context ?from_label ?to_label a b =
  let lines s = Array.of_list (String.split_on_char '\n' s) in
  render ?context ?from_label ?to_label (lines a) (lines b)
