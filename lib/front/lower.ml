open Ast
module T = Ir.Types
module B = Ir.Builder

exception Lower_error of pos * string

let err pos fmt = Printf.ksprintf (fun m -> raise (Lower_error (pos, m))) fmt

(* Variable environment: innermost binding first. [frame] marks the names
   declared in the current statement list, to reject same-scope
   redeclaration while allowing shadowing. *)
type binding = { reg : T.reg; vty : ty; is_mutable : bool }

type loop_ctx = { brk : T.block_id; cont : T.block_id; mutable cont_used : bool }

type ctx = {
  program : T.program;
  func : T.func;
  sigs : (string, ty list * ty option) Hashtbl.t;
  globals : (string, int * int option * ty) Hashtbl.t; (* base, array size, type *)
  is_kernel : bool;
  ret_ty : ty option;
  mutable cur : T.block_id;
  mutable loops : loop_ctx list;
}

let emit ctx i = B.append ctx.func ctx.cur i
let terminate ctx t = B.set_term ctx.func ctx.cur t

(* Record the source line of the first statement lowered into the current
   block, so post-pass diagnostics (srlint) can point back at the source.
   First writer wins: a block keeps the line that opened it. *)
let note ctx (pos : pos) =
  let b = T.block ctx.func ctx.cur in
  if b.src_line = None && pos.line > 0 then b.src_line <- Some pos.line

let new_block ctx = B.add_block ctx.func

let fresh ctx = B.fresh_reg ctx.func

let lookup env name = List.assoc_opt name env

let intrinsics : (string * (ty list * ty option)) list =
  [
    ("tid", ([], Some Tint));
    ("lane", ([], Some Tint));
    ("nthreads", ([], Some Tint));
    ("rand", ([], Some Tfloat));
    ("randint", ([ Tint ], Some Tint));
    ("sqrt", ([ Tfloat ], Some Tfloat));
    ("exp", ([ Tfloat ], Some Tfloat));
    ("log", ([ Tfloat ], Some Tfloat));
    ("sin", ([ Tfloat ], Some Tfloat));
    ("cos", ([ Tfloat ], Some Tfloat));
    ("fabs", ([ Tfloat ], Some Tfloat));
    ("float", ([ Tint ], Some Tfloat));
    ("int", ([ Tfloat ], Some Tint));
    ("min", ([ Tint; Tint ], Some Tint));
    ("max", ([ Tint; Tint ], Some Tint));
    ("fmin", ([ Tfloat; Tfloat ], Some Tfloat));
    ("fmax", ([ Tfloat; Tfloat ], Some Tfloat));
  ]

let arith_inst op ty pos =
  match (op, ty) with
  | Badd, Tint -> T.Add
  | Bsub, Tint -> T.Sub
  | Bmul, Tint -> T.Mul
  | Bdiv, Tint -> T.Div
  | Brem, Tint -> T.Rem
  | Badd, Tfloat -> T.Fadd
  | Bsub, Tfloat -> T.Fsub
  | Bmul, Tfloat -> T.Fmul
  | Bdiv, Tfloat -> T.Fdiv
  | Brem, Tfloat -> err pos "'%%' requires integer operands"
  | Beq, Tint -> T.Eq
  | Bne, Tint -> T.Ne
  | Blt, Tint -> T.Lt
  | Ble, Tint -> T.Le
  | Bgt, Tint -> T.Gt
  | Bge, Tint -> T.Ge
  | Beq, Tfloat -> T.Feq
  | Bne, Tfloat -> T.Fne
  | Blt, Tfloat -> T.Flt
  | Ble, Tfloat -> T.Fle
  | Bgt, Tfloat -> T.Fgt
  | Bge, Tfloat -> T.Fge
  | (Band | Bor), (Tint | Tfloat) -> assert false (* handled by short-circuit lowering *)

let is_comparison = function
  | Beq | Bne | Blt | Ble | Bgt | Bge -> true
  | Badd | Bsub | Bmul | Bdiv | Brem | Band | Bor -> false

let rec lower_expr ctx env (e : expr) : T.operand * ty =
  match e.desc with
  | Int_lit n -> (T.Imm (T.I n), Tint)
  | Float_lit x -> (T.Imm (T.F x), Tfloat)
  | Var name -> (
    match lookup env name with
    | Some b -> (T.Reg b.reg, b.vty)
    | None -> (
      match Hashtbl.find_opt ctx.globals name with
      | Some (base, None, ty) ->
        let d = fresh ctx in
        emit ctx (T.Load (d, T.Imm (T.I base)));
        (T.Reg d, ty)
      | Some (_, Some _, _) -> err e.pos "'%s' is an array; index it" name
      | None -> err e.pos "unknown variable '%s'" name))
  | Index (name, idx) -> (
    match Hashtbl.find_opt ctx.globals name with
    | Some (base, Some _, ty) ->
      let addr = lower_address ctx env e.pos base idx in
      let d = fresh ctx in
      emit ctx (T.Load (d, addr));
      (T.Reg d, ty)
    | Some (_, None, _) -> err e.pos "'%s' is a scalar global, not an array" name
    | None -> err e.pos "unknown array '%s'" name)
  | Unary (Uneg, inner) ->
    let op, ty = lower_expr ctx env inner in
    let d = fresh ctx in
    emit ctx (T.Un ((match ty with Tint -> T.Neg | Tfloat -> T.Fneg), d, op));
    (T.Reg d, ty)
  | Unary (Unot, inner) ->
    let op, ty = lower_expr ctx env inner in
    if ty <> Tint then err e.pos "'!' requires an integer operand";
    let d = fresh ctx in
    emit ctx (T.Un (T.Not, d, op));
    (T.Reg d, Tint)
  | Binary ((Band | Bor) as op, a, b) -> lower_short_circuit ctx env e.pos op a b
  | Binary (op, a, b) ->
    let opa, ta = lower_expr ctx env a in
    let opb, tb = lower_expr ctx env b in
    if ta <> tb then
      err e.pos "operand type mismatch: %s vs %s (use float()/int() to convert)" (ty_name ta)
        (ty_name tb);
    let d = fresh ctx in
    emit ctx (T.Bin (arith_inst op ta e.pos, d, opa, opb));
    (T.Reg d, if is_comparison op then Tint else ta)
  | Call_expr (name, args) -> (
    match lower_call ctx env e.pos name args with
    | Some result -> result
    | None -> err e.pos "call to '%s' returns no value; cannot be used in an expression" name)

(* [a && b] / [a || b] with C semantics: short-circuit, 0/1 result. The
   branch this creates is a real (potentially divergent) branch. *)
and lower_short_circuit ctx env pos op a b =
  let opa, ta = lower_expr ctx env a in
  if ta <> Tint then err pos "logical operators require integer operands";
  let d = fresh ctx in
  let rhs_block = new_block ctx in
  let const_block = new_block ctx in
  let done_block = new_block ctx in
  (match op with
  | Band -> terminate ctx (T.Br { cond = opa; if_true = rhs_block; if_false = const_block })
  | Bor -> terminate ctx (T.Br { cond = opa; if_true = const_block; if_false = rhs_block })
  | Badd | Bsub | Bmul | Bdiv | Brem | Beq | Bne | Blt | Ble | Bgt | Bge -> assert false);
  ctx.cur <- const_block;
  emit ctx (T.Mov (d, T.Imm (T.I (match op with Bor -> 1 | _ -> 0))));
  terminate ctx (T.Jump done_block);
  ctx.cur <- rhs_block;
  let opb, tb = lower_expr ctx env b in
  if tb <> Tint then err pos "logical operators require integer operands";
  emit ctx (T.Bin (T.Ne, d, opb, T.Imm (T.I 0)));
  terminate ctx (T.Jump done_block);
  ctx.cur <- done_block;
  (T.Reg d, Tint)

and lower_address ctx env pos base idx =
  let opi, ti = lower_expr ctx env idx in
  if ti <> Tint then err pos "array index must be an integer";
  match opi with
  | T.Imm (T.I k) -> T.Imm (T.I (base + k))
  | T.Imm (T.F _) | T.Reg _ ->
    let d = fresh ctx in
    emit ctx (T.Bin (T.Add, d, T.Imm (T.I base), opi));
    T.Reg d

(* Returns [Some (operand, ty)] for value-returning calls, [None] for void
   calls. *)
and lower_call ctx env pos name args : (T.operand * ty) option =
  let lowered = List.map (fun a -> (lower_expr ctx env a, a.pos)) args in
  let check_args expected =
    let actual = List.map (fun ((_, t), _) -> t) lowered in
    if List.length actual <> List.length expected then
      err pos "'%s' expects %d argument(s), got %d" name (List.length expected)
        (List.length actual);
    List.iter2
      (fun ((_, t), apos) exp ->
        if t <> exp then
          err apos "argument of '%s' has type %s, expected %s" name (ty_name t) (ty_name exp))
      lowered expected
  in
  let ops = List.map (fun ((o, _), _) -> o) lowered in
  match List.assoc_opt name intrinsics with
  | Some (expected, ret) -> (
    check_args expected;
    let d = fresh ctx in
    let unary_intrinsic u = emit ctx (T.Un (u, d, List.nth ops 0)) in
    let binary_intrinsic b = emit ctx (T.Bin (b, d, List.nth ops 0, List.nth ops 1)) in
    (match name with
    | "tid" -> emit ctx (T.Tid d)
    | "lane" -> emit ctx (T.Lane d)
    | "nthreads" -> emit ctx (T.Nthreads d)
    | "rand" -> emit ctx (T.Rand d)
    | "randint" -> emit ctx (T.Randint (d, List.nth ops 0))
    | "sqrt" -> unary_intrinsic T.Sqrt
    | "exp" -> unary_intrinsic T.Exp
    | "log" -> unary_intrinsic T.Log
    | "sin" -> unary_intrinsic T.Sin
    | "cos" -> unary_intrinsic T.Cos
    | "fabs" -> unary_intrinsic T.Fabs
    | "float" -> unary_intrinsic T.Itof
    | "int" -> unary_intrinsic T.Ftoi
    | "min" -> binary_intrinsic T.Min
    | "max" -> binary_intrinsic T.Max
    | "fmin" -> binary_intrinsic T.Fmin
    | "fmax" -> binary_intrinsic T.Fmax
    | _ -> assert false);
    match ret with Some t -> Some (T.Reg d, t) | None -> None)
  | None -> (
    match Hashtbl.find_opt ctx.sigs name with
    | None -> err pos "unknown function '%s'" name
    | Some (expected, ret) -> (
      check_args expected;
      match ret with
      | Some t ->
        let d = fresh ctx in
        emit ctx (T.Call { callee = name; args = ops; ret = Some d });
        Some (T.Reg d, t)
      | None ->
        emit ctx (T.Call { callee = name; args = ops; ret = None });
        None))

(* ---- statements ---- *)

(* Lowers a statement list; returns true when control can reach its end.
   Statements after a terminating statement are dead and dropped. *)
let rec lower_stmts ctx env stmts =
  let declared_here = Hashtbl.create 8 in
  let rec loop env = function
    | [] -> true
    | s :: rest ->
      let env', fellthrough = lower_stmt ctx env declared_here s in
      if fellthrough then loop env' rest else false
  in
  loop env stmts

and lower_stmt ctx env declared_here s : (string * binding) list * bool =
  note ctx s.spos;
  match s.sdesc with
  | Decl { name; ty = annot; init; mutable_ } ->
    if Hashtbl.mem declared_here name then err s.spos "redeclaration of '%s' in the same scope" name;
    Hashtbl.replace declared_here name ();
    let op, ty = lower_expr ctx env init in
    (match annot with
    | Some a when a <> ty ->
      err s.spos "'%s' declared %s but initialised with %s" name (ty_name a) (ty_name ty)
    | Some _ | None -> ());
    let reg = fresh ctx in
    emit ctx (T.Mov (reg, op));
    ((name, { reg; vty = ty; is_mutable = mutable_ }) :: env, true)
  | Assign (name, value) -> (
    match lookup env name with
    | Some b ->
      if not b.is_mutable then err s.spos "cannot assign to immutable binding '%s'" name;
      let op, ty = lower_expr ctx env value in
      if ty <> b.vty then
        err s.spos "assigning %s to '%s' of type %s" (ty_name ty) name (ty_name b.vty);
      emit ctx (T.Mov (b.reg, op));
      (env, true)
    | None -> (
      match Hashtbl.find_opt ctx.globals name with
      | Some (base, None, gty) ->
        let op, ty = lower_expr ctx env value in
        if ty <> gty then
          err s.spos "assigning %s to global '%s' of type %s" (ty_name ty) name (ty_name gty);
        emit ctx (T.Store (T.Imm (T.I base), op));
        (env, true)
      | Some (_, Some _, _) -> err s.spos "'%s' is an array; assign to an element" name
      | None -> err s.spos "unknown variable '%s'" name))
  | Index_assign (name, idx, value) -> (
    match Hashtbl.find_opt ctx.globals name with
    | Some (base, Some _, gty) ->
      let addr = lower_address ctx env s.spos base idx in
      let op, ty = lower_expr ctx env value in
      if ty <> gty then
        err s.spos "storing %s into '%s' of element type %s" (ty_name ty) name (ty_name gty);
      emit ctx (T.Store (addr, op));
      (env, true)
    | Some (_, None, _) -> err s.spos "'%s' is a scalar global, not an array" name
    | None -> err s.spos "unknown array '%s'" name)
  | If (cond, then_stmts, else_stmts) ->
    let opc, tc = lower_expr ctx env cond in
    if tc <> Tint then err s.spos "condition must be an integer";
    let then_b = new_block ctx in
    if else_stmts = [] then begin
      (* The false edge reaches the join directly, so the join always
         exists and is reachable. *)
      let join = new_block ctx in
      terminate ctx (T.Br { cond = opc; if_true = then_b; if_false = join });
      ctx.cur <- then_b;
      let ft = lower_stmts ctx env then_stmts in
      if ft then terminate ctx (T.Jump join);
      ctx.cur <- join;
      (env, true)
    end
    else begin
      let else_b = new_block ctx in
      terminate ctx (T.Br { cond = opc; if_true = then_b; if_false = else_b });
      ctx.cur <- then_b;
      let ft_then = lower_stmts ctx env then_stmts in
      let then_end = ctx.cur in
      ctx.cur <- else_b;
      let ft_else = lower_stmts ctx env else_stmts in
      let else_end = ctx.cur in
      if ft_then || ft_else then begin
        let join = new_block ctx in
        if ft_then then B.set_term ctx.func then_end (T.Jump join);
        if ft_else then B.set_term ctx.func else_end (T.Jump join);
        ctx.cur <- join;
        (env, true)
      end
      else (env, false)
    end
  | While (cond, body) ->
    let header = new_block ctx in
    terminate ctx (T.Jump header);
    ctx.cur <- header;
    note ctx s.spos;
    let opc, tc = lower_expr ctx env cond in
    if tc <> Tint then err s.spos "loop condition must be an integer";
    let body_b = new_block ctx in
    let exit_b = new_block ctx in
    terminate ctx (T.Br { cond = opc; if_true = body_b; if_false = exit_b });
    let lctx = { brk = exit_b; cont = header; cont_used = false } in
    ctx.loops <- lctx :: ctx.loops;
    ctx.cur <- body_b;
    let ft = lower_stmts ctx env body in
    if ft then terminate ctx (T.Jump header);
    ctx.loops <- List.tl ctx.loops;
    ctx.cur <- exit_b;
    (env, true)
  | For { var; from_; to_; body } ->
    let op_from, t_from = lower_expr ctx env from_ in
    if t_from <> Tint then err s.spos "for-loop bounds must be integers";
    let i_reg = fresh ctx in
    emit ctx (T.Mov (i_reg, op_from));
    let op_to, t_to = lower_expr ctx env to_ in
    if t_to <> Tint then err s.spos "for-loop bounds must be integers";
    (* Freeze the upper bound: it is evaluated once. *)
    let bound = fresh ctx in
    emit ctx (T.Mov (bound, op_to));
    let header = new_block ctx in
    terminate ctx (T.Jump header);
    ctx.cur <- header;
    note ctx s.spos;
    let cond = fresh ctx in
    emit ctx (T.Bin (T.Lt, cond, T.Reg i_reg, T.Reg bound));
    let body_b = new_block ctx in
    let exit_b = new_block ctx in
    let inc_b = new_block ctx in
    terminate ctx (T.Br { cond = T.Reg cond; if_true = body_b; if_false = exit_b });
    let lctx = { brk = exit_b; cont = inc_b; cont_used = false } in
    ctx.loops <- lctx :: ctx.loops;
    ctx.cur <- body_b;
    let env' = (var, { reg = i_reg; vty = Tint; is_mutable = false }) :: env in
    let ft = lower_stmts ctx env' body in
    if ft then terminate ctx (T.Jump inc_b);
    ctx.loops <- List.tl ctx.loops;
    if ft || lctx.cont_used then begin
      ctx.cur <- inc_b;
      emit ctx (T.Bin (T.Add, i_reg, T.Reg i_reg, T.Imm (T.I 1)));
      terminate ctx (T.Jump header)
    end
    else Hashtbl.remove ctx.func.blocks inc_b;
    ctx.cur <- exit_b;
    (env, true)
  | Break -> (
    match ctx.loops with
    | [] -> err s.spos "'break' outside a loop"
    | l :: _ ->
      terminate ctx (T.Jump l.brk);
      (env, false))
  | Continue -> (
    match ctx.loops with
    | [] -> err s.spos "'continue' outside a loop"
    | l :: _ ->
      l.cont_used <- true;
      terminate ctx (T.Jump l.cont);
      (env, false))
  | Return None ->
    if ctx.is_kernel then terminate ctx T.Exit
    else begin
      (match ctx.ret_ty with
      | Some t -> err s.spos "function must return a value of type %s" (ty_name t)
      | None -> ());
      terminate ctx (T.Ret None)
    end;
    (env, false)
  | Return (Some value) ->
    if ctx.is_kernel then err s.spos "kernels cannot return values";
    let op, ty = lower_expr ctx env value in
    (match ctx.ret_ty with
    | None -> err s.spos "function has no declared return type"
    | Some t when t <> ty -> err s.spos "returning %s from a function of type %s" (ty_name ty) (ty_name t)
    | Some _ -> ());
    terminate ctx (T.Ret (Some op));
    (env, false)
  | Expr_stmt e ->
    (match e.desc with
    | Call_expr (name, args) -> ignore (lower_call ctx env e.pos name args)
    | Int_lit _ | Float_lit _ | Var _ | Index _ | Binary _ | Unary _ ->
      ignore (lower_expr ctx env e));
    (env, true)
  | Label name ->
    if List.mem_assoc name ctx.func.labels then err s.spos "duplicate label '%s'" name;
    let b = new_block ctx in
    terminate ctx (T.Jump b);
    ctx.cur <- b;
    note ctx s.spos;
    B.add_label ctx.func name b;
    (env, true)
  | Predict { target; threshold } ->
    let b = new_block ctx in
    terminate ctx (T.Jump b);
    ctx.cur <- b;
    note ctx s.spos;
    let hint_target =
      match target with
      | Tlabel l -> T.Label_target l
      | Tfunc f -> T.Callee_target f
    in
    B.add_hint ctx.func { T.target = hint_target; region_start = b; threshold };
    (env, true)

(* ---- top level ---- *)

let lower (ast : program) =
  let p = B.create_program () in
  let globals = Hashtbl.create 8 in
  List.iter
    (fun g ->
      if Hashtbl.mem globals g.gname then
        err { line = 0; col = 0 } "duplicate global '%s'" g.gname;
      (match g.gsize with
      | Some n when n <= 0 -> err { line = 0; col = 0 } "global '%s' has non-positive size" g.gname
      | Some _ | None -> ());
      let size = Option.value g.gsize ~default:1 in
      let base = B.alloc_global ~float:(g.gty = Tfloat) p g.gname size in
      Hashtbl.replace globals g.gname (base, g.gsize, g.gty))
    ast.globals;
  let sigs = Hashtbl.create 8 in
  List.iter
    (fun (f : func_decl) ->
      if Hashtbl.mem sigs f.name then err f.fpos "duplicate function '%s'" f.name;
      if List.mem_assoc f.name intrinsics then
        err f.fpos "'%s' shadows a builtin intrinsic" f.name;
      Hashtbl.replace sigs f.name (List.map snd f.params, f.ret))
    ast.funcs;
  (* At least one kernel; the first declared becomes the default entry,
     the rest stay launchable by name (multi-kernel programs). *)
  (match List.filter (fun (f : func_decl) -> f.is_kernel) ast.funcs with
  | _ :: _ -> ()
  | [] -> err { line = 0; col = 0 } "no kernel declared");
  List.iter
    (fun (fd : func_decl) ->
      let f = B.create_func p fd.name ~params:(List.length fd.params) in
      if fd.is_kernel then B.add_kernel p fd.name;
      let env =
        List.mapi
          (fun i (name, ty) -> (name, { reg = i; vty = ty; is_mutable = true }))
          fd.params
        |> List.rev
      in
      let ctx =
        {
          program = p;
          func = f;
          sigs;
          globals;
          is_kernel = fd.is_kernel;
          ret_ty = fd.ret;
          cur = f.entry;
          loops = [];
        }
      in
      let ft = lower_stmts ctx env fd.body in
      if ft then
        if fd.is_kernel then terminate ctx T.Exit
        else
          (* Implicit return: a zero of the declared type. *)
          terminate ctx
            (T.Ret
               (match fd.ret with
               | None -> None
               | Some Tint -> Some (T.Imm (T.I 0))
               | Some Tfloat -> Some (T.Imm (T.F 0.0)))))
    ast.funcs;
  Ir.Verifier.check_program_exn p;
  p

let compile_source src = lower (Parser.parse_string src)
