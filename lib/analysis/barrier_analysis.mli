(** The paper's two barrier dataflow analyses (§4.2.1) and the conflict
    detection that drives deconfliction (§4.3).

    Both analyses run at instruction granularity: block-level fixpoints via
    {!Dataflow}, then an in-block replay exposes the state before and after
    every instruction, which is where [CancelBarrier]/[RejoinBarrier]
    placement decisions are made.

    Effects of the primitives (Table 1):
    - [Join]/[Rejoin] — gen for the joined analysis, kill for liveness;
    - [Wait]/[Wait_threshold] — kill for the joined analysis, gen for
      liveness;
    - [Cancel] — kill for the joined analysis only. The paper's equations
      ignore [Cancel]/[Rejoin] because they are not yet inserted when the
      analyses first run; when the analyses are re-run for conflict
      detection the inserted primitives participate with these effects. *)

open Sets

type point = { block : int; index : int }
(** A program point: before instruction [index] of [block]; [index] equal
    to the instruction count denotes the point before the terminator. *)

type t

(** [run func] computes both analyses for every barrier mentioned in
    [func].

    [call_waits callee] names the barriers whose wait was propagated to
    [callee]'s entry (§4.4): in the caller, a call to [callee] then acts
    as the wait event — clearing membership for the joined analysis and
    generating liveness for the backward analysis — mirroring the
    caller-side model {!Interproc} itself uses. Defaults to the empty
    mapping, i.e. purely intraprocedural analysis. *)
val run : ?call_waits:(string -> Int_set.t) -> Ir.Types.func -> t

(** Set of barriers joined (member of an uncleared barrier) at block
    entry/exit — Equation 1. *)
val joined_in : t -> int -> Int_set.t

val joined_out : t -> int -> Int_set.t

(** Set of live barriers (a [Wait] lies on some path ahead) at block
    entry/exit — Equation 2. *)
val live_in : t -> int -> Int_set.t

val live_out : t -> int -> Int_set.t

(** [joined_at t point] / [live_at t point] — instruction-granular states
    (state holding just before the instruction at [point]). *)
val joined_at : t -> point -> Int_set.t

val live_at : t -> point -> Int_set.t

(** [live_points t barrier] — every program point where [barrier] is live
    in the Equation-2 (backward) sense. *)
val live_points : t -> int -> point list

(** [joined_points t barrier] — every program point where a thread may be
    an uncleared member of [barrier]: the §4.3 "live range ... from the
    moment threads join the barrier until the barrier is cleared", which
    Figure 5's interval arrows depict. *)
val joined_points : t -> int -> point list

(** [conflicts t] — pairs of barriers whose {!joined_points} ranges
    overlap non-inclusively (neither contains the other), i.e. the §4.3
    conflicts. Each unordered pair is reported once, smaller id first. *)
val conflicts : t -> (int * int) list

val pp : Format.formatter -> t -> unit
