let synthetic_exit = -1

type t = {
  entry : int;
  order : int list; (* reverse post order from entry *)
  succ_tbl : (int, int list) Hashtbl.t;
  pred_tbl : (int, int list) Hashtbl.t;
}

let lookup tbl id = Option.value (Hashtbl.find_opt tbl id) ~default:[]

let compute_rpo ~entry ~succs_of =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let rec visit id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      List.iter visit (succs_of id);
      order := id :: !order
    end
  in
  visit entry;
  !order

let build ~entry ~edges =
  let succ_tbl = Hashtbl.create 16 in
  let pred_tbl = Hashtbl.create 16 in
  List.iter
    (fun (src, dst) ->
      Hashtbl.replace succ_tbl src (lookup succ_tbl src @ [ dst ]);
      Hashtbl.replace pred_tbl dst (lookup pred_tbl dst @ [ src ]))
    edges;
  let order = compute_rpo ~entry ~succs_of:(lookup succ_tbl) in
  (* Restrict edge tables to reachable nodes so preds of a reachable node
     never mention unreachable ones. *)
  let reachable = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace reachable id ()) order;
  let restrict tbl =
    Hashtbl.iter
      (fun id targets ->
        if Hashtbl.mem reachable id then
          Hashtbl.replace tbl id (List.filter (Hashtbl.mem reachable) targets)
        else Hashtbl.remove tbl id)
      (Hashtbl.copy tbl)
  in
  restrict succ_tbl;
  restrict pred_tbl;
  { entry; order; succ_tbl; pred_tbl }

let of_func ?live_edge (f : Ir.Types.func) =
  let keep = match live_edge with None -> fun _ _ -> true | Some p -> p in
  let edges = ref [] in
  Ir.Types.iter_blocks f (fun b ->
      List.iter
        (fun s -> if keep b.Ir.Types.id s then edges := (b.Ir.Types.id, s) :: !edges)
        (Ir.Types.successors b.Ir.Types.term));
  build ~entry:f.Ir.Types.entry ~edges:(List.rev !edges)

let entry g = g.entry
let nodes g = g.order
let succs g id = lookup g.succ_tbl id
let preds g id = lookup g.pred_tbl id
let mem g id = List.mem id g.order
let size g = List.length g.order
let rpo g = g.order

let reverse g =
  let sinks = List.filter (fun id -> succs g id = []) g.order in
  let flipped =
    List.concat_map (fun src -> List.map (fun dst -> (dst, src)) (succs g src)) g.order
  in
  let exit_edges = List.map (fun sink -> (synthetic_exit, sink)) sinks in
  build ~entry:synthetic_exit ~edges:(exit_edges @ flipped)

let pp ppf g =
  Format.fprintf ppf "entry bb%d@." g.entry;
  List.iter
    (fun id ->
      Format.fprintf ppf "bb%d -> [%s]@." id
        (String.concat "; " (List.map string_of_int (succs g id))))
    g.order
