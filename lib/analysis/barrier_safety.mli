(** srlint: static barrier-safety checker for post-pass IR (the paper's
    §4 deconfliction rules as compile-time proof obligations).

    The checker runs an abstract interpretation over every function's
    CFG. The abstract state at a program point is the pair

    - [singles]: slots some thread {e may} hold (arrived via
      [Join]/[Rejoin] and not yet released by [Wait]/[Cancel]/fire) when
      reaching the point, and
    - [pairs]: unordered slot pairs a {e single} thread may hold
      simultaneously along some path — the relational refinement that
      keeps CFG merges from manufacturing spurious overlaps.

    Both are propagated with the {!Dataflow} solver; a companion
    must-hold analysis (set intersection at merges) supports the
    double-arrive check. Calls are made interprocedural with
    {!Callgraph} summaries: a call to a function that waits at entry is
    the wait event in the caller (mirroring §4.4 and the Deconflict
    call-as-wait modeling), a call into a function that may block deeper
    inside is a blocking point for the caller's held slots, and slots
    still held at a callee's returns escape into the caller's state.

    From the abstract states the checker builds the {e waits-for}
    relation: slot [c] waits for slot [b] when some thread may block at
    a wait on [b] while still holding [c] — so [c] cannot fire until [b]
    does. A deadlock reachable by any scheduler requires a cycle in this
    relation (in a stalled state every barrier with blocked lanes has a
    participant blocked on some other barrier), so an acyclic relation
    proves the placement deadlock-free. *)

type category =
  | Bypassable_wait
      (** A cycle in the waits-for relation: each wait in the cycle can
          be bypassed by a participating thread blocked on the next
          slot, so none of them can fire — deadlock (rule 1). *)
  | Double_arrive
      (** [Join] on a slot every path has already joined and not yet
          released (arrive-after-arrive on a live slot, rule 2). *)
  | Unallocated_slot
      (** Barrier primitive on a slot id outside the program's
          allocated range, or a wait/cancel on a slot with no arrive
          site anywhere in the program (rule 3). *)
  | Unseparated_overlap
      (** Two slots whose live ranges partially overlap and that can
          each block a holder of the other — the conflict shape
          Deconflict is required to separate (rule 4). *)
  | Undominated_wait
      (** A speculative wait (or predicted call site) not dominated by
          its [BSSY] join block (rule 5). *)

val category_name : category -> string
(** Stable kebab-case name used in machine-readable diagnostics. *)

(** Where a finding anchors: function, block, instruction index, and the
    source line recorded at lowering (when provenance survived). *)
type site = { in_func : string; block : int; index : int; src_line : int option }

type finding = {
  category : category;
  slot : Ir.Types.barrier; (* primary offending slot *)
  site : site;
  message : string;
  fix : string; (* actionable fix hint *)
  related : Ir.Types.barrier list;
      (* the other slots implicated: the full cycle for
         [Bypassable_wait] (sorted, includes [slot]), the partner slot
         for [Unseparated_overlap], [] otherwise. {!Barrier_repair}
         enumerates candidate edits from these. *)
}

(** A speculative barrier's provenance, used for the dominance rule:
    the slot, the function holding its [BSSY], and the join block. The
    synchronization passes report these via their [applied] records. *)
type speculative = { sfunc : string; slot : Ir.Types.barrier; join_block : int }

val check : ?speculative:speculative list -> Ir.Types.program -> finding list
(** [check p] returns all findings, sorted by function, block,
    instruction index and category. An empty list is a proof (up to the
    abstraction) that no barrier placement can deadlock. *)

val hint : finding -> string
(** Stable kebab-case edit-class name ([insert-cancel], [split-slot],
    [remap-slot], [hoist-wait]) the checker believes would clear the
    finding — the vocabulary {!Barrier_repair} enumerates candidates in. *)

val pp_finding : Format.formatter -> finding -> unit
(** Human-readable, multi-line-free rendering. *)

val pp_machine : Format.formatter -> finding -> unit
(** Machine-readable one-liner:
    [srlint: category=<c> func=<f> block=bb<n> line=<l|?> slot=b<id>
    msg=<message> fix=<hint> hint=<edit-class>]. *)

val render : finding list -> string
(** All findings, one machine-readable line each. *)
