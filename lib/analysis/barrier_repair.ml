(* Repair synthesis for srlint findings (GPURepair-style): enumerate
   candidate minimal barrier edits per finding category, then search
   cost-ordered edit sequences — fewest edits first, ties broken by the
   §4.5 cost model — accepting a candidate program only when a full
   Barrier_safety.check re-run comes back empty and the IR verifier
   stays clean. The acceptance condition is the point: a repair is not a
   heuristic patch but a placement the checker *proves* deadlock-free,
   so everything downstream (the differential oracles, the digest
   contract) holds of it by the same argument as for an unedited clean
   program.

   This module lives in lib/analysis (below lib/passes), so it carries
   its own small block-editing helpers instead of using Passes.Edit. *)

module T = Ir.Types
module BS = Barrier_safety
open Sets

type edit =
  | Insert_cancel of { in_func : string; block : int; index : int; cancel : T.barrier }
      (* withdraw [cancel] immediately before the wait/call at the site,
         the static twin of Deconflict's dynamic-cancel resolution *)
  | Move_wait of {
      in_func : string;
      from_block : int;
      from_index : int;
      to_block : int;
      slot : T.barrier;
      hoist : bool; (* true when [to_block] is the BSSY join block *)
    }
  | Split_slot of {
      in_func : string;
      slot : T.barrier;
      fresh : T.barrier; (* the program's next_barrier at enumeration time *)
      sites : (int * int) list; (* (block, index) sites retargeted to [fresh] *)
    }
  | Remap_slot of { in_func : string; block : int; index : int; to_slot : T.barrier }
  | Drop_barrier of { in_func : string; block : int; index : int; slot : T.barrier }

let edit_class = function
  | Insert_cancel _ -> "insert-cancel"
  | Move_wait { hoist = true; _ } -> "hoist-wait"
  | Move_wait { hoist = false; _ } -> "sink-wait"
  | Split_slot _ -> "split-slot"
  | Remap_slot _ -> "remap-slot"
  | Drop_barrier _ -> "drop-barrier"

let edit_func = function
  | Insert_cancel { in_func; _ }
  | Move_wait { in_func; _ }
  | Split_slot { in_func; _ }
  | Remap_slot { in_func; _ }
  | Drop_barrier { in_func; _ } -> in_func

let edit_anchor = function
  | Insert_cancel { block; index; _ } -> (block, index)
  | Move_wait { from_block; from_index; _ } -> (from_block, from_index)
  | Split_slot { sites; _ } -> (match sites with s :: _ -> s | [] -> (0, 0))
  | Remap_slot { block; index; _ } -> (block, index)
  | Drop_barrier { block; index; _ } -> (block, index)

let edit_slot = function
  | Insert_cancel { cancel; _ } -> cancel
  | Move_wait { slot; _ } -> slot
  | Split_slot { slot; _ } -> slot
  | Remap_slot { to_slot; _ } -> to_slot
  | Drop_barrier { slot; _ } -> slot

let describe = function
  | Insert_cancel { cancel; _ } ->
    Printf.sprintf "insert cancel.b%d before the blocking wait" cancel
  | Move_wait { slot; to_block; hoist; _ } ->
    Printf.sprintf "%s the wait on b%d into bb%d%s"
      (if hoist then "hoist" else "sink")
      slot to_block
      (if hoist then " (its join block)" else "")
  | Split_slot { slot; fresh; sites; _ } ->
    Printf.sprintf "split slot b%d: retarget %d trailing site(s) to fresh slot b%d" slot
      (List.length sites) fresh
  | Remap_slot { to_slot; _ } -> Printf.sprintf "remap to allocated slot b%d" to_slot
  | Drop_barrier { slot; _ } -> Printf.sprintf "delete the primitive on b%d" slot

(* Same key=value shape as Barrier_safety.pp_machine, under the srfix
   prefix; edit= names the class with the hint= vocabulary. *)
let pp_edit_machine ppf e =
  let block, index = edit_anchor e in
  Format.fprintf ppf "srfix: edit=%s func=%s block=bb%d index=%d slot=b%d fix=%s"
    (edit_class e) (edit_func e) block index (edit_slot e) (describe e)

type outcome =
  | Clean
  | Repaired of { program : T.program; edits : edit list; cost : float; explored : int }
  | Unrepairable of { blocking : BS.finding; explored : int }

(* ------------------------------------------------------------------ *)
(* Local block editing (the analysis layer cannot see Passes.Edit)     *)
(* ------------------------------------------------------------------ *)

let insert_at (f : T.func) bid idx inst =
  let b = T.block f bid in
  let n = List.length b.insts in
  if idx < 0 || idx > n then invalid_arg "Barrier_repair.insert_at";
  b.insts <-
    List.filteri (fun i _ -> i < idx) b.insts
    @ (inst :: List.filteri (fun i _ -> i >= idx) b.insts)

let remove_at (f : T.func) bid idx =
  let b = T.block f bid in
  if idx < 0 || idx >= List.length b.insts then invalid_arg "Barrier_repair.remove_at";
  let removed = List.nth b.insts idx in
  b.insts <- List.filteri (fun i _ -> i <> idx) b.insts;
  removed

let rewrite_slot_at (f : T.func) bid idx slot =
  let b = T.block f bid in
  b.insts <-
    List.mapi
      (fun i inst ->
        if i <> idx then inst
        else
          match inst with
          | T.Join _ -> T.Join slot
          | T.Rejoin _ -> T.Rejoin slot
          | T.Wait _ -> T.Wait slot
          | T.Wait_threshold (_, k) -> T.Wait_threshold (slot, k)
          | T.Cancel _ -> T.Cancel slot
          | T.Arrived (d, _) -> T.Arrived (d, slot)
          | _ -> invalid_arg "Barrier_repair.rewrite_slot_at: not a barrier primitive")
      b.insts

(* Mutates [p] (callers pass a private copy). *)
let apply (p : T.program) edit =
  let func name = Hashtbl.find p.T.funcs name in
  match edit with
  | Insert_cancel { in_func; block; index; cancel } ->
    insert_at (func in_func) block index (T.Cancel cancel)
  | Move_wait { in_func; from_block; from_index; to_block; _ } ->
    let f = func in_func in
    let inst = remove_at f from_block from_index in
    let b = T.block f to_block in
    let rec arrive_prefix i = function
      | (T.Join _ | T.Rejoin _) :: rest -> arrive_prefix (i + 1) rest
      | _ -> i
    in
    insert_at f to_block (arrive_prefix 0 b.insts) inst
  | Split_slot { in_func; fresh; sites; _ } ->
    let f = func in_func in
    List.iter (fun (b, i) -> rewrite_slot_at f b i fresh) sites;
    p.next_barrier <- max p.next_barrier (fresh + 1)
  | Remap_slot { in_func; block; index; to_slot } ->
    rewrite_slot_at (func in_func) block index to_slot
  | Drop_barrier { in_func; block; index; _ } -> ignore (remove_at (func in_func) block index)

(* ------------------------------------------------------------------ *)
(* Candidate enumeration                                               *)
(* ------------------------------------------------------------------ *)

let sorted_funcs (p : T.program) =
  Hashtbl.fold (fun n _ acc -> n :: acc) p.funcs [] |> List.sort compare

(* Slots waited in a callee's entry block: a call to it is the wait
   event in the caller (§4.4), so it is a cancel-insertion point too. *)
let entry_waits (p : T.program) callee =
  match Hashtbl.find_opt p.T.funcs callee with
  | None -> Int_set.empty
  | Some f ->
    List.fold_left
      (fun acc i ->
        match i with T.Wait b | T.Wait_threshold (b, _) -> Int_set.add b acc | _ -> acc)
      Int_set.empty (T.block f f.entry).insts

(* All program points where a thread may block on [slot]: literal waits
   plus calls whose callee entry-waits on it. Deterministic order:
   (func, block, index). *)
let wait_sites (p : T.program) slot =
  List.concat_map
    (fun n ->
      let f = Hashtbl.find p.T.funcs n in
      List.concat_map
        (fun bid ->
          (T.block f bid).insts
          |> List.mapi (fun i inst -> (i, inst))
          |> List.filter_map (fun (i, inst) ->
                 match inst with
                 | T.Wait x | T.Wait_threshold (x, _) when x = slot -> Some (n, bid, i)
                 | T.Call { callee; _ } when Int_set.mem slot (entry_waits p callee) ->
                   Some (n, bid, i)
                 | _ -> None))
        (T.block_ids f))
    (sorted_funcs p)

(* Barrier-primitive sites on [slot] inside one function, ordered by
   (block, index) — the split-point enumeration order. *)
let slot_sites_in (p : T.program) fname slot =
  match Hashtbl.find_opt p.T.funcs fname with
  | None -> []
  | Some f ->
    List.concat_map
      (fun bid ->
        (T.block f bid).insts
        |> List.mapi (fun i inst -> (i, inst))
        |> List.filter_map (fun (i, inst) ->
               match T.barrier_of inst with
               | Some x when x = slot -> Some (bid, i, inst)
               | _ -> None))
      (T.block_ids f)

let is_arrive = function T.Join _ | T.Rejoin _ -> true | _ -> false

(* Slots with at least one arrive site anywhere — the remap targets. *)
let arrive_slots (p : T.program) =
  List.fold_left
    (fun acc n ->
      let f = Hashtbl.find p.T.funcs n in
      let acc = ref acc in
      T.iter_blocks f (fun b ->
          List.iter
            (fun i ->
              match i with T.Join x | T.Rejoin x -> acc := Int_set.add x !acc | _ -> ())
            b.insts);
      !acc)
    Int_set.empty (sorted_funcs p)

let weights = Costmodel.default_weights

(* Estimated execution frequency of a block: default_trip per loop
   nesting level, the §4.5 static guess. This is the tie-breaker between
   equally-sized repairs — prefer inserting the cancel (or landing the
   moved wait) in the shallowest block. *)
let block_freq (p : T.program) fname bid =
  match Hashtbl.find_opt p.T.funcs fname with
  | None -> 1.0
  | Some f ->
    let g = Cfg.of_func f in
    if not (Cfg.mem g bid) then 1.0
    else
      let loops = Loops.compute g (Dom.compute g) in
      float_of_int weights.Costmodel.default_trip ** float_of_int (Loops.depth_of loops bid)

let wb = float_of_int weights.Costmodel.barrier

(* Split candidates for [slot] in [fname]: cut the (block, index)-ordered
   site list at an arrive site and retarget the suffix to a fresh slot —
   the inverse of merging two independent barrier regions into one id. *)
let split_candidates (p : T.program) fname slot =
  let sites = slot_sites_in p fname slot in
  let fresh = p.T.next_barrier in
  let n = List.length sites in
  List.filteri (fun k (_, _, inst) -> k > 0 && k < n && is_arrive inst) sites
  |> List.filteri (fun i _ -> i < 3)
  |> List.map (fun (cut_block, cut_index, _) ->
         let suffix =
           List.filter
             (fun (b, i, _) -> (b, i) >= (cut_block, cut_index))
             sites
           |> List.map (fun (b, i, _) -> (b, i))
         in
         (Split_slot { in_func = fname; slot; fresh; sites = suffix }, wb))

(* Cancel-insertion candidates: withdraw [cancel] immediately before
   every site where a thread may block on [waited] while holding it. *)
let cancel_candidates (p : T.program) ~waited ~cancel =
  List.map
    (fun (fn, b, i) ->
      (Insert_cancel { in_func = fn; block = b; index = i; cancel }, wb *. block_freq p fn b))
    (wait_sites p waited)

let candidates ?(speculative = []) (p : T.program) (fd : BS.finding) =
  match fd.BS.category with
  | BS.Bypassable_wait ->
    (* Break the cycle: before each point where a cycle slot is waited,
       withdraw one of the other cycle slots (the bypassable edge). *)
    let cycle = match fd.BS.related with [] -> [ fd.BS.slot ] | c -> c in
    List.concat_map
      (fun waited ->
        List.concat_map
          (fun cancel -> if cancel = waited then [] else cancel_candidates p ~waited ~cancel)
          cycle)
      cycle
  | BS.Unseparated_overlap ->
    let x = fd.BS.slot in
    let y = match fd.BS.related with other :: _ -> other | [] -> x in
    split_candidates p fd.BS.site.BS.in_func x
    @ split_candidates p fd.BS.site.BS.in_func y
    @ cancel_candidates p ~waited:x ~cancel:y
    @ cancel_candidates p ~waited:y ~cancel:x
  | BS.Double_arrive ->
    let fn = fd.BS.site.BS.in_func in
    let here = (fd.BS.site.BS.block, fd.BS.site.BS.index) in
    (* Prefer the split whose cut is the offending join itself: the
       arrive-after-arrive region becomes its own fresh slot. *)
    let splits = split_candidates p fn fd.BS.slot in
    let at_site, elsewhere =
      List.partition
        (fun (e, _) ->
          match e with Split_slot { sites = s :: _; _ } -> s = here | _ -> false)
        splits
    in
    at_site @ elsewhere
    @ [
        ( Drop_barrier
            { in_func = fn; block = fd.BS.site.BS.block; index = fd.BS.site.BS.index;
              slot = fd.BS.slot },
          4.0 *. wb );
      ]
  | BS.Unallocated_slot ->
    let fn = fd.BS.site.BS.in_func in
    let site = (fd.BS.site.BS.block, fd.BS.site.BS.index) in
    let targets = Int_set.elements (arrive_slots p) in
    let targets = List.filteri (fun i _ -> i < 4) targets in
    List.map
      (fun t ->
        ( Remap_slot { in_func = fn; block = fst site; index = snd site; to_slot = t },
          2.0 *. wb ))
      (List.filter (fun t -> t <> fd.BS.slot) targets)
    @ [
        ( Drop_barrier { in_func = fn; block = fst site; index = snd site; slot = fd.BS.slot },
          4.0 *. wb );
      ]
  | BS.Undominated_wait -> (
    let fn = fd.BS.site.BS.in_func in
    let bid = fd.BS.site.BS.block and idx = fd.BS.site.BS.index in
    let f = Hashtbl.find_opt p.T.funcs fn in
    let inst =
      match f with
      | Some f -> List.nth_opt (T.block f bid).T.insts idx
      | None -> None
    in
    let sp =
      List.find_opt
        (fun (s : BS.speculative) -> s.BS.sfunc = fn && s.BS.slot = fd.BS.slot)
        speculative
    in
    match inst with
    | Some (T.Wait _ | T.Wait_threshold _) ->
      let moves =
        match (sp, f) with
        | Some sp, Some f ->
          let g = Cfg.of_func f in
          let jb = sp.BS.join_block in
          if not (Cfg.mem g jb) then []
          else begin
            let dom = Dom.compute g in
            let hoist =
              ( Move_wait
                  { in_func = fn; from_block = bid; from_index = idx; to_block = jb;
                    slot = fd.BS.slot; hoist = true },
                wb *. block_freq p fn jb )
            in
            let sinks =
              List.filter
                (fun b -> b <> jb && b <> bid && Dom.dominates dom jb b)
                (List.sort compare (Cfg.nodes g))
              |> List.filteri (fun i _ -> i < 3)
              |> List.map (fun b ->
                     ( Move_wait
                         { in_func = fn; from_block = bid; from_index = idx; to_block = b;
                           slot = fd.BS.slot; hoist = false },
                       wb *. block_freq p fn b ))
            in
            hoist :: sinks
          end
        | _ -> []
      in
      moves
      @ [
          ( Insert_cancel { in_func = fn; block = bid; index = idx; cancel = fd.BS.slot },
            wb *. block_freq p fn bid );
          ( Drop_barrier { in_func = fn; block = bid; index = idx; slot = fd.BS.slot },
            4.0 *. wb );
        ]
    | Some (T.Call _) ->
      (* A predicted call site outside the join's dominance region: the
         lane withdraws before calling, turning the callee's entry wait
         into a no-op for it. *)
      [
        ( Insert_cancel { in_func = fn; block = bid; index = idx; cancel = fd.BS.slot },
          wb *. block_freq p fn bid );
      ]
    | _ -> [])

(* ------------------------------------------------------------------ *)
(* The search                                                          *)
(* ------------------------------------------------------------------ *)

let default_max_edits = 6
let default_max_states = 256

module Frontier = Map.Make (struct
  type t = int * float * int (* (edits so far, accumulated cost, insertion seq) *)

  let compare = compare
end)

let repair ?(speculative = []) ?(max_edits = default_max_edits)
    ?(max_states = default_max_states) (p : T.program) =
  let check q = BS.check ~speculative q in
  match check p with
  | [] -> Clean
  | fs0 ->
    let key q = Format.asprintf "%a" Ir.Printer.pp_program q in
    let seen = Hashtbl.create 64 in
    Hashtbl.replace seen (key p) ();
    (* States carry their remaining findings; [] marks a solved state.
       Acceptance happens when a solved state is POPPED, not when it is
       generated: the frontier orders by (edit count, cost, insertion
       order), so the repair returned is minimal in edits, then cheapest
       by the §4.5 cost model, then first-enumerated — the documented
       tie-break. *)
    let frontier = ref (Frontier.singleton (0, 0.0, 0) (p, [], fs0)) in
    let seq = ref 0 in
    let explored = ref 0 in
    (* For the unrepairable report: the first finding of the
       closest-to-clean state reached, so the caller learns what
       resisted repair, not just what the input looked like. *)
    let blocking = ref (List.hd fs0) in
    let best = ref (List.length fs0, 0) in
    let result = ref None in
    while !result = None && (not (Frontier.is_empty !frontier)) && !explored < max_states do
      let ((n_edits, cost, _) as k), (q, edits, fs) = Frontier.min_binding !frontier in
      frontier := Frontier.remove k !frontier;
      match fs with
      | [] -> result := Some (Repaired { program = q; edits; cost; explored = !explored })
      | first :: _ ->
        incr explored;
        if (List.length fs, n_edits) < !best then begin
          best := (List.length fs, n_edits);
          blocking := first
        end;
        if n_edits < max_edits then
          List.iter
            (fun (e, ecost) ->
              let q' = Ir.Builder.copy_program q in
              match apply q' e with
              | exception _ -> ()
              | () ->
                if Ir.Verifier.check_program q' = [] then begin
                  let kq = key q' in
                  if not (Hashtbl.mem seen kq) then begin
                    Hashtbl.replace seen kq ();
                    incr seq;
                    frontier :=
                      Frontier.add
                        (n_edits + 1, cost +. ecost, !seq)
                        (q', edits @ [ e ], check q')
                        !frontier
                  end
                end)
            (candidates ~speculative q first)
    done;
    (match !result with
    | Some r -> r
    | None -> Unrepairable { blocking = !blocking; explored = !explored })

let render_edits edits =
  String.concat "\n" (List.map (Format.asprintf "%a" pp_edit_machine) edits)
