open Sets

type func_info = {
  divergent_regs : Int_set.t;
  divergent_branches : Int_set.t;
  returns_divergent : bool;
  divergent_loads : int;
}

type t = { infos : (string, func_info) Hashtbl.t }

let op_divergent divregs = function
  | Ir.Types.Reg r -> Int_set.mem r divregs
  | Ir.Types.Imm _ -> false

(* Blocks control-dependent on at least one divergent branch: X is control
   dependent on branch block B iff B is in X's post-dominance frontier. *)
let control_dependent_blocks g pdom divergent_branches =
  let rgraph = Dom.Post.graph pdom in
  let tree = Dom.Post.tree pdom in
  List.filter
    (fun x ->
      let pdf = Dom.frontier tree rgraph x in
      List.exists (fun b -> Int_set.mem b divergent_branches) pdf)
    (Cfg.nodes g)
  |> Int_set.of_list

let analyze_func ~callee_div (f : Ir.Types.func) ~params_divergent =
  let g = Cfg.of_func f in
  let pdom = Dom.Post.compute g in
  let divregs = ref (if params_divergent then Int_set.of_list f.params else Int_set.empty) in
  let divbranches = ref Int_set.empty in
  let returns = ref false in
  let changed = ref true in
  while !changed do
    changed := false;
    let cd_blocks = control_dependent_blocks g pdom !divbranches in
    let mark r =
      if not (Int_set.mem r !divregs) then begin
        divregs := Int_set.add r !divregs;
        changed := true
      end
    in
    Ir.Types.iter_blocks f (fun b ->
        let under_divergence = Int_set.mem b.id cd_blocks in
        List.iter
          (fun inst ->
            let any_use_div =
              List.exists (fun r -> Int_set.mem r !divregs) (Ir.Types.uses inst)
            in
            let intrinsically_div =
              match inst with
              | Ir.Types.Tid _ | Ir.Types.Lane _ | Ir.Types.Rand _ | Ir.Types.Randint _
              | Ir.Types.Arrived _ -> true
              | Ir.Types.Call { callee; _ } -> callee_div callee
              | Ir.Types.Bin _ | Ir.Types.Un _ | Ir.Types.Mov _ | Ir.Types.Load _
              | Ir.Types.Store _ | Ir.Types.Nthreads _ | Ir.Types.Join _ | Ir.Types.Rejoin _
              | Ir.Types.Wait _ | Ir.Types.Wait_threshold _ | Ir.Types.Cancel _ -> false
            in
            if any_use_div || intrinsically_div || under_divergence then
              List.iter mark (Ir.Types.defs inst))
          b.insts;
        (match b.term with
        | Ir.Types.Br { cond; _ } ->
          if op_divergent !divregs cond && not (Int_set.mem b.id !divbranches) then begin
            divbranches := Int_set.add b.id !divbranches;
            changed := true
          end
        | Ir.Types.Ret op ->
          let value_div =
            match op with Some o -> op_divergent !divregs o | None -> false
          in
          if (value_div || under_divergence) && not !returns then begin
            returns := true;
            changed := true
          end
        | Ir.Types.Jump _ | Ir.Types.Exit -> ()))
  done;
  let divergent_loads = ref 0 in
  Ir.Types.iter_blocks f (fun b ->
      List.iter
        (fun inst ->
          match inst with
          | Ir.Types.Load (_, addr) | Ir.Types.Store (addr, _) ->
            if op_divergent !divregs addr then incr divergent_loads
          | Ir.Types.Bin _ | Ir.Types.Un _ | Ir.Types.Mov _ | Ir.Types.Tid _ | Ir.Types.Lane _
          | Ir.Types.Nthreads _ | Ir.Types.Rand _ | Ir.Types.Randint _ | Ir.Types.Call _
          | Ir.Types.Join _ | Ir.Types.Rejoin _ | Ir.Types.Wait _ | Ir.Types.Wait_threshold _
          | Ir.Types.Cancel _ | Ir.Types.Arrived _ -> ())
        b.insts);
  {
    divergent_regs = !divregs;
    divergent_branches = !divbranches;
    returns_divergent = !returns;
    divergent_loads = !divergent_loads;
  }

let run (p : Ir.Types.program) =
  let cg = Callgraph.build p in
  let infos = Hashtbl.create 8 in
  let callee_div name =
    match Hashtbl.find_opt infos name with
    | Some info -> info.returns_divergent
    | None -> true (* cycle or not-yet-analyzed: conservative *)
  in
  List.iter
    (fun name ->
      let f = Hashtbl.find p.funcs name in
      let is_kernel = List.mem name p.kernels || String.equal name p.kernel in
      (* Kernel parameters come uniformly from the launch; device-function
         parameters are conservatively thread-varying. *)
      let info = analyze_func ~callee_div f ~params_divergent:(not is_kernel) in
      Hashtbl.replace infos name info)
    (Callgraph.bottom_up cg);
  { infos }

let info t ~func =
  match Hashtbl.find_opt t.infos func with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Divergence: unknown function %s" func)

let divergent_regs t ~func = (info t ~func).divergent_regs
let divergent_branches t ~func = (info t ~func).divergent_branches
let branch_is_divergent t ~func ~block = Int_set.mem block (info t ~func).divergent_branches
let returns_divergent t ~func = (info t ~func).returns_divergent
let divergent_loads t ~func = (info t ~func).divergent_loads

let pp ppf t =
  let names = List.sort compare (Hashtbl.fold (fun n _ acc -> n :: acc) t.infos []) in
  List.iter
    (fun n ->
      let i = Hashtbl.find t.infos n in
      Format.fprintf ppf "%s: branches=%a regs=%a ret_div=%b div_mem=%d@." n pp_int_set
        i.divergent_branches pp_int_set i.divergent_regs i.returns_divergent i.divergent_loads)
    names
