(** Repair synthesis for {!Barrier_safety} findings: enumerate candidate
    minimal barrier edits per finding category and search cost-ordered
    edit sequences — fewest edits first, ties broken by the §4.5 cost
    model — accepting a candidate only when a full re-check of the
    edited program comes back empty and the IR verifier stays clean.

    The acceptance condition is the module's contract: a returned repair
    is not a heuristic patch but a placement the checker {e proves}
    deadlock-free, so every guarantee that holds of an unedited clean
    program (scheduler-independent termination, and for the generated
    fuzz programs digest-identity with the PDOM baseline) holds of the
    repaired one by the same argument. *)

(** A single minimal edit. Block/index coordinates refer to the program
    the edit was enumerated against; {!repair} applies each edit to a
    private {!Ir.Builder.copy_program} copy. *)
type edit =
  | Insert_cancel of { in_func : string; block : int; index : int; cancel : Ir.Types.barrier }
      (** Withdraw [cancel] immediately before the wait/call at the
          site — the static twin of Deconflict's dynamic-cancel
          resolution. *)
  | Move_wait of {
      in_func : string;
      from_block : int;
      from_index : int;
      to_block : int;
      slot : Ir.Types.barrier;
      hoist : bool;  (** [true] when [to_block] is the BSSY join block. *)
    }
  | Split_slot of {
      in_func : string;
      slot : Ir.Types.barrier;
      fresh : Ir.Types.barrier;  (** the program's [next_barrier] at enumeration *)
      sites : (int * int) list;  (** (block, index) sites retargeted to [fresh] *)
    }
  | Remap_slot of { in_func : string; block : int; index : int; to_slot : Ir.Types.barrier }
  | Drop_barrier of { in_func : string; block : int; index : int; slot : Ir.Types.barrier }

val edit_class : edit -> string
(** Stable kebab-case class name: [insert-cancel], [hoist-wait],
    [sink-wait], [split-slot], [remap-slot], [drop-barrier]. The first
    four are the {!Barrier_safety.hint} vocabulary. *)

val pp_edit_machine : Format.formatter -> edit -> unit
(** Machine-readable one-liner, same key=value shape as the srlint
    format: [srfix: edit=<class> func=<f> block=bb<n> index=<i>
    slot=b<id> fix=<description>]. *)

val render_edits : edit list -> string
(** All edits, one machine line each, newline-separated. *)

type outcome =
  | Clean  (** The input already checks clean — nothing to repair. *)
  | Repaired of {
      program : Ir.Types.program;
          (** A fresh copy; the input program is never mutated. *)
      edits : edit list;  (** applied in order, coordinates pre-edit per step *)
      cost : float;  (** summed §4.5 edit cost *)
      explored : int;  (** states expanded by the search *)
    }
  | Unrepairable of {
      blocking : Barrier_safety.finding;
          (** First finding of the closest-to-clean state the search
              reached — what resisted repair. *)
      explored : int;
    }

val default_max_edits : int
(** Default edit budget (6). *)

val candidates :
  ?speculative:Barrier_safety.speculative list ->
  Ir.Types.program ->
  Barrier_safety.finding ->
  (edit * float) list
(** [candidates p f] enumerates the single edits that may clear [f],
    hinted class first, each with its §4.5 cost (barrier weight scaled
    by the estimated execution frequency of the touched block). The list
    is a proposal set — only {!repair}'s re-check accepts an edit.
    Exposed for unit tests. *)

val repair :
  ?speculative:Barrier_safety.speculative list ->
  ?max_edits:int ->
  ?max_states:int ->
  Ir.Types.program ->
  outcome
(** Best-first search over edit sequences: states are ordered by
    (number of edits, accumulated cost, insertion order), candidate
    successors are generated for the state's first finding, and a state
    is accepted iff {!Ir.Verifier.check_program} and
    {!Barrier_safety.check} both return []. Deduplicates states by
    printed IR. [max_states] (default 256) bounds exploration. *)
