(** srrace — interprocedural static data-race detection over barrier
    intervals (the static half of the race tier; {!Simt.Race_log} via
    [srrun --race-check] is its dynamic differential oracle).

    {2 Phase model}

    A full [wait.barrier] separates the execution of every thread that
    crosses it into {e barrier intervals}: accesses in different
    intervals of the same launch cannot race. The analysis computes, for
    every global-memory access, its set of {e phase roots} — the program
    points (kernel entry, or a full-wait site) from which the access is
    reachable without crossing another full wait — by forward dataflow
    over the CFG. Two accesses {e may happen in parallel} exactly when
    their root sets intersect. Threshold waits and cancels release
    participants without ordering the stragglers, so they do {e not}
    separate phases. Calls are summarized bottom-up over {!Callgraph}
    (§4.4 call-as-wait falls out naturally: a callee whose every path
    waits replaces the caller's roots with the callee's exit roots);
    functions under recursion fall back to a universal root that
    intersects everything.

    {2 Access abstraction}

    Integer registers are abstracted per function to lane-affine forms
    [c0 + c1*tid], constant ranges, or unknown (sound top), by a
    widening worklist analysis. Addresses are anchored to the global
    region containing their lowest realizable cell — sound under the
    in-bounds assumption that an executed access through [g[e]] stays
    inside [g] (the front end's bounds-checked indexing idiom and the
    generator both guarantee this). Conflict between two accesses of a
    region is decided exactly on affine forms (a gcd residue test) and
    conservatively on ranges; unknown conflicts with everything.

    {2 Differential verdicts}

    Running the checker on the speculative placement and the PDOM
    placement of the same kernel and diffing ({!diff}) re-categorizes
    findings present only under speculation as [Race_introduced]: an
    ordering PDOM provided that the speculative transform broke —
    precisely the class of miscompilation the paper's §4.3 deconfliction
    exists to prevent. *)

type category =
  | Write_write  (** two stores to the same cell in one barrier interval *)
  | Read_write  (** a load and a store to the same cell in one interval *)
  | Race_introduced
      (** the pair is ordered under PDOM placement but racy under the
          speculative placement — the transform broke synchronization *)

val category_name : category -> string
val category_rank : category -> int

type site = { in_func : string; block : int; index : int; src_line : int option }

type finding = {
  category : category;
  global : string;  (** region name, ["?"] when the address is unresolvable *)
  site : site;  (** anchor access (the write, for read-write findings) *)
  other : site;  (** the conflicting access (equal to [site] for
                     single-site conflicts between threads) *)
  message : string;
  fix : string;
}

(** [check p] analyses every kernel of [p] (or just [kernels] when
    given — the fuzz oracles restrict to runnable, parameterless ones)
    and returns the conflicts, deterministically ordered and deduplicated.
    An empty list is a proof {e under the abstraction} that no two
    threads touch the same cell in the same barrier interval with a
    write involved. *)
val check : ?kernels:string list -> Ir.Types.program -> finding list

(** [diff ~baseline findings] re-categorizes findings (matched by
    source provenance, robust to block renumbering between placements)
    that do not appear in [baseline] as {!Race_introduced}. *)
val diff : baseline:finding list -> finding list -> finding list

(** Stable edit-class of the suggested fix ([insert-wait],
    [restore-pdom-order]) — same contract as {!Barrier_safety.hint}. *)
val hint : finding -> string

val pp_finding : Format.formatter -> finding -> unit

(** One-line [key=value] rendering for tooling ([srcc --race]). *)
val pp_machine : Format.formatter -> finding -> unit

(** All findings, machine-rendered, newline-separated. *)
val render : finding list -> string
