open Sets

type point = { block : int; index : int }

module Set_lattice = struct
  type t = Int_set.t

  let bottom = Int_set.empty
  let equal = Int_set.equal
  let join = Int_set.union
end

module Solver = Dataflow.Make (Set_lattice)

(* Effect of one instruction on the joined-barrier state (forward).
   [call_waits callee] is the set of barriers whose wait sits at
   [callee]'s entry (§4.4 interprocedural propagation): in the caller the
   call itself is the wait event, so it clears membership like a [Wait]
   would. Barriers the caller never joined are unaffected. *)
let joined_step ~call_waits state inst =
  match inst with
  | Ir.Types.Join b | Ir.Types.Rejoin b -> Int_set.add b state
  | Ir.Types.Wait b | Ir.Types.Wait_threshold (b, _) | Ir.Types.Cancel b -> Int_set.remove b state
  | Ir.Types.Call { callee; _ } -> Int_set.diff state (call_waits callee)
  | Ir.Types.Bin _ | Ir.Types.Un _ | Ir.Types.Mov _ | Ir.Types.Load _ | Ir.Types.Store _
  | Ir.Types.Tid _ | Ir.Types.Lane _ | Ir.Types.Nthreads _ | Ir.Types.Rand _
  | Ir.Types.Randint _ | Ir.Types.Arrived _ -> state

(* Effect of one instruction on the live-barrier state (backward: the
   state *before* the instruction given the state after it). *)
let live_step ~call_waits state inst =
  match inst with
  | Ir.Types.Wait b | Ir.Types.Wait_threshold (b, _) -> Int_set.add b state
  | Ir.Types.Join b | Ir.Types.Rejoin b -> Int_set.remove b state
  | Ir.Types.Call { callee; _ } -> Int_set.union state (call_waits callee)
  | Ir.Types.Cancel _ | Ir.Types.Bin _ | Ir.Types.Un _ | Ir.Types.Mov _ | Ir.Types.Load _
  | Ir.Types.Store _ | Ir.Types.Tid _ | Ir.Types.Lane _ | Ir.Types.Nthreads _ | Ir.Types.Rand _
  | Ir.Types.Randint _ | Ir.Types.Arrived _ -> state

type t = {
  func : Ir.Types.func;
  call_waits : string -> Int_set.t;
  joined : Solver.result;
  live : Solver.result;
}

let no_call_waits _ = Int_set.empty

let run ?(call_waits = no_call_waits) (func : Ir.Types.func) =
  let g = Cfg.of_func func in
  let joined =
    Solver.solve g Dataflow.Forward ~boundary:Int_set.empty ~transfer:(fun id state ->
        List.fold_left (joined_step ~call_waits) state (Ir.Types.block func id).insts)
  in
  let live =
    Solver.solve g Dataflow.Backward ~boundary:Int_set.empty ~transfer:(fun id state ->
        List.fold_left (live_step ~call_waits) state
          (List.rev (Ir.Types.block func id).insts))
  in
  { func; call_waits; joined; live }

let joined_in t id = Solver.before t.joined id
let joined_out t id = Solver.after t.joined id
let live_in t id = Solver.before t.live id
let live_out t id = Solver.after t.live id

let joined_at t { block; index } =
  let insts = (Ir.Types.block t.func block).insts in
  let rec replay state i = function
    | [] -> state
    | inst :: rest ->
      if i >= index then state
      else replay (joined_step ~call_waits:t.call_waits state inst) (i + 1) rest
  in
  replay (joined_in t block) 0 insts

let live_at t { block; index } =
  (* Replay backward from the block's live-out down to the point. *)
  let insts = (Ir.Types.block t.func block).insts in
  let n = List.length insts in
  let suffix = List.filteri (fun i _ -> i >= index) insts in
  ignore n;
  List.fold_left (live_step ~call_waits:t.call_waits) (live_out t block) (List.rev suffix)

let points_satisfying t pred barrier =
  let points = ref [] in
  Ir.Types.iter_blocks t.func (fun b ->
      let n = List.length b.insts in
      for index = 0 to n do
        let pt = { block = b.id; index } in
        if Int_set.mem barrier (pred t pt) then points := pt :: !points
      done);
  List.rev !points

let live_points t barrier = points_satisfying t live_at barrier
let joined_points t barrier = points_satisfying t joined_at barrier

let barriers_of_func func =
  let acc = ref Int_set.empty in
  Ir.Types.iter_blocks func (fun b ->
      List.iter
        (fun i -> match Ir.Types.barrier_of i with Some x -> acc := Int_set.add x !acc | None -> ())
        b.insts);
  !acc

module Point_set = Set.Make (struct
  type t = point

  let compare = compare
end)

let conflicts t =
  (* §4.3: "a barrier live range extends from the moment threads join the
     barrier until the barrier is cleared either by waiting or exiting" —
     i.e. the joined range (Equation 1, with the effects of already
     inserted Cancel/Rejoin primitives), which is what Figure 5's interval
     arrows depict. *)
  let barriers = Int_set.elements (barriers_of_func t.func) in
  let range b = Point_set.of_list (joined_points t b) in
  let ranges = List.map (fun b -> (b, range b)) barriers in
  let rec pairs = function
    | [] -> []
    | (b1, r1) :: rest ->
      List.filter_map
        (fun (b2, r2) ->
          let overlap = not (Point_set.disjoint r1 r2) in
          let inclusive = Point_set.subset r1 r2 || Point_set.subset r2 r1 in
          if overlap && not inclusive then Some (min b1 b2, max b1 b2) else None)
        rest
      @ pairs rest
  in
  List.sort_uniq compare (pairs ranges)

let pp ppf t =
  Ir.Types.iter_blocks t.func (fun b ->
      Format.fprintf ppf "bb%d: joined_in=%a joined_out=%a live_in=%a live_out=%a@." b.id
        pp_int_set (joined_in t b.id) pp_int_set (joined_out t b.id) pp_int_set (live_in t b.id)
        pp_int_set (live_out t b.id))
