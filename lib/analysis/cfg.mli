(** Immutable control-flow-graph view of a function.

    Only reachable blocks are included. {!reverse} produces the reversed
    graph used for post-dominance, with a synthetic exit node
    {!synthetic_exit} added as the single source so functions with several
    [Ret]/[Exit] blocks still have a rooted reverse graph. *)

type t

(** Id of the synthetic exit node in reversed graphs. Never a valid block
    id (block ids are non-negative). *)
val synthetic_exit : int

(** [of_func f] builds the CFG of [f]'s reachable blocks. [live_edge
    src dst] (default: always true) filters terminator edges as the
    graph is built — a client with predicate knowledge (e.g. a branch
    condition proven constant) can drop statically untakeable edges,
    and blocks reachable only through dropped edges vanish from the
    graph entirely. The filter must be an {e under}-approximation of
    deadness: dropping a takeable edge is unsound for every analysis
    built on this view. *)
val of_func : ?live_edge:(int -> int -> bool) -> Ir.Types.func -> t

val entry : t -> int

(** All node ids, in reverse post order from the entry. *)
val nodes : t -> int list

val succs : t -> int -> int list
val preds : t -> int -> int list
val mem : t -> int -> bool

(** Number of nodes. *)
val size : t -> int

(** [reverse g] flips every edge and roots the result at
    {!synthetic_exit}, which has an edge to every sink of [g]. Nodes that
    cannot reach any sink (infinite loops) remain unreachable from the new
    root. *)
val reverse : t -> t

(** [rpo g] is the reverse post order from the entry (same as {!nodes}). *)
val rpo : t -> int list

val pp : Format.formatter -> t -> unit
