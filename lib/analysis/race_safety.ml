(* srrace: static data-race checker over barrier intervals. See the .mli
   for the abstract domain and the phase model; DESIGN.md §10 documents
   the transfer functions and the soundness assumptions.

   Structure mirrors Barrier_safety: a per-function abstract
   interpretation (here of integer register values, lane-affine in the
   thread id), a phase partition derived from the barrier placement (the
   may-happen-in-parallel relation), interprocedural summaries over
   Callgraph in bottom-up order with §4.4 call-as-wait falling out of
   the callee's own entry analysis, and a final pairwise scan that
   reports conflicts as machine-renderable findings. *)

open Sets
module T = Ir.Types

type category = Write_write | Read_write | Race_introduced

let category_name = function
  | Write_write -> "write-write"
  | Read_write -> "read-write"
  | Race_introduced -> "race-introduced"

let category_rank = function Race_introduced -> 0 | Write_write -> 1 | Read_write -> 2

type site = { in_func : string; block : int; index : int; src_line : int option }

type finding = {
  category : category;
  global : string;
  site : site;
  other : site;
  message : string;
  fix : string;
}

(* ------------------------------------------------------------------ *)
(* Index abstraction                                                   *)
(* ------------------------------------------------------------------ *)

(* Abstract integer value of a register (and, at an access, of the cell
   index relative to its global's base):
   - [Aff (c0, c1)] — exactly [c0 + c1*tid] in every thread;
   - [Rng (lo, hi)] — some value in [lo, hi], possibly different per
     thread and not known to depend on [tid] injectively;
   - [Any] — no information (the sound top).
   Bounds are saturated at [inf] so the arithmetic can never wrap. *)
type idx = Aff of int * int | Rng of int * int | Any

let inf = max_int / 4
let clamp v = if v > inf then inf else if v < -inf then -inf else v
let sat_add a b = clamp (a + b)

let sat_mul a b =
  if a = 0 || b = 0 then 0
  else if abs a > inf / abs b then if a > 0 = (b > 0) then inf else -inf
  else clamp (a * b)

let rng_of = function
  | Aff (c, 0) -> Some (c, c)
  | Rng (l, h) -> Some (l, h)
  | Aff _ | Any -> None

let as_const v = match rng_of v with Some (l, h) when l = h -> Some l | _ -> None
let nonneg = function Aff (c0, c1) -> c0 >= 0 && c1 >= 0 | Rng (l, _) -> l >= 0 | Any -> false
let fold_const v = if v > inf || v < -inf then Any else Aff (v, 0)

let equal_idx (a : idx) (b : idx) = a = b

let join_idx a b =
  if equal_idx a b then a
  else
    match (a, b) with
    | Any, _ | _, Any -> Any
    | _ -> (
      match (rng_of a, rng_of b) with
      | Some (l1, h1), Some (l2, h2) -> Rng (min l1 l2, max h1 h2)
      | _ -> Any)

(* Classic interval widening: an unstable bound jumps straight to its
   saturation limit, so chains through loop-carried arithmetic are
   finite. *)
let widen_idx old_v new_v =
  if equal_idx old_v new_v then old_v
  else
    match (rng_of old_v, rng_of new_v) with
    | Some (l1, h1), Some (l2, h2) ->
      Rng ((if l2 < l1 then -inf else l1), (if h2 > h1 then inf else h1))
    | _ -> Any

(* ------------------------------------------------------------------ *)
(* Transfer functions                                                  *)
(* ------------------------------------------------------------------ *)

let abstract_bin op a b =
  let const2 f =
    match (as_const a, as_const b) with
    | Some ca, Some cb -> f ca cb
    | _ -> None
  in
  let rngs2 f =
    match (rng_of a, rng_of b) with Some r1, Some r2 -> Some (f r1 r2) | _ -> None
  in
  let default cases = match cases with Some v -> v | None -> Any in
  match op with
  | T.Add -> (
    match (a, b) with
    | Aff (a0, a1), Aff (b0, b1) -> Aff (sat_add a0 b0, sat_add a1 b1)
    | _ -> default (rngs2 (fun (l1, h1) (l2, h2) -> Rng (sat_add l1 l2, sat_add h1 h2))))
  | T.Sub -> (
    match (a, b) with
    | Aff (a0, a1), Aff (b0, b1) -> Aff (sat_add a0 (-b0), sat_add a1 (-b1))
    | _ -> default (rngs2 (fun (l1, h1) (l2, h2) -> Rng (sat_add l1 (-h2), sat_add h1 (-l2)))))
  | T.Mul -> (
    match (a, b, as_const a, as_const b) with
    | Aff (a0, a1), _, _, Some k -> Aff (sat_mul a0 k, sat_mul a1 k)
    | _, Aff (b0, b1), Some k, _ -> Aff (sat_mul b0 k, sat_mul b1 k)
    | _ ->
      default
        (rngs2 (fun (l1, h1) (l2, h2) ->
             let c = [ sat_mul l1 l2; sat_mul l1 h2; sat_mul h1 l2; sat_mul h1 h2 ] in
             Rng (List.fold_left min inf c, List.fold_left max (-inf) c))))
  | T.Rem -> (
    match const2 (fun ca cb -> if cb = 0 then None else Some (fold_const (ca mod cb))) with
    | Some v -> v
    | None -> (
      match as_const b with
      | Some k when k <> 0 -> (
        let m = abs k - 1 in
        match rng_of a with
        | Some (l, h) when l >= 0 && h <= m -> a
        | _ -> if nonneg a then Rng (0, m) else Rng (-m, m))
      | _ -> (
        match rng_of b with
        | Some (l, h) when l >= 1 ->
          let m = clamp (h - 1) in
          if nonneg a then Rng (0, m) else Rng (-m, m)
        | _ -> Any)))
  | T.Div -> (
    match const2 (fun ca cb -> if cb = 0 then None else Some (fold_const (ca / cb))) with
    | Some v -> v
    | None -> (
      match (rng_of a, as_const b) with
      | Some (l, h), Some k when k > 0 -> Rng (l / k, h / k)
      | _ -> Any))
  | T.Min -> default (rngs2 (fun (l1, h1) (l2, h2) -> Rng (min l1 l2, min h1 h2)))
  | T.Max -> default (rngs2 (fun (l1, h1) (l2, h2) -> Rng (max l1 l2, max h1 h2)))
  | T.Land -> (
    match const2 (fun ca cb -> Some (fold_const (ca land cb))) with
    | Some v -> v
    | None -> (
      (* [x land m] for a non-negative mask lies in [0, m] whatever x is. *)
      match (as_const a, as_const b) with
      | _, Some m when m >= 0 -> Rng (0, m)
      | Some m, _ when m >= 0 -> Rng (0, m)
      | _ -> Any))
  | T.Lor | T.Lxor -> (
    match
      const2 (fun ca cb ->
          Some (fold_const (if op = T.Lor then ca lor cb else ca lxor cb)))
    with
    | Some v -> v
    | None -> Any)
  | T.Shl -> (
    match const2 (fun ca cb -> if cb < 0 || cb > 40 then None else Some (fold_const (ca lsl cb))) with
    | Some v -> v
    | None -> Any)
  | T.Shr -> (
    match const2 (fun ca cb -> if cb < 0 || cb > 62 then None else Some (fold_const (ca asr cb))) with
    | Some v -> v
    | None -> Any)
  | T.Eq | T.Ne | T.Lt | T.Le | T.Gt | T.Ge | T.Feq | T.Fne | T.Flt | T.Fle | T.Fgt | T.Fge ->
    Rng (0, 1)
  | T.Fadd | T.Fsub | T.Fmul | T.Fdiv | T.Fmin | T.Fmax -> Any

let abstract_un op a =
  match op with
  | T.Neg -> (
    match a with
    | Aff (c0, c1) -> Aff (sat_add 0 (-c0), sat_add 0 (-c1))
    | Rng (l, h) -> Rng (sat_add 0 (-h), sat_add 0 (-l))
    | Any -> Any)
  | T.Not -> Rng (0, 1)
  | T.Bnot -> (
    match rng_of a with
    | Some (l, h) -> Rng (sat_add (-1) (-h), sat_add (-1) (-l))
    | None -> Any)
  | T.Fneg | T.Itof | T.Ftoi | T.Sqrt | T.Exp | T.Log | T.Sin | T.Cos | T.Fabs -> Any

let eval_env env = function
  | T.Reg r -> env.(r)
  | T.Imm (T.I k) -> fold_const k
  | T.Imm (T.F _) -> Any

let step_inst env inst =
  match inst with
  | T.Bin (op, d, x, y) -> env.(d) <- abstract_bin op (eval_env env x) (eval_env env y)
  | T.Un (op, d, x) -> env.(d) <- abstract_un op (eval_env env x)
  | T.Mov (d, x) -> env.(d) <- eval_env env x
  | T.Load (d, _) -> env.(d) <- Any
  | T.Tid d -> env.(d) <- Aff (0, 1)
  | T.Lane d | T.Arrived (d, _) -> env.(d) <- Rng (0, inf)
  | T.Nthreads d -> env.(d) <- Rng (1, inf)
  | T.Rand d -> env.(d) <- Any
  | T.Randint (d, x) ->
    env.(d) <-
      (match as_const (eval_env env x) with Some k when k > 0 -> Rng (0, k - 1) | _ -> Rng (0, inf))
  | T.Call { ret = Some d; _ } -> env.(d) <- Any
  | T.Call { ret = None; _ }
  | T.Store _ | T.Join _ | T.Rejoin _ | T.Wait _ | T.Wait_threshold _ | T.Cancel _ -> ()

(* ------------------------------------------------------------------ *)
(* Per-function register analysis (worklist with widening)             *)
(* ------------------------------------------------------------------ *)

let analyze_regs (f : T.func) (g : Cfg.t) =
  let n_regs = max f.T.next_reg 1 in
  let states : (int, idx array) Hashtbl.t = Hashtbl.create 16 in
  let visits : (int, int) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.replace states (Cfg.entry g) (Array.make n_regs Any);
  let work = Queue.create () in
  Queue.add (Cfg.entry g) work;
  while not (Queue.is_empty work) do
    let id = Queue.pop work in
    match Hashtbl.find_opt states id with
    | None -> ()
    | Some env_in ->
      let env = Array.copy env_in in
      List.iter (step_inst env) (T.block f id).insts;
      List.iter
        (fun s ->
          let v = Option.value (Hashtbl.find_opt visits s) ~default:0 in
          match Hashtbl.find_opt states s with
          | None ->
            Hashtbl.replace states s (Array.copy env);
            Hashtbl.replace visits s 1;
            Queue.add s work
          | Some old ->
            let joined =
              Array.mapi
                (fun r o ->
                  let j = join_idx o env.(r) in
                  if v > 3 then widen_idx o j else j)
                old
            in
            if not (Array.for_all2 equal_idx joined old) then begin
              Hashtbl.replace states s joined;
              Hashtbl.replace visits s (v + 1);
              Queue.add s work
            end)
        (Cfg.succs g id)
  done;
  states

(* ------------------------------------------------------------------ *)
(* Accesses, phase roots and interprocedural summaries                 *)
(* ------------------------------------------------------------------ *)

type access_kind = Read | Write

(* One abstract memory access: which global region (by the lowering
   invariant, [None] when the address abstraction cannot anchor it),
   the cell index relative to the region base, and the set of phase
   roots — program points (kernel entry or full-wait sites) from which
   the access is reachable without crossing another full wait. Two
   accesses may happen in parallel exactly when their root sets
   intersect. *)
type access = {
  akind : access_kind;
  region : string option;
  aidx : idx;
  asite : site;
  aroots : Int_set.t;
}

(* The universal root: used for code under recursion, where the phase
   partition is not tracked. It intersects everything. *)
let top_root = -1

type summary = { s_fentry : int; s_exit_roots : Int_set.t; s_accesses : access list }

module Roots = struct
  type t = Int_set.t

  let bottom = Int_set.empty
  let equal = Int_set.equal
  let join = Int_set.union
end

module Roots_solver = Dataflow.Make (Roots)

let sorted_globals (p : T.program) =
  Hashtbl.fold (fun name (base, size) acc -> (name, base, size) :: acc) p.globals []
  |> List.sort compare

(* Anchor the abstract address at its smallest realizable cell and take
   the global containing it. Sound under the in-bounds assumption: an
   executed access through [g[e]] stays inside [g] (out-of-bounds
   indexing is outside the analysed contract; the generator and the
   examples index through bounded expressions). *)
let resolve_region globals aval =
  let containing c =
    List.find_opt (fun (_, base, size) -> base <= c && c < base + size) globals
  in
  match aval with
  | Aff (c0, c1) -> (
    match containing c0 with
    | Some (name, base, _) -> Some (name, Aff (c0 - base, c1))
    | None -> None)
  | Rng (l, h) -> (
    match containing l with
    | Some (name, base, size) -> Some (name, Rng (l - base, min (h - base) (size - 1)))
    | None -> None)
  | Any -> None

(* ------------------------------------------------------------------ *)
(* Conflict tests                                                      *)
(* ------------------------------------------------------------------ *)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* Can two *different* threads hit the same cell, one through [a], the
   other through [b]? tid is over-approximated as unbounded. *)
let conflicts_cross a b =
  match (a, b) with
  | Any, _ | _, Any -> true
  | Aff (a0, a1), Aff (b0, b1) ->
    if a1 = b1 then
      if a1 = 0 then a0 = b0
      else a0 <> b0 && (a0 - b0) mod a1 = 0 (* same injective form only collides shifted *)
    else
      let g = gcd a1 b1 in
      if g = 0 then a0 = b0 else (b0 - a0) mod g = 0
  | Aff (a0, a1), Rng (l, h) | Rng (l, h), Aff (a0, a1) ->
    if a1 = 0 then l <= a0 && a0 <= h
    else
      let m = abs a1 in
      h - l + 1 >= m
      ||
      let r = ((a0 mod m) + m) mod m in
      let first = l + ((((r - l) mod m) + m) mod m) in
      first <= h
  | Rng (l1, h1), Rng (l2, h2) -> max l1 l2 <= min h1 h2

(* Can two different threads executing this one access site hit the
   same cell? *)
let conflicts_self = function
  | Aff (_, c1) -> c1 = 0
  | Rng _ | Any -> true

let mhp a b =
  Int_set.mem top_root a || Int_set.mem top_root b
  || not (Int_set.is_empty (Int_set.inter a b))

(* ------------------------------------------------------------------ *)
(* The checker                                                         *)
(* ------------------------------------------------------------------ *)

let pp_line ppf = function
  | Some l -> Format.fprintf ppf "%d" l
  | None -> Format.fprintf ppf "?"

let bound_str v = if v >= inf then "inf" else if v <= -inf then "-inf" else string_of_int v

let idx_str = function
  | Aff (c0, 0) -> string_of_int c0
  | Aff (0, 1) -> "tid"
  | Aff (c0, 1) -> Printf.sprintf "tid%+d" c0
  | Aff (0, c1) -> Printf.sprintf "%d*tid" c1
  | Aff (c0, c1) -> Printf.sprintf "%d*tid%+d" c1 c0
  | Rng (l, h) -> Printf.sprintf "[%s..%s]" (bound_str l) (bound_str h)
  | Any -> "?"

let site_str s =
  Printf.sprintf "%s/bb%d#%d (line %s)" s.in_func s.block s.index
    (match s.src_line with Some l -> string_of_int l | None -> "?")

let check ?kernels (p : T.program) =
  let kernel_names = match kernels with Some ks -> ks | None -> p.T.kernels in
  let cg = Callgraph.build p in
  let globals = sorted_globals p in
  let next_id = ref 0 in
  let fresh () =
    let i = !next_id in
    incr next_id;
    i
  in
  let fentry_tbl : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let fentry n =
    match Hashtbl.find_opt fentry_tbl n with
    | Some i -> i
    | None ->
      let i = fresh () in
      Hashtbl.replace fentry_tbl n i;
      i
  in
  let wait_tbl : (string * int * int, int) Hashtbl.t = Hashtbl.create 32 in
  let wait_id n b i =
    match Hashtbl.find_opt wait_tbl (n, b, i) with
    | Some x -> x
    | None ->
      let x = fresh () in
      Hashtbl.replace wait_tbl (n, b, i) x;
      x
  in
  (* func -> Some summary, or None under recursion (swept conservatively) *)
  let summaries : (string, summary option) Hashtbl.t = Hashtbl.create 8 in
  (* the processed per-function result, kept even for recursive funcs *)
  let raw : (string, summary) Hashtbl.t = Hashtbl.create 8 in
  let roots_step fname roots ~block ~index inst =
    match inst with
    | T.Wait _ -> Int_set.singleton (wait_id fname block index)
    | T.Call { callee; _ } -> (
      match Hashtbl.find_opt summaries callee with
      | Some (Some s) ->
        let keep =
          if Int_set.mem s.s_fentry s.s_exit_roots then roots else Int_set.empty
        in
        Int_set.union keep (Int_set.remove s.s_fentry s.s_exit_roots)
      | Some None | None -> Int_set.add top_root roots)
    | T.Wait_threshold _ (* partial release: does not separate phases *)
    | T.Cancel _ | T.Join _ | T.Rejoin _ | T.Arrived _ | T.Bin _ | T.Un _ | T.Mov _ | T.Load _
    | T.Store _ | T.Tid _ | T.Lane _ | T.Nthreads _ | T.Rand _ | T.Randint _ -> roots
  in
  let process fname =
    let f = Hashtbl.find p.T.funcs fname in
    let g = Cfg.of_func f in
    let envs = analyze_regs f g in
    let roots_res =
      Roots_solver.solve g Dataflow.Forward
        ~boundary:(Int_set.singleton (fentry fname))
        ~transfer:(fun id st ->
          snd
            (List.fold_left
               (fun (i, st) inst -> (i + 1, roots_step fname st ~block:id ~index:i inst))
               (0, st) (T.block f id).insts))
    in
    let accs = ref [] in
    T.iter_blocks f (fun b ->
        if Cfg.mem g b.id then begin
          let env = Array.copy (Hashtbl.find envs b.id) in
          let roots = ref (Roots_solver.before roots_res b.id) in
          List.iteri
            (fun index inst ->
              (match inst with
              | T.Load (_, a) | T.Store (a, _) ->
                let akind = match inst with T.Store _ -> Write | _ -> Read in
                let region, aidx =
                  match resolve_region globals (eval_env env a) with
                  | Some (name, i) -> (Some name, i)
                  | None -> (None, Any)
                in
                accs :=
                  {
                    akind;
                    region;
                    aidx;
                    asite = { in_func = fname; block = b.id; index; src_line = b.src_line };
                    aroots = !roots;
                  }
                  :: !accs
              | T.Call { callee; _ } -> (
                match Hashtbl.find_opt summaries callee with
                | Some (Some s) ->
                  List.iter
                    (fun acc ->
                      let aroots =
                        if Int_set.mem s.s_fentry acc.aroots then
                          Int_set.union (Int_set.remove s.s_fentry acc.aroots) !roots
                        else acc.aroots
                      in
                      accs := { acc with aroots } :: !accs)
                    s.s_accesses
                | Some None | None -> () (* recursive callee: swept separately *))
              | T.Bin _ | T.Un _ | T.Mov _ | T.Tid _ | T.Lane _ | T.Nthreads _ | T.Rand _
              | T.Randint _ | T.Join _ | T.Rejoin _ | T.Wait _ | T.Wait_threshold _
              | T.Cancel _ | T.Arrived _ -> ());
              step_inst env inst;
              roots := roots_step fname !roots ~block:b.id ~index inst)
            b.insts
        end);
    let exit_roots =
      List.fold_left
        (fun acc id ->
          match (T.block f id).term with
          | T.Ret _ -> Int_set.union acc (Roots_solver.after roots_res id)
          | T.Jump _ | T.Br _ | T.Exit -> acc)
        Int_set.empty (Cfg.nodes g)
    in
    { s_fentry = fentry fname; s_exit_roots = exit_roots; s_accesses = List.rev !accs }
  in
  let names = Callgraph.bottom_up cg in
  List.iter
    (fun n ->
      let s = process n in
      Hashtbl.replace raw n s;
      Hashtbl.replace summaries n (if Callgraph.is_recursive cg n then None else Some s))
    names;
  (* Accesses visible to one kernel launch: the kernel's own summary
     (its fentry root IS the launch phase) plus, for every reachable
     function under recursion, its raw accesses under the universal
     root. *)
  let kernel_accesses kname =
    let reachable = ref [] in
    let seen = Hashtbl.create 8 in
    let rec visit n =
      if not (Hashtbl.mem seen n) then begin
        Hashtbl.replace seen n ();
        reachable := n :: !reachable;
        List.iter visit (Callgraph.callees cg n)
      end
    in
    visit kname;
    let base =
      match Hashtbl.find_opt summaries kname with
      | Some (Some s) -> s.s_accesses
      | _ -> []
    in
    let swept =
      List.concat_map
        (fun n ->
          match (Hashtbl.find_opt summaries n, Hashtbl.find_opt raw n) with
          | Some None, Some s ->
            List.map (fun a -> { a with aroots = Int_set.singleton top_root }) s.s_accesses
          | _ -> [])
        (List.sort compare !reachable)
    in
    base @ swept
  in
  let findings = ref [] in
  let add category global site other message fix =
    findings := { category; global; site; other; message; fix } :: !findings
  in
  let fix_of = function
    | Write_write ->
      "separate the writes with a full wait.barrier, or make the store index injective in tid"
    | Read_write -> "separate the read from the write with a full wait.barrier"
    | Race_introduced -> "restore the ordering: keep a full wait.barrier between the accesses"
  in
  let global_name a b =
    match (a.region, b.region) with Some g, _ | _, Some g -> g | None, None -> "?"
  in
  let scan accs =
    let arr = Array.of_list accs in
    let n = Array.length arr in
    for i = 0 to n - 1 do
      let a = arr.(i) in
      (* Self conflict: many threads execute this one site. *)
      if
        a.akind = Write
        && (not (Int_set.is_empty a.aroots))
        && conflicts_self a.aidx
      then
        add Write_write
          (match a.region with Some g -> g | None -> "?")
          a.asite a.asite
          (Printf.sprintf
             "threads of the same barrier interval may write the same cell %s[%s] from this \
              one store"
             (match a.region with Some g -> g | None -> "?")
             (idx_str a.aidx))
          (fix_of Write_write);
      for j = i + 1 to n - 1 do
        let b = arr.(j) in
        let same_region =
          match (a.region, b.region) with
          | Some x, Some y -> String.equal x y
          | None, _ | _, None -> true
        in
        if
          (a.akind = Write || b.akind = Write)
          && same_region && mhp a.aroots b.aroots
          && conflicts_cross a.aidx b.aidx
        then begin
          let category = if a.akind = Write && b.akind = Write then Write_write else Read_write in
          (* For read-write findings, anchor at the write. *)
          let first, second =
            if category = Read_write && a.akind = Read then (b, a) else (a, b)
          in
          let verb x = match x.akind with Write -> "write" | Read -> "read" in
          add category (global_name a b) first.asite second.asite
            (Printf.sprintf
               "%s of %s[%s] here may race with %s of %s[%s] at %s: no full barrier \
                separates them"
               (verb first) (global_name a b) (idx_str first.aidx) (verb second)
               (global_name a b) (idx_str second.aidx) (site_str second.asite))
            (fix_of category)
        end
      done
    done
  in
  List.iter
    (fun k -> if Hashtbl.mem p.T.funcs k then scan (kernel_accesses k))
    (List.sort_uniq compare kernel_names);
  List.sort_uniq
    (fun a b ->
      compare
        ( (a.site.in_func, a.site.block, a.site.index),
          (a.other.in_func, a.other.block, a.other.index),
          category_rank a.category,
          a.global )
        ( (b.site.in_func, b.site.block, b.site.index),
          (b.other.in_func, b.other.block, b.other.index),
          category_rank b.category,
          b.global ))
    !findings

(* ------------------------------------------------------------------ *)
(* PDOM differential                                                   *)
(* ------------------------------------------------------------------ *)

(* Findings are matched across compilations by source provenance (block
   ids shift between placements, source lines do not). *)
let finding_key f =
  (f.category, f.global, f.site.in_func, f.site.src_line, f.other.in_func, f.other.src_line)

let diff ~baseline findings =
  let base = List.map finding_key baseline in
  List.map
    (fun f ->
      if List.mem (finding_key f) base then f
      else
        {
          f with
          category = Race_introduced;
          message =
            f.message
            ^ "; the PDOM placement orders these accesses — the speculative placement broke it";
          fix = "restore the ordering: keep a full wait.barrier between the accesses";
        })
    findings

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

(* Stable edit-class names, same contract as Barrier_safety.hint: a
   machine-checkable promise about what kind of edit addresses the
   finding. *)
let hint f =
  match f.category with
  | Write_write | Read_write -> "insert-wait"
  | Race_introduced -> "restore-pdom-order"

let pp_finding ppf f =
  Format.fprintf ppf "srrace [%s] %s/bb%d (line %a) global %s: %s; fix: %s"
    (category_name f.category) f.site.in_func f.site.block pp_line f.site.src_line f.global
    f.message f.fix

let pp_machine ppf f =
  Format.fprintf ppf
    "srrace: category=%s func=%s block=bb%d line=%a global=%s other_func=%s other_line=%a \
     msg=%s fix=%s hint=%s"
    (category_name f.category) f.site.in_func f.site.block pp_line f.site.src_line f.global
    f.other.in_func pp_line f.other.src_line f.message f.fix (hint f)

let render fs = String.concat "\n" (List.map (Format.asprintf "%a" pp_machine) fs)
