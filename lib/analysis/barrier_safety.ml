(* srlint: static barrier-safety checker. See the .mli for the abstract
   domain and the deadlock argument; DESIGN.md documents the transfer
   functions.

   Soundness hinges on one dynamic fact (lib/simt/barrier_unit.ml): a
   barrier fires only when every current participant is blocked on it
   (or the soft threshold is met). In a stalled machine state every
   barrier that still has blocked lanes therefore has some participant
   blocked on a *different* barrier, and with finitely many slots that
   "waits-for" relation must contain a cycle. Contrapositive: if the
   static over-approximation of waits-for is acyclic, no schedule can
   deadlock on barriers. *)

open Sets
module T = Ir.Types

type category =
  | Bypassable_wait
  | Double_arrive
  | Unallocated_slot
  | Unseparated_overlap
  | Undominated_wait

let category_name = function
  | Bypassable_wait -> "bypassable-wait"
  | Double_arrive -> "double-arrive"
  | Unallocated_slot -> "unallocated-slot"
  | Unseparated_overlap -> "unseparated-overlap"
  | Undominated_wait -> "undominated-wait"

let category_rank = function
  | Bypassable_wait -> 0
  | Unseparated_overlap -> 1
  | Double_arrive -> 2
  | Unallocated_slot -> 3
  | Undominated_wait -> 4

type site = { in_func : string; block : int; index : int; src_line : int option }

type finding = {
  category : category;
  slot : T.barrier;
  site : site;
  message : string;
  fix : string;
  related : T.barrier list;
}

type speculative = { sfunc : string; slot : T.barrier; join_block : int }

(* ------------------------------------------------------------------ *)
(* May-held relational domain                                          *)
(* ------------------------------------------------------------------ *)

module Pair_set = Set.Make (struct
  type t = int * int

  let compare = compare
end)

let ordered a b = if a <= b then (a, b) else (b, a)

(* [singles] — slots some thread may hold here; [pairs] — unordered slot
   pairs a single thread may hold simultaneously along some path. Pairs
   are what survive CFG merges exactly: union over paths is the precise
   answer for an existential path property. *)
module Held = struct
  type t = { singles : Int_set.t; pairs : Pair_set.t }

  let bottom = { singles = Int_set.empty; pairs = Pair_set.empty }

  let equal a b = Int_set.equal a.singles b.singles && Pair_set.equal a.pairs b.pairs

  let join a b =
    { singles = Int_set.union a.singles b.singles; pairs = Pair_set.union a.pairs b.pairs }
end

module Held_solver = Dataflow.Make (Held)

let held_add b (s : Held.t) =
  let pairs =
    Int_set.fold
      (fun c acc -> if c = b then acc else Pair_set.add (ordered b c) acc)
      s.singles s.pairs
  in
  { Held.singles = Int_set.add b s.singles; pairs }

let held_drop b (s : Held.t) =
  {
    Held.singles = Int_set.remove b s.singles;
    pairs = Pair_set.filter (fun (x, y) -> x <> b && y <> b) s.pairs;
  }

(* Interprocedural summaries. [entry_waits f] — slots waited in [f]'s
   entry block (a call is the wait event for them, §4.4). [may_block f]
   — slots a thread may block on somewhere inside [f] or its callees,
   beyond the entry waits. [escapes f] — slots possibly still held when
   [f] returns. *)
type summaries = {
  entry_waits : string -> Int_set.t;
  may_block : string -> Int_set.t;
  escapes : string -> Int_set.t;
}

let held_step sums (s : Held.t) inst =
  match inst with
  | T.Join b | T.Rejoin b -> held_add b s
  | T.Wait b | T.Wait_threshold (b, _) | T.Cancel b -> held_drop b s
  | T.Call { callee; _ } ->
    let s = Int_set.fold held_drop (sums.entry_waits callee) s in
    Int_set.fold held_add (sums.escapes callee) s
  | T.Bin _ | T.Un _ | T.Mov _ | T.Load _ | T.Store _ | T.Tid _ | T.Lane _ | T.Nthreads _
  | T.Rand _ | T.Randint _ | T.Arrived _ -> s

(* ------------------------------------------------------------------ *)
(* Must-held domain (double-arrive check)                              *)
(* ------------------------------------------------------------------ *)

(* Intersection lattice: [Top] is "no path reached here yet", so it is
   the solver's bottom and the identity of the (intersection) join. *)
module Must = struct
  type t = Top | Known of Int_set.t

  let bottom = Top

  let equal a b =
    match (a, b) with
    | Top, Top -> true
    | Known x, Known y -> Int_set.equal x y
    | Top, Known _ | Known _, Top -> false

  let join a b =
    match (a, b) with
    | Top, x | x, Top -> x
    | Known x, Known y -> Known (Int_set.inter x y)
end

module Must_solver = Dataflow.Make (Must)

let must_step sums m inst =
  match m with
  | Must.Top -> Must.Top
  | Must.Known s ->
    Must.Known
      (match inst with
      | T.Join b | T.Rejoin b -> Int_set.add b s
      | T.Wait b | T.Wait_threshold (b, _) | T.Cancel b -> Int_set.remove b s
      | T.Call { callee; _ } -> Int_set.diff s (sums.entry_waits callee)
      | T.Bin _ | T.Un _ | T.Mov _ | T.Load _ | T.Store _ | T.Tid _ | T.Lane _ | T.Nthreads _
      | T.Rand _ | T.Randint _ | T.Arrived _ -> s)

(* ------------------------------------------------------------------ *)
(* Predicate-aware reachability                                        *)
(* ------------------------------------------------------------------ *)

(* Block-local constant propagation over the integer registers feeding
   conditional branches: a [Br] whose condition is an integer
   immediate, or a register the block itself pins to a constant, has
   exactly one live successor. Pruning the dead edge keeps barriers on
   statically untakeable paths out of the waits-for relation — passes
   leave such guards behind (a specialized trip count of zero, a
   folded feature flag), and a join/wait on the dead side must not
   manufacture a cycle against the live code. The environment resets
   at block entry, so only facts the block itself establishes are
   used: an absent register means "unknown", never a guess, which
   keeps the pruning an under-approximation of deadness (the
   soundness direction {!Cfg.of_func} requires). *)
let fold_int_bin op x y =
  let bool_ b = Some (if b then 1 else 0) in
  match (op : T.binop) with
  | T.Add -> Some (x + y)
  | T.Sub -> Some (x - y)
  | T.Mul -> Some (x * y)
  | T.Div -> if y = 0 then None else Some (x / y)
  | T.Rem -> if y = 0 then None else Some (x mod y)
  | T.Min -> Some (min x y)
  | T.Max -> Some (max x y)
  | T.Land -> Some (x land y)
  | T.Lor -> Some (x lor y)
  | T.Lxor -> Some (x lxor y)
  | T.Shl -> if y < 0 || y > 62 then None else Some (x lsl y)
  | T.Shr -> if y < 0 || y > 62 then None else Some (x asr y)
  | T.Eq -> bool_ (x = y)
  | T.Ne -> bool_ (x <> y)
  | T.Lt -> bool_ (x < y)
  | T.Le -> bool_ (x <= y)
  | T.Gt -> bool_ (x > y)
  | T.Ge -> bool_ (x >= y)
  | T.Fadd | T.Fsub | T.Fmul | T.Fdiv | T.Fmin | T.Fmax | T.Feq | T.Fne | T.Flt | T.Fle
  | T.Fgt | T.Fge -> None

let fold_int_un op x =
  match (op : T.unop) with
  | T.Neg -> Some (-x)
  | T.Not -> Some (if x = 0 then 1 else 0)
  | T.Bnot -> Some (lnot x)
  | T.Fneg | T.Itof | T.Ftoi | T.Sqrt | T.Exp | T.Log | T.Sin | T.Cos | T.Fabs -> None

let branch_pruner (f : T.func) =
  let dead : (int * int, unit) Hashtbl.t = Hashtbl.create 8 in
  T.iter_blocks f (fun b ->
      match b.T.term with
      | T.Br { cond; if_true; if_false } when if_true <> if_false ->
        let env : (int, int) Hashtbl.t = Hashtbl.create 8 in
        let operand = function
          | T.Imm (T.I k) -> Some k
          | T.Imm (T.F _) -> None
          | T.Reg r -> Hashtbl.find_opt env r
        in
        let set r = function Some v -> Hashtbl.replace env r v | None -> Hashtbl.remove env r in
        List.iter
          (fun inst ->
            match inst with
            | T.Mov (r, op) -> set r (operand op)
            | T.Bin (op, r, a, b) ->
              set r
                (match (operand a, operand b) with
                | Some x, Some y -> fold_int_bin op x y
                | _ -> None)
            | T.Un (op, r, a) ->
              set r (match operand a with Some x -> fold_int_un op x | None -> None)
            | T.Load (r, _) | T.Tid r | T.Lane r | T.Nthreads r | T.Rand r | T.Randint (r, _)
            | T.Arrived (r, _) -> set r None
            | T.Call { ret = Some r; _ } -> set r None
            | T.Call { ret = None; _ } | T.Store _ | T.Join _ | T.Rejoin _ | T.Wait _
            | T.Wait_threshold _ | T.Cancel _ -> ())
          b.T.insts;
        (match operand cond with
        | Some k -> Hashtbl.replace dead (b.T.id, (if k <> 0 then if_false else if_true)) ()
        | None -> ())
      | T.Br _ | T.Jump _ | T.Ret _ | T.Exit -> ());
  fun src dst -> not (Hashtbl.mem dead (src, dst))

(* ------------------------------------------------------------------ *)
(* Summary fixpoint                                                    *)
(* ------------------------------------------------------------------ *)

let sorted_funcs (p : T.program) =
  Hashtbl.fold (fun n _ acc -> n :: acc) p.funcs [] |> List.sort compare

(* Iterates [escapes]/[may_block] (and the per-function held analyses
   that depend on them) to a fixpoint. Returns the final summaries plus
   the held-analysis result for every function, computed against the
   stable summaries. *)
let compute_summaries (p : T.program) =
  let names = sorted_funcs p in
  let cg = Callgraph.build p in
  let ew_tbl = Hashtbl.create 8 in
  List.iter
    (fun n ->
      let f = Hashtbl.find p.T.funcs n in
      let waits =
        List.fold_left
          (fun acc i ->
            match i with T.Wait b | T.Wait_threshold (b, _) -> Int_set.add b acc | _ -> acc)
          Int_set.empty (T.block f f.entry).insts
      in
      Hashtbl.replace ew_tbl n waits)
    names;
  let entry_waits n = Option.value (Hashtbl.find_opt ew_tbl n) ~default:Int_set.empty in
  let mb_tbl : (string, Int_set.t) Hashtbl.t = Hashtbl.create 8 in
  let esc_tbl : (string, Int_set.t) Hashtbl.t = Hashtbl.create 8 in
  let get tbl n = Option.value (Hashtbl.find_opt tbl n) ~default:Int_set.empty in
  let sums =
    { entry_waits; may_block = (fun n -> get mb_tbl n); escapes = (fun n -> get esc_tbl n) }
  in
  let held_results : (string, Held_solver.result) Hashtbl.t = Hashtbl.create 8 in
  (* Local waited slots never change across iterations; precompute. *)
  let local_waits =
    List.map
      (fun n ->
        let f = Hashtbl.find p.T.funcs n in
        let acc = ref Int_set.empty in
        T.iter_blocks f (fun b ->
            List.iter
              (fun i ->
                match i with
                | T.Wait x | T.Wait_threshold (x, _) -> acc := Int_set.add x !acc
                | _ -> ())
              b.insts);
        (n, !acc))
      names
  in
  let changed = ref true in
  while !changed do
    changed := false;
    (* Bottom-up so summaries flow callee-to-caller within one sweep. *)
    List.iter
      (fun n ->
        let f = Hashtbl.find p.T.funcs n in
        let g = Cfg.of_func ~live_edge:(branch_pruner f) f in
        let res =
          Held_solver.solve g Dataflow.Forward ~boundary:Held.bottom ~transfer:(fun id st ->
              List.fold_left (held_step sums) st (T.block f id).insts)
        in
        Hashtbl.replace held_results n res;
        let esc =
          List.fold_left
            (fun acc id ->
              match (T.block f id).term with
              | T.Ret _ -> Int_set.union acc (Held_solver.after res id).Held.singles
              | T.Jump _ | T.Br _ | T.Exit -> acc)
            Int_set.empty (Cfg.nodes g)
        in
        let mb =
          List.fold_left
            (fun acc callee ->
              Int_set.union acc (Int_set.union (entry_waits callee) (get mb_tbl callee)))
            (List.assoc n local_waits) (Callgraph.callees cg n)
        in
        if not (Int_set.equal esc (get esc_tbl n)) then begin
          Hashtbl.replace esc_tbl n esc;
          changed := true
        end;
        if not (Int_set.equal mb (get mb_tbl n)) then begin
          Hashtbl.replace mb_tbl n mb;
          changed := true
        end)
      (Callgraph.bottom_up cg)
  done;
  (* One final sweep so every cached held result reflects the stable
     summaries (the last loop iteration may have updated a callee after
     its caller was analysed). *)
  List.iter
    (fun n ->
      let f = Hashtbl.find p.T.funcs n in
      let g = Cfg.of_func ~live_edge:(branch_pruner f) f in
      let res =
        Held_solver.solve g Dataflow.Forward ~boundary:Held.bottom ~transfer:(fun id st ->
            List.fold_left (held_step sums) st (T.block f id).insts)
      in
      Hashtbl.replace held_results n res)
    names;
  (sums, fun n -> Hashtbl.find held_results n)

(* ------------------------------------------------------------------ *)
(* SCCs of the waits-for graph (Tarjan, iterative-enough for our sizes) *)
(* ------------------------------------------------------------------ *)

let sccs nodes succs =
  let index = Hashtbl.create 16 and low = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] and counter = ref 0 and out = ref [] in
  let rec strong v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace low v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strong w;
          Hashtbl.replace low v (min (Hashtbl.find low v) (Hashtbl.find low w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace low v (min (Hashtbl.find low v) (Hashtbl.find index w)))
      (succs v);
    if Hashtbl.find low v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          if w = v then w :: acc else pop (w :: acc)
      in
      out := pop [] :: !out
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strong v) nodes;
  !out

(* ------------------------------------------------------------------ *)
(* The checker                                                         *)
(* ------------------------------------------------------------------ *)

let pp_int_list ppf slots =
  Format.fprintf ppf "{%s}" (String.concat ", " (List.map (Printf.sprintf "b%d") slots))

let check ?(speculative = []) (p : T.program) =
  let findings = ref [] in
  let add ?(related = []) category slot site message fix =
    findings := { category; slot; site; message; fix; related } :: !findings
  in
  let sums, held_of = compute_summaries p in
  let names = sorted_funcs p in
  (* Directed waits-for edges: (holder, waited) -> first witnessing site. *)
  let edges : (int * int, site) Hashtbl.t = Hashtbl.create 32 in
  let add_edge src dst site =
    if src <> dst && not (Hashtbl.mem edges (src, dst)) then Hashtbl.replace edges (src, dst) site
  in
  let arrive_slots = ref Int_set.empty in
  (* slot -> first wait/cancel site, for the orphan-slot check *)
  let release_sites : (int, site) Hashtbl.t = Hashtbl.create 16 in
  let note_release slot site =
    if not (Hashtbl.mem release_sites slot) then Hashtbl.replace release_sites slot site
  in
  List.iter
    (fun n ->
      let f = Hashtbl.find p.T.funcs n in
      let g = Cfg.of_func ~live_edge:(branch_pruner f) f in
      let held_res = held_of n in
      let must_res =
        Must_solver.solve g Dataflow.Forward ~boundary:(Must.Known Int_set.empty)
          ~transfer:(fun id st -> List.fold_left (must_step sums) st (T.block f id).insts)
      in
      T.iter_blocks f (fun b ->
          let reachable = Cfg.mem g b.id in
          let held = ref (Held_solver.before held_res b.id) in
          let must = ref (Must_solver.before must_res b.id) in
          List.iteri
            (fun index inst ->
              let site = { in_func = n; block = b.id; index; src_line = b.src_line } in
              (* Slot-range check applies even to unreachable blocks. *)
              (match T.barrier_of inst with
              | Some slot when slot < 0 || slot >= p.next_barrier ->
                add Unallocated_slot slot site
                  (Printf.sprintf "slot b%d is outside the allocated range [0, %d)" slot
                     p.next_barrier)
                  "allocate the slot with Builder.fresh_barrier before referencing it"
              | Some _ | None -> ());
              (match inst with
              | T.Join slot ->
                arrive_slots := Int_set.add slot !arrive_slots;
                (match !must with
                | Must.Known s when reachable && Int_set.mem slot s ->
                  add Double_arrive slot site
                    (Printf.sprintf
                       "arrive-after-arrive: every path to this join already holds b%d" slot)
                    "remove the redundant join, or use rejoin.barrier after the wait"
                | Must.Known _ | Must.Top -> ())
              | T.Rejoin slot -> arrive_slots := Int_set.add slot !arrive_slots
              | T.Wait slot | T.Wait_threshold (slot, _) ->
                note_release slot site;
                if reachable && Int_set.mem slot (!held).Held.singles then
                  Pair_set.iter
                    (fun (x, y) ->
                      if x = slot then add_edge y slot site
                      else if y = slot then add_edge x slot site)
                    (!held).Held.pairs
              | T.Cancel slot -> note_release slot site
              | T.Call { callee; _ } when reachable ->
                (* The call is the wait event for the callee's entry
                   waits (pair-precise); deeper blocking points see the
                   caller's held slots minus those entry waits. *)
                let ew = sums.entry_waits callee in
                Int_set.iter
                  (fun w ->
                    if Int_set.mem w (!held).Held.singles then
                      Pair_set.iter
                        (fun (x, y) ->
                          if x = w then add_edge y w site
                          else if y = w then add_edge x w site)
                        (!held).Held.pairs)
                  ew;
                let deeper = Int_set.diff (sums.may_block callee) ew in
                let srcs = Int_set.diff (!held).Held.singles ew in
                Int_set.iter
                  (fun m -> Int_set.iter (fun c -> if c <> m then add_edge c m site) srcs)
                  deeper
              | T.Call _ | T.Arrived _ | T.Bin _ | T.Un _ | T.Mov _ | T.Load _ | T.Store _
              | T.Tid _ | T.Lane _ | T.Nthreads _ | T.Rand _ | T.Randint _ -> ());
              held := held_step sums !held inst;
              must := must_step sums !must inst)
            b.insts))
    names;
  (* Rule 3b: wait/cancel on a slot with no arrive site anywhere. *)
  Hashtbl.fold (fun slot site acc -> (slot, site) :: acc) release_sites []
  |> List.sort compare
  |> List.iter (fun (slot, site) ->
         if slot >= 0 && slot < p.next_barrier && not (Int_set.mem slot !arrive_slots) then
           add Unallocated_slot slot site
             (Printf.sprintf "wait/cancel on b%d, but no join/rejoin arrives on it anywhere" slot)
             "insert join.barrier on every participating path, or delete the orphan primitive");
  (* Rule 4: partially-overlapping live ranges with mutual blocking. *)
  List.iter
    (fun n ->
      let f = Hashtbl.find p.T.funcs n in
      let ba = Barrier_analysis.run ~call_waits:sums.entry_waits f in
      List.iter
        (fun (x, y) ->
          match (Hashtbl.find_opt edges (x, y), Hashtbl.find_opt edges (y, x)) with
          | Some site, Some _ ->
            add ~related:[ y ] Unseparated_overlap x site
              (Printf.sprintf
                 "slots b%d and b%d overlap partially and can each block a holder of the \
                  other; Deconflict should have separated them"
                 x y)
              "re-run deconfliction on this pair, or cancel the held slot before the wait"
          | _ -> ())
        (Barrier_analysis.conflicts ba))
    names;
  (* Rule 1: cycles in the waits-for relation. *)
  let edge_nodes =
    Hashtbl.fold (fun (a, b) _ acc -> Int_set.add a (Int_set.add b acc)) edges Int_set.empty
  in
  let succs v =
    Hashtbl.fold (fun (a, b) _ acc -> if a = v then b :: acc else acc) edges []
    |> List.sort compare
  in
  List.iter
    (fun scc ->
      match List.sort compare scc with
      | [] | [ _ ] -> ()
      | rep :: _ as cycle ->
        (* Witness site: the lexically first edge inside the cycle. *)
        let in_cycle x = List.mem x cycle in
        let site =
          Hashtbl.fold
            (fun (a, b) s acc ->
              if in_cycle a && in_cycle b then
                match acc with
                | Some (k, _) when k <= (a, b) -> acc
                | _ -> Some ((a, b), s)
              else acc)
            edges None
        in
        let site = match site with Some (_, s) -> s | None -> assert false in
        add ~related:cycle Bypassable_wait rep site
          (Format.asprintf
             "wait can be bypassed: slots %a form a waits-for cycle (each may block a holder \
              of the next), so no schedule can fire them"
             pp_int_list cycle)
          "break the cycle: cancel or deconflict one of the slots before its conflicting wait")
    (sccs (Int_set.elements edge_nodes) succs);
  (* Rule 5: speculative waits must be dominated by their BSSY. *)
  List.iter
    (fun sp ->
      match Hashtbl.find_opt p.T.funcs sp.sfunc with
      | None -> ()
      | Some f ->
        let g = Cfg.of_func ~live_edge:(branch_pruner f) f in
        let jb = if Cfg.mem g sp.join_block then Some (T.block f sp.join_block) else None in
        let joins_here bl =
          List.exists
            (fun i -> match i with T.Join x | T.Rejoin x -> x = sp.slot | _ -> false)
            bl.T.insts
        in
        (match jb with
        | Some bl when joins_here bl ->
          let dom = Dom.compute g in
          T.iter_blocks f (fun b ->
              if Cfg.mem g b.id then
                List.iteri
                  (fun index inst ->
                    let waits_slot =
                      match inst with
                      | T.Wait x | T.Wait_threshold (x, _) -> x = sp.slot
                      | T.Call { callee; _ } -> Int_set.mem sp.slot (sums.entry_waits callee)
                      | _ -> false
                    in
                    if waits_slot && not (Dom.dominates dom sp.join_block b.id) then
                      add Undominated_wait sp.slot
                        { in_func = sp.sfunc; block = b.id; index; src_line = b.src_line }
                        (Printf.sprintf
                           "speculative wait on b%d at bb%d is not dominated by its join \
                            block bb%d: some participant can reach the wait region without \
                            arriving"
                           sp.slot b.id sp.join_block)
                        "move the predict hint so the join dominates the wait, or drop the \
                         hint")
                  b.insts)
        | Some _ | None -> (* slot was deconflicted/cleaned away: nothing to prove *) ()))
    (List.sort compare speculative);
  List.sort_uniq
    (fun a b ->
      compare
        (a.site.in_func, a.site.block, a.site.index, category_rank a.category, a.slot)
        (b.site.in_func, b.site.block, b.site.index, category_rank b.category, b.slot))
    !findings

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp_line ppf = function
  | Some l -> Format.fprintf ppf "%d" l
  | None -> Format.fprintf ppf "?"

(* Stable edit-class names shared with Analysis.Barrier_repair: the
   repair pass enumerates candidates for a finding starting from the
   hinted class, and srcc --fix-dry-run reports edits under the same
   vocabulary, so the hint is a machine-checkable promise. *)
let hint f =
  match f.category with
  | Bypassable_wait -> "insert-cancel"
  | Unseparated_overlap -> "split-slot"
  | Double_arrive -> "split-slot"
  | Unallocated_slot -> "remap-slot"
  | Undominated_wait -> "hoist-wait"

let pp_finding ppf f =
  Format.fprintf ppf "srlint [%s] %s/bb%d (line %a) slot b%d: %s; fix: %s"
    (category_name f.category) f.site.in_func f.site.block pp_line f.site.src_line f.slot
    f.message f.fix

let pp_machine ppf f =
  Format.fprintf ppf
    "srlint: category=%s func=%s block=bb%d line=%a slot=b%d msg=%s fix=%s hint=%s"
    (category_name f.category) f.site.in_func f.site.block pp_line f.site.src_line f.slot
    f.message f.fix (hint f)

let render fs = String.concat "\n" (List.map (Format.asprintf "%a" pp_machine) fs)
