module T = Ir.Types
module BA = Analysis.Barrier_analysis

type strategy = Static | Dynamic

type resolution = { in_func : string; kept : T.barrier; demoted : T.barrier; strategy : strategy }

type report = {
  resolutions : resolution list;
  unresolved : (string * T.barrier * T.barrier) list;
}

(* Barriers whose wait sits at a function's entry block — i.e. the waits
   {!Interproc} propagates to predicted callees (§4.4). In every caller,
   a call to such a function is the wait event for those barriers, both
   for conflict detection and for dynamic-cancel placement. *)
let entry_waits (p : T.program) =
  let tbl = Hashtbl.create 8 in
  Hashtbl.iter
    (fun name (f : T.func) ->
      let waits =
        List.fold_left
          (fun acc i ->
            match i with
            | T.Wait b | T.Wait_threshold (b, _) -> Analysis.Sets.Int_set.add b acc
            | T.Join _ | T.Rejoin _ | T.Cancel _ | T.Arrived _ | T.Bin _ | T.Un _ | T.Mov _
            | T.Load _ | T.Store _ | T.Tid _ | T.Lane _ | T.Nthreads _ | T.Rand _ | T.Randint _
            | T.Call _ -> acc)
          Analysis.Sets.Int_set.empty (T.block f f.entry).insts
      in
      Hashtbl.replace tbl name waits)
    p.funcs;
  fun callee ->
    Option.value (Hashtbl.find_opt tbl callee) ~default:Analysis.Sets.Int_set.empty

(* Insert [Cancel demoted] immediately before every wait on [kept] — a
   literal wait, or a call whose callee waits on [kept] at entry. *)
let dynamic_cancel (f : T.func) ~call_waits ~kept ~demoted =
  let waits_on_kept = function
    | T.Wait x | T.Wait_threshold (x, _) -> x = kept
    | T.Call { callee; _ } -> Analysis.Sets.Int_set.mem kept (call_waits callee)
    | T.Join _ | T.Rejoin _ | T.Cancel _ | T.Arrived _ | T.Bin _ | T.Un _ | T.Mov _ | T.Load _
    | T.Store _ | T.Tid _ | T.Lane _ | T.Nthreads _ | T.Rand _ | T.Randint _ -> false
  in
  T.iter_blocks f (fun b ->
      let rec rebuild acc = function
        | [] -> List.rev acc
        | w :: rest when waits_on_kept w -> rebuild (w :: T.Cancel demoted :: acc) rest
        | i :: rest -> rebuild (i :: acc) rest
      in
      b.insts <- rebuild [] b.insts)

let run ?(model_call_waits = true) (p : T.program) ~strategy ~priority =
  let call_waits =
    if model_call_waits then entry_waits p else fun _ -> Analysis.Sets.Int_set.empty
  in
  let resolutions = ref [] in
  let unresolved = ref [] in
  let names = List.sort compare (Hashtbl.fold (fun n _ acc -> n :: acc) p.funcs []) in
  List.iter
    (fun name ->
      let f = Hashtbl.find p.funcs name in
      (* Resolve one conflict, re-analyse, repeat: each resolution changes
         live ranges, which can dissolve (or expose) other conflicts. *)
      (* Dynamic resolutions do not change live ranges (Cancel is not a
         liveness event), so already-handled pairs must be skipped when
         re-analysing. *)
      let handled = Hashtbl.create 8 in
      let continue_ = ref true in
      while !continue_ do
        let ba = BA.run ~call_waits f in
        let conflicts =
          List.filter (fun pair -> not (Hashtbl.mem handled pair)) (BA.conflicts ba)
        in
        match conflicts with
        | [] -> continue_ := false
        | ((x, y) as pair) :: _ ->
          Hashtbl.replace handled pair ();
          let px = priority name x and py = priority name y in
          if px = py then unresolved := (name, x, y) :: !unresolved
          else begin
            let kept, demoted = if px > py then (x, y) else (y, x) in
            (match strategy with
            | Static -> ignore (Edit.remove_barrier_ops f demoted)
            | Dynamic -> dynamic_cancel f ~call_waits ~kept ~demoted);
            resolutions := { in_func = name; kept; demoted; strategy } :: !resolutions
          end
      done)
    names;
  { resolutions = List.rev !resolutions; unresolved = List.rev !unresolved }
