(* Small block-editing helpers shared by the synchronization passes. *)

module T = Ir.Types

(* [insert_at f bid idx inst] inserts [inst] before position [idx] of the
   block's instruction list ([idx] may equal the length to append). *)
let insert_at (f : T.func) bid idx inst =
  let b = T.block f bid in
  let n = List.length b.insts in
  if idx < 0 || idx > n then
    invalid_arg (Printf.sprintf "Edit.insert_at: index %d out of [0, %d]" idx n);
  let before = List.filteri (fun i _ -> i < idx) b.insts in
  let after = List.filteri (fun i _ -> i >= idx) b.insts in
  b.insts <- before @ (inst :: after)

(* [insert_after_leading f bid ~skip inst] inserts [inst] after the longest
   prefix of instructions satisfying [skip]. *)
let insert_after_leading (f : T.func) bid ~skip inst =
  let b = T.block f bid in
  let rec prefix_len i = function
    | x :: rest when skip x -> prefix_len (i + 1) rest
    | _ -> i
  in
  insert_at f bid (prefix_len 0 b.insts) inst

(* [remove_barrier_ops f barrier] deletes every instruction referencing
   [barrier] in [f]; returns how many were removed. *)
let remove_barrier_ops (f : T.func) barrier =
  let removed = ref 0 in
  T.iter_blocks f (fun b ->
      let keep inst =
        match T.barrier_of inst with
        | Some x when x = barrier ->
          incr removed;
          false
        | Some _ | None -> true
      in
      b.insts <- List.filter keep b.insts);
  !removed

(* [index_of_wait f bid barrier] finds the position of the first
   [Wait]/[Wait_threshold] on [barrier] in the block. *)
let index_of_wait (f : T.func) bid barrier =
  let b = T.block f bid in
  let rec find i = function
    | [] -> None
    | (T.Wait x | T.Wait_threshold (x, _)) :: _ when x = barrier -> Some i
    | _ :: rest -> find (i + 1) rest
  in
  find 0 b.insts

(* [remove_at f bid idx] deletes the instruction at position [idx] and
   returns it. *)
let remove_at (f : T.func) bid idx =
  let b = T.block f bid in
  let n = List.length b.insts in
  if idx < 0 || idx >= n then
    invalid_arg (Printf.sprintf "Edit.remove_at: index %d out of [0, %d)" idx n);
  let removed = List.nth b.insts idx in
  b.insts <- List.filteri (fun i _ -> i <> idx) b.insts;
  removed

(* [rewrite_slot_at f bid idx slot] retargets the barrier primitive at
   [idx] to [slot], keeping its opcode (and threshold). *)
let rewrite_slot_at (f : T.func) bid idx slot =
  let b = T.block f bid in
  let n = List.length b.insts in
  if idx < 0 || idx >= n then
    invalid_arg (Printf.sprintf "Edit.rewrite_slot_at: index %d out of [0, %d)" idx n);
  b.insts <-
    List.mapi
      (fun i inst ->
        if i <> idx then inst
        else
          match inst with
          | T.Join _ -> T.Join slot
          | T.Rejoin _ -> T.Rejoin slot
          | T.Wait _ -> T.Wait slot
          | T.Wait_threshold (_, k) -> T.Wait_threshold (slot, k)
          | T.Cancel _ -> T.Cancel slot
          | T.Arrived (d, _) -> T.Arrived (d, slot)
          | other ->
            invalid_arg
              (Format.asprintf "Edit.rewrite_slot_at: %a is not a barrier primitive"
                 Ir.Printer.pp_inst other))
      b.insts

(* [move_inst f ~from_block ~from_index ~to_block] removes the
   instruction at the source position and inserts it at the top of
   [to_block], after any leading arrive primitives (so a moved wait
   stays after the joins of its landing block). *)
let move_inst (f : T.func) ~from_block ~from_index ~to_block =
  let inst = remove_at f from_block from_index in
  insert_after_leading f to_block
    ~skip:(fun i -> match i with T.Join _ | T.Rejoin _ -> true | _ -> false)
    inst
