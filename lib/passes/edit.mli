(** Block-editing helpers shared by the synchronization passes. *)

(** [insert_at f bid idx inst] inserts [inst] before position [idx] of
    the block's instruction list ([idx] may equal the length, appending).
    @raise Invalid_argument when [idx] is out of range. *)
val insert_at : Ir.Types.func -> int -> int -> Ir.Types.inst -> unit

(** [insert_after_leading f bid ~skip inst] inserts [inst] after the
    longest prefix of instructions satisfying [skip]. *)
val insert_after_leading :
  Ir.Types.func -> int -> skip:(Ir.Types.inst -> bool) -> Ir.Types.inst -> unit

(** [remove_barrier_ops f barrier] deletes every instruction referencing
    [barrier]; returns how many were removed. *)
val remove_barrier_ops : Ir.Types.func -> Ir.Types.barrier -> int

(** [index_of_wait f bid barrier] — position of the first wait
    (hard or threshold) on [barrier] in the block, if any. *)
val index_of_wait : Ir.Types.func -> int -> Ir.Types.barrier -> int option

(** [remove_at f bid idx] deletes and returns the instruction at [idx].
    @raise Invalid_argument when [idx] is out of range. *)
val remove_at : Ir.Types.func -> int -> int -> Ir.Types.inst

(** [rewrite_slot_at f bid idx slot] retargets the barrier primitive at
    [idx] to [slot], keeping its opcode (and threshold).
    @raise Invalid_argument if [idx] is out of range or the instruction
    is not a barrier primitive. *)
val rewrite_slot_at : Ir.Types.func -> int -> int -> Ir.Types.barrier -> unit

(** [move_inst f ~from_block ~from_index ~to_block] removes the source
    instruction and re-inserts it at the top of [to_block], after any
    leading [Join]/[Rejoin] prefix. *)
val move_inst : Ir.Types.func -> from_block:int -> from_index:int -> to_block:int -> unit
