module T = Ir.Types
module ISet = Analysis.Sets.Int_set

type report = { dce_removed : int; dead_barrier_ops_removed : int }

(* Is the instruction removable when its results are unused? *)
let pure = function
  | T.Bin _ | T.Un _ | T.Mov _ | T.Tid _ | T.Lane _ | T.Nthreads _ | T.Load _ | T.Arrived _ ->
    true
  (* Rand/Randint advance the per-thread PRNG stream: removing one would
     shift every subsequent draw. Calls, stores and barrier operations
     have observable effects. *)
  | T.Rand _ | T.Randint _ | T.Call _ | T.Store _ | T.Join _ | T.Rejoin _ | T.Wait _
  | T.Wait_threshold _ | T.Cancel _ -> false

let dce_pass (f : T.func) =
  let removed = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let liveness = Analysis.Reg_liveness.run f in
    let removed_this_round = ref 0 in
    T.iter_blocks f (fun b ->
        (* One backward sweep per block with an incrementally maintained
           live set (the per-index [live_after] query refolds the whole
           block suffix, which is quadratic). A removed instruction
           contributes neither uses nor kills, so an intra-block dead
           chain dies in a single round; cross-block chains still drive
           the outer fixpoint. The fixpoint is the same either way:
           removing a dead instruction never revives another. *)
        let live =
          ref
            (List.fold_left
               (fun s r -> ISet.add r s)
               (Analysis.Reg_liveness.live_out liveness b.id)
               (T.term_uses b.term))
        in
        b.insts <-
          List.fold_left
            (fun acc inst ->
              let defs = T.defs inst in
              let dead =
                pure inst && defs <> []
                && List.for_all (fun r -> not (ISet.mem r !live)) defs
              in
              if dead then begin
                incr removed_this_round;
                acc
              end
              else begin
                live :=
                  List.fold_left
                    (fun s r -> ISet.add r s)
                    (List.fold_left (fun s r -> ISet.remove r s) !live defs)
                    (T.uses inst);
                inst :: acc
              end)
            [] (List.rev b.insts));
    removed := !removed + !removed_this_round;
    continue_ := !removed_this_round > 0
  done;
  !removed

(* Program-wide barrier uses: a barrier joined in a caller may be waited
   inside a callee (the interprocedural variant), so deadness is a
   whole-program property. *)
let barrier_uses (p : T.program) =
  let joined = ref ISet.empty and waited = ref ISet.empty in
  Hashtbl.iter
    (fun _ (f : T.func) ->
      T.iter_blocks f (fun b ->
          List.iter
            (fun i ->
              match i with
              | T.Join x | T.Rejoin x -> joined := ISet.add x !joined
              | T.Wait x | T.Wait_threshold (x, _) -> waited := ISet.add x !waited
              | T.Cancel _ | T.Arrived _ | T.Bin _ | T.Un _ | T.Mov _ | T.Load _ | T.Store _
              | T.Tid _ | T.Lane _ | T.Nthreads _ | T.Rand _ | T.Randint _ | T.Call _ -> ())
            b.insts))
    p.funcs;
  (!joined, !waited)

let dead_barrier_pass (p : T.program) =
  let joined, waited = barrier_uses p in
  let removed = ref 0 in
  Hashtbl.iter
    (fun _ (f : T.func) ->
      T.iter_blocks f (fun b ->
          b.insts <-
            List.filter
              (fun i ->
                let dead =
                  match i with
                  | T.Join x | T.Rejoin x | T.Cancel x -> not (ISet.mem x waited)
                  | T.Wait x | T.Wait_threshold (x, _) -> not (ISet.mem x joined)
                  | T.Arrived _ | T.Bin _ | T.Un _ | T.Mov _ | T.Load _ | T.Store _ | T.Tid _
                  | T.Lane _ | T.Nthreads _ | T.Rand _ | T.Randint _ | T.Call _ -> false
                in
                if dead then incr removed;
                not dead)
              b.insts))
    p.funcs;
  !removed

let run (p : T.program) =
  let dead_barrier_ops_removed = dead_barrier_pass p in
  let dce_removed =
    Hashtbl.fold (fun _ f acc -> acc + dce_pass f) p.funcs 0
  in
  { dce_removed; dead_barrier_ops_removed }
