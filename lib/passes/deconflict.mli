(** Barrier deconfliction (§4.3).

    Two barriers conflict when their live ranges overlap non-inclusively;
    threads could then wait for each other at two different places — in
    this simulator that is a hard deadlock, on hardware "unpredictable
    behavior". Conflicts arise between the barriers Speculative
    Reconvergence inserts and the compiler's PDOM barriers.

    Resolution keeps the higher-priority barrier (user hints beat region
    barriers beat compiler PDOM barriers, per §4.1's "user-specified
    convergence hints should receive priority"):

    - {e Static}: delete every operation of the losing barrier. Cheapest,
      but if the predicted convergence point is rarely entered the
      original PDOM synchronization is lost for nothing.
    - {e Dynamic}: keep everything; threads reaching a wait of the winning
      barrier first execute [CancelBarrier] on the losing one
      (Figure 5(c)), removing the conflict only when the predicted point
      is actually reached at run time. *)

type strategy = Static | Dynamic

type resolution = {
  in_func : string;
  kept : Ir.Types.barrier;
  demoted : Ir.Types.barrier;
  strategy : strategy;
}

type report = {
  resolutions : resolution list;
  unresolved : (string * Ir.Types.barrier * Ir.Types.barrier) list;
      (** same-priority conflicts the pass refuses to arbitrate *)
}

(** [run program ~strategy ~priority] detects and resolves conflicts.
    [priority func barrier] ranks barriers (higher wins). Same-rank
    conflicts are reported unresolved and left untouched.

    [~model_call_waits:false] is an ablation knob: it turns off the
    call-as-wait modeling of §4.4 (a call to a function that waits at
    entry counts as the wait event), reverting the pass to the
    pre-fuzzer behavior that was blind to interprocedural conflicts and
    deadlocked on [predict func] regions. Kept so tests can prove the
    static checker ({!Analysis.Barrier_safety}) flags that shape. *)
val run :
  ?model_call_waits:bool ->
  Ir.Types.program ->
  strategy:strategy ->
  priority:(string -> Ir.Types.barrier -> int) ->
  report
