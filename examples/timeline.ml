(* Execution-diagram example: reproduce the cartoon of Figure 1 (and
   Figure 3(b)) from real simulator traces.

   Runs a four-lane warp through the Listing-1 kernel under PDOM
   reconvergence and under Speculative Reconvergence, and draws each
   lane's activity over time: which instruction category the lane's
   issue at that moment belonged to. Expensive common code shows up as
   'E'; under PDOM the E columns are serialized per lane, under
   Speculative Reconvergence they line up.

   Run with: dune exec examples/timeline.exe *)

let source =
  {|
global out: float[64];

kernel k(n: int) {
  var acc: float = 0.0;
  predict L1;
  for i in 0 .. n {
    let r = randint(3);
    if (r == 0) {
      L1:
      var j: int = 0;
      while (j < 6) { acc = acc + sin(acc) * 0.25; j = j + 1; }
    }
    acc = acc + 0.01;
  }
  out[tid()] = acc;
}
|}

let config =
  {
    Simt.Config.default with
    Simt.Config.n_warps = 1;
    warp_size = 4;
    seed = 11;
  }

(* Category of a block: 'E' for the expensive predicted region (blocks
   dominated by the L1 label block), '.' for everything else. *)
let expensive_blocks (compiled : Core.Compile.compiled) =
  let f = Hashtbl.find compiled.program.Ir.Types.funcs compiled.program.Ir.Types.kernel in
  match Ir.Builder.label_block f "L1" with
  | None -> (fun _ -> false)
  | Some l1 ->
    let g = Analysis.Cfg.of_func f in
    let dom = Analysis.Dom.compute g in
    fun block -> Analysis.Cfg.mem g block && Analysis.Dom.dominates dom l1 block

let trace options =
  let compiled = Core.Compile.compile options ~source in
  let is_expensive = expensive_blocks compiled in
  let events = ref [] in
  let result =
    Simt.Interp.run config compiled.decoded
      ~tracer:(fun e -> events := e :: !events)
      ~args:[ Ir.Types.I 10 ]
      ~init_memory:(fun _ -> ())
  in
  (compiled, result, List.rev !events, is_expensive)

let draw title options =
  let _, result, events, is_expensive = trace options in
  Printf.printf "%s  (SIMT efficiency %.1f%%, %d cycles)\n" title
    (100.0 *. Simt.Metrics.simt_efficiency result.Simt.Interp.metrics)
    result.Simt.Interp.metrics.Simt.Metrics.cycles;
  (* One column per issue (time flows left to right), one row per lane. *)
  let columns = List.length events in
  let width = min columns 150 in
  let step = max 1 (columns / width) in
  let sampled =
    List.filteri (fun i _ -> i mod step = 0) events
  in
  for lane = 0 to config.Simt.Config.warp_size - 1 do
    let row =
      String.concat ""
        (List.map
           (fun (e : Simt.Interp.issue_event) ->
             if not (List.mem lane e.Simt.Interp.active) then " "
             else if is_expensive e.Simt.Interp.where.Ir.Linear.in_block then "E"
             else ".")
           sampled)
    in
    Printf.printf "  T%d |%s\n" lane row
  done;
  print_newline ()

let () =
  print_endline "Execution diagrams (cf. Figure 1): E = expensive common code,";
  print_endline ". = other work, blank = lane idle. Time flows left to right.\n";
  draw "(a) PDOM reconvergence" Core.Compile.baseline;
  draw "(b) Speculative Reconvergence" Core.Compile.speculative;
  print_endline
    "Under PDOM the E segments appear in different columns per lane (the\n\
     warp serializes them); under Speculative Reconvergence the lanes'\n\
     E segments align into shared columns — the repacking of Figure 1(b)."
