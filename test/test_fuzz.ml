(* Regression gates for the fuzzing subsystem itself:

   - corpus replay: every minimized repro under corpus/ (found by
     srfuzz, root-caused, fixed, then promoted) must pass every
     differential oracle, forever;
   - fixed-seed smoke campaign: the tier-1 slice of a full
     [srfuzz --seed 42] run;
   - deconfliction rescue: the §3 conflicting-barrier deadlock fires
     when the deconflict stage is skipped and is resolved when it runs;
   - generator determinism: same seed and id, same program. *)

module Oracle = Fuzz.Oracle
module Pipeline = Fuzz.Pipeline

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let corpus_files () =
  Sys.readdir "corpus" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".simt")
  |> List.sort compare
  |> List.map (Filename.concat "corpus")

let test_corpus_replay () =
  let files = corpus_files () in
  Alcotest.(check bool)
    (Printf.sprintf "corpus holds at least 5 repros (found %d)" (List.length files))
    true
    (List.length files >= 5);
  List.iter
    (fun path ->
      let ast = Front.Parser.parse_string (read_file path) in
      match Oracle.check ast with
      | Oracle.Ok_run -> ()
      | v -> Alcotest.failf "%s: %a" path Oracle.pp_verdict v)
    files

let test_smoke_campaign () =
  let report = Fuzz.Driver.run ~seed:42 ~count:200 () in
  List.iter
    (fun (f : Fuzz.Driver.finding) ->
      Alcotest.failf "[%d] %s %s: %s" f.Fuzz.Driver.id
        (Fuzz.Gen.shape_name f.Fuzz.Driver.shape)
        (Oracle.kind_name f.Fuzz.Driver.violation.Oracle.kind)
        f.Fuzz.Driver.violation.Oracle.detail)
    report.Fuzz.Driver.findings;
  Alcotest.(check int) "every program accounted for" 200
    (report.Fuzz.Driver.passed + report.Fuzz.Driver.limited)

let test_generator_deterministic () =
  let a = Fuzz.Gen.generate ~seed:1729 3 and b = Fuzz.Gen.generate ~seed:1729 3 in
  Alcotest.(check bool) "same seed and id give the same program" true
    (Front.Pretty.equal_program a.Fuzz.Gen.ast b.Fuzz.Gen.ast)

(* The §3 common-call conflict, as srfuzz minimized it (corpus id 18):
   threads that call [fn0] block on the interprocedural barrier waiting
   at the callee's entry, while the threads that skipped the call block
   on the caller's PDOM join — complementary waiting sets, so neither
   barrier can ever fire on its own. *)
let conflicting_source =
  {|
func fn0(p0: float) -> float {
}

kernel k() {
  var accf3: float = 0.0;
  predict func fn0;
  for i5 in 0 .. 1 {
    if ((randint(3) == 0)) {
      accf3 = (accf3 + fn0(fabs((rand() - rand()))));
    }
  }
}
|}

let run_policy (staged : Pipeline.staged) policy =
  let config = { Oracle.base_config with Simt.Config.policy } in
  Simt.Interp.run config staged.Pipeline.linear ~args:[]
    ~init_memory:(Oracle.init_memory staged.Pipeline.program)

let test_deconflict_rescues_deadlock () =
  let ast = Front.Parser.parse_string conflicting_source in
  let raw = Pipeline.compile ~deconflict:false ~mode:Pipeline.Specrecon ast in
  let deadlocked =
    List.filter
      (fun policy ->
        match run_policy raw policy with
        | _ -> false
        | exception Simt.Interp.Deadlock _ -> true)
      Oracle.policies
  in
  Alcotest.(check bool) "deadlocks under some policy without deconfliction" true
    (deadlocked <> []);
  let deconflicted = Pipeline.compile ~mode:Pipeline.Specrecon ast in
  Alcotest.(check bool) "deconfliction resolved the conflict" true
    (deconflicted.Pipeline.resolutions >= 1);
  List.iter
    (fun policy ->
      match run_policy deconflicted policy with
      | _ -> ()
      | exception Simt.Interp.Deadlock msg -> Alcotest.failf "still deadlocks: %s" msg)
    Oracle.policies;
  match Oracle.check ast with
  | Oracle.Ok_run -> ()
  | v -> Alcotest.failf "full oracle matrix: %a" Oracle.pp_verdict v

let tests =
  [
    ( "fuzz.oracles",
      [
        Alcotest.test_case "generator deterministic" `Quick test_generator_deterministic;
        Alcotest.test_case "deconfliction rescues common-call deadlock" `Quick
          test_deconflict_rescues_deadlock;
        Alcotest.test_case "corpus replay" `Slow test_corpus_replay;
        Alcotest.test_case "smoke campaign (seed 42)" `Slow test_smoke_campaign;
      ] );
  ]
