(* Regression gates for the fuzzing subsystem itself:

   - corpus replay: every minimized repro under corpus/ (found by
     srfuzz, root-caused, fixed, then promoted) must pass every
     differential oracle, forever;
   - fixed-seed smoke campaign: the tier-1 slice of a full
     [srfuzz --seed 42] run;
   - deconfliction rescue: the §3 conflicting-barrier deadlock fires
     when the deconflict stage is skipped and is resolved when it runs;
   - generator determinism: same seed and id, same program. *)

module Oracle = Fuzz.Oracle
module Pipeline = Fuzz.Pipeline

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let corpus_files () =
  Sys.readdir "corpus" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".simt")
  |> List.sort compare
  |> List.map (Filename.concat "corpus")

let test_corpus_replay () =
  let files = corpus_files () in
  Alcotest.(check bool)
    (Printf.sprintf "corpus holds at least 5 repros (found %d)" (List.length files))
    true
    (List.length files >= 5);
  List.iter
    (fun path ->
      let ast = Front.Parser.parse_string (read_file path) in
      match Oracle.check ast with
      | Oracle.Ok_run -> ()
      | v -> Alcotest.failf "%s: %a" path Oracle.pp_verdict v)
    files

let test_smoke_campaign () =
  let report = Fuzz.Driver.run ~seed:42 ~count:200 () in
  List.iter
    (fun (f : Fuzz.Driver.finding) ->
      Alcotest.failf "[%d] %s %s: %s" f.Fuzz.Driver.id
        (Fuzz.Gen.shape_name f.Fuzz.Driver.shape)
        (Oracle.kind_name f.Fuzz.Driver.violation.Oracle.kind)
        f.Fuzz.Driver.violation.Oracle.detail)
    report.Fuzz.Driver.findings;
  Alcotest.(check int) "every program accounted for" 200
    (report.Fuzz.Driver.passed + report.Fuzz.Driver.limited)

let test_generator_deterministic () =
  let a = Fuzz.Gen.generate ~seed:1729 3 and b = Fuzz.Gen.generate ~seed:1729 3 in
  Alcotest.(check bool) "same seed and id give the same program" true
    (Front.Pretty.equal_program a.Fuzz.Gen.ast b.Fuzz.Gen.ast)

let test_second_kernel_typed_calls () =
  (* Seed 8806 id 202 (and 244) once generated a second kernel whose
     Common_call body fed float arguments to an int-typed fn0 — a
     stage-failure in lower. The generator now only rolls Common_call
     for a second kernel when a float-typed device function exists.
     The pre-fix sources are permanently ill-typed, so the regression is
     pinned by regenerating rather than by a corpus file. *)
  List.iter
    (fun id ->
      let case = Fuzz.Gen.generate ~seed:8806 id in
      match Oracle.check case.Fuzz.Gen.ast with
      | Oracle.Ok_run -> ()
      | v -> Alcotest.failf "8806/%d: %a" id Oracle.pp_verdict v)
    [ 202; 244 ]

(* The §3 common-call conflict, as srfuzz minimized it (corpus id 18):
   threads that call [fn0] block on the interprocedural barrier waiting
   at the callee's entry, while the threads that skipped the call block
   on the caller's PDOM join — complementary waiting sets, so neither
   barrier can ever fire on its own. *)
let conflicting_source =
  {|
func fn0(p0: float) -> float {
}

kernel k() {
  var accf3: float = 0.0;
  predict func fn0;
  for i5 in 0 .. 1 {
    if ((randint(3) == 0)) {
      accf3 = (accf3 + fn0(fabs((rand() - rand()))));
    }
  }
}
|}

let run_policy (staged : Pipeline.staged) policy =
  let config = { Oracle.base_config with Simt.Config.policy } in
  Simt.Interp.run config staged.Pipeline.decoded ~args:[]
    ~init_memory:(Oracle.init_memory staged.Pipeline.program)

let test_deconflict_rescues_deadlock () =
  let ast = Front.Parser.parse_string conflicting_source in
  let raw = Pipeline.compile ~deconflict:false ~mode:Pipeline.Specrecon ast in
  let deadlocked =
    List.filter
      (fun policy ->
        match run_policy raw policy with
        | _ -> false
        | exception Simt.Interp.Deadlock _ -> true)
      Oracle.policies
  in
  Alcotest.(check bool) "deadlocks under some policy without deconfliction" true
    (deadlocked <> []);
  let deconflicted = Pipeline.compile ~mode:Pipeline.Specrecon ast in
  Alcotest.(check bool) "deconfliction resolved the conflict" true
    (deconflicted.Pipeline.resolutions >= 1);
  List.iter
    (fun policy ->
      match run_policy deconflicted policy with
      | _ -> ()
      | exception Simt.Interp.Deadlock msg -> Alcotest.failf "still deadlocks: %s" msg)
    Oracle.policies;
  match Oracle.check ast with
  | Oracle.Ok_run -> ()
  | v -> Alcotest.failf "full oracle matrix: %a" Oracle.pp_verdict v

(* ---- Yield recovery (the fault-tolerance tentpole) ---- *)

let digest (r : Simt.Interp.result) = Simt.Memsys.digest r.Simt.Interp.memory

let run_yield (staged : Pipeline.staged) policy yield_policy =
  let config =
    { Oracle.base_config with
      Simt.Config.policy;
      yield_on_stall = true;
      yield_policy }
  in
  Simt.Interp.run config staged.Pipeline.decoded ~args:[]
    ~init_memory:(Oracle.init_memory staged.Pipeline.program)

let test_yield_recovers_conflict () =
  (* The same checker-rejected conflicting placement that deadlocks in
     test_deconflict_rescues_deadlock must, with yield recovery on,
     complete under every (scheduler, victim-policy) pair with memory
     bit-identical to the PDOM baseline — graceful degradation instead
     of a stuck machine. *)
  let ast = Front.Parser.parse_string conflicting_source in
  let raw = Pipeline.compile ~deconflict:false ~mode:Pipeline.Specrecon ast in
  Alcotest.(check bool) "the placement is checker-rejected" true (raw.Pipeline.lint <> []);
  let baseline = Pipeline.compile ~mode:Pipeline.Baseline ast in
  let want = digest (run_policy baseline Simt.Config.Most_threads) in
  let yielded = ref 0 in
  List.iter
    (fun policy ->
      List.iter
        (fun yield_policy ->
          match run_yield raw policy yield_policy with
          | r ->
            yielded := !yielded + r.Simt.Interp.metrics.Simt.Metrics.yields;
            Alcotest.(check int)
              "all threads finish under yield recovery" (Fuzz.Gen.n_threads)
              r.Simt.Interp.metrics.Simt.Metrics.threads_finished;
            Alcotest.(check bool) "memory matches the PDOM baseline" true (digest r = want)
          | exception Simt.Interp.Deadlock msg ->
            Alcotest.failf "deadlocked despite yield recovery: %s" msg)
        [ Simt.Config.Oldest_arrival; Simt.Config.Most_waiters; Simt.Config.Lowest_slot ])
    Oracle.policies;
  Alcotest.(check bool) "recovery actually fired somewhere" true (!yielded > 0)

let test_yield_log_deterministic () =
  (* Victim selection is part of the deterministic machine: same config,
     same yield log (cycle, warp, slot, released lanes), for each victim
     policy. *)
  let ast = Front.Parser.parse_string conflicting_source in
  let raw = Pipeline.compile ~deconflict:false ~mode:Pipeline.Specrecon ast in
  List.iter
    (fun yield_policy ->
      let a = run_yield raw Simt.Config.Most_threads yield_policy in
      let b = run_yield raw Simt.Config.Most_threads yield_policy in
      Alcotest.(check bool) "identical yield logs across reruns" true
        (a.Simt.Interp.yield_log = b.Simt.Interp.yield_log);
      Alcotest.(check bool) "identical issue counts across reruns" true
        (a.Simt.Interp.metrics.Simt.Metrics.issues = b.Simt.Interp.metrics.Simt.Metrics.issues))
    [ Simt.Config.Oldest_arrival; Simt.Config.Most_waiters; Simt.Config.Lowest_slot ]

let test_deadlock_report_names_cycle () =
  (* Satellite of the yield unit: the no-yield diagnostic must name the
     waits-for cycle so the report is actionable. *)
  let ast = Front.Parser.parse_string conflicting_source in
  let raw = Pipeline.compile ~deconflict:false ~mode:Pipeline.Specrecon ast in
  let saw_deadlock =
    List.exists
      (fun policy ->
        match run_policy raw policy with
        | _ -> false
        | exception Simt.Interp.Deadlock msg ->
          let contains needle =
            let n = String.length needle and len = String.length msg in
            let rec go i = i + n <= len && (String.sub msg i n = needle || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool) "report names the waits-for cycle" true
            (contains "waits-for cycle: b");
          Alcotest.(check bool) "report shows blocked sites" true (contains "blocked at");
          Alcotest.(check bool) "report suggests yield recovery" true (contains "--yield");
          true)
      Oracle.policies
  in
  Alcotest.(check bool) "some policy deadlocks without yield" true saw_deadlock

(* ---- Fault injection ---- *)

let divergent_source =
  {|
global out: float[64];
kernel k() {
  var acc: float = 0.0;
  for i in 0 .. 12 {
    if (rand() < 0.5) { acc = acc + rand(); } else { acc = acc - 1.0; }
  }
  out[tid()] = acc;
}
|}

let test_fault_trace_roundtrip_and_replay () =
  let ast = Front.Parser.parse_string divergent_source in
  let staged = Pipeline.compile ~mode:Pipeline.Specrecon ast in
  let config = { Oracle.base_config with Simt.Config.yield_on_stall = true } in
  let faults = Simt.Faults.create ~seed:1905 () in
  let a =
    Simt.Interp.run ~faults config staged.Pipeline.decoded ~args:[]
      ~init_memory:(Oracle.init_memory staged.Pipeline.program)
  in
  let events = Simt.Faults.events faults in
  Alcotest.(check bool) "the plan injected something" true (events <> []);
  Alcotest.(check bool) "trace survives print/parse round trip" true
    (Simt.Faults.parse_trace (Simt.Faults.trace_to_string events) = events);
  (* Replaying the recorded trace reproduces the faulted run exactly. *)
  let replayed = Simt.Faults.replay events in
  let b =
    Simt.Interp.run ~faults:replayed config staged.Pipeline.decoded ~args:[]
      ~init_memory:(Oracle.init_memory staged.Pipeline.program)
  in
  Alcotest.(check bool) "replay applies the same faults" true
    (Simt.Faults.events replayed = events);
  Alcotest.(check bool) "replay reproduces the issue count" true
    (a.Simt.Interp.metrics.Simt.Metrics.issues = b.Simt.Interp.metrics.Simt.Metrics.issues);
  Alcotest.(check bool) "replay reproduces the memory image" true (digest a = digest b);
  (* And faults must not change what the program computes. *)
  let clean =
    Simt.Interp.run Oracle.base_config staged.Pipeline.decoded ~args:[]
      ~init_memory:(Oracle.init_memory staged.Pipeline.program)
  in
  Alcotest.(check bool) "faulted memory matches the unfaulted run" true (digest a = digest clean)

let multi_kernel_source =
  {|
global out: int[64];
global datai: int[64];

kernel k() {
  out[tid()] = datai[tid()] * 2;
}

kernel k2(bias: int) {
  if (datai[tid()] > 0) {
    out[tid()] = datai[tid()] + bias;
  } else {
    out[tid()] = bias;
  }
}
|}

let test_multi_kernel_program () =
  (* Multi-kernel translation units (a ROADMAP item): both kernels are
     lowered side by side; the entry selector picks which one runs. *)
  let ast = Front.Parser.parse_string multi_kernel_source in
  let staged = Pipeline.compile ~mode:Pipeline.Specrecon ast in
  let kernels =
    List.map (fun (f : Ir.Linear.finfo) -> f.Ir.Linear.fname) staged.Pipeline.linear.Ir.Linear.kernels
  in
  Alcotest.(check (list string)) "both kernels listed in order" [ "k"; "k2" ] kernels;
  let run entry args =
    Simt.Interp.run ~entry Oracle.base_config staged.Pipeline.decoded ~args
      ~init_memory:(Oracle.init_memory staged.Pipeline.program)
  in
  let a = run "k" [] in
  let b = run "k2" [ Ir.Types.I 7 ] in
  Alcotest.(check bool) "the two kernels compute different images" true (digest a <> digest b);
  (match run "nope" [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown entry must be rejected");
  match Oracle.check ast with
  | Oracle.Ok_run -> ()
  | v -> Alcotest.failf "multi-kernel program fails the oracle matrix: %a" Oracle.pp_verdict v

let test_chaos_campaign () =
  (* A fixed-seed chaos slice: every clean program must survive one
     fault plan per program with zero violations (the chaos-smoke alias
     runs a second slice at another seed through the srfuzz binary). *)
  let report = Fuzz.Driver.run ~seed:1234 ~count:40 ~chaos:1 () in
  List.iter
    (fun (f : Fuzz.Driver.finding) ->
      Alcotest.failf "[%d] %s %s: %s" f.Fuzz.Driver.id
        (Fuzz.Gen.shape_name f.Fuzz.Driver.shape)
        (Oracle.kind_name f.Fuzz.Driver.violation.Oracle.kind)
        f.Fuzz.Driver.violation.Oracle.detail)
    report.Fuzz.Driver.findings;
  Alcotest.(check int) "every program accounted for" 40
    (report.Fuzz.Driver.passed + report.Fuzz.Driver.limited)

let tests =
  [
    ( "fuzz.oracles",
      [
        Alcotest.test_case "generator deterministic" `Quick test_generator_deterministic;
        Alcotest.test_case "second-kernel calls well-typed" `Quick
          test_second_kernel_typed_calls;
        Alcotest.test_case "deconfliction rescues common-call deadlock" `Quick
          test_deconflict_rescues_deadlock;
        Alcotest.test_case "multi-kernel programs" `Quick test_multi_kernel_program;
        Alcotest.test_case "corpus replay" `Slow test_corpus_replay;
        Alcotest.test_case "smoke campaign (seed 42)" `Slow test_smoke_campaign;
      ] );
    ( "fuzz.chaos",
      [
        Alcotest.test_case "yield recovery completes conflicting placements" `Quick
          test_yield_recovers_conflict;
        Alcotest.test_case "yield log deterministic per victim policy" `Quick
          test_yield_log_deterministic;
        Alcotest.test_case "deadlock report names the waits-for cycle" `Quick
          test_deadlock_report_names_cycle;
        Alcotest.test_case "fault trace round-trips and replays" `Quick
          test_fault_trace_roundtrip_and_replay;
        Alcotest.test_case "chaos campaign (seed 1234)" `Slow test_chaos_campaign;
      ] );
  ]
