(* Unit and property tests for the support library: warp masks, the
   splittable PRNG, and workload distributions. *)

module Mask = Support.Mask
module Splitmix = Support.Splitmix
module Dist = Support.Dist

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* ---- Mask ---- *)

let test_mask_empty_full () =
  check_int "empty count" 0 (Mask.count Mask.empty);
  check_bool "empty is_empty" true (Mask.is_empty Mask.empty);
  check_int "full 32 count" 32 (Mask.count (Mask.full 32));
  check_int "full 0 count" 0 (Mask.count (Mask.full 0));
  check_bool "full 32 has lane 31" true (Mask.mem 31 (Mask.full 32));
  check_bool "full 32 lacks lane 32" false (Mask.mem 32 (Mask.full 32))

let test_mask_add_remove () =
  let m = Mask.add 5 (Mask.add 2 Mask.empty) in
  check_bool "mem 2" true (Mask.mem 2 m);
  check_bool "mem 5" true (Mask.mem 5 m);
  check_bool "not mem 3" false (Mask.mem 3 m);
  check_int "count" 2 (Mask.count m);
  let m = Mask.remove 2 m in
  check_bool "removed" false (Mask.mem 2 m);
  check_int "count after remove" 1 (Mask.count m);
  (* idempotent *)
  check_bool "add twice" true (Mask.equal (Mask.add 5 m) m);
  check_bool "remove absent" true (Mask.equal (Mask.remove 9 m) m)

let test_mask_set_ops () =
  let a = Mask.of_list [ 0; 1; 2; 3 ] and b = Mask.of_list [ 2; 3; 4; 5 ] in
  check_int "union" 6 (Mask.count (Mask.union a b));
  check_int "inter" 2 (Mask.count (Mask.inter a b));
  check_int "diff" 2 (Mask.count (Mask.diff a b));
  check_bool "subset inter" true (Mask.subset (Mask.inter a b) a);
  check_bool "not subset" false (Mask.subset a b);
  check_bool "disjoint" true (Mask.disjoint (Mask.of_list [ 0 ]) (Mask.of_list [ 1 ]));
  check_bool "not disjoint" false (Mask.disjoint a b)

let test_mask_iteration () =
  let m = Mask.of_list [ 7; 1; 4 ] in
  check (Alcotest.list Alcotest.int) "to_list sorted" [ 1; 4; 7 ] (Mask.to_list m);
  check_int "lowest" 1 (Mask.lowest m);
  check_int "fold sum" 12 (Mask.fold (fun l acc -> l + acc) m 0);
  Alcotest.check_raises "lowest empty" Not_found (fun () -> ignore (Mask.lowest Mask.empty))

let test_mask_errors () =
  let raises_invalid f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  raises_invalid (fun () -> Mask.add (-1) Mask.empty);
  raises_invalid (fun () -> Mask.add Mask.max_width Mask.empty);
  raises_invalid (fun () -> Mask.singleton (-3));
  raises_invalid (fun () -> Mask.full (-1));
  raises_invalid (fun () -> Mask.full (Mask.max_width + 1))

let test_mask_pp () =
  let m = Mask.of_list [ 0; 2 ] in
  check Alcotest.string "binary" "0b0101" (Format.asprintf "%a" (Mask.pp ~width:4) m);
  check Alcotest.string "hex" "0x5" (Mask.to_hex m)

(* ---- fast paths vs. the original naive implementations ----

   [count] became a SWAR popcount, [lowest] a bit trick, and [iter] a
   set-bit peeling loop. Each must agree with the straightforward
   per-lane scan it replaced, over the full lane range (not just warp
   width 32). *)

let naive_count m =
  let c = ref 0 in
  for lane = 0 to Mask.max_width - 1 do
    if Mask.mem lane m then incr c
  done;
  !c

let naive_lowest m =
  let rec loop lane =
    if lane >= Mask.max_width then raise Not_found
    else if Mask.mem lane m then lane
    else loop (lane + 1)
  in
  loop 0

let naive_iter f m =
  for lane = 0 to Mask.max_width - 1 do
    if Mask.mem lane m then f lane
  done

let collect iter_fn m =
  let out = ref [] in
  iter_fn (fun lane -> out := lane :: !out) m;
  List.rev !out

let test_mask_count_matches_naive () =
  let cases =
    [ Mask.empty; Mask.full 1; Mask.full 32; Mask.full Mask.max_width;
      Mask.singleton (Mask.max_width - 1);
      Mask.of_list [ 0; 3; 31; 32; 60; Mask.max_width - 1 ] ]
  in
  List.iter
    (fun m -> check_int (Mask.to_hex m) (naive_count m) (Mask.count m))
    cases

let test_mask_lowest_matches_naive () =
  List.iter
    (fun m -> check_int (Mask.to_hex m) (naive_lowest m) (Mask.lowest m))
    [ Mask.full 1; Mask.full 32; Mask.singleton (Mask.max_width - 1);
      Mask.of_list [ 5; 40; 61 ] ]

let test_mask_iter_matches_naive () =
  List.iter
    (fun m ->
      check (Alcotest.list Alcotest.int) (Mask.to_hex m) (collect naive_iter m)
        (collect Mask.iter m))
    [ Mask.empty; Mask.full 32; Mask.of_list [ 0; 17; 33; 61 ] ]

let lane_gen = QCheck2.Gen.int_range 0 31
let lanes_gen = QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 32) lane_gen

let prop_mask_union_count =
  QCheck2.Test.make ~name:"mask: |a ∪ b| <= |a| + |b| and >= max" ~count:200
    QCheck2.Gen.(pair lanes_gen lanes_gen)
    (fun (la, lb) ->
      let a = Mask.of_list la and b = Mask.of_list lb in
      let u = Mask.count (Mask.union a b) in
      u <= Mask.count a + Mask.count b && u >= max (Mask.count a) (Mask.count b))

let prop_mask_partition =
  QCheck2.Test.make ~name:"mask: (a ∩ b) ∪ (a \\ b) = a" ~count:200
    QCheck2.Gen.(pair lanes_gen lanes_gen)
    (fun (la, lb) ->
      let a = Mask.of_list la and b = Mask.of_list lb in
      Mask.equal (Mask.union (Mask.inter a b) (Mask.diff a b)) a)

let prop_mask_roundtrip =
  QCheck2.Test.make ~name:"mask: to_list/of_list roundtrip" ~count:200 lanes_gen (fun ls ->
      let m = Mask.of_list ls in
      Mask.equal (Mask.of_list (Mask.to_list m)) m
      && List.for_all (fun l -> Mask.mem l m) ls)

let wide_lanes_gen =
  QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 32) (QCheck2.Gen.int_range 0 (Mask.max_width - 1))

let prop_mask_fast_paths =
  QCheck2.Test.make ~name:"mask: count/lowest/iter match naive scans" ~count:500 wide_lanes_gen
    (fun ls ->
      let m = Mask.of_list ls in
      Mask.count m = naive_count m
      && collect Mask.iter m = collect naive_iter m
      && (Mask.is_empty m || Mask.lowest m = naive_lowest m))

let prop_mask_compare_lex =
  QCheck2.Test.make ~name:"mask: compare_lex orders like lane lists" ~count:500
    QCheck2.Gen.(pair wide_lanes_gen wide_lanes_gen)
    (fun (la, lb) ->
      let a = Mask.of_list la and b = Mask.of_list lb in
      compare (Mask.compare_lex a b) 0 = compare (compare (Mask.to_list a) (Mask.to_list b)) 0)

(* ---- boundary warp widths ----

   The SWAR fast paths must agree with a per-bit reference model at the
   degenerate width 1, around the 32-lane warp boundary, and at the
   representation limit. [max_width] is [Sys.int_size - 1] (62 on 64-bit
   OCaml), so a 63- or 64-lane warp must be rejected with
   [Invalid_argument], never silently truncated. *)

let test_mask_boundary_widths () =
  let rng = Splitmix.create 0x4d61736bL in
  let random_model width = Array.init width (fun _ -> Splitmix.int rng 3 = 0) in
  let mask_of_model model =
    let m = ref Mask.empty in
    Array.iteri (fun lane b -> if b then m := Mask.add lane !m) model;
    !m
  in
  List.iter
    (fun width ->
      for _round = 1 to 50 do
        let model = random_model width in
        let m = mask_of_model model in
        let expected = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 model in
        check_int (Printf.sprintf "count at width %d" width) expected (Mask.count m);
        Array.iteri
          (fun lane b -> check_bool (Printf.sprintf "mem %d/%d" lane width) b (Mask.mem lane m))
          model;
        let lane = Splitmix.int rng width in
        let cleared = Mask.remove lane m in
        check_bool "cleared" false (Mask.mem lane cleared);
        check_int "count after clear"
          (expected - if model.(lane) then 1 else 0)
          (Mask.count cleared);
        let m2 = mask_of_model (random_model width) in
        check_int
          (Printf.sprintf "compare_lex sign at width %d" width)
          (compare (compare (Mask.to_list m) (Mask.to_list m2)) 0)
          (compare (Mask.compare_lex m m2) 0)
      done)
    [ 1; 31; 32; Mask.max_width ];
  List.iter
    (fun width ->
      let raises f =
        match f () with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail (Printf.sprintf "width %d accepted" width)
      in
      raises (fun () -> Mask.full width);
      raises (fun () -> Mask.singleton (width - 1));
      raises (fun () -> Mask.add (width - 1) Mask.empty))
    [ 63; 64 ]

(* ---- Domain_pool ---- *)

(* Exercise the genuinely parallel path even on single-core CI by
   forcing the worker count through the env override, restoring the
   previous setting afterwards. *)
let with_domains n f =
  let previous =
    match Sys.getenv_opt Support.Domain_pool.env_var with
    | Some v -> v
    | None -> string_of_int (Domain.recommended_domain_count ())
  in
  Unix.putenv Support.Domain_pool.env_var (string_of_int n);
  Fun.protect ~finally:(fun () -> Unix.putenv Support.Domain_pool.env_var previous) f

let test_domain_pool_map_order () =
  let xs = List.init 100 Fun.id in
  let expected = List.map (fun x -> x * x) xs in
  List.iter
    (fun n ->
      with_domains n (fun () ->
          check (Alcotest.list Alcotest.int)
            (Printf.sprintf "%d domains" n)
            expected
            (Support.Domain_pool.map (fun x -> x * x) xs)))
    [ 1; 2; 4; 7 ]

let test_domain_pool_exception_order () =
  (* Whatever domain hits an exception first, the one replayed must be
     the earliest failing list element — determinism extends to errors. *)
  with_domains 4 (fun () ->
      match
        Support.Domain_pool.map
          (fun x -> if x mod 7 = 3 then failwith (Printf.sprintf "boom %d" x) else x)
          (List.init 50 Fun.id)
      with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure msg -> check Alcotest.string "earliest element wins" "boom 3" msg)

let test_domain_pool_env_validation () =
  with_domains 2 (fun () ->
      Unix.putenv Support.Domain_pool.env_var "zero";
      match Support.Domain_pool.domains () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument for a non-numeric override")

(* ---- Splitmix ---- *)

let test_splitmix_deterministic () =
  let a = Splitmix.create 42L and b = Splitmix.create 42L in
  for _ = 1 to 20 do
    check (Alcotest.int64) "same stream" (Splitmix.next_int64 a) (Splitmix.next_int64 b)
  done

let test_splitmix_of_ints_distinct () =
  let draws rng = List.init 8 (fun _ -> Splitmix.next_int64 rng) in
  let a = draws (Splitmix.of_ints 1 0 0) in
  let b = draws (Splitmix.of_ints 1 0 1) in
  let c = draws (Splitmix.of_ints 1 1 0) in
  check_bool "lane changes stream" true (a <> b);
  check_bool "warp changes stream" true (a <> c && b <> c)

let test_splitmix_copy_split () =
  let a = Splitmix.create 7L in
  let b = Splitmix.copy a in
  check Alcotest.int64 "copy same" (Splitmix.next_int64 a) (Splitmix.next_int64 b);
  let c = Splitmix.split a in
  check_bool "split differs" true (Splitmix.next_int64 c <> Splitmix.next_int64 a)

let test_splitmix_int_errors () =
  let rng = Splitmix.create 1L in
  Alcotest.check_raises "bound 0" (Invalid_argument "Splitmix.int: bound must be positive")
    (fun () -> ignore (Splitmix.int rng 0))

let prop_splitmix_int_range =
  QCheck2.Test.make ~name:"splitmix: int in [0, bound)" ~count:500
    QCheck2.Gen.(pair int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Splitmix.create (Int64.of_int seed) in
      let x = Splitmix.int rng bound in
      x >= 0 && x < bound)

let prop_splitmix_float_range =
  QCheck2.Test.make ~name:"splitmix: float in [0, 1)" ~count:500 QCheck2.Gen.int (fun seed ->
      let rng = Splitmix.create (Int64.of_int seed) in
      let x = Splitmix.float rng in
      x >= 0.0 && x < 1.0)

(* ---- Dist ---- *)

let test_dist_validate () =
  let invalid d = match Dist.validate d with
    | exception Invalid_argument _ -> ()
    | () -> Alcotest.fail "expected Invalid_argument"
  in
  invalid (Dist.Constant (-1));
  invalid (Dist.Uniform (5, 2));
  invalid (Dist.Uniform (-1, 2));
  invalid (Dist.Geometric { p = 0.0; cap = 5 });
  invalid (Dist.Geometric { p = 1.5; cap = 5 });
  invalid (Dist.Geometric { p = 0.5; cap = -1 });
  invalid (Dist.Weighted []);
  invalid (Dist.Weighted [ (1, -0.5) ]);
  invalid (Dist.Weighted [ (1, 0.0); (2, 0.0) ]);
  invalid (Dist.Bimodal { lo = (5, 2); hi = (1, 2); p_hi = 0.5 });
  invalid (Dist.Bimodal { lo = (1, 2); hi = (1, 2); p_hi = 1.5 });
  Dist.validate (Dist.Uniform (0, 0));
  Dist.validate (Dist.Weighted [ (3, 1.0) ])

let test_dist_means () =
  check (Alcotest.float 1e-9) "constant mean" 7.0 (Dist.mean (Dist.Constant 7));
  check (Alcotest.float 1e-9) "uniform mean" 5.0 (Dist.mean (Dist.Uniform (4, 6)));
  (* Geometric with p = 1 never fails: mean 0. *)
  check (Alcotest.float 1e-9) "geometric p=1" 0.0 (Dist.mean (Dist.Geometric { p = 1.0; cap = 10 }));
  check (Alcotest.float 1e-9) "weighted mean" 2.0
    (Dist.mean (Dist.Weighted [ (1, 1.0); (3, 1.0) ]))

let test_dist_sampling_matches_mean () =
  (* Monte Carlo estimate of the mean should land near the analytic one. *)
  let rng = Splitmix.create 99L in
  let dists =
    [
      Dist.Uniform (4, 321);
      Dist.Geometric { p = 0.3; cap = 24 };
      Dist.Weighted [ (2, 1.0); (10, 3.0) ];
      Dist.Bimodal { lo = (4, 40); hi = (220, 321); p_hi = 0.2 };
    ]
  in
  List.iter
    (fun d ->
      let n = 20000 in
      let total = ref 0 in
      for _ = 1 to n do
        total := !total + Dist.sample d rng
      done;
      let estimate = float_of_int !total /. float_of_int n in
      let mean = Dist.mean d in
      if Float.abs (estimate -. mean) > 0.05 *. mean +. 0.5 then
        Alcotest.failf "mean mismatch for %s: analytic %.3f, sampled %.3f"
          (Format.asprintf "%a" Dist.pp d) mean estimate)
    dists

let prop_dist_sample_nonneg =
  let dist_gen =
    QCheck2.Gen.oneof
      [
        QCheck2.Gen.map (fun n -> Dist.Constant n) (QCheck2.Gen.int_range 0 100);
        QCheck2.Gen.map
          (fun (a, b) -> Dist.Uniform (min a b, max a b))
          QCheck2.Gen.(pair (int_range 0 50) (int_range 0 400));
        QCheck2.Gen.map
          (fun (p, cap) -> Dist.Geometric { p = 0.01 +. (p *. 0.98); cap })
          QCheck2.Gen.(pair (float_bound_exclusive 1.0) (int_range 0 64));
      ]
  in
  QCheck2.Test.make ~name:"dist: samples in range" ~count:300
    QCheck2.Gen.(pair dist_gen int)
    (fun (d, seed) ->
      let rng = Splitmix.create (Int64.of_int seed) in
      let x = Dist.sample d rng in
      x >= 0
      &&
      match d with
      | Dist.Constant n -> x = n
      | Dist.Uniform (lo, hi) -> x >= lo && x <= hi
      | Dist.Geometric { cap; _ } -> x <= cap
      | Dist.Weighted _ | Dist.Bimodal _ -> true)

let qtest = QCheck_alcotest.to_alcotest

let tests =
  [
    ( "support.mask",
      [
        Alcotest.test_case "empty/full" `Quick test_mask_empty_full;
        Alcotest.test_case "add/remove" `Quick test_mask_add_remove;
        Alcotest.test_case "set ops" `Quick test_mask_set_ops;
        Alcotest.test_case "iteration" `Quick test_mask_iteration;
        Alcotest.test_case "errors" `Quick test_mask_errors;
        Alcotest.test_case "pp" `Quick test_mask_pp;
        Alcotest.test_case "count matches naive" `Quick test_mask_count_matches_naive;
        Alcotest.test_case "lowest matches naive" `Quick test_mask_lowest_matches_naive;
        Alcotest.test_case "iter matches naive" `Quick test_mask_iter_matches_naive;
        Alcotest.test_case "boundary widths" `Quick test_mask_boundary_widths;
        qtest prop_mask_union_count;
        qtest prop_mask_partition;
        qtest prop_mask_roundtrip;
        qtest prop_mask_fast_paths;
        qtest prop_mask_compare_lex;
      ] );
    ( "support.domain_pool",
      [
        Alcotest.test_case "map preserves order" `Quick test_domain_pool_map_order;
        Alcotest.test_case "exception replay order" `Quick test_domain_pool_exception_order;
        Alcotest.test_case "env validation" `Quick test_domain_pool_env_validation;
      ] );
    ( "support.splitmix",
      [
        Alcotest.test_case "deterministic" `Quick test_splitmix_deterministic;
        Alcotest.test_case "of_ints distinct" `Quick test_splitmix_of_ints_distinct;
        Alcotest.test_case "copy/split" `Quick test_splitmix_copy_split;
        Alcotest.test_case "int errors" `Quick test_splitmix_int_errors;
        qtest prop_splitmix_int_range;
        qtest prop_splitmix_float_range;
      ] );
    ( "support.dist",
      [
        Alcotest.test_case "validate" `Quick test_dist_validate;
        Alcotest.test_case "means" `Quick test_dist_means;
        Alcotest.test_case "sampling matches mean" `Quick test_dist_sampling_matches_mean;
        qtest prop_dist_sample_nonneg;
      ] );
  ]
