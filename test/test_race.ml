(* srrace (Analysis.Race_safety) and its dynamic differential oracle
   (Simt.Race_log) regression gates:

   - phase partitioning: a full wait separates barrier intervals, so
     accesses the PDOM reconvergence barrier orders do not race — and
     the same accesses with no wait between them do;
   - affine exactness: lane-affine address forms are decided by the gcd
     residue test, so stride-disjoint access patterns are proven clean
     while genuinely colliding strides are flagged;
   - interprocedural call-as-wait (§4.4): a callee whose every path
     crosses a full wait separates the caller's phases at the call;
   - PDOM-vs-speculative differential: a finding present only under the
     broken placement is re-categorized race-introduced;
   - machine diagnostics: byte-stable key=value renderings with source
     provenance, same contract as srlint's;
   - shadow logger: the dynamic checker sees exactly the races the
     static verdicts predict, per-warp epochs cut at organic barrier
     fires, and the event log is deterministic across reruns (this
     suite absorbed the decoded-interpreter assertions that lived in
     test_decoded before Simt.Interp_ref was deleted). *)

module T = Ir.Types
module B = Ir.Builder
module RS = Analysis.Race_safety
module Pipeline = Fuzz.Pipeline

let check_string = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let compile mode source = Pipeline.compile ~mode (Front.Parser.parse_string source)

let race mode source = (compile mode source).Pipeline.race

let both_modes = [ Pipeline.Baseline; Pipeline.Specrecon ]

let header = "global outi: int[64];\nglobal share: int[128];\n"

(* ---- phase partitioning ---- *)

(* The store and the shifted read collide across threads (thread t
   writes cell t, thread t+1 reads it). A divergent if between them
   makes PDOM insert a reconvergence wait, which puts them in different
   barrier intervals — clean under both placements. *)
let separated_source =
  header
  ^ "kernel k() {\n\
    \  share[tid()] = tid();\n\
    \  if (tid() < 32) { outi[tid()] = 1; } else { outi[tid()] = 2; }\n\
    \  outi[tid()] = share[((tid() + 1) % 64)];\n\
     }\n"

(* Identical accesses, no divergence between them: one interval, racy. *)
let unseparated_source =
  header
  ^ "kernel k() {\n\
    \  share[tid()] = tid();\n\
    \  outi[tid()] = share[((tid() + 1) % 64)];\n\
     }\n"

let test_phase_partitioning () =
  List.iter
    (fun mode ->
      check_string
        (Printf.sprintf "wait-separated accesses are clean (%s)" (Pipeline.mode_name mode))
        "" (RS.render (race mode separated_source));
      check_bool
        (Printf.sprintf "same accesses in one interval race (%s)" (Pipeline.mode_name mode))
        true
        (List.exists
           (fun (f : RS.finding) -> f.RS.category = RS.Read_write && f.RS.global = "share")
           (race mode unseparated_source)))
    both_modes

(* ---- affine conflict / disjointness ---- *)

let test_affine_disjointness () =
  (* Even/odd stride-2 interleave: same slope, offsets differ, and the
     slope does not divide the offset gap — proven disjoint exactly. *)
  let disjoint =
    header
    ^ "kernel k() {\n\
      \  share[(2 * tid())] = 1;\n\
      \  share[((2 * tid()) + 1)] = 2;\n\
       }\n"
  in
  check_string "stride-2 even/odd stores are proven disjoint" ""
    (RS.render (race Pipeline.Baseline disjoint));
  (* Strides 2 and 4 with offset 2: gcd(2,4)=2 divides 2, and indeed
     thread 1's even store lands on thread 0's cell 2. *)
  let colliding =
    header
    ^ "kernel k() {\n\
      \  share[(2 * tid())] = 1;\n\
      \  share[((4 * tid()) + 2)] = 2;\n\
       }\n"
  in
  check_bool "gcd residue test catches the stride collision" true
    (List.exists
       (fun (f : RS.finding) -> f.RS.category = RS.Write_write)
       (race Pipeline.Baseline colliding));
  (* Injective per-thread stores never self-conflict. *)
  check_string "tid-injective store is clean" ""
    (RS.render (race Pipeline.Baseline (header ^ "kernel k() {\n  share[tid()] = tid();\n}\n")));
  (* A uniform store is the canonical intra-interval WW. *)
  check_bool "uniform single-cell store is write-write" true
    (List.exists
       (fun (f : RS.finding) -> f.RS.category = RS.Write_write && f.RS.global = "share")
       (race Pipeline.Baseline (header ^ "kernel k() {\n  share[0] = 1;\n}\n")))

(* ---- interprocedural call-as-wait ---- *)

(* fn0 contains a divergent branch, so PDOM places a reconvergence wait
   inside it on every path: calling it separates the caller's phases
   (§4.4), exactly like an inline wait would. *)
let callee_waits_source =
  header
  ^ "func fn0(p0: int) -> int {\n\
    \  if (tid() < 16) { outi[tid()] = p0; } else { outi[tid()] = (p0 + 1); }\n\
    \  return p0;\n\
     }\n\n\
     kernel k() {\n\
    \  share[tid()] = tid();\n\
    \  var x: int = fn0(3);\n\
    \  outi[tid()] = (share[((tid() + 1) % 64)] + x);\n\
     }\n"

(* Same caller, but the callee is straight-line: no wait inside, so the
   call separates nothing and the collision is in one interval. *)
let callee_no_wait_source =
  header
  ^ "func fn0(p0: int) -> int {\n\
    \  return (p0 * 2);\n\
     }\n\n\
     kernel k() {\n\
    \  share[tid()] = tid();\n\
    \  var x: int = fn0(3);\n\
    \  outi[tid()] = (share[((tid() + 1) % 64)] + x);\n\
     }\n"

let test_interprocedural_call_as_wait () =
  check_string "a callee that always waits separates the caller's phases" ""
    (RS.render (race Pipeline.Baseline callee_waits_source));
  check_bool "a waitless callee separates nothing" true
    (List.exists
       (fun (f : RS.finding) -> f.RS.category = RS.Read_write && f.RS.global = "share")
       (race Pipeline.Baseline callee_no_wait_source))

(* ---- PDOM-vs-speculative differential ---- *)

let test_race_introduced_diff () =
  (* Hand-built placements of one kernel: the PDOM one orders the store
     and the shifted load with a full wait; the "speculative transform"
     dropped it. The diff must re-categorize the surviving finding as
     race-introduced with the restore-pdom-order hint. *)
  let build ~with_wait =
    let p = B.create_program () in
    let base = B.alloc_global p "share" 64 in
    let f = B.create_func p "k" ~params:0 in
    B.set_kernel p "k";
    let t = B.fresh_reg f and a = B.fresh_reg f in
    let s = B.fresh_reg f and v = B.fresh_reg f in
    let b0 = B.fresh_barrier p in
    B.append f f.T.entry (T.Tid t);
    B.append f f.T.entry (T.Bin (T.Add, a, T.Imm (T.I base), T.Reg t));
    B.append f f.T.entry (T.Store (T.Reg a, T.Reg t));
    if with_wait then begin
      B.append f f.T.entry (T.Join b0);
      B.append f f.T.entry (T.Wait b0)
    end;
    B.append f f.T.entry (T.Bin (T.Rem, s, T.Reg t, T.Imm (T.I 63)));
    B.append f f.T.entry (T.Bin (T.Add, s, T.Reg s, T.Imm (T.I (base + 1))));
    B.append f f.T.entry (T.Load (v, T.Reg s));
    B.set_term f f.T.entry T.Exit;
    p
  in
  let baseline = RS.check (build ~with_wait:true) in
  check_int "the ordered placement is clean" 0 (List.length baseline);
  let broken = RS.check (build ~with_wait:false) in
  check_bool "the unordered placement is flagged" true (broken <> []);
  let diffed = RS.diff ~baseline broken in
  check_bool "every surviving finding is race-introduced" true
    (diffed <> []
    && List.for_all (fun (f : RS.finding) -> f.RS.category = RS.Race_introduced) diffed);
  List.iter
    (fun (f : RS.finding) ->
      check_string "hint names the pdom-order repair" "restore-pdom-order" (RS.hint f))
    diffed

(* ---- machine diagnostics (expect tests) ---- *)

let test_machine_diagnostics () =
  check_string "uniform WW renders with provenance"
    "srrace: category=write-write func=k block=bb0 line=4 global=share other_func=k \
     other_line=4 msg=threads of the same barrier interval may write the same cell \
     share[0] from this one store fix=separate the writes with a full wait.barrier, or \
     make the store index injective in tid hint=insert-wait"
    (RS.render (race Pipeline.Baseline (header ^ "kernel k() {\n  share[0] = 1;\n}\n")));
  check_string "RW pair renders both sites"
    "srrace: category=read-write func=k block=bb0 line=4 global=share other_func=k \
     other_line=4 msg=write of share[tid] here may race with read of share[[0..63]] at \
     k/bb0#10 (line 4): no full barrier separates them fix=separate the read from the \
     write with a full wait.barrier hint=insert-wait"
    (RS.render (race Pipeline.Baseline unseparated_source))

(* ---- the shadow-memory logger (dynamic half) ---- *)

let run_logged ?(policy = Simt.Config.Round_robin) mode source =
  let staged = compile mode source in
  let config = { Fuzz.Oracle.base_config with Simt.Config.policy } in
  let log =
    Simt.Race_log.create ~size:staged.Pipeline.program.T.mem_size
      ~n_warps:config.Simt.Config.n_warps ()
  in
  let result =
    Simt.Interp.run ~race:log config staged.Pipeline.decoded ~entry:"k" ~args:[]
      ~init_memory:(Fuzz.Oracle.init_memory staged.Pipeline.program)
  in
  (log, result)

let test_logger_agrees_with_static () =
  List.iter
    (fun mode ->
      let clean, _ = run_logged mode separated_source in
      check_int
        (Printf.sprintf "wait-separated program logs no race (%s)" (Pipeline.mode_name mode))
        0
        (Simt.Race_log.total clean);
      let racy, _ = run_logged mode unseparated_source in
      check_bool
        (Printf.sprintf "one-interval collision is observed (%s)" (Pipeline.mode_name mode))
        true
        (Simt.Race_log.total racy > 0))
    both_modes;
  let interp, _ = run_logged Pipeline.Baseline callee_waits_source in
  check_int "callee wait separates dynamically too" 0 (Simt.Race_log.total interp)

let test_logger_deterministic () =
  (* Same config, same event log — the logger is part of the
     deterministic machine, like the yield log. *)
  List.iter
    (fun policy ->
      let a, ra = run_logged ~policy Pipeline.Specrecon unseparated_source in
      let b, rb = run_logged ~policy Pipeline.Specrecon unseparated_source in
      check_bool "identical race events across reruns" true
        (Simt.Race_log.events a = Simt.Race_log.events b);
      check_int "identical totals across reruns" (Simt.Race_log.total a)
        (Simt.Race_log.total b);
      check_bool "identical metrics across reruns" true
        (ra.Simt.Interp.metrics = rb.Simt.Interp.metrics))
    Fuzz.Oracle.policies

let test_logger_zero_overhead_shape () =
  (* Absorbed from the old reference-interpreter differential: running
     with the logger armed must not perturb the machine — metrics and
     memory are bit-identical to an unlogged run. *)
  List.iter
    (fun source ->
      let staged = compile Pipeline.Specrecon source in
      let config = Fuzz.Oracle.base_config in
      let log =
        Simt.Race_log.create ~size:staged.Pipeline.program.T.mem_size
          ~n_warps:config.Simt.Config.n_warps ()
      in
      let init = Fuzz.Oracle.init_memory staged.Pipeline.program in
      let logged =
        Simt.Interp.run ~race:log config staged.Pipeline.decoded ~entry:"k" ~args:[]
          ~init_memory:init
      in
      let plain =
        Simt.Interp.run config staged.Pipeline.decoded ~entry:"k" ~args:[] ~init_memory:init
      in
      check_bool "metrics identical with and without the logger" true
        (logged.Simt.Interp.metrics = plain.Simt.Interp.metrics);
      check_bool "memory identical with and without the logger" true
        (Fuzz.Oracle.snapshot logged.Simt.Interp.memory
        = Fuzz.Oracle.snapshot plain.Simt.Interp.memory))
    [ separated_source; unseparated_source; callee_waits_source ]

let tests =
  [
    ( "race.static",
      [
        Alcotest.test_case "phase partitioning" `Quick test_phase_partitioning;
        Alcotest.test_case "affine conflict and disjointness" `Quick test_affine_disjointness;
        Alcotest.test_case "interprocedural call-as-wait" `Quick
          test_interprocedural_call_as_wait;
        Alcotest.test_case "pdom-vs-speculative differential" `Quick test_race_introduced_diff;
        Alcotest.test_case "machine diagnostics" `Quick test_machine_diagnostics;
      ] );
    ( "race.dynamic",
      [
        Alcotest.test_case "logger agrees with the static verdicts" `Quick
          test_logger_agrees_with_static;
        Alcotest.test_case "logger deterministic per policy" `Quick test_logger_deterministic;
        Alcotest.test_case "logger does not perturb the machine" `Quick
          test_logger_zero_overhead_shape;
      ] );
  ]
